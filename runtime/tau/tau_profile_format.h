// Binary per-thread profile file format shared by the TAU measurement
// runtime (writer, at program exit) and the tauprof merge library (reader,
// src/tau/profile_merge.cpp). Header-only and std-only: the runtime links
// into instrumented user programs and must not pull in PDT libraries.
//
// A profile file is named profile.<node>.<context>.<thread> and holds the
// final published statistics of ONE thread, little-endian throughout:
//
//   magic[8]        89 'T' 'A' 'U' 'P' 0D 0A 1A
//   u32 version     kVersion
//   u32 node        $TAU_NODE (0 when unset)
//   u32 context     $TAU_CONTEXT (getpid() when unset)
//   u32 thread      registration index within the process (0 = first)
//   u64 record_count
//   record_count records, each:
//     u32 name_len,  name bytes   routine name, e.g. "push()"
//     u32 type_len,  type bytes   template instantiation, e.g. "Stack<int>"
//     u32 group
//     u64 calls
//     u64 child_calls
//     u64 inclusive_ns
//     u64 exclusive_ns
//   u64 checksum    FNV-1a over every preceding byte
//
// Counts are totals, so merging files is commutative: sum matching
// (name, type) records and the result is independent of input order.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tau::profilefmt {

inline constexpr unsigned char kMagic[8] = {0x89, 'T',  'A',  'U',
                                            'P',  0x0d, 0x0a, 0x1a};
inline constexpr std::uint32_t kVersion = 1;

/// Fixed-size prefix: magic + version + node + context + thread + count.
inline constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 4 + 4 + 8;

/// Fixed-size portion of one record (the four u32/u64 count fields plus
/// the two length prefixes), i.e. its size when both strings are empty.
inline constexpr std::size_t kRecordFixedSize = 4 + 4 + 4 + 8 * 4;

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// FNV-1a. Seedable so writers can hash incrementally.
inline std::uint64_t checksum(const void* data, std::size_t size,
                              std::uint64_t seed = kFnvOffset) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace tau::profilefmt
