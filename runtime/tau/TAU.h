// TAU-style measurement API for instrumented sources (paper §4.1).
//
// The TAU instrumentor rewrites source code to insert TAU_PROFILE macros;
// the rewritten code is compiled with a regular compiler and linked with
// this runtime, which collects per-routine call counts and inclusive/
// exclusive times and prints a profile like the paper's Figure 7.
//
// Threading model: each thread accumulates statistics in thread-local
// buffers — the Profiler enter/exit hot path takes no lock — and publishes
// them to the process-wide registry when the thread exits (automatic),
// when flushThread() is called, or when a report is requested by the
// calling thread. report() and the profile writers see the sum of all
// published thread buffers.
//
// CT(obj) returns the run-time type name of obj — the mechanism the paper
// describes for naming template instantiations uniquely ("vector::vector()
// <int>" style) without compile-time knowledge of the instantiation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <typeinfo>

namespace tau {

/// Statistics for one profiled routine (unique by name + type string).
struct FunctionInfo;

/// Interns a (name, type) pair; repeat calls from the same thread hit a
/// thread-local memo and take no lock.
FunctionInfo* getFunctionInfo(const std::string& name, const std::string& type,
                              int group);

/// RAII measurement scope created by TAU_PROFILE. Enter/exit updates only
/// thread-local counters (plus the trace buffer when tracing is on).
class Profiler {
 public:
  explicit Profiler(FunctionInfo* fn);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

 private:
  FunctionInfo* fn_;
  std::uint64_t start_ns_;
  std::uint64_t child_ns_at_start_;
  Profiler* parent_;
};

/// Demangled run-time type name of `obj` (cached per type).
std::string typeName(const std::type_info& info);

template <typename T>
std::string typeNameOf(const T& obj) {
  return typeName(typeid(obj));
}

/// Publishes the calling thread's accumulated statistics to the registry
/// so a report taken from another thread sees them. Threads publish
/// automatically at thread exit; call this for long-lived worker threads
/// when a mid-run report must include their latest totals.
void flushThread();

/// Prints the profile (Figure 7 style): %time, exclusive/inclusive msec,
/// call counts, child calls, per-call cost, routine name. Sums the
/// calling thread's live counters with every published thread buffer.
void report(std::ostream& os);

/// Exit-time profile dump, honoring $TAU_PROFILE_FILE:
///   - unset:          binary per-thread files profile.<node>.<ctx>.<thread>
///                     in the current directory
///   - a directory:    the same per-thread files inside that directory
///   - any other path: legacy single text report written to that file
/// Node and context default to $TAU_NODE (0) and $TAU_CONTEXT (the pid),
/// so concurrent processes never clobber each other's files.
void writeProfileFile();

/// Writes one binary profile file per thread (see tau_profile_format.h)
/// under `dir` (empty = current directory). Returns the number of files
/// written. The no-argument overload resolves the directory from
/// $TAU_PROFILE_FILE when it names a directory.
std::size_t writeProfileFiles(const std::string& dir);
std::size_t writeProfileFiles();

/// Resets all statistics (for tests and benchmarks). Threads notice the
/// reset lazily on their next routine exit; statistics published before
/// the reset stop counting immediately.
void reset();

// -- event tracing -----------------------------------------------------------

enum class EventKind : std::uint8_t { Enter, Exit };

struct Event {
  std::uint64_t time_ns;
  EventKind kind;
  const FunctionInfo* fn;
};

/// Counters describing the trace buffer since tracing was last enabled.
struct TraceStats {
  std::uint64_t recorded = 0;  ///< events accepted into the buffer
  std::uint64_t wrapped = 0;   ///< ring overwrites (oldest events lost)
  std::uint64_t streamed = 0;  ///< events flushed to the stream fd
};

/// Enables in-memory event tracing: a true ring of `capacity` events that
/// overwrites the oldest event when full (dumpTrace reports how many).
void enableTracing(std::size_t capacity);

/// Enables streaming event tracing: events buffer in memory and are
/// formatted and written to `fd` whenever `high_water` events are pending,
/// so nothing is ever dropped. The fd is not closed by disableTracing().
void enableStreamingTrace(int fd, std::size_t high_water);

/// Convenience: creates/truncates `path` and streams trace events to it
/// (closing the file when tracing is disabled). False if the open fails.
bool streamTraceTo(const std::string& path, std::size_t high_water);

/// Stops tracing; a streaming trace flushes pending events first. Ring
/// contents survive for dumpTrace.
void disableTracing();

/// Drains the trace buffer to `os` in chronological order, one
/// "time kind name" line per event, followed by a "# wrapped N ..."
/// footer when ring overwrites discarded events.
void dumpTrace(std::ostream& os);

/// Counters for the current/most recent tracing session.
TraceStats traceStats();

}  // namespace tau

// -- instrumentation macros ----------------------------------------------------

#define TAU_CONCAT_IMPL(a, b) a##b
#define TAU_CONCAT(a, b) TAU_CONCAT_IMPL(a, b)

/// Inserted by the TAU instrumentor at the top of each routine body.
/// The type argument is evaluated per call: CT(*this) must reflect the
/// object's run-time type so each template instantiation gets its own
/// profile entry (paper §4.1).
#define TAU_PROFILE(name, type, group)          \
  ::tau::Profiler TAU_CONCAT(tau_prof_, __LINE__)( \
      ::tau::getFunctionInfo((name), (type), (group)))

/// Run-time type of an object, for unique template instantiation names.
#define CT(obj) ::tau::typeNameOf(obj)

#define TAU_DEFAULT 0
#define TAU_USER 1

#define TAU_REPORT(os) ::tau::report(os)
