// TAU-style measurement API for instrumented sources (paper §4.1).
//
// The TAU instrumentor rewrites source code to insert TAU_PROFILE macros;
// the rewritten code is compiled with a regular compiler and linked with
// this runtime, which collects per-routine call counts and inclusive/
// exclusive times and prints a profile like the paper's Figure 7.
//
// CT(obj) returns the run-time type name of obj — the mechanism the paper
// describes for naming template instantiations uniquely ("vector::vector()
// <int>" style) without compile-time knowledge of the instantiation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <typeinfo>

namespace tau {

/// Statistics for one profiled routine (unique by name + type string).
struct FunctionInfo;

/// Interns a (name, type) pair; cheap on repeat calls.
FunctionInfo* getFunctionInfo(const std::string& name, const std::string& type,
                              int group);

/// RAII measurement scope created by TAU_PROFILE.
class Profiler {
 public:
  explicit Profiler(FunctionInfo* fn);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

 private:
  FunctionInfo* fn_;
  std::uint64_t start_ns_;
  std::uint64_t child_ns_at_start_;
  Profiler* parent_;
};

/// Demangled run-time type name of `obj` (cached per type).
std::string typeName(const std::type_info& info);

template <typename T>
std::string typeNameOf(const T& obj) {
  return typeName(typeid(obj));
}

/// Prints the profile (Figure 7 style): %time, exclusive/inclusive msec,
/// call counts, child calls, per-call cost, routine name.
void report(std::ostream& os);

/// Writes profile data to the file named by $TAU_PROFILE_FILE (or
/// "profile.0.0.0" by default), pprof-style.
void writeProfileFile();

/// Resets all statistics (for tests and benchmarks).
void reset();

// -- event tracing -----------------------------------------------------------

enum class EventKind : std::uint8_t { Enter, Exit };

struct Event {
  std::uint64_t time_ns;
  EventKind kind;
  const FunctionInfo* fn;
};

/// Enables in-memory event tracing (ring buffer of `capacity` events).
void enableTracing(std::size_t capacity);
void disableTracing();
/// Drains the trace buffer to `os`, one "time kind name" line per event.
void dumpTrace(std::ostream& os);

}  // namespace tau

// -- instrumentation macros ----------------------------------------------------

#define TAU_CONCAT_IMPL(a, b) a##b
#define TAU_CONCAT(a, b) TAU_CONCAT_IMPL(a, b)

/// Inserted by the TAU instrumentor at the top of each routine body.
/// The type argument is evaluated per call: CT(*this) must reflect the
/// object's run-time type so each template instantiation gets its own
/// profile entry (paper §4.1).
#define TAU_PROFILE(name, type, group)          \
  ::tau::Profiler TAU_CONCAT(tau_prof_, __LINE__)( \
      ::tau::getFunctionInfo((name), (type), (group)))

/// Run-time type of an object, for unique template instantiation names.
#define CT(obj) ::tau::typeNameOf(obj)

#define TAU_DEFAULT 0
#define TAU_USER 1

#define TAU_REPORT(os) ::tau::report(os)
