// TAU-style measurement runtime: timers, call stacks, per-routine
// statistics, profile report (paper Figure 7), and event tracing.
#include "TAU.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

#if defined(__GNUC__)
#include <cxxabi.h>
#endif

namespace tau {

struct FunctionInfo {
  std::string name;
  std::string type;
  int group = 0;
  // Totals are guarded by the registry mutex: profilers buffer locally and
  // flush once per call, so contention is one lock per routine exit.
  std::uint64_t calls = 0;
  std::uint64_t child_calls = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t exclusive_ns = 0;

  [[nodiscard]] std::string displayName() const {
    if (type.empty()) return name;
    return name + " <" + type + ">";
  }
};

namespace {

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, FunctionInfo*> by_key;
  std::vector<FunctionInfo*> all;

  ~Registry() {
    for (FunctionInfo* fn : all) delete fn;
  }
};

Registry& registry() {
  static Registry instance;
  return instance;
}

struct TraceBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  std::size_t capacity = 0;
  bool enabled = false;
};

TraceBuffer& traceBuffer() {
  static TraceBuffer instance;
  return instance;
}

void recordEvent(EventKind kind, const FunctionInfo* fn) {
  TraceBuffer& tb = traceBuffer();
  if (!tb.enabled) return;
  const std::lock_guard<std::mutex> lock(tb.mutex);
  if (tb.events.size() >= tb.capacity) return;  // buffer full: drop
  tb.events.push_back({nowNs(), kind, fn});
}

/// Per-thread measurement state: the running profiler stack and the
/// accumulated child time of the current scope.
thread_local Profiler* g_current = nullptr;
thread_local std::uint64_t g_child_ns = 0;

}  // namespace

FunctionInfo* getFunctionInfo(const std::string& name, const std::string& type,
                              int group) {
  Registry& reg = registry();
  // Register the exit-time profile dump AFTER the registry is fully
  // constructed: atexit is LIFO, so this hook then runs BEFORE the
  // registry's destructor and can still read the statistics.
  static const bool exit_hook = [] {
    std::atexit([] {
      if (std::getenv("TAU_PROFILE_FILE") != nullptr) writeProfileFile();
    });
    return true;
  }();
  (void)exit_hook;
  const std::string key = name + '\x1f' + type;
  const std::lock_guard<std::mutex> lock(reg.mutex);
  if (const auto it = reg.by_key.find(key); it != reg.by_key.end())
    return it->second;
  auto* fn = new FunctionInfo;
  fn->name = name;
  fn->type = type;
  fn->group = group;
  reg.by_key.emplace(key, fn);
  reg.all.push_back(fn);
  return fn;
}

Profiler::Profiler(FunctionInfo* fn)
    : fn_(fn), start_ns_(nowNs()), child_ns_at_start_(0), parent_(g_current) {
  child_ns_at_start_ = g_child_ns;
  g_child_ns = 0;
  g_current = this;
  recordEvent(EventKind::Enter, fn_);
}

Profiler::~Profiler() {
  const std::uint64_t end = nowNs();
  const std::uint64_t inclusive = end - start_ns_;
  const std::uint64_t children = g_child_ns;
  const std::uint64_t exclusive = inclusive > children ? inclusive - children : 0;

  recordEvent(EventKind::Exit, fn_);
  {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    fn_->calls += 1;
    fn_->inclusive_ns += inclusive;
    fn_->exclusive_ns += exclusive;
    if (parent_ != nullptr) parent_->fn_->child_calls += 1;
  }
  // Restore the parent's accounting, charging it our inclusive time.
  g_current = parent_;
  g_child_ns = child_ns_at_start_ + inclusive;
}

std::string typeName(const std::type_info& info) {
  static std::mutex mutex;
  static std::unordered_map<const std::type_info*, std::string> cache;
  const std::lock_guard<std::mutex> lock(mutex);
  if (const auto it = cache.find(&info); it != cache.end()) return it->second;
  std::string out = info.name();
#if defined(__GNUC__)
  int status = 0;
  char* demangled = abi::__cxa_demangle(info.name(), nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    out = demangled;
    std::free(demangled);
  }
#endif
  cache.emplace(&info, out);
  return out;
}

void report(std::ostream& os) {
  Registry& reg = registry();
  std::vector<FunctionInfo> snapshot;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    snapshot.reserve(reg.all.size());
    for (const FunctionInfo* fn : reg.all) snapshot.push_back(*fn);
  }
  std::uint64_t total_excl = 0;
  for (const FunctionInfo& fn : snapshot) total_excl += fn.exclusive_ns;
  std::sort(snapshot.begin(), snapshot.end(),
            [](const FunctionInfo& a, const FunctionInfo& b) {
              return a.exclusive_ns > b.exclusive_ns;
            });

  os << "---------------------------------------------------------------------------------------\n";
  os << "%Time    Exclusive    Inclusive       #Call      #Subrs  Inclusive Name\n";
  os << "              msec         msec                           usec/call\n";
  os << "---------------------------------------------------------------------------------------\n";
  for (const FunctionInfo& fn : snapshot) {
    const double pct =
        total_excl == 0 ? 0.0
                        : 100.0 * static_cast<double>(fn.exclusive_ns) /
                              static_cast<double>(total_excl);
    const double excl_ms = static_cast<double>(fn.exclusive_ns) / 1e6;
    const double incl_ms = static_cast<double>(fn.inclusive_ns) / 1e6;
    const double usec_per_call =
        fn.calls == 0 ? 0.0
                      : static_cast<double>(fn.inclusive_ns) / 1e3 /
                            static_cast<double>(fn.calls);
    os << std::fixed << std::setprecision(1) << std::setw(5) << pct << ' '
       << std::setw(12) << excl_ms << ' ' << std::setw(12) << incl_ms << ' '
       << std::setw(11) << fn.calls << ' ' << std::setw(11) << fn.child_calls
       << ' ' << std::setw(10) << std::setprecision(0) << usec_per_call << "  "
       << fn.displayName() << '\n';
  }
  os << "---------------------------------------------------------------------------------------\n";
}

void writeProfileFile() {
  const char* path = std::getenv("TAU_PROFILE_FILE");
  std::ofstream out(path != nullptr ? path : "profile.0.0.0");
  if (out) report(out);
}

void reset() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (FunctionInfo* fn : reg.all) {
    fn->calls = 0;
    fn->child_calls = 0;
    fn->inclusive_ns = 0;
    fn->exclusive_ns = 0;
  }
  TraceBuffer& tb = traceBuffer();
  const std::lock_guard<std::mutex> tlock(tb.mutex);
  tb.events.clear();
}

void enableTracing(std::size_t capacity) {
  TraceBuffer& tb = traceBuffer();
  const std::lock_guard<std::mutex> lock(tb.mutex);
  tb.capacity = capacity;
  tb.events.clear();
  tb.events.reserve(capacity);
  tb.enabled = true;
}

void disableTracing() {
  TraceBuffer& tb = traceBuffer();
  const std::lock_guard<std::mutex> lock(tb.mutex);
  tb.enabled = false;
}

void dumpTrace(std::ostream& os) {
  TraceBuffer& tb = traceBuffer();
  const std::lock_guard<std::mutex> lock(tb.mutex);
  for (const Event& e : tb.events) {
    os << e.time_ns << ' ' << (e.kind == EventKind::Enter ? "ENTER" : "EXIT")
       << ' ' << e.fn->displayName() << '\n';
  }
}

}  // namespace tau
