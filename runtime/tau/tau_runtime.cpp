// TAU-style measurement runtime: timers, call stacks, per-routine
// statistics, profile report (paper Figure 7), and event tracing.
//
// Concurrency design: the Profiler enter/exit hot path is lock-free. Each
// thread owns a dense vector of per-routine counters (indexed by
// FunctionInfo::index) that only the owning thread ever writes; a copy is
// published into the registry under its mutex when the thread exits (via
// a thread_local handle destructor), on flushThread(), or before a report.
// Readers only ever see published copies, so there is no data race and no
// mutex on the measurement path. reset() bumps a global epoch that threads
// notice with one relaxed atomic load per routine exit.
#include "TAU.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "tau_profile_format.h"

#if defined(__GNUC__)
#include <cxxabi.h>
#endif

namespace tau {

struct FunctionInfo {
  std::string name;
  std::string type;
  int group = 0;
  // Dense slot in every thread's counter vector. Immutable after creation
  // (assigned under the registry mutex), so lock-free readers are safe.
  std::uint32_t index = 0;

  [[nodiscard]] std::string displayName() const {
    if (type.empty()) return name;
    return name + " <" + type + ">";
  }
};

namespace {

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-routine totals a thread accumulates locally. Plain integers: only
/// the owning thread writes them; readers see copies published under the
/// registry mutex.
struct Counts {
  std::uint64_t calls = 0;
  std::uint64_t child_calls = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t exclusive_ns = 0;

  [[nodiscard]] bool empty() const {
    return calls == 0 && child_calls == 0 && inclusive_ns == 0 &&
           exclusive_ns == 0;
  }

  void add(const Counts& o) {
    calls += o.calls;
    child_calls += o.child_calls;
    inclusive_ns += o.inclusive_ns;
    exclusive_ns += o.exclusive_ns;
  }
};

struct ThreadData {
  std::uint32_t index = 0;  ///< registration order = <thread> in file names

  // Owner-thread only: live deltas, indexed by FunctionInfo::index.
  std::vector<Counts> counts;
  std::uint64_t epoch = 0;  ///< owner's view of the global reset epoch

  // Guarded by the registry mutex: the last published snapshot. report()
  // and the profile writers read these, never `counts`.
  std::vector<Counts> published;
  std::uint64_t published_epoch = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, FunctionInfo*> by_key;
  std::vector<FunctionInfo*> all;                    // FunctionInfo::index order
  std::vector<std::unique_ptr<ThreadData>> threads;  // registration order

  ~Registry() {
    for (FunctionInfo* fn : all) delete fn;
  }
};

Registry& registry() {
  static Registry instance;
  return instance;
}

/// Bumped by reset(). Threads notice lazily — one relaxed load per routine
/// exit — and zero their local counters before accumulating into them;
/// snapshots published under an older epoch stop counting immediately.
std::atomic<std::uint64_t> g_epoch{1};

void publish(ThreadData& td) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  td.published = td.counts;
  td.published_epoch = td.epoch;
}

/// Thread-exit hook and per-thread caches. The destructor publishes the
/// thread's counters when the thread ends; for the main thread this runs
/// before static destructors and atexit hooks ([basic.start.term]), so the
/// exit-time profile dump still sees the data.
struct ThreadHandle {
  ThreadData* data = nullptr;
  // getFunctionInfo memo: repeat lookups take no lock and allocate
  // nothing beyond the reused key buffer.
  std::unordered_map<std::string, FunctionInfo*> memo;
  std::string key_buf;

  ~ThreadHandle() {
    if (data != nullptr) publish(*data);
  }
};

thread_local ThreadHandle g_thread;
/// Trivially-destructible mirror of g_thread.data: reading it on the
/// Profiler exit path skips the TLS construction guard, and it stays
/// valid (registry-owned) even after g_thread is destroyed.
thread_local ThreadData* g_thread_data = nullptr;

ThreadData& threadData() {
  if (g_thread_data == nullptr) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    auto td = std::make_unique<ThreadData>();
    td->index = static_cast<std::uint32_t>(reg.threads.size());
    td->epoch = g_epoch.load(std::memory_order_relaxed);
    g_thread_data = td.get();
    g_thread.data = td.get();  // arms the thread-exit publish
    reg.threads.push_back(std::move(td));
  }
  return *g_thread_data;
}

// -- event tracing -----------------------------------------------------------

/// Namespace-scope atomic so the disabled-tracing fast path is one relaxed
/// load with no function-local-static guard.
std::atomic<bool> g_trace_enabled{false};

struct TraceBuffer {
  std::mutex mutex;
  std::vector<Event> events;  ///< ring storage, or pending batch when streaming
  std::size_t capacity = 0;   ///< ring size / streaming high-water mark
  std::size_t oldest = 0;     ///< ring: index of the oldest event once full
  std::uint64_t recorded = 0;
  std::uint64_t wrapped = 0;
  std::uint64_t streamed = 0;
  int fd = -1;
  bool owns_fd = false;
};

TraceBuffer& traceBuffer() {
  static TraceBuffer instance;
  return instance;
}

void appendEventText(std::string& out, const Event& e) {
  out += std::to_string(e.time_ns);
  out += ' ';
  out += e.kind == EventKind::Enter ? "ENTER" : "EXIT";
  out += ' ';
  out += e.fn->displayName();
  out += '\n';
}

void flushStreamLocked(TraceBuffer& tb) {
  if (tb.fd < 0 || tb.events.empty()) return;
  std::string text;
  text.reserve(tb.events.size() * 48);
  for (const Event& e : tb.events) appendEventText(text, e);
  const char* p = text.data();
  std::size_t left = text.size();
  while (left > 0) {
    const ::ssize_t n = ::write(tb.fd, p, left);
    if (n <= 0) break;  // stream broken: counters still advance below
    p += static_cast<std::size_t>(n);
    left -= static_cast<std::size_t>(n);
  }
  tb.streamed += tb.events.size();
  tb.events.clear();
}

void closeStreamLocked(TraceBuffer& tb) {
  if (tb.fd < 0) return;
  flushStreamLocked(tb);
  if (tb.owns_fd) ::close(tb.fd);
  tb.fd = -1;
  tb.owns_fd = false;
}

void resetTraceLocked(TraceBuffer& tb, std::size_t capacity) {
  tb.capacity = capacity;
  tb.events.clear();
  tb.events.reserve(capacity);
  tb.oldest = 0;
  tb.recorded = 0;
  tb.wrapped = 0;
  tb.streamed = 0;
}

void recordEvent(EventKind kind, const FunctionInfo* fn) {
  if (!g_trace_enabled.load(std::memory_order_relaxed)) return;
  TraceBuffer& tb = traceBuffer();
  const std::lock_guard<std::mutex> lock(tb.mutex);
  if (tb.capacity == 0) return;  // raced with disableTracing
  ++tb.recorded;
  if (tb.fd >= 0) {
    // Streaming: buffer until the high-water mark, then flush to the fd —
    // nothing is ever dropped.
    tb.events.push_back({nowNs(), kind, fn});
    if (tb.events.size() >= tb.capacity) flushStreamLocked(tb);
    return;
  }
  if (tb.events.size() < tb.capacity) {
    tb.events.push_back({nowNs(), kind, fn});
    return;
  }
  // True ring: overwrite the oldest event and remember how many were lost.
  tb.events[tb.oldest] = {nowNs(), kind, fn};
  tb.oldest = (tb.oldest + 1) % tb.capacity;
  ++tb.wrapped;
}

/// Per-thread measurement state: the running profiler stack and the
/// accumulated child time of the current scope.
thread_local Profiler* g_current = nullptr;
thread_local std::uint64_t g_child_ns = 0;

// -- profile files -----------------------------------------------------------

unsigned envIndex(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<unsigned>(parsed);
}

unsigned nodeId() { return envIndex("TAU_NODE", 0); }

unsigned contextId() {
  return envIndex("TAU_CONTEXT", static_cast<unsigned>(::getpid()));
}

bool isDirectory(const char* path) {
  struct ::stat st{};
  return ::stat(path, &st) == 0 && S_ISDIR(st.st_mode);
}

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void putStr(std::string& out, const std::string& s) {
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

}  // namespace

FunctionInfo* getFunctionInfo(const std::string& name, const std::string& type,
                              int group) {
  // Hot path: thread-local memo hit — no lock, no allocation (the key
  // buffer is reused across calls).
  ThreadHandle& th = g_thread;
  std::string& key = th.key_buf;
  key.clear();
  key.append(name);
  key.push_back('\x1f');
  key.append(type);
  if (const auto it = th.memo.find(key); it != th.memo.end()) return it->second;

  Registry& reg = registry();
  // Register the exit-time profile dump AFTER the registry is fully
  // constructed: atexit is LIFO, so this hook then runs BEFORE the
  // registry's destructor and can still read the statistics.
  static const bool exit_hook = [] {
    std::atexit([] {
      if (std::getenv("TAU_PROFILE_FILE") != nullptr) writeProfileFile();
    });
    return true;
  }();
  (void)exit_hook;

  FunctionInfo* fn = nullptr;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    if (const auto it = reg.by_key.find(key); it != reg.by_key.end()) {
      fn = it->second;
    } else {
      fn = new FunctionInfo;
      fn->name = name;
      fn->type = type;
      fn->group = group;
      fn->index = static_cast<std::uint32_t>(reg.all.size());
      reg.by_key.emplace(key, fn);
      reg.all.push_back(fn);
    }
  }
  th.memo.emplace(key, fn);
  return fn;
}

Profiler::Profiler(FunctionInfo* fn)
    : fn_(fn), start_ns_(nowNs()), child_ns_at_start_(0), parent_(g_current) {
  child_ns_at_start_ = g_child_ns;
  g_child_ns = 0;
  g_current = this;
  recordEvent(EventKind::Enter, fn_);
}

Profiler::~Profiler() {
  const std::uint64_t end = nowNs();
  const std::uint64_t inclusive = end - start_ns_;
  const std::uint64_t children = g_child_ns;
  const std::uint64_t exclusive = inclusive > children ? inclusive - children : 0;

  recordEvent(EventKind::Exit, fn_);

  // Lock-free accumulation into this thread's own counter vector.
  ThreadData& td = threadData();
  const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
  if (td.epoch != epoch) {
    td.counts.assign(td.counts.size(), Counts{});
    td.epoch = epoch;
  }
  std::uint32_t need = fn_->index;
  if (parent_ != nullptr && parent_->fn_->index > need) need = parent_->fn_->index;
  if (need >= td.counts.size()) td.counts.resize(need + 1);
  Counts& c = td.counts[fn_->index];
  c.calls += 1;
  c.inclusive_ns += inclusive;
  c.exclusive_ns += exclusive;
  if (parent_ != nullptr) td.counts[parent_->fn_->index].child_calls += 1;

  // Restore the parent's accounting, charging it our inclusive time.
  g_current = parent_;
  g_child_ns = child_ns_at_start_ + inclusive;
}

std::string typeName(const std::type_info& info) {
  static std::mutex mutex;
  static std::unordered_map<const std::type_info*, std::string> cache;
  const std::lock_guard<std::mutex> lock(mutex);
  if (const auto it = cache.find(&info); it != cache.end()) return it->second;
  std::string out = info.name();
#if defined(__GNUC__)
  int status = 0;
  char* demangled = abi::__cxa_demangle(info.name(), nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    out = demangled;
    std::free(demangled);
  }
#endif
  cache.emplace(&info, out);
  return out;
}

void flushThread() {
  if (g_thread_data != nullptr) publish(*g_thread_data);
}

namespace {

struct ReportRow {
  const FunctionInfo* fn = nullptr;
  Counts c;
};

/// Sums every thread snapshot published under the current epoch. Caller
/// holds the registry mutex.
std::vector<ReportRow> snapshotLocked(Registry& reg) {
  const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
  std::vector<ReportRow> rows;
  rows.reserve(reg.all.size());
  for (const FunctionInfo* fn : reg.all) rows.push_back({fn, Counts{}});
  for (const auto& td : reg.threads) {
    if (td->published_epoch != epoch) continue;
    const std::size_t n = std::min(td->published.size(), rows.size());
    for (std::size_t i = 0; i < n; ++i) rows[i].c.add(td->published[i]);
  }
  return rows;
}

}  // namespace

void report(std::ostream& os) {
  flushThread();  // the caller's own counters must be visible
  Registry& reg = registry();
  std::vector<ReportRow> rows;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    rows = snapshotLocked(reg);
  }
  std::uint64_t total_excl = 0;
  for (const ReportRow& row : rows) total_excl += row.c.exclusive_ns;
  std::sort(rows.begin(), rows.end(), [](const ReportRow& a, const ReportRow& b) {
    return a.c.exclusive_ns > b.c.exclusive_ns;
  });

  os << "---------------------------------------------------------------------------------------\n";
  os << "%Time    Exclusive    Inclusive       #Call      #Subrs  Inclusive Name\n";
  os << "              msec         msec                           usec/call\n";
  os << "---------------------------------------------------------------------------------------\n";
  for (const ReportRow& row : rows) {
    const Counts& c = row.c;
    const double pct =
        total_excl == 0 ? 0.0
                        : 100.0 * static_cast<double>(c.exclusive_ns) /
                              static_cast<double>(total_excl);
    const double excl_ms = static_cast<double>(c.exclusive_ns) / 1e6;
    const double incl_ms = static_cast<double>(c.inclusive_ns) / 1e6;
    const double usec_per_call =
        c.calls == 0 ? 0.0
                     : static_cast<double>(c.inclusive_ns) / 1e3 /
                           static_cast<double>(c.calls);
    os << std::fixed << std::setprecision(1) << std::setw(5) << pct << ' '
       << std::setw(12) << excl_ms << ' ' << std::setw(12) << incl_ms << ' '
       << std::setw(11) << c.calls << ' ' << std::setw(11) << c.child_calls
       << ' ' << std::setw(10) << std::setprecision(0) << usec_per_call << "  "
       << row.fn->displayName() << '\n';
  }
  os << "---------------------------------------------------------------------------------------\n";
}

std::size_t writeProfileFiles(const std::string& dir) {
  flushThread();
  Registry& reg = registry();
  const unsigned node = nodeId();
  const unsigned context = contextId();

  // Snapshot under the lock; build and write the files outside it.
  struct ThreadSnap {
    std::uint32_t index = 0;
    std::vector<Counts> counts;
  };
  std::vector<const FunctionInfo*> fns;
  std::vector<ThreadSnap> snaps;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
    fns.assign(reg.all.begin(), reg.all.end());
    for (const auto& td : reg.threads) {
      if (td->published_epoch != epoch) continue;
      snaps.push_back({td->index, td->published});
    }
  }

  std::size_t written = 0;
  for (const ThreadSnap& snap : snaps) {
    std::string payload;
    payload.append(reinterpret_cast<const char*>(profilefmt::kMagic), 8);
    putU32(payload, profilefmt::kVersion);
    putU32(payload, node);
    putU32(payload, context);
    putU32(payload, snap.index);
    const std::size_t n = std::min(snap.counts.size(), fns.size());
    std::uint64_t records = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (!snap.counts[i].empty()) ++records;
    putU64(payload, records);
    for (std::size_t i = 0; i < n; ++i) {
      const Counts& c = snap.counts[i];
      if (c.empty()) continue;
      putStr(payload, fns[i]->name);
      putStr(payload, fns[i]->type);
      putU32(payload, static_cast<std::uint32_t>(fns[i]->group));
      putU64(payload, c.calls);
      putU64(payload, c.child_calls);
      putU64(payload, c.inclusive_ns);
      putU64(payload, c.exclusive_ns);
    }
    putU64(payload, profilefmt::checksum(payload.data(), payload.size()));

    std::string path = dir;
    if (!path.empty() && path.back() != '/') path.push_back('/');
    path += "profile." + std::to_string(node) + '.' + std::to_string(context) +
            '.' + std::to_string(snap.index);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) continue;
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (out) ++written;
  }
  return written;
}

std::size_t writeProfileFiles() {
  const char* env = std::getenv("TAU_PROFILE_FILE");
  if (env != nullptr && isDirectory(env)) return writeProfileFiles(std::string(env));
  return writeProfileFiles(std::string());
}

void writeProfileFile() {
  const char* env = std::getenv("TAU_PROFILE_FILE");
  if (env != nullptr && !isDirectory(env)) {
    // Legacy behavior: a plain file path gets the single text report.
    std::ofstream out(env);
    if (out) report(out);
    return;
  }
  writeProfileFiles(env != nullptr ? std::string(env) : std::string());
}

void reset() {
  Registry& reg = registry();
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    g_epoch.fetch_add(1, std::memory_order_relaxed);
    // Published snapshots now belong to a dead epoch; drop them so the
    // memory is reclaimed and no stale data lingers.
    for (const auto& td : reg.threads) {
      td->published.clear();
      td->published_epoch = 0;
    }
  }
  // The calling thread can clear its own counters eagerly (it owns them);
  // other threads catch up on their next routine exit.
  if (g_thread_data != nullptr) {
    g_thread_data->counts.assign(g_thread_data->counts.size(), Counts{});
    g_thread_data->epoch = g_epoch.load(std::memory_order_relaxed);
  }
  TraceBuffer& tb = traceBuffer();
  const std::lock_guard<std::mutex> tlock(tb.mutex);
  tb.events.clear();
  tb.oldest = 0;
  tb.recorded = 0;
  tb.wrapped = 0;
  tb.streamed = 0;
}

void enableTracing(std::size_t capacity) {
  TraceBuffer& tb = traceBuffer();
  const std::lock_guard<std::mutex> lock(tb.mutex);
  closeStreamLocked(tb);
  resetTraceLocked(tb, capacity);
  g_trace_enabled.store(capacity > 0, std::memory_order_relaxed);
}

void enableStreamingTrace(int fd, std::size_t high_water) {
  TraceBuffer& tb = traceBuffer();
  const std::lock_guard<std::mutex> lock(tb.mutex);
  closeStreamLocked(tb);
  resetTraceLocked(tb, high_water == 0 ? 1 : high_water);
  tb.fd = fd;
  tb.owns_fd = false;
  g_trace_enabled.store(fd >= 0, std::memory_order_relaxed);
}

bool streamTraceTo(const std::string& path, std::size_t high_water) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  TraceBuffer& tb = traceBuffer();
  const std::lock_guard<std::mutex> lock(tb.mutex);
  closeStreamLocked(tb);
  resetTraceLocked(tb, high_water == 0 ? 1 : high_water);
  tb.fd = fd;
  tb.owns_fd = true;
  g_trace_enabled.store(true, std::memory_order_relaxed);
  return true;
}

void disableTracing() {
  g_trace_enabled.store(false, std::memory_order_relaxed);
  TraceBuffer& tb = traceBuffer();
  const std::lock_guard<std::mutex> lock(tb.mutex);
  closeStreamLocked(tb);  // flush pending streamed events, close owned fd
}

void dumpTrace(std::ostream& os) {
  TraceBuffer& tb = traceBuffer();
  const std::lock_guard<std::mutex> lock(tb.mutex);
  const std::size_t n = tb.events.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = tb.events[(tb.oldest + i) % n];
    os << e.time_ns << ' ' << (e.kind == EventKind::Enter ? "ENTER" : "EXIT")
       << ' ' << e.fn->displayName() << '\n';
  }
  if (tb.wrapped > 0)
    os << "# wrapped " << tb.wrapped << " (oldest events overwritten)\n";
}

TraceStats traceStats() {
  TraceBuffer& tb = traceBuffer();
  const std::lock_guard<std::mutex> lock(tb.mutex);
  return {tb.recorded, tb.wrapped, tb.streamed};
}

}  // namespace tau
