// Real implementations of the mini iostream, used when instrumented
// PDT-C++ sources are compiled with the system compiler (TAU examples).
#include "iostream.h"

#include <cstdio>

ostream cout;
ostream cerr;

ostream& ostream::operator<<(int v) { std::printf("%d", v); return *this; }
ostream& ostream::operator<<(long v) { std::printf("%ld", v); return *this; }
ostream& ostream::operator<<(unsigned long v) { std::printf("%lu", v); return *this; }
ostream& ostream::operator<<(double v) { std::printf("%g", v); return *this; }
ostream& ostream::operator<<(char c) { std::printf("%c", c); return *this; }
ostream& ostream::operator<<(bool b) { std::printf(b ? "true" : "false"); return *this; }
ostream& ostream::operator<<(const char* s) { std::printf("%s", s); return *this; }
ostream& ostream::operator<<(ostream& (*manip)(ostream&)) { return manip(*this); }

ostream& endl(ostream& os) {
    std::printf("\n");
    return os;
}
