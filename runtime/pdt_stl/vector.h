// Miniature vector, standing in for the KAI 3.4c header the paper bundles
// (DESIGN.md substitution table). Written in PDT-C++ and also compilable
// by a real C++ compiler.
#ifndef PDT_STL_VECTOR_H
#define PDT_STL_VECTOR_H

template <class T>
class vector {
public:
    explicit vector(int initSize = 0)
        : theSize(initSize), theCapacity(initSize + SPARE_CAPACITY) {
        objects = new T[theCapacity];
    }
    vector(const vector& rhs) : theSize(0), theCapacity(0), objects(0) {
        operator=(rhs);
    }
    ~vector() {
        delete [] objects;
    }

    const vector& operator=(const vector& rhs) {
        if (this != &rhs) {
            delete [] objects;
            theSize = rhs.size();
            theCapacity = rhs.theCapacity;
            objects = new T[capacity()];
            for (int k = 0; k < size(); k++)
                objects[k] = rhs.objects[k];
        }
        return *this;
    }

    void resize(int newSize) {
        if (newSize > theCapacity)
            reserve(newSize * 2 + 1);
        theSize = newSize;
    }

    void reserve(int newCapacity) {
        if (newCapacity < theSize)
            return;
        T* oldArray = objects;
        objects = new T[newCapacity];
        for (int k = 0; k < theSize; k++)
            objects[k] = oldArray[k];
        theCapacity = newCapacity;
        delete [] oldArray;
    }

    T& operator[](int index) { return objects[index]; }
    const T& operator[](int index) const { return objects[index]; }

    bool empty() const { return size() == 0; }
    int size() const { return theSize; }
    int capacity() const { return theCapacity; }

    void push_back(const T& x) {
        if (theSize == theCapacity)
            reserve(2 * theCapacity + 1);
        objects[theSize++] = x;
    }
    void pop_back() { theSize--; }
    const T& back() const { return objects[theSize - 1]; }

    enum { SPARE_CAPACITY = 16 };

private:
    int theSize;
    int theCapacity;
    T* objects;
};

#endif
