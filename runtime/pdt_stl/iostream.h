// Miniature iostream interface for PDT-C++ inputs. The implementations
// live in pdt_stl_impl.cpp so instrumented sources also link with g++.
#ifndef PDT_STL_IOSTREAM_H
#define PDT_STL_IOSTREAM_H

class ostream {
public:
    ostream& operator<<(int v);
    ostream& operator<<(long v);
    ostream& operator<<(unsigned long v);
    ostream& operator<<(double v);
    ostream& operator<<(char c);
    ostream& operator<<(bool b);
    ostream& operator<<(const char* s);
    ostream& operator<<(ostream& (*manip)(ostream&));
};

extern ostream cout;
extern ostream cerr;

ostream& endl(ostream& os);

#endif
