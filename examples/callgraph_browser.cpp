// callgraph_browser: an interactive-style query tool over the program
// database, demonstrating DUCTAPE as a library for building new analysis
// tools (the paper's thesis: uniform access enables easy tool building).
//
//   callgraph_browser <file.pdb> who-calls <routine>
//   callgraph_browser <file.pdb> calls <routine>
//   callgraph_browser <file.pdb> hierarchy <class>
//   callgraph_browser <file.pdb> unused
//   callgraph_browser <file.pdb> virtual-calls
#include <iostream>
#include <string>

#include "ductape/ductape.h"

namespace {

using namespace pdt::ductape;

const pdbRoutine* findRoutine(const PDB& pdb, const std::string& name) {
  for (const pdbRoutine* r : pdb.getRoutineVec()) {
    if (r->name() == name || r->fullName() == name) return r;
  }
  return nullptr;
}

const pdbClass* findClass(const PDB& pdb, const std::string& name) {
  for (const pdbClass* c : pdb.getClassVec()) {
    if (c->name() == name || c->fullName() == name) return c;
  }
  return nullptr;
}

void printBasesAndDerived(const pdbClass* cls) {
  std::cout << cls->fullName() << '\n';
  for (const pdbBase& b : cls->baseClasses()) {
    std::cout << "  base: " << b.base()->fullName()
              << (b.isVirtual() ? " (virtual)" : "") << '\n';
  }
  for (const pdbClass* d : cls->derivedClasses()) {
    std::cout << "  derived: " << d->fullName() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: callgraph_browser <file.pdb> "
                 "<who-calls|calls|hierarchy|unused|virtual-calls> [name]\n";
    return 2;
  }
  const PDB pdb = PDB::read(argv[1]);
  if (!pdb.valid()) {
    std::cerr << "callgraph_browser: " << pdb.errorMessage() << '\n';
    return 1;
  }
  const std::string query = argv[2];

  if (query == "who-calls" && argc == 4) {
    const pdbRoutine* target = findRoutine(pdb, argv[3]);
    if (target == nullptr) {
      std::cerr << "no routine named '" << argv[3] << "'\n";
      return 1;
    }
    std::cout << "callers of " << target->fullName() << ":\n";
    for (const pdbCall* call : target->callers()) {
      std::cout << "  " << call->call()->fullName();
      if (call->location().valid()) {
        std::cout << "  at " << call->location().file()->name() << ':'
                  << call->location().line();
      }
      std::cout << '\n';
    }
    return 0;
  }
  if (query == "calls" && argc == 4) {
    const pdbRoutine* source = findRoutine(pdb, argv[3]);
    if (source == nullptr) {
      std::cerr << "no routine named '" << argv[3] << "'\n";
      return 1;
    }
    std::cout << source->fullName() << " calls:\n";
    for (const pdbCall* call : source->callees()) {
      std::cout << "  " << call->call()->fullName()
                << (call->isVirtual() ? " (VIRTUAL)" : "") << '\n';
    }
    return 0;
  }
  if (query == "hierarchy" && argc == 4) {
    const pdbClass* cls = findClass(pdb, argv[3]);
    if (cls == nullptr) {
      std::cerr << "no class named '" << argv[3] << "'\n";
      return 1;
    }
    printBasesAndDerived(cls);
    return 0;
  }
  if (query == "unused") {
    std::cout << "routines defined but never called:\n";
    for (const pdbRoutine* r : pdb.getRoutineVec()) {
      if (r->isDefined() && r->callers().empty() && r->name() != "main") {
        std::cout << "  " << r->fullName() << '\n';
      }
    }
    return 0;
  }
  if (query == "virtual-calls") {
    std::cout << "virtual call sites:\n";
    for (const pdbRoutine* r : pdb.getRoutineVec()) {
      for (const pdbCall* call : r->callees()) {
        if (!call->isVirtual()) continue;
        std::cout << "  " << r->fullName() << " -> " << call->call()->fullName()
                  << '\n';
      }
    }
    return 0;
  }
  std::cerr << "unknown query '" << query << "'\n";
  return 2;
}
