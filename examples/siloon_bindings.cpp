// Figure 8 reproduction: SILOON bridging-code generation.
//
// The paper's SILOON toolkit parses C++ class libraries with PDT and
// generates the glue that lets scripting languages drive them. This
// example generates bindings for the mini POOMA solver library, shows
// the three artifacts (C bridge header, bridge code with the routine
// registration table, Python wrappers), then proves the bridge by
// compiling it with the system compiler and calling a solver routine
// through the registry — the C++ stand-in for the Perl/Python
// interpreter (DESIGN.md substitution table).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdt/pdt_paths.h"
#include "siloon/siloon.h"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main() {
  const std::string input_dir = std::string(pdt::paths::kInputDir) + "/pooma_mini";

  // Parse the library with PDT (no IDL needed — paper §4.2).
  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::FrontendOptions fe_options;
  fe_options.include_dirs.push_back(input_dir);
  pdt::frontend::Frontend frontend(sm, diags, fe_options);
  auto result = frontend.compileSource("solverlib.cpp", R"(
#include "CG.h"

// Explicit instantiations select what SILOON exports (paper §4.2).
template class Array<double>;
template class Laplace1D<double>;
template class CGSolver<double>;
)");
  if (!result.success) {
    diags.print(std::cerr, sm);
    return 1;
  }
  const auto pdb = pdt::ductape::PDB::fromPdbFile(
      pdt::ilanalyzer::analyze(result, sm));

  pdt::siloon::GeneratorOptions options;
  options.module_name = "solver";
  options.library_headers.push_back("CG.h");
  const auto bindings = pdt::siloon::generate(pdb, options);

  std::cout << "registered " << bindings.registered.size()
            << " bridge routines; skipped " << bindings.skipped.size() << "\n\n";
  std::cout << "--- routine registration table (excerpt) ---\n";
  int shown = 0;
  for (const auto& r : bindings.registered) {
    std::cout << "  " << r.script_name << "  ->  " << r.cxx_name << "  "
              << r.signature << '\n';
    if (++shown == 12) break;
  }
  std::cout << "\n--- Python wrapper (excerpt) ---\n";
  std::istringstream py(bindings.python_code);
  std::string line;
  shown = 0;
  while (std::getline(py, line) && shown < 18) {
    std::cout << line << '\n';
    ++shown;
  }

  // Prove the bridge: compile it and drive the solver via the registry.
  const char* work_env = std::getenv("TMPDIR");
  const std::string work =
      std::string(work_env != nullptr ? work_env : "/tmp") + "/pdt_siloon_demo";
  std::system(("rm -rf '" + work + "' && mkdir -p '" + work + "'").c_str());
  for (const char* name : {"Array.h", "BLAS1.h", "Stencil.h", "CG.h"}) {
    std::ofstream(work + "/" + name) << slurp(input_dir + "/" + name);
  }
  std::ofstream(work + "/solver_bridge.h") << bindings.bridge_header;
  std::ofstream(work + "/solver_bridge.cpp") << bindings.bridge_code;
  std::ofstream(work + "/solver.py") << bindings.python_code;
  std::ofstream(work + "/driver.cpp") << R"(
#include "solver_bridge.h"
#include <cstdio>
#include <cstring>

void* lookup(const char* name) {
    int count = 0;
    const solver_entry* entries = solver_registry(&count);
    for (int i = 0; i < count; ++i)
        if (std::strcmp(entries[i].script_name, name) == 0)
            return entries[i].fnptr;
    return nullptr;
}

int main() {
    using ArrayNew = void* (*)(int);
    using ArrayFill = void (*)(void*, const double&);
    using LaplaceNew = void* (*)(int);
    using SolverNew = void* (*)(int, const double&);
    using Solve = int (*)(void*, const Laplace1D<double>&, Array<double>&,
                          const Array<double>&);
    auto* array_new = reinterpret_cast<ArrayNew>(
        lookup("Array_lt_double_gt__cn_Array_lt_double_gt_"));
    auto* fill = reinterpret_cast<ArrayFill>(lookup("Array_lt_double_gt__fill"));
    auto* laplace_new = reinterpret_cast<LaplaceNew>(
        lookup("Laplace1D_lt_double_gt__cn_Laplace1D_lt_double_gt_"));
    auto* solver_new = reinterpret_cast<SolverNew>(
        lookup("CGSolver_lt_double_gt__cn_CGSolver_lt_double_gt_"));
    auto* solve = reinterpret_cast<Solve>(lookup("CGSolver_lt_double_gt__solve"));
    if (!array_new || !fill || !laplace_new || !solver_new || !solve) {
        std::puts("registry lookup failed");
        return 1;
    }
    const int n = 64;
    void* b = array_new(n);
    void* x = array_new(n);
    double one = 1.0, zero = 0.0, tol = 1e-9;
    fill(b, one);
    fill(x, zero);
    void* A = laplace_new(n);
    void* s = solver_new(256, tol);
    int iters = solve(s, *static_cast<Laplace1D<double>*>(A),
                      *static_cast<Array<double>*>(x),
                      *static_cast<Array<double>*>(b));
    std::printf("solved through SILOON bridge in %d iterations\n", iters);
    return iters > 0 ? 0 : 1;
}
)";
  const std::string compile = "g++ -std=c++17 -I '" + work + "' '" + work +
                              "/solver_bridge.cpp' '" + work +
                              "/driver.cpp' -o '" + work + "/driver'";
  if (std::system(compile.c_str()) != 0) {
    std::cerr << "siloon_bindings: bridge compilation failed\n";
    return 1;
  }
  std::cout << "\n--- driving the library through the bridge ---\n";
  std::cout.flush();
  return std::system(("'" + work + "/driver'").c_str()) == 0 ? 0 : 1;
}
