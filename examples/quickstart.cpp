// Quickstart: the whole PDT pipeline of paper Figure 2 in one program.
//
//   C++ source --frontend--> IL --IL Analyzer--> PDB --DUCTAPE--> tools
//
// Compiles a small templated program from memory, produces its program
// database, and walks it through the DUCTAPE API: item vectors, pointer
// navigation, and the three pdbtree displays.
#include <iostream>

#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "tools/tools.h"

namespace {

constexpr const char* kProgram = R"(
#define VERSION 1

template <class T>
class Stack {
public:
    explicit Stack(int capacity = 16) : top_(-1) {}
    void push(const T& x) { top_ = top_ + 1; }
    void pop() { top_ = top_ - 1; }
    bool empty() const { return top_ == -1; }
private:
    int top_;
};

class Base {
public:
    virtual void work() {}
};

class Worker : public Base {
public:
    void work() {}
};

void drive(Base& b) {
    Stack<double> s;
    s.push(2.5);
    b.work();
    if (!s.empty())
        s.pop();
}
)";

}  // namespace

int main() {
  // 1. Front end: source -> IL.
  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::Frontend frontend(sm, diags);
  auto result = frontend.compileSource("quickstart.cpp", kProgram);
  if (!result.success) {
    diags.print(std::cerr, sm);
    return 1;
  }
  std::cout << "compiled quickstart.cpp: "
            << result.sema->instantiatedBodyCount()
            << " template bodies instantiated (used mode)\n\n";

  // 2. IL Analyzer: IL -> program database.
  auto raw = pdt::ilanalyzer::analyze(result, sm);
  std::cout << "program database: " << raw.itemCount() << " items\n\n";

  // 3. DUCTAPE: object-oriented access.
  const auto pdb = pdt::ductape::PDB::fromPdbFile(raw);
  std::cout << "classes:\n";
  for (const auto* cls : pdb.getClassVec()) {
    std::cout << "  " << cls->fullName();
    if (cls->isTemplate() != nullptr)
      std::cout << "   <- template " << cls->isTemplate()->name();
    std::cout << '\n';
  }
  std::cout << "\ntemplates:\n";
  for (const auto* te : pdb.getTemplateVec()) {
    std::cout << "  " << te->name() << '\n';
  }

  // 4. The pdbtree utility displays (paper Table 2 / Figure 5).
  std::cout << '\n';
  pdt::tools::pdbtree(pdb, pdt::tools::TreeKind::ClassHierarchy, std::cout);
  std::cout << '\n';
  pdt::tools::pdbtree(pdb, pdt::tools::TreeKind::CallGraph, std::cout);
  return 0;
}
