// Figure 3 reproduction: compile the paper's Stack example (Figure 1,
// shipped in inputs/stack/) and print the PDB, highlighting the items
// the paper's excerpt shows — the template entities, the Stack<int>
// instantiation with its ctempl/rtempl provenance, and the type chain
// for "const int &".
#include <iostream>

#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/writer.h"
#include "pdt/pdt_paths.h"

int main() {
  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::FrontendOptions options;
  options.include_dirs.push_back(std::string(pdt::paths::kRuntimeDir) +
                                 "/pdt_stl");
  pdt::frontend::Frontend frontend(sm, diags, options);
  auto result = frontend.compileFile(std::string(pdt::paths::kInputDir) +
                                     "/stack/TestStackAr.cpp");
  if (!result.success) {
    diags.print(std::cerr, sm);
    return 1;
  }
  const auto pdb = pdt::ilanalyzer::analyze(result, sm);

  std::cout << "=== Full PDB (compact ASCII format, cf. paper Figure 3) ===\n\n";
  pdt::pdb::write(pdb, std::cout);

  std::cout << "\n=== Highlights ===\n";
  for (const auto& te : pdb.templates()) {
    std::cout << "te#" << te.id << " " << te.name << "  (tkind " << te.kind
              << ")\n";
  }
  for (const auto& cls : pdb.classes()) {
    if (cls.name != "Stack<int>") continue;
    std::cout << "\ncl#" << cls.id << " " << cls.name;
    if (cls.template_id)
      std::cout << "  ctempl te#" << *cls.template_id;
    std::cout << "\n  " << cls.funcs.size() << " member functions, "
              << cls.members.size() << " data members\n";
  }
  for (const auto& ro : pdb.routines()) {
    if (ro.name != "push") continue;
    std::cout << "\nro#" << ro.id << " push";
    if (ro.template_id) std::cout << "  rtempl te#" << *ro.template_id;
    std::cout << "\n  calls:";
    for (const auto& call : ro.calls) {
      const auto* target = pdb.findRoutine(call.routine);
      if (target != nullptr) std::cout << ' ' << target->name;
    }
    std::cout << '\n';
  }
  return 0;
}
