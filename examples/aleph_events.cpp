// ALEPH-style event-loop workload: multi-threaded TAU profiling at scale.
//
// The paper's TAU case studies profile high-energy-physics event analysis
// (the ALEPH experiment's reconstruction loop) built on templated
// containers. This example reproduces that shape: N worker threads each
// push synthetic events through templated RingQueue/Histogram containers
// whose methods carry TAU_PROFILE instrumentation with CT(*this) naming,
// so every instantiation gets its own profile entry.
//
// The enter/exit hot path is lock-free (per-thread buffers, published at
// thread exit), so the workers never contend on the profiler. Run with
//
//   TAU_PROFILE_FILE=<dir> ./aleph_events [threads] [events-per-thread]
//
// and the runtime writes one binary profile.<node>.<ctx>.<thread> file
// per worker into <dir>; `tauprof <dir>/profile.*` merges them. The
// printed totals are exact, so a merged profile can be checked against
// them: analyzeEvent() must show threads x events calls (scripts/ci.sh
// does exactly that). Set TAU_TRACE_FILE=<file> to stream an event trace
// there instead of tracing in memory.
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "TAU.h"

namespace {

/// One reconstructed particle track.
struct Track {
  double pt = 0.0;
  double phi = 0.0;
};

/// One collision event: a handful of tracks plus a beam energy.
struct Event {
  std::vector<Track> tracks;
  double energy = 0.0;
};

/// Fixed-capacity ring the event builder feeds and the analyzer drains —
/// the classic producer/consumer buffer of an event loop, templated so
/// TAU names the instantiation ("push() <RingQueue<Event>>").
template <typename T>
class RingQueue {
 public:
  explicit RingQueue(std::size_t capacity) : slots_(capacity) {}

  bool push(const T& value) {
    TAU_PROFILE("push()", CT(*this), TAU_USER);
    if (size_ == slots_.size()) return false;
    slots_[(head_ + size_) % slots_.size()] = value;
    ++size_;
    return true;
  }

  bool pop(T& out) {
    TAU_PROFILE("pop()", CT(*this), TAU_USER);
    if (size_ == 0) return false;
    out = slots_[head_];
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return true;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Binned accumulator for per-event observables.
template <typename T>
class Histogram {
 public:
  Histogram(T lo, T hi, std::size_t bins) : lo_(lo), hi_(hi), bins_(bins) {}

  void fill(T value) {
    TAU_PROFILE("fill()", CT(*this), TAU_USER);
    if (value < lo_) value = lo_;
    if (value >= hi_) value = hi_;
    const auto bin = static_cast<std::size_t>(
        static_cast<double>(value - lo_) / static_cast<double>(hi_ - lo_) *
        static_cast<double>(bins_.size() - 1));
    bins_[bin] += 1;
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t b : bins_) sum += b;
    return sum;
  }

 private:
  T lo_;
  T hi_;
  std::vector<std::uint64_t> bins_;
};

/// Deterministic pseudo-random track parameters (xorshift); no RNG state
/// shared between threads, so per-thread results are reproducible.
std::uint64_t nextRand(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

Event makeEvent(std::uint64_t& rng, int tracks) {
  TAU_PROFILE("makeEvent()", std::string(""), TAU_USER);
  Event ev;
  ev.tracks.reserve(static_cast<std::size_t>(tracks));
  for (int t = 0; t < tracks; ++t) {
    Track tr;
    tr.pt = static_cast<double>(nextRand(rng) % 1000) / 10.0;
    tr.phi = static_cast<double>(nextRand(rng) % 6283) / 1000.0;
    ev.tracks.push_back(tr);
    ev.energy += tr.pt;
  }
  return ev;
}

/// The per-event physics: total transverse momentum above threshold.
double analyzeEvent(const Event& ev) {
  TAU_PROFILE("analyzeEvent()", std::string(""), TAU_USER);
  double sum = 0.0;
  for (const Track& tr : ev.tracks) {
    if (tr.pt > 5.0) sum += tr.pt;
  }
  return sum + ev.energy * 1e-9;
}

void workerLoop(int worker, int events, std::uint64_t* checksum_out) {
  TAU_PROFILE("workerLoop()", std::string(""), TAU_USER);
  RingQueue<Event> queue(8);
  Histogram<double> pt_sum(0.0, 200.0, 64);
  std::uint64_t rng = 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(worker);
  for (int i = 0; i < events; ++i) {
    Event ev = makeEvent(rng, /*tracks=*/8);
    queue.push(ev);
    Event out;
    queue.pop(out);
    pt_sum.fill(analyzeEvent(out));
  }
  *checksum_out = pt_sum.total();
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int events = argc > 2 ? std::atoi(argv[2]) : 1000;
  if (threads < 1 || events < 1) {
    std::cerr << "usage: aleph_events [threads >= 1] [events-per-thread >= 1]\n";
    return 2;
  }

  const char* trace_file = std::getenv("TAU_TRACE_FILE");
  if (trace_file != nullptr) tau::streamTraceTo(trace_file, 4096);

  std::vector<std::thread> workers;
  std::vector<std::uint64_t> checksums(static_cast<std::size_t>(threads), 0);
  {
    // The main thread profiles the fan-out/join, so the run writes a
    // profile file for it too (profile.<node>.<ctx>.0).
    TAU_PROFILE("main()", std::string(""), TAU_DEFAULT);
    workers.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back(workerLoop, w, events,
                           &checksums[static_cast<std::size_t>(w)]);
    }
    for (std::thread& t : workers) t.join();
  }

  std::uint64_t filled = 0;
  for (const std::uint64_t c : checksums) filled += c;

  if (trace_file != nullptr) {
    tau::disableTracing();
    const tau::TraceStats stats = tau::traceStats();
    std::cout << "trace: " << stats.streamed << " events streamed to "
              << trace_file << '\n';
  }

  // Exact totals a merged profile must reproduce: every worker analyzed
  // `events` events, so analyzeEvent() carries threads*events calls.
  std::cout << "aleph_events: " << threads << " threads x " << events
            << " events = " << static_cast<long long>(threads) * events
            << " analyzed, " << filled << " histogram fills\n";
  return 0;
}
