// Per-instantiation profiling of expression templates.
//
// The paper's Figure 7 shows TAU displays where deeply nested POOMA
// template instantiations appear as distinct profile entries. This
// example reproduces that on the expression-template framework
// (inputs/expr_mini): one instrumented `eval` body in the source yields
// separate profile rows for every expression shape the program builds —
// AddExpr<Field, ...>, MulExpr<Field, Scalar>, ... — named at run time
// through CT(*this).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdt/pdt_paths.h"
#include "tau/instrumentor.h"
#include "tau/profile.h"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main() {
  const std::string input_dir = std::string(pdt::paths::kInputDir) + "/expr_mini";
  const std::string stl_dir = std::string(pdt::paths::kRuntimeDir) + "/pdt_stl";
  const std::string tau_dir = std::string(pdt::paths::kRuntimeDir) + "/tau";

  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::FrontendOptions options;
  options.include_dirs.push_back(stl_dir);
  options.include_dirs.push_back(input_dir);
  pdt::frontend::Frontend frontend(sm, diags, options);
  auto result = frontend.compileFile(input_dir + "/et_demo.cpp");
  if (!result.success) {
    diags.print(std::cerr, sm);
    return 1;
  }
  const auto pdb = pdt::ductape::PDB::fromPdbFile(
      pdt::ilanalyzer::analyze(result, sm));

  std::cout << "expression types instantiated by r = a + b*0.5 + a*b:\n";
  for (const auto* cls : pdb.getClassVec()) {
    if (cls->isTemplate() != nullptr) std::cout << "  " << cls->name() << '\n';
  }

  const char* tmp = std::getenv("TMPDIR");
  const std::string work =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/pdt_expr_profile";
  std::system(("rm -rf '" + work + "' && mkdir -p '" + work + "'").c_str());
  for (const char* name : {"ET.h", "et_demo.cpp"}) {
    std::ofstream(work + "/" + name)
        << pdt::tau::instrument(pdb, name, slurp(input_dir + "/" + name));
  }
  const std::string compile =
      "g++ -std=c++17 -O1 -I '" + work + "' -I '" + stl_dir + "' -I '" +
      tau_dir + "' '" + work + "/et_demo.cpp' '" + stl_dir +
      "/pdt_stl_impl.cpp' '" + tau_dir + "/tau_runtime.cpp' -o '" + work +
      "/demo'";
  if (std::system(compile.c_str()) != 0) {
    std::cerr << "expr_profile: compilation failed\n";
    return 1;
  }
  const std::string profile = work + "/profile.txt";
  if (std::system(("TAU_PROFILE_FILE='" + profile + "' '" + work +
                   "/demo' > '" + work + "/run.log'")
                      .c_str()) != 0) {
    std::cerr << "expr_profile: run failed\n";
    return 1;
  }

  std::cout << "\nprogram output: " << slurp(work + "/run.log");
  std::cout << "\nTAU profile — one row per instantiation of the single\n"
               "instrumented eval() body (cf. paper Figure 7):\n";
  std::cout << slurp(profile);

  // Demonstrate programmatic consumption through the profile parser.
  const auto parsed = pdt::tau::parseProfile(slurp(profile));
  if (parsed) {
    int eval_shapes = 0;
    for (const auto& entry : parsed->entries) {
      if (entry.baseName() == "eval()" && !entry.instantiationType().empty())
        ++eval_shapes;
    }
    std::cout << "\ndistinct eval() instantiations profiled: " << eval_shapes
              << '\n';
  }
  return 0;
}
