// Figure 7 reproduction: TAU profiling of a Krylov solver.
//
// The paper shows TAU profile displays of POOMA's Krylov solver,
// instrumented automatically via PDT. This example runs the same loop on
// the mini POOMA framework (inputs/pooma_mini):
//
//   1. PDT compiles the solver sources and produces the PDB;
//   2. the TAU instrumentor rewrites the sources, inserting TAU_PROFILE
//      macros (with CT(*this) for template member functions);
//   3. the rewritten sources are compiled with the system compiler and
//      linked against the TAU measurement runtime;
//   4. the program runs and its profile — per-routine %time, exclusive/
//      inclusive times, call counts, per-instantiation names — is shown.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdt/pdt_paths.h"
#include "tau/instrumentor.h"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main() {
  const std::string input_dir = std::string(pdt::paths::kInputDir) + "/pooma_mini";
  const std::string stl_dir = std::string(pdt::paths::kRuntimeDir) + "/pdt_stl";
  const std::string tau_dir = std::string(pdt::paths::kRuntimeDir) + "/tau";

  // 1. PDT: source -> IL -> PDB.
  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::FrontendOptions options;
  options.include_dirs.push_back(stl_dir);
  options.include_dirs.push_back(input_dir);
  pdt::frontend::Frontend frontend(sm, diags, options);
  auto result = frontend.compileFile(input_dir + "/krylov.cpp");
  if (!result.success) {
    diags.print(std::cerr, sm);
    return 1;
  }
  const auto pdb = pdt::ductape::PDB::fromPdbFile(
      pdt::ilanalyzer::analyze(result, sm));
  std::cout << "PDB: " << pdb.getTemplateVec().size() << " templates, "
            << pdb.getClassVec().size() << " classes, "
            << pdb.getRoutineVec().size() << " routines\n";

  // 2. TAU instrumentor: rewrite every solver source.
  const char* work_env = std::getenv("TMPDIR");
  const std::string work =
      std::string(work_env != nullptr ? work_env : "/tmp") + "/pdt_krylov_demo";
  std::system(("rm -rf '" + work + "' && mkdir -p '" + work + "'").c_str());
  int instrumented = 0;
  for (const char* name :
       {"Array.h", "BLAS1.h", "Stencil.h", "CG.h", "krylov.cpp"}) {
    const std::string text = slurp(input_dir + "/" + name);
    const std::string rewritten = pdt::tau::instrument(pdb, name, text);
    std::ofstream(work + "/" + name) << rewritten;
    instrumented +=
        static_cast<int>(pdt::tau::planInstrumentation(pdb, name).size());
  }
  std::cout << "TAU instrumentor: " << instrumented
            << " routine bodies annotated\n";

  // 3. Compile with the system compiler, link the TAU runtime.
  const std::string compile =
      "g++ -std=c++17 -O2 -I '" + work + "' -I '" + stl_dir + "' -I '" +
      tau_dir + "' '" + work + "/krylov.cpp' '" + stl_dir +
      "/pdt_stl_impl.cpp' '" + tau_dir + "/tau_runtime.cpp' -o '" + work +
      "/krylov_instr'";
  if (std::system(compile.c_str()) != 0) {
    std::cerr << "krylov: compilation of instrumented sources failed\n";
    return 1;
  }

  // 4. Run; the profile lands in $TAU_PROFILE_FILE.
  const std::string profile = work + "/profile.txt";
  const std::string run = "TAU_PROFILE_FILE='" + profile + "' '" + work +
                          "/krylov_instr' > '" + work + "/run.log'";
  if (std::system(run.c_str()) != 0) {
    std::cerr << "krylov: instrumented run failed\n";
    return 1;
  }
  std::cout << "\nsolver output:\n" << slurp(work + "/run.log");
  std::cout << "\nTAU profile (cf. paper Figure 7):\n" << slurp(profile);
  return 0;
}
