// DUCTAPE object-graph construction and traversal costs.
#include <benchmark/benchmark.h>

#include <sstream>

#include "bench/workloads.h"
#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "tools/tools.h"

namespace {

pdt::pdb::PdbFile compileRaw(const std::string& src) {
  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource("bench.cpp", src);
  return pdt::ilanalyzer::analyze(result, sm);
}

void BM_BuildObjectGraph(benchmark::State& state) {
  const auto raw = compileRaw(pdt::bench::plainClasses(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto pdb = pdt::ductape::PDB::fromPdbFile(raw);
    benchmark::DoNotOptimize(pdb);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(raw.itemCount()));
}
BENCHMARK(BM_BuildObjectGraph)->Arg(50)->Arg(200);

void BM_CallTreeWalk(benchmark::State& state) {
  const auto raw = compileRaw(pdt::bench::callChain(static_cast<int>(state.range(0))));
  const auto pdb = pdt::ductape::PDB::fromPdbFile(raw);
  for (auto _ : state) {
    std::ostringstream os;
    pdt::tools::pdbtree(pdb, pdt::tools::TreeKind::CallGraph, os);
    benchmark::DoNotOptimize(os);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CallTreeWalk)->Arg(50)->Arg(500);

void BM_ClassHierarchyWalk(benchmark::State& state) {
  // A deep single-inheritance chain.
  std::string src = "class D0 { public: int x; };\n";
  for (int i = 1; i < state.range(0); ++i) {
    src += "class D" + std::to_string(i) + " : public D" +
           std::to_string(i - 1) + " { public: int y" + std::to_string(i) +
           "; };\n";
  }
  const auto pdb = pdt::ductape::PDB::fromPdbFile(compileRaw(src));
  for (auto _ : state) {
    std::ostringstream os;
    pdt::tools::pdbtree(pdb, pdt::tools::TreeKind::ClassHierarchy, os);
    benchmark::DoNotOptimize(os);
  }
}
BENCHMARK(BM_ClassHierarchyWalk)->Arg(50)->Arg(200);

void BM_PdbconvRender(benchmark::State& state) {
  const auto pdb = pdt::ductape::PDB::fromPdbFile(
      compileRaw(pdt::bench::manyInstantiations(static_cast<int>(state.range(0)))));
  for (auto _ : state) {
    std::ostringstream os;
    pdt::tools::pdbconv(pdb, os);
    benchmark::DoNotOptimize(os);
  }
}
BENCHMARK(BM_PdbconvRender)->Arg(50);

void BM_PdbhtmlRender(benchmark::State& state) {
  const auto pdb = pdt::ductape::PDB::fromPdbFile(
      compileRaw(pdt::bench::manyInstantiations(static_cast<int>(state.range(0)))));
  for (auto _ : state) {
    std::ostringstream os;
    pdt::tools::pdbhtml(pdb, os);
    benchmark::DoNotOptimize(os);
  }
}
BENCHMARK(BM_PdbhtmlRender)->Arg(50);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
