// pdbcheck costs: AnalysisContext (collapsed call graph) construction and
// rule throughput over the synthetic POOMA-shaped workloads, serial vs
// parallel rule execution, and render costs.
#include <benchmark/benchmark.h>

#include <sstream>

#include "analysis/checker.h"
#include "analysis/context.h"
#include "bench/workloads.h"
#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"

namespace {

pdt::ductape::PDB compile(const std::string& src) {
  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource("bench.cpp", src);
  return pdt::ductape::PDB::fromPdbFile(pdt::ilanalyzer::analyze(result, sm));
}

void BM_BuildContext_Classes(benchmark::State& state) {
  const auto pdb = compile(pdt::bench::plainClasses(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto ctx = pdt::analysis::AnalysisContext::build(pdb);
    benchmark::DoNotOptimize(ctx);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pdb.getRoutineVec().size()));
}
BENCHMARK(BM_BuildContext_Classes)->Arg(50)->Arg(200);

void BM_BuildContext_Instantiations(benchmark::State& state) {
  // The collapse path: N instantiations of the same template members.
  const auto pdb =
      compile(pdt::bench::manyInstantiations(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto ctx = pdt::analysis::AnalysisContext::build(pdb);
    benchmark::DoNotOptimize(ctx);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pdb.getRoutineVec().size()));
}
BENCHMARK(BM_BuildContext_Instantiations)->Arg(20)->Arg(80);

void BM_RuleDeadCode(benchmark::State& state) {
  // callChain has no main of its own; add one so the reachability BFS
  // actually walks the whole chain instead of exiting on an empty root set.
  const auto pdb = compile(pdt::bench::callChain(static_cast<int>(state.range(0))) +
                           "int main() { return driver(); }\n");
  const auto ctx = pdt::analysis::AnalysisContext::build(pdb);
  pdt::analysis::CheckOptions options;
  options.checks = "dead-code";
  for (auto _ : state) {
    auto result = pdt::analysis::runChecks(ctx, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RuleDeadCode)->Arg(50)->Arg(500);

void BM_RuleRecursionCycles(benchmark::State& state) {
  const auto pdb = compile(pdt::bench::callChain(static_cast<int>(state.range(0))));
  const auto ctx = pdt::analysis::AnalysisContext::build(pdb);
  pdt::analysis::CheckOptions options;
  options.checks = "recursion-cycles";
  for (auto _ : state) {
    auto result = pdt::analysis::runChecks(ctx, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RuleRecursionCycles)->Arg(50)->Arg(500);

void BM_AllRules(benchmark::State& state) {
  const auto pdb =
      compile(pdt::bench::manyInstantiations(static_cast<int>(state.range(0))));
  const auto ctx = pdt::analysis::AnalysisContext::build(pdb);
  pdt::analysis::CheckOptions options;
  options.jobs = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    auto result = pdt::analysis::runChecks(ctx, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AllRules)->Args({40, 1})->Args({40, 4});

void BM_EndToEndCheck(benchmark::State& state) {
  // Context build + all rules + text render: what the pdbcheck binary does
  // after the PDB is loaded.
  const auto pdb = compile(pdt::bench::plainClasses(static_cast<int>(state.range(0))));
  const pdt::analysis::CheckOptions options;
  for (auto _ : state) {
    const auto result = pdt::analysis::runChecks(pdb, options);
    std::ostringstream os;
    pdt::analysis::render(result, options, os);
    benchmark::DoNotOptimize(os);
  }
}
BENCHMARK(BM_EndToEndCheck)->Arg(100);

void BM_RenderJson(benchmark::State& state) {
  const auto pdb = compile(pdt::bench::plainClasses(static_cast<int>(state.range(0))));
  const auto result = pdt::analysis::runChecks(pdb, {});
  for (auto _ : state) {
    std::ostringstream os;
    pdt::analysis::renderJson(result, os);
    benchmark::DoNotOptimize(os);
  }
}
BENCHMARK(BM_RenderJson)->Arg(100);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
