// Zero-copy read path: mmap vs buffered full reads of a large synthetic
// binary database, and lazy masked reads that fault in only the
// requested sections. Counters: the pdb.mmap.bytes_mapped delta per read
// is exported so BENCH_pr6.json records how much of the file was served
// straight from the page cache without a copy.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>

#include "pdb/pdb.h"
#include "pdb/snapshot.h"
#include "support/trace.h"
#include "tools/synth.h"

namespace {

namespace fs = std::filesystem;

/// A single large on-disk binary database, scaled by `factor` (written
/// once per factor and reused across benchmark iterations). factor=1 is
/// roughly one string-heavy TU; the sweep goes far past krylov scale.
const std::string& corpusFile(int factor) {
  static std::map<int, std::string> cache;
  auto it = cache.find(factor);
  if (it != cache.end()) return it->second;

  pdt::tools::SynthOptions opts;
  opts.shared_classes = 24 * factor;
  opts.unique_classes = 24 * factor;
  opts.routines = 64 * factor;
  // Expression-template instantiation spellings (the paper's §4 domain)
  // routinely run to kilobytes; the read path is bound by string volume.
  opts.name_bytes = 4096;
  const fs::path path =
      fs::temp_directory_path() /
      ("pdt_bench_mmap_" + std::to_string(factor) + ".pdb");
  pdt::pdb::writeFile(pdt::tools::synthUnit(0, opts), path.string(),
                      pdt::pdb::Format::Binary);
  return cache.emplace(factor, path.string()).first->second;
}

void readBench(benchmark::State& state, pdt::pdb::MmapMode mode,
               pdt::pdb::Sections sections) {
  const std::string& path = corpusFile(static_cast<int>(state.range(0)));
  const auto file_bytes = static_cast<std::int64_t>(fs::file_size(path));
  pdt::pdb::setMmapMode(mode);

  pdt::trace::resetGlobalCounters();
  std::size_t items = 0;
  for (auto _ : state) {
    auto result = pdt::pdb::open(path, sections);
    if (!result.ok()) {
      state.SkipWithError("read failed");
      break;
    }
    items = result.snapshot->pdb().classes().size() +
            result.snapshot->pdb().routines().size();
    benchmark::DoNotOptimize(result);
  }
  pdt::pdb::setMmapMode(pdt::pdb::MmapMode::Auto);

  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          file_bytes);
  state.counters["file_bytes"] = static_cast<double>(file_bytes);
  state.counters["items"] = static_cast<double>(items);
  const auto mapped =
      pdt::trace::globalCounters().get(pdt::trace::Counter::PdbMmapBytesMapped);
  state.counters["mapped_bytes_per_read"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(mapped) /
                static_cast<double>(state.iterations());
}

/// Full materialization of every section.
void BM_FullRead_Mmap(benchmark::State& state) {
  readBench(state, pdt::pdb::MmapMode::On, pdt::pdb::Sections::All);
}
void BM_FullRead_Buffered(benchmark::State& state) {
  readBench(state, pdt::pdb::MmapMode::Off, pdt::pdb::Sections::All);
}

/// Lazy masked read: only the source-file section is materialized (an
/// include-tree query's working set); under mmap the class/routine/name
/// payloads are never faulted in.
void BM_MaskedRead_Mmap(benchmark::State& state) {
  readBench(state, pdt::pdb::MmapMode::On, pdt::pdb::Sections::SourceFiles);
}
void BM_MaskedRead_Buffered(benchmark::State& state) {
  readBench(state, pdt::pdb::MmapMode::Off, pdt::pdb::Sections::SourceFiles);
}

BENCHMARK(BM_FullRead_Mmap)->Arg(1)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_FullRead_Buffered)->Arg(1)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_MaskedRead_Mmap)->Arg(64)->Arg(256);
BENCHMARK(BM_MaskedRead_Buffered)->Arg(64)->Arg(256);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
