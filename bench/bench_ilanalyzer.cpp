// IL Analyzer throughput (IL -> PDB) and the template-origin recovery
// ablation: the paper's location-scan method vs direct template IDs.
#include <benchmark/benchmark.h>

#include "bench/workloads.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/writer.h"

namespace {

struct Compiled {
  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::CompileResult result;

  explicit Compiled(const std::string& src) {
    pdt::frontend::Frontend fe(sm, diags);
    result = fe.compileSource("bench.cpp", src);
  }
};

void BM_AnalyzePlain(benchmark::State& state) {
  Compiled c(pdt::bench::plainClasses(static_cast<int>(state.range(0))));
  std::size_t items = 0;
  for (auto _ : state) {
    auto pdb = pdt::ilanalyzer::analyze(c.result, c.sm);
    items = pdb.itemCount();
    benchmark::DoNotOptimize(pdb);
  }
  state.counters["pdb_items"] = static_cast<double>(items);
}
BENCHMARK(BM_AnalyzePlain)->Arg(10)->Arg(100)->Arg(300);

void BM_AnalyzeTemplateHeavy(benchmark::State& state) {
  Compiled c(pdt::bench::manyInstantiations(static_cast<int>(state.range(0))));
  std::size_t items = 0;
  for (auto _ : state) {
    auto pdb = pdt::ilanalyzer::analyze(c.result, c.sm);
    items = pdb.itemCount();
    benchmark::DoNotOptimize(pdb);
  }
  state.counters["pdb_items"] = static_cast<double>(items);
}
BENCHMARK(BM_AnalyzeTemplateHeavy)->Arg(10)->Arg(100)->Arg(300);

void BM_OriginByLocationScan(benchmark::State& state) {
  // The paper's method: pre-built template list keyed by location.
  Compiled c(pdt::bench::manyInstantiations(static_cast<int>(state.range(0))));
  pdt::ilanalyzer::AnalyzerOptions options;
  options.use_direct_template_links = false;
  for (auto _ : state) {
    auto pdb = pdt::ilanalyzer::analyze(c.result, c.sm, options);
    benchmark::DoNotOptimize(pdb);
  }
}
BENCHMARK(BM_OriginByLocationScan)->Arg(100);

void BM_OriginByDirectLinks(benchmark::State& state) {
  // The paper's proposed EDG modification: template IDs in the IL.
  Compiled c(pdt::bench::manyInstantiations(static_cast<int>(state.range(0))));
  pdt::ilanalyzer::AnalyzerOptions options;
  options.use_direct_template_links = true;
  for (auto _ : state) {
    auto pdb = pdt::ilanalyzer::analyze(c.result, c.sm, options);
    benchmark::DoNotOptimize(pdb);
  }
}
BENCHMARK(BM_OriginByDirectLinks)->Arg(100);

void BM_PdbTextSize(benchmark::State& state) {
  // PDB growth vs program size (the "compact ASCII format" claim).
  Compiled c(pdt::bench::manyInstantiations(static_cast<int>(state.range(0))));
  auto pdb = pdt::ilanalyzer::analyze(c.result, c.sm);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string text = pdt::pdb::writeToString(pdb);
    bytes = text.size();
    benchmark::DoNotOptimize(text);
  }
  state.counters["pdb_bytes"] = static_cast<double>(bytes);
  state.counters["pdb_items"] = static_cast<double>(pdb.itemCount());
}
BENCHMARK(BM_PdbTextSize)->Arg(10)->Arg(100);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
