// Shared main() for the google-benchmark binaries: every bench accepts
//   --json <path>   (or --json=<path>)
// and writes a machine-readable summary of the per-iteration runs as a
// JSON array of {"name", "iters", "ns_per_op"} objects alongside the
// normal console output. BENCH_pr*.json snapshots in the repo root are
// produced this way.
//
// Include this header after the BENCHMARK() registrations and invoke
// PDT_BENCH_MAIN() instead of BENCHMARK_MAIN().
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_json.h"

namespace pdt::benchutil {

/// Console reporter that additionally collects per-iteration run records
/// (aggregates and errored runs are skipped) for the --json output.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      JsonRecord record;
      record.name = run.benchmark_name();
      record.iters = static_cast<long long>(run.iterations);
      if (run.iterations > 0) {
        record.ns_per_op = run.real_accumulated_time * 1e9 /
                           static_cast<double>(run.iterations);
      }
      records.push_back(std::move(record));
    }
  }

  std::vector<JsonRecord> records;
};

inline int benchMain(int argc, char** argv) {
  const std::string json_path = extractJsonPath(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty() && !writeJson(json_path, reporter.records)) return 1;
  return 0;
}

}  // namespace pdt::benchutil

#define PDT_BENCH_MAIN()                                   \
  int main(int argc, char** argv) {                        \
    return pdt::benchutil::benchMain(argc, argv);          \
  }
