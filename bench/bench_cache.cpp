// Build-cache effectiveness: the same multi-TU compile-and-merge run
// cold (empty cache: compile + store), warm (every TU hits), and with a
// 10%-dirty tree (one TU of ten misses). The acceptance bar for the
// cache (ISSUE PR3): warm must be at least 3x faster than cold.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "tools/build_cache.h"
#include "tools/driver.h"

namespace {

namespace fs = std::filesystem;

constexpr int kUnits = 10;

/// A ten-TU scratch project sharing one template-heavy header, plus a
/// cache directory — built once, reused by every benchmark in this
/// binary, removed at exit.
class Project {
 public:
  Project() {
    dir_ = fs::temp_directory_path() /
           ("pdt_bench_cache_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(cacheDir());
    std::ofstream(dir_ / "lib.h")
        << "#pragma once\n"
           "template <class T>\n"
           "class Box {\n"
           "public:\n"
           "    Box() : inner(T()) {}\n"
           "    void put(const T& x) { inner = x; }\n"
           "    T take() { return inner; }\n"
           "    bool vacant() const { return false; }\n"
           "    int probe() const { return 1; }\n"
           "    T inner;\n"
           "};\n";
    for (int u = 0; u < kUnits; ++u) {
      const fs::path tu = dir_ / ("tu" + std::to_string(u) + ".cpp");
      std::ofstream(tu) << source(u);
      inputs_.push_back(tu.string());
    }
    options_.frontend.include_dirs.push_back(dir_.string());
    options_.cache.dir = cacheDir().string();
  }

  ~Project() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Statement-heavy functions over the shared Box template: expensive
  /// to parse and type-check, but the resulting database is a handful of
  /// items — the workload shape where republishing a cached PDB pays off
  /// most (the cache skips parse/sema/IL, not the merge).
  [[nodiscard]] std::string source(int unit) const {
    const std::string id = std::to_string(unit);
    std::string src = "#include \"lib.h\"\n";
    for (int f = 0; f < 4; ++f) {
      src += "int calc" + id + "_" + std::to_string(f) + "(int x) {\n";
      src += "    Box<int> b;\n    b.put(x);\n";
      for (int i = 0; i < 400; ++i) {
        src += "    x = x + " + std::to_string(i) + " * 2 - (x / 3);\n";
      }
      src += "    return x + b.take();\n}\n";
    }
    return src;
  }

  [[nodiscard]] fs::path cacheDir() const { return dir_ / "cache"; }

  void clearCache() const {
    fs::remove_all(cacheDir());
    fs::create_directories(cacheDir());
  }

  /// Removes the cached entry for input `unit` so the next run misses it.
  void evictUnit(int unit) const {
    pdt::SourceManager sm;
    const auto key = pdt::tools::computeCacheKey(
        sm, inputs_[static_cast<std::size_t>(unit)], options_.frontend,
        options_.analyzer);
    if (!key) return;
    std::error_code ec;
    fs::remove(cacheDir() / (key->hex + ".pdb"), ec);
    fs::remove(cacheDir() / (key->hex + ".manifest"), ec);
  }

  [[nodiscard]] pdt::tools::DriverResult compile(std::size_t jobs) const {
    pdt::tools::DriverOptions options = options_;
    options.jobs = jobs;
    return pdt::tools::compileAndMerge(inputs_, options);
  }

 private:
  fs::path dir_;
  std::vector<std::string> inputs_;
  pdt::tools::DriverOptions options_;
};

Project& project() {
  static Project instance;
  return instance;
}

void recordStats(benchmark::State& state, const pdt::tools::CacheStats& stats) {
  state.counters["hits"] = static_cast<double>(stats.hits);
  state.counters["misses"] = static_cast<double>(stats.misses);
}

void BM_CacheCold(benchmark::State& state) {
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  pdt::tools::CacheStats last;
  for (auto _ : state) {
    state.PauseTiming();
    project().clearCache();
    state.ResumeTiming();
    const pdt::tools::DriverResult result = project().compile(jobs);
    benchmark::DoNotOptimize(result.success);
    last = result.cache_stats;
  }
  recordStats(state, last);
}
BENCHMARK(BM_CacheCold)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CacheWarm(benchmark::State& state) {
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  project().clearCache();
  (void)project().compile(jobs);  // populate
  pdt::tools::CacheStats last;
  for (auto _ : state) {
    const pdt::tools::DriverResult result = project().compile(jobs);
    benchmark::DoNotOptimize(result.success);
    last = result.cache_stats;
  }
  recordStats(state, last);
}
BENCHMARK(BM_CacheWarm)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CacheDirty10Percent(benchmark::State& state) {
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  project().clearCache();
  (void)project().compile(jobs);  // populate
  pdt::tools::CacheStats last;
  for (auto _ : state) {
    state.PauseTiming();
    project().evictUnit(0);  // 1 of 10 TUs must recompile
    state.ResumeTiming();
    const pdt::tools::DriverResult result = project().compile(jobs);
    benchmark::DoNotOptimize(result.success);
    last = result.cache_stats;
  }
  recordStats(state, last);
}
BENCHMARK(BM_CacheDirty10Percent)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
