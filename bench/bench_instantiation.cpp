// Template instantiation engine scaling and the used-mode ablation.
//
// The paper's claim (§2): used-mode instantiation "minimizes compilation
// time and the size of the IL" relative to instantiating everything.
// BM_UsedMode vs BM_InstantiateAll quantifies that on an input where most
// members go unused; the counters report instantiated body counts.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/workloads.h"
#include "frontend/frontend.h"

namespace {

/// One class template with many members, few of them used: the shape
/// where used mode wins.
std::string mostlyUnusedMembers(int n_instantiations, int n_members) {
  std::string src = "template <class T>\nclass Wide {\npublic:\n";
  for (int m = 0; m < n_members; ++m) {
    src += "    int m" + std::to_string(m) + "() { return " +
           std::to_string(m) + "; }\n";
  }
  src += "};\n";
  for (int i = 0; i < n_instantiations; ++i) {
    src += "class E" + std::to_string(i) + " { public: int x; };\n";
  }
  src += "void driver() {\n";
  for (int i = 0; i < n_instantiations; ++i) {
    const std::string id = std::to_string(i);
    src += "    Wide<E" + id + "> w" + id + ";\n    w" + id + ".m0();\n";
  }
  src += "}\n";
  return src;
}

void runMode(benchmark::State& state, const std::string& src, bool used_mode) {
  std::size_t bodies = 0;
  std::size_t decls = 0;
  for (auto _ : state) {
    pdt::SourceManager sm;
    pdt::DiagnosticEngine diags;
    pdt::frontend::FrontendOptions options;
    options.sema.used_mode = used_mode;
    pdt::frontend::Frontend fe(sm, diags, options);
    auto result = fe.compileSource("wide.cpp", src);
    if (!result.success) state.SkipWithError("compile failed");
    bodies = result.sema->instantiatedBodyCount();
    decls = result.ast->allDecls().size();
  }
  state.counters["instantiated_bodies"] = static_cast<double>(bodies);
  state.counters["il_decls"] = static_cast<double>(decls);
}

void BM_UsedMode(benchmark::State& state) {
  runMode(state,
          mostlyUnusedMembers(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(1))),
          /*used_mode=*/true);
}
BENCHMARK(BM_UsedMode)->Args({20, 20})->Args({50, 40});

void BM_InstantiateAll(benchmark::State& state) {
  runMode(state,
          mostlyUnusedMembers(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(1))),
          /*used_mode=*/false);
}
BENCHMARK(BM_InstantiateAll)->Args({20, 20})->Args({50, 40});

void BM_DistinctInstantiations(benchmark::State& state) {
  const std::string src =
      pdt::bench::manyInstantiations(static_cast<int>(state.range(0)));
  runMode(state, src, true);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DistinctInstantiations)->Arg(10)->Arg(50)->Arg(200);

void BM_NestedInstantiationDepth(benchmark::State& state) {
  const std::string src =
      pdt::bench::nestedInstantiation(static_cast<int>(state.range(0)));
  runMode(state, src, true);
}
BENCHMARK(BM_NestedInstantiationDepth)->Arg(4)->Arg(16)->Arg(48);

void BM_RepeatedInstantiationIsCached(benchmark::State& state) {
  // N uses of the SAME instantiation: cost must stay near-flat
  // (the engine deduplicates by argument list).
  std::string src =
      "template <class T> class Box { public: void f() {} T v; };\n"
      "void driver() {\n";
  for (int i = 0; i < state.range(0); ++i) {
    src += "    Box<int> b" + std::to_string(i) + "; b" + std::to_string(i) +
           ".f();\n";
  }
  src += "}\n";
  runMode(state, src, true);
}
BENCHMARK(BM_RepeatedInstantiationIsCached)->Arg(10)->Arg(100)->Arg(400);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
