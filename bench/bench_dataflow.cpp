// Dataflow costs: du-stream extraction in the IL analyzer, CFG-lite
// reconstruction, the reaching-definitions fixed point, and the three
// dataflow rules end-to-end over loop-heavy synthetic routines.
#include <benchmark/benchmark.h>

#include <string>

#include "analysis/checker.h"
#include "analysis/dataflow.h"
#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"

namespace {

/// One routine with `n` sequential condition/loop regions over a handful
/// of locals: the shape that stresses block count and fixed-point
/// iteration rather than variable count.
std::string branchyRoutine(int n) {
  std::string src = "int work(int n, int seed) {\n"
                    "  int acc = seed;\n"
                    "  int t = 0;\n";
  for (int i = 0; i < n; ++i) {
    const std::string idx = std::to_string(i);
    src += "  for (int i" + idx + " = 0; i" + idx + " < n; ++i" + idx +
           ") {\n"
           "    if (acc > " + idx + ") { t = acc + i" + idx + "; }\n"
           "    else { t = acc - " + idx + "; }\n"
           "    acc = acc + t;\n"
           "  }\n";
  }
  src += "  return acc;\n}\n";
  return src;
}

pdt::pdb::PdbFile compileRaw(const std::string& src) {
  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource("bench.cpp", src);
  return pdt::ilanalyzer::analyze(result, sm);
}

void BM_EmitDefUse(benchmark::State& state) {
  // Frontend work re-done per iteration is constant; the growth with
  // range(0) isolates the du-stream extraction walk.
  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::Frontend fe(sm, diags);
  auto result =
      fe.compileSource("bench.cpp", branchyRoutine(static_cast<int>(state.range(0))));
  std::int64_t events = 0;
  for (auto _ : state) {
    pdt::pdb::PdbFile pdb = pdt::ilanalyzer::analyze(result, sm);
    events = 0;
    for (const auto& item : pdb.defUses())
      events += static_cast<std::int64_t>(item.events.size());
    benchmark::DoNotOptimize(pdb);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EmitDefUse)->Arg(8)->Arg(32);

void BM_CfgBuild(benchmark::State& state) {
  const pdt::pdb::PdbFile pdb =
      compileRaw(branchyRoutine(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    for (const auto& item : pdb.defUses()) {
      auto cfg = pdt::analysis::dataflow::Cfg::build(item);
      benchmark::DoNotOptimize(cfg);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CfgBuild)->Arg(8)->Arg(32);

void BM_ReachingDefs(benchmark::State& state) {
  const pdt::pdb::PdbFile pdb =
      compileRaw(branchyRoutine(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    for (const auto& item : pdb.defUses()) {
      const auto cfg = pdt::analysis::dataflow::Cfg::build(item);
      pdt::analysis::dataflow::ReachingDefs rd(cfg);
      benchmark::DoNotOptimize(rd);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReachingDefs)->Arg(8)->Arg(32);

void BM_DataflowRules(benchmark::State& state) {
  const auto pdb = pdt::ductape::PDB::fromPdbFile(
      compileRaw(branchyRoutine(static_cast<int>(state.range(0)))));
  pdt::analysis::CheckOptions options;
  options.checks = "uninitialized-read,dead-store,null-deref-candidate";
  for (auto _ : state) {
    auto result = pdt::analysis::runChecks(pdb, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DataflowRules)->Arg(8)->Arg(32);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
