// PDB ASCII writer/reader throughput vs item count.
#include <benchmark/benchmark.h>

#include "pdb/pdb.h"
#include "pdb/reader.h"
#include "pdb/writer.h"

namespace {

pdt::pdb::PdbFile synthesize(int routines) {
  pdt::pdb::PdbFile pdb;
  pdt::pdb::SourceFileItem file;
  file.name = "synth.cpp";
  const auto file_id = pdb.addSourceFile(std::move(file));

  pdt::pdb::TypeItem sig;
  sig.name = "int (int)";
  sig.kind = "func";
  const auto sig_id = pdb.addType(std::move(sig));

  for (int i = 0; i < routines; ++i) {
    pdt::pdb::RoutineItem r;
    r.name = pdb.own("fn" + std::to_string(i));
    r.location = {file_id, static_cast<std::uint32_t>(i + 1), 1};
    r.signature = sig_id;
    r.defined = true;
    if (i > 0) {
      r.calls.push_back({static_cast<std::uint32_t>(i), false,
                         {file_id, static_cast<std::uint32_t>(i + 1), 5}});
    }
    r.extent = {{file_id, static_cast<std::uint32_t>(i + 1), 1},
                {file_id, static_cast<std::uint32_t>(i + 1), 10},
                {file_id, static_cast<std::uint32_t>(i + 1), 12},
                {file_id, static_cast<std::uint32_t>(i + 1), 40}};
    pdb.addRoutine(std::move(r));
  }
  return pdb;
}

void BM_Write(benchmark::State& state) {
  const auto pdb = synthesize(static_cast<int>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string text = pdt::pdb::writeToString(pdb);
    bytes = text.size();
    benchmark::DoNotOptimize(text);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Write)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Read(benchmark::State& state) {
  const std::string text =
      pdt::pdb::writeToString(synthesize(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto result = pdt::pdb::readFromString(text);
    if (!result.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(result.pdb);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Read)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RoundTrip(benchmark::State& state) {
  const auto pdb = synthesize(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = pdt::pdb::readFromString(pdt::pdb::writeToString(pdb));
    benchmark::DoNotOptimize(result.pdb);
  }
}
BENCHMARK(BM_RoundTrip)->Arg(1000);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
