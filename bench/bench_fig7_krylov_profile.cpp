// Figure 7 reproduction + instrumentation-overhead measurement.
//
// Runs the Krylov (CG) solver pipeline twice through the system compiler:
// once as written and once after TAU instrumentation via PDT, compares
// wall-clock times (the run-time dilation users pay for the Figure-7
// profile), and prints the profile itself.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "ductape/ductape.h"
#include "bench/bench_json.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdt/pdt_paths.h"
#include "tau/instrumentor.h"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

double timeCommand(const std::string& cmd, int repeats) {
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < repeats; ++i) {
    if (std::system(cmd.c_str()) != 0) return -1.0;
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - begin).count() /
         repeats;
}

}  // namespace

int main(int argc, char** argv) {
  const pdt::benchutil::PlainBenchTimer bench_timer(
      argv[0] != nullptr ? argv[0] : "bench",
      pdt::benchutil::extractJsonPath(argc, argv));
  const std::string input_dir = std::string(pdt::paths::kInputDir) + "/pooma_mini";
  const std::string stl_dir = std::string(pdt::paths::kRuntimeDir) + "/pdt_stl";
  const std::string tau_dir = std::string(pdt::paths::kRuntimeDir) + "/tau";
  const char* tmp = std::getenv("TMPDIR");
  const std::string work =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/pdt_fig7_bench";
  std::system(("rm -rf '" + work + "' && mkdir -p '" + work + "'").c_str());

  // PDT pipeline.
  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::FrontendOptions options;
  options.include_dirs.push_back(stl_dir);
  options.include_dirs.push_back(input_dir);
  pdt::frontend::Frontend frontend(sm, diags, options);
  auto result = frontend.compileFile(input_dir + "/krylov.cpp");
  if (!result.success) {
    diags.print(std::cerr, sm);
    return 1;
  }
  const auto pdb = pdt::ductape::PDB::fromPdbFile(
      pdt::ilanalyzer::analyze(result, sm));
  // Full instrumentation, and a selective variant that excludes the tiny
  // per-element accessors (the standard mitigation for profiling
  // fine-grained template code).
  pdt::tau::InstrumentOptions selective;
  selective.exclude = {"operator()", "operator[]", "size"};
  std::system(("mkdir -p '" + work + "/sel'").c_str());
  for (const char* name :
       {"Array.h", "BLAS1.h", "Stencil.h", "CG.h", "krylov.cpp"}) {
    const std::string text = slurp(input_dir + "/" + name);
    std::ofstream(work + "/" + name) << pdt::tau::instrument(pdb, name, text);
    std::ofstream(work + "/sel/" + name)
        << pdt::tau::instrument(pdb, name, text, selective);
  }

  const std::string common = "g++ -std=c++17 -O2 -I '" + stl_dir + "' '" +
                             stl_dir + "/pdt_stl_impl.cpp' ";
  const std::string build_plain = common + "-I '" + input_dir + "' '" +
                                  input_dir + "/krylov.cpp' -o '" + work +
                                  "/plain'";
  const std::string build_instr = common + "-I '" + work + "' -I '" + tau_dir +
                                  "' '" + work + "/krylov.cpp' '" + tau_dir +
                                  "/tau_runtime.cpp' -o '" + work + "/instr'";
  const std::string build_sel = common + "-I '" + work + "/sel' -I '" + tau_dir +
                                "' '" + work + "/sel/krylov.cpp' '" + tau_dir +
                                "/tau_runtime.cpp' -o '" + work + "/instr_sel'";
  if (std::system(build_plain.c_str()) != 0 ||
      std::system(build_instr.c_str()) != 0 ||
      std::system(build_sel.c_str()) != 0) {
    std::cerr << "bench_fig7: compilation failed\n";
    return 1;
  }

  constexpr int kRepeats = 5;
  const double plain_ms =
      timeCommand("'" + work + "/plain' > /dev/null", kRepeats);
  const std::string profile = work + "/profile.txt";
  const double instr_ms = timeCommand("TAU_PROFILE_FILE='" + profile + "' '" +
                                          work + "/instr' > /dev/null",
                                      kRepeats);
  const std::string sel_profile = work + "/profile_sel.txt";
  const double sel_ms = timeCommand("TAU_PROFILE_FILE='" + sel_profile +
                                        "' '" + work + "/instr_sel' > /dev/null",
                                    kRepeats);
  if (plain_ms < 0 || instr_ms < 0 || sel_ms < 0) {
    std::cerr << "bench_fig7: run failed\n";
    return 1;
  }

  std::cout << "Figure 7: TAU profile of the Krylov (CG) solver\n";
  std::cout << "===============================================\n\n";
  std::cout << "uninstrumented run:          " << plain_ms << " ms\n";
  std::cout << "fully instrumented run:      " << instr_ms << " ms   (x"
            << (plain_ms > 0 ? instr_ms / plain_ms : 0) << ")\n";
  std::cout << "selectively instrumented:    " << sel_ms << " ms   (x"
            << (plain_ms > 0 ? sel_ms / plain_ms : 0)
            << ", per-element accessors excluded)\n\n";
  std::cout << "--- full profile ---\n" << slurp(profile);
  std::cout << "\n--- selective profile ---\n" << slurp(sel_profile);
  return 0;
}
