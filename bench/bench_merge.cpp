// pdbmerge scaling: number of translation units and duplicate ratio.
//
// The paper's claim (Table 2): merging eliminates duplicate template
// instantiations across compilations. The dedup_ratio counter reports
// how much of the input volume the merge collapsed.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench/workloads.h"
#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/format.h"
#include "tools/shard_merge.h"
#include "tools/synth.h"

namespace {

pdt::ductape::PDB makeUnit(int unit, int shared, int unique) {
  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource("tu" + std::to_string(unit) + ".cpp",
                                 pdt::bench::mergeUnit(unit, shared, unique));
  return pdt::ductape::PDB::fromPdbFile(pdt::ilanalyzer::analyze(result, sm));
}

void BM_MergeUnits(benchmark::State& state) {
  const int units = static_cast<int>(state.range(0));
  const int shared = static_cast<int>(state.range(1));
  const int unique = static_cast<int>(state.range(2));

  std::vector<pdt::ductape::PDB> inputs;
  std::size_t input_items = 0;
  for (int u = 0; u < units; ++u) {
    inputs.push_back(makeUnit(u, shared, unique));
    input_items += inputs.back().getItemVec().size();
  }

  std::size_t merged_items = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // merge() mutates; re-clone the first unit via its raw representation.
    pdt::ductape::PDB merged =
        pdt::ductape::PDB::fromPdbFile(inputs[0].raw());
    state.ResumeTiming();
    for (int u = 1; u < units; ++u) merged.merge(inputs[u]);
    merged_items = merged.getItemVec().size();
    benchmark::DoNotOptimize(merged);
  }
  state.counters["input_items"] = static_cast<double>(input_items);
  state.counters["merged_items"] = static_cast<double>(merged_items);
  state.counters["dedup_ratio"] =
      input_items == 0 ? 0.0
                       : 1.0 - static_cast<double>(merged_items) /
                                   static_cast<double>(input_items);
}
// All shared (high duplication), mixed, all unique (no duplication).
BENCHMARK(BM_MergeUnits)
    ->Args({4, 20, 0})
    ->Args({4, 10, 10})
    ->Args({4, 0, 20})
    ->Args({16, 10, 2});

/// A synthetic on-disk corpus of `units` binary databases (written once
/// per size and reused across iterations and configurations).
const std::vector<std::string>& corpusFiles(int units) {
  static std::map<int, std::vector<std::string>> cache;
  auto it = cache.find(units);
  if (it != cache.end()) return it->second;

  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("pdt_bench_merge_" + std::to_string(units));
  fs::create_directories(dir);
  std::vector<std::string> files;
  for (int u = 0; u < units; ++u) {
    const fs::path path = dir / ("tu" + std::to_string(u) + ".pdb");
    pdt::pdb::writeFile(pdt::tools::synthUnit(u), path.string(),
                        pdt::pdb::Format::Binary);
    files.push_back(path.string());
  }
  return cache.emplace(units, std::move(files)).first->second;
}

/// External sharded merge at 100-1000x krylov scale: units x jobs x
/// memory budget. budget_mb=0 never spills; small budgets exercise the
/// spill round trip. merge.shards / merge.spills are exported so the
/// BENCH_pr6.json snapshot records how hard each configuration worked.
void BM_ShardedMergeFiles(benchmark::State& state) {
  const int units = static_cast<int>(state.range(0));
  const auto jobs = static_cast<std::size_t>(state.range(1));
  const auto budget_mb = static_cast<std::uint64_t>(state.range(2));
  const std::vector<std::string>& files = corpusFiles(units);

  pdt::tools::ShardedMergeStats stats;
  std::size_t merged_items = 0;
  for (auto _ : state) {
    pdt::tools::ShardedMergeOptions opts;
    opts.jobs = jobs;
    opts.mem_budget_bytes = budget_mb * 1024 * 1024;
    opts.temp_dir = (std::filesystem::temp_directory_path() /
                     "pdt_bench_merge_spill")
                        .string();
    auto result = pdt::tools::shardedMergeFiles(files, opts);
    if (!result.ok()) {
      state.SkipWithError("sharded merge failed");
      break;
    }
    stats = result.stats;
    merged_items = result.merged->getItemVec().size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["merged_items"] = static_cast<double>(merged_items);
  state.counters["shards"] = static_cast<double>(stats.shards);
  state.counters["spills"] = static_cast<double>(stats.spills);
  state.SetItemsProcessed(state.iterations() * units);
}
// units x jobs x budget_mb: serial vs parallel, unlimited vs tight.
BENCHMARK(BM_ShardedMergeFiles)
    ->Args({64, 1, 0})
    ->Args({64, 8, 0})
    ->Args({64, 8, 4})
    ->Args({256, 8, 0})
    ->Args({256, 8, 16})
    ->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
