// pdbmerge scaling: number of translation units and duplicate ratio.
//
// The paper's claim (Table 2): merging eliminates duplicate template
// instantiations across compilations. The dedup_ratio counter reports
// how much of the input volume the merge collapsed.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/workloads.h"
#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"

namespace {

pdt::ductape::PDB makeUnit(int unit, int shared, int unique) {
  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource("tu" + std::to_string(unit) + ".cpp",
                                 pdt::bench::mergeUnit(unit, shared, unique));
  return pdt::ductape::PDB::fromPdbFile(pdt::ilanalyzer::analyze(result, sm));
}

void BM_MergeUnits(benchmark::State& state) {
  const int units = static_cast<int>(state.range(0));
  const int shared = static_cast<int>(state.range(1));
  const int unique = static_cast<int>(state.range(2));

  std::vector<pdt::ductape::PDB> inputs;
  std::size_t input_items = 0;
  for (int u = 0; u < units; ++u) {
    inputs.push_back(makeUnit(u, shared, unique));
    input_items += inputs.back().getItemVec().size();
  }

  std::size_t merged_items = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // merge() mutates; re-clone the first unit via its raw representation.
    pdt::ductape::PDB merged =
        pdt::ductape::PDB::fromPdbFile(inputs[0].raw());
    state.ResumeTiming();
    for (int u = 1; u < units; ++u) merged.merge(inputs[u]);
    merged_items = merged.getItemVec().size();
    benchmark::DoNotOptimize(merged);
  }
  state.counters["input_items"] = static_cast<double>(input_items);
  state.counters["merged_items"] = static_cast<double>(merged_items);
  state.counters["dedup_ratio"] =
      input_items == 0 ? 0.0
                       : 1.0 - static_cast<double>(merged_items) /
                                   static_cast<double>(input_items);
}
// All shared (high duplication), mixed, all unique (no duplication).
BENCHMARK(BM_MergeUnits)
    ->Args({4, 20, 0})
    ->Args({4, 10, 10})
    ->Args({4, 0, 20})
    ->Args({16, 10, 2});

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
