// Storage-format throughput: ASCII vs binary PDB v2 reads, lazy
// section-masked reads against the binary section index, and the merge
// pipeline fed from each format (docs/PDB_FORMAT.md §binary-v2).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "ductape/ductape.h"
#include "pdb/format.h"
#include "pdb/pdb.h"
#include "tools/tools.h"

namespace {

using pdt::pdb::Format;
using pdt::pdb::Sections;

/// A database with the section shape of real cross-TU merges: routines
/// with calls and extents, a large type section, and classes with
/// members — so a section-masked read has real bytes to skip.
pdt::pdb::PdbFile synthesize(int routines) {
  pdt::pdb::PdbFile pdb;
  pdt::pdb::SourceFileItem file;
  file.name = "synth.cpp";
  const auto file_id = pdb.addSourceFile(std::move(file));

  pdt::pdb::TypeItem sig;
  sig.name = "int (int)";
  sig.kind = "func";
  const auto sig_id = pdb.addType(std::move(sig));
  for (int i = 0; i < routines; ++i) {
    pdt::pdb::TypeItem ty;
    ty.name = pdb.own("T" + std::to_string(i) + "<int>");
    ty.kind = "tparam";
    pdb.addType(std::move(ty));
  }

  for (int i = 0; i < routines / 10 + 1; ++i) {
    pdt::pdb::ClassItem cls;
    cls.name = pdb.own("C" + std::to_string(i));
    cls.kind = "class";
    cls.location = {file_id, static_cast<std::uint32_t>(i + 1), 1};
    pdt::pdb::ClassItem::Member mem;
    mem.name = "field";
    mem.access = "priv";
    mem.kind = "var";
    mem.type = {pdt::pdb::ItemKind::Type, sig_id};
    cls.members.push_back(std::move(mem));
    pdb.addClass(std::move(cls));
  }

  for (int i = 0; i < routines; ++i) {
    pdt::pdb::RoutineItem r;
    r.name = pdb.own("fn" + std::to_string(i));
    r.location = {file_id, static_cast<std::uint32_t>(i + 1), 1};
    r.signature = sig_id;
    r.defined = true;
    if (i > 0) {
      r.calls.push_back({static_cast<std::uint32_t>(i), false,
                         {file_id, static_cast<std::uint32_t>(i + 1), 5}});
    }
    r.extent = {{file_id, static_cast<std::uint32_t>(i + 1), 1},
                {file_id, static_cast<std::uint32_t>(i + 1), 10},
                {file_id, static_cast<std::uint32_t>(i + 1), 12},
                {file_id, static_cast<std::uint32_t>(i + 1), 40}};
    pdb.addRoutine(std::move(r));
  }
  return pdb;
}

void readBench(benchmark::State& state, Format format, Sections sections) {
  const std::string bytes =
      pdt::pdb::writeString(synthesize(static_cast<int>(state.range(0))), format);
  for (auto _ : state) {
    auto result = pdt::pdb::readBuffer(bytes, sections);
    if (!result.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(result.pdb);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ReadAscii(benchmark::State& state) {
  readBench(state, Format::Ascii, Sections::All);
}
BENCHMARK(BM_ReadAscii)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ReadBinary(benchmark::State& state) {
  readBench(state, Format::Binary, Sections::All);
}
BENCHMARK(BM_ReadBinary)->Arg(100)->Arg(1000)->Arg(10000);

// Lazy single-section read (the pdbtree --includes shape): the binary
// section index skips every unrequested section in O(1).
void BM_ReadBinaryLazy(benchmark::State& state) {
  readBench(state, Format::Binary, Sections::SourceFiles);
}
BENCHMARK(BM_ReadBinaryLazy)->Arg(100)->Arg(1000)->Arg(10000);

// The ASCII reader still scans every line under a mask; this is the
// baseline the binary index beats.
void BM_ReadAsciiLazy(benchmark::State& state) {
  readBench(state, Format::Ascii, Sections::SourceFiles);
}
BENCHMARK(BM_ReadAsciiLazy)->Arg(1000)->Arg(10000);

void mergeBench(benchmark::State& state, Format format) {
  constexpr int kInputs = 4;
  const std::string bytes =
      pdt::pdb::writeString(synthesize(static_cast<int>(state.range(0))), format);
  for (auto _ : state) {
    std::vector<pdt::ductape::PDB> inputs;
    inputs.reserve(kInputs);
    for (int i = 0; i < kInputs; ++i) {
      auto result = pdt::pdb::readBuffer(bytes);
      if (!result.ok()) state.SkipWithError("parse failed");
      inputs.push_back(pdt::ductape::PDB::fromPdbFile(result.pdb));
    }
    auto merged = pdt::tools::pdbmerge(std::move(inputs), 1);
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * kInputs);
}

void BM_MergeFromAscii(benchmark::State& state) {
  mergeBench(state, Format::Ascii);
}
BENCHMARK(BM_MergeFromAscii)->Arg(1000);

void BM_MergeFromBinary(benchmark::State& state) {
  mergeBench(state, Format::Binary);
}
BENCHMARK(BM_MergeFromBinary)->Arg(1000);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
