// Table 2 reproduction: the DUCTAPE utilities and their functionality,
// demonstrated live on the paper's Stack example.
//
//   pdbconv  | converts compact PDB into a more readable format
//   pdbhtml  | web documentation with HTML navigation links
//   pdbmerge | merges PDBs, eliminating duplicate template instantiations
//   pdbtree  | file inclusion, class hierarchy, call graph trees
#include <iostream>
#include <sstream>

#include "bench/bench_json.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdt/pdt_paths.h"
#include "tools/tools.h"

namespace {

pdt::ductape::PDB stackPdb(const std::string& tu_name) {
  pdt::SourceManager sm;
  pdt::DiagnosticEngine diags;
  pdt::frontend::FrontendOptions options;
  options.include_dirs.push_back(std::string(pdt::paths::kRuntimeDir) +
                                 "/pdt_stl");
  pdt::frontend::Frontend frontend(sm, diags, options);
  // Register the same Stack sources under a per-TU driver name so merge
  // sees two compilations of the shared header.
  const std::string driver = "#include \"" +
                             std::string(pdt::paths::kInputDir) +
                             "/stack/StackAr.h\"\n"
                             "void " +
                             tu_name +
                             "() {\n    Stack<int> s;\n    s.push(1);\n}\n";
  auto result = frontend.compileSource(tu_name + ".cpp", driver);
  return pdt::ductape::PDB::fromPdbFile(pdt::ilanalyzer::analyze(result, sm));
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

void report(const char* util, const char* functionality, bool ok) {
  std::cout << "  " << util << "\n      " << functionality << "\n      "
            << (ok ? "[demonstrated]" : "[FAILED]") << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const pdt::benchutil::PlainBenchTimer bench_timer(
      argv[0] != nullptr ? argv[0] : "bench",
      pdt::benchutil::extractJsonPath(argc, argv));
  std::cout << "Table 2: DUCTAPE Utilities\n";
  std::cout << "==========================\n\n";

  pdt::ductape::PDB a = stackPdb("tu_a");
  pdt::ductape::PDB b = stackPdb("tu_b");
  int failures = 0;

  {  // pdbconv
    std::ostringstream os;
    pdt::tools::pdbconv(a, os);
    const bool ok = contains(os.str(), "Stack<int>") &&
                    contains(os.str(), "instantiated from template Stack") &&
                    contains(os.str(), "Routines");
    report("pdbconv",
           "converts files in the compact PDB format into a more readable "
           "format",
           ok);
    failures += !ok;
  }
  {  // pdbhtml
    std::ostringstream os;
    pdt::tools::pdbhtml(a, os, "Stack");
    const bool ok = contains(os.str(), "<!DOCTYPE html>") &&
                    contains(os.str(), "href=\"#ro") &&
                    contains(os.str(), "href=\"#cl");
    report("pdbhtml",
           "automatically creates web-based documentation that enables "
           "navigation of code via HTML links",
           ok);
    failures += !ok;
  }
  {  // pdbmerge
    const std::size_t before_classes = a.getClassVec().size();
    std::size_t stack_int_before = 0;
    for (const auto* c : a.getClassVec())
      stack_int_before += c->name() == "Stack<int>";
    a.merge(b);
    std::size_t stack_int_after = 0;
    for (const auto* c : a.getClassVec())
      stack_int_after += c->name() == "Stack<int>";
    const bool ok = stack_int_before == 1 && stack_int_after == 1 &&
                    a.getClassVec().size() == before_classes;
    report("pdbmerge",
           "merges PDB files from separate compilations into one PDB file, "
           "eliminating duplicate template instantiations in the process",
           ok);
    failures += !ok;
  }
  {  // pdbtree
    std::ostringstream inc, cls, calls;
    pdt::tools::pdbtree(a, pdt::tools::TreeKind::Includes, inc);
    pdt::tools::pdbtree(a, pdt::tools::TreeKind::ClassHierarchy, cls);
    pdt::tools::pdbtree(a, pdt::tools::TreeKind::CallGraph, calls);
    const bool ok = contains(inc.str(), "StackAr.h") &&
                    contains(cls.str(), "Stack<int>") &&
                    contains(calls.str(), "`--> Stack<int>::push");
    report("pdbtree",
           "displays file inclusion, class hierarchy, and call graph trees",
           ok);
    failures += !ok;

    std::cout << "--- pdbtree --calls output (cf. paper Figure 5) ---\n"
              << calls.str() << '\n';
  }
  return failures == 0 ? 0 : 1;
}
