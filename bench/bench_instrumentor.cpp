// TAU instrumentor rewrite throughput and SILOON generation throughput.
#include <benchmark/benchmark.h>

#include "bench/workloads.h"
#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "siloon/siloon.h"
#include "tau/instrumentor.h"

namespace {

struct Prepared {
  std::string source;
  pdt::ductape::PDB pdb;

  explicit Prepared(std::string src) : source(std::move(src)) {
    pdt::SourceManager sm;
    pdt::DiagnosticEngine diags;
    pdt::frontend::Frontend fe(sm, diags);
    auto result = fe.compileSource("bench.cpp", source);
    pdb = pdt::ductape::PDB::fromPdbFile(pdt::ilanalyzer::analyze(result, sm));
  }
};

void BM_TauPlan(benchmark::State& state) {
  Prepared p(pdt::bench::manyInstantiations(static_cast<int>(state.range(0))));
  std::size_t sites = 0;
  for (auto _ : state) {
    auto plan = pdt::tau::planInstrumentation(p.pdb, "bench.cpp");
    sites = plan.size();
    benchmark::DoNotOptimize(plan);
  }
  state.counters["sites"] = static_cast<double>(sites);
}
BENCHMARK(BM_TauPlan)->Arg(50)->Arg(200);

void BM_TauRewrite(benchmark::State& state) {
  Prepared p(pdt::bench::manyInstantiations(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    const std::string out =
        pdt::tau::instrument(p.pdb, "bench.cpp", p.source);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.source.size()));
}
BENCHMARK(BM_TauRewrite)->Arg(50)->Arg(200);

void BM_SiloonGenerate(benchmark::State& state) {
  Prepared p(pdt::bench::manyInstantiations(static_cast<int>(state.range(0))));
  std::size_t registered = 0;
  for (auto _ : state) {
    auto bindings = pdt::siloon::generate(p.pdb);
    registered = bindings.registered.size();
    benchmark::DoNotOptimize(bindings);
  }
  state.counters["registered"] = static_cast<double>(registered);
}
BENCHMARK(BM_SiloonGenerate)->Arg(20)->Arg(100);

void BM_SiloonMangle(benchmark::State& state) {
  const std::string name = "Outer<Inner<int, double> >::operator[]";
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdt::siloon::mangle(name));
  }
}
BENCHMARK(BM_SiloonMangle);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
