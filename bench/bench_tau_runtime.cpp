// TAU measurement runtime overhead: cost of one profiled scope (the
// paper's instrumentation inserts one per routine call), the RTTI name
// lookup (CT), and tracing.
#include <benchmark/benchmark.h>

#include "TAU.h"

namespace {

int plainWork(int x) { return x + 1; }

int profiledWork(int x) {
  TAU_PROFILE("profiledWork()", std::string(""), TAU_DEFAULT);
  return x + 1;
}

template <typename T>
struct Typed {
  int work(int x) {
    TAU_PROFILE("Typed::work()", CT(*this), TAU_DEFAULT);
    return x + 1;
  }
};

void BM_UninstrumentedCall(benchmark::State& state) {
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v = plainWork(v));
  }
}
BENCHMARK(BM_UninstrumentedCall);

void BM_ProfiledCall(benchmark::State& state) {
  tau::reset();
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v = profiledWork(v));
  }
}
BENCHMARK(BM_ProfiledCall);

void BM_ProfiledCallWithRtti(benchmark::State& state) {
  tau::reset();
  Typed<double> t;
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v = t.work(v));
  }
}
BENCHMARK(BM_ProfiledCallWithRtti);

void BM_ProfiledCallTraced(benchmark::State& state) {
  tau::reset();
  tau::enableTracing(1u << 20);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v = profiledWork(v));
  }
  tau::disableTracing();
}
BENCHMARK(BM_ProfiledCallTraced);

void BM_GetFunctionInfo(benchmark::State& state) {
  tau::reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tau::getFunctionInfo("some routine()", "SomeType<int>", 0));
  }
}
BENCHMARK(BM_GetFunctionInfo);

void BM_TypeName(benchmark::State& state) {
  const Typed<double> t;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tau::typeNameOf(t));
  }
}
BENCHMARK(BM_TypeName);

void BM_NestedProfiledScopes(benchmark::State& state) {
  tau::reset();
  for (auto _ : state) {
    TAU_PROFILE("outer()", std::string(""), TAU_DEFAULT);
    {
      TAU_PROFILE("inner()", std::string(""), TAU_DEFAULT);
      benchmark::DoNotOptimize(state.iterations());
    }
  }
}
BENCHMARK(BM_NestedProfiledScopes);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
