// Production-scale TAU runtime benchmarks: lock-free enter/exit under
// thread contention against a compiled-in mutex-per-exit baseline (the
// pre-rework design), trace streaming throughput, and the tauprof merge
// of 100 per-thread profile files.
//
// The acceptance bar for the rework: BM_LockFreeEnterExit/threads:8 must
// be at least 5x faster per op than BM_MutexBaselineEnterExit/threads:8.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <unistd.h>

#include "TAU.h"
#include "tau/profile_merge.h"

namespace {

namespace fs = std::filesystem;

int profiledWork(int x) {
  TAU_PROFILE("benchWork()", std::string(""), TAU_DEFAULT);
  return x + 1;
}

// -- mutex-per-exit baseline --------------------------------------------------
//
// What the runtime did before per-thread buffers (the seed
// tau_runtime.cpp): every TAU_PROFILE entry called getFunctionInfo,
// which built a string key and searched the shared registry map under a
// process-wide mutex, and every scope exit took the same mutex again to
// bump the shared FunctionInfo totals. Replicated here verbatim so the
// comparison runs on identical hardware in the same binary.

struct BaselineFn {
  std::string name;
  std::string type;
  std::uint64_t calls = 0;
  std::uint64_t child_calls = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t exclusive_ns = 0;
};

struct BaselineRegistry {
  std::mutex mutex;
  std::unordered_map<std::string, BaselineFn*> by_key;
  std::vector<std::unique_ptr<BaselineFn>> all;
};

BaselineRegistry g_baseline;

std::uint64_t baselineNow() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

BaselineFn* baselineGetFunctionInfo(const std::string& name,
                                    const std::string& type) {
  const std::string key = name + '\x1f' + type;
  const std::lock_guard<std::mutex> lock(g_baseline.mutex);
  if (const auto it = g_baseline.by_key.find(key);
      it != g_baseline.by_key.end())
    return it->second;
  g_baseline.all.push_back(std::make_unique<BaselineFn>());
  BaselineFn* fn = g_baseline.all.back().get();
  fn->name = name;
  fn->type = type;
  g_baseline.by_key.emplace(key, fn);
  return fn;
}

class BaselineProfiler {
 public:
  explicit BaselineProfiler(BaselineFn* fn)
      : fn_(fn), start_ns_(baselineNow()) {}
  ~BaselineProfiler() {
    const std::uint64_t inclusive = baselineNow() - start_ns_;
    const std::lock_guard<std::mutex> lock(g_baseline.mutex);
    fn_->calls += 1;
    fn_->inclusive_ns += inclusive;
    fn_->exclusive_ns += inclusive;
  }

 private:
  BaselineFn* fn_;
  std::uint64_t start_ns_;
};

int baselineWork(int x) {
  BaselineProfiler prof(
      baselineGetFunctionInfo("benchWork()", std::string("")));
  return x + 1;
}

/// Seed-runtime report(): snapshot-copy every FunctionInfo under the
/// registry mutex (string copies and all), format outside the lock.
std::string baselineReport() {
  std::vector<BaselineFn> snapshot;
  {
    const std::lock_guard<std::mutex> lock(g_baseline.mutex);
    snapshot.reserve(g_baseline.all.size());
    for (const auto& fn : g_baseline.all) snapshot.push_back(*fn);
  }
  std::ostringstream os;
  for (const BaselineFn& fn : snapshot)
    os << fn.calls << ' ' << fn.inclusive_ns << ' ' << fn.exclusive_ns << ' '
       << fn.name << fn.type << '\n';
  return os.str();
}

// A production registry has hundreds of instrumented routines; the
// reporter's lock hold (and report size) scales with it.
constexpr int kRegistryRoutines = 128;

void populateBaselineRegistry() {
  for (int i = 0; i < kRegistryRoutines; ++i) {
    BaselineFn* fn = baselineGetFunctionInfo(
        "routine" + std::to_string(i) + "()", std::string(""));
    const std::lock_guard<std::mutex> lock(g_baseline.mutex);
    fn->calls += 1;
  }
}

void populateTauRegistry() {
  for (int i = 0; i < kRegistryRoutines; ++i) {
    tau::Profiler prof(tau::getFunctionInfo(
        "routine" + std::to_string(i) + "()", std::string(""), TAU_DEFAULT));
  }
  tau::flushThread();  // make all rows visible to the reporter thread
}

// -- benchmarks ---------------------------------------------------------------

void BM_LockFreeEnterExit(benchmark::State& state) {
  if (state.thread_index() == 0) tau::reset();
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v = profiledWork(v));
  }
}
BENCHMARK(BM_LockFreeEnterExit)->Threads(1)->Threads(8);

void BM_MutexBaselineEnterExit(benchmark::State& state) {
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v = baselineWork(v));
  }
}
BENCHMARK(BM_MutexBaselineEnterExit)->Threads(1)->Threads(8);

// Production scenario: a monitor thread continuously reads the profile
// out while the application runs. In the seed runtime the reader's
// snapshot copy holds the same mutex every Profiler exit takes, so
// instrumented work stalls behind each readout; the lock-free runtime's
// exit path never touches the registry mutex.

void BM_LockFreeEnterExitConcurrentReport(benchmark::State& state) {
  tau::reset();
  populateTauRegistry();
  std::atomic<bool> stop{false};
  std::thread reporter([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::ostringstream os;
      tau::report(os);
      benchmark::DoNotOptimize(os.str().size());
    }
  });
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v = profiledWork(v));
  }
  stop.store(true, std::memory_order_relaxed);
  reporter.join();
}
BENCHMARK(BM_LockFreeEnterExitConcurrentReport);

void BM_MutexBaselineEnterExitConcurrentReport(benchmark::State& state) {
  populateBaselineRegistry();
  std::atomic<bool> stop{false};
  std::thread reporter([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      benchmark::DoNotOptimize(baselineReport().size());
    }
  });
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v = baselineWork(v));
  }
  stop.store(true, std::memory_order_relaxed);
  reporter.join();
}
BENCHMARK(BM_MutexBaselineEnterExitConcurrentReport);

// The synchronization cost the rework actually removed, isolated from
// the clock reads both designs share (two steady_clock calls dominate
// full enter/exit at ~60ns on this host). Old design: process-wide
// mutex around the shared totals on every exit. New design: plain
// increments into the thread's own delta buffer, index-addressed.

void BM_ExitBookkeepingLockFree(benchmark::State& state) {
  // Per-thread delta buffer, as ThreadData::counts in the reworked runtime.
  std::vector<BaselineFn> counts(kRegistryRoutines);
  std::size_t i = 0;
  for (auto _ : state) {
    BaselineFn& c = counts[i++ & (kRegistryRoutines - 1)];
    c.calls += 1;
    c.child_calls += 1;
    c.inclusive_ns += 42;
    c.exclusive_ns += 21;
    benchmark::DoNotOptimize(c.calls);
  }
}
BENCHMARK(BM_ExitBookkeepingLockFree)->Threads(1)->Threads(8);

void BM_ExitBookkeepingMutex(benchmark::State& state) {
  BaselineFn* fn = baselineGetFunctionInfo("exit()", std::string(""));
  for (auto _ : state) {
    const std::lock_guard<std::mutex> lock(g_baseline.mutex);
    fn->calls += 1;
    fn->child_calls += 1;
    fn->inclusive_ns += 42;
    fn->exclusive_ns += 21;
  }
  benchmark::DoNotOptimize(fn->calls);
}
BENCHMARK(BM_ExitBookkeepingMutex)->Threads(1)->Threads(8);

void BM_TraceStreaming(benchmark::State& state) {
  const fs::path file =
      fs::temp_directory_path() /
      ("bench_tau_trace_" + std::to_string(::getpid()) + ".txt");
  tau::reset();
  tau::streamTraceTo(file.string(), 4096);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v = profiledWork(v));
  }
  state.SetItemsProcessed(state.iterations() * 2);  // enter + exit events
  tau::disableTracing();
  fs::remove(file);
}
BENCHMARK(BM_TraceStreaming);

void BM_TraceRing(benchmark::State& state) {
  tau::reset();
  tau::enableTracing(1u << 16);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v = profiledWork(v));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  tau::disableTracing();
}
BENCHMARK(BM_TraceRing);

/// Writes one real per-thread profile file, then clones it 100 times —
/// the merge cost depends on record count, not on which thread wrote it.
std::vector<std::string> makeProfileCorpus(const fs::path& dir) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  tau::reset();
  for (int i = 0; i < 64; ++i) profiledWork(i);
  tau::writeProfileFiles(dir.string());
  fs::path seed;
  for (const auto& entry : fs::directory_iterator(dir)) seed = entry.path();
  std::string bytes;
  {
    std::ifstream in(seed, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  std::vector<std::string> paths;
  paths.reserve(100);
  for (int i = 0; i < 100; ++i) {
    const fs::path p = dir / ("profile.0.1." + std::to_string(i));
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    paths.push_back(p.string());
  }
  return paths;
}

void BM_Merge100ProfileFiles(benchmark::State& state) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("bench_tau_merge_" + std::to_string(::getpid()));
  const std::vector<std::string> paths = makeProfileCorpus(dir);
  for (auto _ : state) {
    std::vector<pdt::tau::ThreadProfile> profiles;
    profiles.reserve(paths.size());
    for (const std::string& path : paths) {
      auto profile = pdt::tau::readThreadProfile(path);
      if (profile) profiles.push_back(std::move(*profile));
    }
    const pdt::tau::MergedProfile merged =
        pdt::tau::mergeThreadProfiles(profiles);
    benchmark::DoNotOptimize(merged.entries.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(paths.size()));
  fs::remove_all(dir);
}
BENCHMARK(BM_Merge100ProfileFiles);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
