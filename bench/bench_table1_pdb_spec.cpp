// Table 1 reproduction: PDB item types, their attributes, and prefixes.
//
// Emits the table from the live implementation and VERIFIES it: a
// covering PDT-C++ input is compiled and the resulting PDB text is
// checked to actually contain every attribute key the table lists.
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/writer.h"

namespace {

// The attribute inventory per item type (docs/PDB_FORMAT.md), aligned
// with the paper's Table 1 rows.
struct Row {
  const char* item_type;
  const char* prefix;
  std::vector<const char*> attributes;
};

const std::vector<Row>& tableRows() {
  static const std::vector<Row> rows = {
      {"SOURCE FILES", "so", {"sinc"}},
      {"ROUTINES", "ro",
       {"rloc", "rclass", "racs", "rsig", "rlink", "rstore", "rvirt", "rkind",
        "rtempl", "rcall", "rpos", "rdef"}},
      {"CLASSES", "cl",
       {"cloc", "ckind", "ctempl", "cbase", "cfriend", "cfunc", "cmem", "cmloc",
        "cmacs", "cmkind", "cmtype", "cpos", "cacs"}},
      {"TYPES", "ty",
       {"ykind", "yikind", "yref", "ytref", "yqual", "yrett", "yargt", "yptr",
        "yexcep"}},
      {"TEMPLATES", "te", {"tloc", "tkind", "ttext", "tpos"}},
      {"NAMESPACES", "na", {"nloc", "nmem", "nalias"}},
      {"MACROS", "ma", {"mloc", "mkind", "mtext"}},
  };
  return rows;
}

// One input that exercises every attribute above.
constexpr const char* kCoveringInput = R"(
#include "cover.h"
#define LIMIT 128
#define SQR(x) ((x)*(x))

namespace util {
namespace detail { int helper() { return SQR(2); } }

class Printable {
public:
    virtual void print() const = 0;
};

template <class T>
class Holder : public Printable {
public:
    explicit Holder(const T& v) : value_(v) {}
    void print() const {}
    const T& peek() const throw(int) { return value_; }
    void poke(char* tag) { detail::helper(); }
private:
    friend class Inspector;
    T value_;
};

class Inspector {
public:
    class Report { public: int severity; };
    void inspect(Printable& p) { p.print(); }
};

void drive() {
    Holder<double> h(2.5);
    h.peek();
    h.poke(0);
    Inspector i;
    i.inspect(h);
}
}
namespace alias_u = util;
)";

}  // namespace

int main(int argc, char** argv) {
  const pdt::benchutil::PlainBenchTimer bench_timer(
      argv[0] != nullptr ? argv[0] : "bench",
      pdt::benchutil::extractJsonPath(argc, argv));
  pdt::SourceManager sm;
  sm.addVirtualFile("cover.h", "int covered;\n");
  pdt::DiagnosticEngine diags;
  pdt::frontend::Frontend frontend(sm, diags);
  auto result = frontend.compileSource("covering.cpp", kCoveringInput);
  if (!result.success) {
    diags.print(std::cerr, sm);
    return 1;
  }
  const auto pdb = pdt::ilanalyzer::analyze(result, sm);
  const std::string text = pdt::pdb::writeToString(pdb);

  std::cout << "Table 1: Program Database (PDB) Item Types, Attributes, and "
               "Prefixes\n";
  std::cout << "======================================================================\n";
  std::cout << "(emitted from the live implementation; [ok] = attribute "
               "verified present\n in the PDB of a covering input)\n\n";

  int missing = 0;
  for (const auto& row : tableRows()) {
    std::cout << row.item_type << "  (prefix \"" << row.prefix << "\")\n";
    for (const char* attr : row.attributes) {
      const bool present = text.find('\n' + std::string(attr) + ' ') !=
                               std::string::npos ||
                           text.find('\n' + std::string(attr) + '\n') !=
                               std::string::npos;
      std::cout << "    " << attr << (present ? "  [ok]" : "  [MISSING]")
                << '\n';
      if (!present) ++missing;
    }
    std::cout << '\n';
  }
  if (missing > 0) {
    std::cout << missing << " attributes missing from the covering PDB\n";
    return 1;
  }
  std::cout << "all attributes verified.\n";
  return 0;
}
