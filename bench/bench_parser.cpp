// Frontend (parse + sema) throughput: template-free vs template-heavy
// inputs of matching size — quantifying the cost of template machinery.
#include <benchmark/benchmark.h>

#include "bench/workloads.h"
#include "frontend/frontend.h"
#include "pdt/pdt_paths.h"

namespace {

void compileOnce(const std::string& src, benchmark::State& state,
                 bool used_mode = true) {
  for (auto _ : state) {
    pdt::SourceManager sm;
    pdt::DiagnosticEngine diags;
    pdt::frontend::FrontendOptions options;
    options.sema.used_mode = used_mode;
    pdt::frontend::Frontend fe(sm, diags, options);
    auto result = fe.compileSource("bench.cpp", src);
    benchmark::DoNotOptimize(result.success);
    if (!result.success) state.SkipWithError("compile failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}

void BM_CompilePlainClasses(benchmark::State& state) {
  compileOnce(pdt::bench::plainClasses(static_cast<int>(state.range(0))), state);
}
BENCHMARK(BM_CompilePlainClasses)->Arg(10)->Arg(100)->Arg(300);

void BM_CompileTemplateHeavy(benchmark::State& state) {
  compileOnce(pdt::bench::manyInstantiations(static_cast<int>(state.range(0))),
              state);
}
BENCHMARK(BM_CompileTemplateHeavy)->Arg(10)->Arg(100)->Arg(300);

void BM_CompileCallChain(benchmark::State& state) {
  compileOnce(pdt::bench::callChain(static_cast<int>(state.range(0))), state);
}
BENCHMARK(BM_CompileCallChain)->Arg(50)->Arg(500);

void BM_CompileStackExample(benchmark::State& state) {
  // The paper's Figure 1 program, headers and all.
  for (auto _ : state) {
    pdt::SourceManager sm;
    pdt::DiagnosticEngine diags;
    pdt::frontend::FrontendOptions options;
    options.include_dirs.push_back(std::string(pdt::paths::kRuntimeDir) + "/pdt_stl");
    pdt::frontend::Frontend fe(sm, diags, options);
    auto result =
        fe.compileFile(std::string(pdt::paths::kInputDir) + "/stack/TestStackAr.cpp");
    benchmark::DoNotOptimize(result.success);
    if (!result.success) state.SkipWithError("compile failed");
  }
}
BENCHMARK(BM_CompileStackExample);

void BM_CompileKrylovExample(benchmark::State& state) {
  for (auto _ : state) {
    pdt::SourceManager sm;
    pdt::DiagnosticEngine diags;
    pdt::frontend::FrontendOptions options;
    options.include_dirs.push_back(std::string(pdt::paths::kRuntimeDir) + "/pdt_stl");
    options.include_dirs.push_back(std::string(pdt::paths::kInputDir) + "/pooma_mini");
    pdt::frontend::Frontend fe(sm, diags, options);
    auto result =
        fe.compileFile(std::string(pdt::paths::kInputDir) + "/pooma_mini/krylov.cpp");
    benchmark::DoNotOptimize(result.success);
    if (!result.success) state.SkipWithError("compile failed");
  }
}
BENCHMARK(BM_CompileKrylovExample);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
