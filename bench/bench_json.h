// JSON summary output shared by every bench_* binary: records are written
// as an array of {"name", "iters", "ns_per_op"} objects when --json <path>
// is passed. String escaping comes from support/text.h (one escaper for
// every JSON writer in the tree); the google-benchmark binaries layer a
// collecting reporter on top (bench_main.h).
#pragma once

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "support/text.h"

namespace pdt::benchutil {

struct JsonRecord {
  std::string name;
  long long iters = 0;
  double ns_per_op = 0.0;
};

inline std::string jsonEscape(const std::string& text) {
  return escapeJson(text);
}

inline bool writeJson(const std::string& path,
                      const std::vector<JsonRecord>& records) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write '" << path << "'\n";
    return false;
  }
  os << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    os << "  {\"name\": \"" << jsonEscape(records[i].name)
       << "\", \"iters\": " << records[i].iters
       << ", \"ns_per_op\": " << records[i].ns_per_op << "}"
       << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.good();
}

/// Consumes --json/--json=<path> from argv and returns the path (empty if
/// absent). The remaining argv is compacted in place.
inline std::string extractJsonPath(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

/// Wall-clock scope timer for the PLAIN benches: measures main's body and
/// writes a single {name, iters: 1, ns_per_op} record on destruction.
class PlainBenchTimer {
 public:
  PlainBenchTimer(std::string name, std::string json_path)
      : name_(std::move(name)),
        json_path_(std::move(json_path)),
        start_(std::chrono::steady_clock::now()) {
    // argv[0] may be a path; keep just the binary name.
    if (const auto slash = name_.find_last_of('/'); slash != std::string::npos)
      name_ = name_.substr(slash + 1);
  }

  ~PlainBenchTimer() {
    if (json_path_.empty()) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    JsonRecord record;
    record.name = name_;
    record.iters = 1;
    record.ns_per_op = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    writeJson(json_path_, {record});
  }

 private:
  std::string name_;
  std::string json_path_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pdt::benchutil
