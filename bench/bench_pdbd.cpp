// pdbd service latency and hot-swap cost, measured in-process through
// Service::handle (no socket, so the numbers isolate the query layer
// from transport variance):
//
//   * per-verb request latency p50/p99 over a prewarmed generation
//     (calltree, lookup, defuse) — the steady-state cost of one request;
//   * aggregate queries/s with 4 client threads hammering one
//     generation — the wait-free read path under contention;
//   * swap cost: open + index prewarm + publish of a replacement
//     database while queries keep flowing.
//
// JSON records (BENCH_pr10.json): percentiles are exported as
// ns_per_op with iters = sample count; throughput as ns per query
// across all threads.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "pdb/pdb.h"
#include "pdbd/proto.h"
#include "pdbd/service.h"
#include "tools/synth.h"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double toNs(Clock::duration d) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

/// Writes a synthetic database roughly at merged-seed scale; `salt`
/// varies the unit so the swap target is a genuinely different file.
std::string corpusFile(int salt) {
  pdt::tools::SynthOptions opts;
  opts.shared_classes = 48;
  opts.unique_classes = 48;
  opts.routines = 160;
  opts.name_bytes = 512;
  const fs::path path = fs::temp_directory_path() /
                        ("pdt_bench_pdbd_" + std::to_string(salt) + ".pdb");
  pdt::pdb::writeFile(pdt::tools::synthUnit(salt, opts), path.string(),
                      pdt::pdb::Format::Binary);
  return path.string();
}

pdt::pdbd::Message parseOrDie(const std::string& line) {
  pdt::pdbd::Message msg;
  std::string error;
  if (!pdt::pdbd::parseMessage(line, msg, error)) {
    std::cerr << "bad request literal: " << error << '\n';
    std::exit(1);
  }
  return msg;
}

double percentile(std::vector<double>& samples, double p) {
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = pdt::benchutil::extractJsonPath(argc, argv);
  std::vector<pdt::benchutil::JsonRecord> records;

  const std::string primary = corpusFile(0);
  const std::string replacement = corpusFile(1);

  pdt::pdbd::Service service;
  std::string error;
  if (!service.load(primary, error)) {
    std::cerr << "load failed: " << error << '\n';
    return 1;
  }

  // --- per-verb latency percentiles over the prewarmed generation ---
  const std::pair<const char*, std::string> kVerbs[] = {
      {"calltree", R"({"q": "calltree"})"},
      {"lookup", R"({"q": "lookup", "name": "tu0_fn0"})"},
      {"defuse", R"({"q": "defuse", "defs": true, "uses": true})"},
  };
  constexpr int kSamples = 200;
  for (const auto& [verb, literal] : kVerbs) {
    const pdt::pdbd::Message request = parseOrDie(literal);
    std::string response = service.handle(request);  // warm-up
    std::vector<double> ns;
    ns.reserve(kSamples);
    for (int i = 0; i < kSamples; ++i) {
      const auto t0 = Clock::now();
      response = service.handle(request);
      ns.push_back(toNs(Clock::now() - t0));
    }
    const double p50 = percentile(ns, 0.50);
    const double p99 = percentile(ns, 0.99);
    std::cout << "pdbd." << verb << ": p50 " << p50 / 1e3 << " us, p99 "
              << p99 / 1e3 << " us (bytes " << response.size() << ")\n";
    records.push_back({std::string("pdbd.") + verb + ".p50", kSamples, p50});
    records.push_back({std::string("pdbd.") + verb + ".p99", kSamples, p99});
  }

  // --- aggregate throughput: 4 threads, mixed verbs, one generation ---
  {
    constexpr int kThreads = 4;
    constexpr int kPerThread = 400;
    std::vector<pdt::pdbd::Message> requests;
    for (const auto& [verb, literal] : kVerbs) requests.push_back(parseOrDie(literal));
    std::atomic<bool> start{false};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    const auto t0 = Clock::now();
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int i = 0; i < kPerThread; ++i)
          (void)service.handle(requests[(t + i) % requests.size()]);
      });
    }
    start.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    const double total_ns = toNs(Clock::now() - t0);
    const long long queries = kThreads * kPerThread;
    const double ns_per_query = total_ns / static_cast<double>(queries);
    std::cout << "pdbd.throughput: " << 1e9 / ns_per_query * kThreads
              << " queries/s across " << kThreads << " threads\n";
    records.push_back({"pdbd.throughput.4t", queries, ns_per_query});
  }

  // --- swap cost: open + prewarm + publish while queries keep flowing ---
  {
    constexpr int kSwaps = 10;
    std::atomic<bool> stop{false};
    std::thread background([&] {
      const pdt::pdbd::Message request = parseOrDie(R"({"q": "calltree"})");
      while (!stop.load(std::memory_order_acquire)) (void)service.handle(request);
    });
    std::vector<double> ns;
    ns.reserve(kSwaps);
    for (int i = 0; i < kSwaps; ++i) {
      const std::string& target = (i % 2) == 0 ? replacement : primary;
      const auto t0 = Clock::now();
      if (!service.load(target, error)) {
        std::cerr << "swap failed: " << error << '\n';
        stop.store(true, std::memory_order_release);
        background.join();
        return 1;
      }
      ns.push_back(toNs(Clock::now() - t0));
    }
    stop.store(true, std::memory_order_release);
    background.join();
    const double p50 = percentile(ns, 0.50);
    std::cout << "pdbd.swap: p50 " << p50 / 1e6 << " ms under query load\n";
    records.push_back({"pdbd.swap.p50", kSwaps, p50});
  }

  if (!json_path.empty() && !pdt::benchutil::writeJson(json_path, records))
    return 1;
  return 0;
}
