// Lexing + preprocessing throughput vs input size.
#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "bench/workloads.h"
#include "lex/preprocessor.h"
#include "pdt/pdt_paths.h"
#include "support/source_manager.h"
#include "support/token_arena.h"

namespace {

void BM_RawLex(benchmark::State& state) {
  const std::string src = pdt::bench::plainClasses(static_cast<int>(state.range(0)));
  pdt::DiagnosticEngine diags;
  for (auto _ : state) {
    pdt::lex::RawLexer lexer(pdt::FileId{1}, src, diags);
    std::size_t tokens = 0;
    for (auto t = lexer.next(); !t.isEnd(); t = lexer.next()) ++tokens;
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
  state.counters["source_bytes"] = static_cast<double>(src.size());
}
BENCHMARK(BM_RawLex)->Arg(10)->Arg(100)->Arg(500);

void BM_BatchLex(benchmark::State& state) {
  // The zero-allocation fast path: string_view tokens into a pre-reserved
  // buffer via RawLexer::lexAll. Same input as BM_RawLex so the two are
  // directly comparable across snapshots.
  const std::string src = pdt::bench::plainClasses(static_cast<int>(state.range(0)));
  pdt::DiagnosticEngine diags;
  pdt::TokenArena arena;
  std::size_t tokens = 0;
  for (auto _ : state) {
    pdt::lex::RawLexer lexer(pdt::FileId{1}, src, diags, &arena);
    std::vector<pdt::lex::Token> out;
    lexer.lexAll(out);
    tokens = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tokens));
  state.counters["tokens"] = static_cast<double>(tokens);
}
BENCHMARK(BM_BatchLex)->Arg(10)->Arg(100)->Arg(500);

void BM_BatchLexKrylov(benchmark::State& state) {
  // Real corpus file (the paper's Fig. 7 Krylov solver workload).
  const std::string path =
      std::string(pdt::paths::kInputDir) + "/pooma_mini/krylov.cpp";
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string src = std::move(ss).str();
  pdt::DiagnosticEngine diags;
  pdt::TokenArena arena;
  std::size_t tokens = 0;
  for (auto _ : state) {
    pdt::lex::RawLexer lexer(pdt::FileId{1}, src, diags, &arena);
    std::vector<pdt::lex::Token> out;
    lexer.lexAll(out);
    tokens = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tokens));
}
BENCHMARK(BM_BatchLexKrylov);

void BM_Preprocess(benchmark::State& state) {
  const std::string src = pdt::bench::plainClasses(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    pdt::SourceManager sm;
    pdt::DiagnosticEngine diags;
    const auto file = sm.addVirtualFile("bench.cpp", src);
    pdt::lex::Preprocessor pp(sm, diags);
    pp.enterMainFile(file);
    std::size_t tokens = 0;
    while (!pp.next().isEnd()) ++tokens;
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Preprocess)->Arg(10)->Arg(100)->Arg(500);

void BM_PreprocessMacroHeavy(benchmark::State& state) {
  // Function-like macro expansion in a loop body.
  std::string src = "#define SQR(x) ((x)*(x))\n#define ADD(a,b) ((a)+(b))\n";
  src += "int driver() {\n    int t = 0;\n";
  for (int i = 0; i < state.range(0); ++i) {
    src += "    t = ADD(t, SQR(" + std::to_string(i) + "));\n";
  }
  src += "    return t;\n}\n";
  for (auto _ : state) {
    pdt::SourceManager sm;
    pdt::DiagnosticEngine diags;
    const auto file = sm.addVirtualFile("macros.cpp", src);
    pdt::lex::Preprocessor pp(sm, diags);
    pp.enterMainFile(file);
    std::size_t tokens = 0;
    while (!pp.next().isEnd()) ++tokens;
    benchmark::DoNotOptimize(tokens);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PreprocessMacroHeavy)->Arg(100)->Arg(1000);

}  // namespace

#include "bench/bench_main.h"
PDT_BENCH_MAIN()
