// Synthetic PDT-C++ workload generators shared by the benchmarks.
//
// The shapes mimic what made POOMA the paper's stress test: many classes,
// many distinct template instantiations, deep template nesting, and long
// call chains.
#pragma once

#include <string>

namespace pdt::bench {

/// N plain classes, each with a few members and methods, plus a driver
/// that uses them. Template-free baseline.
inline std::string plainClasses(int n) {
  std::string src;
  for (int i = 0; i < n; ++i) {
    const std::string id = std::to_string(i);
    src += "class C" + id + " {\n";
    src += "public:\n";
    src += "    C" + id + "() : value_(0) {}\n";
    src += "    int get() const { return value_; }\n";
    src += "    void set(int v) { value_ = v; }\n";
    src += "    int bump(int d) { value_ = value_ + d; return value_; }\n";
    src += "private:\n    int value_;\n};\n";
  }
  src += "int driver() {\n    int total = 0;\n";
  for (int i = 0; i < n; ++i) {
    const std::string id = std::to_string(i);
    src += "    C" + id + " c" + id + ";\n";
    src += "    c" + id + ".set(" + id + ");\n";
    src += "    total = total + c" + id + ".bump(1);\n";
  }
  src += "    return total;\n}\n";
  return src;
}

/// One class template with `kMembers` member functions and N distinct
/// instantiations, all used (worst case for used-mode instantiation).
inline std::string manyInstantiations(int n) {
  std::string src =
      "template <class T>\n"
      "class Box {\n"
      "public:\n"
      "    Box() : v_(T()) {}\n"
      "    void put(const T& x) { v_ = x; }\n"
      "    T take() { return v_; }\n"
      "    bool vacant() const { return false; }\n"
      "private:\n    T v_;\n};\n";
  // Distinct element classes make distinct instantiations.
  for (int i = 0; i < n; ++i) {
    src += "class E" + std::to_string(i) + " { public: int x; };\n";
  }
  src += "void driver() {\n";
  for (int i = 0; i < n; ++i) {
    const std::string id = std::to_string(i);
    src += "    Box<E" + id + "> b" + id + ";\n";
    src += "    E" + id + " e" + id + ";\n";
    src += "    b" + id + ".put(e" + id + ");\n";
    src += "    b" + id + ".take();\n";
  }
  src += "}\n";
  return src;
}

/// Nested instantiation chains: Box<Box<...<int>...>> to depth `d`.
inline std::string nestedInstantiation(int d) {
  std::string src =
      "template <class T>\n"
      "class Box {\n"
      "public:\n"
      "    Box() {}\n"
      "    T inner;\n"
      "    int probe() const { return 1; }\n"
      "};\n";
  std::string type = "int";
  for (int i = 0; i < d; ++i) type = "Box<" + type + " >";
  src += "void driver() {\n    " + type + " deep;\n    deep.probe();\n}\n";
  return src;
}

/// A linear call chain of depth n (f0 -> f1 -> ... -> fn).
inline std::string callChain(int n) {
  std::string src = "int f" + std::to_string(n) + "(int x) { return x; }\n";
  for (int i = n - 1; i >= 0; --i) {
    src += "int f" + std::to_string(i) + "(int x) { return f" +
           std::to_string(i + 1) + "(x + 1); }\n";
  }
  src += "int driver() { return f0(0); }\n";
  return src;
}

/// A library-like TU: header content with templates used by `users` TUs
/// worth of driver functions; used by the merge benchmarks.
inline std::string mergeUnit(int unit, int shared_classes, int unique_classes) {
  std::string src =
      "template <class T>\n"
      "class Shared { public: void touch(const T& t) { v = t; } T v; };\n";
  std::string driver = "void driver" + std::to_string(unit) + "() {\n";
  for (int i = 0; i < shared_classes; ++i) {
    const std::string id = std::to_string(i);
    src += "class S" + id + " { public: int x; };\n";
    driver += "    Shared<S" + id + "> s" + id + "; S" + id + " v" + id +
              "; s" + id + ".touch(v" + id + ");\n";
  }
  for (int i = 0; i < unique_classes; ++i) {
    const std::string id = std::to_string(unit) + "_" + std::to_string(i);
    src += "class U" + id + " { public: int x; };\n";
    driver += "    Shared<U" + id + "> u" + id + "; U" + id + " w" + id +
              "; u" + id + ".touch(w" + id + ");\n";
  }
  return src + driver + "}\n";
}

}  // namespace pdt::bench
