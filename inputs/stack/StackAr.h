#ifndef STACKAR_H
#define STACKAR_H

#include "vector.h"
#include "dsexceptions.h"

// Array-based Stack class from paper Figure 1 (Weiss).
template <class Object>
class Stack {
public:
    explicit Stack(int capacity = 10);

    bool isEmpty() const;
    bool isFull() const;
    const Object& top() const;

    void makeEmpty();
    void pop();
    void push(const Object& x);
    Object topAndPop();

private:
    vector<Object> theArray;
    int topOfStack;
};

#include "StackAr.cpp"
#endif
