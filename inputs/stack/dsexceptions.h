#ifndef DSEXCEPTIONS_H
#define DSEXCEPTIONS_H

class Underflow {};
class Overflow {};

#endif
