// Conjugate-gradient (Krylov) solver — the workload of paper Figure 7.
#ifndef POOMA_MINI_CG_H
#define POOMA_MINI_CG_H

#include "Array.h"
#include "BLAS1.h"
#include "Stencil.h"

template <class T>
class CGSolver {
public:
    CGSolver(int maxIterations, const T& tolerance)
        : maxIterations_(maxIterations), tolerance_(tolerance),
          iterations_(0), residual_(T()) {}

    // Solves A x = b; returns the iteration count.
    int solve(const Laplace1D<T>& A, Array<T>& x, const Array<T>& b) {
        int n = b.size();
        Array<T> r(n);
        Array<T> p(n);
        Array<T> Ap(n);

        A.apply(x, Ap);
        for (int i = 0; i < n; i++)
            r(i) = b(i) - Ap(i);
        copyInto(r, p);

        T rr = dot(r, r);
        iterations_ = 0;
        while (iterations_ < maxIterations_) {
            A.apply(p, Ap);
            T pAp = dot(p, Ap);
            if (pAp == T())
                break;
            T alpha = rr / pAp;
            axpy(alpha, p, x);
            axpy(-alpha, Ap, r);
            T rrNew = dot(r, r);
            iterations_ = iterations_ + 1;
            residual_ = pdtSqrt(rrNew);
            if (residual_ < tolerance_)
                break;
            T beta = rrNew / rr;
            xpby(r, beta, p);
            rr = rrNew;
        }
        return iterations_;
    }

    int iterations() const { return iterations_; }
    T residual() const { return residual_; }

private:
    int maxIterations_;
    T tolerance_;
    int iterations_;
    T residual_;
};

#endif
