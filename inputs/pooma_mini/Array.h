// Miniature POOMA-style templated array (DESIGN.md substitution for the
// POOMA framework the paper profiles in Figure 7). Template-heavy on
// purpose: this is the stress property that made POOMA PDT's test case.
#ifndef POOMA_MINI_ARRAY_H
#define POOMA_MINI_ARRAY_H

template <class T>
class Array {
public:
    explicit Array(int n = 0) : size_(n), data_(0) {
        data_ = new T[n];
        for (int i = 0; i < n; i++)
            data_[i] = T();
    }
    Array(const Array& rhs) : size_(0), data_(0) {
        assign(rhs);
    }
    ~Array() {
        delete [] data_;
    }

    const Array& operator=(const Array& rhs) {
        if (this != &rhs)
            assign(rhs);
        return *this;
    }

    T& operator()(int i) { return data_[i]; }
    const T& operator()(int i) const { return data_[i]; }
    T& operator[](int i) { return data_[i]; }
    const T& operator[](int i) const { return data_[i]; }

    int size() const { return size_; }

    void fill(const T& value) {
        for (int i = 0; i < size_; i++)
            data_[i] = value;
    }

private:
    void assign(const Array& rhs) {
        delete [] data_;
        size_ = rhs.size();
        data_ = new T[size_];
        for (int i = 0; i < size_; i++)
            data_[i] = rhs.data_[i];
    }

    int size_;
    T* data_;
};

#endif
