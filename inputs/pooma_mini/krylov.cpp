// Krylov solver driver (paper Figure 7's workload): solve a 1-D Poisson
// problem with conjugate gradients over the mini templated framework.
#include "iostream.h"
#include "CG.h"

int main() {
    const int n = 256;
    Laplace1D<double> A(n);
    Array<double> b(n);
    Array<double> x(n);
    b.fill(1.0);
    x.fill(0.0);

    CGSolver<double> solver(512, 0.000000001);
    int iters = solver.solve(A, x, b);

    cout << "iterations: " << iters << endl;
    cout << "residual: " << solver.residual() << endl;
    cout << "x[0]: " << x(0) << endl;
    cout << "x[mid]: " << x(n / 2) << endl;
    return 0;
}
