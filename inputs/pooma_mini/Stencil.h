// 1-D Laplacian stencil operator ("matrix-free" POOMA style).
#ifndef POOMA_MINI_STENCIL_H
#define POOMA_MINI_STENCIL_H

#include "Array.h"

template <class T>
class Laplace1D {
public:
    explicit Laplace1D(int n) : n_(n) {}

    int size() const { return n_; }

    // out = A * in, A = tridiag(-1, 2, -1)
    void apply(const Array<T>& in, Array<T>& out) const {
        for (int i = 0; i < n_; i++) {
            T v = 2 * in(i);
            if (i > 0)
                v = v - in(i - 1);
            if (i < n_ - 1)
                v = v - in(i + 1);
            out(i) = v;
        }
    }

private:
    int n_;
};

#endif
