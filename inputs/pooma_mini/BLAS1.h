// Level-1 vector kernels as function templates.
#ifndef POOMA_MINI_BLAS1_H
#define POOMA_MINI_BLAS1_H

#include "Array.h"

template <class T>
T dot(const Array<T>& a, const Array<T>& b) {
    T sum = T();
    for (int i = 0; i < a.size(); i++)
        sum = sum + a(i) * b(i);
    return sum;
}

// y = y + alpha * x
template <class T>
void axpy(const T& alpha, const Array<T>& x, Array<T>& y) {
    for (int i = 0; i < y.size(); i++)
        y(i) = y(i) + alpha * x(i);
}

// y = x + beta * y
template <class T>
void xpby(const Array<T>& x, const T& beta, Array<T>& y) {
    for (int i = 0; i < y.size(); i++)
        y(i) = x(i) + beta * y(i);
}

template <class T>
void copyInto(const Array<T>& src, Array<T>& dst) {
    for (int i = 0; i < dst.size(); i++)
        dst(i) = src(i);
}

template <class T>
T pdtSqrt(T x) {
    if (x <= T())
        return T();
    T guess = x;
    for (int i = 0; i < 40; i++)
        guess = (guess + x / guess) / 2;
    return guess;
}

template <class T>
T norm2(const Array<T>& a) {
    return pdtSqrt(dot(a, a));
}

#endif
