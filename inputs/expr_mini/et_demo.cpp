// Whole-field arithmetic through expression templates:
//   r = a + b * 0.5 + a * b
// builds AddExpr<AddExpr<Field, MulExpr<Field, Scalar> >,
//                MulExpr<Field, Field> > and evaluates it in one loop.
#include "iostream.h"
#include "ET.h"

int main() {
    const int n = 8;
    Field a(n);
    Field b(n);
    Field r(n);
    for (int i = 0; i < n; i++) {
        a(i) = i;
        b(i) = 2 * i;
    }

    assign(r, a + b * Scalar(0.5) + a * b);

    double total = 0.0;
    for (int i = 0; i < n; i++)
        total = total + r.eval(i);
    cout << "total: " << total << endl;
    return 0;
}
