// Miniature expression-template framework in the POOMA style: arithmetic
// on whole fields builds nested template expression types that evaluate
// lazily, element by element. This is the idiom that made POOMA the
// paper's template stress test.
#ifndef EXPR_MINI_ET_H
#define EXPR_MINI_ET_H

class Field {
public:
    explicit Field(int n) : n_(n), data_(new double[n]) {
        for (int i = 0; i < n; i++)
            data_[i] = 0.0;
    }
    Field(const Field& rhs) : n_(rhs.n_), data_(new double[rhs.n_]) {
        for (int i = 0; i < n_; i++)
            data_[i] = rhs.data_[i];
    }
    ~Field() { delete [] data_; }

    double& operator()(int i) { return data_[i]; }
    double eval(int i) const { return data_[i]; }
    int size() const { return n_; }

private:
    int n_;
    double* data_;
};

class Scalar {
public:
    explicit Scalar(double v) : v_(v) {}
    double eval(int i) const { return v_; }
    int size() const { return 0; }
private:
    double v_;
};

template <class L, class R>
class AddExpr {
public:
    AddExpr(const L& l, const R& r) : l_(l), r_(r) {}
    double eval(int i) const { return l_.eval(i) + r_.eval(i); }
    int size() const { return l_.size(); }
private:
    const L& l_;
    const R& r_;
};

template <class L, class R>
class MulExpr {
public:
    MulExpr(const L& l, const R& r) : l_(l), r_(r) {}
    double eval(int i) const { return l_.eval(i) * r_.eval(i); }
    int size() const { return l_.size(); }
private:
    const L& l_;
    const R& r_;
};

template <class L, class R>
AddExpr<L, R> operator+(const L& l, const R& r) {
    return AddExpr<L, R>(l, r);
}

template <class L, class R>
MulExpr<L, R> operator*(const L& l, const R& r) {
    return MulExpr<L, R>(l, r);
}

// Evaluates any expression into a destination field — the single loop
// all whole-field arithmetic collapses into.
template <class E>
void assign(Field& dst, const E& expr) {
    for (int i = 0; i < dst.size(); i++)
        dst(i) = expr.eval(i);
}

#endif
