file(REMOVE_RECURSE
  "CMakeFiles/bench_ilanalyzer.dir/bench_ilanalyzer.cpp.o"
  "CMakeFiles/bench_ilanalyzer.dir/bench_ilanalyzer.cpp.o.d"
  "bench_ilanalyzer"
  "bench_ilanalyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ilanalyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
