# Empty compiler generated dependencies file for bench_ilanalyzer.
# This may be replaced when dependencies are built.
