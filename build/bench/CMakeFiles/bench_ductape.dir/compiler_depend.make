# Empty compiler generated dependencies file for bench_ductape.
# This may be replaced when dependencies are built.
