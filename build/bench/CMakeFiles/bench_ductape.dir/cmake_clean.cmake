file(REMOVE_RECURSE
  "CMakeFiles/bench_ductape.dir/bench_ductape.cpp.o"
  "CMakeFiles/bench_ductape.dir/bench_ductape.cpp.o.d"
  "bench_ductape"
  "bench_ductape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ductape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
