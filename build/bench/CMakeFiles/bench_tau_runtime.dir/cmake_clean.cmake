file(REMOVE_RECURSE
  "CMakeFiles/bench_tau_runtime.dir/bench_tau_runtime.cpp.o"
  "CMakeFiles/bench_tau_runtime.dir/bench_tau_runtime.cpp.o.d"
  "bench_tau_runtime"
  "bench_tau_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tau_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
