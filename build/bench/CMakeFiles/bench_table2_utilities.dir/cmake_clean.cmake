file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_utilities.dir/bench_table2_utilities.cpp.o"
  "CMakeFiles/bench_table2_utilities.dir/bench_table2_utilities.cpp.o.d"
  "bench_table2_utilities"
  "bench_table2_utilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_utilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
