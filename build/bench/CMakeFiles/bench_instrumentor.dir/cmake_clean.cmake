file(REMOVE_RECURSE
  "CMakeFiles/bench_instrumentor.dir/bench_instrumentor.cpp.o"
  "CMakeFiles/bench_instrumentor.dir/bench_instrumentor.cpp.o.d"
  "bench_instrumentor"
  "bench_instrumentor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instrumentor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
