# Empty dependencies file for bench_instrumentor.
# This may be replaced when dependencies are built.
