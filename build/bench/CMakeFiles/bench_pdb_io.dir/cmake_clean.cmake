file(REMOVE_RECURSE
  "CMakeFiles/bench_pdb_io.dir/bench_pdb_io.cpp.o"
  "CMakeFiles/bench_pdb_io.dir/bench_pdb_io.cpp.o.d"
  "bench_pdb_io"
  "bench_pdb_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdb_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
