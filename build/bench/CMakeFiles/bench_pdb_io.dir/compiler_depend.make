# Empty compiler generated dependencies file for bench_pdb_io.
# This may be replaced when dependencies are built.
