file(REMOVE_RECURSE
  "CMakeFiles/expr_profile.dir/expr_profile.cpp.o"
  "CMakeFiles/expr_profile.dir/expr_profile.cpp.o.d"
  "expr_profile"
  "expr_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
