# Empty dependencies file for expr_profile.
# This may be replaced when dependencies are built.
