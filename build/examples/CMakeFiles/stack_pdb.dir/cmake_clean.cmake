file(REMOVE_RECURSE
  "CMakeFiles/stack_pdb.dir/stack_pdb.cpp.o"
  "CMakeFiles/stack_pdb.dir/stack_pdb.cpp.o.d"
  "stack_pdb"
  "stack_pdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_pdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
