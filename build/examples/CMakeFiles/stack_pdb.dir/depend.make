# Empty dependencies file for stack_pdb.
# This may be replaced when dependencies are built.
