# Empty compiler generated dependencies file for siloon_bindings.
# This may be replaced when dependencies are built.
