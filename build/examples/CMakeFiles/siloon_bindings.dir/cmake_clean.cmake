file(REMOVE_RECURSE
  "CMakeFiles/siloon_bindings.dir/siloon_bindings.cpp.o"
  "CMakeFiles/siloon_bindings.dir/siloon_bindings.cpp.o.d"
  "siloon_bindings"
  "siloon_bindings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloon_bindings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
