file(REMOVE_RECURSE
  "CMakeFiles/callgraph_browser.dir/callgraph_browser.cpp.o"
  "CMakeFiles/callgraph_browser.dir/callgraph_browser.cpp.o.d"
  "callgraph_browser"
  "callgraph_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callgraph_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
