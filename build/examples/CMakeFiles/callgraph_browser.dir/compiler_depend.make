# Empty compiler generated dependencies file for callgraph_browser.
# This may be replaced when dependencies are built.
