# Empty dependencies file for krylov.
# This may be replaced when dependencies are built.
