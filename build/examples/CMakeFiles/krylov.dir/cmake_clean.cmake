file(REMOVE_RECURSE
  "CMakeFiles/krylov.dir/krylov.cpp.o"
  "CMakeFiles/krylov.dir/krylov.cpp.o.d"
  "krylov"
  "krylov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krylov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
