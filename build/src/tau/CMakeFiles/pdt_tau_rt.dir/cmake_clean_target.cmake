file(REMOVE_RECURSE
  "libpdt_tau_rt.a"
)
