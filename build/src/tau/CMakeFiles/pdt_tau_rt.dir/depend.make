# Empty dependencies file for pdt_tau_rt.
# This may be replaced when dependencies are built.
