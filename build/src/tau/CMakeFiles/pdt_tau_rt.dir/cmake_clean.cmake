file(REMOVE_RECURSE
  "CMakeFiles/pdt_tau_rt.dir/__/__/runtime/tau/tau_runtime.cpp.o"
  "CMakeFiles/pdt_tau_rt.dir/__/__/runtime/tau/tau_runtime.cpp.o.d"
  "libpdt_tau_rt.a"
  "libpdt_tau_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_tau_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
