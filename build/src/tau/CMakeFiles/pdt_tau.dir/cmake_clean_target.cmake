file(REMOVE_RECURSE
  "libpdt_tau.a"
)
