file(REMOVE_RECURSE
  "CMakeFiles/pdt_tau.dir/instrumentor.cpp.o"
  "CMakeFiles/pdt_tau.dir/instrumentor.cpp.o.d"
  "CMakeFiles/pdt_tau.dir/profile.cpp.o"
  "CMakeFiles/pdt_tau.dir/profile.cpp.o.d"
  "libpdt_tau.a"
  "libpdt_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
