# Empty compiler generated dependencies file for pdt_tau.
# This may be replaced when dependencies are built.
