# Empty dependencies file for tau_instr.
# This may be replaced when dependencies are built.
