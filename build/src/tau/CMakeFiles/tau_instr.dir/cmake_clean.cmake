file(REMOVE_RECURSE
  "CMakeFiles/tau_instr.dir/tau_instr_main.cpp.o"
  "CMakeFiles/tau_instr.dir/tau_instr_main.cpp.o.d"
  "tau_instr"
  "tau_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tau_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
