file(REMOVE_RECURSE
  "libpdt_ilanalyzer.a"
)
