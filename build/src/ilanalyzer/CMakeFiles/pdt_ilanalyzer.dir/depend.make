# Empty dependencies file for pdt_ilanalyzer.
# This may be replaced when dependencies are built.
