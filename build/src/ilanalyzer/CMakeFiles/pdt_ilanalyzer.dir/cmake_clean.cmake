file(REMOVE_RECURSE
  "CMakeFiles/pdt_ilanalyzer.dir/analyzer.cpp.o"
  "CMakeFiles/pdt_ilanalyzer.dir/analyzer.cpp.o.d"
  "libpdt_ilanalyzer.a"
  "libpdt_ilanalyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_ilanalyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
