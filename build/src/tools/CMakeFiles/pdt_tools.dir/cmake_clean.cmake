file(REMOVE_RECURSE
  "CMakeFiles/pdt_tools.dir/tools.cpp.o"
  "CMakeFiles/pdt_tools.dir/tools.cpp.o.d"
  "libpdt_tools.a"
  "libpdt_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
