# Empty compiler generated dependencies file for pdt_tools.
# This may be replaced when dependencies are built.
