file(REMOVE_RECURSE
  "libpdt_tools.a"
)
