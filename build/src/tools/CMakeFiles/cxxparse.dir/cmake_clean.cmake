file(REMOVE_RECURSE
  "CMakeFiles/cxxparse.dir/cxxparse_main.cpp.o"
  "CMakeFiles/cxxparse.dir/cxxparse_main.cpp.o.d"
  "cxxparse"
  "cxxparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxxparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
