# Empty dependencies file for cxxparse.
# This may be replaced when dependencies are built.
