file(REMOVE_RECURSE
  "CMakeFiles/pdbtree.dir/pdbtree_main.cpp.o"
  "CMakeFiles/pdbtree.dir/pdbtree_main.cpp.o.d"
  "pdbtree"
  "pdbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
