# Empty dependencies file for pdbtree.
# This may be replaced when dependencies are built.
