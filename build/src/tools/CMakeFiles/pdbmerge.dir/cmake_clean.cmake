file(REMOVE_RECURSE
  "CMakeFiles/pdbmerge.dir/pdbmerge_main.cpp.o"
  "CMakeFiles/pdbmerge.dir/pdbmerge_main.cpp.o.d"
  "pdbmerge"
  "pdbmerge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdbmerge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
