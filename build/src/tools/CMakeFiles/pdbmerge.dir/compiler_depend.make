# Empty compiler generated dependencies file for pdbmerge.
# This may be replaced when dependencies are built.
