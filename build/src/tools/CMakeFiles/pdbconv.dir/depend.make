# Empty dependencies file for pdbconv.
# This may be replaced when dependencies are built.
