file(REMOVE_RECURSE
  "CMakeFiles/pdbconv.dir/pdbconv_main.cpp.o"
  "CMakeFiles/pdbconv.dir/pdbconv_main.cpp.o.d"
  "pdbconv"
  "pdbconv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdbconv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
