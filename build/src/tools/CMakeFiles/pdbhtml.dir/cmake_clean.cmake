file(REMOVE_RECURSE
  "CMakeFiles/pdbhtml.dir/pdbhtml_main.cpp.o"
  "CMakeFiles/pdbhtml.dir/pdbhtml_main.cpp.o.d"
  "pdbhtml"
  "pdbhtml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdbhtml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
