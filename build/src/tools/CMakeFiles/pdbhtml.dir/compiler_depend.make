# Empty compiler generated dependencies file for pdbhtml.
# This may be replaced when dependencies are built.
