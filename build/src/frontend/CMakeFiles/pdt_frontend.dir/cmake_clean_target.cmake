file(REMOVE_RECURSE
  "libpdt_frontend.a"
)
