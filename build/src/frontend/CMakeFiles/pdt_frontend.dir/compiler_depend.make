# Empty compiler generated dependencies file for pdt_frontend.
# This may be replaced when dependencies are built.
