file(REMOVE_RECURSE
  "CMakeFiles/pdt_frontend.dir/f90.cpp.o"
  "CMakeFiles/pdt_frontend.dir/f90.cpp.o.d"
  "CMakeFiles/pdt_frontend.dir/frontend.cpp.o"
  "CMakeFiles/pdt_frontend.dir/frontend.cpp.o.d"
  "CMakeFiles/pdt_frontend.dir/java.cpp.o"
  "CMakeFiles/pdt_frontend.dir/java.cpp.o.d"
  "libpdt_frontend.a"
  "libpdt_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
