file(REMOVE_RECURSE
  "libpdt_support.a"
)
