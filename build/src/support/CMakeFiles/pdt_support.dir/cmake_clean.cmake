file(REMOVE_RECURSE
  "CMakeFiles/pdt_support.dir/diagnostics.cpp.o"
  "CMakeFiles/pdt_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/pdt_support.dir/source_manager.cpp.o"
  "CMakeFiles/pdt_support.dir/source_manager.cpp.o.d"
  "CMakeFiles/pdt_support.dir/text.cpp.o"
  "CMakeFiles/pdt_support.dir/text.cpp.o.d"
  "libpdt_support.a"
  "libpdt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
