# Empty compiler generated dependencies file for pdt_ast.
# This may be replaced when dependencies are built.
