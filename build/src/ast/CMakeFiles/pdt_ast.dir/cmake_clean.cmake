file(REMOVE_RECURSE
  "CMakeFiles/pdt_ast.dir/context.cpp.o"
  "CMakeFiles/pdt_ast.dir/context.cpp.o.d"
  "CMakeFiles/pdt_ast.dir/decl.cpp.o"
  "CMakeFiles/pdt_ast.dir/decl.cpp.o.d"
  "CMakeFiles/pdt_ast.dir/dump.cpp.o"
  "CMakeFiles/pdt_ast.dir/dump.cpp.o.d"
  "CMakeFiles/pdt_ast.dir/type.cpp.o"
  "CMakeFiles/pdt_ast.dir/type.cpp.o.d"
  "CMakeFiles/pdt_ast.dir/walk.cpp.o"
  "CMakeFiles/pdt_ast.dir/walk.cpp.o.d"
  "libpdt_ast.a"
  "libpdt_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
