file(REMOVE_RECURSE
  "libpdt_ast.a"
)
