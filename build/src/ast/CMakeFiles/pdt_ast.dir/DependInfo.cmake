
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/context.cpp" "src/ast/CMakeFiles/pdt_ast.dir/context.cpp.o" "gcc" "src/ast/CMakeFiles/pdt_ast.dir/context.cpp.o.d"
  "/root/repo/src/ast/decl.cpp" "src/ast/CMakeFiles/pdt_ast.dir/decl.cpp.o" "gcc" "src/ast/CMakeFiles/pdt_ast.dir/decl.cpp.o.d"
  "/root/repo/src/ast/dump.cpp" "src/ast/CMakeFiles/pdt_ast.dir/dump.cpp.o" "gcc" "src/ast/CMakeFiles/pdt_ast.dir/dump.cpp.o.d"
  "/root/repo/src/ast/type.cpp" "src/ast/CMakeFiles/pdt_ast.dir/type.cpp.o" "gcc" "src/ast/CMakeFiles/pdt_ast.dir/type.cpp.o.d"
  "/root/repo/src/ast/walk.cpp" "src/ast/CMakeFiles/pdt_ast.dir/walk.cpp.o" "gcc" "src/ast/CMakeFiles/pdt_ast.dir/walk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pdt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
