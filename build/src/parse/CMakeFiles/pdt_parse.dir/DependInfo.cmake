
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parse/parser.cpp" "src/parse/CMakeFiles/pdt_parse.dir/parser.cpp.o" "gcc" "src/parse/CMakeFiles/pdt_parse.dir/parser.cpp.o.d"
  "/root/repo/src/parse/parser_expr.cpp" "src/parse/CMakeFiles/pdt_parse.dir/parser_expr.cpp.o" "gcc" "src/parse/CMakeFiles/pdt_parse.dir/parser_expr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sema/CMakeFiles/pdt_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/pdt_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/pdt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
