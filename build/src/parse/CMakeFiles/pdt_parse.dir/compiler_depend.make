# Empty compiler generated dependencies file for pdt_parse.
# This may be replaced when dependencies are built.
