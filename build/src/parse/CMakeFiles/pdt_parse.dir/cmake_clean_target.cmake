file(REMOVE_RECURSE
  "libpdt_parse.a"
)
