file(REMOVE_RECURSE
  "CMakeFiles/pdt_parse.dir/parser.cpp.o"
  "CMakeFiles/pdt_parse.dir/parser.cpp.o.d"
  "CMakeFiles/pdt_parse.dir/parser_expr.cpp.o"
  "CMakeFiles/pdt_parse.dir/parser_expr.cpp.o.d"
  "libpdt_parse.a"
  "libpdt_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
