file(REMOVE_RECURSE
  "libpdt_lex.a"
)
