file(REMOVE_RECURSE
  "CMakeFiles/pdt_lex.dir/lexer.cpp.o"
  "CMakeFiles/pdt_lex.dir/lexer.cpp.o.d"
  "CMakeFiles/pdt_lex.dir/preprocessor.cpp.o"
  "CMakeFiles/pdt_lex.dir/preprocessor.cpp.o.d"
  "libpdt_lex.a"
  "libpdt_lex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_lex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
