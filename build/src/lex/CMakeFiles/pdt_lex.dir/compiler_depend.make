# Empty compiler generated dependencies file for pdt_lex.
# This may be replaced when dependencies are built.
