# Empty dependencies file for pdt_siloon.
# This may be replaced when dependencies are built.
