file(REMOVE_RECURSE
  "CMakeFiles/pdt_siloon.dir/siloon.cpp.o"
  "CMakeFiles/pdt_siloon.dir/siloon.cpp.o.d"
  "libpdt_siloon.a"
  "libpdt_siloon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_siloon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
