file(REMOVE_RECURSE
  "libpdt_siloon.a"
)
