# Empty compiler generated dependencies file for siloon_gen.
# This may be replaced when dependencies are built.
