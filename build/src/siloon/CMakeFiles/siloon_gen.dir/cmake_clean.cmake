file(REMOVE_RECURSE
  "CMakeFiles/siloon_gen.dir/siloon_gen_main.cpp.o"
  "CMakeFiles/siloon_gen.dir/siloon_gen_main.cpp.o.d"
  "siloon_gen"
  "siloon_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloon_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
