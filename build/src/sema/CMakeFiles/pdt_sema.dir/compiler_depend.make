# Empty compiler generated dependencies file for pdt_sema.
# This may be replaced when dependencies are built.
