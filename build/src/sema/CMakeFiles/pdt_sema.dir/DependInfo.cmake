
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sema/instantiate.cpp" "src/sema/CMakeFiles/pdt_sema.dir/instantiate.cpp.o" "gcc" "src/sema/CMakeFiles/pdt_sema.dir/instantiate.cpp.o.d"
  "/root/repo/src/sema/resolve.cpp" "src/sema/CMakeFiles/pdt_sema.dir/resolve.cpp.o" "gcc" "src/sema/CMakeFiles/pdt_sema.dir/resolve.cpp.o.d"
  "/root/repo/src/sema/sema.cpp" "src/sema/CMakeFiles/pdt_sema.dir/sema.cpp.o" "gcc" "src/sema/CMakeFiles/pdt_sema.dir/sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/pdt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
