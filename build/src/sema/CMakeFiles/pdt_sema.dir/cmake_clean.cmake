file(REMOVE_RECURSE
  "CMakeFiles/pdt_sema.dir/instantiate.cpp.o"
  "CMakeFiles/pdt_sema.dir/instantiate.cpp.o.d"
  "CMakeFiles/pdt_sema.dir/resolve.cpp.o"
  "CMakeFiles/pdt_sema.dir/resolve.cpp.o.d"
  "CMakeFiles/pdt_sema.dir/sema.cpp.o"
  "CMakeFiles/pdt_sema.dir/sema.cpp.o.d"
  "libpdt_sema.a"
  "libpdt_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
