file(REMOVE_RECURSE
  "libpdt_sema.a"
)
