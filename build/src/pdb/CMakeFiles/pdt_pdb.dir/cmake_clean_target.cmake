file(REMOVE_RECURSE
  "libpdt_pdb.a"
)
