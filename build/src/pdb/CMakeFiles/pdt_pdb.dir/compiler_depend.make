# Empty compiler generated dependencies file for pdt_pdb.
# This may be replaced when dependencies are built.
