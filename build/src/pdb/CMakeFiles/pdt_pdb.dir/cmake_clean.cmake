file(REMOVE_RECURSE
  "CMakeFiles/pdt_pdb.dir/pdb.cpp.o"
  "CMakeFiles/pdt_pdb.dir/pdb.cpp.o.d"
  "CMakeFiles/pdt_pdb.dir/reader.cpp.o"
  "CMakeFiles/pdt_pdb.dir/reader.cpp.o.d"
  "CMakeFiles/pdt_pdb.dir/writer.cpp.o"
  "CMakeFiles/pdt_pdb.dir/writer.cpp.o.d"
  "libpdt_pdb.a"
  "libpdt_pdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_pdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
