
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdb/pdb.cpp" "src/pdb/CMakeFiles/pdt_pdb.dir/pdb.cpp.o" "gcc" "src/pdb/CMakeFiles/pdt_pdb.dir/pdb.cpp.o.d"
  "/root/repo/src/pdb/reader.cpp" "src/pdb/CMakeFiles/pdt_pdb.dir/reader.cpp.o" "gcc" "src/pdb/CMakeFiles/pdt_pdb.dir/reader.cpp.o.d"
  "/root/repo/src/pdb/writer.cpp" "src/pdb/CMakeFiles/pdt_pdb.dir/writer.cpp.o" "gcc" "src/pdb/CMakeFiles/pdt_pdb.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pdt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
