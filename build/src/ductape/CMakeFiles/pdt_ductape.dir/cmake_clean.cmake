file(REMOVE_RECURSE
  "CMakeFiles/pdt_ductape.dir/ductape.cpp.o"
  "CMakeFiles/pdt_ductape.dir/ductape.cpp.o.d"
  "libpdt_ductape.a"
  "libpdt_ductape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_ductape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
