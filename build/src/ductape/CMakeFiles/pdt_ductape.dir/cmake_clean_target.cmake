file(REMOVE_RECURSE
  "libpdt_ductape.a"
)
