# Empty dependencies file for pdt_ductape.
# This may be replaced when dependencies are built.
