# Empty compiler generated dependencies file for ilanalyzer_test.
# This may be replaced when dependencies are built.
