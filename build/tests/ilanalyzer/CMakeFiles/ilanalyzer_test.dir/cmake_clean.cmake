file(REMOVE_RECURSE
  "CMakeFiles/ilanalyzer_test.dir/analyzer_test.cpp.o"
  "CMakeFiles/ilanalyzer_test.dir/analyzer_test.cpp.o.d"
  "ilanalyzer_test"
  "ilanalyzer_test.pdb"
  "ilanalyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilanalyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
