
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ilanalyzer/analyzer_test.cpp" "tests/ilanalyzer/CMakeFiles/ilanalyzer_test.dir/analyzer_test.cpp.o" "gcc" "tests/ilanalyzer/CMakeFiles/ilanalyzer_test.dir/analyzer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ilanalyzer/CMakeFiles/pdt_ilanalyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/pdt_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/pdt_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/pdt_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/pdt_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/pdt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/pdb/CMakeFiles/pdt_pdb.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
