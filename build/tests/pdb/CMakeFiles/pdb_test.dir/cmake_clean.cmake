file(REMOVE_RECURSE
  "CMakeFiles/pdb_test.dir/pdb_io_test.cpp.o"
  "CMakeFiles/pdb_test.dir/pdb_io_test.cpp.o.d"
  "pdb_test"
  "pdb_test.pdb"
  "pdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
