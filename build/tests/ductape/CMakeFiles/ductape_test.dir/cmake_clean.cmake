file(REMOVE_RECURSE
  "CMakeFiles/ductape_test.dir/ductape_test.cpp.o"
  "CMakeFiles/ductape_test.dir/ductape_test.cpp.o.d"
  "ductape_test"
  "ductape_test.pdb"
  "ductape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ductape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
