# Empty compiler generated dependencies file for ductape_test.
# This may be replaced when dependencies are built.
