# CMake generated Testfile for 
# Source directory: /root/repo/tests/tau
# Build directory: /root/repo/build/tests/tau
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tau/tau_test[1]_include.cmake")
include("/root/repo/build/tests/tau/tau_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/tau/tau_profile_test[1]_include.cmake")
