# Empty dependencies file for tau_test.
# This may be replaced when dependencies are built.
