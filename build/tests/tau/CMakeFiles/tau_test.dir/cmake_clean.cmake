file(REMOVE_RECURSE
  "CMakeFiles/tau_test.dir/instrumentor_test.cpp.o"
  "CMakeFiles/tau_test.dir/instrumentor_test.cpp.o.d"
  "tau_test"
  "tau_test.pdb"
  "tau_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tau_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
