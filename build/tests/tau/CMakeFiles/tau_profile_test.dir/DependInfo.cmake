
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tau/profile_test.cpp" "tests/tau/CMakeFiles/tau_profile_test.dir/profile_test.cpp.o" "gcc" "tests/tau/CMakeFiles/tau_profile_test.dir/profile_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tau/CMakeFiles/pdt_tau.dir/DependInfo.cmake"
  "/root/repo/build/src/tau/CMakeFiles/pdt_tau_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/ductape/CMakeFiles/pdt_ductape.dir/DependInfo.cmake"
  "/root/repo/build/src/pdb/CMakeFiles/pdt_pdb.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
