# Empty compiler generated dependencies file for tau_profile_test.
# This may be replaced when dependencies are built.
