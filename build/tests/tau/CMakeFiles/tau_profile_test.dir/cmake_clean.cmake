file(REMOVE_RECURSE
  "CMakeFiles/tau_profile_test.dir/profile_test.cpp.o"
  "CMakeFiles/tau_profile_test.dir/profile_test.cpp.o.d"
  "tau_profile_test"
  "tau_profile_test.pdb"
  "tau_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tau_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
