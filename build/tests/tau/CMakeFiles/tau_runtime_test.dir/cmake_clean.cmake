file(REMOVE_RECURSE
  "CMakeFiles/tau_runtime_test.dir/runtime_test.cpp.o"
  "CMakeFiles/tau_runtime_test.dir/runtime_test.cpp.o.d"
  "tau_runtime_test"
  "tau_runtime_test.pdb"
  "tau_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tau_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
