# Empty compiler generated dependencies file for tau_runtime_test.
# This may be replaced when dependencies are built.
