
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/expr_templates_test.cpp" "tests/integration/CMakeFiles/integration_test.dir/expr_templates_test.cpp.o" "gcc" "tests/integration/CMakeFiles/integration_test.dir/expr_templates_test.cpp.o.d"
  "/root/repo/tests/integration/figure3_test.cpp" "tests/integration/CMakeFiles/integration_test.dir/figure3_test.cpp.o" "gcc" "tests/integration/CMakeFiles/integration_test.dir/figure3_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ilanalyzer/CMakeFiles/pdt_ilanalyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/tau/CMakeFiles/pdt_tau.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/pdt_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/pdt_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/pdt_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/pdt_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/pdt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/ductape/CMakeFiles/pdt_ductape.dir/DependInfo.cmake"
  "/root/repo/build/src/pdb/CMakeFiles/pdt_pdb.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
