file(REMOVE_RECURSE
  "CMakeFiles/siloon_test.dir/siloon_test.cpp.o"
  "CMakeFiles/siloon_test.dir/siloon_test.cpp.o.d"
  "siloon_test"
  "siloon_test.pdb"
  "siloon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
