# Empty dependencies file for siloon_test.
# This may be replaced when dependencies are built.
