# Empty dependencies file for lex_test.
# This may be replaced when dependencies are built.
