file(REMOVE_RECURSE
  "CMakeFiles/lex_test.dir/lexer_test.cpp.o"
  "CMakeFiles/lex_test.dir/lexer_test.cpp.o.d"
  "CMakeFiles/lex_test.dir/preprocessor_test.cpp.o"
  "CMakeFiles/lex_test.dir/preprocessor_test.cpp.o.d"
  "lex_test"
  "lex_test.pdb"
  "lex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
