# Empty compiler generated dependencies file for lex_test.
# This may be replaced when dependencies are built.
