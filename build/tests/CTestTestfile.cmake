# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("lex")
subdirs("parse")
subdirs("sema")
subdirs("pdb")
subdirs("ilanalyzer")
subdirs("integration")
subdirs("ductape")
subdirs("tools")
subdirs("tau")
subdirs("siloon")
subdirs("frontend")
subdirs("ast")
