#!/usr/bin/env bash
# Repository lint: cheap, dependency-free source hygiene checks, run by the
# `check-lint` cmake target and by scripts/ci.sh. Fails (non-zero) on the
# first category with findings.
#
# Checks, over src/ tests/ bench/ examples/:
#   1. no trailing whitespace,
#   2. no hard tabs (the codebase indents with spaces),
#   3. every header under src/ has #pragma once near the top,
#   4. no accidental debugging leftovers (std::cout in src/ non-tool code
#      is allowed only in the tools/ and analysis render paths).
set -u
cd "$(dirname "$0")/.."

fail=0

report() {
  echo "lint: $1" >&2
  fail=1
}

sources() {
  find src tests bench examples -name '*.h' -o -name '*.cpp' | sort
}

# 1. Trailing whitespace.
if out=$(grep -rn ' $' --include='*.h' --include='*.cpp' \
             src tests bench examples); then
  echo "$out" >&2
  report "trailing whitespace"
fi

# 2. Hard tabs.
if out=$(grep -rn -P '\t' --include='*.h' --include='*.cpp' \
             src tests bench examples); then
  echo "$out" >&2
  report "hard tabs (indent with spaces)"
fi

# 3. Include guards.
for header in $(find src -name '*.h' | sort); do
  if ! head -40 "$header" | grep -q '#pragma once'; then
    report "$header: missing '#pragma once'"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK ($(sources | wc -l) files)"
