#!/usr/bin/env bash
# Runs every bench_* binary with --json and merges the per-binary records
# into one snapshot array (the BENCH_pr*.json format committed at the
# repo root).
#
#   scripts/bench.sh [build-dir] [output.json]
#
# Defaults: build-dir = ./build, output = BENCH_pr10.json in the repo
# root. Binaries that fail to run fail the script (a bench that cannot
# run must not silently vanish from the snapshot).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"
OUT="${2:-${ROOT}/BENCH_pr10.json}"
BENCH_DIR="${BUILD}/bench"

if [ ! -d "${BENCH_DIR}" ]; then
    echo "no bench directory at ${BENCH_DIR}; build first" >&2
    exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

ran=0
for bin in "${BENCH_DIR}"/bench_*; do
    [ -f "${bin}" ] && [ -x "${bin}" ] || continue
    name="$(basename "${bin}")"
    echo "== ${name} =="
    "${bin}" --json "${TMP}/${name}.json" > /dev/null
    ran=$((ran + 1))
done

if [ "${ran}" -eq 0 ]; then
    echo "no bench_* binaries under ${BENCH_DIR}" >&2
    exit 1
fi

# Each --json file is an array of {"name", "iters", "ns_per_op"} records;
# the snapshot is their concatenation, in binary-name order.
jq -s 'add' "${TMP}"/bench_*.json > "${OUT}"
echo "wrote $(jq 'length' "${OUT}") records to ${OUT}"
