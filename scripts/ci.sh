#!/usr/bin/env bash
# Tier-1 CI gate: address-sanitized build, the full test suite, repository
# lint, and a self-hosted pdbcheck run over the repo's own example program.
#
#   scripts/ci.sh [build-dir]      (default: build-ci)
#
# Everything must pass; the script stops at the first failure.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure (ASan+UBSan) =="
cmake -S "${ROOT}" -B "${BUILD}" -DPDT_SANITIZE=address,undefined

echo "== build =="
cmake --build "${BUILD}" -j "${JOBS}"

echo "== lint =="
cmake --build "${BUILD}" --target check-lint

echo "== tests =="
ctest --test-dir "${BUILD}" --output-on-failure -j "${JOBS}"

echo "== frontend gate =="
# Zero-allocation lexing (DESIGN.md "Token backing and ownership"): the
# batch fast path (RawLexer::lexAll) must produce the byte-identical
# token stream of the incremental path over every corpus source, under
# the sanitized build — string_view tokens with dangling backing die
# here, not in production.
lexed=0
while IFS= read -r src; do
    "${BUILD}/src/tools/lexdump" --mode=batch "${src}" \
        > "${BUILD}/ci_lex_batch.txt" 2> /dev/null
    "${BUILD}/src/tools/lexdump" --mode=incremental "${src}" \
        > "${BUILD}/ci_lex_inc.txt" 2> /dev/null
    cmp "${BUILD}/ci_lex_batch.txt" "${BUILD}/ci_lex_inc.txt" \
        || { echo "lex stream mismatch: ${src}" >&2; exit 1; }
    lexed=$((lexed + 1))
done < <(find "${ROOT}/inputs" "${ROOT}/runtime" \
              -name '*.cpp' -o -name '*.h' | sort)
echo "frontend gate OK: batch == incremental over ${lexed} corpus files"

echo "== self-hosted pdbcheck =="
# Compile the shipped Krylov solver (the Figure 7 subject) to a database
# and run every check over it. The inputs are clean code: any warning or
# error — or any false positive — fails the gate (exit 1 on findings).
"${BUILD}/src/tools/cxxparse" \
    "${ROOT}/inputs/pooma_mini/krylov.cpp" \
    -I "${ROOT}/inputs/pooma_mini" -I "${ROOT}/runtime/pdt_stl" \
    -o "${BUILD}/ci_krylov.pdb"
"${BUILD}/src/tools/pdbcheck" "${BUILD}/ci_krylov.pdb" --checks=all -j "${JOBS}"

echo "== storage formats =="
# The binary v2 container must be lossless against the canonical ASCII
# form (docs/PDB_FORMAT.md §"Binary v2"): compile the seed programs to
# both formats, convert each way with pdbconv, and require byte identity.
for seed in stack krylov; do
    case "${seed}" in
        stack)  src="${ROOT}/inputs/stack/TestStackAr.cpp";  inc="${ROOT}/inputs/stack" ;;
        krylov) src="${ROOT}/inputs/pooma_mini/krylov.cpp"; inc="${ROOT}/inputs/pooma_mini" ;;
    esac
    "${BUILD}/src/tools/cxxparse" "${src}" -I "${inc}" -I "${ROOT}/runtime/pdt_stl" \
        -o "${BUILD}/ci_fmt_${seed}.pdb"
    "${BUILD}/src/tools/cxxparse" "${src}" -I "${inc}" -I "${ROOT}/runtime/pdt_stl" \
        --format=bin -o "${BUILD}/ci_fmt_${seed}.bpdb"
    "${BUILD}/src/tools/pdbconv" --to=bin "${BUILD}/ci_fmt_${seed}.pdb" \
        -o "${BUILD}/ci_fmt_${seed}.conv.bpdb"
    "${BUILD}/src/tools/pdbconv" --to=ascii "${BUILD}/ci_fmt_${seed}.conv.bpdb" \
        -o "${BUILD}/ci_fmt_${seed}.back.pdb"
    # ASCII -> binary -> ASCII reproduces the compiler's output, and the
    # converted binary equals the directly-compiled one.
    cmp "${BUILD}/ci_fmt_${seed}.pdb" "${BUILD}/ci_fmt_${seed}.back.pdb"
    cmp "${BUILD}/ci_fmt_${seed}.bpdb" "${BUILD}/ci_fmt_${seed}.conv.bpdb"
done
# pdbcheck must report the same diagnostics (and exit code) whichever
# format its merged inputs are stored in.
"${BUILD}/src/tools/pdbmerge" "${BUILD}/ci_fmt_stack.pdb" "${BUILD}/ci_fmt_krylov.pdb" \
    -o "${BUILD}/ci_fmt_merged.pdb"
"${BUILD}/src/tools/pdbmerge" "${BUILD}/ci_fmt_stack.bpdb" "${BUILD}/ci_fmt_krylov.bpdb" \
    --format=bin -o "${BUILD}/ci_fmt_merged.bpdb"
ascii_rc=0
"${BUILD}/src/tools/pdbcheck" "${BUILD}/ci_fmt_merged.pdb" --checks=all \
    -j "${JOBS}" > "${BUILD}/ci_fmt_check_ascii.out" || ascii_rc=$?
bin_rc=0
"${BUILD}/src/tools/pdbcheck" "${BUILD}/ci_fmt_merged.bpdb" --checks=all \
    -j "${JOBS}" > "${BUILD}/ci_fmt_check_bin.out" || bin_rc=$?
[ "${ascii_rc}" -eq "${bin_rc}" ]
cmp "${BUILD}/ci_fmt_check_ascii.out" "${BUILD}/ci_fmt_check_bin.out"

echo "== dataflow rules =="
# The dataflow rules (docs/PDBCHECK.md) must agree across storage formats
# and stay silent on the clean seed corpus — zero false positives is the
# contract that lets the self-hosted gate above run --checks=all. A
# seeded-bug translation unit proves each rule actually fires, and
# pdbduct must answer reaching-definition queries from the same database
# while leaving the sections its queries never touch on disk.
DF_CHECKS="uninitialized-read,dead-store,null-deref-candidate"
df_ascii_rc=0
"${BUILD}/src/tools/pdbcheck" "${BUILD}/ci_fmt_merged.pdb" \
    --checks="${DF_CHECKS}" -j "${JOBS}" > "${BUILD}/ci_df_ascii.out" \
    || df_ascii_rc=$?
df_bin_rc=0
"${BUILD}/src/tools/pdbcheck" "${BUILD}/ci_fmt_merged.bpdb" \
    --checks="${DF_CHECKS}" -j "${JOBS}" > "${BUILD}/ci_df_bin.out" \
    || df_bin_rc=$?
[ "${df_ascii_rc}" -eq "${df_bin_rc}" ]
cmp "${BUILD}/ci_df_ascii.out" "${BUILD}/ci_df_bin.out"
# Clean inputs: the dataflow rules must find nothing.
[ "${df_ascii_rc}" -eq 0 ]
# Seeded bugs: one uninitialized read, one dead store, one null deref.
cat > "${BUILD}/ci_df_seeded.cpp" <<'EOF'
int read_uninit(int c) {
  int x;
  if (c > 0) { return x; }
  x = 2;
  return x;
}
int dead_store(int a) {
  int t = a;
  t = a + 1;
  t = a + 2;
  return t;
}
int null_deref() {
  int* q = 0;
  return *q;
}
EOF
"${BUILD}/src/tools/cxxparse" "${BUILD}/ci_df_seeded.cpp" \
    -o "${BUILD}/ci_df_seeded.pdb"
df_seed_rc=0
"${BUILD}/src/tools/pdbcheck" "${BUILD}/ci_df_seeded.pdb" \
    --checks="${DF_CHECKS}" > "${BUILD}/ci_df_seeded.out" || df_seed_rc=$?
[ "${df_seed_rc}" -eq 1 ]
grep -q "uninitialized-read" "${BUILD}/ci_df_seeded.out"
grep -q "dead-store" "${BUILD}/ci_df_seeded.out"
grep -q "null-deref-candidate" "${BUILD}/ci_df_seeded.out"
# pdbduct: lazy queries over the merged database must leave the type,
# template, and macro sections unloaded (pdb.sections_skipped counts them).
"${BUILD}/src/tools/pdbduct" "${BUILD}/ci_fmt_merged.bpdb" --var alpha \
    --defs --stats=json --stats-out "${BUILD}/ci_df_duct.stats.json" \
    > /dev/null
python3 - "${BUILD}" <<'PY'
import json, sys
stats = json.load(open(f"{sys.argv[1]}/ci_df_duct.stats.json"))
skipped = stats["counters"]["pdb.sections_skipped"]
assert skipped >= 3, f"pdbduct loaded sections it must skip (skipped={skipped})"
print(f"dataflow OK: format parity, clean corpus silent, seeded bugs found, "
      f"pdbduct skipped {skipped} section(s)")
PY

echo "== sharded merge =="
# External merge at scale (docs/MERGE.md): generate a ~1k-TU synthetic
# corpus with pdbgen, merge it in-memory and again under a memory budget
# far smaller than the corpus (forcing shard spills), at two job counts.
# Every output must be byte-identical, and the run-scoped spill
# directory must be gone afterward.
SHARD_DIR="${BUILD}/ci_shard_corpus"
rm -rf "${SHARD_DIR}"
mkdir -p "${SHARD_DIR}"
"${BUILD}/src/tools/pdbgen" -o "${SHARD_DIR}" -n 1000
corpus_mb="$(du -sm "${SHARD_DIR}" | cut -f1)"
"${BUILD}/src/tools/pdbmerge" "${SHARD_DIR}"/tu_*.pdb \
    -o "${BUILD}/ci_shard_ref.pdb" -j "${JOBS}"
for j in 1 "${JOBS}"; do
    "${BUILD}/src/tools/pdbmerge" "${SHARD_DIR}"/tu_*.pdb \
        -o "${BUILD}/ci_shard_j${j}.pdb" -j "${j}" --merge-mem-mb=8
    cmp "${BUILD}/ci_shard_ref.pdb" "${BUILD}/ci_shard_j${j}.pdb"
    [ ! -e "${BUILD}/ci_shard_j${j}.pdb.merge-tmp" ]
done
echo "sharded merge OK: ${corpus_mb} MB corpus merged under an 8 MB budget"

echo "== build cache determinism =="
# Compile the same inputs twice into a fresh cache directory: the first
# run compiles and stores, the second republishes every TU from the
# cache. The merged databases must be byte-identical (and identical to
# the uncached database produced above).
CACHE_DIR="${BUILD}/ci_cache"
rm -rf "${CACHE_DIR}"
"${BUILD}/src/tools/cxxparse" \
    "${ROOT}/inputs/pooma_mini/krylov.cpp" \
    -I "${ROOT}/inputs/pooma_mini" -I "${ROOT}/runtime/pdt_stl" \
    --cache-dir "${CACHE_DIR}" --cache-stats -j "${JOBS}" \
    -o "${BUILD}/ci_krylov_cold.pdb"
"${BUILD}/src/tools/cxxparse" \
    "${ROOT}/inputs/pooma_mini/krylov.cpp" \
    -I "${ROOT}/inputs/pooma_mini" -I "${ROOT}/runtime/pdt_stl" \
    --cache-dir "${CACHE_DIR}" --cache-stats -j "${JOBS}" \
    -o "${BUILD}/ci_krylov_warm.pdb"
cmp "${BUILD}/ci_krylov_cold.pdb" "${BUILD}/ci_krylov_warm.pdb"
cmp "${BUILD}/ci_krylov.pdb" "${BUILD}/ci_krylov_warm.pdb"

echo "== observability =="
# Traced + stats'd Krylov builds. Validates (a) the trace file is
# well-formed Chrome trace_event JSON with real spans, (b) the stats
# counters are non-trivial, and (c) the counter totals are
# byte-identical across -j values and across the cold/warm cache runs
# (docs/OBSERVABILITY.md) — the determinism contract that makes stats
# diffs meaningful in CI.
OBS_CACHE="${BUILD}/ci_obs_cache"
rm -rf "${OBS_CACHE}"
for run in j1 j4 cold warm; do
    case "${run}" in
        j1)   extra=(-j 1) ;;
        j4)   extra=(-j 4) ;;
        cold) extra=(-j "${JOBS}" --cache-dir "${OBS_CACHE}") ;;
        warm) extra=(-j "${JOBS}" --cache-dir "${OBS_CACHE}") ;;
    esac
    "${BUILD}/src/tools/cxxparse" \
        "${ROOT}/inputs/pooma_mini/krylov.cpp" \
        -I "${ROOT}/inputs/pooma_mini" -I "${ROOT}/runtime/pdt_stl" \
        -o "${BUILD}/ci_obs_${run}.pdb" "${extra[@]}" \
        --stats=json --stats-out "${BUILD}/ci_obs_${run}.stats.json" \
        --trace-out "${BUILD}/ci_obs_${run}.trace.json" 2> /dev/null
done
# The compiled database must be byte-identical at any -j and for warm
# vs cold cache — the end-to-end determinism the zero-allocation
# frontend must preserve.
for run in j4 cold warm; do
    cmp "${BUILD}/ci_obs_j1.pdb" "${BUILD}/ci_obs_${run}.pdb"
done
python3 - "${BUILD}" <<'PY'
import json, sys
build = sys.argv[1]

trace = json.load(open(f"{build}/ci_obs_j1.trace.json"))
events = trace["traceEvents"]
spans = [e for e in events if e["ph"] == "X"]
assert spans, "trace has no complete spans"
assert any(e["name"] == "tu.compile" for e in spans), "no tu.compile span"
assert all(e["dur"] >= 0 for e in spans), "negative span duration"
assert any(e["ph"] == "M" for e in events), "no thread-name metadata"

def counters(run):
    return json.load(open(f"{build}/ci_obs_{run}.stats.json"))["counters"]

j1 = counters("j1")
assert j1["lex.tokens"] > 0 and j1["sema.class_instantiations"] > 0, \
    f"implausible counters: {j1}"
assert j1["driver.tus"] == 1, j1["driver.tus"]
for run in ("j4", "cold", "warm"):
    assert counters(run) == j1, f"counters differ for {run} run"
print(f"observability OK: {len(spans)} spans, "
      f"{j1['lex.tokens']} tokens, counters identical across 4 runs")
PY

echo "== dynamic analysis =="
# Production-scale profiling path (docs/OBSERVABILITY.md §"Dynamic
# profiling at scale"): run the multi-threaded ALEPH example writing one
# binary profile file per thread, merge them with tauprof, and assert
# the merged call counts are exact — the lock-free runtime must not
# lose or double-count a single event. Then attach the merged profile
# to a program database as a dp section and require ASCII <-> binary
# round-trip identity, and require the merge itself to be byte-stable
# under input reordering.
DYN_DIR="${BUILD}/ci_dyn_profiles"
DYN_THREADS=4
DYN_EVENTS=500
rm -rf "${DYN_DIR}"
mkdir -p "${DYN_DIR}"
TAU_PROFILE_FILE="${DYN_DIR}" TAU_NODE=0 TAU_CONTEXT=1 \
    "${BUILD}/examples/aleph_events" "${DYN_THREADS}" "${DYN_EVENTS}" \
    > "${BUILD}/ci_dyn_run.out"
grep -q "analyzed" "${BUILD}/ci_dyn_run.out"
profile_count="$(ls "${DYN_DIR}"/profile.* | wc -l)"
# One file per worker thread plus the main thread.
[ "${profile_count}" -ge $((DYN_THREADS + 1)) ]
"${BUILD}/src/tools/tauprof" "${DYN_DIR}"/profile.* \
    --format=csv -o "${BUILD}/ci_dyn_merged.csv"
python3 - "${BUILD}" "${DYN_THREADS}" "${DYN_EVENTS}" <<'PY'
import csv, sys
build, threads, events = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
rows = {r["name"]: r for r in csv.DictReader(open(f"{build}/ci_dyn_merged.csv"))}
analyze = rows["analyzeEvent()"]
assert int(analyze["calls"]) == threads * events, \
    f"lost events: {analyze['calls']} != {threads * events}"
assert int(analyze["threads"]) == threads, analyze["threads"]
assert int(rows["workerLoop()"]["calls"]) == threads, rows["workerLoop()"]
print(f"dynamic analysis OK: {threads * events} analyzeEvent calls exact "
      f"across {threads} worker threads")
PY
# Merge determinism: reversed input order must give byte-identical output.
"${BUILD}/src/tools/tauprof" $(ls -r "${DYN_DIR}"/profile.*) \
    --format=csv -o "${BUILD}/ci_dyn_merged_rev.csv"
cmp "${BUILD}/ci_dyn_merged.csv" "${BUILD}/ci_dyn_merged_rev.csv"
# dp section: join with the static database, round-trip both formats.
"${BUILD}/src/tools/tauprof" "${DYN_DIR}"/profile.* \
    --pdb "${BUILD}/ci_krylov.pdb" --db-out "${BUILD}/ci_dyn.pdb" > /dev/null
grep -q "^dp#" "${BUILD}/ci_dyn.pdb"
"${BUILD}/src/tools/pdbconv" --to=bin "${BUILD}/ci_dyn.pdb" \
    -o "${BUILD}/ci_dyn.bpdb"
"${BUILD}/src/tools/pdbconv" --to=ascii "${BUILD}/ci_dyn.bpdb" \
    -o "${BUILD}/ci_dyn.back.pdb"
cmp "${BUILD}/ci_dyn.pdb" "${BUILD}/ci_dyn.back.pdb"
"${BUILD}/src/tools/pdbtree" "${BUILD}/ci_dyn.bpdb" --profile > /dev/null

echo "== pdbd service =="
# The resident query daemon (docs/PDBD.md) must answer byte-identically
# to the one-shot tools under 32 concurrent clients, keep serving the
# old generation when a swap fails, hot-swap to a regenerated database
# without dropping anyone, and drain cleanly on shutdown (socket
# unlinked, exit 0).
PDBD_SOCK="${BUILD}/ci_pdbd.sock"
PDBQ="${BUILD}/src/pdbd/pdbq"
rm -f "${PDBD_SOCK}"
"${BUILD}/src/pdbd/pdbd" "${BUILD}/ci_fmt_merged.pdb" \
    --socket "${PDBD_SOCK}" 2> "${BUILD}/ci_pdbd.log" &
PDBD_PID=$!
for _ in $(seq 1 100); do [ -S "${PDBD_SOCK}" ] && break; sleep 0.1; done
[ -S "${PDBD_SOCK}" ]
# One-shot references for every verb the clients will ask.
"${BUILD}/src/tools/pdbtree" "${BUILD}/ci_fmt_merged.pdb" --calls \
    > "${BUILD}/ci_pdbd_calltree.ref"
"${BUILD}/src/tools/pdbtree" "${BUILD}/ci_fmt_merged.pdb" --classes \
    > "${BUILD}/ci_pdbd_hierarchy.ref"
"${BUILD}/src/tools/pdbtree" "${BUILD}/ci_fmt_merged.pdb" --includes \
    > "${BUILD}/ci_pdbd_includes.ref"
"${BUILD}/src/tools/pdbduct" "${BUILD}/ci_fmt_merged.pdb" \
    --routine dot --defs > "${BUILD}/ci_pdbd_defuse.ref"
# 32 concurrent clients, verbs interleaved round-robin.
client_pids=()
for i in $(seq 0 31); do
    case $((i % 4)) in
        0) verb="calltree" ;;
        1) verb="hierarchy" ;;
        2) verb="includes" ;;
        3) verb="defuse" ;;
    esac
    if [ "${verb}" = "defuse" ]; then
        "${PDBQ}" --socket "${PDBD_SOCK}" defuse --routine dot --defs \
            > "${BUILD}/ci_pdbd_client_${i}.out" &
    else
        "${PDBQ}" --socket "${PDBD_SOCK}" "${verb}" \
            > "${BUILD}/ci_pdbd_client_${i}.out" &
    fi
    client_pids+=($!)
done
for pid in "${client_pids[@]}"; do wait "${pid}"; done
for i in $(seq 0 31); do
    case $((i % 4)) in
        0) ref="calltree" ;;
        1) ref="hierarchy" ;;
        2) ref="includes" ;;
        3) ref="defuse" ;;
    esac
    cmp "${BUILD}/ci_pdbd_client_${i}.out" "${BUILD}/ci_pdbd_${ref}.ref"
done
# check verb: bytes and exit code must both mirror pdbcheck.
check_ref_rc=0
"${BUILD}/src/tools/pdbcheck" "${BUILD}/ci_fmt_merged.pdb" --checks=all \
    > "${BUILD}/ci_pdbd_check.ref" || check_ref_rc=$?
check_rc=0
"${PDBQ}" --socket "${PDBD_SOCK}" check \
    > "${BUILD}/ci_pdbd_check.out" || check_rc=$?
[ "${check_rc}" -eq "${check_ref_rc}" ]
cmp "${BUILD}/ci_pdbd_check.out" "${BUILD}/ci_pdbd_check.ref"
# A failed swap must leave the old generation serving.
! "${PDBQ}" --socket "${PDBD_SOCK}" swap "${BUILD}/ci_pdbd_missing.pdb" \
    2> /dev/null
"${PDBQ}" --socket "${PDBD_SOCK}" calltree \
    | cmp - "${BUILD}/ci_pdbd_calltree.ref"
# Hot-swap to the regenerated dynamic database and require the daemon's
# profile rendering to match the one-shot tool over the new file.
"${PDBQ}" --socket "${PDBD_SOCK}" --json swap "${BUILD}/ci_dyn.pdb" \
    | grep -q '"ok": true'
"${BUILD}/src/tools/pdbtree" "${BUILD}/ci_dyn.pdb" --profile \
    > "${BUILD}/ci_pdbd_profile.ref"
"${PDBQ}" --socket "${PDBD_SOCK}" profile \
    | cmp - "${BUILD}/ci_pdbd_profile.ref"
"${PDBQ}" --socket "${PDBD_SOCK}" status \
    | grep -q '"generation": 2'
# Drain: shutdown answers, the daemon exits 0, the socket is unlinked.
"${PDBQ}" --socket "${PDBD_SOCK}" --json shutdown | grep -q '"draining": true'
wait "${PDBD_PID}"
[ ! -e "${PDBD_SOCK}" ]
echo "pdbd gate OK: 32 clients byte-identical, hot-swap + drain clean"

echo "== pdbd concurrency (TSan) =="
# The wait-free generation publication (src/pdbd/service.h) is proven
# data-race-free, not just assumed: rebuild the multithreaded service
# test under ThreadSanitizer and require a clean run.
TSAN_BUILD="${BUILD}-tsan"
cmake -S "${ROOT}" -B "${TSAN_BUILD}" -DPDT_SANITIZE=thread > /dev/null
cmake --build "${TSAN_BUILD}" -j "${JOBS}" --target pdbd_service_mt_test \
    > /dev/null
"${TSAN_BUILD}/tests/pdbd/pdbd_service_mt_test"

echo "== CI gate passed =="
