#!/usr/bin/env bash
# Tier-1 CI gate: address-sanitized build, the full test suite, repository
# lint, and a self-hosted pdbcheck run over the repo's own example program.
#
#   scripts/ci.sh [build-dir]      (default: build-ci)
#
# Everything must pass; the script stops at the first failure.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure (ASan) =="
cmake -S "${ROOT}" -B "${BUILD}" -DPDT_SANITIZE=address

echo "== build =="
cmake --build "${BUILD}" -j "${JOBS}"

echo "== lint =="
cmake --build "${BUILD}" --target check-lint

echo "== tests =="
ctest --test-dir "${BUILD}" --output-on-failure -j "${JOBS}"

echo "== self-hosted pdbcheck =="
# Compile the shipped Krylov solver (the Figure 7 subject) to a database
# and run every check over it. The inputs are clean code: any warning or
# error — or any false positive — fails the gate (exit 1 on findings).
"${BUILD}/src/tools/cxxparse" \
    "${ROOT}/inputs/pooma_mini/krylov.cpp" \
    -I "${ROOT}/inputs/pooma_mini" -I "${ROOT}/runtime/pdt_stl" \
    -o "${BUILD}/ci_krylov.pdb"
"${BUILD}/src/tools/pdbcheck" "${BUILD}/ci_krylov.pdb" --checks=all -j "${JOBS}"

echo "== build cache determinism =="
# Compile the same inputs twice into a fresh cache directory: the first
# run compiles and stores, the second republishes every TU from the
# cache. The merged databases must be byte-identical (and identical to
# the uncached database produced above).
CACHE_DIR="${BUILD}/ci_cache"
rm -rf "${CACHE_DIR}"
"${BUILD}/src/tools/cxxparse" \
    "${ROOT}/inputs/pooma_mini/krylov.cpp" \
    -I "${ROOT}/inputs/pooma_mini" -I "${ROOT}/runtime/pdt_stl" \
    --cache-dir "${CACHE_DIR}" --cache-stats -j "${JOBS}" \
    -o "${BUILD}/ci_krylov_cold.pdb"
"${BUILD}/src/tools/cxxparse" \
    "${ROOT}/inputs/pooma_mini/krylov.cpp" \
    -I "${ROOT}/inputs/pooma_mini" -I "${ROOT}/runtime/pdt_stl" \
    --cache-dir "${CACHE_DIR}" --cache-stats -j "${JOBS}" \
    -o "${BUILD}/ci_krylov_warm.pdb"
cmp "${BUILD}/ci_krylov_cold.pdb" "${BUILD}/ci_krylov_warm.pdb"
cmp "${BUILD}/ci_krylov.pdb" "${BUILD}/ci_krylov_warm.pdb"

echo "== CI gate passed =="
