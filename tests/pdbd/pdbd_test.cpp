// pdbd unit tests: the flat JSON protocol round-trips and rejects what
// it must, the service answers every verb byte-identically to the
// one-shot tools, failed swaps keep the old generation serving, and the
// connection loop handles framing (multiple requests per read, requests
// split across reads, malformed lines) over a plain socketpair.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/writer.h"
#include "pdbd/proto.h"
#include "pdbd/server.h"
#include "pdbd/service.h"
#include "tools/tools.h"

namespace pdt::pdbd {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// proto
// ---------------------------------------------------------------------------

TEST(Proto, ParsesEveryValueKind) {
  Message m;
  std::string error;
  ASSERT_TRUE(parseMessage(
      R"({"q": "defuse", "line": 12, "neg": -3, "defs": true, )"
      R"("uses": false, "none": null})",
      m, error));
  EXPECT_EQ(m.str("q"), "defuse");
  EXPECT_EQ(m.num("line"), 12);
  EXPECT_EQ(m.num("neg"), -3);
  EXPECT_TRUE(m.flag("defs"));
  EXPECT_FALSE(m.flag("uses"));
  EXPECT_FALSE(m.has("none"));
  EXPECT_EQ(m.num("absent", 7), 7);
}

TEST(Proto, UnescapesStrings) {
  Message m;
  std::string error;
  ASSERT_TRUE(parseMessage(R"({"name": "a\"b\\c\ndA"})", m, error));
  EXPECT_EQ(m.str("name"), "a\"b\\c\ndA");
}

TEST(Proto, RejectsMalformedInput) {
  Message m;
  std::string error;
  EXPECT_FALSE(parseMessage("", m, error));
  EXPECT_FALSE(parseMessage("not json", m, error));
  EXPECT_FALSE(parseMessage(R"({"q": "x")", m, error));
  EXPECT_FALSE(parseMessage(R"({"q": {"nested": 1}})", m, error));
  EXPECT_FALSE(parseMessage(R"({"q": [1]})", m, error));
  EXPECT_FALSE(parseMessage(R"({"q": 1.5})", m, error));
  EXPECT_FALSE(parseMessage(R"({"q": "x"} trailing)", m, error));
  EXPECT_FALSE(error.empty());
}

TEST(Proto, WriterRoundTripsThroughTheParser) {
  MessageWriter w;
  w.field("q", std::string_view("lookup"));
  w.field("name", std::string_view("Stack<int>::push \"quoted\"\n"));
  w.field("generation", std::uint64_t{42});
  w.field("ok", true);
  const std::string line = w.finish();

  Message m;
  std::string error;
  ASSERT_TRUE(parseMessage(line, m, error)) << line;
  EXPECT_EQ(m.str("q"), "lookup");
  EXPECT_EQ(m.str("name"), "Stack<int>::push \"quoted\"\n");
  EXPECT_EQ(m.num("generation"), 42);
  EXPECT_TRUE(m.flag("ok"));
}

// ---------------------------------------------------------------------------
// service
// ---------------------------------------------------------------------------

constexpr const char* kAlpha = R"(
class Base {
public:
    virtual void act() {}
};
void leaf() {}
void driver(Base& b) {
    b.act();
    leaf();
}
)";

constexpr const char* kBeta = R"(
int helper(int a) {
    int t = a;
    t = a + 1;
    return t;
}
int entry() { return helper(2); }
)";

std::string compileToFile(const fs::path& path, const std::string& name,
                          const std::string& source) {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource(name, source);
  const std::string text = pdb::writeToString(ilanalyzer::analyze(result, sm));
  std::ofstream os(path, std::ios::binary);
  os.write(text.data(), static_cast<std::streamsize>(text.size()));
  return path.string();
}

Message roundTrip(const std::string& response) {
  Message m;
  std::string error;
  EXPECT_TRUE(parseMessage(response, m, error)) << response;
  return m;
}

Message ask(Service& service, const std::string& request) {
  Message req;
  std::string error;
  EXPECT_TRUE(parseMessage(request, req, error)) << request;
  return roundTrip(service.handle(req));
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pdt_pdbd_" + std::to_string(::testing::UnitTest::GetInstance()
                                             ->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
    alpha_ = compileToFile(dir_ / "alpha.pdb", "alpha.cpp", kAlpha);
    beta_ = compileToFile(dir_ / "beta.pdb", "beta.cpp", kBeta);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
  std::string alpha_;
  std::string beta_;
};

TEST_F(ServiceTest, AnswersBeforeLoadWithNoDatabase) {
  Service service;
  const Message m = ask(service, R"({"q": "status"})");
  EXPECT_FALSE(m.flag("ok"));
  EXPECT_EQ(m.str("code"), "no-database");
}

TEST_F(ServiceTest, TreeVerbsMatchTheOneShotTool) {
  Service service;
  std::string error;
  ASSERT_TRUE(service.load(alpha_, error)) << error;
  const ductape::PDB pdb = ductape::PDB::read(alpha_);
  ASSERT_TRUE(pdb.valid());

  const struct {
    const char* verb;
    tools::TreeKind kind;
  } verbs[] = {
      {"includes", tools::TreeKind::Includes},
      {"hierarchy", tools::TreeKind::ClassHierarchy},
      {"calltree", tools::TreeKind::CallGraph},
      {"profile", tools::TreeKind::Profile},
  };
  for (const auto& [verb, kind] : verbs) {
    const Message m =
        ask(service, std::string(R"({"q": ")") + verb + R"("})");
    ASSERT_TRUE(m.flag("ok")) << verb;
    std::ostringstream ref;
    tools::pdbtree(pdb, kind, ref);
    EXPECT_EQ(m.str("text"), ref.str()) << verb;
    EXPECT_EQ(m.num("generation"),
              static_cast<std::int64_t>(service.current()->id));
  }
}

TEST_F(ServiceTest, LookupAndDefuseAndCheckAnswer) {
  Service service;
  std::string error;
  ASSERT_TRUE(service.load(beta_, error)) << error;

  const Message lookup = ask(service, R"({"q": "lookup", "name": "helper"})");
  ASSERT_TRUE(lookup.flag("ok"));
  EXPECT_NE(lookup.str("text").find("ro#"), std::string::npos);
  EXPECT_NE(lookup.str("text").find("helper"), std::string::npos);

  const Message du = ask(
      service, R"({"q": "defuse", "routine": "helper", "var": "t", )"
               R"("defs": true})");
  ASSERT_TRUE(du.flag("ok"));
  EXPECT_NE(du.str("text").find("use of 't'"), std::string::npos);

  const Message check = ask(service, R"({"q": "check"})");
  ASSERT_TRUE(check.flag("ok"));
  EXPECT_NE(check.str("text").find("check(s)"), std::string::npos);
}

TEST_F(ServiceTest, RejectsBadRequests) {
  Service service;
  std::string error;
  ASSERT_TRUE(service.load(alpha_, error)) << error;
  EXPECT_EQ(ask(service, R"({"name": "x"})").str("code"), "bad-request");
  EXPECT_EQ(ask(service, R"({"q": "frobnicate"})").str("code"), "bad-verb");
  EXPECT_EQ(ask(service, R"({"q": "lookup"})").str("code"), "bad-request");
  EXPECT_EQ(ask(service, R"({"q": "swap"})").str("code"), "bad-request");
  EXPECT_EQ(ask(service, R"({"q": "check", "format": "yaml"})").str("code"),
            "bad-request");
}

TEST_F(ServiceTest, SwapPublishesANewGenerationAndFailureKeepsTheOld) {
  Service service;
  std::string error;
  ASSERT_TRUE(service.load(alpha_, error)) << error;
  const std::uint64_t first = service.current()->id;

  const Message swapped =
      ask(service, std::string(R"({"q": "swap", "db": ")") + beta_ + R"("})");
  ASSERT_TRUE(swapped.flag("ok"));
  EXPECT_GT(static_cast<std::uint64_t>(swapped.num("generation")), first);
  EXPECT_EQ(service.current()->db_path, beta_);

  // The new database answers; the calltree is beta's, not alpha's.
  const Message calls = ask(service, R"({"q": "calltree"})");
  EXPECT_NE(calls.str("text").find("entry"), std::string::npos);
  EXPECT_EQ(calls.str("text").find("driver"), std::string::npos);

  // A failed swap is reported and the current generation keeps serving.
  const std::uint64_t before = service.current()->id;
  const Message failed = ask(
      service,
      std::string(R"({"q": "swap", "db": ")") + (dir_ / "gone.pdb").string() +
          R"("})");
  EXPECT_FALSE(failed.flag("ok"));
  EXPECT_EQ(failed.str("code"), "open-failed");
  EXPECT_EQ(service.current()->id, before);
  EXPECT_EQ(service.current()->db_path, beta_);
}

TEST_F(ServiceTest, ShutdownRaisesTheFlag) {
  Service service;
  std::string error;
  ASSERT_TRUE(service.load(alpha_, error)) << error;
  EXPECT_FALSE(service.shutdownRequested());
  const Message m = ask(service, R"({"q": "shutdown"})");
  EXPECT_TRUE(m.flag("ok"));
  EXPECT_TRUE(service.shutdownRequested());
}

// ---------------------------------------------------------------------------
// connection loop (over a socketpair; no listener needed)
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, ConnectionLoopFramesRequestsAndAnswersInOrder) {
  Service service;
  std::string error;
  ASSERT_TRUE(service.load(alpha_, error)) << error;

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::size_t served = 0;
  std::thread server([&] {
    served = serveConnection(fds[0], service);
    ::close(fds[0]);  // EOF for the client's read loop below
  });

  // Three requests: two in one write (testing multiple frames per read),
  // one malformed; then a request split across two writes.
  const std::string batch =
      R"({"q": "status"})" "\n" "this is not json\n";
  ASSERT_EQ(::send(fds[1], batch.data(), batch.size(), 0),
            static_cast<ssize_t>(batch.size()));
  const std::string split = R"({"q": "look)";
  const std::string rest = R"(up", "name": "leaf"})" "\n";
  ASSERT_EQ(::send(fds[1], split.data(), split.size(), 0),
            static_cast<ssize_t>(split.size()));
  ASSERT_EQ(::send(fds[1], rest.data(), rest.size(), 0),
            static_cast<ssize_t>(rest.size()));
  ::shutdown(fds[1], SHUT_WR);

  std::string responses;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fds[1], buf, sizeof buf, 0);
    if (n <= 0) break;
    responses.append(buf, static_cast<std::size_t>(n));
  }
  server.join();
  ::close(fds[1]);

  EXPECT_EQ(served, 3u);
  std::istringstream lines(responses);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_TRUE(roundTrip(line).flag("ok"));
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(roundTrip(line).str("code"), "parse-error");
  ASSERT_TRUE(std::getline(lines, line));
  const Message lookup = roundTrip(line);
  EXPECT_TRUE(lookup.flag("ok"));
  EXPECT_NE(lookup.str("text").find("leaf"), std::string::npos);
  EXPECT_FALSE(std::getline(lines, line));
}

}  // namespace
}  // namespace pdt::pdbd
