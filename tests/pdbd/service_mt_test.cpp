// Concurrency contract of the pdbd service (run under
// -DPDT_SANITIZE=thread in CI): N client threads query while a writer
// hot-swaps database generations. Every response must be attributable
// to exactly one generation — its text is byte-identical to one of the
// two databases' expected renderings, and one generation never yields
// two different texts. The query path takes no locks; TSan verifies the
// atomic shared_ptr publication is the only synchronization needed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/writer.h"
#include "pdbd/proto.h"
#include "pdbd/service.h"

namespace pdt::pdbd {
namespace {

namespace fs = std::filesystem;

constexpr const char* kAlpha = R"(
class Base {
public:
    virtual void act() {}
};
void leaf() {}
void driver(Base& b) {
    b.act();
    leaf();
}
)";

constexpr const char* kBeta = R"(
int helper(int a) {
    int t = a;
    t = a + 1;
    return t;
}
int entry() { return helper(2); }
)";

std::string compileToFile(const fs::path& path, const std::string& name,
                          const std::string& source) {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource(name, source);
  const std::string text = pdb::writeToString(ilanalyzer::analyze(result, sm));
  std::ofstream os(path, std::ios::binary);
  os.write(text.data(), static_cast<std::streamsize>(text.size()));
  return path.string();
}

TEST(ServiceMt, ConcurrentQueriesSurviveHotSwapsUntorn) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("pdt_pdbd_mt_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::create_directories(dir);
  const std::string alpha = compileToFile(dir / "alpha.pdb", "a.cpp", kAlpha);
  const std::string beta = compileToFile(dir / "beta.pdb", "b.cpp", kBeta);

  Service service;
  std::string error;
  ASSERT_TRUE(service.load(alpha, error)) << error;

  // Expected texts, computed single-threaded through the same service
  // before any concurrency starts.
  const auto textOf = [&service](const char* verb) {
    Message req;
    std::string perr;
    EXPECT_TRUE(parseMessage(std::string(R"({"q": ")") + verb + R"("})", req,
                             perr));
    Message resp;
    EXPECT_TRUE(parseMessage(service.handle(req), resp, perr));
    EXPECT_TRUE(resp.flag("ok"));
    return resp.str("text");
  };
  const std::string alpha_calls = textOf("calltree");
  const std::string alpha_classes = textOf("hierarchy");
  std::string swap_err;
  ASSERT_TRUE(service.load(beta, swap_err)) << swap_err;
  const std::string beta_calls = textOf("calltree");
  const std::string beta_classes = textOf("hierarchy");
  ASSERT_NE(alpha_calls, beta_calls);
  ASSERT_TRUE(service.load(alpha, swap_err)) << swap_err;

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 120;
  // Readers that hit their quota before observing a second generation
  // keep querying (the writer is still swapping) up to this many extra
  // iterations — generous enough for any scheduler, small enough to
  // fail rather than hang if publication were broken.
  constexpr int kMaxQueriesPerReader = kQueriesPerReader * 500;

  std::atomic<bool> start{false};
  std::atomic<int> torn{0};
  std::atomic<int> done_readers{0};
  // generation id -> (calltree text, hierarchy text), merged across
  // readers after the fact; a generation that ever shows two texts is a
  // torn read.
  std::mutex seen_mu;
  std::map<std::uint64_t, std::pair<std::string, std::string>> seen;

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      Message calls_req, classes_req;
      std::string perr;
      ASSERT_TRUE(parseMessage(R"({"q": "calltree"})", calls_req, perr));
      ASSERT_TRUE(parseMessage(R"({"q": "hierarchy"})", classes_req, perr));
      std::set<std::uint64_t> observed;
      for (int i = 0;
           i < kQueriesPerReader ||
           (observed.size() < 2 && i < kMaxQueriesPerReader);
           ++i) {
        const bool want_calls = (i % 2) == 0;
        Message resp;
        ASSERT_TRUE(parseMessage(
            service.handle(want_calls ? calls_req : classes_req), resp, perr));
        ASSERT_TRUE(resp.flag("ok"));
        const auto gen = static_cast<std::uint64_t>(resp.num("generation"));
        observed.insert(gen);
        const std::string text = resp.str("text");
        // The text must be exactly one database's rendering...
        if (want_calls) {
          if (text != alpha_calls && text != beta_calls) {
            torn.fetch_add(1);
            continue;
          }
        } else if (text != alpha_classes && text != beta_classes) {
          torn.fetch_add(1);
          continue;
        }
        // ...and one generation must never answer with two databases.
        std::lock_guard<std::mutex> lock(seen_mu);
        auto [it, inserted] = seen.try_emplace(gen);
        std::string& slot = want_calls ? it->second.first : it->second.second;
        if (slot.empty()) {
          slot = text;
        } else if (slot != text) {
          torn.fetch_add(1);
        }
      }
      done_readers.fetch_add(1, std::memory_order_release);
    });
  }

  // The writer swaps for as long as any reader is still querying; the
  // readers above don't stop until they have each seen two generations.
  // Together that pins the interleaving regardless of scheduling: on a
  // single-core machine the readers can burn through their whole quota
  // before this thread first runs, and a fixed swap count would then
  // exercise exactly one generation.
  std::thread writer([&] {
    while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int i = 0; done_readers.load(std::memory_order_acquire) < kReaders;
         ++i) {
      std::string werr;
      ASSERT_TRUE(service.load((i % 2) == 0 ? beta : alpha, werr)) << werr;
      // Pace against the readers: wait for at least one query to be
      // answered after this swap, so generations actually interleave
      // with queries instead of the writer spinning through loads.
      const std::uint64_t mark = service.queriesServed();
      while (service.queriesServed() == mark &&
             done_readers.load(std::memory_order_acquire) < kReaders)
        std::this_thread::yield();
    }
  });

  start.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  writer.join();

  EXPECT_EQ(torn.load(), 0);
  // The run actually exercised multiple generations.
  EXPECT_GT(seen.size(), 1u);
  // Consistency across verbs inside one generation: a generation whose
  // calltree is alpha's must not show beta's hierarchy.
  for (const auto& [gen, texts] : seen) {
    const auto& [calls, classes] = texts;
    if (calls.empty() || classes.empty()) continue;
    const bool is_alpha = calls == alpha_calls;
    EXPECT_EQ(classes, is_alpha ? alpha_classes : beta_classes)
        << "generation " << gen << " mixed databases";
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace pdt::pdbd
