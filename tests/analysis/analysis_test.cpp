// pdbcheck analysis tests: the collapsed call graph (AnalysisContext),
// every rule of the registry, rule selection, deterministic parallel
// execution, the SARIF-shaped JSON, "<generated>" rendering for items
// without source locations, and pdb::validate on corrupt databases.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "analysis/context.h"
#include "analysis/diagnostics.h"
#include "analysis/rules.h"
#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/validate.h"

namespace pdt::analysis {
namespace {

using ductape::PDB;

struct Header {
  std::string name;
  std::string source;
};

PDB compileToPdb(const std::string& main_source,
                 const std::vector<Header>& headers = {}) {
  SourceManager sm;
  DiagnosticEngine diags;
  for (const Header& h : headers) sm.addVirtualFile(h.name, h.source);
  frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource("main.cpp", main_source);
  EXPECT_FALSE(diags.hasErrors()) << "unexpected diagnostics";
  return PDB::fromPdbFile(ilanalyzer::analyze(result, sm));
}

std::vector<Diag> runRule(const PDB& pdb, const std::string& rule) {
  CheckOptions options;
  options.checks = rule;
  const CheckResult result = runChecks(pdb, options);
  EXPECT_TRUE(result.ok()) << result.error;
  return result.diags;
}

bool anyMessageContains(const std::vector<Diag>& diags,
                        const std::string& needle) {
  for (const Diag& d : diags) {
    if (d.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// AnalysisContext
// ---------------------------------------------------------------------------

constexpr const char* kTwoInstantiations = R"(
template <class T>
struct Stack {
    void push(T x) { ++n; }
    int n;
};
int main() {
    Stack<int> a;
    Stack<double> b;
    a.push(1);
    b.push(2.0);
    return 0;
}
)";

TEST(AnalysisContext, CollapsesTemplateInstantiations) {
  PDB pdb = compileToPdb(kTwoInstantiations);
  const AnalysisContext ctx = AnalysisContext::build(pdb);

  // Stack<int>::push and Stack<double>::push share one node.
  const CallNode* push = nullptr;
  for (const CallNode& n : ctx.nodes) {
    if (n.rep != nullptr && n.rep->name() == "push") {
      ASSERT_EQ(push, nullptr) << "push collapsed into more than one node";
      push = &n;
    }
  }
  ASSERT_NE(push, nullptr);
  EXPECT_EQ(push->members.size(), 2u);
  ASSERT_NE(push->origin, nullptr);
  // The collapsed node is named after the template.
  const int idx = ctx.node_of.at(push->rep);
  EXPECT_NE(ctx.nodeName(idx).find("2 instantiations"), std::string::npos);
  // Both instantiations map to the same node.
  for (const ductape::pdbRoutine* r : push->members)
    EXPECT_EQ(ctx.node_of.at(r), idx);
}

TEST(AnalysisContext, RootsAndEdges) {
  PDB pdb = compileToPdb(kTwoInstantiations);
  const AnalysisContext ctx = AnalysisContext::build(pdb);
  ASSERT_FALSE(ctx.roots.empty());

  // main is a root and calls the collapsed push node.
  const ductape::pdbRoutine* main_r = nullptr;
  for (const ductape::pdbRoutine* r : pdb.getRoutineVec()) {
    if (r->name() == "main") main_r = r;
  }
  ASSERT_NE(main_r, nullptr);
  const int main_node = ctx.node_of.at(main_r);
  EXPECT_TRUE(std::find(ctx.roots.begin(), ctx.roots.end(), main_node) !=
              ctx.roots.end());

  // succ/pred are symmetric.
  for (std::size_t u = 0; u < ctx.nodes.size(); ++u) {
    for (const int v : ctx.nodes[u].succ) {
      const auto& pred = ctx.nodes[v].pred;
      EXPECT_TRUE(std::find(pred.begin(), pred.end(), static_cast<int>(u)) !=
                  pred.end());
    }
  }
}

TEST(AnalysisContext, SignatureCompatibility) {
  PDB pdb = compileToPdb(R"(
struct B {
    virtual int f(int x) { return x; }
};
struct D : B {
    int f(double x) { return 0; }
};
int main() { return 0; }
)");
  const ductape::pdbRoutine* base_f = nullptr;
  const ductape::pdbRoutine* derived_f = nullptr;
  for (const ductape::pdbRoutine* r : pdb.getRoutineVec()) {
    if (r->name() != "f") continue;
    if (r->fullName().rfind("B::", 0) == 0) base_f = r;
    if (r->fullName().rfind("D::", 0) == 0) derived_f = r;
  }
  ASSERT_NE(base_f, nullptr);
  ASSERT_NE(derived_f, nullptr);
  EXPECT_TRUE(aritiesCompatible(base_f, derived_f));   // same arity...
  EXPECT_FALSE(signaturesCompatible(base_f, derived_f));  // ...different types
  EXPECT_TRUE(signaturesCompatible(base_f, base_f));
}

// ---------------------------------------------------------------------------
// dead-code
// ---------------------------------------------------------------------------

TEST(DeadCodeRule, FindsUnreachableRoutine) {
  PDB pdb = compileToPdb(R"(
int used() { return 1; }
int unusedHelper() { return 2; }
int main() { return used(); }
)");
  const std::vector<Diag> diags = runRule(pdb, "dead-code");
  EXPECT_TRUE(anyMessageContains(diags, "'unusedHelper' is unreachable"));
  EXPECT_FALSE(anyMessageContains(diags, "'used'"));
  EXPECT_FALSE(anyMessageContains(diags, "'main'"));
}

TEST(DeadCodeRule, VirtualDispatchKeepsOverridesAlive) {
  PDB pdb = compileToPdb(R"(
struct Shape {
    virtual int area() { return 0; }
};
struct Circle : Shape {
    int area() { return 3; }
};
int paint(Shape* s) { return s->area(); }
int main() { Circle c; return paint(&c); }
)");
  const std::vector<Diag> diags = runRule(pdb, "dead-code");
  // Circle::area is only reachable through the virtual call on Shape*.
  EXPECT_FALSE(anyMessageContains(diags, "area")) << "virtual override flagged";
}

TEST(DeadCodeRule, ReachableCtorKeepsDtorAlive) {
  PDB pdb = compileToPdb(R"(
struct Guard {
    Guard() {}
    ~Guard() {}
};
int main() { Guard g; return 0; }
)");
  const std::vector<Diag> diags = runRule(pdb, "dead-code");
  EXPECT_FALSE(anyMessageContains(diags, "~Guard")) << "dtor flagged dead";
}

TEST(DeadCodeRule, SilentWithoutEntryPoints) {
  // A library TU: no main, no extern "C" — reachability is unknowable, so
  // the rule must stay quiet rather than flag everything.
  PDB pdb = compileToPdb(R"(
int helper(int v) { return v + 1; }
int api(int v) { return helper(v); }
)");
  EXPECT_TRUE(runRule(pdb, "dead-code").empty());
}

// ---------------------------------------------------------------------------
// recursion-cycles
// ---------------------------------------------------------------------------

TEST(RecursionCycleRule, DirectAndMutual) {
  PDB pdb = compileToPdb(R"(
int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
int pong(int n);
int ping(int n) { return n == 0 ? 0 : pong(n - 1); }
int pong(int n) { return ping(n); }
int straight(int n) { return n; }
int main() { return fact(3) + ping(2) + straight(1); }
)");
  const std::vector<Diag> diags = runRule(pdb, "recursion-cycles");
  EXPECT_TRUE(anyMessageContains(diags, "'fact' is directly recursive"));
  EXPECT_TRUE(anyMessageContains(diags, "recursion cycle through 2 routines"));
  EXPECT_FALSE(anyMessageContains(diags, "straight"));
  EXPECT_FALSE(anyMessageContains(diags, "main"));
}

// ---------------------------------------------------------------------------
// hierarchy-checks
// ---------------------------------------------------------------------------

TEST(HierarchyRule, NonVirtualDtorInPolymorphicBase) {
  PDB pdb = compileToPdb(R"(
struct Base {
    virtual int f() { return 0; }
    ~Base() {}
};
struct Derived : Base {
    int f() { return 1; }
};
int main() { Derived d; return d.f(); }
)");
  const std::vector<Diag> diags = runRule(pdb, "hierarchy-checks");
  EXPECT_TRUE(
      anyMessageContains(diags, "'Base'"));
  EXPECT_TRUE(anyMessageContains(diags, "destructor is not virtual"));
  // Derived::f overrides Base::f — no hiding diagnostics.
  EXPECT_FALSE(anyMessageContains(diags, "hides"));
}

TEST(HierarchyRule, HiddenVirtualWithDifferentSignature) {
  PDB pdb = compileToPdb(R"(
struct Base {
    virtual int f(int x) { return x; }
    virtual ~Base() {}
};
struct Derived : Base {
    int f(double x) { return 0; }
};
int main() { return 0; }
)");
  const std::vector<Diag> diags = runRule(pdb, "hierarchy-checks");
  EXPECT_TRUE(anyMessageContains(diags, "hides virtual function"));
}

TEST(HierarchyRule, CleanHierarchyIsQuiet) {
  PDB pdb = compileToPdb(R"(
struct Base {
    virtual int f() { return 0; }
    virtual ~Base() {}
};
struct Derived : Base {
    int f() { return 1; }
};
int main() { Derived d; return d.f(); }
)");
  EXPECT_TRUE(runRule(pdb, "hierarchy-checks").empty());
}

// ---------------------------------------------------------------------------
// include-graph
// ---------------------------------------------------------------------------

TEST(IncludeGraphRule, DetectsIncludeCycle) {
  PDB pdb = compileToPdb("#include \"ring_a.h\"\nint main() { return ring(); }\n",
                         {{"ring_a.h",
                           "#pragma once\n#include \"ring_b.h\"\nint ring();\n"},
                          {"ring_b.h",
                           "#pragma once\n#include \"ring_a.h\"\nint spoke();\n"}});
  const std::vector<Diag> diags = runRule(pdb, "include-graph");
  EXPECT_TRUE(anyMessageContains(diags, "include cycle through 2 files"));
}

TEST(IncludeGraphRule, FlagsUnusedInclude) {
  PDB pdb = compileToPdb(
      "#include \"used.h\"\n#include \"unused.h\"\nint main() { return used(); }\n",
      {{"used.h", "#pragma once\nint used() { return 1; }\n"},
       {"unused.h", "#pragma once\nint lonely() { return 2; }\n"}});
  const std::vector<Diag> diags = runRule(pdb, "include-graph");
  EXPECT_TRUE(anyMessageContains(diags, "uses nothing from it"));
  EXPECT_TRUE(anyMessageContains(diags, "unused.h"));
  EXPECT_FALSE(anyMessageContains(diags, "'used.h'"));
}

TEST(IncludeGraphRule, UsedIncludeThroughTypeIsQuiet) {
  // main.cpp never calls into vec.h directly, but its signature mentions
  // the class — the include is justified through the type reference.
  PDB pdb = compileToPdb(
      "#include \"vec.h\"\nint peek(Vec& v) { return v.n; }\nint main() { Vec v; v.n = 1; return peek(v); }\n",
      {{"vec.h", "#pragma once\nstruct Vec { int n; };\n"}});
  const std::vector<Diag> diags = runRule(pdb, "include-graph");
  EXPECT_FALSE(anyMessageContains(diags, "uses nothing"));
}

// ---------------------------------------------------------------------------
// template-bloat
// ---------------------------------------------------------------------------

TEST(TemplateBloatRule, ReportsMultipleInstantiations) {
  PDB pdb = compileToPdb(kTwoInstantiations);
  const std::vector<Diag> diags = runRule(pdb, "template-bloat");
  EXPECT_TRUE(anyMessageContains(diags, "2 class instantiation(s)") ||
              anyMessageContains(diags, "2 routine instantiation(s)"));
}

TEST(TemplateBloatRule, SingleInstantiationIsNotBloat) {
  PDB pdb = compileToPdb(R"(
template <class T> T twice(T v) { return v + v; }
int main() { return twice(2); }
)");
  EXPECT_TRUE(runRule(pdb, "template-bloat").empty());
}

// ---------------------------------------------------------------------------
// rule selection
// ---------------------------------------------------------------------------

TEST(SelectRules, DefaultAllInRegistryOrder) {
  const auto& all = allRules();
  std::string error;
  const auto selected = selectRules("all", &error);
  ASSERT_EQ(selected.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(selected[i], all[i]);
}

TEST(SelectRules, NamesAndExclusions) {
  std::string error;
  auto two = selectRules("dead-code,include-graph", &error);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0]->name(), "dead-code");
  EXPECT_EQ(two[1]->name(), "include-graph");

  auto minus = selectRules("-template-bloat", &error);
  EXPECT_EQ(minus.size(), allRules().size() - 1);
  for (const Rule* r : minus) EXPECT_NE(r->name(), "template-bloat");

  auto with_minus = selectRules("all,-dead-code,-recursion-cycles", &error);
  EXPECT_EQ(with_minus.size(), allRules().size() - 2);
}

TEST(SelectRules, UnknownNameReportsCatalog) {
  std::string error;
  const auto selected = selectRules("no-such-check", &error);
  EXPECT_TRUE(selected.empty());
  EXPECT_NE(error.find("unknown check 'no-such-check'"), std::string::npos);
  EXPECT_NE(error.find("dead-code"), std::string::npos);
}

// ---------------------------------------------------------------------------
// checker: determinism, formats, error paths
// ---------------------------------------------------------------------------

constexpr const char* kFindingsSource = R"(
int dead1() { return 1; }
int dead2() { return 2; }
int rec(int n) { return n == 0 ? 0 : rec(n - 1); }
int main() { return rec(3); }
)";

TEST(Checker, ParallelOutputIsByteIdentical) {
  PDB pdb = compileToPdb(kFindingsSource);
  CheckOptions serial;
  CheckOptions parallel = serial;
  parallel.jobs = 4;
  for (const auto format :
       {CheckOptions::Format::Text, CheckOptions::Format::Json}) {
    serial.format = parallel.format = format;
    std::ostringstream a, b;
    render(runChecks(pdb, serial), serial, a);
    render(runChecks(pdb, parallel), parallel, b);
    EXPECT_EQ(a.str(), b.str());
  }
}

TEST(Checker, DiagnosticsAreLocationSorted) {
  PDB pdb = compileToPdb(kFindingsSource);
  const CheckResult result = runChecks(pdb, CheckOptions{});
  for (std::size_t i = 1; i < result.diags.size(); ++i)
    EXPECT_FALSE(diagLess(result.diags[i], result.diags[i - 1]));
}

TEST(Checker, CountsBySeverity) {
  PDB pdb = compileToPdb(kFindingsSource);
  const CheckResult result = runChecks(pdb, CheckOptions{});
  EXPECT_EQ(result.errors, 0);
  EXPECT_EQ(result.warnings, 2);  // dead1, dead2
  EXPECT_EQ(result.notes, 1);     // rec is directly recursive
  EXPECT_TRUE(result.hasFindings());
}

TEST(Checker, BadChecksSpecFailsWithoutRunning) {
  PDB pdb = compileToPdb("int main() { return 0; }\n");
  CheckOptions options;
  options.checks = "bogus";
  const CheckResult result = runChecks(pdb, options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.diags.empty());
  EXPECT_NE(result.error.find("unknown check"), std::string::npos);
}

TEST(Checker, JsonIsSarifShaped) {
  PDB pdb = compileToPdb(kFindingsSource);
  CheckOptions options;
  options.format = CheckOptions::Format::Json;
  const CheckResult result = runChecks(pdb, options);
  std::ostringstream os;
  renderJson(result, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"pdbcheck\""), std::string::npos);
  EXPECT_NE(json.find("\"ruleId\": \"dead-code\""), std::string::npos);
  EXPECT_NE(json.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(json.find("\"startLine\""), std::string::npos);
}

TEST(Checker, TextFormatIncludesRuleTags) {
  PDB pdb = compileToPdb(kFindingsSource);
  const CheckResult result = runChecks(pdb, CheckOptions{});
  std::ostringstream os;
  renderText(result, os);
  EXPECT_NE(os.str().find("[dead-code]"), std::string::npos);
  EXPECT_NE(os.str().find("warning: "), std::string::npos);
  EXPECT_NE(os.str().find("main.cpp:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// "<generated>" rendering for locationless entities
// ---------------------------------------------------------------------------

TEST(Diagnostics, MissingLocationRendersAsGenerated) {
  EXPECT_EQ(locationText(ductape::pdbLoc{}), kGeneratedLoc);

  DiagSink sink;
  sink.report("dead-code", Severity::Warning, "msg", "entity",
              ductape::pdbLoc{});
  ASSERT_EQ(sink.diags().size(), 1u);
  EXPECT_FALSE(sink.diags()[0].hasLocation());
  EXPECT_EQ(sink.diags()[0].locationText(), kGeneratedLoc);
}

TEST(Diagnostics, GeneratedSortsAfterLocated) {
  Diag located;
  located.file = "a.cpp";
  located.line = 1;
  Diag generated;  // no file
  EXPECT_TRUE(diagLess(located, generated));
  EXPECT_FALSE(diagLess(generated, located));
}

// ---------------------------------------------------------------------------
// pdb::validate (corrupt inputs)
// ---------------------------------------------------------------------------

TEST(Validate, CleanDatabaseHasNoErrors) {
  PDB pdb = compileToPdb(kTwoInstantiations);
  EXPECT_TRUE(pdt::pdb::validate(pdb.raw()).empty());
}

TEST(Validate, DanglingCallTargetIsReported) {
  PDB pdb = compileToPdb("int f() { return 1; }\nint main() { return f(); }\n");
  pdb::PdbFile raw = pdb.raw();
  ASSERT_FALSE(raw.routines().empty());
  pdb::RoutineItem::Call bad;
  bad.routine = 9999;
  raw.routines()[0].calls.push_back(bad);
  const std::vector<std::string> errors = pdt::pdb::validate(raw);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("call references undefined ro#9999"),
            std::string::npos);
}

TEST(Validate, DanglingIncludeAndBaseAreReported) {
  PDB pdb = compileToPdb("struct A {};\nstruct B : A {};\nint main() { return 0; }\n");
  pdb::PdbFile raw = pdb.raw();
  ASSERT_FALSE(raw.sourceFiles().empty());
  raw.sourceFiles()[0].includes.push_back(777);
  bool patched_base = false;
  for (auto& c : raw.classes()) {
    for (auto& b : c.bases) {
      b.cls = 888;
      patched_base = true;
    }
  }
  ASSERT_TRUE(patched_base);
  const std::vector<std::string> errors = pdt::pdb::validate(raw);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NE(errors[0].find("includes undefined so#777"), std::string::npos);
  EXPECT_NE(errors[1].find("base references undefined cl#888"),
            std::string::npos);
}

}  // namespace
}  // namespace pdt::analysis
