// Dataflow framework tests: CFG-lite reconstruction from marker-structured
// du streams, the reaching-definitions solver (strong vs. weak updates,
// loop back edges), and the three dataflow rules end-to-end — seeded bugs
// must be found, and the common safe idioms must stay silent (the CI gate
// runs these rules over clean inputs and fails on any finding).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/checker.h"
#include "analysis/dataflow.h"
#include "analysis/diagnostics.h"
#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/pdb.h"

namespace pdt::analysis {
namespace {

using ductape::PDB;
using pdb::DefUseItem;
using pdb::DuOp;
namespace du = pdb::du;

DefUseItem::Event def(std::string_view name, std::uint8_t flags = 0) {
  return {DuOp::Def, flags, name, {1, 1, 1}};
}
DefUseItem::Event use(std::string_view name, std::uint8_t flags = 0) {
  return {DuOp::Use, flags, name, {1, 1, 1}};
}
DefUseItem::Event mark(std::string_view kind) {
  return {DuOp::Marker, 0, kind, {1, 1, 1}};
}

TEST(Cfg, StraightLineIsOneBlockPlusEntryExit) {
  DefUseItem item;
  item.events = {def("x"), use("x")};
  const dataflow::Cfg cfg = dataflow::Cfg::build(item);
  EXPECT_FALSE(cfg.irregular());
  EXPECT_EQ(cfg.blockOf(0), cfg.blockOf(1));
  EXPECT_EQ(cfg.blocks()[cfg.blockOf(0)].events.size(), 2u);
}

TEST(Cfg, IfWithoutElseHasFallthroughEdge) {
  DefUseItem item;
  item.events = {def("x", du::kUninit), use("c"), mark("then"), def("x"),
                 mark("endif"), use("x")};
  const dataflow::Cfg cfg = dataflow::Cfg::build(item);
  ASSERT_FALSE(cfg.irregular());
  const int cond = cfg.blockOf(1);
  const int join = cfg.blockOf(5);
  // The condition block reaches the join both through the then-branch and
  // directly (condition false).
  const auto& preds = cfg.blocks()[join].pred;
  EXPECT_NE(std::find(preds.begin(), preds.end(), cond), preds.end());
  EXPECT_EQ(preds.size(), 2u);
}

TEST(Cfg, LoopHasBackEdgeAndZeroIterationEdge) {
  DefUseItem item;
  item.events = {def("i"),      mark("loop"),    use("i"), mark("body"),
                 use("i"),      def("i"),        mark("endloop"), use("i")};
  const dataflow::Cfg cfg = dataflow::Cfg::build(item);
  ASSERT_FALSE(cfg.irregular());
  const int header = cfg.blockOf(2);
  const int body = cfg.blockOf(4);
  const auto& body_succ = cfg.blocks()[body].succ;
  EXPECT_NE(std::find(body_succ.begin(), body_succ.end(), header),
            body_succ.end());  // back edge
  const auto& header_succ = cfg.blocks()[header].succ;
  EXPECT_EQ(header_succ.size(), 2u);  // body + zero-iteration exit
}

TEST(Cfg, GotoMarksStreamIrregular) {
  DefUseItem item;
  item.events = {def("x"), mark("irregular"), use("x")};
  EXPECT_TRUE(dataflow::Cfg::build(item).irregular());
}

TEST(Cfg, UnmatchedCloserMarksStreamIrregular) {
  DefUseItem item;
  item.events = {def("x"), mark("endif")};
  EXPECT_TRUE(dataflow::Cfg::build(item).irregular());
}

TEST(ReachingDefs, BranchDefsMergeAtJoin) {
  DefUseItem item;
  item.events = {def("x", du::kUninit),  // 0
                 use("c"),               // 1
                 mark("then"),           // 2
                 def("x"),               // 3
                 mark("endif"),          // 4
                 use("x")};              // 5
  const dataflow::Cfg cfg = dataflow::Cfg::build(item);
  const dataflow::ReachingDefs rd(cfg);
  // Both the uninitialized declaration and the branch assignment reach
  // the final use (the branch may not be taken).
  EXPECT_EQ(rd.defsReaching(5), (std::vector<dataflow::EventIndex>{0, 3}));
  EXPECT_EQ(rd.usesReached(3), (std::vector<dataflow::EventIndex>{5}));
}

TEST(ReachingDefs, StrongUpdateKillsPriorDef) {
  DefUseItem item;
  item.events = {def("x"), def("x"), use("x")};
  const dataflow::ReachingDefs rd(dataflow::Cfg::build(item));
  EXPECT_EQ(rd.defsReaching(2), (std::vector<dataflow::EventIndex>{1}));
  EXPECT_TRUE(rd.usesReached(0).empty());
}

TEST(ReachingDefs, WeakUpdateDoesNotKill) {
  DefUseItem item;
  item.events = {def("x"), def("x", du::kUnknown), use("x")};
  const dataflow::ReachingDefs rd(dataflow::Cfg::build(item));
  EXPECT_EQ(rd.defsReaching(2), (std::vector<dataflow::EventIndex>{0, 1}));
}

TEST(ReachingDefs, LoopDefReachesHeaderUse) {
  DefUseItem item;
  item.events = {def("i"),        // 0: i = 0
                 mark("loop"),    // 1
                 use("i"),        // 2: i < n
                 mark("body"),    // 3
                 use("i"),        // 4
                 def("i"),        // 5: ++i
                 mark("endloop"), // 6
                 use("i")};       // 7
  const dataflow::ReachingDefs rd(dataflow::Cfg::build(item));
  // The increment flows back to the condition and out of the loop.
  EXPECT_EQ(rd.defsReaching(2), (std::vector<dataflow::EventIndex>{0, 5}));
  EXPECT_EQ(rd.defsReaching(7), (std::vector<dataflow::EventIndex>{0, 5}));
}

// --- End-to-end: compile real code, run the rules ---------------------------

PDB compileToPdb(const std::string& main_source) {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource("main.cpp", main_source);
  EXPECT_FALSE(diags.hasErrors()) << "unexpected diagnostics";
  return PDB::fromPdbFile(ilanalyzer::analyze(result, sm));
}

std::vector<Diag> runRule(const PDB& pdb, const std::string& rule) {
  CheckOptions options;
  options.checks = rule;
  const CheckResult result = runChecks(pdb, options);
  EXPECT_TRUE(result.ok()) << result.error;
  return result.diags;
}

TEST(DataflowRules, UninitializedReadIsFound) {
  const PDB pdb = compileToPdb(
      "int f(int c) {\n"
      "  int x;\n"
      "  if (c > 0) { return x; }\n"
      "  x = 2;\n"
      "  return x;\n"
      "}\n");
  const std::vector<Diag> diags = runRule(pdb, "uninitialized-read");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("'x'"), std::string::npos);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(DataflowRules, InitializedOnEveryPathIsSilent) {
  const PDB pdb = compileToPdb(
      "int f(int c) {\n"
      "  int x;\n"
      "  if (c > 0) { x = 1; } else { x = 2; }\n"
      "  return x;\n"
      "}\n");
  EXPECT_TRUE(runRule(pdb, "uninitialized-read").empty());
}

TEST(DataflowRules, LoopInitializationIsSilent) {
  const PDB pdb = compileToPdb(
      "int sum(int n) {\n"
      "  int i;\n"
      "  int s = 0;\n"
      "  for (i = 0; i < n; ++i) { s = s + i; }\n"
      "  return s + i;\n"
      "}\n");
  EXPECT_TRUE(runRule(pdb, "uninitialized-read").empty());
}

TEST(DataflowRules, DeadStoreIsFound) {
  const PDB pdb = compileToPdb(
      "int f(int a) {\n"
      "  int t = a;\n"
      "  t = a + 1;\n"
      "  t = a + 2;\n"
      "  return t;\n"
      "}\n");
  const std::vector<Diag> diags = runRule(pdb, "dead-store");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(DataflowRules, InitializerOverwriteIsNotADeadStore) {
  // The declaration's value being unread is style, not a lost value.
  const PDB pdb = compileToPdb(
      "int f(int a) {\n"
      "  int t = 0;\n"
      "  t = a;\n"
      "  return t;\n"
      "}\n");
  EXPECT_TRUE(runRule(pdb, "dead-store").empty());
}

TEST(DataflowRules, EscapedVariableIsNotADeadStore) {
  const PDB pdb = compileToPdb(
      "void sink(int* p);\n"
      "int f(int a) {\n"
      "  int t = 0;\n"
      "  sink(&t);\n"
      "  t = a;\n"
      "  t = a + 1;\n"
      "  return t;\n"
      "}\n");
  EXPECT_TRUE(runRule(pdb, "dead-store").empty());
}

TEST(DataflowRules, LoopCarriedStoreIsNotDead) {
  const PDB pdb = compileToPdb(
      "int f(int n) {\n"
      "  int acc = 0;\n"
      "  for (int i = 0; i < n; ++i) { acc = acc + i; }\n"
      "  return acc;\n"
      "}\n");
  EXPECT_TRUE(runRule(pdb, "dead-store").empty());
}

TEST(DataflowRules, NullDerefCandidateIsFound) {
  const PDB pdb = compileToPdb(
      "int f() {\n"
      "  int* q = 0;\n"
      "  return *q;\n"
      "}\n");
  const std::vector<Diag> diags = runRule(pdb, "null-deref-candidate");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("'q'"), std::string::npos);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(DataflowRules, ReassignedPointerIsSilent) {
  const PDB pdb = compileToPdb(
      "int f(int a) {\n"
      "  int* p = 0;\n"
      "  p = &a;\n"
      "  return *p;\n"
      "}\n");
  EXPECT_TRUE(runRule(pdb, "null-deref-candidate").empty());
}

TEST(DataflowRules, ParameterPointerIsSilent) {
  const PDB pdb = compileToPdb("int f(int* p) { return *p; }\n");
  EXPECT_TRUE(runRule(pdb, "null-deref-candidate").empty());
}

TEST(DataflowRules, ShortCircuitAssignmentSuppressesFalsePositives) {
  // `x = 2` inside the short-circuit rhs may never run: it must neither
  // count as initializing every path nor turn `x = 1` into a dead store.
  const PDB pdb = compileToPdb(
      "int g(int c) {\n"
      "  int x = 1;\n"
      "  int ok = (c > 0) || ((x = 2) != 0);\n"
      "  return x + ok;\n"
      "}\n");
  EXPECT_TRUE(runRule(pdb, "dead-store").empty());
  EXPECT_TRUE(runRule(pdb, "uninitialized-read").empty());
}

TEST(DataflowRules, GotoRoutineIsSkippedByFlowRules) {
  const PDB pdb = compileToPdb(
      "int f(int c) {\n"
      "  int x;\n"
      "  if (c > 0) goto out;\n"
      "  x = 1;\n"
      "out:\n"
      "  return x;\n"
      "}\n");
  EXPECT_TRUE(runRule(pdb, "uninitialized-read").empty());
  EXPECT_TRUE(runRule(pdb, "dead-store").empty());
}

}  // namespace
}  // namespace pdt::analysis
