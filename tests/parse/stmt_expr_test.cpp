// Statement and expression coverage: every construct the body parser
// supports, checked structurally through the IL.
#include <gtest/gtest.h>

#include <functional>

#include "ast/walk.h"
#include "frontend/frontend.h"

namespace pdt {
namespace {

using namespace ast;

struct Body {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::CompileResult result;
  const FunctionDecl* fn = nullptr;

  /// Wraps `body_src` into a driver function and compiles it with an
  /// optional preamble of declarations.
  explicit Body(const std::string& body_src, const std::string& preamble = {}) {
    frontend::Frontend fe(sm, diags);
    result = fe.compileSource("body.cpp",
                              preamble + "\nvoid driver() {\n" + body_src + "\n}\n");
    walkDecls(result.ast->translationUnit(), [&](const Decl* d) {
      if (d->name() == "driver") fn = d->as<FunctionDecl>();
    });
  }

  [[nodiscard]] std::string diagText() const {
    std::string out;
    for (const auto& d : diags.all())
      out += sm.describe(d.location) + ": " + d.message + "\n";
    return out;
  }

  [[nodiscard]] int count(StmtKind kind) const {
    int n = 0;
    if (fn != nullptr) {
      walk(fn->body, [&](const Stmt* s) { n += s->kind() == kind; });
    }
    return n;
  }

  template <typename T>
  [[nodiscard]] const T* first(StmtKind kind) const {
    const T* out = nullptr;
    if (fn != nullptr) {
      walk(fn->body, [&](const Stmt* s) {
        if (out == nullptr && s->kind() == kind) out = s->as<T>();
      });
    }
    return out;
  }
};

TEST(Stmt, IfElseChain) {
  Body b("int x = 1;\nif (x > 0) x = 2;\nelse if (x < 0) x = 3;\nelse x = 4;");
  ASSERT_TRUE(b.result.success) << b.diagText();
  EXPECT_EQ(b.count(StmtKind::If), 2);
}

TEST(Stmt, Loops) {
  Body b(R"(
int total = 0;
for (int i = 0; i < 10; i++) total = total + i;
while (total > 0) total--;
do { total++; } while (total < 5);
)");
  ASSERT_TRUE(b.result.success) << b.diagText();
  EXPECT_EQ(b.count(StmtKind::For), 1);
  EXPECT_EQ(b.count(StmtKind::While), 1);
  EXPECT_EQ(b.count(StmtKind::DoWhile), 1);
}

TEST(Stmt, ForWithoutInitOrCondition) {
  Body b("for (;;) break;");
  ASSERT_TRUE(b.result.success) << b.diagText();
  const auto* f = b.first<ForStmt>(StmtKind::For);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->condition, nullptr);
  EXPECT_EQ(f->increment, nullptr);
  EXPECT_EQ(b.count(StmtKind::Break), 1);
}

TEST(Stmt, SwitchCaseDefault) {
  Body b(R"(
int x = 2;
switch (x) {
case 0:
    x = 10;
    break;
case 1:
case 2:
    x = 20;
    break;
default:
    x = 30;
}
)");
  ASSERT_TRUE(b.result.success) << b.diagText();
  EXPECT_EQ(b.count(StmtKind::Switch), 1);
  EXPECT_EQ(b.count(StmtKind::Case), 3);
  EXPECT_EQ(b.count(StmtKind::Default), 1);
}

TEST(Stmt, TryCatchWithTypesAndEllipsis) {
  Body b(R"(
try {
    throw Boom();
} catch (const Boom& e) {
    int x = 1;
} catch (...) {
    int y = 2;
}
)",
         "class Boom {};");
  ASSERT_TRUE(b.result.success) << b.diagText();
  const auto* t = b.first<TryStmt>(StmtKind::Try);
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->handlers.size(), 2u);
  ASSERT_NE(t->handlers[0].exception_type, nullptr);
  EXPECT_EQ(t->handlers[0].exception_type->spelling(), "const Boom &");
  ASSERT_NE(t->handlers[0].var, nullptr);
  EXPECT_EQ(t->handlers[0].var->name(), "e");
  EXPECT_EQ(t->handlers[1].exception_type, nullptr);  // catch-all
  EXPECT_EQ(b.count(StmtKind::Throw), 1);
}

TEST(Stmt, GotoAndLabels) {
  Body b("int x = 0;\nagain: x++;\nif (x < 3) goto again;");
  ASSERT_TRUE(b.result.success) << b.diagText();
  EXPECT_EQ(b.count(StmtKind::Label), 1);
  EXPECT_EQ(b.count(StmtKind::Goto), 1);
  const auto* g = b.first<GotoStmt>(StmtKind::Goto);
  EXPECT_EQ(g->label, "again");
}

TEST(Stmt, MultiDeclaratorStatement) {
  Body b("int a = 1, b = 2, c;");
  ASSERT_TRUE(b.result.success) << b.diagText();
  const auto* ds = b.first<DeclStmt>(StmtKind::DeclStatement);
  ASSERT_NE(ds, nullptr);
  ASSERT_EQ(ds->vars.size(), 3u);
  EXPECT_EQ(ds->vars[2]->name(), "c");
}

TEST(Expr, ArithmeticPrecedence) {
  Body b("int x = 1 + 2 * 3;");
  ASSERT_TRUE(b.result.success) << b.diagText();
  const auto* ds = b.first<DeclStmt>(StmtKind::DeclStatement);
  const auto* add = ds->vars[0]->init->as<BinaryExpr>();
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->op, "+");
  const auto* mul = add->rhs->as<BinaryExpr>();
  ASSERT_NE(mul, nullptr);
  EXPECT_EQ(mul->op, "*");
}

TEST(Expr, AssignmentIsRightAssociative) {
  Body b("int a, b, c;\na = b = c = 1;");
  ASSERT_TRUE(b.result.success) << b.diagText();
  int assignments = 0;
  walk(b.fn->body, [&](const Stmt* s) {
    if (const auto* bin = s->as<BinaryExpr>()) assignments += bin->op == "=";
  });
  EXPECT_EQ(assignments, 3);
}

TEST(Expr, ConditionalOperator) {
  Body b("int x = 1;\nint y = x > 0 ? 10 : 20;");
  ASSERT_TRUE(b.result.success) << b.diagText();
  EXPECT_EQ(b.count(StmtKind::Conditional), 1);
}

TEST(Expr, CommaOperator) {
  Body b("int a, b;\na = (b = 1, b + 1);");
  ASSERT_TRUE(b.result.success) << b.diagText();
  EXPECT_EQ(b.count(StmtKind::Comma), 1);
}

TEST(Expr, UnaryOperators) {
  Body b("int x = 1;\nint* p = &x;\nint y = -*p;\nbool n = !x;\nx++;\n--x;");
  ASSERT_TRUE(b.result.success) << b.diagText();
  const auto* u = b.first<UnaryExpr>(StmtKind::Unary);
  ASSERT_NE(u, nullptr);
  int postfix = 0;
  walk(b.fn->body, [&](const Stmt* s) {
    if (const auto* un = s->as<UnaryExpr>()) postfix += un->is_postfix;
  });
  EXPECT_EQ(postfix, 1);  // x++ only
}

TEST(Expr, NewDelete) {
  Body b("int* p = new int;\ndelete p;\nint* a = new int[10];\ndelete [] a;",
         "");
  ASSERT_TRUE(b.result.success) << b.diagText();
  EXPECT_EQ(b.count(StmtKind::New), 2);
  EXPECT_EQ(b.count(StmtKind::Delete), 2);
  int array_news = 0, array_deletes = 0;
  walk(b.fn->body, [&](const Stmt* s) {
    if (const auto* n = s->as<NewExpr>()) array_news += n->is_array;
    if (const auto* d = s->as<DeleteExpr>()) array_deletes += d->is_array;
  });
  EXPECT_EQ(array_news, 1);
  EXPECT_EQ(array_deletes, 1);
}

TEST(Expr, NewWithConstructorArgs) {
  Body b("Widget* w = new Widget(1, 2);\ndelete w;",
         "class Widget { public: Widget(int a, int b) {} ~Widget() {} };");
  ASSERT_TRUE(b.result.success) << b.diagText();
  const auto* n = b.first<NewExpr>(StmtKind::New);
  ASSERT_NE(n, nullptr);
  ASSERT_NE(n->ctor, nullptr);
  EXPECT_EQ(n->ctor->params.size(), 2u);
  const auto* d = b.first<DeleteExpr>(StmtKind::Delete);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->dtor, nullptr);
}

TEST(Expr, CStyleAndNamedCasts) {
  Body b(R"(
double d = 2.5;
int a = (int)d;
int b = static_cast<int>(d);
const int* p = &a;
int* q = const_cast<int*>(p);
)");
  ASSERT_TRUE(b.result.success) << b.diagText();
  EXPECT_EQ(b.count(StmtKind::Cast), 3);
  const auto* c = b.first<CastExpr>(StmtKind::Cast);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->target->spelling(), "int");
}

TEST(Expr, SizeofTypeAndExpression) {
  Body b("int x = 0;\nunsigned long a = sizeof(int);\nunsigned long b = sizeof x;");
  ASSERT_TRUE(b.result.success) << b.diagText();
  int type_form = 0, expr_form = 0;
  walk(b.fn->body, [&](const Stmt* s) {
    if (const auto* sz = s->as<SizeOfExpr>()) {
      type_form += sz->type_operand != nullptr;
      expr_form += sz->expr_operand != nullptr;
    }
  });
  EXPECT_EQ(type_form, 1);
  EXPECT_EQ(expr_form, 1);
}

TEST(Expr, MemberChains) {
  Body b("Outer o;\nint v = o.inner.value;\nOuter* p = &o;\nint w = p->inner.value;",
         R"(
class Inner { public: int value; };
class Outer { public: Inner inner; };
)");
  ASSERT_TRUE(b.result.success) << b.diagText();
  EXPECT_EQ(b.count(StmtKind::Member), 4);
  // Types flow through the chain: o.inner.value is int.
  bool found_int_member = false;
  walk(b.fn->body, [&](const Stmt* s) {
    if (const auto* m = s->as<MemberExpr>()) {
      if (m->member == "value" && m->type != nullptr)
        found_int_member |= m->type->spelling() == "int";
    }
  });
  EXPECT_TRUE(found_int_member);
}

TEST(Expr, ChainedMethodCalls) {
  Body b("Builder b;\nb.add(1).add(2).add(3);",
         R"(
class Builder {
public:
    Builder& add(int x) { return *this; }
};
)");
  ASSERT_TRUE(b.result.success) << b.diagText();
  int resolved = 0;
  walk(b.fn->body, [&](const Stmt* s) {
    if (const auto* call = s->as<CallExpr>())
      resolved += call->resolved != nullptr && call->resolved->name() == "add";
  });
  EXPECT_EQ(resolved, 3);
}

TEST(Expr, ExplicitConstructorCall) {
  Body b("int v = Wrapper(42).get();",
         "class Wrapper { public: Wrapper(int v) : v_(v) {} int get() { return v_; } int v_; };");
  ASSERT_TRUE(b.result.success) << b.diagText();
  const auto* c = b.first<ConstructExpr>(StmtKind::Construct);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(c->ctor, nullptr);
}

TEST(Expr, StringConcatenation) {
  Body b("const char* s = \"hello\" \" \" \"world\";");
  ASSERT_TRUE(b.result.success) << b.diagText();
  const auto* lit = b.first<StringLitExpr>(StmtKind::StringLit);
  ASSERT_NE(lit, nullptr);
  EXPECT_NE(lit->spelling.find("hello"), std::string::npos);
  EXPECT_NE(lit->spelling.find("world"), std::string::npos);
}

TEST(Expr, EnumeratorsInExpressions) {
  Body b("int c = RED + BLUE;", "enum Color { RED, GREEN, BLUE };");
  ASSERT_TRUE(b.result.success) << b.diagText();
  int enum_refs = 0;
  walk(b.fn->body, [&](const Stmt* s) {
    if (const auto* ref = s->as<DeclRefExpr>()) {
      enum_refs += ref->decl != nullptr &&
                   ref->decl->kind() == DeclKind::Enumerator;
    }
  });
  EXPECT_EQ(enum_refs, 2);
}

TEST(Expr, FunctionPointerCall) {
  Body b("int (*fp)(int);\n", "");
  // Function-pointer local declarations are outside the statement
  // subset; this documents the diagnostic rather than silent failure.
  EXPECT_FALSE(b.result.success);
}

TEST(Expr, QualifiedStaticCall) {
  Body b("int n = Counter::next();",
         "class Counter { public: static int next() { return 1; } };");
  ASSERT_TRUE(b.result.success) << b.diagText();
  const auto* call = b.first<CallExpr>(StmtKind::Call);
  ASSERT_NE(call, nullptr);
  ASSERT_NE(call->resolved, nullptr);
  EXPECT_TRUE(call->resolved->is_static);
  // Qualified calls never dispatch virtually.
  EXPECT_FALSE(call->is_virtual_call);
}

TEST(Expr, NamespaceQualifiedCall) {
  Body b("int v = math::abs(-3);",
         "namespace math { int abs(int x) { return x < 0 ? -x : x; } }");
  ASSERT_TRUE(b.result.success) << b.diagText();
  const auto* call = b.first<CallExpr>(StmtKind::Call);
  ASSERT_NE(call, nullptr);
  ASSERT_NE(call->resolved, nullptr);
  EXPECT_EQ(call->resolved->qualifiedName(), "math::abs");
}

TEST(Expr, ThisExpr) {
  Body b("", R"(
class Self {
public:
    Self* me() { return this; }
};
)");
  ASSERT_TRUE(b.result.success) << b.diagText();
  const FunctionDecl* me = nullptr;
  walkDecls(b.result.ast->translationUnit(), [&](const Decl* d) {
    if (d->name() == "me") me = d->as<FunctionDecl>();
  });
  ASSERT_NE(me, nullptr);
  bool has_this = false;
  walk(me->body, [&](const Stmt* s) { has_this |= s->kind() == StmtKind::This; });
  EXPECT_TRUE(has_this);
}

TEST(Expr, LessThanIsNotTemplateArgs) {
  // 'v < w && x > y' must parse as comparisons, not a template-id.
  Body b("int v = 1, w = 2, x = 3, y = 4;\nbool r = v < w && x > y;");
  ASSERT_TRUE(b.result.success) << b.diagText();
  int comparisons = 0;
  walk(b.fn->body, [&](const Stmt* s) {
    if (const auto* bin = s->as<BinaryExpr>())
      comparisons += bin->op == "<" || bin->op == ">";
  });
  EXPECT_EQ(comparisons, 2);
}

TEST(Expr, ExplicitTemplateArgsWhenNameIsTemplate) {
  Body b("int v = pick<int>(1, 2);",
         "template <class T> T pick(T a, T b) { return a; }");
  ASSERT_TRUE(b.result.success) << b.diagText();
  const auto* call = b.first<CallExpr>(StmtKind::Call);
  ASSERT_NE(call, nullptr);
  ASSERT_NE(call->resolved, nullptr);
  EXPECT_EQ(call->resolved->template_args.size(), 1u);
}

TEST(Expr, TypeidModeledAsCall) {
  Body b("int x = 0;\ntypeid(x);\ntypeid(int);");
  ASSERT_TRUE(b.result.success) << b.diagText();
  EXPECT_GE(b.count(StmtKind::Call), 2);
}

}  // namespace
}  // namespace pdt
