// Structural tests for the parser: declarations, classes, namespaces,
// enums, typedefs, functions, and source positions.
#include <gtest/gtest.h>

#include <functional>

#include "ast/walk.h"
#include "frontend/frontend.h"

namespace pdt {
namespace {

using namespace ast;

struct Compiled {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::CompileResult result;

  explicit Compiled(const std::string& source,
                    frontend::FrontendOptions options = {}) {
    frontend::Frontend fe(sm, diags, std::move(options));
    result = fe.compileSource("test.cpp", source);
  }

  [[nodiscard]] const TranslationUnitDecl* tu() const {
    return result.ast->translationUnit();
  }
  [[nodiscard]] std::string diagText() const {
    std::string out;
    for (const auto& d : diags.all()) out += d.message + "\n";
    return out;
  }

  template <typename T>
  T* find(std::string_view name) const {
    T* out = nullptr;
    std::function<void(const Decl*)> visit = [&](const Decl* d) {
      if (out == nullptr && d->name() == name) {
        out = const_cast<T*>(d->as<T>());
      }
    };
    walkDecls(tu(), visit);
    return out;
  }
};

TEST(Parser, GlobalVariable) {
  Compiled c("int x;\ndouble y = 2.5;\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* x = c.find<VarDecl>("x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->type->spelling(), "int");
  auto* y = c.find<VarDecl>("y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->type->spelling(), "double");
  EXPECT_NE(y->init, nullptr);
}

TEST(Parser, FunctionDeclarationAndDefinition) {
  Compiled c("int add(int a, int b);\nint add(int a, int b) { return a + b; }\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* fn = c.find<FunctionDecl>("add");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->is_defined);
  ASSERT_EQ(fn->params.size(), 2u);
  EXPECT_EQ(fn->params[0]->name(), "a");
  EXPECT_EQ(fn->signature->spelling(), "int (int, int)");
}

TEST(Parser, FunctionMergesForwardDeclaration) {
  Compiled c("void f();\nvoid f() {}\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  int count = 0;
  for (const Decl* d : c.tu()->children()) {
    if (d->name() == "f") ++count;
  }
  EXPECT_EQ(count, 1);
}

TEST(Parser, PointerAndReferenceTypes) {
  Compiled c("int* p; int& r = *p; const char* s; int** pp;\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  EXPECT_EQ(c.find<VarDecl>("p")->type->spelling(), "int *");
  EXPECT_EQ(c.find<VarDecl>("r")->type->spelling(), "int &");
  EXPECT_EQ(c.find<VarDecl>("s")->type->spelling(), "const char *");
  EXPECT_EQ(c.find<VarDecl>("pp")->type->spelling(), "int * *");
}

TEST(Parser, ArrayTypes) {
  Compiled c("int a[10]; double m[3][4];\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* a = c.find<VarDecl>("a");
  ASSERT_NE(a, nullptr);
  const auto* arr = a->type->as<ArrayType>();
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(arr->size(), 10);
}

TEST(Parser, ClassWithMembers) {
  Compiled c(R"(
class Point {
public:
    Point(int x, int y);
    ~Point();
    int getX() const;
    void move(int dx, int dy);
private:
    int x_;
    int y_;
};
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* cls = c.find<ClassDecl>("Point");
  ASSERT_NE(cls, nullptr);
  EXPECT_TRUE(cls->is_complete);
  EXPECT_EQ(cls->tag, TagKind::Class);

  auto* ctor = c.find<FunctionDecl>("Point");
  ASSERT_NE(ctor, nullptr);
  EXPECT_EQ(ctor->fkind, FunctionKind::Constructor);
  EXPECT_EQ(ctor->access(), AccessKind::Public);

  auto* dtor = c.find<FunctionDecl>("~Point");
  ASSERT_NE(dtor, nullptr);
  EXPECT_EQ(dtor->fkind, FunctionKind::Destructor);

  auto* getx = c.find<FunctionDecl>("getX");
  ASSERT_NE(getx, nullptr);
  EXPECT_TRUE(getx->is_const);
  EXPECT_EQ(getx->signature->spelling(), "int () const");

  auto* x = c.find<VarDecl>("x_");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->access(), AccessKind::Private);
}

TEST(Parser, StructDefaultsToPublic) {
  Compiled c("struct S { int a; };\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  EXPECT_EQ(c.find<VarDecl>("a")->access(), AccessKind::Public);
  EXPECT_EQ(c.find<ClassDecl>("S")->tag, TagKind::Struct);
}

TEST(Parser, MultipleInheritance) {
  Compiled c(R"(
class A { public: int a; };
class B { public: int b; };
class C : public A, private B, public virtual A {
public:
    int c;
};
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* cls = c.find<ClassDecl>("C");
  ASSERT_NE(cls, nullptr);
  ASSERT_EQ(cls->bases.size(), 3u);
  EXPECT_EQ(cls->bases[0].base->name(), "A");
  EXPECT_EQ(cls->bases[0].access, AccessKind::Public);
  EXPECT_EQ(cls->bases[1].access, AccessKind::Private);
  EXPECT_TRUE(cls->bases[2].is_virtual);
}

TEST(Parser, VirtualAndStaticMembers) {
  Compiled c(R"(
class Shape {
public:
    virtual double area() const;
    virtual void draw() = 0;
    static int count();
};
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  EXPECT_TRUE(c.find<FunctionDecl>("area")->is_virtual);
  auto* draw = c.find<FunctionDecl>("draw");
  EXPECT_TRUE(draw->is_pure_virtual);
  EXPECT_TRUE(c.find<FunctionDecl>("count")->is_static);
}

TEST(Parser, InheritedMemberLookup) {
  Compiled c(R"(
class Base { public: void hello(); };
class Derived : public Base {};
void test() { Derived d; d.hello(); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
}

TEST(Parser, Namespaces) {
  Compiled c(R"(
namespace outer {
namespace inner {
int deep;
}
int shallow;
}
namespace outer {  // re-opened
int more;
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* outer = c.find<NamespaceDecl>("outer");
  ASSERT_NE(outer, nullptr);
  auto* deep = c.find<VarDecl>("deep");
  ASSERT_NE(deep, nullptr);
  EXPECT_EQ(deep->qualifiedName(), "outer::inner::deep");
  auto* more = c.find<VarDecl>("more");
  ASSERT_NE(more, nullptr);
  EXPECT_EQ(more->parent()->asDecl(), outer);
}

TEST(Parser, UsingDirective) {
  Compiled c(R"(
namespace math { int abs(int x) { return x < 0 ? -x : x; } }
using namespace math;
int test() { return abs(-4); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
}

TEST(Parser, NamespaceAlias) {
  Compiled c(R"(
namespace very_long_name { int value; }
namespace vn = very_long_name;
int test() { return vn::value; }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
}

TEST(Parser, Enums) {
  Compiled c("enum Color { RED, GREEN = 5, BLUE };\nColor c = GREEN;\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* e = c.find<EnumDecl>("Color");
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->enumerators.size(), 3u);
  EXPECT_EQ(e->enumerators[0]->value, 0);
  EXPECT_EQ(e->enumerators[1]->value, 5);
  EXPECT_EQ(e->enumerators[2]->value, 6);
}

TEST(Parser, Typedefs) {
  Compiled c("typedef unsigned long size_type;\nsize_type n = 0;\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* td = c.find<TypedefDecl>("size_type");
  ASSERT_NE(td, nullptr);
  EXPECT_EQ(td->underlying->spelling(), "unsigned long");
  auto* n = c.find<VarDecl>("n");
  EXPECT_EQ(canonical(n->type)->spelling(), "unsigned long");
}

TEST(Parser, DefaultArguments) {
  Compiled c("void greet(int times = 3, char sep = ',');\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* fn = c.find<FunctionDecl>("greet");
  ASSERT_NE(fn, nullptr);
  EXPECT_NE(fn->params[0]->default_arg, nullptr);
  EXPECT_NE(fn->params[1]->default_arg, nullptr);
}

TEST(Parser, OverloadedOperators) {
  Compiled c(R"(
class Vec {
public:
    Vec operator+(const Vec& other) const;
    bool operator==(const Vec& other) const;
    int operator[](int i) const;
    Vec& operator=(const Vec& other);
};
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  EXPECT_NE(c.find<FunctionDecl>("operator+"), nullptr);
  EXPECT_NE(c.find<FunctionDecl>("operator=="), nullptr);
  EXPECT_NE(c.find<FunctionDecl>("operator[]"), nullptr);
  auto* plus = c.find<FunctionDecl>("operator+");
  EXPECT_EQ(plus->fkind, FunctionKind::Operator);
}

TEST(Parser, FriendDeclarations) {
  Compiled c(R"(
class Helper { public: int help(); };
class Secret {
    friend class Helper;
    friend int peek(const Secret& s);
    int hidden;
};
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* cls = c.find<ClassDecl>("Secret");
  ASSERT_NE(cls, nullptr);
  ASSERT_EQ(cls->friends.size(), 2u);
  EXPECT_TRUE(cls->friends[0].is_class);
  EXPECT_EQ(cls->friends[0].name, "Helper");
  EXPECT_NE(cls->friends[0].resolved, nullptr);
  EXPECT_FALSE(cls->friends[1].is_class);
  EXPECT_EQ(cls->friends[1].name, "peek");
}

TEST(Parser, ExceptionSpecification) {
  Compiled c(R"(
class Overflow {};
void push(int x) throw(Overflow);
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* fn = c.find<FunctionDecl>("push");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->has_exception_spec);
  ASSERT_EQ(fn->exception_specs.size(), 1u);
  EXPECT_EQ(fn->exception_specs[0]->spelling(), "Overflow");
}

TEST(Parser, ExternCLinkage) {
  Compiled c("extern \"C\" { void c_function(int); }\nvoid cpp_function();\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  EXPECT_EQ(c.find<FunctionDecl>("c_function")->linkage, Linkage::C);
  EXPECT_EQ(c.find<FunctionDecl>("cpp_function")->linkage, Linkage::Cxx);
}

TEST(Parser, ConstructorInitializers) {
  Compiled c(R"(
class Base { public: Base(int v); };
class Derived : public Base {
public:
    Derived(int a, int b) : Base(a), value(b) {}
private:
    int value;
};
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* ctor = c.find<FunctionDecl>("Derived");
  ASSERT_NE(ctor, nullptr);
  ASSERT_EQ(ctor->ctor_inits.size(), 2u);
  EXPECT_EQ(ctor->ctor_inits[0].name, "Base");
  EXPECT_EQ(ctor->ctor_inits[1].name, "value");
}

TEST(Parser, NestedClasses) {
  Compiled c(R"(
class Outer {
public:
    class Inner { public: int value; };
    Inner make();
};
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* inner = c.find<ClassDecl>("Inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->qualifiedName(), "Outer::Inner");
}

TEST(Parser, ForwardDeclarationCompleted) {
  Compiled c("class Node;\nclass Node { public: Node* next; };\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* node = c.find<ClassDecl>("Node");
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->is_complete);
  auto* next = c.find<VarDecl>("next");
  EXPECT_EQ(next->type->spelling(), "Node *");
}

TEST(Parser, MemberUsesLaterMember) {
  // Inline bodies are delay-parsed until the class is complete.
  Compiled c(R"(
class Widget {
public:
    int first() { return second(); }
    int second() { return 42; }
};
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* first = c.find<FunctionDecl>("first");
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(first->is_defined);
  EXPECT_NE(first->body, nullptr);
}

TEST(Parser, SourcePositions) {
  Compiled c("int variable;\n  void spaced();\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* v = c.find<VarDecl>("variable");
  EXPECT_EQ(v->location().line, 1u);
  EXPECT_EQ(v->location().column, 5u);
  auto* fn = c.find<FunctionDecl>("spaced");
  EXPECT_EQ(fn->location().line, 2u);
  EXPECT_EQ(fn->location().column, 8u);
}

TEST(Parser, OutOfLineMemberDefinition) {
  Compiled c(R"(
class Calc {
public:
    int twice(int x);
};
int Calc::twice(int x) { return x * 2; }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* fn = c.find<FunctionDecl>("twice");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->is_defined);
  EXPECT_EQ(fn->location().line, 6u);  // definition site
  EXPECT_EQ(fn->memberOf()->name(), "Calc");
}

TEST(Parser, ConversionOperator) {
  Compiled c("class Wrapper { public: operator int() const; };\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* conv = c.find<FunctionDecl>("operator int");
  ASSERT_NE(conv, nullptr);
  EXPECT_EQ(conv->fkind, FunctionKind::Conversion);
  EXPECT_EQ(conv->return_type->spelling(), "int");
}

TEST(Parser, ErrorRecovery) {
  Compiled c("int ok1;\n@#$ garbage;\nint ok2;\n");
  EXPECT_FALSE(c.result.success);
  EXPECT_NE(c.find<VarDecl>("ok1"), nullptr);
  EXPECT_NE(c.find<VarDecl>("ok2"), nullptr);
}

TEST(Parser, AnonymousNamespace) {
  Compiled c("namespace { int hidden; }\nint visible;\n");
  ASSERT_TRUE(c.result.success) << c.diagText();
  EXPECT_NE(c.find<VarDecl>("hidden"), nullptr);
}

}  // namespace
}  // namespace pdt
