// Java IL Analyzer stub tests (paper §6): packages -> namespaces,
// classes/interfaces with inheritance edges, methods with modifiers and
// entry/exit positions, fields — all through the uniform PDB.
#include <gtest/gtest.h>

#include <sstream>

#include "ductape/ductape.h"
#include "frontend/java.h"
#include "tools/tools.h"

namespace pdt::frontend {
namespace {

constexpr const char* kJava = R"(// a small Java program
package sim.core;

public interface Movable {
    void move(double dt);
}

public class Particle implements Movable {
    private double x;
    private double v;
    public static int count;

    public Particle(double x0) {
        x = x0;
    }

    public void move(double dt) {
        x = x + v * dt;
    }

    public double position() {
        return x;
    }

    public abstract void describe();
}

class FastParticle extends Particle {
    public void move(double dt) {
        x = x + 2.0 * v * dt;
    }
}
)";

TEST(Java, PackageBecomesNamespace) {
  const auto pdb = analyzeJava("Particle.java", kJava);
  ASSERT_EQ(pdb.namespaces().size(), 1u);
  EXPECT_EQ(pdb.namespaces()[0].name, "sim.core");
  EXPECT_GE(pdb.namespaces()[0].members.size(), 3u);
}

TEST(Java, ClassesAndInterfaces) {
  const auto pdb = analyzeJava("Particle.java", kJava);
  ASSERT_EQ(pdb.classes().size(), 3u);
  const pdb::ClassItem* movable = nullptr;
  const pdb::ClassItem* particle = nullptr;
  const pdb::ClassItem* fast = nullptr;
  for (const auto& c : pdb.classes()) {
    if (c.name == "Movable") movable = &c;
    if (c.name == "Particle") particle = &c;
    if (c.name == "FastParticle") fast = &c;
  }
  ASSERT_NE(movable, nullptr);
  EXPECT_EQ(movable->kind, "interface");
  ASSERT_NE(particle, nullptr);
  EXPECT_EQ(particle->kind, "class");
  ASSERT_NE(fast, nullptr);
}

TEST(Java, ExtendsAndImplementsAreBaseEdges) {
  const auto pdb = analyzeJava("Particle.java", kJava);
  const pdb::ClassItem* particle = nullptr;
  const pdb::ClassItem* fast = nullptr;
  const pdb::ClassItem* movable = nullptr;
  for (const auto& c : pdb.classes()) {
    if (c.name == "Particle") particle = &c;
    if (c.name == "FastParticle") fast = &c;
    if (c.name == "Movable") movable = &c;
  }
  ASSERT_NE(particle, nullptr);
  ASSERT_EQ(particle->bases.size(), 1u);
  EXPECT_EQ(particle->bases[0].cls, movable->id);
  ASSERT_NE(fast, nullptr);
  ASSERT_EQ(fast->bases.size(), 1u);
  EXPECT_EQ(fast->bases[0].cls, particle->id);
}

TEST(Java, MethodsWithModifiersAndPositions) {
  const auto pdb = analyzeJava("Particle.java", kJava);
  const pdb::RoutineItem* ctor = nullptr;
  const pdb::RoutineItem* position = nullptr;
  const pdb::RoutineItem* describe = nullptr;
  for (const auto& r : pdb.routines()) {
    if (r.kind == "ctor") ctor = &r;
    if (r.name == "position") position = &r;
    if (r.name == "describe") describe = &r;
  }
  ASSERT_NE(ctor, nullptr);
  EXPECT_EQ(ctor->name, "Particle");
  EXPECT_EQ(ctor->access, "pub");
  ASSERT_NE(position, nullptr);
  EXPECT_TRUE(position->defined);
  EXPECT_EQ(position->location.line, 21u);
  EXPECT_EQ(position->extent.body_end.line, 23u);
  EXPECT_EQ(position->linkage, "Java");
  ASSERT_NE(describe, nullptr);
  EXPECT_EQ(describe->virtuality, "pure");  // abstract
}

TEST(Java, FieldsAreMembers) {
  const auto pdb = analyzeJava("Particle.java", kJava);
  const pdb::ClassItem* particle = nullptr;
  for (const auto& c : pdb.classes()) {
    if (c.name == "Particle") particle = &c;
  }
  ASSERT_NE(particle, nullptr);
  ASSERT_EQ(particle->members.size(), 3u);
  EXPECT_EQ(particle->members[0].name, "x");
  EXPECT_EQ(particle->members[0].access, "priv");
  EXPECT_EQ(particle->members[2].name, "count");
  EXPECT_EQ(particle->members[2].access, "pub");
}

TEST(Java, OverridesAppearPerClass) {
  const auto pdb = analyzeJava("Particle.java", kJava);
  int move_methods = 0;
  for (const auto& r : pdb.routines()) move_methods += r.name == "move";
  // Movable declares it, Particle and FastParticle define it.
  EXPECT_EQ(move_methods, 3);
}

TEST(Java, DuctapeToolsWorkUnchanged) {
  const auto raw = analyzeJava("Particle.java", kJava);
  const auto pdb = ductape::PDB::fromPdbFile(raw);
  std::ostringstream os;
  tools::pdbtree(pdb, tools::TreeKind::ClassHierarchy, os);
  const std::string text = os.str();
  // FastParticle is indented under Particle under Movable.
  // Names are package-qualified through the namespace parent.
  const auto movable = text.find("sim.core::Movable");
  const auto particle = text.find("    sim.core::Particle");
  const auto fast = text.find("        sim.core::FastParticle");
  EXPECT_NE(movable, std::string::npos);
  EXPECT_NE(particle, std::string::npos);
  EXPECT_NE(fast, std::string::npos);
}

TEST(Java, MergesIntoMultiLanguageDatabase) {
  // §6's end state: C++, Fortran and Java constructs in one database.
  const auto java = ductape::PDB::fromPdbFile(
      analyzeJava("Particle.java", kJava));
  auto merged = ductape::PDB::fromPdbFile(analyzeJava("Other.java", R"(
public class Helper {
    public void assist() {
    }
}
)"));
  merged.merge(java);
  bool has_helper = false, has_particle = false;
  for (const auto* c : merged.getClassVec()) {
    has_helper |= c->name() == "Helper";
    has_particle |= c->name() == "Particle";
  }
  EXPECT_TRUE(has_helper);
  EXPECT_TRUE(has_particle);
}

}  // namespace
}  // namespace pdt::frontend
