// Fortran 90 IL Analyzer stub tests (paper §6): modules -> namespaces,
// derived types -> classes, routines with entry/exit positions, calls.
#include <gtest/gtest.h>

#include <sstream>

#include "ductape/ductape.h"
#include "frontend/f90.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "tools/tools.h"

namespace pdt::frontend {
namespace {

constexpr const char* kFortran = R"(! a small Fortran 90 program
module physics
  implicit none

  type :: particle
    real :: x
    real :: v
    real :: mass
  end type particle

contains

  subroutine kick(p, dt)
    type(particle) :: p
    real :: dt
    p%v = p%v + dt / p%mass
  end subroutine kick

  subroutine drift(p, dt)
    type(particle) :: p
    real :: dt
    p%x = p%x + p%v * dt
  end subroutine drift

  subroutine step(p, dt)
    type(particle) :: p
    real :: dt
    call kick(p, dt)
    call drift(p, dt)
  end subroutine step

  real function energy(p)
    type(particle) :: p
    energy = 0.5 * p%mass * p%v * p%v
  end function energy

end module physics

program main_driver
  use physics
end program main_driver
)";

TEST(Fortran90, ModulesBecomeNamespaces) {
  const auto pdb = analyzeFortran("physics.f90", kFortran);
  ASSERT_EQ(pdb.namespaces().size(), 1u);
  EXPECT_EQ(pdb.namespaces()[0].name, "physics");
  EXPECT_GE(pdb.namespaces()[0].members.size(), 4u);
}

TEST(Fortran90, DerivedTypesBecomeClasses) {
  const auto pdb = analyzeFortran("physics.f90", kFortran);
  ASSERT_EQ(pdb.classes().size(), 1u);
  const auto& particle = pdb.classes()[0];
  EXPECT_EQ(particle.name, "particle");
  EXPECT_EQ(particle.kind, "struct");
  ASSERT_EQ(particle.members.size(), 3u);
  EXPECT_EQ(particle.members[0].name, "x");
  EXPECT_EQ(particle.members[2].name, "mass");
}

TEST(Fortran90, RoutinesWithEntryAndExitPositions) {
  // TAU "must know the locations of Fortran routine entry and exit
  // points" (paper §6).
  const auto pdb = analyzeFortran("physics.f90", kFortran);
  ASSERT_EQ(pdb.routines().size(), 4u);
  const pdb::RoutineItem* kick = nullptr;
  for (const auto& r : pdb.routines()) {
    if (r.name == "kick") kick = &r;
  }
  ASSERT_NE(kick, nullptr);
  EXPECT_EQ(kick->location.line, 13u);
  EXPECT_EQ(kick->extent.body_end.line, 17u);
  EXPECT_EQ(kick->linkage, "F90-subroutine");
  ASSERT_TRUE(kick->parent.has_value());
  EXPECT_EQ(kick->parent->kind, pdb::ItemKind::Namespace);
}

TEST(Fortran90, FunctionsRecognized) {
  const auto pdb = analyzeFortran("physics.f90", kFortran);
  const pdb::RoutineItem* energy = nullptr;
  for (const auto& r : pdb.routines()) {
    if (r.name == "energy") energy = &r;
  }
  ASSERT_NE(energy, nullptr);
  EXPECT_EQ(energy->linkage, "F90-function");
}

TEST(Fortran90, CallEdges) {
  const auto pdb = analyzeFortran("physics.f90", kFortran);
  const pdb::RoutineItem* step = nullptr;
  const pdb::RoutineItem* kick = nullptr;
  const pdb::RoutineItem* drift = nullptr;
  for (const auto& r : pdb.routines()) {
    if (r.name == "step") step = &r;
    if (r.name == "kick") kick = &r;
    if (r.name == "drift") drift = &r;
  }
  ASSERT_NE(step, nullptr);
  ASSERT_EQ(step->calls.size(), 2u);
  EXPECT_EQ(step->calls[0].routine, kick->id);
  EXPECT_EQ(step->calls[1].routine, drift->id);
  EXPECT_EQ(step->calls[0].position.line, 28u);
}

TEST(Fortran90, DuctapeToolsWorkUnchanged) {
  // The multi-language claim: the same DUCTAPE/tool stack consumes the
  // Fortran PDB with no changes.
  const auto raw = analyzeFortran("physics.f90", kFortran);
  const auto pdb = ductape::PDB::fromPdbFile(raw);
  std::ostringstream os;
  tools::pdbtree(pdb, tools::TreeKind::CallGraph, os);
  EXPECT_NE(os.str().find("physics::step"), std::string::npos);
  EXPECT_NE(os.str().find("`--> physics::kick"), std::string::npos);

  std::ostringstream conv;
  tools::pdbconv(pdb, conv);
  EXPECT_NE(conv.str().find("particle"), std::string::npos);
}

TEST(Fortran90, CommentsAndBlanksIgnored) {
  const auto pdb = analyzeFortran("c.f90",
                                  "! just a comment\n\n"
                                  "subroutine s()\n"
                                  "end subroutine s\n");
  ASSERT_EQ(pdb.routines().size(), 1u);
  EXPECT_EQ(pdb.routines()[0].location.line, 3u);
}

TEST(Fortran90, TypeDeclarationIsNotTypeDefinition) {
  const auto pdb = analyzeFortran("d.f90",
                                  "subroutine s(p)\n"
                                  "type(particle) :: p\n"
                                  "end subroutine s\n");
  EXPECT_TRUE(pdb.classes().empty());
}

}  // namespace
}  // namespace pdt::frontend

namespace pdt::frontend {
namespace {

TEST(Fortran90, MergesWithCxxDatabase) {
  // The paper's goal (§6): one uniform database across languages. Merge a
  // Fortran PDB into a C++ PDB and query both through DUCTAPE.
  const auto fortran_raw = analyzeFortran("physics.f90", kFortran);
  auto fortran = ductape::PDB::fromPdbFile(fortran_raw);

  SourceManager sm;
  DiagnosticEngine diags;
  Frontend fe(sm, diags);
  auto result = fe.compileSource(
      "solver.cpp", "class Solver { public: void iterate() {} };\n"
                    "void run() { Solver s; s.iterate(); }\n");
  auto merged = ductape::PDB::fromPdbFile(ilanalyzer::analyze(result, sm));
  merged.merge(fortran);

  bool has_cxx = false, has_f90 = false, has_type = false;
  for (const auto* r : merged.getRoutineVec()) {
    has_cxx |= r->name() == "iterate";
    has_f90 |= r->name() == "kick";
  }
  for (const auto* c : merged.getClassVec()) has_type |= c->name() == "particle";
  EXPECT_TRUE(has_cxx);
  EXPECT_TRUE(has_f90);
  EXPECT_TRUE(has_type);
}

}  // namespace
}  // namespace pdt::frontend
