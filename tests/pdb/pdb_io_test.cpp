// PDB writer/reader round-trip and format tests.
#include <gtest/gtest.h>

#include "pdb/pdb.h"
#include "pdb/reader.h"
#include "pdb/writer.h"

namespace pdt::pdb {
namespace {

PdbFile samplePdb() {
  PdbFile pdb;
  SourceFileItem header;
  header.name = "StackAr.h";
  const std::uint32_t header_id = pdb.addSourceFile(std::move(header));
  SourceFileItem impl;
  impl.name = "StackAr.cpp";
  const std::uint32_t impl_id = pdb.addSourceFile(std::move(impl));
  pdb.sourceFiles()[0].includes.push_back(impl_id);

  TypeItem int_ty;
  int_ty.name = "int";
  int_ty.kind = "int";
  int_ty.ikind = "int";
  const std::uint32_t int_id = pdb.addType(std::move(int_ty));

  TypeItem sig;
  sig.name = "void (int)";
  sig.kind = "func";
  sig.return_type = ItemRef{ItemKind::Type, int_id};
  sig.params.push_back({ItemKind::Type, int_id});
  const std::uint32_t sig_id = pdb.addType(std::move(sig));

  TemplateItem te;
  te.name = "Stack";
  te.kind = "class";
  te.text = "template <class Object>\nclass Stack {...};";
  te.location = {header_id, 8, 7};
  const std::uint32_t te_id = pdb.addTemplate(std::move(te));

  ClassItem cls;
  cls.name = "Stack<int>";
  cls.kind = "class";
  cls.template_id = te_id;
  cls.location = {header_id, 8, 7};
  const std::uint32_t cls_id = pdb.addClass(std::move(cls));

  RoutineItem push;
  push.name = "push";
  push.location = {impl_id, 72, 29};
  push.parent = ItemRef{ItemKind::Class, cls_id};
  push.access = "pub";
  push.signature = sig_id;
  push.template_id = te_id;
  push.defined = true;
  push.calls.push_back({1, false, {impl_id, 74, 17}});
  push.extent = {{impl_id, 72, 9}, {impl_id, 72, 52}, {impl_id, 73, 9},
                 {impl_id, 77, 9}};
  const std::uint32_t push_id = pdb.addRoutine(std::move(push));
  pdb.classes()[0].funcs.push_back({push_id, {impl_id, 72, 29}});

  ClassItem::Member mem;
  mem.name = "topOfStack";
  mem.access = "priv";
  mem.kind = "var";
  mem.type = {ItemKind::Type, int_id};
  mem.location = {header_id, 39, 28};
  pdb.classes()[0].members.push_back(std::move(mem));

  NamespaceItem ns;
  ns.name = "util";
  ns.members.push_back({ItemKind::Routine, push_id});
  pdb.addNamespace(std::move(ns));

  MacroItem ma;
  ma.name = "STACKAR_H";
  ma.kind = "def";
  ma.text = "#define STACKAR_H";
  ma.location = {header_id, 2, 1};
  pdb.addMacro(std::move(ma));
  return pdb;
}

TEST(PdbIo, WriterEmitsHeaderAndPrefixes) {
  const std::string text = writeToString(samplePdb());
  EXPECT_TRUE(text.starts_with("<PDB 1.0>\n"));
  EXPECT_NE(text.find("so#1 StackAr.h"), std::string::npos);
  EXPECT_NE(text.find("sinc so#2"), std::string::npos);
  EXPECT_NE(text.find("te#1 Stack"), std::string::npos);
  EXPECT_NE(text.find("cl#1 Stack<int>"), std::string::npos);
  EXPECT_NE(text.find("ro#1 push"), std::string::npos);
  EXPECT_NE(text.find("rtempl te#1"), std::string::npos);
  EXPECT_NE(text.find("ctempl te#1"), std::string::npos);
  EXPECT_NE(text.find("rcall ro#1 no so#2 74 17"), std::string::npos);
  EXPECT_NE(text.find("cmem topOfStack"), std::string::npos);
  EXPECT_NE(text.find("ma#1 STACKAR_H"), std::string::npos);
}

TEST(PdbIo, MultiLineTextIsEscaped) {
  const std::string text = writeToString(samplePdb());
  EXPECT_NE(text.find("ttext template <class Object>\\nclass Stack {...};"),
            std::string::npos);
}

TEST(PdbIo, RoundTripPreservesEverything) {
  const PdbFile original = samplePdb();
  const std::string text = writeToString(original);
  ReadResult parsed = readFromString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();

  const PdbFile& pdb = parsed.pdb;
  ASSERT_EQ(pdb.sourceFiles().size(), 2u);
  EXPECT_EQ(pdb.sourceFiles()[0].name, "StackAr.h");
  ASSERT_EQ(pdb.sourceFiles()[0].includes.size(), 1u);

  ASSERT_EQ(pdb.routines().size(), 1u);
  const RoutineItem& push = pdb.routines()[0];
  EXPECT_EQ(push.name, "push");
  EXPECT_EQ(push.location, (Pos{2, 72, 29}));
  ASSERT_TRUE(push.parent.has_value());
  EXPECT_EQ(push.parent->kind, ItemKind::Class);
  EXPECT_EQ(push.access, "pub");
  ASSERT_TRUE(push.template_id.has_value());
  EXPECT_TRUE(push.defined);
  ASSERT_EQ(push.calls.size(), 1u);
  EXPECT_EQ(push.calls[0].position, (Pos{2, 74, 17}));
  EXPECT_EQ(push.extent.body_end, (Pos{2, 77, 9}));

  ASSERT_EQ(pdb.classes().size(), 1u);
  const ClassItem& cls = pdb.classes()[0];
  EXPECT_EQ(cls.name, "Stack<int>");
  ASSERT_EQ(cls.funcs.size(), 1u);
  ASSERT_EQ(cls.members.size(), 1u);
  EXPECT_EQ(cls.members[0].name, "topOfStack");
  EXPECT_EQ(cls.members[0].access, "priv");

  ASSERT_EQ(pdb.templates().size(), 1u);
  EXPECT_EQ(pdb.templates()[0].text,
            "template <class Object>\nclass Stack {...};");

  ASSERT_EQ(pdb.types().size(), 2u);
  const TypeItem& sig = pdb.types()[1];
  EXPECT_EQ(sig.kind, "func");
  ASSERT_EQ(sig.params.size(), 1u);

  ASSERT_EQ(pdb.namespaces().size(), 1u);
  ASSERT_EQ(pdb.namespaces()[0].members.size(), 1u);

  ASSERT_EQ(pdb.macros().size(), 1u);
  EXPECT_EQ(pdb.macros()[0].text, "#define STACKAR_H");
}

TEST(PdbIo, DoubleRoundTripIsStable) {
  const std::string once = writeToString(samplePdb());
  ReadResult parsed = readFromString(once);
  ASSERT_TRUE(parsed.ok());
  const std::string twice = writeToString(parsed.pdb);
  EXPECT_EQ(once, twice);
}

TEST(PdbIo, MissingHeaderIsError) {
  ReadResult r = readFromString("so#1 foo.h\n");
  EXPECT_FALSE(r.ok());
}

TEST(PdbIo, MalformedLinesAreReportedWithNumbers) {
  ReadResult r = readFromString(
      "<PDB 1.0>\n\nro#1 f\nrcall bogus\n\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("line 4"), std::string::npos);
}

TEST(PdbIo, UnknownAttributeIsReported) {
  ReadResult r = readFromString("<PDB 1.0>\n\nso#1 a.h\nzzz nonsense\n\n");
  EXPECT_FALSE(r.ok());
}

TEST(PdbIo, IdsArePerKind) {
  PdbFile pdb;
  SourceFileItem f;
  f.name = "a";
  RoutineItem r;
  r.name = "f";
  ClassItem c;
  c.name = "C";
  EXPECT_EQ(pdb.addSourceFile(std::move(f)), 1u);
  EXPECT_EQ(pdb.addRoutine(std::move(r)), 1u);  // separate id space
  EXPECT_EQ(pdb.addClass(std::move(c)), 1u);
}

TEST(PdbIo, FindByIdAfterReindex) {
  PdbFile pdb = samplePdb();
  pdb.reindex();
  ASSERT_NE(pdb.findRoutine(1), nullptr);
  EXPECT_EQ(pdb.findRoutine(1)->name, "push");
  EXPECT_EQ(pdb.findRoutine(999), nullptr);
  ASSERT_NE(pdb.findClass(1), nullptr);
  ASSERT_NE(pdb.findTemplate(1), nullptr);
  ASSERT_NE(pdb.findSourceFile(2), nullptr);
}

TEST(PdbIo, ItemRefRendering) {
  EXPECT_EQ((ItemRef{ItemKind::Routine, 7}.str()), "ro#7");
  EXPECT_EQ((ItemRef{ItemKind::Class, 8}.str()), "cl#8");
  EXPECT_EQ((ItemRef{ItemKind::Type, 2058}.str()), "ty#2058");
}

TEST(PdbIo, NullPositionsRoundTrip) {
  PdbFile pdb;
  TemplateItem te;
  te.name = "T";
  te.kind = "class";
  pdb.addTemplate(std::move(te));
  const std::string text = writeToString(pdb);
  EXPECT_NE(text.find("NULL 0 0"), std::string::npos);
  ReadResult parsed = readFromString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  EXPECT_FALSE(parsed.pdb.templates()[0].location.valid());
}

}  // namespace
}  // namespace pdt::pdb
