// Storage-format round-trip tests: the binary PDB v2 representation must
// be lossless against the canonical ASCII form (ASCII -> binary -> ASCII
// is byte-identical), reject corrupted bytes instead of mis-parsing them,
// and interoperate with the build cache's binary entries.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pdb/format.h"
#include "pdb/reader.h"
#include "pdb/validate.h"
#include "pdb/writer.h"
#include "pdt/pdt_paths.h"
#include "tools/driver.h"

namespace pdt::pdb {
namespace {

namespace fs = std::filesystem;

/// One item of every kind, exercising every attribute the ASCII grammar
/// can express (mirrors pdb_io_test's sample).
PdbFile samplePdb() {
  PdbFile pdb;
  SourceFileItem header;
  header.name = "StackAr.h";
  const std::uint32_t header_id = pdb.addSourceFile(std::move(header));
  SourceFileItem impl;
  impl.name = "StackAr.cpp";
  const std::uint32_t impl_id = pdb.addSourceFile(std::move(impl));
  pdb.sourceFiles()[0].includes.push_back(impl_id);

  TypeItem int_ty;
  int_ty.name = "int";
  int_ty.kind = "int";
  int_ty.ikind = "int";
  const std::uint32_t int_id = pdb.addType(std::move(int_ty));

  TypeItem sig;
  sig.name = "void (int)";
  sig.kind = "func";
  sig.return_type = ItemRef{ItemKind::Type, int_id};
  sig.params.push_back({ItemKind::Type, int_id});
  const std::uint32_t sig_id = pdb.addType(std::move(sig));

  TemplateItem te;
  te.name = "Stack";
  te.kind = "class";
  te.text = "template <class Object>\nclass Stack {...};";
  te.location = {header_id, 8, 7};
  const std::uint32_t te_id = pdb.addTemplate(std::move(te));

  ClassItem cls;
  cls.name = "Stack<int>";
  cls.kind = "class";
  cls.template_id = te_id;
  cls.location = {header_id, 8, 7};
  const std::uint32_t cls_id = pdb.addClass(std::move(cls));

  RoutineItem push;
  push.name = "push";
  push.location = {impl_id, 72, 29};
  push.parent = ItemRef{ItemKind::Class, cls_id};
  push.access = "pub";
  push.signature = sig_id;
  push.template_id = te_id;
  push.defined = true;
  push.calls.push_back({1, false, {impl_id, 74, 17}});
  push.extent = {{impl_id, 72, 9}, {impl_id, 72, 52}, {impl_id, 73, 9},
                 {impl_id, 77, 9}};
  const std::uint32_t push_id = pdb.addRoutine(std::move(push));
  pdb.classes()[0].funcs.push_back({push_id, {impl_id, 72, 29}});

  ClassItem::Member mem;
  mem.name = "topOfStack";
  mem.access = "priv";
  mem.kind = "var";
  mem.type = {ItemKind::Type, int_id};
  mem.location = {header_id, 39, 28};
  pdb.classes()[0].members.push_back(std::move(mem));

  NamespaceItem ns;
  ns.name = "util";
  ns.members.push_back({ItemKind::Routine, push_id});
  pdb.addNamespace(std::move(ns));

  MacroItem ma;
  ma.name = "STACKAR_H";
  ma.kind = "def";
  ma.text = "#define STACKAR_H";
  ma.location = {header_id, 2, 1};
  pdb.addMacro(std::move(ma));

  // One def-use stream exercising every event op and every flag letter.
  DefUseItem du_item;
  du_item.routine = push_id;
  du_item.events.push_back({DuOp::Def, du::kParam, "x", {impl_id, 72, 43}});
  du_item.events.push_back(
      {DuOp::Def, du::kUninit, "tmp", {impl_id, 73, 13}});
  du_item.events.push_back({DuOp::Marker, 0, "then", {impl_id, 74, 9}});
  du_item.events.push_back(
      {DuOp::Use, static_cast<std::uint8_t>(du::kPointer | du::kDeref), "p",
       {impl_id, 74, 11}});
  du_item.events.push_back(
      {DuOp::Def, static_cast<std::uint8_t>(du::kMember | du::kNullValue),
       "this.topOfStack", {impl_id, 75, 9}});
  du_item.events.push_back(
      {DuOp::Use, static_cast<std::uint8_t>(du::kReference | du::kUnknown),
       "r", {impl_id, 76, 9}});
  du_item.events.push_back({DuOp::Marker, 0, "endif", {impl_id, 77, 9}});
  pdb.addDefUse(std::move(du_item));

  // Two dynamic-profile entries: one linked to a routine, one standalone
  // (a runtime-only name with no static counterpart).
  DynProfItem dp_linked;
  dp_linked.name = "push() <Stack<int>>";
  dp_linked.routine = push_id;
  dp_linked.calls = 4096;
  dp_linked.child_calls = 128;
  dp_linked.inclusive_ns = 987654321;
  dp_linked.exclusive_ns = 123456789;
  dp_linked.threads = 8;
  dp_linked.contexts = 2;
  pdb.addDynProf(std::move(dp_linked));

  DynProfItem dp_unlinked;
  dp_unlinked.name = "main()";
  dp_unlinked.calls = 1;
  dp_unlinked.inclusive_ns = 5000000000;
  dp_unlinked.exclusive_ns = 5000000000;
  dp_unlinked.threads = 1;
  dp_unlinked.contexts = 1;
  pdb.addDynProf(std::move(dp_unlinked));
  return pdb;
}

/// ASCII -> binary -> ASCII must reproduce the original ASCII text
/// byte for byte, and a second binary encoding must be stable too.
void expectLosslessRoundTrip(const PdbFile& original) {
  const std::string ascii = writeToString(original);

  const std::string binary = writeString(original, Format::Binary);
  ASSERT_TRUE(binary.starts_with(kBinaryMagic));
  ASSERT_EQ(detectFormat(binary), Format::Binary);
  ASSERT_EQ(detectFormat(ascii), Format::Ascii);

  ReadResult parsed = readBuffer(binary);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  EXPECT_EQ(parsed.pdb.offsetUnit(), OffsetUnit::Byte);

  EXPECT_EQ(writeToString(parsed.pdb), ascii);
  EXPECT_EQ(writeString(parsed.pdb, Format::Binary), binary);
}

std::string inputPath(const std::string& rel) {
  return std::string(paths::kInputDir) + "/" + rel;
}

/// Compiles one shipped input program to a merged database.
PdbFile compileSeed(const std::vector<std::string>& sources,
                    const std::vector<std::string>& include_dirs) {
  tools::DriverOptions options;
  options.frontend.include_dirs = include_dirs;
  options.frontend.include_dirs.push_back(std::string(paths::kRuntimeDir) +
                                          "/pdt_stl");
  tools::DriverResult result = tools::compileAndMerge(sources, options);
  EXPECT_TRUE(result.success) << result.diagnostics;
  return result.pdb ? result.pdb->raw() : PdbFile{};
}

TEST(FormatRoundTrip, SampleDatabaseIsByteIdentical) {
  expectLosslessRoundTrip(samplePdb());
}

TEST(FormatRoundTrip, EmptyDatabaseIsByteIdentical) {
  expectLosslessRoundTrip(PdbFile{});
}

TEST(FormatRoundTrip, StackSeedIsByteIdentical) {
  expectLosslessRoundTrip(compileSeed({inputPath("stack/TestStackAr.cpp")},
                                      {inputPath("stack")}));
}

TEST(FormatRoundTrip, ExprMiniSeedIsByteIdentical) {
  expectLosslessRoundTrip(compileSeed({inputPath("expr_mini/et_demo.cpp")},
                                      {inputPath("expr_mini")}));
}

TEST(FormatRoundTrip, KrylovSeedIsByteIdentical) {
  expectLosslessRoundTrip(compileSeed({inputPath("pooma_mini/krylov.cpp")},
                                      {inputPath("pooma_mini")}));
}

TEST(FormatRoundTrip, LazyReadLoadsOnlyRequestedSections) {
  const std::string binary = writeString(samplePdb(), Format::Binary);

  ReadResult lazy = readBuffer(binary, Sections::Routines);
  ASSERT_TRUE(lazy.ok()) << lazy.errors.front();
  EXPECT_EQ(lazy.loaded, Sections::Routines);
  EXPECT_EQ(lazy.pdb.routines().size(), 1u);
  EXPECT_TRUE(lazy.pdb.classes().empty());
  EXPECT_TRUE(lazy.pdb.sourceFiles().empty());
  EXPECT_TRUE(lazy.pdb.types().empty());

  // Section-aware validation must not flag the routine's references into
  // the sections that were deliberately left unloaded.
  EXPECT_TRUE(validate(lazy.pdb, lazy.loaded).empty());
  EXPECT_FALSE(validate(lazy.pdb).empty());
}

TEST(FormatRoundTrip, AsciiReaderHonorsSectionMask) {
  const std::string ascii = writeToString(samplePdb());

  ReadResult lazy = readBuffer(ascii, Sections::Classes);
  ASSERT_TRUE(lazy.ok()) << lazy.errors.front();
  EXPECT_EQ(lazy.loaded, Sections::Classes);
  EXPECT_EQ(lazy.pdb.classes().size(), 1u);
  EXPECT_TRUE(lazy.pdb.routines().empty());
  EXPECT_TRUE(validate(lazy.pdb, lazy.loaded).empty());
}

TEST(FormatRoundTrip, LazyReadCanLoadOnlyDefUses) {
  const std::string binary = writeString(samplePdb(), Format::Binary);

  ReadResult lazy = readBuffer(binary, Sections::DefUses);
  ASSERT_TRUE(lazy.ok()) << lazy.errors.front();
  EXPECT_EQ(lazy.loaded, Sections::DefUses);
  ASSERT_EQ(lazy.pdb.defUses().size(), 1u);
  EXPECT_EQ(lazy.pdb.defUses()[0].events.size(), 7u);
  EXPECT_TRUE(lazy.pdb.routines().empty());
  // The stream's ro# reference points into an unloaded section; the
  // section-aware validator must not flag it.
  EXPECT_TRUE(validate(lazy.pdb, lazy.loaded).empty());
}

TEST(FormatRoundTrip, LazyReadCanLoadOnlyDynProfs) {
  const std::string binary = writeString(samplePdb(), Format::Binary);

  ReadResult lazy = readBuffer(binary, Sections::DynProfs);
  ASSERT_TRUE(lazy.ok()) << lazy.errors.front();
  EXPECT_EQ(lazy.loaded, Sections::DynProfs);
  ASSERT_EQ(lazy.pdb.dynProfs().size(), 2u);
  EXPECT_EQ(lazy.pdb.dynProfs()[0].name, "push() <Stack<int>>");
  EXPECT_EQ(lazy.pdb.dynProfs()[0].calls, 4096u);
  EXPECT_EQ(lazy.pdb.dynProfs()[0].threads, 8u);
  EXPECT_TRUE(lazy.pdb.routines().empty());
  // The entry's ro# link points into an unloaded section; the
  // section-aware validator must not flag it.
  EXPECT_TRUE(validate(lazy.pdb, lazy.loaded).empty());
}

TEST(FormatRoundTrip, ValidatorFlagsInvertedDynProfTimes) {
  PdbFile pdb = samplePdb();
  pdb.dynProfs()[0].inclusive_ns = 1;
  pdb.dynProfs()[0].exclusive_ns = 2;
  const std::vector<std::string> errors = validate(pdb);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("dp#1"), std::string::npos);
  EXPECT_NE(errors[0].find("inclusive time"), std::string::npos);
}

TEST(FormatRoundTrip, BinaryDiagnosticsNameTheDuSection) {
  const std::string binary = writeString(samplePdb(), Format::Binary);
  ReadResult parsed = readBuffer(binary);
  ASSERT_TRUE(parsed.ok());
  parsed.pdb.defUses()[0].routine = 9999;
  parsed.pdb.reindex();
  const std::vector<std::string> errors = validate(parsed.pdb);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("du#1"), std::string::npos);
  EXPECT_NE(errors[0].find("of du section"), std::string::npos);
  EXPECT_NE(errors[0].find("undefined ro#9999"), std::string::npos);
}

TEST(FormatRoundTrip, BinaryRecordsByteOffsetsForDiagnostics) {
  const std::string binary = writeString(samplePdb(), Format::Binary);
  ReadResult parsed = readBuffer(binary);
  ASSERT_TRUE(parsed.ok());
  // Break a reference, then check the diagnostic carries the item's byte
  // offset inside the binary file.
  parsed.pdb.routines()[0].calls[0].routine = 9999;
  parsed.pdb.reindex();
  const std::vector<std::string> errors = validate(parsed.pdb);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("ro#1"), std::string::npos);
  EXPECT_NE(errors[0].find(", byte "), std::string::npos);
  EXPECT_NE(errors[0].find("undefined ro#9999"), std::string::npos);
}

TEST(FormatCorruption, EveryTruncationIsRejected) {
  const std::string binary = writeString(samplePdb(), Format::Binary);
  for (std::size_t len = 0; len < binary.size();
       len += (len < 64 ? 1 : 37)) {
    ReadResult r = readBuffer(binary.substr(0, len));
    EXPECT_FALSE(r.ok()) << "truncation to " << len
                         << " bytes was accepted";
  }
}

TEST(FormatCorruption, TrailingGarbageIsRejected) {
  std::string binary = writeString(samplePdb(), Format::Binary);
  binary += '\0';
  EXPECT_FALSE(readBuffer(binary).ok());
}

TEST(FormatCorruption, EveryBitFlipIsRejected) {
  const std::string binary = writeString(samplePdb(), Format::Binary);
  const std::string ascii = writeToString(samplePdb());
  for (std::size_t at = 0; at < binary.size(); ++at) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::string mutated = binary;
      mutated[at] = static_cast<char>(mutated[at] ^ (1 << bit));
      ReadResult r = readBuffer(mutated);
      // The checksum (or, for flips in the magic, the ASCII header
      // check) must catch the corruption; silently succeeding with
      // different content would be a data-integrity bug.
      if (r.ok()) {
        EXPECT_EQ(writeToString(r.pdb), ascii)
            << "bit " << bit << " at byte " << at
            << " changed the database without being detected";
        ADD_FAILURE() << "bit flip at byte " << at << " was accepted";
      }
    }
  }
}

/// Build-cache integration: entries are stored in the binary format and
/// corrupt entries are evicted and recompiled, not trusted.
class FormatCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pdt_format_cache_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_ / "cache");
    std::ofstream os(dir_ / "tu.cpp");
    os << "template <class T>\nT twice(T v) { return v + v; }\n"
          "int use() { return twice(21); }\n";
    inputs_.push_back((dir_ / "tu.cpp").string());
    options_.cache.dir = (dir_ / "cache").string();
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string compileBytes(tools::DriverResult& out) {
    out = tools::compileAndMerge(inputs_, options_);
    EXPECT_TRUE(out.success) << out.diagnostics;
    return out.pdb ? writeToString(out.pdb->raw()) : std::string();
  }

  [[nodiscard]] std::vector<fs::path> cacheEntries() const {
    std::vector<fs::path> found;
    for (const auto& entry : fs::directory_iterator(dir_ / "cache"))
      if (entry.path().extension() == ".pdb") found.push_back(entry.path());
    return found;
  }

  fs::path dir_;
  std::vector<std::string> inputs_;
  tools::DriverOptions options_;
};

TEST_F(FormatCacheTest, EntriesAreStoredInBinaryFormat) {
  tools::DriverResult cold;
  (void)compileBytes(cold);
  EXPECT_EQ(cold.cache_stats.stores, 1u);
  const std::vector<fs::path> entries = cacheEntries();
  ASSERT_EQ(entries.size(), 1u);
  std::ifstream is(entries[0], std::ios::binary);
  std::string head(kBinaryMagic.size(), '\0');
  is.read(head.data(), static_cast<std::streamsize>(head.size()));
  EXPECT_EQ(head, kBinaryMagic);
}

TEST_F(FormatCacheTest, CorruptBinaryEntryIsEvictedAndRecompiled) {
  tools::DriverResult cold;
  const std::string cold_bytes = compileBytes(cold);

  for (const fs::path& entry : cacheEntries()) {
    // Flip one payload byte; the checksum makes the entry unreadable.
    std::fstream f(entry, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(kBinaryMagic.size()) + 40);
    f.put('\x7e');
  }

  tools::DriverResult rerun;
  const std::string rerun_bytes = compileBytes(rerun);
  EXPECT_EQ(rerun.cache_stats.hits, 0u);
  EXPECT_EQ(rerun.cache_stats.evictions, 1u);
  EXPECT_EQ(rerun.cache_stats.stores, 1u);
  EXPECT_EQ(cold_bytes, rerun_bytes);

  tools::DriverResult warm;
  (void)compileBytes(warm);
  EXPECT_EQ(warm.cache_stats.hits, 1u);
}

}  // namespace
}  // namespace pdt::pdb
