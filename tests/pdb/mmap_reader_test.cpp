// Zero-copy mmap read path: snapshots returned by pdb::open own the
// buffer their string views alias (so they outlive any scope), the mmap
// and buffered paths reject a corruption corpus identically, and masked
// reads verify exactly the sections they materialize — no more (pages of
// unrequested sections are never touched) and no less (a corrupt
// requested section is caught by its per-section checksum even though
// the whole-file checksum is skipped).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "pdb/binary_layout.h"
#include "pdb/snapshot.h"
#include "pdb/writer.h"
#include "support/trace.h"

namespace pdt::pdb {
namespace {

namespace fs = std::filesystem;

/// One item of every kind (mirrors format_roundtrip_test's sample).
PdbFile samplePdb() {
  PdbFile pdb;
  SourceFileItem header;
  header.name = "StackAr.h";
  const std::uint32_t header_id = pdb.addSourceFile(std::move(header));
  SourceFileItem impl;
  impl.name = "StackAr.cpp";
  impl.includes.push_back(header_id);
  const std::uint32_t impl_id = pdb.addSourceFile(std::move(impl));

  TypeItem int_ty;
  int_ty.name = "int";
  int_ty.kind = "int";
  const std::uint32_t int_id = pdb.addType(std::move(int_ty));
  TypeItem sig;
  sig.name = "void (int)";
  sig.kind = "func";
  sig.return_type = ItemRef{ItemKind::Type, int_id};
  sig.params.push_back({ItemKind::Type, int_id});
  const std::uint32_t sig_id = pdb.addType(std::move(sig));

  TemplateItem te;
  te.name = "Stack";
  te.kind = "class";
  te.location = {header_id, 10, 1};
  te.text = "template <class Object>\nclass Stack {...};";
  const std::uint32_t te_id = pdb.addTemplate(std::move(te));

  ClassItem cls;
  cls.name = "Stack<int>";
  cls.kind = "class";
  cls.location = {header_id, 12, 1};
  cls.template_id = te_id;
  ClassItem::Member mem;
  mem.name = "topOfStack";
  mem.access = "priv";
  mem.kind = "var";
  mem.type = {ItemKind::Type, int_id};
  cls.members.push_back(mem);
  const std::uint32_t cls_id = pdb.addClass(std::move(cls));

  RoutineItem push;
  push.name = "push";
  push.parent = ItemRef{ItemKind::Class, cls_id};
  push.access = "pub";
  push.signature = sig_id;
  push.kind = "routine";
  push.defined = true;
  push.location = {impl_id, 42, 3};
  pdb.addRoutine(std::move(push));

  NamespaceItem ns;
  ns.name = "util";
  ns.location = {header_id, 2, 1};
  pdb.addNamespace(std::move(ns));

  MacroItem ma;
  ma.name = "STACKAR_H";
  ma.kind = "def";
  ma.text = "#define STACKAR_H";
  ma.location = {header_id, 1, 1};
  pdb.addMacro(std::move(ma));

  pdb.reindex();
  return pdb;
}

class MmapReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pdt_mmap_" + std::to_string(::testing::UnitTest::GetInstance()
                                             ->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
    ascii_ = writeToString(samplePdb());
    binary_ = writeString(samplePdb(), Format::Binary);
  }

  void TearDown() override {
    setMmapMode(MmapMode::Auto);
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string writeBytes(const std::string& name,
                                       const std::string& bytes) const {
    const fs::path path = dir_ / name;
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path.string();
  }

  /// (ok, first error) of reading `path` under the given mmap mode.
  static std::pair<bool, std::string> readUnder(MmapMode mode,
                                                const std::string& path,
                                                Sections sections =
                                                    Sections::All) {
    setMmapMode(mode);
    const OpenResult result = open(path, sections);
    setMmapMode(MmapMode::Auto);
    if (!result.opened) return {false, "<unopenable>"};
    if (!result.ok()) return {false, result.errors.front()};
    return {true, ""};
  }

  fs::path dir_;
  std::string ascii_;
  std::string binary_;
};

TEST_F(MmapReaderTest, DatabaseOwnsItsViewsBeyondEveryScope) {
  PdbFile moved;
  {
    const std::string path = writeBytes("sample.pdb", binary_);
    setMmapMode(MmapMode::On);
    auto result = open(path);
    setMmapMode(MmapMode::Auto);
    ASSERT_TRUE(result.ok());
    // The mapping's only owner is the snapshot (and any database cloned
    // from it); deleting the directory entry must not invalidate it
    // (POSIX keeps unlinked mappings readable — exactly what the sharded
    // merge's spill cleanup relies on).
    fs::remove(path);
    moved = result.snapshot->clonePdb();
  }
  // A copy shares the adopted backing rather than re-owning strings.
  const PdbFile copy = moved;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(writeToString(copy), ascii_);
  EXPECT_EQ(writeToString(moved), ascii_);
}

TEST_F(MmapReaderTest, MmapModeCountsBytesMappedAndOffDoesNot) {
  const std::string path = writeBytes("sample.pdb", binary_);

  trace::resetGlobalCounters();
  auto [off_ok, off_err] = readUnder(MmapMode::Off, path);
  ASSERT_TRUE(off_ok) << off_err;
  EXPECT_EQ(trace::globalCounters().get(trace::Counter::PdbMmapBytesMapped),
            0u);

  trace::resetGlobalCounters();
  auto [on_ok, on_err] = readUnder(MmapMode::On, path);
  ASSERT_TRUE(on_ok) << on_err;
  EXPECT_EQ(trace::globalCounters().get(trace::Counter::PdbMmapBytesMapped),
            binary_.size());
}

TEST_F(MmapReaderTest, TruncationCorpusIsRejectedIdenticallyInBothModes) {
  for (std::size_t len = 0; len < binary_.size();
       len += (len < 64 ? 1 : 37)) {
    const std::string path =
        writeBytes("trunc.pdb", binary_.substr(0, len));
    const auto mapped = readUnder(MmapMode::On, path);
    const auto buffered = readUnder(MmapMode::Off, path);
    EXPECT_FALSE(mapped.first) << "truncation to " << len << " accepted";
    EXPECT_EQ(mapped, buffered) << "modes disagree at truncation " << len;
  }
}

TEST_F(MmapReaderTest, BitFlipCorpusIsRejectedIdenticallyInBothModes) {
  for (std::size_t at = 0; at < binary_.size(); at += 7) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::string mutated = binary_;
      mutated[at] = static_cast<char>(mutated[at] ^ (1 << bit));
      const std::string path = writeBytes("flip.pdb", mutated);
      const auto mapped = readUnder(MmapMode::On, path);
      const auto buffered = readUnder(MmapMode::Off, path);
      EXPECT_EQ(mapped, buffered)
          << "modes disagree for bit " << bit << " at byte " << at;
      EXPECT_FALSE(mapped.first)
          << "bit " << bit << " at byte " << at << " was accepted";
    }
  }
}

TEST_F(MmapReaderTest, MaskedReadVerifiesExactlyTheRequestedSections) {
  // Find the routine section's payload via the on-disk section table:
  // header is magic(8) + u32 count + u64 total + u64 strtab_offset +
  // u64 strtab_size + u64 strtab_checksum, then count 32-byte entries of
  // { u32 kind, u32 item_count, u64 offset, u64 size, u64 checksum }.
  std::uint32_t section_count = 0;
  std::memcpy(&section_count, binary_.data() + 8, 4);
  std::size_t ro_payload = 0;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    const char* entry =
        binary_.data() + binary::kHeaderSize + s * binary::kSectionEntrySize;
    std::uint32_t kind = 0;
    std::uint64_t offset = 0;
    std::memcpy(&kind, entry, 4);
    std::memcpy(&offset, entry + 8, 8);
    if (kind == static_cast<std::uint32_t>(ItemKind::Routine))
      ro_payload = static_cast<std::size_t>(offset);
  }
  ASSERT_NE(ro_payload, 0u);

  std::string mutated = binary_;
  mutated[ro_payload] = static_cast<char>(mutated[ro_payload] ^ 0x40);
  const std::string path = writeBytes("rot.pdb", mutated);

  for (const MmapMode mode : {MmapMode::On, MmapMode::Off}) {
    // Full read: the whole-file checksum catches it.
    EXPECT_FALSE(readUnder(mode, path).first);
    // Masked read of untouched sections: the corrupt section's bytes are
    // outside every verified range, so the read succeeds without ever
    // touching (or faulting in) the routine payload.
    const auto other = readUnder(
        mode, path, Sections::Templates | Sections::SourceFiles);
    EXPECT_TRUE(other.first) << other.second;
    // Masked read that *requests* the corrupt section: its per-section
    // checksum must reject it even though the whole-file pass is skipped.
    const auto hit = readUnder(mode, path,
                               Sections::Routines | Sections::SourceFiles);
    EXPECT_FALSE(hit.first);
    EXPECT_NE(hit.second.find("ro section checksum mismatch"),
              std::string::npos)
        << hit.second;
  }
}

}  // namespace
}  // namespace pdt::pdb
