// Snapshot lifecycle tests: pdb::open publishes an immutable snapshot
// with a process-unique generation, widen() re-opens lazily skipped
// sections into the same generation without touching what is already
// loaded (it re-reads from the snapshot's retained bytes, so it works
// even after the file is gone), and failures keep the OpenResult
// contract one-shot tools rely on for their error strings.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include "pdb/snapshot.h"
#include "pdb/writer.h"

namespace pdt::pdb {
namespace {

namespace fs = std::filesystem;

/// A small database touching several sections (files include each
/// other so the include tree is non-trivial).
PdbFile samplePdb() {
  PdbFile pdb;
  SourceFileItem header;
  header.name = "Snap.h";
  const std::uint32_t header_id = pdb.addSourceFile(std::move(header));
  SourceFileItem impl;
  impl.name = "Snap.cpp";
  impl.includes.push_back(header_id);
  const std::uint32_t impl_id = pdb.addSourceFile(std::move(impl));

  TypeItem int_ty;
  int_ty.name = "int";
  int_ty.kind = "int";
  pdb.addType(std::move(int_ty));

  ClassItem cls;
  cls.name = "Snap";
  cls.kind = "class";
  cls.location = {header_id, 3, 1};
  const std::uint32_t cls_id = pdb.addClass(std::move(cls));

  RoutineItem ro;
  ro.name = "run";
  ro.parent = ItemRef{ItemKind::Class, cls_id};
  ro.kind = "routine";
  ro.defined = true;
  ro.location = {impl_id, 7, 1};
  pdb.addRoutine(std::move(ro));

  MacroItem ma;
  ma.name = "SNAP_H";
  ma.kind = "def";
  ma.location = {header_id, 1, 1};
  pdb.addMacro(std::move(ma));

  pdb.reindex();
  return pdb;
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pdt_snap_" + std::to_string(::testing::UnitTest::GetInstance()
                                             ->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
    ascii_ = writeToString(samplePdb());
    path_ = (dir_ / "sample.pdb").string();
    std::ofstream os(path_, std::ios::binary);
    os.write(ascii_.data(), static_cast<std::streamsize>(ascii_.size()));
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
  std::string path_;
  std::string ascii_;
};

TEST_F(SnapshotTest, OpenLoadsAllSectionsWithAUniqueGeneration) {
  const OpenResult a = open(path_);
  const OpenResult b = open(path_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.snapshot->loaded(), Sections::All);
  EXPECT_EQ(a.snapshot->path(), path_);
  // Generations are process-unique and monotone: re-opening the same
  // file is a new generation (that is what pdbd's hot-swap observes).
  EXPECT_LT(a.snapshot->generation(), b.snapshot->generation());
  EXPECT_GT(a.snapshot->generation(), 0u);
  EXPECT_EQ(writeToString(a.snapshot->pdb()), ascii_);
}

TEST_F(SnapshotTest, OpenFailureDistinguishesMissingFromMalformed) {
  const OpenResult missing = open((dir_ / "absent.pdb").string());
  EXPECT_FALSE(missing.ok());
  EXPECT_FALSE(missing.opened);
  EXPECT_EQ(missing.snapshot, nullptr);

  const std::string bad_path = (dir_ / "bad.pdb").string();
  std::ofstream(bad_path) << "this is not a database\n";
  const OpenResult bad = open(bad_path);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.opened);
  ASSERT_FALSE(bad.errors.empty());
}

TEST_F(SnapshotTest, MaskedOpenLoadsOnlyTheRequestedSections) {
  const OpenResult narrow = open(path_, Sections::SourceFiles);
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow.snapshot->loaded(), Sections::SourceFiles);
  EXPECT_EQ(narrow.snapshot->pdb().sourceFiles().size(), 2u);
  EXPECT_TRUE(narrow.snapshot->pdb().routines().empty());
}

TEST_F(SnapshotTest, WidenAddsSectionsInsideTheSameGeneration) {
  const OpenResult narrow = open(path_, Sections::SourceFiles);
  ASSERT_TRUE(narrow.ok());
  const OpenResult wide =
      widen(narrow.snapshot, Sections::Routines | Sections::Classes);
  ASSERT_TRUE(wide.ok());
  // Same logical database acquisition: the generation is preserved, the
  // mask is the union, and the original snapshot is untouched.
  EXPECT_EQ(wide.snapshot->generation(), narrow.snapshot->generation());
  EXPECT_EQ(wide.snapshot->loaded(),
            Sections::SourceFiles | Sections::Routines | Sections::Classes);
  EXPECT_EQ(narrow.snapshot->loaded(), Sections::SourceFiles);
  EXPECT_EQ(wide.snapshot->pdb().routines().size(), 1u);
  EXPECT_EQ(wide.snapshot->pdb().sourceFiles().size(), 2u);
}

TEST_F(SnapshotTest, WidenIsANoOpWhenAlreadyCovered) {
  const OpenResult narrow =
      open(path_, Sections::SourceFiles | Sections::Routines);
  ASSERT_TRUE(narrow.ok());
  const OpenResult same = widen(narrow.snapshot, Sections::Routines);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same.snapshot, narrow.snapshot);
}

TEST_F(SnapshotTest, WidenReadsFromRetainedBytesNotTheFile) {
  const OpenResult narrow = open(path_, Sections::SourceFiles);
  ASSERT_TRUE(narrow.ok());
  // The file is gone; widening must succeed anyway, because the
  // snapshot retains the raw bytes it was opened from.
  fs::remove(path_);
  const OpenResult wide = widen(narrow.snapshot, Sections::All);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide.snapshot->loaded(), Sections::All);
  EXPECT_EQ(writeToString(wide.snapshot->pdb()), ascii_);
  EXPECT_EQ(wide.snapshot->generation(), narrow.snapshot->generation());
}

TEST_F(SnapshotTest, WidenToAllMatchesADirectFullOpen) {
  const OpenResult narrow =
      open(path_, Sections::Classes | Sections::SourceFiles);
  ASSERT_TRUE(narrow.ok());
  const OpenResult widened = widen(narrow.snapshot, Sections::All);
  const OpenResult full = open(path_);
  ASSERT_TRUE(widened.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(writeToString(widened.snapshot->pdb()),
            writeToString(full.snapshot->pdb()));
}

TEST_F(SnapshotTest, WidenRejectsANullSnapshot) {
  const OpenResult result = widen(nullptr, Sections::All);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.errors.empty());
}

}  // namespace
}  // namespace pdt::pdb
