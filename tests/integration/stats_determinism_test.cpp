// The observability counters' hard invariant (ISSUE PR4): --stats counter
// totals are byte-identical for any -j and for warm vs cold cache runs.
// Exercised over the pooma_mini template workload through the library
// driver (same entry point cxxparse uses), comparing CounterBlock
// serializations — the exact bytes the cache sidecars persist.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pdt/pdt_paths.h"
#include "support/trace.h"
#include "tools/driver.h"

namespace pdt {
namespace {

namespace fs = std::filesystem;

class StatsDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pdt_stats_det_" + std::to_string(::testing::UnitTest::GetInstance()
                                                  ->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_ / "cache");
    writeTU("tu_vectors.cpp", R"cpp(
#include "Array.h"
#include "BLAS1.h"
double useVectors() {
  Array<double> a(8);
  Array<double> b(8);
  a.fill(1.5);
  b.fill(2.5);
  axpy(2.0, a, b);
  return dot(a, b) + norm2(b);
}
)cpp");
    writeTU("tu_stencil.cpp", R"cpp(
#include "Array.h"
#include "Stencil.h"
double useStencil() {
  Array<double> grid(16);
  Array<double> out(16);
  grid.fill(0.5);
  Laplace1D<double> laplace(16);
  laplace.apply(grid, out);
  return out(8);
}
)cpp");
    writeTU("tu_mixed.cpp", R"cpp(
#include "Array.h"
#include "BLAS1.h"
#define PDT_TAG(x) #x
const char* kMixedTag = PDT_TAG(mixed workload);
double useMixed() {
  Array<double> a(4);
  Array<float> c(4);
  a.fill(3.0);
  c.fill(1.0f);
  return dot(a, a) + norm2(c);
}
)cpp");
    cached_.frontend.include_dirs.push_back(std::string(paths::kInputDir) +
                                            "/pooma_mini");
    cached_.cache.dir = (dir_ / "cache").string();
    uncached_ = cached_;
    uncached_.cache = {};
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void writeTU(const std::string& name, const std::string& text) {
    std::ofstream os(dir_ / name);
    os << text;
    inputs_.push_back((dir_ / name).string());
  }

  /// Runs the driver and returns the serialized counter totals (the byte
  /// form --stats derives its counter section from).
  [[nodiscard]] std::string runCounters(tools::DriverOptions options,
                                        std::size_t jobs) {
    options.jobs = jobs;
    const tools::DriverResult result = tools::compileAndMerge(inputs_, options);
    EXPECT_TRUE(result.success) << result.diagnostics;
    last_ = result.counters;
    return result.counters.serialize();
  }

  fs::path dir_;
  std::vector<std::string> inputs_;
  tools::DriverOptions cached_;
  tools::DriverOptions uncached_;
  trace::CounterBlock last_;
};

TEST_F(StatsDeterminismTest, CountersIdenticalAcrossJobCounts) {
  const std::string j1 = runCounters(uncached_, 1);
  const trace::CounterBlock j1_block = last_;
  const std::string j4 = runCounters(uncached_, 4);
  EXPECT_EQ(j1, j4);

  // And they actually measured the compile: the workload lexes tokens,
  // enters includes, and instantiates templates.
  EXPECT_GT(j1_block.get(trace::Counter::LexTokens), 0u);
  // The workload's macros synthesize spellings, so the arena is in use —
  // and being inside the serialized block, its byte count is covered by
  // the j1 == j4 and warm == cold equalities above/below.
  EXPECT_GT(j1_block.get(trace::Counter::LexArenaBytes), 0u);
  EXPECT_GT(j1_block.get(trace::Counter::PpIncludes), 0u);
  EXPECT_GT(j1_block.get(trace::Counter::SemaClassInstantiations), 0u);
  EXPECT_GT(j1_block.get(trace::Counter::SemaBodiesInstantiated), 0u);
  EXPECT_GT(j1_block.get(trace::Counter::IlItems), 0u);
  EXPECT_EQ(j1_block.get(trace::Counter::DriverTus), inputs_.size());
  EXPECT_EQ(j1_block.get(trace::Counter::DiagErrors), 0u);
  // Per-template keyed dimension: Array<T> instantiates in every TU.
  const auto by_template =
      j1_block.keyed.find("sema.instantiations.by_template");
  ASSERT_NE(by_template, j1_block.keyed.end());
  EXPECT_GT(by_template->second.count("Array"), 0u);
}

TEST_F(StatsDeterminismTest, CountersIdenticalAcrossWarmAndColdCache) {
  const std::string baseline = runCounters(uncached_, 1);

  // Cold: every TU compiles and stores its counter sidecar. The cache
  // scan/fetch/store bookkeeping runs under a suppressing scope, so the
  // totals match the uncached run exactly.
  const std::string cold = runCounters(cached_, 1);
  EXPECT_EQ(baseline, cold);

  // Warm: every TU replays its sidecar instead of compiling.
  const std::string warm = runCounters(cached_, 1);
  EXPECT_EQ(baseline, warm);

  // Warm at a different -j still matches.
  const std::string warm_j4 = runCounters(cached_, 4);
  EXPECT_EQ(baseline, warm_j4);
}

TEST_F(StatsDeterminismTest, MixedHitMissRunMatchesToo) {
  const std::string baseline = runCounters(uncached_, 1);
  (void)runCounters(cached_, 1);  // populate the cache

  // Touch one TU: its key changes, the siblings still hit.
  {
    std::ofstream os(dir_ / "tu_mixed.cpp", std::ios::app);
    os << "double useMore() { return norm2(Array<double>(2)); }\n";
  }
  const std::string mixed = runCounters(cached_, 2);
  const std::string remeasured = runCounters(uncached_, 1);
  EXPECT_EQ(mixed, remeasured);
  EXPECT_NE(mixed, baseline);  // the edit really changed the counters
}

TEST_F(StatsDeterminismTest, DiagnosticTotalsAreCounted) {
  writeTU("tu_warn.cpp", R"cpp(
#warning count me
int useW() { return 1; }
)cpp");
  tools::DriverOptions options = uncached_;
  options.jobs = 1;
  const tools::DriverResult result = tools::compileAndMerge(inputs_, options);
  ASSERT_TRUE(result.success) << result.diagnostics;
  EXPECT_EQ(result.counters.get(trace::Counter::DiagWarnings), 1u);
  EXPECT_EQ(result.counters.get(trace::Counter::DiagErrors), 0u);
  const auto by_tu = result.counters.keyed.find("diag.warnings.by_tu");
  ASSERT_NE(by_tu, result.counters.keyed.end());
  EXPECT_EQ(by_tu->second.at((dir_ / "tu_warn.cpp").string()), 1u);
}

}  // namespace
}  // namespace pdt
