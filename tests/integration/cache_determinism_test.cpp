// The build cache's hard invariant (ISSUE: cached, uncached, and mixed
// hit/miss runs at any -j produce byte-identical merged PDB output),
// exercised over the pooma_mini template workload at -j 1 and -j 4.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pdb/writer.h"
#include "pdt/pdt_paths.h"
#include "tools/driver.h"

namespace pdt {
namespace {

namespace fs = std::filesystem;

/// The parallel-determinism scratch project (several TUs over the
/// pooma_mini headers) plus a cache directory.
class CacheDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pdt_cache_det_" + std::to_string(::testing::UnitTest::GetInstance()
                                                  ->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_ / "cache");
    writeTU("tu_vectors.cpp", R"cpp(
#include "Array.h"
#include "BLAS1.h"
double useVectors() {
  Array<double> a(8);
  Array<double> b(8);
  a.fill(1.5);
  b.fill(2.5);
  axpy(2.0, a, b);
  return dot(a, b) + norm2(b);
}
)cpp");
    writeTU("tu_stencil.cpp", R"cpp(
#include "Array.h"
#include "Stencil.h"
double useStencil() {
  Array<double> grid(16);
  Array<double> out(16);
  grid.fill(0.5);
  Laplace1D<double> laplace(16);
  laplace.apply(grid, out);
  return out(8);
}
)cpp");
    writeTU("tu_solver.cpp", R"cpp(
#include "Array.h"
#include "CG.h"
int useSolver() {
  Array<float> x(4);
  Array<float> rhs(4);
  rhs.fill(1.0f);
  Laplace1D<float> laplace(4);
  CGSolver<float> solver(10, 0.001f);
  return solver.solve(laplace, x, rhs);
}
)cpp");
    writeTU("tu_mixed.cpp", R"cpp(
#include "Array.h"
#include "BLAS1.h"
double useMixed() {
  Array<double> a(4);
  Array<double> b(4);
  a.fill(3.0);
  b.fill(4.0);
  return dot(a, b);
}
)cpp");
    cached_.frontend.include_dirs.push_back(std::string(paths::kInputDir) +
                                            "/pooma_mini");
    cached_.cache.dir = (dir_ / "cache").string();
    uncached_ = cached_;
    uncached_.cache = {};
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void writeTU(const std::string& name, const std::string& text) {
    std::ofstream os(dir_ / name);
    os << text;
    inputs_.push_back((dir_ / name).string());
  }

  [[nodiscard]] std::string run(tools::DriverOptions options, std::size_t jobs,
                                tools::CacheStats* stats = nullptr) {
    options.jobs = jobs;
    const tools::DriverResult result = tools::compileAndMerge(inputs_, options);
    EXPECT_TRUE(result.success) << result.diagnostics;
    if (stats != nullptr) *stats = result.cache_stats;
    return result.pdb ? pdb::writeToString(result.pdb->raw()) : std::string();
  }

  fs::path dir_;
  std::vector<std::string> inputs_;
  tools::DriverOptions cached_;
  tools::DriverOptions uncached_;
};

TEST_F(CacheDeterminismTest, ColdWarmAndUncachedAgreeAtJ1) {
  const std::string baseline = run(uncached_, 1);
  ASSERT_FALSE(baseline.empty());

  tools::CacheStats cold_stats;
  const std::string cold = run(cached_, 1, &cold_stats);
  EXPECT_EQ(cold_stats.misses, 4u);
  EXPECT_EQ(cold_stats.stores, 4u);
  EXPECT_EQ(baseline, cold);

  tools::CacheStats warm_stats;
  const std::string warm = run(cached_, 1, &warm_stats);
  EXPECT_EQ(warm_stats.hits, 4u);
  EXPECT_EQ(warm_stats.misses, 0u);
  EXPECT_EQ(baseline, warm);
}

TEST_F(CacheDeterminismTest, ConcurrentWritersAtJ4StayByteIdentical) {
  // Cold at -j 4: the four workers compute, store, and publish
  // concurrently into one directory. Warm at -j 4 reads those entries
  // back. Both must equal the serial uncached run byte for byte.
  const std::string baseline = run(uncached_, 1);
  ASSERT_FALSE(baseline.empty());

  tools::CacheStats cold_stats;
  const std::string cold = run(cached_, 4, &cold_stats);
  EXPECT_EQ(cold_stats.stores, 4u);
  EXPECT_EQ(baseline, cold);

  tools::CacheStats warm_stats;
  const std::string warm = run(cached_, 4, &warm_stats);
  EXPECT_EQ(warm_stats.hits, 4u);
  EXPECT_EQ(baseline, warm);
}

TEST_F(CacheDeterminismTest, MixedHitMissRunMatchesUncached) {
  (void)run(cached_, 4);  // populate

  // Dirty one TU (a trailing comment: content changes, code does not).
  {
    std::ofstream os(fs::path(inputs_[2]), std::ios::app);
    os << "// solver tweaked\n";
  }
  const std::string baseline = run(uncached_, 1);
  ASSERT_FALSE(baseline.empty());

  tools::CacheStats mixed_stats;
  const std::string mixed_j1 = run(cached_, 1, &mixed_stats);
  EXPECT_EQ(mixed_stats.hits, 3u);
  EXPECT_EQ(mixed_stats.misses, 1u);
  EXPECT_EQ(mixed_stats.stores, 1u);
  EXPECT_EQ(baseline, mixed_j1);

  const std::string warm_j4 = run(cached_, 4);
  EXPECT_EQ(baseline, warm_j4);
}

TEST_F(CacheDeterminismTest, CorruptEntryUnderParallelRunStaysCorrect) {
  (void)run(cached_, 4);  // populate

  // Truncate every cached value; the -j 4 rerun must evict, recompile,
  // and still match the uncached serial output.
  for (const auto& entry : fs::directory_iterator(dir_ / "cache"))
    if (entry.path().extension() == ".pdb") {
      std::ofstream os(entry.path(), std::ios::binary | std::ios::trunc);
      os << "garbage";
    }
  const std::string baseline = run(uncached_, 1);
  tools::CacheStats stats;
  const std::string recovered = run(cached_, 4, &stats);
  EXPECT_EQ(stats.evictions, 4u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(baseline, recovered);
}

}  // namespace
}  // namespace pdt
