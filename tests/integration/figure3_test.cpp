// End-to-end reproduction of paper Figure 3: compile the shipped Stack
// sources (Figure 1) and verify the PDB exhibits the structures the
// paper's excerpt shows.
#include "pdb/reader.h"
#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/writer.h"
#include "pdt/pdt_paths.h"

namespace pdt {
namespace {

class Figure3Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sm_ = new SourceManager();
    diags_ = new DiagnosticEngine();
    frontend::FrontendOptions options;
    options.include_dirs.push_back(std::string(paths::kRuntimeDir) + "/pdt_stl");
    frontend::Frontend fe(*sm_, *diags_, options);
    result_ = new frontend::CompileResult(fe.compileFile(
        std::string(paths::kInputDir) + "/stack/TestStackAr.cpp"));
    pdb_ = new pdb::PdbFile(ilanalyzer::analyze(*result_, *sm_));
  }
  static void TearDownTestSuite() {
    delete pdb_;
    delete result_;
    delete diags_;
    delete sm_;
    pdb_ = nullptr;
    result_ = nullptr;
    diags_ = nullptr;
    sm_ = nullptr;
  }

  static std::string diagText() {
    std::string out;
    for (const auto& d : diags_->all())
      out += sm_->describe(d.location) + ": " + d.message + "\n";
    return out;
  }

  static const pdb::SourceFileItem* file(std::string_view suffix) {
    for (const auto& f : pdb_->sourceFiles()) {
      if (f.name.ends_with(suffix)) return &f;
    }
    return nullptr;
  }
  static const pdb::ClassItem* cls(std::string_view name) {
    for (const auto& c : pdb_->classes()) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }
  static const pdb::TemplateItem* templ(std::string_view name,
                                        std::string_view kind) {
    for (const auto& t : pdb_->templates()) {
      if (t.name == name && t.kind == kind) return &t;
    }
    return nullptr;
  }
  static const pdb::RoutineItem* routineIn(const pdb::ClassItem* c,
                                           std::string_view name) {
    if (c == nullptr) return nullptr;
    for (const auto& mf : c->funcs) {
      const auto* r = pdb_->findRoutine(mf.routine);
      if (r != nullptr && r->name == name) return r;
    }
    return nullptr;
  }

  static SourceManager* sm_;
  static DiagnosticEngine* diags_;
  static frontend::CompileResult* result_;
  static pdb::PdbFile* pdb_;
};

SourceManager* Figure3Test::sm_ = nullptr;
DiagnosticEngine* Figure3Test::diags_ = nullptr;
frontend::CompileResult* Figure3Test::result_ = nullptr;
pdb::PdbFile* Figure3Test::pdb_ = nullptr;

TEST_F(Figure3Test, CompilesCleanly) {
  ASSERT_NE(result_, nullptr);
  EXPECT_TRUE(result_->success) << diagText();
}

TEST_F(Figure3Test, SourceFileInclusions) {
  // Fig. 3 (2)/(5)/(6): StackAr.h includes vector.h, dsexceptions.h and
  // StackAr.cpp; TestStackAr.cpp includes StackAr.h.
  const auto* header = file("StackAr.h");
  ASSERT_NE(header, nullptr);
  ASSERT_EQ(header->includes.size(), 3u);
  EXPECT_TRUE(pdb_->findSourceFile(header->includes[0])->name.ends_with("vector.h"));
  EXPECT_TRUE(
      pdb_->findSourceFile(header->includes[1])->name.ends_with("dsexceptions.h"));
  EXPECT_TRUE(
      pdb_->findSourceFile(header->includes[2])->name.ends_with("StackAr.cpp"));

  const auto* main_file = file("TestStackAr.cpp");
  ASSERT_NE(main_file, nullptr);
  ASSERT_EQ(main_file->includes.size(), 2u);
}

TEST_F(Figure3Test, StackClassTemplate) {
  // Fig. 3 (7): te#559 Stack, tkind class, located in StackAr.h.
  const auto* te = templ("Stack", "class");
  ASSERT_NE(te, nullptr);
  const auto* loc_file = pdb_->findSourceFile(te->location.file);
  ASSERT_NE(loc_file, nullptr);
  EXPECT_TRUE(loc_file->name.ends_with("StackAr.h"));
  EXPECT_NE(te->text.find("template <class Object>"), std::string::npos);
}

TEST_F(Figure3Test, PushMemberFunctionTemplate) {
  // Fig. 3 (8): te#566 push, tkind memfunc, located in StackAr.cpp.
  const auto* te = templ("push", "memfunc");
  ASSERT_NE(te, nullptr);
  const auto* loc_file = pdb_->findSourceFile(te->location.file);
  ASSERT_NE(loc_file, nullptr);
  EXPECT_TRUE(loc_file->name.ends_with("StackAr.cpp"));
}

TEST_F(Figure3Test, StackIntInstantiation) {
  // Fig. 3 (12): cl#8 Stack<int>, ckind class, ctempl te#559, members.
  const auto* c = cls("Stack<int>");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, "class");
  ASSERT_TRUE(c->template_id.has_value());
  EXPECT_EQ(pdb_->findTemplate(*c->template_id)->name, "Stack");

  // cmem theArray (type vector<int>, priv) and topOfStack (int, priv).
  ASSERT_EQ(c->members.size(), 2u);
  EXPECT_EQ(c->members[0].name, "theArray");
  EXPECT_EQ(c->members[0].access, "priv");
  EXPECT_EQ(c->members[0].kind, "var");
  EXPECT_EQ(c->members[0].type.kind, pdb::ItemKind::Class);
  EXPECT_EQ(pdb_->findClass(c->members[0].type.id)->name, "vector<int>");
  EXPECT_EQ(c->members[1].name, "topOfStack");
  const auto* int_ty = pdb_->findType(c->members[1].type.id);
  ASSERT_NE(int_ty, nullptr);
  EXPECT_EQ(int_ty->kind, "int");

  // All eight member functions are declared (cfunc entries).
  EXPECT_EQ(c->funcs.size(), 8u);
}

TEST_F(Figure3Test, PushRoutine) {
  // Fig. 3 (9): ro#7 push — rclass cl#8, racs pub, rtempl te#566,
  // rcall isFull, signature void (const int &), positions in StackAr.cpp.
  const auto* c = cls("Stack<int>");
  const auto* push = routineIn(c, "push");
  ASSERT_NE(push, nullptr);
  EXPECT_EQ(push->access, "pub");
  EXPECT_EQ(push->linkage, "C++");
  EXPECT_EQ(push->virtuality, "no");
  EXPECT_TRUE(push->defined);

  ASSERT_TRUE(push->template_id.has_value());
  const auto* te = pdb_->findTemplate(*push->template_id);
  ASSERT_NE(te, nullptr);
  EXPECT_EQ(te->name, "push");
  EXPECT_EQ(te->kind, "memfunc");

  const auto* sig = pdb_->findType(push->signature);
  ASSERT_NE(sig, nullptr);
  EXPECT_EQ(sig->name, "void (const int &)");

  // push calls isFull (and operator[] on the vector, and Overflow's
  // implicit construction is not a recorded call since Overflow has no
  // user ctor). The isFull call must be present.
  const auto* is_full = routineIn(c, "isFull");
  ASSERT_NE(is_full, nullptr);
  bool calls_isfull = false;
  for (const auto& call : push->calls) calls_isfull |= call.routine == is_full->id;
  EXPECT_TRUE(calls_isfull);

  // rloc/rpos point into StackAr.cpp (the out-of-line definition).
  const auto* rloc_file = pdb_->findSourceFile(push->location.file);
  ASSERT_NE(rloc_file, nullptr);
  EXPECT_TRUE(rloc_file->name.ends_with("StackAr.cpp"));
}

TEST_F(Figure3Test, IsFullSignatureIsConstMember) {
  // Fig. 3 (17): ty#2054 "bool () const" — ykind func, yrett bool, const.
  const auto* c = cls("Stack<int>");
  const auto* is_full = routineIn(c, "isFull");
  ASSERT_NE(is_full, nullptr);
  const auto* sig = pdb_->findType(is_full->signature);
  ASSERT_NE(sig, nullptr);
  EXPECT_EQ(sig->name, "bool () const");
  EXPECT_EQ(sig->kind, "func");
  ASSERT_EQ(sig->qualifiers.size(), 1u);
  EXPECT_EQ(sig->qualifiers[0], "const");
  ASSERT_TRUE(sig->return_type.has_value());
  EXPECT_EQ(pdb_->findType(sig->return_type->id)->kind, "bool");
}

TEST_F(Figure3Test, ConstIntRefTypeChain) {
  // Fig. 3 (15)/(16): "const int &" = ref -> tref(const) -> int.
  const pdb::TypeItem* ref = nullptr;
  for (const auto& t : pdb_->types()) {
    if (t.name == "const int &") ref = &t;
  }
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->kind, "ref");
  const auto* tref = pdb_->findType(ref->ref->id);
  ASSERT_NE(tref, nullptr);
  EXPECT_EQ(tref->kind, "tref");
  ASSERT_FALSE(tref->qualifiers.empty());
  EXPECT_EQ(tref->qualifiers[0], "const");
}

TEST_F(Figure3Test, MainCallsStackMembers) {
  const pdb::RoutineItem* main_fn = nullptr;
  for (const auto& r : pdb_->routines()) {
    if (r.name == "main") main_fn = &r;
  }
  ASSERT_NE(main_fn, nullptr);
  const auto* c = cls("Stack<int>");
  const auto* push = routineIn(c, "push");
  const auto* is_empty = routineIn(c, "isEmpty");
  const auto* top_and_pop = routineIn(c, "topAndPop");
  const auto* ctor = routineIn(c, "Stack");
  ASSERT_NE(push, nullptr);
  ASSERT_NE(is_empty, nullptr);
  ASSERT_NE(top_and_pop, nullptr);
  ASSERT_NE(ctor, nullptr);
  bool calls_push = false, calls_isempty = false, calls_tap = false,
       calls_ctor = false;
  for (const auto& call : main_fn->calls) {
    calls_push |= call.routine == push->id;
    calls_isempty |= call.routine == is_empty->id;
    calls_tap |= call.routine == top_and_pop->id;
    calls_ctor |= call.routine == ctor->id;
  }
  EXPECT_TRUE(calls_push);
  EXPECT_TRUE(calls_isempty);
  EXPECT_TRUE(calls_tap);
  EXPECT_TRUE(calls_ctor);  // the lifetime of `Stack<int> s`
}

TEST_F(Figure3Test, UsedModeOmitsUnusedMemberBodies) {
  // makeEmpty and top are never used by TestStackAr.cpp: their
  // declarations exist but no body was instantiated (EDG used mode).
  const auto* c = cls("Stack<int>");
  const auto* make_empty = routineIn(c, "makeEmpty");
  ASSERT_NE(make_empty, nullptr);
  EXPECT_FALSE(make_empty->defined);
  const auto* push = routineIn(c, "push");
  ASSERT_NE(push, nullptr);
  EXPECT_TRUE(push->defined);
}

TEST_F(Figure3Test, VectorIntNestedInstantiation) {
  // vector<Object> inside Stack instantiates vector<int> transitively,
  // and the ctor-init `theArray(capacity)` uses vector's constructor.
  const auto* v = cls("vector<int>");
  ASSERT_NE(v, nullptr);
  ASSERT_TRUE(v->template_id.has_value());
  EXPECT_EQ(pdb_->findTemplate(*v->template_id)->name, "vector");

  const auto* c = cls("Stack<int>");
  const auto* stack_ctor = routineIn(c, "Stack");
  const auto* vector_ctor = routineIn(v, "vector");
  ASSERT_NE(stack_ctor, nullptr);
  ASSERT_NE(vector_ctor, nullptr);
  bool ctor_calls_vector_ctor = false;
  for (const auto& call : stack_ctor->calls)
    ctor_calls_vector_ctor |= call.routine == vector_ctor->id;
  EXPECT_TRUE(ctor_calls_vector_ctor);
}

TEST_F(Figure3Test, OperatorIndexResolvedInPush) {
  // theArray[++topOfStack] = x resolves to vector<int>::operator[].
  const auto* c = cls("Stack<int>");
  const auto* push = routineIn(c, "push");
  const auto* v = cls("vector<int>");
  const auto* op_index = routineIn(v, "operator[]");
  ASSERT_NE(push, nullptr);
  ASSERT_NE(op_index, nullptr);
  bool calls_index = false;
  for (const auto& call : push->calls) calls_index |= call.routine == op_index->id;
  EXPECT_TRUE(calls_index);
}

TEST_F(Figure3Test, MacroGuardsRecorded) {
  bool stackar_guard = false;
  for (const auto& m : pdb_->macros()) {
    stackar_guard |= m.name == "STACKAR_H" && m.kind == "def";
  }
  EXPECT_TRUE(stackar_guard);
}

TEST_F(Figure3Test, PdbRoundTripsThroughAscii) {
  const std::string text = pdb::writeToString(*pdb_);
  EXPECT_NE(text.find("Stack<int>"), std::string::npos);
  EXPECT_NE(text.find("tkind memfunc"), std::string::npos);
  pdb::ReadResult parsed = pdb::readFromString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  EXPECT_EQ(parsed.pdb.itemCount(), pdb_->itemCount());
}

}  // namespace
}  // namespace pdt
