// Determinism tests for the parallel compilation pipeline: a multi-TU
// compile at -j 4 and a tree-reduction pdbmerge must produce output that
// is byte-identical to the serial run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ductape/ductape.h"
#include "pdb/writer.h"
#include "pdt/pdt_paths.h"
#include "tools/driver.h"
#include "tools/tools.h"

namespace pdt {
namespace {

namespace fs = std::filesystem;

/// A scratch project of several TUs sharing the pooma_mini headers, so the
/// merged database contains duplicate template instantiations for the
/// merge to eliminate — the workload the paper's pdbmerge exists for.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pdt_par_det_" + std::to_string(::testing::UnitTest::GetInstance()
                                                ->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
    writeTU("tu_vectors.cpp", R"cpp(
#include "Array.h"
#include "BLAS1.h"
double useVectors() {
  Array<double> a(8);
  Array<double> b(8);
  a.fill(1.5);
  b.fill(2.5);
  axpy(2.0, a, b);
  return dot(a, b) + norm2(b);
}
)cpp");
    writeTU("tu_stencil.cpp", R"cpp(
#include "Array.h"
#include "Stencil.h"
double useStencil() {
  Array<double> grid(16);
  Array<double> out(16);
  grid.fill(0.5);
  Laplace1D<double> laplace(16);
  laplace.apply(grid, out);
  return out(8);
}
)cpp");
    writeTU("tu_solver.cpp", R"cpp(
#include "Array.h"
#include "CG.h"
int useSolver() {
  Array<float> x(4);
  Array<float> rhs(4);
  rhs.fill(1.0f);
  Laplace1D<float> laplace(4);
  CGSolver<float> solver(10, 0.001f);
  return solver.solve(laplace, x, rhs);
}
)cpp");
    writeTU("tu_mixed.cpp", R"cpp(
#include "Array.h"
#include "BLAS1.h"
template <class T>
T tripleDot(const Array<T>& a, const Array<T>& b) {
  return dot(a, b) + dot(b, a) + dot(a, a);
}
double useMixed() {
  Array<double> a(4);
  Array<double> b(4);
  a.fill(3.0);
  b.fill(4.0);
  return tripleDot(a, b);
}
)cpp");
    options_.frontend.include_dirs.push_back(std::string(paths::kInputDir) +
                                             "/pooma_mini");
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void writeTU(const std::string& name, const std::string& text) {
    const fs::path path = dir_ / name;
    std::ofstream os(path);
    os << text;
    inputs_.push_back(path.string());
  }

  fs::path dir_;
  std::vector<std::string> inputs_;
  tools::DriverOptions options_;
};

TEST_F(ParallelDeterminismTest, CompileAndMergeIsByteIdenticalAcrossJobs) {
  tools::DriverOptions serial = options_;
  serial.jobs = 1;
  const tools::DriverResult one = tools::compileAndMerge(inputs_, serial);
  ASSERT_TRUE(one.success) << one.diagnostics;

  tools::DriverOptions parallel = options_;
  parallel.jobs = 4;
  const tools::DriverResult four = tools::compileAndMerge(inputs_, parallel);
  ASSERT_TRUE(four.success) << four.diagnostics;

  EXPECT_EQ(one.diagnostics, four.diagnostics);
  const std::string serial_bytes = pdb::writeToString(one.pdb->raw());
  const std::string parallel_bytes = pdb::writeToString(four.pdb->raw());
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, parallel_bytes);
}

TEST_F(ParallelDeterminismTest, TreeReductionMergeMatchesLeftFold) {
  // Compile each TU to its own PDB, then merge the set serially (left
  // fold) and with the parallel tree reduction; the results must agree
  // byte for byte.
  tools::DriverOptions unit_options = options_;
  unit_options.jobs = 1;
  std::vector<ductape::PDB> fold_inputs;
  std::vector<ductape::PDB> tree_inputs;
  for (const std::string& input : inputs_) {
    // PDB is move-only, so compile each TU once per input set.
    tools::DriverResult fold_unit = tools::compileAndMerge({input}, unit_options);
    ASSERT_TRUE(fold_unit.success) << fold_unit.diagnostics;
    fold_inputs.push_back(std::move(*fold_unit.pdb));
    tools::DriverResult tree_unit = tools::compileAndMerge({input}, unit_options);
    ASSERT_TRUE(tree_unit.success) << tree_unit.diagnostics;
    tree_inputs.push_back(std::move(*tree_unit.pdb));
  }

  const ductape::PDB fold = tools::pdbmerge(std::move(fold_inputs), 1);
  const ductape::PDB tree = tools::pdbmerge(std::move(tree_inputs), 4);
  const std::string fold_bytes = pdb::writeToString(fold.raw());
  const std::string tree_bytes = pdb::writeToString(tree.raw());
  ASSERT_FALSE(fold_bytes.empty());
  EXPECT_EQ(fold_bytes, tree_bytes);
}

TEST_F(ParallelDeterminismTest, RepeatedParallelRunsAreStable) {
  // Two -j 4 runs over the same inputs must agree with each other: no
  // dependence on scheduling, interning order, or allocator state.
  tools::DriverOptions parallel = options_;
  parallel.jobs = 4;
  const tools::DriverResult first = tools::compileAndMerge(inputs_, parallel);
  ASSERT_TRUE(first.success) << first.diagnostics;
  const tools::DriverResult second = tools::compileAndMerge(inputs_, parallel);
  ASSERT_TRUE(second.success) << second.diagnostics;
  EXPECT_EQ(pdb::writeToString(first.pdb->raw()),
            pdb::writeToString(second.pdb->raw()));
}

}  // namespace
}  // namespace pdt
