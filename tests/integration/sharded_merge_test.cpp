// The external sharded merge must be invisible: whatever the job count
// and however small the memory budget (i.e. however many spill round
// trips happen), shardedMergeFiles produces a database byte-identical to
// the in-memory tools::pdbmerge over the same inputs, and its run-scoped
// spill directory is gone afterward — on failure too.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ductape/ductape.h"
#include "pdb/format.h"
#include "pdb/writer.h"
#include "tools/shard_merge.h"
#include "tools/synth.h"
#include "tools/tools.h"

namespace pdt::tools {
namespace {

namespace fs = std::filesystem;

class ShardedMergeTest : public ::testing::Test {
 protected:
  static constexpr int kUnits = 24;

  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pdt_shard_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
    for (int i = 0; i < kUnits; ++i) {
      const fs::path path = dir_ / ("tu" + std::to_string(i) + ".pdb");
      ASSERT_TRUE(pdb::writeFile(synthUnit(i), path.string(),
                                 pdb::Format::Binary));
      inputs_.push_back(path.string());
      total_input_bytes_ += fs::file_size(path);
    }
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// The in-memory merge's canonical serialization — the byte-identity
  /// reference for every sharded configuration.
  [[nodiscard]] std::string inMemoryAscii() const {
    std::vector<ductape::PDB> loaded;
    for (const std::string& path : inputs_) {
      loaded.push_back(ductape::PDB::read(path));
      EXPECT_TRUE(loaded.back().valid()) << loaded.back().errorMessage();
    }
    return pdb::writeToString(pdbmerge(std::move(loaded)).raw());
  }

  [[nodiscard]] std::string tempDir() const {
    return (dir_ / "merge.tmp").string();
  }

  fs::path dir_;
  std::vector<std::string> inputs_;
  std::uint64_t total_input_bytes_ = 0;
};

TEST_F(ShardedMergeTest, ByteIdenticalAcrossJobsAndBudgets) {
  const std::string reference = inMemoryAscii();
  // Budgets: unlimited, roomy, and one well below the total input size
  // (so partials must spill to stay under it).
  const std::uint64_t budgets[] = {0, total_input_bytes_ * 4,
                                   total_input_bytes_ / 6};
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{5}, std::size_t{8}}) {
    for (const std::uint64_t budget : budgets) {
      ShardedMergeOptions opts;
      opts.jobs = jobs;
      opts.mem_budget_bytes = budget;
      opts.temp_dir = tempDir();
      const ShardedMergeResult result = shardedMergeFiles(inputs_, opts);
      ASSERT_TRUE(result.ok())
          << "jobs=" << jobs << " budget=" << budget << ": "
          << (result.errors.empty() ? "?" : result.errors.front());
      EXPECT_EQ(pdb::writeToString(result.merged->raw()), reference)
          << "jobs=" << jobs << " budget=" << budget;
      EXPECT_EQ(result.stats.shards, std::min<std::uint64_t>(jobs, kUnits));
      EXPECT_FALSE(fs::exists(tempDir()))
          << "spill dir survived jobs=" << jobs << " budget=" << budget;
    }
  }
}

TEST_F(ShardedMergeTest, TinyBudgetForcesSpillsWithoutChangingBytes) {
  const std::string reference = inMemoryAscii();
  ShardedMergeOptions opts;
  opts.jobs = 2;
  // Each worker's slice is smaller than any two inputs combined, so
  // every shard fold has to spill repeatedly.
  opts.mem_budget_bytes = (total_input_bytes_ / kUnits) * 3;
  opts.temp_dir = tempDir();
  const ShardedMergeResult result = shardedMergeFiles(inputs_, opts);
  ASSERT_TRUE(result.ok())
      << (result.errors.empty() ? "?" : result.errors.front());
  EXPECT_GT(result.stats.spills, 0u);
  EXPECT_EQ(pdb::writeToString(result.merged->raw()), reference);
  EXPECT_FALSE(fs::exists(tempDir()));
}

TEST_F(ShardedMergeTest, UnlimitedBudgetNeverSpills) {
  ShardedMergeOptions opts;
  opts.jobs = 4;
  opts.temp_dir = tempDir();
  const ShardedMergeResult result = shardedMergeFiles(inputs_, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.stats.spills, 0u);
  EXPECT_FALSE(fs::exists(tempDir()));
}

TEST_F(ShardedMergeTest, BadInputIsReportedInOrderAndTempDirIsCleaned) {
  // Corrupt the middle input; keep a second, later bad input to check
  // the errors come back in input order even across shards.
  {
    std::ofstream os(inputs_[kUnits / 2], std::ios::binary | std::ios::trunc);
    os << "not a database";
  }
  {
    std::ofstream os(inputs_[kUnits - 1],
                     std::ios::binary | std::ios::trunc);
    os << "also not a database";
  }
  ShardedMergeOptions opts;
  opts.jobs = 3;
  opts.mem_budget_bytes = total_input_bytes_ / 6;  // spill dir gets created
  opts.temp_dir = tempDir();
  const ShardedMergeResult result = shardedMergeFiles(inputs_, opts);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.errors.size(), 2u);
  EXPECT_NE(result.errors[0].find("tu" + std::to_string(kUnits / 2)),
            std::string::npos)
      << result.errors[0];
  EXPECT_NE(result.errors[1].find("tu" + std::to_string(kUnits - 1)),
            std::string::npos)
      << result.errors[1];
  EXPECT_FALSE(fs::exists(tempDir())) << "spill dir survived failed merge";
}

}  // namespace
}  // namespace pdt::tools
