// Property-based sweeps over generated workloads (TEST_P): invariants
// that must hold for every input shape and size, not just the examples.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "ast/walk.h"
#include "bench/workloads.h"
#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/reader.h"
#include "pdb/writer.h"
#include "siloon/siloon.h"

namespace pdt {
namespace {

// ---------------------------------------------------------------------------
// Workload descriptors shared by the sweeps
// ---------------------------------------------------------------------------

struct Workload {
  const char* name;
  std::string (*make)(int);
  int size;
};

std::ostream& operator<<(std::ostream& os, const Workload& w) {
  return os << w.name << '/' << w.size;
}

const Workload kWorkloads[] = {
    {"plain", &bench::plainClasses, 3},
    {"plain", &bench::plainClasses, 25},
    {"templates", &bench::manyInstantiations, 3},
    {"templates", &bench::manyInstantiations, 25},
    {"nested", &bench::nestedInstantiation, 2},
    {"nested", &bench::nestedInstantiation, 12},
    {"chain", &bench::callChain, 5},
    {"chain", &bench::callChain, 60},
};

struct Compiled {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::CompileResult result;

  explicit Compiled(const std::string& src, bool used_mode = true) {
    frontend::FrontendOptions options;
    options.sema.used_mode = used_mode;
    frontend::Frontend fe(sm, diags, options);
    result = fe.compileSource("prop.cpp", src);
  }
};

// ---------------------------------------------------------------------------
// Frontend invariants
// ---------------------------------------------------------------------------

class FrontendProperty : public ::testing::TestWithParam<Workload> {};

TEST_P(FrontendProperty, CompilesWithoutErrors) {
  const Workload& w = GetParam();
  Compiled c(w.make(w.size));
  EXPECT_TRUE(c.result.success);
  EXPECT_EQ(c.diags.errorCount(), 0u);
}

TEST_P(FrontendProperty, EveryDeclHasConsistentParentLinks) {
  const Workload& w = GetParam();
  Compiled c(w.make(w.size));
  ast::walkDecls(c.result.ast->translationUnit(), [&](const ast::Decl* d) {
    if (d->parent() == nullptr) return;
    // If a decl claims a parent context, it must be among its children OR
    // be a pattern reachable only through its template (by design).
    const auto& siblings = d->parent()->children();
    const bool linked =
        std::find(siblings.begin(), siblings.end(), d) != siblings.end();
    const bool is_pattern_like =
        (d->as<ast::ClassDecl>() != nullptr &&
         d->as<ast::ClassDecl>()->describing_template != nullptr) ||
        (d->as<ast::FunctionDecl>() != nullptr &&
         d->as<ast::FunctionDecl>()->describing_template != nullptr);
    EXPECT_TRUE(linked || is_pattern_like) << d->name();
  });
}

TEST_P(FrontendProperty, ResolvedCallsTargetRealFunctions) {
  const Workload& w = GetParam();
  Compiled c(w.make(w.size));
  ast::walkDecls(c.result.ast->translationUnit(), [&](const ast::Decl* d) {
    const auto* fn = d->as<ast::FunctionDecl>();
    if (fn == nullptr || fn->body == nullptr) return;
    ast::walk(fn->body, [&](const ast::Stmt* s) {
      if (const auto* call = s->as<ast::CallExpr>()) {
        if (call->resolved != nullptr) {
          EXPECT_FALSE(call->resolved->name().empty());
        }
      }
    });
  });
}

TEST_P(FrontendProperty, UsedModeNeverInstantiatesMoreThanAll) {
  const Workload& w = GetParam();
  Compiled used(w.make(w.size), /*used_mode=*/true);
  Compiled all(w.make(w.size), /*used_mode=*/false);
  ASSERT_TRUE(used.result.success);
  ASSERT_TRUE(all.result.success);
  EXPECT_LE(used.result.sema->instantiatedBodyCount(),
            all.result.sema->instantiatedBodyCount());
}

INSTANTIATE_TEST_SUITE_P(Workloads, FrontendProperty,
                         ::testing::ValuesIn(kWorkloads));

// ---------------------------------------------------------------------------
// PDB round-trip invariants
// ---------------------------------------------------------------------------

class PdbRoundTripProperty : public ::testing::TestWithParam<Workload> {};

TEST_P(PdbRoundTripProperty, WriteReadWriteIsStable) {
  const Workload& w = GetParam();
  Compiled c(w.make(w.size));
  ASSERT_TRUE(c.result.success);
  const auto pdb = ilanalyzer::analyze(c.result, c.sm);
  const std::string once = pdb::writeToString(pdb);
  auto parsed = pdb::readFromString(once);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  EXPECT_EQ(parsed.pdb.itemCount(), pdb.itemCount());
  const std::string twice = pdb::writeToString(parsed.pdb);
  EXPECT_EQ(once, twice);
}

TEST_P(PdbRoundTripProperty, AllReferencesResolve) {
  const Workload& w = GetParam();
  Compiled c(w.make(w.size));
  ASSERT_TRUE(c.result.success);
  auto pdb = ilanalyzer::analyze(c.result, c.sm);
  const auto check = [&](const pdb::ItemRef& ref) {
    if (!ref.valid()) return;
    switch (ref.kind) {
      case pdb::ItemKind::Type:
        EXPECT_NE(pdb.findType(ref.id), nullptr) << ref.str();
        break;
      case pdb::ItemKind::Class:
        EXPECT_NE(pdb.findClass(ref.id), nullptr) << ref.str();
        break;
      case pdb::ItemKind::Routine:
        EXPECT_NE(pdb.findRoutine(ref.id), nullptr) << ref.str();
        break;
      default:
        break;
    }
  };
  for (const auto& r : pdb.routines()) {
    if (r.parent) check(*r.parent);
    for (const auto& call : r.calls)
      EXPECT_NE(pdb.findRoutine(call.routine), nullptr);
    if (r.signature != 0) {
      EXPECT_NE(pdb.findType(r.signature), nullptr);
    }
  }
  for (const auto& cls : pdb.classes()) {
    for (const auto& b : cls.bases) EXPECT_NE(pdb.findClass(b.cls), nullptr);
    for (const auto& mf : cls.funcs)
      EXPECT_NE(pdb.findRoutine(mf.routine), nullptr);
    for (const auto& m : cls.members) check(m.type);
    if (cls.template_id) {
      EXPECT_NE(pdb.findTemplate(*cls.template_id), nullptr);
    }
  }
  for (const auto& t : pdb.types()) {
    if (t.ref) check(*t.ref);
    if (t.return_type) check(*t.return_type);
    for (const auto& p : t.params) check(p);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, PdbRoundTripProperty,
                         ::testing::ValuesIn(kWorkloads));

// ---------------------------------------------------------------------------
// Merge invariants
// ---------------------------------------------------------------------------

class MergeProperty : public ::testing::TestWithParam<Workload> {};

TEST_P(MergeProperty, SelfMergeIsIdempotent) {
  const Workload& w = GetParam();
  Compiled c(w.make(w.size));
  ASSERT_TRUE(c.result.success);
  const auto raw = ilanalyzer::analyze(c.result, c.sm);
  auto a = ductape::PDB::fromPdbFile(raw);
  const auto b = ductape::PDB::fromPdbFile(raw);
  const std::size_t before = a.getItemVec().size();
  a.merge(b);
  EXPECT_EQ(a.getItemVec().size(), before);
  a.merge(b);  // and again
  EXPECT_EQ(a.getItemVec().size(), before);
}

TEST_P(MergeProperty, MergedDatabaseStillRoundTrips) {
  const Workload& w = GetParam();
  Compiled c1(w.make(w.size));
  Compiled c2(bench::plainClasses(4));
  auto a = ductape::PDB::fromPdbFile(ilanalyzer::analyze(c1.result, c1.sm));
  const auto b = ductape::PDB::fromPdbFile(ilanalyzer::analyze(c2.result, c2.sm));
  a.merge(b);
  const std::string text = pdb::writeToString(a.raw());
  auto parsed = pdb::readFromString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  EXPECT_EQ(parsed.pdb.itemCount(), a.raw().itemCount());
}

INSTANTIATE_TEST_SUITE_P(Workloads, MergeProperty,
                         ::testing::ValuesIn(kWorkloads));

// ---------------------------------------------------------------------------
// Instantiation-count sweep
// ---------------------------------------------------------------------------

class InstantiationCount : public ::testing::TestWithParam<int> {};

TEST_P(InstantiationCount, ExactlyNDistinctInstantiations) {
  const int n = GetParam();
  Compiled c(bench::manyInstantiations(n));
  ASSERT_TRUE(c.result.success);
  const ast::TemplateDecl* box = nullptr;
  ast::walkDecls(c.result.ast->translationUnit(), [&](const ast::Decl* d) {
    if (box != nullptr || d->name() != "Box") return;
    if (const auto* td = d->as<ast::TemplateDecl>()) {
      if (td->tkind == ast::TemplateKind::Class) box = td;
    }
  });
  ASSERT_NE(box, nullptr);
  EXPECT_EQ(box->instantiations.size(), static_cast<std::size_t>(n));
  // All argument lists distinct.
  std::set<std::string> seen;
  for (const auto& inst : box->instantiations) {
    EXPECT_TRUE(seen.insert(inst.args[0]->spelling()).second);
  }
}

TEST_P(InstantiationCount, PdbHasOneClassItemPerInstantiation) {
  const int n = GetParam();
  Compiled c(bench::manyInstantiations(n));
  auto pdb = ilanalyzer::analyze(c.result, c.sm);
  int boxes = 0;
  for (const auto& cls : pdb.classes()) {
    boxes += cls.name.rfind("Box<", 0) == 0;
  }
  EXPECT_EQ(boxes, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, InstantiationCount,
                         ::testing::Values(1, 2, 5, 17, 64));

// ---------------------------------------------------------------------------
// Nesting-depth sweep
// ---------------------------------------------------------------------------

class NestingDepth : public ::testing::TestWithParam<int> {};

TEST_P(NestingDepth, DepthDProducesDInstantiations) {
  const int d = GetParam();
  Compiled c(bench::nestedInstantiation(d));
  ASSERT_TRUE(c.result.success);
  auto pdb = ilanalyzer::analyze(c.result, c.sm);
  int boxes = 0;
  for (const auto& cls : pdb.classes()) {
    boxes += cls.name.rfind("Box<", 0) == 0;
  }
  EXPECT_EQ(boxes, d);
}

INSTANTIATE_TEST_SUITE_P(Depths, NestingDepth,
                         ::testing::Values(1, 2, 3, 8, 24));

// ---------------------------------------------------------------------------
// Mangling properties
// ---------------------------------------------------------------------------

class MangleProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(MangleProperty, OutputIsScriptSafe) {
  const std::string m = siloon::mangle(GetParam());
  ASSERT_FALSE(m.empty());
  for (const char c : m) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_');
  }
}

TEST_P(MangleProperty, Deterministic) {
  EXPECT_EQ(siloon::mangle(GetParam()), siloon::mangle(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Names, MangleProperty,
    ::testing::Values("Stack<int>", "Map<int, Stack<double> >",
                      "ns::Klass::operator[]", "operator<<", "~Dtor",
                      "f(int, char*)", "A<B<C<D> > >", "x", "operator()"));

}  // namespace
}  // namespace pdt
