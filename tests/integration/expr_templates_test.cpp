// Expression-template stress (inputs/expr_mini): the POOMA idiom of
// whole-field arithmetic building nested template expression types.
// This is the hardest template shape the paper's toolchain must survive.
#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdt/pdt_paths.h"
#include "tau/instrumentor.h"

namespace pdt {
namespace {

class ExprTemplatesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sm_ = new SourceManager();
    diags_ = new DiagnosticEngine();
    frontend::FrontendOptions options;
    options.include_dirs.push_back(std::string(paths::kRuntimeDir) + "/pdt_stl");
    options.include_dirs.push_back(std::string(paths::kInputDir) + "/expr_mini");
    frontend::Frontend fe(*sm_, *diags_, options);
    result_ = new frontend::CompileResult(fe.compileFile(
        std::string(paths::kInputDir) + "/expr_mini/et_demo.cpp"));
    pdb_ = new pdb::PdbFile(ilanalyzer::analyze(*result_, *sm_));
  }
  static void TearDownTestSuite() {
    delete pdb_;
    delete result_;
    delete diags_;
    delete sm_;
  }

  static const pdb::ClassItem* cls(std::string_view name) {
    for (const auto& c : pdb_->classes()) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }

  static SourceManager* sm_;
  static DiagnosticEngine* diags_;
  static frontend::CompileResult* result_;
  static pdb::PdbFile* pdb_;
};

SourceManager* ExprTemplatesTest::sm_ = nullptr;
DiagnosticEngine* ExprTemplatesTest::diags_ = nullptr;
frontend::CompileResult* ExprTemplatesTest::result_ = nullptr;
pdb::PdbFile* ExprTemplatesTest::pdb_ = nullptr;

TEST_F(ExprTemplatesTest, CompilesCleanly) {
  EXPECT_TRUE(result_->success);
}

TEST_F(ExprTemplatesTest, NestedExpressionTypesInstantiated) {
  // r = a + b * 0.5 + a * b builds this exact type tree.
  EXPECT_NE(cls("MulExpr<Field, Scalar>"), nullptr);
  EXPECT_NE(cls("AddExpr<Field, MulExpr<Field, Scalar> >"), nullptr);
  EXPECT_NE(cls("MulExpr<Field, Field>"), nullptr);
  EXPECT_NE(
      cls("AddExpr<AddExpr<Field, MulExpr<Field, Scalar> >, MulExpr<Field, Field> >"),
      nullptr);
}

TEST_F(ExprTemplatesTest, InstantiationsCarryTemplateOrigin) {
  const auto* top = cls(
      "AddExpr<AddExpr<Field, MulExpr<Field, Scalar> >, MulExpr<Field, Field> >");
  ASSERT_NE(top, nullptr);
  ASSERT_TRUE(top->template_id.has_value());
  EXPECT_EQ(pdb_->findTemplate(*top->template_id)->name, "AddExpr");
}

TEST_F(ExprTemplatesTest, OperatorTemplatesInstantiatedPerShape) {
  // operator+ instantiates once per distinct (L, R) pair.
  int plus_instantiations = 0;
  for (const auto& r : pdb_->routines()) {
    if (r.name == "operator+" && r.template_id.has_value())
      ++plus_instantiations;
  }
  EXPECT_EQ(plus_instantiations, 2);  // Field+Mul..., Add...+Mul...
}

TEST_F(ExprTemplatesTest, UsedModeEvalChain) {
  // assign<TopExpr> pulls eval() down the whole expression tree: every
  // nested expression class has its eval body instantiated, and nothing
  // else needs it.
  const auto* mul = cls("MulExpr<Field, Field>");
  ASSERT_NE(mul, nullptr);
  bool eval_defined = false;
  for (const auto& mf : mul->funcs) {
    const auto* r = pdb_->findRoutine(mf.routine);
    if (r != nullptr && r->name == "eval") eval_defined = r->defined;
  }
  EXPECT_TRUE(eval_defined);
}

TEST_F(ExprTemplatesTest, InstrumentorNamesNestedInstantiations) {
  // The TAU plan covers the template bodies once (shared by all
  // instantiations), with CT(*this) for the member bodies.
  const auto pdb = ductape::PDB::fromPdbFile(*pdb_);
  const auto plan = tau::planInstrumentation(pdb, "ET.h");
  bool eval_with_ct = false;
  for (const auto& ref : plan) {
    if (ref.item->name() == "eval") eval_with_ct |= !ref.no_this;
  }
  EXPECT_TRUE(eval_with_ct);
}

}  // namespace
}  // namespace pdt
