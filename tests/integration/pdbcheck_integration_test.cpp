// pdbcheck integration tests: the whole-program analyzer over merged
// multi-TU databases built from the real pooma_mini/krylov inputs.
//
//  - a clean merged program produces zero findings (no false positives),
//  - seeded true positives (a known-dead routine, a known include cycle)
//    are found,
//  - -j N output is byte-identical to -j 1,
//  - the installed pdbcheck/pdbmerge binaries reject databases with
//    dangling item references with a clear message and non-zero exit.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "ductape/ductape.h"
#include "pdb/writer.h"
#include "pdt/pdt_paths.h"
#include "tools/driver.h"
#include "tools/tools.h"

namespace pdt {
namespace {

namespace fs = std::filesystem;

class PdbcheckIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pdt_pdbcheck_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
    options_.frontend.include_dirs.push_back(std::string(paths::kInputDir) +
                                             "/pooma_mini");
    options_.frontend.include_dirs.push_back(std::string(paths::kRuntimeDir) +
                                             "/pdt_stl");
    options_.frontend.include_dirs.push_back(dir_.string());
    krylov_ = std::string(paths::kInputDir) + "/pooma_mini/krylov.cpp";
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string writeFile(const std::string& name, const std::string& text) {
    const fs::path path = dir_ / name;
    std::ofstream os(path);
    os << text;
    return path.string();
  }

  /// Compiles and merges `inputs`, failing the test on any diagnostic.
  ductape::PDB compile(const std::vector<std::string>& inputs) {
    tools::DriverResult result = tools::compileAndMerge(inputs, options_);
    EXPECT_TRUE(result.success) << result.diagnostics;
    return std::move(*result.pdb);
  }

  /// A TU with two seeded defects: orphanHelper is called by nobody, and
  /// ring_a.h/ring_b.h include each other.
  std::string writeSeededTU() {
    writeFile("ring_a.h",
              "#pragma once\n#include \"ring_b.h\"\nextern \"C\" int ringEntry();\n");
    writeFile("ring_b.h",
              "#pragma once\n#include \"ring_a.h\"\nint ringSpoke();\n");
    // ringEntry is extern "C" — part of the exported surface, so it is a
    // reachability root and NOT dead; orphanHelper is the one dead routine.
    return writeFile("seeded.cpp", R"cpp(
#include "ring_a.h"
extern "C" int ringEntry() { return 1; }
int orphanHelper(int v) { return v * 2; }
)cpp");
  }

  int runBinary(const std::string& tool, const std::string& args,
                std::string* output = nullptr) {
    const fs::path out = dir_ / (tool + ".out");
    const std::string cmd = std::string(paths::kBinaryDir) + "/src/tools/" +
                            tool + " " + args + " > " + out.string() + " 2>&1";
    const int status = std::system(cmd.c_str());
    if (output != nullptr) {
      std::ifstream is(out);
      std::stringstream ss;
      ss << is.rdbuf();
      *output = ss.str();
    }
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  fs::path dir_;
  std::string krylov_;
  tools::DriverOptions options_;
};

TEST_F(PdbcheckIntegrationTest, CleanMergedProgramHasNoFindings) {
  // The pooma_mini conjugate-gradient program is correct code: every
  // routine is reachable from main, every include is used, there are no
  // cycles. Anything pdbcheck reports here is a false positive.
  const ductape::PDB pdb = compile({krylov_});
  const analysis::CheckResult result = analysis::runChecks(pdb, {});
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.errors, 0);
  EXPECT_EQ(result.warnings, 0) << [&] {
    std::ostringstream os;
    analysis::renderText(result, os);
    return os.str();
  }();
  EXPECT_FALSE(result.hasFindings());
}

TEST_F(PdbcheckIntegrationTest, SeededDefectsAreFoundWithoutFalsePositives) {
  const ductape::PDB pdb = compile({krylov_, writeSeededTU()});
  const analysis::CheckResult result = analysis::runChecks(pdb, {});
  ASSERT_TRUE(result.ok()) << result.error;

  bool found_dead = false;
  bool found_cycle = false;
  for (const analysis::Diag& d : result.diags) {
    if (d.severity != analysis::Severity::Warning) continue;
    if (d.message.find("'orphanHelper' is unreachable") != std::string::npos) {
      found_dead = true;
    } else if (d.message.find("include cycle") != std::string::npos &&
               d.message.find("ring_a.h") != std::string::npos &&
               d.message.find("ring_b.h") != std::string::npos) {
      found_cycle = true;
    } else {
      ADD_FAILURE() << "false positive: " << d.message;
    }
  }
  EXPECT_TRUE(found_dead);
  EXPECT_TRUE(found_cycle);
}

TEST_F(PdbcheckIntegrationTest, ParallelRuleRunsAreByteIdentical) {
  const ductape::PDB pdb = compile({krylov_, writeSeededTU()});
  analysis::CheckOptions serial;
  analysis::CheckOptions parallel;
  parallel.jobs = 4;
  for (const auto format : {analysis::CheckOptions::Format::Text,
                            analysis::CheckOptions::Format::Json}) {
    serial.format = parallel.format = format;
    std::ostringstream one, four;
    analysis::render(analysis::runChecks(pdb, serial), serial, one);
    analysis::render(analysis::runChecks(pdb, parallel), parallel, four);
    ASSERT_FALSE(one.str().empty());
    EXPECT_EQ(one.str(), four.str());
  }
}

TEST_F(PdbcheckIntegrationTest, BinaryExitCodesAndCorruptInputRejection) {
  // Build one clean and one corrupt database on disk.
  const ductape::PDB pdb = compile({krylov_});
  const std::string clean = (dir_ / "clean.pdb").string();
  ASSERT_TRUE(pdb.write(clean));

  pdb::PdbFile corrupt_raw = pdb.raw();
  ASSERT_FALSE(corrupt_raw.routines().empty());
  pdb::RoutineItem::Call dangling;
  dangling.routine = 424242;
  corrupt_raw.routines()[0].calls.push_back(dangling);
  const std::string corrupt = writeFile("corrupt.pdb",
                                        pdb::writeToString(corrupt_raw));

  std::string output;
  // Clean program: exit 0.
  EXPECT_EQ(runBinary("pdbcheck", clean, &output), 0) << output;
  // Corrupt input: exit 3 with a clear refusal naming the dangling id.
  EXPECT_EQ(runBinary("pdbcheck", corrupt, &output), 3);
  EXPECT_NE(output.find("undefined ro#424242"), std::string::npos) << output;
  EXPECT_NE(output.find("refusing to analyze"), std::string::npos) << output;
  // Usage error: exit 2.
  EXPECT_EQ(runBinary("pdbcheck", "--no-such-flag", &output), 2);
  // pdbmerge refuses the same corrupt database non-zero (satellite of the
  // same referential-integrity guarantee).
  const std::string merged = (dir_ / "merged.pdb").string();
  EXPECT_EQ(runBinary("pdbmerge", corrupt + " " + clean + " -o " + merged,
                      &output),
            1);
  EXPECT_NE(output.find("refusing to merge"), std::string::npos) << output;
  EXPECT_FALSE(fs::exists(merged));
}

TEST_F(PdbcheckIntegrationTest, BinaryFindingsExitOneWithSortedOutput) {
  const ductape::PDB pdb = compile({krylov_, writeSeededTU()});
  const std::string seeded = (dir_ / "seeded.pdb").string();
  ASSERT_TRUE(pdb.write(seeded));

  std::string one, four;
  EXPECT_EQ(runBinary("pdbcheck", seeded + " -j 1", &one), 1);
  EXPECT_EQ(runBinary("pdbcheck", seeded + " -j 4", &four), 1);
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("[dead-code]"), std::string::npos) << one;
  EXPECT_NE(one.find("[include-graph]"), std::string::npos) << one;

  std::string json;
  EXPECT_EQ(runBinary("pdbcheck", seeded + " --format=json", &json), 1);
  EXPECT_NE(json.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(json.find("\"ruleId\": \"dead-code\""), std::string::npos);
}

}  // namespace
}  // namespace pdt
