// SILOON tests: name mangling, bridge/wrapper generation for the C++
// feature list of paper §4.2, and the end-to-end loop of compiling the
// generated bridge with the system compiler and driving the registered
// routines through the dispatch table.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "siloon/siloon.h"

namespace pdt::siloon {
namespace {

using ductape::PDB;

PDB compileToPdb(const std::string& name, const std::string& source) {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource(name, source);
  return PDB::fromPdbFile(ilanalyzer::analyze(result, sm));
}

// ---------------------------------------------------------------------------
// Mangling
// ---------------------------------------------------------------------------

TEST(Mangle, PlainNamesUnchanged) {
  EXPECT_EQ(mangle("Point"), "Point");
  EXPECT_EQ(mangle("push_back2"), "push_back2");
}

TEST(Mangle, TemplateNames) {
  EXPECT_EQ(mangle("Stack<int>"), "Stack_lt_int_gt_");
  EXPECT_EQ(mangle("Map<int, double>"), "Map_lt_int_cm_double_gt_");
}

TEST(Mangle, QualifiedNames) {
  EXPECT_EQ(mangle("Stack<int>::push"), "Stack_lt_int_gt__cn_push");
}

TEST(Mangle, OperatorNames) {
  EXPECT_EQ(mangle("operator[]"), "op_index");
  EXPECT_EQ(mangle("operator=="), "op_eq");
  EXPECT_EQ(mangle("operator<<"), "op_lshift");
  EXPECT_EQ(mangle("operator()"), "op_call");
}

TEST(Mangle, PointersAndReferences) {
  EXPECT_EQ(mangle("const char *"), "constchar_ptr_");
  EXPECT_EQ(mangle("int &"), "int_am_");
}

TEST(Mangle, ResultIsValidIdentifier) {
  for (const char* name :
       {"Stack<vector<int> >", "a::b::c<d*, e&>", "operator+=", "~Foo"}) {
    const std::string m = mangle(name);
    ASSERT_FALSE(m.empty());
    for (const char c : m) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_')
          << name << " -> " << m;
    }
  }
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

constexpr const char* kLibrary = R"(
class Point {
public:
    Point(int x, int y) : x_(x), y_(y) {}
    ~Point() {}
    int getX() const { return x_; }
    int getY() const { return y_; }
    void move(int dx, int dy) { x_ = x_ + dx; y_ = y_ + dy; }
    static int dimensions() { return 2; }
    bool operator==(const Point& other) const {
        return x_ == other.x_ && y_ == other.y_;
    }
private:
    int x_;
    int y_;
};

template <class T>
class Pair {
public:
    Pair(const T& a, const T& b) : first(a), second(b) {}
    T sum() const { return first + second; }
    T first;
    T second;
};

inline int distance2(const Point& a, const Point& b) {
    return 0;
}

inline void touch() {
    Pair<int> p(1, 2);
    p.sum();
}
)";

TEST(Generate, BridgesConstructorsAndDestructors) {
  const PDB pdb = compileToPdb("lib.cpp", kLibrary);
  const Bindings b = generate(pdb);
  EXPECT_NE(b.bridge_code.find("return new Point(a0, a1);"), std::string::npos);
  EXPECT_NE(b.bridge_code.find("delete static_cast<Point*>(self);"),
            std::string::npos);
  EXPECT_NE(b.bridge_header.find("void* siloon_new_Point(int a0, int a1);"),
            std::string::npos);
}

TEST(Generate, BridgesMemberAndStaticFunctions) {
  const PDB pdb = compileToPdb("lib.cpp", kLibrary);
  const Bindings b = generate(pdb);
  // Member: via self pointer.
  EXPECT_NE(b.bridge_code.find("static_cast<Point*>(self)->move(a0, a1)"),
            std::string::npos);
  // Static: direct qualified call, no self.
  EXPECT_NE(b.bridge_code.find("Point::dimensions()"), std::string::npos);
  EXPECT_NE(b.bridge_header.find("int siloon_Point_dimensions();"),
            std::string::npos);
}

TEST(Generate, BridgesInstantiatedTemplates) {
  // Paper §4.2: only explicitly instantiated templates are exported.
  const PDB pdb = compileToPdb("lib.cpp", kLibrary);
  const Bindings b = generate(pdb);
  EXPECT_NE(b.bridge_code.find("new Pair<int>(a0, a1)"), std::string::npos);
  EXPECT_NE(b.bridge_code.find("static_cast<Pair<int>*>(self)->sum()"),
            std::string::npos);
  // The mangled name is script-safe.
  EXPECT_NE(b.python_code.find("class Pair_lt_int_gt_:"), std::string::npos);
}

TEST(Generate, BridgesOperatorsWithMangledNames) {
  const PDB pdb = compileToPdb("lib.cpp", kLibrary);
  const Bindings b = generate(pdb);
  EXPECT_NE(b.bridge_code.find("->operator==("), std::string::npos);
  bool registered_op = false;
  for (const RegisteredRoutine& r : b.registered) {
    registered_op |= r.script_name.find("op_eq") != std::string::npos;
  }
  EXPECT_TRUE(registered_op);
}

TEST(Generate, BridgesFreeFunctions) {
  const PDB pdb = compileToPdb("lib.cpp", kLibrary);
  const Bindings b = generate(pdb);
  EXPECT_NE(b.bridge_code.find("distance2(a0, a1)"), std::string::npos);
}

TEST(Generate, RegistryListsAllRoutines) {
  const PDB pdb = compileToPdb("lib.cpp", kLibrary);
  const Bindings b = generate(pdb);
  EXPECT_GE(b.registered.size(), 8u);
  EXPECT_NE(b.bridge_code.find("siloon_registry(int* count)"), std::string::npos);
  for (const RegisteredRoutine& r : b.registered) {
    EXPECT_NE(b.bridge_code.find(r.bridge_symbol), std::string::npos);
  }
}

TEST(Generate, PythonWrappersAreNatural) {
  const PDB pdb = compileToPdb("lib.cpp", kLibrary);
  const Bindings b = generate(pdb);
  EXPECT_NE(b.python_code.find("class Point:"), std::string::npos);
  EXPECT_NE(b.python_code.find("def __init__(self, *args):"), std::string::npos);
  EXPECT_NE(b.python_code.find("def __del__(self):"), std::string::npos);
  EXPECT_NE(b.python_code.find("def move(self, *args):"), std::string::npos);
}

TEST(Generate, ClassRestriction) {
  const PDB pdb = compileToPdb("lib.cpp", kLibrary);
  GeneratorOptions options;
  options.classes.push_back("Point");
  const Bindings b = generate(pdb, options);
  EXPECT_NE(b.python_code.find("class Point:"), std::string::npos);
  EXPECT_EQ(b.python_code.find("class Pair"), std::string::npos);
}

TEST(Generate, OverloadsGetDistinctSymbols) {
  const PDB pdb = compileToPdb("ovl.cpp", R"(
class Calc {
public:
    int add(int a) { return a; }
    int add(int a, int b) { return a + b; }
};
)");
  const Bindings b = generate(pdb);
  int add_bindings = 0;
  std::unordered_set<std::string> symbols;
  for (const RegisteredRoutine& r : b.registered) {
    if (r.cxx_name == "Calc::add") {
      ++add_bindings;
      EXPECT_TRUE(symbols.insert(r.bridge_symbol).second)
          << "duplicate symbol " << r.bridge_symbol;
    }
  }
  EXPECT_EQ(add_bindings, 2);
}

// ---------------------------------------------------------------------------
// End to end: compile the generated bridge with g++ and drive routines
// through the registration table (replacing the scripting interpreter
// with a C++ harness, DESIGN.md substitution table).
// ---------------------------------------------------------------------------

TEST(Generate, EndToEndBridgeCompilesAndRuns) {
  const PDB pdb = compileToPdb("pointlib.cpp", kLibrary);
  GeneratorOptions options;
  options.module_name = "demo";
  options.library_headers.push_back("pointlib.h");
  const Bindings b = generate(pdb, options);

  const std::string work = ::testing::TempDir() + "/pdt_siloon_e2e";
  std::system(("rm -rf '" + work + "' && mkdir -p '" + work + "'").c_str());
  const auto emit = [&](const std::string& name, const std::string& text) {
    std::ofstream out(work + "/" + name);
    out << text;
  };
  emit("pointlib.h", kLibrary);
  emit("demo_bridge.h", b.bridge_header);
  emit("demo_bridge.cpp", b.bridge_code);
  emit("driver.cpp", R"(
#include "demo_bridge.h"
#include <cstdio>
#include <cstring>

// A stand-in for the scripting interpreter: looks up routines in the
// SILOON registry and calls them through their bridge pointers.
void* lookup(const char* script_name) {
    int count = 0;
    const demo_entry* entries = demo_registry(&count);
    for (int i = 0; i < count; ++i) {
        if (std::strcmp(entries[i].script_name, script_name) == 0)
            return entries[i].fnptr;
    }
    return nullptr;
}

int main() {
    using NewPoint = void* (*)(int, int);
    using GetX = int (*)(void*);
    using Move = void (*)(void*, int, int);
    using Del = void (*)(void*);
    using PairNew = void* (*)(const int&, const int&);
    using PairSum = int (*)(void*);

    auto* new_point = reinterpret_cast<NewPoint>(lookup("Point_cn_Point"));
    auto* get_x = reinterpret_cast<GetX>(lookup("Point_getX"));
    auto* move = reinterpret_cast<Move>(lookup("Point_move"));
    auto* del = reinterpret_cast<Del>(lookup("Point_delete"));
    if (!new_point || !get_x || !move || !del) { std::puts("LOOKUP FAIL"); return 1; }

    void* p = new_point(3, 4);
    move(p, 10, 0);
    std::printf("x=%d\n", get_x(p));
    del(p);

    auto* pair_new = reinterpret_cast<PairNew>(
        lookup("Pair_lt_int_gt__cn_Pair_lt_int_gt_"));
    auto* pair_sum = reinterpret_cast<PairSum>(lookup("Pair_lt_int_gt__sum"));
    if (!pair_new || !pair_sum) { std::puts("TEMPLATE LOOKUP FAIL"); return 1; }
    int a = 20, bb = 22;
    void* pr = pair_new(a, bb);
    std::printf("sum=%d\n", pair_sum(pr));
    return 0;
}
)");

  const std::string compile = "g++ -std=c++17 -I '" + work + "' '" + work +
                              "/demo_bridge.cpp' '" + work +
                              "/driver.cpp' -o '" + work + "/driver' 2> '" +
                              work + "/compile.log'";
  std::ifstream log_check;
  ASSERT_EQ(std::system(compile.c_str()), 0) << [&] {
    std::ifstream in(work + "/compile.log");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }();

  const std::string run =
      "'" + work + "/driver' > '" + work + "/run.log' 2>&1";
  ASSERT_EQ(std::system(run.c_str()), 0);
  std::ifstream in(work + "/run.log");
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("x=13"), std::string::npos) << ss.str();
  EXPECT_NE(ss.str().find("sum=42"), std::string::npos) << ss.str();
}

}  // namespace
}  // namespace pdt::siloon

namespace pdt::siloon {
namespace {

// ---------------------------------------------------------------------------
// The paper's §4.2 extension: the template list and auto-instantiation.
// ---------------------------------------------------------------------------

TEST(TemplateList, ListsInstantiatedAndUninstantiated) {
  const PDB pdb = compileToPdb("tl.cpp", R"(
template <class T> class Used { public: T v; };
template <class T> class Unused { public: T v; };
template <class T> T pick(T a) { return a; }
Used<int> u;
)");
  const auto listing = listTemplates(pdb);
  const TemplateListing* used = nullptr;
  const TemplateListing* unused = nullptr;
  const TemplateListing* pick = nullptr;
  for (const auto& t : listing) {
    if (t.name == "Used") used = &t;
    if (t.name == "Unused") unused = &t;
    if (t.name == "pick") pick = &t;
  }
  ASSERT_NE(used, nullptr);
  EXPECT_TRUE(used->instantiated);
  ASSERT_EQ(used->instantiations.size(), 1u);
  EXPECT_EQ(used->instantiations[0], "Used<int>");
  ASSERT_NE(unused, nullptr);
  EXPECT_FALSE(unused->instantiated);
  ASSERT_NE(pick, nullptr);
  EXPECT_EQ(pick->kind, "func");
  EXPECT_FALSE(pick->instantiated);
}

TEST(TemplateList, GeneratesExplicitInstantiations) {
  const std::string code = generateInstantiations(
      {{"Unused", "int"}, {"Unused", "double"}, {"Stack", "float"}});
  EXPECT_NE(code.find("template class Unused<int>;"), std::string::npos);
  EXPECT_NE(code.find("template class Unused<double>;"), std::string::npos);
  EXPECT_NE(code.find("template class Stack<float>;"), std::string::npos);
}

TEST(TemplateList, GeneratedInstantiationsCloseTheLoop) {
  // Generate instantiation directives for an uninstantiated template,
  // feed them back through PDT, and confirm SILOON can now export it —
  // exactly the workflow the paper sketches.
  const char* library =
      "template <class T> class Lazy { public: T get() { return v; } T v; };\n";
  const PDB before = compileToPdb("lazy.cpp", library);
  EXPECT_EQ(before.getClassVec().size(), 0u);

  const std::string directives = generateInstantiations({{"Lazy", "int"}});
  const PDB after = compileToPdb("lazy2.cpp", std::string(library) + directives);
  bool exported = false;
  for (const auto& r : generate(after).registered) {
    exported |= r.cxx_name.find("Lazy<int>") != std::string::npos;
  }
  EXPECT_TRUE(exported);
}

}  // namespace
}  // namespace pdt::siloon
