// Unit tests for the compilation pipeline's thread pool: result delivery
// in caller-chosen order, exception propagation through futures, and pool
// reuse after a full drain.
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace pdt {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  auto f = pool.submit([] { return std::string("still works"); });
  EXPECT_EQ(f.get(), "still works");
}

TEST(ThreadPool, ResultsFollowSubmissionOrderViaFutures) {
  // Run order is unspecified; what matters is that collecting futures in
  // submission order yields results in submission order — the property
  // cxxparse -j relies on for byte-identical output.
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(64);
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 1; });
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must survive it.
  auto after = pool.submit([] { return 2; });
  EXPECT_EQ(after.get(), 2);
}

TEST(ThreadPool, ReusableAfterDrain) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.submit([&sum] { sum.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(sum.load(), (batch + 1) * 16);
  }
}

TEST(ThreadPool, TasksRunConcurrentlyWhenWorkersAvailable) {
  // Two tasks that each wait for the other can only both finish if the
  // pool really runs them on distinct threads.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  const auto rendezvous = [&arrived] {
    arrived.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (arrived.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };
  auto a = pool.submit(rendezvous);
  auto b = pool.submit(rendezvous);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 8; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, DefaultConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
}

}  // namespace
}  // namespace pdt
