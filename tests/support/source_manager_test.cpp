#include "support/source_manager.h"

#include <gtest/gtest.h>

namespace pdt {
namespace {

TEST(SourceManager, RegistersVirtualFiles) {
  SourceManager sm;
  const FileId a = sm.addVirtualFile("a.h", "int x;\n");
  const FileId b = sm.addVirtualFile("b.h", "int y;\n");
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a, b);
  EXPECT_EQ(sm.name(a), "a.h");
  EXPECT_EQ(sm.content(b), "int y;\n");
  EXPECT_EQ(sm.fileCount(), 2u);
}

TEST(SourceManager, DuplicateVirtualFileKeepsFirst) {
  SourceManager sm;
  const FileId a = sm.addVirtualFile("a.h", "first");
  const FileId b = sm.addVirtualFile("a.h", "second");
  EXPECT_EQ(a, b);
  EXPECT_EQ(sm.content(a), "first");
}

TEST(SourceManager, LineText) {
  SourceManager sm;
  const FileId f = sm.addVirtualFile("f.cpp", "line one\nline two\r\nline three");
  EXPECT_EQ(sm.lineText(f, 1), "line one");
  EXPECT_EQ(sm.lineText(f, 2), "line two");
  EXPECT_EQ(sm.lineText(f, 3), "line three");
  EXPECT_EQ(sm.lineText(f, 4), "");
  EXPECT_EQ(sm.lineText(f, 0), "");
}

TEST(SourceManager, DescribeLocation) {
  SourceManager sm;
  const FileId f = sm.addVirtualFile("x.cpp", "abc");
  EXPECT_EQ(sm.describe({f, 2, 7}), "x.cpp:2:7");
  EXPECT_EQ(sm.describe({}), "<unknown>");
}

TEST(SourceManager, ResolveIncludeVirtual) {
  SourceManager sm;
  const FileId header = sm.addVirtualFile("stack.h", "class S;");
  const FileId main = sm.addVirtualFile("main.cpp", "#include \"stack.h\"");
  const auto resolved = sm.resolveInclude("stack.h", /*angled=*/false, main);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, header);
}

TEST(SourceManager, ResolveIncludeMissing) {
  SourceManager sm;
  const FileId main = sm.addVirtualFile("main.cpp", "");
  EXPECT_FALSE(sm.resolveInclude("nope.h", false, main).has_value());
  EXPECT_FALSE(sm.resolveInclude("nope.h", true, main).has_value());
}

TEST(SourceManager, AllFilesInRegistrationOrder) {
  SourceManager sm;
  sm.addVirtualFile("1", "");
  sm.addVirtualFile("2", "");
  sm.addVirtualFile("3", "");
  const auto files = sm.allFiles();
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(sm.name(files[0]), "1");
  EXPECT_EQ(sm.name(files[2]), "3");
}

}  // namespace
}  // namespace pdt
