// Unit tests for the tracing/metrics subsystem: counter blocks and their
// serialization (the build cache sidecar format), CounterScope routing,
// disabled-mode zero-emission, Chrome trace_event JSON shape, and the
// StatsReport aggregation behind --stats.
#include "support/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

namespace pdt::trace {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (no external deps): validates the writers'
// output is well-formed, not merely non-empty.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') { ++pos_; return true; }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Every trace test starts from a clean slate and leaves collection off for
/// the rest of the binary.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setCollecting(false);
    resetEvents();
    resetGlobalCounters();
  }
  void TearDown() override {
    setCollecting(false);
    resetEvents();
    resetGlobalCounters();
  }
};

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

TEST_F(TraceTest, CounterScopeRoutesIntoBlock) {
  CounterBlock block;
  {
    const CounterScope scope(&block);
    count(Counter::LexTokens, 10);
    count(Counter::LexTokens, 5);
    countKey("sema.instantiations.by_template", "Stack", 2);
  }
  EXPECT_EQ(block.get(Counter::LexTokens), 15u);
  EXPECT_EQ(block.keyed.at("sema.instantiations.by_template").at("Stack"), 2u);
  // Nothing leaked into the global block.
  EXPECT_EQ(globalCounters().get(Counter::LexTokens), 0u);
}

TEST_F(TraceTest, CountsOutsideScopeGoToGlobalBlock) {
  count(Counter::MergeMerges, 3);
  EXPECT_EQ(globalCounters().get(Counter::MergeMerges), 3u);
}

TEST_F(TraceTest, NullScopeSuppressesCounting) {
  CounterBlock block;
  const CounterScope outer(&block);
  count(Counter::PpIncludes);
  {
    // The build cache opens this around its scan/fetch/store I/O.
    const CounterScope suppress(nullptr);
    count(Counter::PpIncludes, 100);
    countKey("diag.errors.by_tu", "x.cpp", 1);
  }
  count(Counter::PpIncludes);
  EXPECT_EQ(block.get(Counter::PpIncludes), 2u);
  EXPECT_TRUE(block.keyed.empty());
}

TEST_F(TraceTest, ScopesNestAndRestore) {
  CounterBlock outer_block, inner_block;
  const CounterScope outer(&outer_block);
  count(Counter::IlItems);
  {
    const CounterScope inner(&inner_block);
    count(Counter::IlItems, 7);
  }
  count(Counter::IlItems);
  EXPECT_EQ(outer_block.get(Counter::IlItems), 2u);
  EXPECT_EQ(inner_block.get(Counter::IlItems), 7u);
}

TEST_F(TraceTest, ZeroCountIsNoOp) {
  CounterBlock block;
  const CounterScope scope(&block);
  count(Counter::DiagErrors, 0);
  countKey("diag.errors.by_tu", "x.cpp", 0);
  EXPECT_EQ(block, CounterBlock{});
  // In particular no keyed entry appears, so a run with zero diagnostics
  // serializes identically to one that never touched the dimension.
  EXPECT_TRUE(block.keyed.empty());
}

TEST_F(TraceTest, CounterBlockSerializeRoundTrips) {
  CounterBlock block;
  block.values[static_cast<std::size_t>(Counter::LexTokens)] = 1234;
  block.values[static_cast<std::size_t>(Counter::SemaBodiesSkipped)] = 7;
  block.keyed["sema.instantiations.by_template"]["Array"] = 3;
  block.keyed["sema.instantiations.by_template"]["Stack"] = 1;
  block.keyed["check.findings.by_rule"]["unused-template"] = 2;

  const std::string text = block.serialize();
  const auto back = CounterBlock::deserialize(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, block);
  // Stable bytes: re-serializing reproduces the exact text (the warm/cold
  // identity of the cache sidecar rests on this).
  EXPECT_EQ(back->serialize(), text);
  // All fixed slots serialize, even zero ones.
  EXPECT_NE(text.find("counter merge.merges 0\n"), std::string::npos);
}

TEST_F(TraceTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(CounterBlock::deserialize("counter not.a.counter 5\n").has_value());
  EXPECT_FALSE(CounterBlock::deserialize("counter lex.tokens abc\n").has_value());
  EXPECT_FALSE(CounterBlock::deserialize("bogus line\n").has_value());
  EXPECT_FALSE(CounterBlock::deserialize("keyed missing-bar 5\n").has_value());
  // Empty text is a valid (all-zero) block.
  EXPECT_TRUE(CounterBlock::deserialize("").has_value());
}

TEST_F(TraceTest, CounterBlockSumsCommutatively) {
  CounterBlock a, b;
  a.values[0] = 1;
  a.keyed["d"]["x"] = 2;
  b.values[0] = 10;
  b.keyed["d"]["x"] = 1;
  b.keyed["d"]["y"] = 4;
  CounterBlock ab = a;
  ab += b;
  CounterBlock ba = b;
  ba += a;
  // Input-order summation in the driver is safe: + is commutative, so any
  // grouping of per-TU blocks yields the same totals.
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.values[0], 11u);
  EXPECT_EQ(ab.keyed.at("d").at("x"), 3u);
}

// ---------------------------------------------------------------------------
// Timing events
// ---------------------------------------------------------------------------

TEST_F(TraceTest, DisabledModeEmitsNothing) {
  ASSERT_FALSE(collecting());
  {
    PDT_TRACE_SCOPE("tu.compile", "x.cpp");
    PDT_TRACE_SCOPE("frontend.lex");
  }
  emitComplete("pool.wait", 1, 2);
  counterSample("pool.queue_depth", 3);
  EXPECT_TRUE(snapshotEvents().empty());
  EXPECT_EQ(nowUs(), 0u);

  std::ostringstream os;
  writeChromeTrace(os);
  // Still a valid (empty) trace document.
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST_F(TraceTest, SpansBalanceAndNest) {
  setCollecting(true);
  setThreadName("main");
  {
    PDT_TRACE_SCOPE("tu.compile", "a.cpp");
    {
      PDT_TRACE_SCOPE("frontend.lex", "a.cpp");
    }
    {
      PDT_TRACE_SCOPE("frontend.parse", "a.cpp");
    }
  }
  const std::vector<Event> events = snapshotEvents();
  ASSERT_EQ(events.size(), 3u);
  // Complete events close when the scope does, so every span recorded is by
  // construction balanced; children must sit inside the parent interval.
  const auto find = [&](std::string_view name) -> const Event& {
    for (const Event& e : events)
      if (name == e.name) return e;
    ADD_FAILURE() << "missing span " << name;
    static Event none;
    return none;
  };
  const Event& tu = find("tu.compile");
  const Event& lex = find("frontend.lex");
  const Event& parse = find("frontend.parse");
  for (const Event* child : {&lex, &parse}) {
    EXPECT_GE(child->ts_us, tu.ts_us);
    EXPECT_LE(child->ts_us + child->dur_us, tu.ts_us + tu.dur_us);
  }
  // Siblings do not overlap: lex fully precedes parse.
  EXPECT_LE(lex.ts_us + lex.dur_us, parse.ts_us);
  EXPECT_EQ(tu.detail, "a.cpp");
  EXPECT_EQ(threadName(tu.tid), "main");
}

TEST_F(TraceTest, ChromeTraceIsValidJsonWithExpectedShape) {
  setCollecting(true);
  setThreadName("main");
  {
    PDT_TRACE_SCOPE("tu.compile", "dir/with \"quotes\"\\a.cpp");
  }
  counterSample("pool.queue_depth", 5);
  std::ostringstream os;
  writeChromeTrace(os);
  const std::string text = os.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"M\""), std::string::npos);   // thread_name
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);   // span
  EXPECT_NE(text.find("\"ph\": \"C\""), std::string::npos);   // counter track
  EXPECT_NE(text.find("\"dur\""), std::string::npos);
}

TEST_F(TraceTest, ResetEventsDropsBufferedEvents) {
  setCollecting(true);
  {
    PDT_TRACE_SCOPE("tu.compile");
  }
  ASSERT_FALSE(snapshotEvents().empty());
  resetEvents();
  EXPECT_TRUE(snapshotEvents().empty());
  // Recording still works after the reset (buffers re-register lazily).
  {
    PDT_TRACE_SCOPE("tu.compile");
  }
  EXPECT_EQ(snapshotEvents().size(), 1u);
}

// ---------------------------------------------------------------------------
// StatsReport
// ---------------------------------------------------------------------------

TEST_F(TraceTest, StatsReportAggregatesPhases) {
  setCollecting(true);
  setThreadName("main");
  for (const char* tu : {"a.cpp", "b.cpp"}) {
    PDT_TRACE_SCOPE("tu.compile", tu);
    PDT_TRACE_SCOPE("frontend.lex", tu);
  }
  StatsReport report("test");
  report.captureTimings();
  ASSERT_FALSE(report.phases().empty());
  for (const SpanStats& p : report.phases()) {
    if (p.name == "tu.compile" || p.name == "frontend.lex") {
      EXPECT_EQ(p.count, 2u);
      EXPECT_GE(p.max_us, p.min_us);
      EXPECT_GE(p.total_us, p.max_us);
    }
  }
}

TEST_F(TraceTest, StatsReportRendersValidJson) {
  setCollecting(true);
  setThreadName("main");
  {
    PDT_TRACE_SCOPE("tu.compile", "a.cpp");
  }
  CounterBlock counters;
  counters.values[static_cast<std::size_t>(Counter::LexTokens)] = 42;
  counters.keyed["sema.instantiations.by_template"]["Array<T>"] = 2;

  StatsReport report("cxxparse");
  report.setCounters(std::move(counters));
  report.addSection("cache", {{"hits", 1}, {"misses", 2}});
  report.captureTimings();

  std::ostringstream json;
  report.renderJson(json);
  EXPECT_TRUE(JsonChecker(json.str()).valid()) << json.str();
  EXPECT_NE(json.str().find("\"lex.tokens\": 42"), std::string::npos);
  EXPECT_NE(json.str().find("\"cache\""), std::string::npos);
  EXPECT_NE(json.str().find("\"tus\""), std::string::npos);

  std::ostringstream text;
  report.renderText(text);
  EXPECT_NE(text.str().find("== cxxparse stats =="), std::string::npos);
  EXPECT_NE(text.str().find("lex.tokens"), std::string::npos);
  EXPECT_NE(text.str().find("per-TU phases:"), std::string::npos);
}

TEST_F(TraceTest, StatsReportCountersOnlyIsValidJson) {
  // pdbmerge/pdbcheck may be invoked with --stats but produce no events
  // (e.g. --stats without timing-relevant work); the report must still be
  // well-formed.
  StatsReport report("pdbmerge");
  report.setCounters(CounterBlock{});
  std::ostringstream json;
  report.renderJson(json);
  EXPECT_TRUE(JsonChecker(json.str()).valid()) << json.str();
}

// ---------------------------------------------------------------------------
// ToolObservability flag parsing
// ---------------------------------------------------------------------------

TEST_F(TraceTest, ToolObservabilityParsesFlags) {
  ToolObservability obs;
  bool used_next = false;
  std::string error;

  EXPECT_FALSE(obs.parseFlag("--jobs", nullptr, used_next, error));
  EXPECT_TRUE(obs.parseFlag("--stats", nullptr, used_next, error));
  EXPECT_TRUE(obs.stats);
  EXPECT_FALSE(obs.json);
  EXPECT_TRUE(obs.parseFlag("--stats=json", nullptr, used_next, error));
  EXPECT_TRUE(obs.json);
  EXPECT_TRUE(error.empty());

  EXPECT_TRUE(obs.parseFlag("--trace-out", "t.json", used_next, error));
  EXPECT_TRUE(used_next);
  EXPECT_EQ(obs.trace_out, "t.json");
  EXPECT_TRUE(obs.parseFlag("--stats-out=s.json", nullptr, used_next, error));
  EXPECT_EQ(obs.stats_out, "s.json");
  EXPECT_TRUE(obs.wanted());

  EXPECT_TRUE(obs.parseFlag("--stats=yaml", nullptr, used_next, error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_TRUE(obs.parseFlag("--trace-out", nullptr, used_next, error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace pdt::trace
