// SmallVector: inline-storage behaviour, heap spill, and value semantics.
#include "support/small_vector.h"

#include <gtest/gtest.h>

#include <string>

namespace pdt {
namespace {

TEST(SmallVector, StaysInlineUnderCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);  // no spill yet
  // data() points into the object itself while inline.
  const auto* obj_begin = reinterpret_cast<const unsigned char*>(&v);
  const auto* obj_end = obj_begin + sizeof(v);
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  EXPECT_TRUE(p >= obj_begin && p < obj_end);
}

TEST(SmallVector, SpillsToHeapPastCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, NonTrivialElements) {
  SmallVector<std::string, 2> v;
  for (int i = 0; i < 20; ++i) v.emplace_back(std::string(50, 'x') + std::to_string(i));
  ASSERT_EQ(v.size(), 20u);
  EXPECT_EQ(v.front(), std::string(50, 'x') + "0");
  EXPECT_EQ(v.back(), std::string(50, 'x') + "19");
  v.pop_back();
  EXPECT_EQ(v.size(), 19u);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, CopyAndEquality) {
  SmallVector<std::string, 2> a;
  a.push_back("one");
  a.push_back("two");
  a.push_back("three");  // spilled
  SmallVector<std::string, 2> b(a);
  EXPECT_EQ(a, b);
  b.push_back("four");
  EXPECT_FALSE(a == b);
  a = b;
  EXPECT_EQ(a, b);
}

TEST(SmallVector, MoveStealsHeapBuffer) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 10; ++i) a.push_back(i);
  const int* buf = a.data();
  SmallVector<int, 2> b(std::move(a));
  EXPECT_EQ(b.data(), buf);  // heap buffer stolen, not copied
  EXPECT_EQ(b.size(), 10u);
  EXPECT_TRUE(a.empty());
}

TEST(SmallVector, MoveInlineCopiesElements) {
  SmallVector<std::string, 4> a;
  a.push_back("alpha");
  a.push_back("beta");
  SmallVector<std::string, 4> b(std::move(a));
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], "alpha");
  EXPECT_EQ(b[1], "beta");
}

TEST(SmallVector, MoveAssignOverHeapBuffer) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 50; ++i) a.push_back(i);
  SmallVector<int, 2> b;
  for (int i = 0; i < 8; ++i) b.push_back(-i);
  a = std::move(b);
  ASSERT_EQ(a.size(), 8u);
  EXPECT_EQ(a[7], -7);
}

TEST(SmallVector, IterationMatchesIndexing) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 9; ++i) v.push_back(i * i);
  int idx = 0;
  for (int x : v) {
    EXPECT_EQ(x, idx * idx);
    ++idx;
  }
  std::size_t n = 0;
  for (auto it = v.begin(); it != v.end(); ++it) ++n;
  EXPECT_EQ(n, v.size());
}

}  // namespace
}  // namespace pdt
