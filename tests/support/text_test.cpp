#include "support/text.h"

#include <gtest/gtest.h>

namespace pdt {
namespace {

TEST(Text, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Text, SplitSingle) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Text, SplitWhitespace) {
  const auto parts = splitWhitespace("  foo\tbar  baz\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Text, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("ab"), "ab");
}

TEST(Text, ReplaceAll) {
  EXPECT_EQ(replaceAll("a<b<c", "<", "&lt;"), "a&lt;b&lt;c");
  EXPECT_EQ(replaceAll("none", "x", "y"), "none");
}

TEST(Text, PdbStringRoundTrip) {
  const std::string original = "line1\nline2\\with\\slashes\n";
  const std::string escaped = escapePdbString(original);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(unescapePdbString(escaped), "line1\nline2\\with\\slashes\n");
}

TEST(Text, EscapeHtml) {
  EXPECT_EQ(escapeHtml("a<b> & \"c\""), "a&lt;b&gt; &amp; &quot;c&quot;");
}

TEST(Text, ParseUint) {
  std::uint32_t v = 0;
  EXPECT_TRUE(parseUint("42", v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(parseUint("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_FALSE(parseUint("", v));
  EXPECT_FALSE(parseUint("-1", v));
  EXPECT_FALSE(parseUint("12x", v));
  EXPECT_FALSE(parseUint("99999999999", v));
}

}  // namespace
}  // namespace pdt
