#include "support/diagnostics.h"

#include <gtest/gtest.h>

#include <sstream>

#include "support/source_manager.h"

namespace pdt {
namespace {

TEST(Diagnostics, CountsBySeverity) {
  DiagnosticEngine de;
  de.error({}, "e1");
  de.warning({}, "w1");
  de.error({}, "e2");
  de.note({}, "n1");
  EXPECT_EQ(de.errorCount(), 2u);
  EXPECT_EQ(de.warningCount(), 1u);
  EXPECT_TRUE(de.hasErrors());
  EXPECT_EQ(de.all().size(), 4u);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine de;
  de.error({}, "e");
  de.clear();
  EXPECT_FALSE(de.hasErrors());
  EXPECT_TRUE(de.all().empty());
}

TEST(Diagnostics, PrintFormat) {
  SourceManager sm;
  const FileId f = sm.addVirtualFile("t.cpp", "x");
  DiagnosticEngine de;
  de.warning({f, 3, 4}, "something odd");
  std::ostringstream os;
  de.print(os, sm);
  EXPECT_EQ(os.str(), "t.cpp:3:4: warning: something odd\n");
}

TEST(Diagnostics, HandlerInvoked) {
  DiagnosticEngine de;
  int calls = 0;
  de.setHandler([&](const Diagnostic& d) {
    ++calls;
    EXPECT_EQ(d.message, "boom");
  });
  de.error({}, "boom");
  EXPECT_EQ(calls, 1);
}

TEST(Diagnostics, SeverityNames) {
  EXPECT_EQ(toString(Severity::Note), "note");
  EXPECT_EQ(toString(Severity::Warning), "warning");
  EXPECT_EQ(toString(Severity::Error), "error");
}

}  // namespace
}  // namespace pdt
