// Tests for the process-global string interner backing the PDB reader's
// string_view attribute fields.
#include "support/interner.h"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

namespace pdt {
namespace {

TEST(Interner, ReturnsStableEqualContent) {
  const std::string_view a = internString("pdt-interner-test-pub");
  EXPECT_EQ(a, "pdt-interner-test-pub");
  // A second request with equal content (different backing buffer) must
  // return the exact same storage.
  const std::string copy("pdt-interner-test-pub");
  const std::string_view b = internString(copy);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.size(), b.size());
}

TEST(Interner, DistinctStringsGetDistinctStorage) {
  const std::string_view a = internString("pdt-interner-test-x");
  const std::string_view b = internString("pdt-interner-test-y");
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a, "pdt-interner-test-x");
  EXPECT_EQ(b, "pdt-interner-test-y");
}

TEST(Interner, CountGrowsOnlyForNewStrings) {
  const std::size_t before = internedStringCount();
  internString("pdt-interner-test-count-probe");
  const std::size_t after_first = internedStringCount();
  EXPECT_EQ(after_first, before + 1);
  internString("pdt-interner-test-count-probe");
  EXPECT_EQ(internedStringCount(), after_first);
}

TEST(Interner, ConcurrentInterningConverges) {
  // All threads intern the same small vocabulary; every thread must end up
  // with pointer-identical views for equal content.
  const std::vector<std::string> vocab = {
      "pdt-interner-mt-a", "pdt-interner-mt-b", "pdt-interner-mt-c"};
  std::vector<std::future<std::vector<const char*>>> futures;
  for (int t = 0; t < 4; ++t) {
    futures.push_back(std::async(std::launch::async, [&vocab] {
      std::vector<const char*> ptrs;
      for (int round = 0; round < 100; ++round) {
        for (const std::string& word : vocab) {
          ptrs.push_back(internString(word).data());
        }
      }
      return ptrs;
    }));
  }
  std::vector<std::vector<const char*>> results;
  for (auto& f : futures) results.push_back(f.get());
  for (const auto& ptrs : results) {
    ASSERT_EQ(ptrs.size(), results.front().size());
    for (std::size_t i = 0; i < ptrs.size(); ++i) {
      EXPECT_EQ(ptrs[i], results.front()[i]);
    }
  }
}

}  // namespace
}  // namespace pdt
