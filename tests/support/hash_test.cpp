// Fixed-vector tests for the FNV-1a hasher underlying build-cache keys.
// The vectors are the published FNV-1a reference values; if either
// digest drifts, every existing cache entry silently misses, so these
// constants are load-bearing for cache stability across builds.
#include "support/hash.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace pdt {
namespace {

TEST(Fnv64, FixedVectors) {
  EXPECT_EQ(hash64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(hash64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(hash64("abc"), 0xe71fa2190541574bull);
  EXPECT_EQ(hash64("foobar"), 0x85944171f73967e8ull);
  EXPECT_EQ(hash64("hello world"), 0x779a65e7023cd2e7ull);
}

TEST(Fnv64, StreamingMatchesOneShot) {
  Fnv64 h;
  h.update("foo");
  h.update("");
  h.update("bar");
  EXPECT_EQ(h.digest(), hash64("foobar"));
}

TEST(Fnv64, UpdateU64IsLittleEndian) {
  Fnv64 a;
  a.updateU64(0x0807060504030201ull);
  Fnv64 b;
  b.update(std::string_view("\x01\x02\x03\x04\x05\x06\x07\x08", 8));
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Fnv128, FixedVectors) {
  EXPECT_EQ(hash128("").hex(), "6c62272e07bb014262b821756295c58d");
  EXPECT_EQ(hash128("a").hex(), "d228cb696f1a8caf78912b704e4a8964");
  EXPECT_EQ(hash128("abc").hex(), "a68d622cec8b5822836dbc7977af7f3b");
  EXPECT_EQ(hash128("foobar").hex(), "343e1662793c64bf6f0d3597ba446f18");
  EXPECT_EQ(hash128("hello world").hex(), "6c155799fdc8eec4b91523808e7726b7");
}

TEST(Fnv128, StreamingMatchesOneShot) {
  Fnv128 h;
  h.update("hello");
  h.update(" ");
  h.update("world");
  EXPECT_EQ(h.digest().hex(), hash128("hello world").hex());
}

TEST(Fnv128, HexIs32LowercaseChars) {
  const std::string hex = hash128("x").hex();
  ASSERT_EQ(hex.size(), 32u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

TEST(Fnv128, DistinctInputsDistinctDigests) {
  const Digest128 a = hash128("tu1.cpp contents");
  const Digest128 b = hash128("tu1.cpp contents ");
  EXPECT_NE(a.hex(), b.hex());
}

TEST(HashStream, MatchesBufferHash) {
  // Larger than one 64 KiB chunk so the chunked reader exercises both
  // the full-read and the partial-tail paths.
  std::string big;
  big.reserve(200000);
  for (int i = 0; i < 20000; ++i) big += "0123456789";
  std::istringstream in(big);
  Fnv128 streamed;
  hashStream(streamed, in);
  EXPECT_EQ(streamed.digest().hex(), hash128(big).hex());
}

TEST(HashStream, EmptyStream) {
  std::istringstream in("");
  Fnv128 streamed;
  hashStream(streamed, in);
  EXPECT_EQ(streamed.digest().hex(), hash128("").hex());
}

}  // namespace
}  // namespace pdt
