// Shared query layer tests: the memoized query::Index must answer every
// consumer from one set of sub-indexes — the tree renderers are
// byte-identical to the flag-based walkers they replaced, the def-use
// index is the same object the AnalysisContext carries (built once), and
// pdbcheck over a prebuilt context matches pdbcheck from scratch.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/checker.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/pdb.h"
#include "query/index.h"
#include "query/render.h"
#include "tools/tools.h"

namespace pdt::query {
namespace {

using ductape::PDB;

PDB compileToPdb(const std::string& name, const std::string& source) {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource(name, source);
  return PDB::fromPdbFile(ilanalyzer::analyze(result, sm));
}

constexpr const char* kSample = R"(
class Base {
public:
    virtual void act() {}
};
class Derived : public Base {
public:
    void act() {}
};
void leaf() {}
int helper(int a) {
    int t = a;
    t = a + 1;
    leaf();
    return t;
}
void driver(Base& b) {
    b.act();
    helper(3);
}
)";

TEST(QueryIndex, CallTreeMatchesTheFlagBasedWalker) {
  const PDB pdb = compileToPdb("sample.cpp", kSample);
  const Index index(pdb);
  std::ostringstream got;
  renderTree(index, Tree::CallGraph, got);

  // Reference: the original mutable-flag walker (still exported for
  // one-shot use). The set-based concurrent-safe walk must be
  // byte-identical.
  std::ostringstream ref;
  ref << "Static call tree\n----------------\n";
  for (const ductape::pdbRoutine* root : pdb.getCallTreeRoots()) {
    ref << root->fullName() << '\n';
    tools::printFuncTree(root, 1, ref);
  }
  EXPECT_EQ(got.str(), ref.str());
}

TEST(QueryIndex, TreesMatchPdbtree) {
  const PDB pdb = compileToPdb("sample.cpp", kSample);
  const Index index(pdb);
  const struct {
    Tree tree;
    tools::TreeKind kind;
  } kinds[] = {
      {Tree::Includes, tools::TreeKind::Includes},
      {Tree::ClassHierarchy, tools::TreeKind::ClassHierarchy},
      {Tree::CallGraph, tools::TreeKind::CallGraph},
      {Tree::Profile, tools::TreeKind::Profile},
  };
  for (const auto& [tree, kind] : kinds) {
    std::ostringstream got, ref;
    renderTree(index, tree, got);
    tools::pdbtree(pdb, kind, ref);
    EXPECT_EQ(got.str(), ref.str());
  }
}

TEST(QueryIndex, RootsMatchTheGraphsOwnDerivation) {
  const PDB pdb = compileToPdb("sample.cpp", kSample);
  const Index index(pdb);
  EXPECT_EQ(index.roots().includes, pdb.getIncludeTreeRoots());
  EXPECT_EQ(index.roots().classes, pdb.getClassHierarchyRoots());
  EXPECT_EQ(index.roots().calls, pdb.getCallTreeRoots());
}

TEST(QueryIndex, AnalysisContextSharesTheDefUseIndex) {
  const PDB pdb = compileToPdb("sample.cpp", kSample);
  const Index index(pdb);
  // One def-use index per database: the rules' context carries the same
  // object the renderers query — built exactly once.
  EXPECT_EQ(&index.defUse(), index.analysis().du.get());
  EXPECT_EQ(index.defUsePtr().get(), &index.defUse());
  EXPECT_FALSE(index.defUse().streams().empty());
}

TEST(QueryIndex, ChecksOverThePrebuiltContextMatchAFreshRun) {
  const PDB pdb = compileToPdb("sample.cpp", kSample);
  const Index index(pdb);
  analysis::CheckOptions options;
  const analysis::CheckResult from_scratch = analysis::runChecks(pdb, options);
  const analysis::CheckResult shared =
      analysis::runChecks(index.analysis(), options);
  std::ostringstream a, b;
  analysis::render(from_scratch, options, a);
  analysis::render(shared, options, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(from_scratch.hasFindings(), shared.hasFindings());
}

TEST(QueryIndex, LookupFindsPlainAndQualifiedNames) {
  const PDB pdb = compileToPdb("sample.cpp", kSample);
  const Index index(pdb);

  const std::vector<std::string> plain = index.lookup("act");
  ASSERT_EQ(plain.size(), 2u);
  EXPECT_NE(plain[0].find("Base::act"), std::string::npos);
  EXPECT_NE(plain[1].find("Derived::act"), std::string::npos);
  // Qualified lookup narrows to the one entity.
  EXPECT_EQ(index.lookup("Derived::act").size(), 1u);
  // Classes resolve too, with their section prefix and location.
  const std::vector<std::string> cls = index.lookup("Base");
  ASSERT_EQ(cls.size(), 1u);
  EXPECT_EQ(cls[0].rfind("cl#", 0), 0u);
  EXPECT_NE(cls[0].find(" @ sample.cpp:"), std::string::npos);

  EXPECT_TRUE(index.lookup("no_such_entity").empty());
  std::ostringstream os;
  renderLookup(index, "no_such_entity", os);
  EXPECT_EQ(os.str(), "no match for 'no_such_entity'\n");
}

TEST(QueryIndex, DefUseRenderingAnswersFromPrebuiltStreams) {
  const PDB pdb = compileToPdb("sample.cpp", kSample);
  const Index index(pdb);
  DefUseQuery summary;
  summary.routine = "helper";
  std::ostringstream os;
  renderDefUse(index, summary, os);
  EXPECT_NE(os.str().find("du#"), std::string::npos);
  EXPECT_NE(os.str().find("helper"), std::string::npos);

  DefUseQuery defs;
  defs.routine = "helper";
  defs.var = "t";
  defs.defs = true;
  std::ostringstream ds;
  renderDefUse(index, defs, ds);
  EXPECT_NE(ds.str().find("use of 't'"), std::string::npos);
  EXPECT_NE(ds.str().find("reached by def of 't'"), std::string::npos);
}

TEST(QueryIndex, PrewarmedIndexOwnsItsDatabase) {
  Index index(compileToPdb("sample.cpp", kSample).raw());
  index.prewarm();
  std::ostringstream os;
  renderTree(index, Tree::CallGraph, os);
  EXPECT_NE(os.str().find("driver"), std::string::npos);
}

}  // namespace
}  // namespace pdt::query
