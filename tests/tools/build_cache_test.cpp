// Unit tests for the content-addressed per-TU build cache: key
// derivation (content + options), hit/miss/store accounting through the
// driver, corruption fallback, and the size-capped LRU sweep.
#include "tools/build_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pdb/writer.h"
#include "tools/driver.h"

namespace pdt {
namespace {

namespace fs = std::filesystem;

/// A self-contained scratch project (its own header, no fixture inputs)
/// plus a cache directory, torn down per test.
class BuildCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pdt_cache_" + std::to_string(::testing::UnitTest::GetInstance()
                                              ->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_ / "cache");
    write("util.h", R"cpp(
#pragma once
template <class T>
T twice(T v) { return v + v; }
)cpp");
    writeTU("a.cpp", R"cpp(
#include "util.h"
int useA() { return twice(21); }
)cpp");
    writeTU("b.cpp", R"cpp(
#include "util.h"
double useB() { return twice(1.5); }
)cpp");
    options_.frontend.include_dirs.push_back(dir_.string());
    options_.cache.dir = (dir_ / "cache").string();
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void write(const std::string& name, const std::string& text) {
    std::ofstream os(dir_ / name);
    os << text;
  }

  void writeTU(const std::string& name, const std::string& text) {
    write(name, text);
    inputs_.push_back((dir_ / name).string());
  }

  [[nodiscard]] std::string compileBytes(tools::DriverResult& out) {
    out = tools::compileAndMerge(inputs_, options_);
    EXPECT_TRUE(out.success) << out.diagnostics;
    return out.pdb ? pdb::writeToString(out.pdb->raw()) : std::string();
  }

  [[nodiscard]] std::vector<fs::path> cacheFiles(const std::string& ext) const {
    std::vector<fs::path> found;
    for (const auto& entry : fs::directory_iterator(dir_ / "cache"))
      if (entry.path().extension() == ext) found.push_back(entry.path());
    return found;
  }

  fs::path dir_;
  std::vector<std::string> inputs_;
  tools::DriverOptions options_;
};

TEST_F(BuildCacheTest, ColdRunMissesAndStoresWarmRunHits) {
  tools::DriverResult cold;
  const std::string cold_bytes = compileBytes(cold);
  EXPECT_EQ(cold.cache_stats.hits, 0u);
  EXPECT_EQ(cold.cache_stats.misses, 2u);
  EXPECT_EQ(cold.cache_stats.stores, 2u);
  EXPECT_EQ(cacheFiles(".pdb").size(), 2u);
  EXPECT_EQ(cacheFiles(".manifest").size(), 2u);
  // Every entry carries its counter sidecar (replayed on hit so --stats
  // matches across warm and cold runs).
  EXPECT_EQ(cacheFiles(".stats").size(), 2u);

  tools::DriverResult warm;
  const std::string warm_bytes = compileBytes(warm);
  EXPECT_EQ(warm.cache_stats.hits, 2u);
  EXPECT_EQ(warm.cache_stats.misses, 0u);
  EXPECT_EQ(warm.cache_stats.stores, 0u);
  ASSERT_FALSE(cold_bytes.empty());
  EXPECT_EQ(cold_bytes, warm_bytes);
}

TEST_F(BuildCacheTest, DisabledCacheCountsNothing) {
  options_.cache = {};
  tools::DriverResult out;
  (void)compileBytes(out);
  EXPECT_EQ(out.cache_stats.hits, 0u);
  EXPECT_EQ(out.cache_stats.misses, 0u);
  EXPECT_EQ(out.cache_stats.stores, 0u);
}

TEST_F(BuildCacheTest, HeaderEditInvalidatesEveryIncluder) {
  tools::DriverResult cold;
  (void)compileBytes(cold);

  // Appending a line to the shared header changes both TUs' include
  // closures, so both keys change and both recompile.
  {
    std::ofstream os(dir_ / "util.h", std::ios::app);
    os << "template <class T> T thrice(T v) { return v + v + v; }\n";
  }
  tools::DriverResult dirty;
  (void)compileBytes(dirty);
  EXPECT_EQ(dirty.cache_stats.hits, 0u);
  EXPECT_EQ(dirty.cache_stats.misses, 2u);
  EXPECT_EQ(dirty.cache_stats.stores, 2u);

  // The edited tree now hits; the old entries stay (different keys).
  tools::DriverResult warm;
  (void)compileBytes(warm);
  EXPECT_EQ(warm.cache_stats.hits, 2u);
  EXPECT_EQ(cacheFiles(".pdb").size(), 4u);
}

TEST_F(BuildCacheTest, SingleTuEditLeavesSiblingCached) {
  tools::DriverResult cold;
  (void)compileBytes(cold);

  {
    std::ofstream os(dir_ / "a.cpp", std::ios::app);
    os << "int useA2() { return twice(2); }\n";
  }
  tools::DriverResult mixed;
  (void)compileBytes(mixed);
  EXPECT_EQ(mixed.cache_stats.hits, 1u);
  EXPECT_EQ(mixed.cache_stats.misses, 1u);
  EXPECT_EQ(mixed.cache_stats.stores, 1u);
}

TEST_F(BuildCacheTest, OptionsChangeInvalidates) {
  tools::DriverResult cold;
  (void)compileBytes(cold);

  // A new -D changes the canonical options text, hence every key — even
  // though no source file changed.
  options_.frontend.defines.emplace_back("EXTRA", "1");
  tools::DriverResult redefined;
  (void)compileBytes(redefined);
  EXPECT_EQ(redefined.cache_stats.hits, 0u);
  EXPECT_EQ(redefined.cache_stats.misses, 2u);
}

TEST_F(BuildCacheTest, CanonicalOptionsTextCoversOptions) {
  frontend::FrontendOptions fo;
  ilanalyzer::AnalyzerOptions ao;
  const std::string base = tools::canonicalOptionsText(fo, ao);

  frontend::FrontendOptions with_define = fo;
  with_define.defines.emplace_back("X", "2");
  EXPECT_NE(base, tools::canonicalOptionsText(with_define, ao));

  frontend::FrontendOptions with_dir = fo;
  with_dir.include_dirs.push_back("/some/dir");
  EXPECT_NE(base, tools::canonicalOptionsText(with_dir, ao));

  ilanalyzer::AnalyzerOptions flipped = ao;
  flipped.emit_uninstantiated_templates = !flipped.emit_uninstantiated_templates;
  EXPECT_NE(base, tools::canonicalOptionsText(fo, flipped));
}

TEST_F(BuildCacheTest, CacheKeyListsIncludeClosure) {
  SourceManager sm;
  const auto key = tools::computeCacheKey(sm, inputs_[0], options_.frontend,
                                          options_.analyzer);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->hex.size(), 32u);
  EXPECT_EQ(key->source, inputs_[0]);
  ASSERT_EQ(key->deps.size(), 2u);  // a.cpp + util.h
}

TEST_F(BuildCacheTest, ScanDiagnosticMakesTuUnkeyed) {
  // #warning succeeds compilation but emits a diagnostic; a cache hit
  // would skip the compile that re-emits it, so the TU must stay unkeyed
  // (never cached) and the warning must survive warm reruns.
  writeTU("warny.cpp", R"cpp(
#warning heads up
int useW() { return 1; }
)cpp");
  tools::DriverResult cold;
  (void)compileBytes(cold);
  EXPECT_EQ(cold.cache_stats.unkeyed, 1u);
  EXPECT_EQ(cold.cache_stats.stores, 2u);
  EXPECT_NE(cold.diagnostics.find("heads up"), std::string::npos);

  tools::DriverResult warm;
  (void)compileBytes(warm);
  EXPECT_EQ(warm.cache_stats.hits, 2u);
  EXPECT_EQ(warm.cache_stats.unkeyed, 1u);
  EXPECT_EQ(warm.diagnostics, cold.diagnostics);
}

TEST_F(BuildCacheTest, TruncatedPdbEntryIsEvictedAndRecompiled) {
  tools::DriverResult cold;
  const std::string cold_bytes = compileBytes(cold);

  for (const fs::path& pdb_file : cacheFiles(".pdb")) {
    std::ofstream os(pdb_file, std::ios::binary | std::ios::trunc);
    os << "PDB 1.0\n";  // valid-looking prefix, truncated body
  }
  tools::DriverResult rerun;
  const std::string rerun_bytes = compileBytes(rerun);
  EXPECT_EQ(rerun.cache_stats.hits, 0u);
  EXPECT_EQ(rerun.cache_stats.evictions, 2u);
  EXPECT_EQ(rerun.cache_stats.misses, 2u);
  EXPECT_EQ(rerun.cache_stats.stores, 2u);
  EXPECT_EQ(cold_bytes, rerun_bytes);
}

TEST_F(BuildCacheTest, UnmappableEntryIsEvictedAndRecompiled) {
  tools::DriverResult cold;
  const std::string cold_bytes = compileBytes(cold);

  // A torn entry whose bytes cannot even be opened/mapped (here: the
  // value path is not a regular file at all) must route to the same
  // evict-and-recompile fallback as a corrupt-but-readable one.
  for (const fs::path& pdb_file : cacheFiles(".pdb")) {
    fs::remove(pdb_file);
    fs::create_directory(pdb_file);
  }
  tools::DriverResult rerun;
  const std::string rerun_bytes = compileBytes(rerun);
  EXPECT_EQ(rerun.cache_stats.hits, 0u);
  EXPECT_EQ(rerun.cache_stats.evictions, 2u);
  EXPECT_EQ(rerun.cache_stats.misses, 2u);
  EXPECT_EQ(cold_bytes, rerun_bytes);
}

TEST_F(BuildCacheTest, GarbageManifestIsEvictedAndRecompiled) {
  tools::DriverResult cold;
  const std::string cold_bytes = compileBytes(cold);

  for (const fs::path& manifest : cacheFiles(".manifest")) {
    std::ofstream os(manifest, std::ios::binary | std::ios::trunc);
    os << "not|a|manifest\n";
  }
  tools::DriverResult rerun;
  const std::string rerun_bytes = compileBytes(rerun);
  EXPECT_EQ(rerun.cache_stats.hits, 0u);
  EXPECT_EQ(rerun.cache_stats.evictions, 2u);
  EXPECT_EQ(cold_bytes, rerun_bytes);

  tools::DriverResult warm;
  (void)compileBytes(warm);
  EXPECT_EQ(warm.cache_stats.hits, 2u);
}

TEST_F(BuildCacheTest, MissingCounterSidecarIsEvictedAndRecompiled) {
  tools::DriverResult cold;
  const std::string cold_bytes = compileBytes(cold);

  // Without its sidecar an entry cannot replay the compile's counters, so
  // it is treated like any other corrupt entry: evict and recompile.
  for (const fs::path& stats_file : cacheFiles(".stats"))
    fs::remove(stats_file);
  tools::DriverResult rerun;
  const std::string rerun_bytes = compileBytes(rerun);
  EXPECT_EQ(rerun.cache_stats.hits, 0u);
  EXPECT_EQ(rerun.cache_stats.evictions, 2u);
  EXPECT_EQ(rerun.cache_stats.misses, 2u);
  EXPECT_EQ(rerun.cache_stats.stores, 2u);
  EXPECT_EQ(cold_bytes, rerun_bytes);
  // Counters of the recompiled run match the cold run (evict path counts
  // nothing of its own).
  EXPECT_EQ(cold.counters.serialize(), rerun.counters.serialize());

  tools::DriverResult warm;
  (void)compileBytes(warm);
  EXPECT_EQ(warm.cache_stats.hits, 2u);
  EXPECT_EQ(warm.cache_stats.revalidations, 2u);
  EXPECT_EQ(warm.counters.serialize(), cold.counters.serialize());
}

TEST_F(BuildCacheTest, SweepEvictsOldestStampFirst) {
  // Hand-craft three 900 KiB entries with distinct stamps; a 2 MiB cap
  // must evict exactly the oldest (2700 KiB over, 1800 KiB after).
  const fs::path cache_dir = dir_ / "cache";
  const std::string payload(900u << 10, 'x');
  const auto make_entry = [&](const std::string& key, std::uint64_t stamp) {
    std::ofstream pdb(cache_dir / (key + ".pdb"), std::ios::binary);
    pdb << payload;
    std::ofstream manifest(cache_dir / (key + ".manifest"));
    manifest << key << '|' << stamp << '|' << payload.size() << "|src.cpp|src.cpp\n";
  };
  make_entry("aaaa", 100);
  make_entry("bbbb", 300);
  make_entry("cccc", 200);

  tools::CacheOptions capped;
  capped.dir = cache_dir.string();
  capped.limit_mb = 2;
  const tools::BuildCache cache(capped);
  EXPECT_GT(cache.totalSizeBytes(), 2u << 20);
  EXPECT_EQ(cache.sweep(), 1u);
  EXPECT_FALSE(fs::exists(cache_dir / "aaaa.pdb"));
  EXPECT_FALSE(fs::exists(cache_dir / "aaaa.manifest"));
  EXPECT_TRUE(fs::exists(cache_dir / "bbbb.pdb"));
  EXPECT_TRUE(fs::exists(cache_dir / "cccc.pdb"));
  EXPECT_LE(cache.totalSizeBytes(), 2u << 20);
}

TEST_F(BuildCacheTest, SweepIsNoOpWithoutLimit) {
  tools::DriverResult cold;
  (void)compileBytes(cold);
  const tools::BuildCache cache(options_.cache);  // limit_mb == 0
  EXPECT_EQ(cache.sweep(), 0u);
  EXPECT_EQ(cacheFiles(".pdb").size(), 2u);
}

}  // namespace
}  // namespace pdt
