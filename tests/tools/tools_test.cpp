// Tests for the four DUCTAPE utilities (paper Table 2).
#include <gtest/gtest.h>

#include <sstream>

#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/pdb.h"
#include "tools/tools.h"

namespace pdt::tools {
namespace {

using ductape::PDB;

PDB compileToPdb(const std::string& name, const std::string& source) {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource(name, source);
  return PDB::fromPdbFile(ilanalyzer::analyze(result, sm));
}

constexpr const char* kSample = R"(
#define LIMIT 100
class Base {
public:
    virtual void act() {}
};
class Derived : public Base {
public:
    void act() {}
    int extra;
};
template <class T>
class Holder {
public:
    void keep(const T& x) { item = x; }
    T item;
};
void leaf() {}
void driver(Base& b) {
    Holder<int> h;
    h.keep(7);
    b.act();
    leaf();
}
)";

// ---------------------------------------------------------------------------
// pdbconv
// ---------------------------------------------------------------------------

TEST(Pdbconv, ReadableOutputListsEverything) {
  const PDB pdb = compileToPdb("sample.cpp", kSample);
  std::ostringstream os;
  pdbconv(pdb, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Source files"), std::string::npos);
  EXPECT_NE(text.find("sample.cpp"), std::string::npos);
  EXPECT_NE(text.find("Holder<int>"), std::string::npos);
  EXPECT_NE(text.find("instantiated from template Holder"), std::string::npos);
  EXPECT_NE(text.find("base: public Base"), std::string::npos);
  EXPECT_NE(text.find("calls Base::act [virtual]"), std::string::npos);
  EXPECT_NE(text.find("LIMIT"), std::string::npos);
  EXPECT_NE(text.find("member var: extra"), std::string::npos);
}

TEST(Pdbconv, ShowsVirtualityAndDefinedness) {
  const PDB pdb = compileToPdb("v.cpp",
                               "class A { public: virtual int f() = 0; };\n");
  std::ostringstream os;
  pdbconv(pdb, os);
  EXPECT_NE(os.str().find("virtual: pure"), std::string::npos);
  EXPECT_NE(os.str().find("defined: no"), std::string::npos);
}

// ---------------------------------------------------------------------------
// pdbhtml
// ---------------------------------------------------------------------------

TEST(Pdbhtml, EmitsAnchorsAndLinks) {
  const PDB pdb = compileToPdb("sample.cpp", kSample);
  std::ostringstream os;
  pdbhtml(pdb, os, "sample");
  const std::string html = os.str();
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  // Every class gets an anchor; references link to it.
  EXPECT_NE(html.find("id=\"cl"), std::string::npos);
  EXPECT_NE(html.find("href=\"#cl"), std::string::npos);
  EXPECT_NE(html.find("href=\"#ro"), std::string::npos);
  EXPECT_NE(html.find("href=\"#te"), std::string::npos);
}

TEST(Pdbhtml, EscapesTemplateNames) {
  const PDB pdb = compileToPdb("sample.cpp", kSample);
  std::ostringstream os;
  pdbhtml(pdb, os);
  // "Holder<int>" must appear escaped, never as a raw tag.
  EXPECT_NE(os.str().find("Holder&lt;int&gt;"), std::string::npos);
  EXPECT_EQ(os.str().find("<int>"), std::string::npos);
}

// ---------------------------------------------------------------------------
// pdbtree
// ---------------------------------------------------------------------------

TEST(Pdbtree, CallGraphMatchesFigure5Shape) {
  const PDB pdb = compileToPdb("sample.cpp", kSample);
  std::ostringstream os;
  pdbtree(pdb, TreeKind::CallGraph, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("driver"), std::string::npos);
  EXPECT_NE(text.find("`--> Holder<int>::keep"), std::string::npos);
  EXPECT_NE(text.find("(VIRTUAL)"), std::string::npos);  // b.act()
}

TEST(Pdbtree, CallGraphCutsCycles) {
  const PDB pdb = compileToPdb("cycle.cpp", R"(
void ping(int n);
void pong(int n) { if (n > 0) ping(n - 1); }
void ping(int n) { if (n > 0) pong(n - 1); }
void start() { ping(3); }
)");
  std::ostringstream os;
  pdbtree(pdb, TreeKind::CallGraph, os);
  const std::string text = os.str();
  // The recursion must terminate, marked with the Figure-5 "..." cut.
  EXPECT_NE(text.find("..."), std::string::npos);
  EXPECT_NE(text.find("ping"), std::string::npos);
  EXPECT_NE(text.find("pong"), std::string::npos);
}

TEST(Pdbtree, SelfRecursionMarked) {
  const PDB pdb = compileToPdb("rec.cpp",
                               "int fact(int n) { return n < 2 ? 1 : n * fact(n - 1); }\n"
                               "int run() { return fact(5); }\n");
  std::ostringstream os;
  pdbtree(pdb, TreeKind::CallGraph, os);
  EXPECT_NE(os.str().find("fact ..."), std::string::npos);
}

TEST(Pdbtree, ClassHierarchy) {
  const PDB pdb = compileToPdb("sample.cpp", kSample);
  std::ostringstream os;
  pdbtree(pdb, TreeKind::ClassHierarchy, os);
  const std::string text = os.str();
  const auto base_pos = text.find("Base");
  const auto derived_pos = text.find("    Derived");
  ASSERT_NE(base_pos, std::string::npos);
  ASSERT_NE(derived_pos, std::string::npos);
  EXPECT_LT(base_pos, derived_pos);  // Derived indented under Base
}

TEST(Pdbtree, IncludeTree) {
  SourceManager sm;
  DiagnosticEngine diags;
  sm.addVirtualFile("deep.h", "int deep;\n");
  sm.addVirtualFile("mid.h", "#include \"deep.h\"\nint mid;\n");
  frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource("top.cpp", "#include \"mid.h\"\nint top;\n");
  const PDB pdb = PDB::fromPdbFile(ilanalyzer::analyze(result, sm));
  std::ostringstream os;
  pdbtree(pdb, TreeKind::Includes, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("top.cpp"), std::string::npos);
  EXPECT_NE(text.find("    mid.h"), std::string::npos);
  EXPECT_NE(text.find("        deep.h"), std::string::npos);
}

// ---------------------------------------------------------------------------
// pdbmerge (library entry)
// ---------------------------------------------------------------------------

TEST(Pdbmerge, MergesManyInputs) {
  std::vector<PDB> inputs;
  inputs.push_back(compileToPdb("a.cpp", "void fa() {}\n"));
  inputs.push_back(compileToPdb("b.cpp", "void fb() {}\n"));
  inputs.push_back(compileToPdb("c.cpp", "void fc() {}\n"));
  const PDB merged = pdbmerge(std::move(inputs));
  EXPECT_EQ(merged.getRoutineVec().size(), 3u);
  EXPECT_EQ(merged.getFileVec().size(), 3u);
}

TEST(Pdbmerge, EmptyInputYieldsEmptyPdb) {
  const PDB merged = pdbmerge({});
  EXPECT_TRUE(merged.getItemVec().empty());
}

}  // namespace
}  // namespace pdt::tools

namespace pdt::tools {
namespace {

TEST(Pdbhtml, TableOfContentsAndAllSections) {
  const ductape::PDB pdb = compileToPdb("sample.cpp", kSample);
  std::ostringstream os;
  pdbhtml(pdb, os);
  const std::string html = os.str();
  for (const char* anchor :
       {"#files", "#templates", "#classes", "#routines", "#namespaces",
        "#macros"}) {
    EXPECT_NE(html.find(std::string("href=\"") + anchor + "\""),
              std::string::npos)
        << anchor;
  }
  EXPECT_NE(html.find("id=\"ma"), std::string::npos);  // macro items present
  EXPECT_NE(html.find("LIMIT"), std::string::npos);
}

}  // namespace
}  // namespace pdt::tools

namespace pdt::tools {
namespace {

// Regression: entities with no recorded source location (compiler-generated
// ctors/dtors, builtins) must render as "<generated>" in every utility —
// never as an empty or garbage file:line.
TEST(LocText, MissingLocationRendersAsGenerated) {
  EXPECT_EQ(locText(ductape::pdbLoc{}), "<generated>");
}

TEST(LocText, GeneratedAppearsInConvAndHtmlOutput) {
  pdb::PdbFile raw;
  pdb::SourceFileItem file;
  file.name = "gen.cpp";
  const std::uint32_t so = raw.addSourceFile(std::move(file));
  pdb::RoutineItem located;
  located.name = "anchor";
  located.location = {so, 4, 1};
  located.defined = true;
  raw.addRoutine(std::move(located));
  pdb::RoutineItem generated;  // no location: a synthesized default ctor
  generated.name = "synth";
  generated.defined = true;
  raw.addRoutine(std::move(generated));

  const ductape::PDB pdb = ductape::PDB::fromPdbFile(raw);
  std::ostringstream conv;
  pdbconv(pdb, conv);
  EXPECT_NE(conv.str().find("<generated>"), std::string::npos);
  EXPECT_NE(conv.str().find("gen.cpp:4:1"), std::string::npos);

  std::ostringstream html;
  pdbhtml(pdb, html);
  // The HTML escapes the angle brackets but must carry the same marker.
  EXPECT_NE(html.str().find("&lt;generated&gt;"), std::string::npos);
}

}  // namespace
}  // namespace pdt::tools
