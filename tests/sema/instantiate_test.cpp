// Tests for the template instantiation engine: used-mode semantics,
// nested instantiation, specializations, deduction, provenance links —
// the paper's core contribution (§2, §3.1).
#include <gtest/gtest.h>

#include <functional>

#include "ast/walk.h"
#include "frontend/frontend.h"

namespace pdt {
namespace {

using namespace ast;

struct Compiled {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::CompileResult result;

  explicit Compiled(const std::string& source,
                    frontend::FrontendOptions options = {}) {
    frontend::Frontend fe(sm, diags, std::move(options));
    result = fe.compileSource("test.cpp", source);
  }

  [[nodiscard]] const TranslationUnitDecl* tu() const {
    return result.ast->translationUnit();
  }
  [[nodiscard]] std::string diagText() const {
    std::string out;
    for (const auto& d : diags.all())
      out += sm.describe(d.location) + ": " + d.message + "\n";
    return out;
  }

  template <typename T>
  T* find(std::string_view name) const {
    T* out = nullptr;
    std::function<void(const Decl*)> visit = [&](const Decl* d) {
      if (out == nullptr && d->name() == name) {
        out = const_cast<T*>(d->as<T>());
      }
    };
    walkDecls(tu(), visit);
    return out;
  }

  [[nodiscard]] std::vector<const FunctionDecl*> findAll(
      std::string_view name) const {
    std::vector<const FunctionDecl*> out;
    std::function<void(const Decl*)> visit = [&](const Decl* d) {
      if (d->name() == name) {
        if (const auto* fn = d->as<FunctionDecl>()) out.push_back(fn);
      }
    };
    walkDecls(tu(), visit);
    return out;
  }
};

constexpr const char* kStackSource = R"(
template <class Object>
class Stack {
public:
    explicit Stack(int capacity = 10) : topOfStack(-1) {}
    bool isEmpty() const { return topOfStack == -1; }
    bool isFull() const { return topOfStack == 99; }
    void push(const Object& x) {
        if (isFull()) return;
        topOfStack = topOfStack + 1;
    }
    void pop() {
        if (isEmpty()) return;
        topOfStack = topOfStack - 1;
    }
    Object topAndPop() {
        Object result;
        pop();
        return result;
    }
    void neverUsed() { topOfStack = -42; }
private:
    int topOfStack;
};

int main() {
    Stack<int> s;
    for (int i = 0; i < 10; i = i + 1)
        s.push(i);
    while (!s.isEmpty())
        s.topAndPop();
    return 0;
}
)";

TEST(Instantiate, ClassTemplateInstantiation) {
  Compiled c(kStackSource);
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* inst = c.find<ClassDecl>("Stack<int>");
  ASSERT_NE(inst, nullptr);
  EXPECT_TRUE(inst->is_complete);
  ASSERT_NE(inst->instantiated_from, nullptr);
  EXPECT_EQ(inst->instantiated_from->name(), "Stack");
  ASSERT_EQ(inst->template_args.size(), 1u);
  EXPECT_EQ(inst->template_args[0]->spelling(), "int");
}

TEST(Instantiate, MemberSignaturesAreSubstituted) {
  Compiled c(kStackSource);
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* inst = c.find<ClassDecl>("Stack<int>");
  ASSERT_NE(inst, nullptr);
  const FunctionDecl* push = nullptr;
  for (const Decl* m : inst->children()) {
    if (m->name() == "push") push = m->as<FunctionDecl>();
  }
  ASSERT_NE(push, nullptr);
  EXPECT_EQ(push->signature->spelling(), "void (const int &)");
}

TEST(Instantiate, UsedModeSkipsUnusedMembers) {
  // The paper: "unused member functions ... are not instantiated
  // unnecessarily, minimizing ... the size of the IL" (§2).
  Compiled c(kStackSource);
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* inst = c.find<ClassDecl>("Stack<int>");
  ASSERT_NE(inst, nullptr);
  const FunctionDecl* never_used = nullptr;
  const FunctionDecl* push = nullptr;
  for (const Decl* m : inst->children()) {
    if (m->name() == "neverUsed") never_used = m->as<FunctionDecl>();
    if (m->name() == "push") push = m->as<FunctionDecl>();
  }
  ASSERT_NE(never_used, nullptr);  // declaration exists...
  EXPECT_EQ(never_used->body, nullptr);  // ...but its body was never needed
  ASSERT_NE(push, nullptr);
  EXPECT_NE(push->body, nullptr);  // push was used in main
}

TEST(Instantiate, UseChainsPropagate) {
  // topAndPop calls pop, pop calls isEmpty: all three get bodies even
  // though only topAndPop/isEmpty are called from main directly.
  Compiled c(kStackSource);
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* inst = c.find<ClassDecl>("Stack<int>");
  ASSERT_NE(inst, nullptr);
  for (const Decl* m : inst->children()) {
    if (m->name() == "pop" || m->name() == "isEmpty" || m->name() == "isFull") {
      const auto* fn = m->as<FunctionDecl>();
      ASSERT_NE(fn, nullptr);
      EXPECT_NE(fn->body, nullptr) << m->name() << " should be instantiated";
    }
  }
}

TEST(Instantiate, InstantiateAllMode) {
  frontend::FrontendOptions options;
  options.sema.used_mode = false;
  Compiled c(kStackSource, options);
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* inst = c.find<ClassDecl>("Stack<int>");
  ASSERT_NE(inst, nullptr);
  for (const Decl* m : inst->children()) {
    if (m->name() == "neverUsed") {
      EXPECT_NE(m->as<FunctionDecl>()->body, nullptr);
    }
  }
}

TEST(Instantiate, MultipleInstantiationsAreDistinct) {
  Compiled c(R"(
template <class T> class Box { public: T value; };
Box<int> a;
Box<double> b;
Box<int> c;  // same as a
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* box_int = c.find<ClassDecl>("Box<int>");
  auto* box_double = c.find<ClassDecl>("Box<double>");
  ASSERT_NE(box_int, nullptr);
  ASSERT_NE(box_double, nullptr);
  auto* td = c.find<TemplateDecl>("Box");
  ASSERT_NE(td, nullptr);
  EXPECT_EQ(td->instantiations.size(), 2u);  // int and double, deduplicated
}

TEST(Instantiate, NestedInstantiation) {
  Compiled c(R"(
template <class T> class Inner { public: T item; };
template <class T> class Outer { public: T contents; };
Outer<Inner<int> > nested;
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  EXPECT_NE(c.find<ClassDecl>("Inner<int>"), nullptr);
  auto* outer = c.find<ClassDecl>("Outer<Inner<int> >");
  ASSERT_NE(outer, nullptr);
  const VarDecl* contents = nullptr;
  for (const Decl* m : outer->children()) {
    if (m->name() == "contents") contents = m->as<VarDecl>();
  }
  ASSERT_NE(contents, nullptr);
  EXPECT_EQ(contents->type->spelling(), "Inner<int>");
}

TEST(Instantiate, DependentMemberTypeTriggersNestedInstantiation) {
  // vector<Object> inside Stack<Object> must become vector<int>.
  Compiled c(R"(
template <class T> class vector { public: T* data; };
template <class Object>
class Stack {
public:
    vector<Object> theArray;
};
Stack<int> s;
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  EXPECT_NE(c.find<ClassDecl>("vector<int>"), nullptr);
}

TEST(Instantiate, OutOfLineMemberDefinition) {
  Compiled c(R"(
template <class Object>
class Stack {
public:
    void push(const Object& x);
    bool isFull() const;
private:
    int top;
};

template <class Object>
void Stack<Object>::push(const Object& x) {
    if (isFull()) return;
    top = top + 1;
}

template <class Object>
bool Stack<Object>::isFull() const { return top == 99; }

void test() {
    Stack<double> s;
    s.push(3.14);
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* inst = c.find<ClassDecl>("Stack<double>");
  ASSERT_NE(inst, nullptr);
  const FunctionDecl* push = nullptr;
  const FunctionDecl* is_full = nullptr;
  for (const Decl* m : inst->children()) {
    if (m->name() == "push") push = m->as<FunctionDecl>();
    if (m->name() == "isFull") is_full = m->as<FunctionDecl>();
  }
  ASSERT_NE(push, nullptr);
  EXPECT_NE(push->body, nullptr);
  EXPECT_EQ(push->signature->spelling(), "void (const double &)");
  ASSERT_NE(is_full, nullptr);
  EXPECT_NE(is_full->body, nullptr);  // pulled in by push's body
  // rloc points at the out-of-line definition (paper Fig. 3).
  EXPECT_EQ(push->location().line, 12u);
}

TEST(Instantiate, MemberFunctionTemplateEntities) {
  // Out-of-line member definitions produce memfunc template entities
  // (te#566 push in paper Fig. 3).
  Compiled c(R"(
template <class Object>
class Stack {
public:
    void push(const Object& x);
};
template <class Object>
void Stack<Object>::push(const Object& x) {}
Stack<int> s;
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* te = c.find<TemplateDecl>("push");
  ASSERT_NE(te, nullptr);
  EXPECT_EQ(te->tkind, TemplateKind::MemberFunc);
  EXPECT_EQ(te->location().line, 8u);

  auto* inst = c.find<ClassDecl>("Stack<int>");
  ASSERT_NE(inst, nullptr);
  const FunctionDecl* push = nullptr;
  for (const Decl* m : inst->children()) {
    if (m->name() == "push") push = m->as<FunctionDecl>();
  }
  ASSERT_NE(push, nullptr);
  EXPECT_EQ(push->instantiated_from, te);  // rtempl provenance
}

TEST(Instantiate, FunctionTemplateDeduction) {
  Compiled c(R"(
template <class T>
T maxOf(T a, T b) { return a > b ? a : b; }

int test() {
    int i = maxOf(3, 4);
    double d = maxOf(1.5, 2.5);
    return i;
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* td = c.find<TemplateDecl>("maxOf");
  ASSERT_NE(td, nullptr);
  EXPECT_EQ(td->tkind, TemplateKind::Function);
  ASSERT_EQ(td->instantiations.size(), 2u);
  EXPECT_EQ(td->instantiations[0].args[0]->spelling(), "int");
  EXPECT_EQ(td->instantiations[1].args[0]->spelling(), "double");
  const auto* fn = td->instantiations[0].decl->as<FunctionDecl>();
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->signature->spelling(), "int (int, int)");
  EXPECT_NE(fn->body, nullptr);
}

TEST(Instantiate, FunctionTemplateExplicitArgs) {
  Compiled c(R"(
template <class T>
T zero() { return T(); }

int test() { return zero<int>(); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* td = c.find<TemplateDecl>("zero");
  ASSERT_NE(td, nullptr);
  ASSERT_EQ(td->instantiations.size(), 1u);
  EXPECT_EQ(td->instantiations[0].args[0]->spelling(), "int");
}

TEST(Instantiate, DeductionThroughTemplateSpecParam) {
  Compiled c(R"(
template <class T> class Box { public: T value; };
template <class T>
T unwrap(const Box<T>& box) { return box.value; }

Box<int> b;
int test() { return unwrap(b); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* td = c.find<TemplateDecl>("unwrap");
  ASSERT_NE(td, nullptr);
  ASSERT_EQ(td->instantiations.size(), 1u);
  EXPECT_EQ(td->instantiations[0].args[0]->spelling(), "int");
}

TEST(Instantiate, ClassSpecializationPreferred) {
  Compiled c(R"(
template <class T> class Traits { public: int generic; };
template <> class Traits<bool> { public: int special; };

Traits<int> g;
Traits<bool> s;
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* spec = c.find<ClassDecl>("Traits<bool>");
  ASSERT_NE(spec, nullptr);
  EXPECT_TRUE(spec->is_specialization);
  bool has_special = false;
  for (const Decl* m : spec->children()) has_special |= m->name() == "special";
  EXPECT_TRUE(has_special);

  auto* td = c.find<TemplateDecl>("Traits");
  ASSERT_NE(td, nullptr);
  EXPECT_EQ(td->specializations.size(), 1u);
  EXPECT_EQ(td->instantiations.size(), 1u);  // only Traits<int>
}

TEST(Instantiate, SpecializationOriginLimitation) {
  // The paper: "it is currently not possible to determine the originating
  // template for a specialization" — reproduced by default...
  Compiled c(R"(
template <class T> class Traits { public: int g; };
template <> class Traits<char> { public: int s; };
Traits<char> t;
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* spec = c.find<ClassDecl>("Traits<char>");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->instantiated_from, nullptr);

  // ...and fixed by the option the paper proposes (template IDs in the IL).
  frontend::FrontendOptions options;
  options.sema.record_specialization_origin = true;
  Compiled fixed(R"(
template <class T> class Traits { public: int g; };
template <> class Traits<char> { public: int s; };
Traits<char> t;
)", options);
  ASSERT_TRUE(fixed.result.success) << fixed.diagText();
  auto* fixed_spec = fixed.find<ClassDecl>("Traits<char>");
  ASSERT_NE(fixed_spec, nullptr);
  ASSERT_NE(fixed_spec->instantiated_from, nullptr);
  EXPECT_EQ(fixed_spec->instantiated_from->name(), "Traits");
}

TEST(Instantiate, FunctionSpecialization) {
  Compiled c(R"(
template <class T>
int describe(T value) { return 0; }

template <>
int describe<char>(char value) { return 1; }

int test() { return describe('x') + describe(3.0); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* td = c.find<TemplateDecl>("describe");
  ASSERT_NE(td, nullptr);
  ASSERT_EQ(td->specializations.size(), 1u);
  // describe('x') must pick the specialization, not mint an instantiation.
  for (const auto& inst : td->instantiations) {
    EXPECT_NE(inst.args[0]->spelling(), "char");
  }
}

TEST(Instantiate, DefaultTemplateArguments) {
  Compiled c(R"(
template <class T, class Alloc = int>
class Container { public: T item; Alloc a; };
Container<double> c;
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* inst = c.find<ClassDecl>("Container<double, int>");
  ASSERT_NE(inst, nullptr);
  ASSERT_EQ(inst->template_args.size(), 2u);
}

TEST(Instantiate, ExplicitInstantiationInstantiatesAllMembers) {
  Compiled c(R"(
template <class T>
class Full {
public:
    void used() {}
    void alsoInstantiated() {}
};
template class Full<int>;
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* inst = c.find<ClassDecl>("Full<int>");
  ASSERT_NE(inst, nullptr);
  for (const Decl* m : inst->children()) {
    if (const auto* fn = m->as<FunctionDecl>()) {
      EXPECT_NE(fn->body, nullptr) << fn->name();
    }
  }
}

TEST(Instantiate, StaticDataMemberTemplate) {
  Compiled c(R"(
template <class T>
class Counter {
public:
    static int count;
};
template <class T> int Counter<T>::count = 0;

int test() {
    Counter<int> c;
    return Counter<int>::count;
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* te = c.find<TemplateDecl>("count");
  ASSERT_NE(te, nullptr);
  EXPECT_EQ(te->tkind, TemplateKind::StaticMem);
}

TEST(Instantiate, TemplateWithNonTypeParamTolerated) {
  Compiled c(R"(
template <class T, int N>
class Array { public: T data[N]; };
Array<double, 16> a;
)");
  // Non-type arguments are tracked loosely (DESIGN.md limits); the
  // instantiation must still exist and carry two arguments.
  auto* td = c.find<TemplateDecl>("Array");
  ASSERT_NE(td, nullptr);
  EXPECT_EQ(td->instantiations.size(), 1u);
}

TEST(Instantiate, CallGraphThroughTemplates) {
  Compiled c(kStackSource);
  ASSERT_TRUE(c.result.success) << c.diagText();
  // push's instantiated body calls isFull: check resolution happened.
  auto* inst = c.find<ClassDecl>("Stack<int>");
  const FunctionDecl* push = nullptr;
  for (const Decl* m : inst->children()) {
    if (m->name() == "push") push = m->as<FunctionDecl>();
  }
  ASSERT_NE(push, nullptr);
  ASSERT_NE(push->body, nullptr);
  bool calls_isfull = false;
  walk(push->body, [&](const Stmt* s) {
    if (const auto* call = s->as<CallExpr>()) {
      if (call->resolved != nullptr && call->resolved->name() == "isFull")
        calls_isfull = true;
    }
  });
  EXPECT_TRUE(calls_isfull);
}

TEST(Instantiate, ConstructorAndDestructorUsesFromLifetime) {
  Compiled c(R"(
class Tracked {
public:
    Tracked() {}
    ~Tracked() {}
};
void test() { Tracked t; }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* fn = c.find<FunctionDecl>("test");
  ASSERT_NE(fn, nullptr);
  const DeclStmt* ds = nullptr;
  walk(fn->body, [&](const Stmt* s) {
    if (const auto* d = s->as<DeclStmt>()) ds = d;
  });
  ASSERT_NE(ds, nullptr);
  ASSERT_EQ(ds->vars.size(), 1u);
  ASSERT_NE(ds->vars[0]->resolved_ctor, nullptr);
  EXPECT_EQ(ds->vars[0]->resolved_ctor->fkind, FunctionKind::Constructor);
  ASSERT_NE(ds->vars[0]->resolved_dtor, nullptr);
}

TEST(Instantiate, VirtualCallMarking) {
  Compiled c(R"(
class Base {
public:
    virtual void poke() {}
    void direct() {}
};
void test(Base& b) {
    b.poke();
    b.direct();
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* fn = c.find<FunctionDecl>("test");
  int virtual_calls = 0;
  int direct_calls = 0;
  walk(fn->body, [&](const Stmt* s) {
    if (const auto* call = s->as<CallExpr>()) {
      if (call->is_virtual_call) ++virtual_calls;
      else if (call->resolved != nullptr) ++direct_calls;
    }
  });
  EXPECT_EQ(virtual_calls, 1);
  EXPECT_EQ(direct_calls, 1);
}

TEST(Instantiate, OverloadResolutionByArity) {
  Compiled c(R"(
int pick(int a) { return 1; }
int pick(int a, int b) { return 2; }
int test() { return pick(1) + pick(1, 2); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* fn = c.find<FunctionDecl>("test");
  std::vector<std::size_t> arities;
  walk(fn->body, [&](const Stmt* s) {
    if (const auto* call = s->as<CallExpr>()) {
      if (call->resolved != nullptr)
        arities.push_back(call->resolved->params.size());
    }
  });
  ASSERT_EQ(arities.size(), 2u);
  EXPECT_EQ(arities[0], 1u);
  EXPECT_EQ(arities[1], 2u);
}

TEST(Instantiate, OverloadResolutionByType) {
  Compiled c(R"(
int pick(int a) { return 1; }
int pick(double a) { return 2; }
int test() { return pick(2.5); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* fn = c.find<FunctionDecl>("test");
  const FunctionDecl* resolved = nullptr;
  walk(fn->body, [&](const Stmt* s) {
    if (const auto* call = s->as<CallExpr>()) resolved = call->resolved;
  });
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(resolved->params[0]->type->spelling(), "double");
}

TEST(Instantiate, OperatorCallResolution) {
  Compiled c(R"(
class Buffer {
public:
    int& operator[](int i) { return storage[i]; }
private:
    int storage[16];
};
int test() {
    Buffer b;
    b[3] = 7;
    return b[3];
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* fn = c.find<FunctionDecl>("test");
  int index_ops = 0;
  walk(fn->body, [&](const Stmt* s) {
    if (const auto* idx = s->as<IndexExpr>()) {
      if (idx->resolved_operator != nullptr) ++index_ops;
    }
  });
  EXPECT_EQ(index_ops, 2);
}

TEST(Instantiate, StreamOperatorChains) {
  Compiled c(R"(
class ostream {
public:
    ostream& operator<<(int v);
    ostream& operator<<(const char* s);
};
ostream cout;
void test() { cout << "x" << 42; }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* fn = c.find<FunctionDecl>("test");
  int shift_ops = 0;
  walk(fn->body, [&](const Stmt* s) {
    if (const auto* bin = s->as<BinaryExpr>()) {
      if (bin->resolved_operator != nullptr) ++shift_ops;
    }
  });
  EXPECT_EQ(shift_ops, 2);
}

TEST(Instantiate, RecursionConverges) {
  Compiled c(R"(
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int test() { return fib(10); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
}

TEST(Instantiate, MutualRecursionAcrossTemplates) {
  Compiled c(R"(
template <class T>
class Ping {
public:
    void ping(int n) { if (n > 0) pong(n - 1); }
    void pong(int n) { if (n > 0) ping(n - 1); }
};
void test() {
    Ping<int> p;
    p.ping(4);
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* inst = c.find<ClassDecl>("Ping<int>");
  for (const Decl* m : inst->children()) {
    if (const auto* fn = m->as<FunctionDecl>()) {
      EXPECT_NE(fn->body, nullptr) << fn->name();
    }
  }
}

TEST(Instantiate, BodyCountAblatesWithMode) {
  // used-mode instantiates strictly fewer bodies than instantiate-all.
  Compiled used(kStackSource);
  frontend::FrontendOptions all_options;
  all_options.sema.used_mode = false;
  Compiled all(kStackSource, all_options);
  ASSERT_TRUE(used.result.success);
  ASSERT_TRUE(all.result.success);
  EXPECT_LT(used.result.sema->instantiatedBodyCount(),
            all.result.sema->instantiatedBodyCount());
}

}  // namespace
}  // namespace pdt

namespace pdt {
namespace {

using namespace ast;

TEST(MemberTemplate, DeductionAtCallSite) {
  Compiled c(R"(
class Printer {
public:
    template <class T>
    int describe(const T& value) { return helper(); }
    int helper() { return 7; }
};
class Payload { public: int x; };
void driver() {
    Printer p;
    Payload load;
    p.describe(3);
    p.describe(2.5);
    p.describe(load);
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* td = c.find<TemplateDecl>("describe");
  ASSERT_NE(td, nullptr);
  EXPECT_EQ(td->tkind, TemplateKind::MemberFunc);
  EXPECT_EQ(td->instantiations.size(), 3u);
  // Each instantiation is a member of Printer with a resolved body that
  // calls helper().
  for (const auto& inst : td->instantiations) {
    const auto* fn = inst.decl->as<FunctionDecl>();
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->memberOf()->name(), "Printer");
    ASSERT_NE(fn->body, nullptr);
    bool calls_helper = false;
    walk(fn->body, [&](const Stmt* s) {
      if (const auto* call = s->as<CallExpr>())
        calls_helper |= call->resolved != nullptr &&
                        call->resolved->name() == "helper";
    });
    EXPECT_TRUE(calls_helper);
  }
}

TEST(MemberTemplate, StaticMemberTemplateKind) {
  Compiled c(R"(
class Factory {
public:
    template <class T>
    static T zero() { return T(); }
};
int driver() { return Factory::zero<int>(); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* td = c.find<TemplateDecl>("zero");
  ASSERT_NE(td, nullptr);
  EXPECT_EQ(td->tkind, TemplateKind::StaticMem);
  ASSERT_EQ(td->instantiations.size(), 1u);
  EXPECT_TRUE(td->instantiations[0].decl->as<FunctionDecl>()->is_static);
}

TEST(MemberTemplate, ConstnessPreserved) {
  Compiled c(R"(
class Reader {
public:
    template <class T>
    T get(const T& fallback) const { return fallback; }
};
void driver() {
    Reader r;
    r.get(5);
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* td = c.find<TemplateDecl>("get");
  ASSERT_NE(td, nullptr);
  ASSERT_EQ(td->instantiations.size(), 1u);
  const auto* fn = td->instantiations[0].decl->as<FunctionDecl>();
  EXPECT_TRUE(fn->is_const);
  EXPECT_EQ(fn->signature->spelling(), "int (const int &) const");
}

TEST(MemberTemplate, InsideClassTemplateStillDiagnosed) {
  Compiled c(R"(
template <class U>
class Outer {
public:
    template <class T>
    void nested(const T& t) {}
};
)");
  EXPECT_FALSE(c.result.success);
  EXPECT_NE(c.diagText().find("member templates of class templates"),
            std::string::npos);
}

TEST(AliasTemplate, AliasDeclarationBehavesLikeTypedef) {
  Compiled c(R"(
using Int = int;
Int three() { return 3; }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* td = c.find<TypedefDecl>("Int");
  ASSERT_NE(td, nullptr);
  auto* fn = c.find<FunctionDecl>("three");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->return_type->as<TypedefType>()->underlying()->spelling(),
            "int");
}

TEST(AliasTemplate, AliasTemplateSubstitutesUnderlying) {
  Compiled c(R"(
template <class T> using Ptr = T*;
Ptr<int> p;
Ptr<const char> s;
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* td = c.find<TemplateDecl>("Ptr");
  ASSERT_NE(td, nullptr);
  EXPECT_EQ(td->tkind, TemplateKind::Alias);
  auto* p = c.find<VarDecl>("p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->type->spelling(), "int *");
  auto* s = c.find<VarDecl>("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->type->spelling(), "const char *");
}

TEST(AliasTemplate, AliasOfClassTemplateInstantiates) {
  Compiled c(R"(
template <class T>
class Stack {
public:
    void push(const T& x) {}
};
template <class T> using StackOf = Stack<T>;
void driver() {
    StackOf<int> st;
    st.push(1);
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* stack = c.find<TemplateDecl>("Stack");
  ASSERT_NE(stack, nullptr);
  // Naming the alias instantiated the aliased class template.
  ASSERT_EQ(stack->instantiations.size(), 1u);
  EXPECT_EQ(stack->instantiations[0].decl->name(), "Stack<int>");
}

TEST(AliasTemplate, DependentAliasUseInsideTemplate) {
  Compiled c(R"(
template <class T> using Ptr = T*;
template <class T>
class Holder {
public:
    Ptr<T> held;
};
Holder<int> h;
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  auto* holder = c.find<TemplateDecl>("Holder");
  ASSERT_NE(holder, nullptr);
  ASSERT_EQ(holder->instantiations.size(), 1u);
  const auto* inst = holder->instantiations[0].decl->as<ClassDecl>();
  const VarDecl* held = nullptr;
  for (const Decl* m : inst->children()) {
    if (m->name() == "held") held = m->as<VarDecl>();
  }
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->type->spelling(), "int *");
}

}  // namespace
}  // namespace pdt
