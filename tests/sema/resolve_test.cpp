// Name-resolution corner cases: shadowing, inheritance, using-directives,
// overload/override interplay, and diagnostic quality.
#include <gtest/gtest.h>

#include <functional>

#include "ast/walk.h"
#include "frontend/frontend.h"

namespace pdt {
namespace {

using namespace ast;

struct Compiled {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::CompileResult result;

  explicit Compiled(const std::string& source) {
    frontend::Frontend fe(sm, diags);
    result = fe.compileSource("resolve.cpp", source);
  }

  [[nodiscard]] std::string diagText() const {
    std::string out;
    for (const auto& d : diags.all())
      out += sm.describe(d.location) + ": " + d.message + "\n";
    return out;
  }

  [[nodiscard]] const FunctionDecl* fn(std::string_view name) const {
    const FunctionDecl* out = nullptr;
    walkDecls(result.ast->translationUnit(), [&](const Decl* d) {
      if (out == nullptr && d->name() == name) out = d->as<FunctionDecl>();
    });
    return out;
  }

  /// All resolved call targets inside `caller`, in walk order.
  [[nodiscard]] std::vector<const FunctionDecl*> callTargets(
      std::string_view caller) const {
    std::vector<const FunctionDecl*> out;
    const FunctionDecl* f = fn(caller);
    if (f == nullptr || f->body == nullptr) return out;
    walk(f->body, [&](const Stmt* s) {
      if (const auto* call = s->as<CallExpr>()) {
        if (call->resolved != nullptr) out.push_back(call->resolved);
      }
    });
    return out;
  }
};

TEST(Resolve, LocalShadowsGlobal) {
  Compiled c(R"(
int value = 1;
int probe() {
    int value = 2;
    return value;
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  const FunctionDecl* probe = c.fn("probe");
  const DeclRefExpr* ref = nullptr;
  walk(probe->body, [&](const Stmt* s) {
    if (const auto* r = s->as<DeclRefExpr>()) ref = r;
  });
  ASSERT_NE(ref, nullptr);
  ASSERT_NE(ref->decl, nullptr);
  // Resolves to the local VarDecl, not the global (the global is a child
  // of the TU; the local is parentless).
  EXPECT_EQ(ref->decl->parent(), nullptr);
}

TEST(Resolve, ParameterShadowsMember) {
  Compiled c(R"(
class Box {
public:
    void set(int v) { store(v); }
    void store(int v) { v_ = v; }
    int v_;
};
void driver() { Box b; b.set(1); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  const auto targets = c.callTargets("set");
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0]->name(), "store");
}

TEST(Resolve, InheritedMethodCalledThroughDerived) {
  Compiled c(R"(
class Base {
public:
    int common() { return 1; }
};
class Derived : public Base {};
int driver() {
    Derived d;
    return d.common();
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  const auto targets = c.callTargets("driver");
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0]->qualifiedName(), "Base::common");
}

TEST(Resolve, OverrideResolvesToStaticType) {
  // Static resolution binds to the member found in the static type;
  // the virtual flag records the dynamic-dispatch possibility.
  Compiled c(R"(
class Base {
public:
    virtual int f() { return 1; }
};
class Derived : public Base {
public:
    int f() { return 2; }
};
int driver(Derived& d, Base& b) {
    return d.f() + b.f();
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  const auto targets = c.callTargets("driver");
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0]->qualifiedName(), "Derived::f");
  EXPECT_EQ(targets[1]->qualifiedName(), "Base::f");
}

TEST(Resolve, OverrideOfVirtualIsVirtualCall) {
  // Derived::f overrides a virtual; the call through Derived& should be
  // flagged virtual even though Derived::f doesn't repeat the keyword.
  // KNOWN SUBSET LIMIT: the frontend flags only functions *declared*
  // virtual. This test documents the current behaviour.
  Compiled c(R"(
class Base {
public:
    virtual int f() { return 1; }
};
class Derived : public Base {
public:
    virtual int f() { return 2; }
};
int driver(Derived& d) { return d.f(); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  const FunctionDecl* driver = c.fn("driver");
  bool saw_virtual = false;
  walk(driver->body, [&](const Stmt* s) {
    if (const auto* call = s->as<CallExpr>()) saw_virtual |= call->is_virtual_call;
  });
  EXPECT_TRUE(saw_virtual);
}

TEST(Resolve, UsingDirectiveInFunctionScopeContext) {
  Compiled c(R"(
namespace util {
int helper() { return 1; }
}
using namespace util;
int driver() { return helper(); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  const auto targets = c.callTargets("driver");
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0]->qualifiedName(), "util::helper");
}

TEST(Resolve, NestedNamespaceQualifiedAccess) {
  Compiled c(R"(
namespace a {
namespace b {
int deep() { return 1; }
}
}
int driver() { return a::b::deep(); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  const auto targets = c.callTargets("driver");
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0]->qualifiedName(), "a::b::deep");
}

TEST(Resolve, OverloadPrefersExactTypeAcrossInheritance) {
  Compiled c(R"(
int handle(double d) { return 1; }
int handle(int i) { return 2; }
int handle(const char* s) { return 3; }
int driver() {
    return handle(1.5) + handle(7) + handle("x");
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  const auto targets = c.callTargets("driver");
  ASSERT_EQ(targets.size(), 3u);
  EXPECT_EQ(targets[0]->params[0]->type->spelling(), "double");
  EXPECT_EQ(targets[1]->params[0]->type->spelling(), "int");
  EXPECT_EQ(targets[2]->params[0]->type->spelling(), "const char *");
}

TEST(Resolve, DefaultArgumentsSatisfyArity) {
  Compiled c(R"(
int pad(int value, int width = 8, char fill = ' ') { return value; }
int driver() { return pad(1) + pad(1, 2) + pad(1, 2, 'x'); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  EXPECT_EQ(c.callTargets("driver").size(), 3u);
}

TEST(Resolve, RecursiveTemplateFunction) {
  Compiled c(R"(
template <class T>
T power(T base, int exp) {
    if (exp == 0)
        return 1;
    return base * power(base, exp - 1);
}
int driver() { return power(2, 8); }
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  // The instantiated body's recursive call resolves to itself.
  const TemplateDecl* td = nullptr;
  walkDecls(c.result.ast->translationUnit(), [&](const Decl* d) {
    if (td == nullptr && d->name() == "power") td = d->as<TemplateDecl>();
  });
  ASSERT_NE(td, nullptr);
  ASSERT_EQ(td->instantiations.size(), 1u);
  const auto* inst = td->instantiations[0].decl->as<FunctionDecl>();
  bool self_call = false;
  walk(inst->body, [&](const Stmt* s) {
    if (const auto* call = s->as<CallExpr>()) self_call |= call->resolved == inst;
  });
  EXPECT_TRUE(self_call);
}

TEST(Resolve, MemberOfBaseOfTemplateInstantiation) {
  Compiled c(R"(
class Counter {
public:
    void tick() { n = n + 1; }
    int n;
};
template <class T>
class Tracked : public Counter {
public:
    void use(const T& t) { tick(); }
};
void driver() {
    Tracked<double> t;
    t.use(1.5);
    t.tick();
}
)");
  ASSERT_TRUE(c.result.success) << c.diagText();
  // use()'s instantiated body resolves tick() through the base class.
  const auto driver_targets = c.callTargets("driver");
  ASSERT_EQ(driver_targets.size(), 2u);
  const FunctionDecl* use_fn = nullptr;
  walkDecls(c.result.ast->translationUnit(), [&](const Decl* d) {
    if (d->name() == "use" && d->as<FunctionDecl>() != nullptr &&
        d->as<FunctionDecl>()->body != nullptr)
      use_fn = d->as<FunctionDecl>();
  });
  ASSERT_NE(use_fn, nullptr);
  bool calls_tick = false;
  walk(use_fn->body, [&](const Stmt* s) {
    if (const auto* call = s->as<CallExpr>())
      calls_tick |= call->resolved != nullptr && call->resolved->name() == "tick";
  });
  EXPECT_TRUE(calls_tick);
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

TEST(Diagnose, WrongTemplateArity) {
  Compiled c("template <class A, class B> class Pair { public: A a; B b; };\n"
             "Pair<int> p;\n");
  EXPECT_FALSE(c.result.success);
  EXPECT_NE(c.diagText().find("template arguments"), std::string::npos);
}

TEST(Diagnose, InstantiatingIncompleteTemplate) {
  Compiled c("template <class T> class Fwd;\nFwd<int> f;\n");
  EXPECT_FALSE(c.result.success);
  EXPECT_NE(c.diagText().find("incomplete"), std::string::npos);
}

TEST(Diagnose, OutOfLineMemberMismatch) {
  Compiled c(R"(
template <class T>
class Box { public: void put(const T& x); };
template <class T>
void Box<T>::missing(const T& x) {}
)");
  EXPECT_FALSE(c.result.success);
  EXPECT_NE(c.diagText().find("no matching member"), std::string::npos);
}

TEST(Diagnose, DiagnosticsCarryLocations) {
  Compiled c("int ok;\n@@@\nint also_ok;\n");
  EXPECT_FALSE(c.result.success);
  EXPECT_NE(c.diagText().find("resolve.cpp:2:"), std::string::npos);
}

TEST(Diagnose, RecoveryKeepsGoing) {
  Compiled c(R"(
class Good1 { public: int a; };
class Broken { public: int b
class Good2 { public: int c; };
)");
  EXPECT_FALSE(c.result.success);
  // At least one of the surrounding declarations must survive recovery.
  bool good1 = false;
  walkDecls(c.result.ast->translationUnit(), [&](const Decl* d) {
    good1 |= d->name() == "Good1";
  });
  EXPECT_TRUE(good1);
}

}  // namespace
}  // namespace pdt
