// DUCTAPE tests: the Figure-4 class hierarchy, pointer navigation, the
// PDB whole-database queries, and pdbmerge's duplicate elimination.
#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>

#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/writer.h"

namespace pdt::ductape {
namespace {

// ---- Figure 4: every is-a edge of the hierarchy, checked at compile time.
static_assert(std::is_base_of_v<pdbSimpleItem, pdbFile>);
static_assert(std::is_base_of_v<pdbSimpleItem, pdbItem>);
static_assert(std::is_base_of_v<pdbItem, pdbMacro>);
static_assert(std::is_base_of_v<pdbItem, pdbType>);
static_assert(std::is_base_of_v<pdbItem, pdbFatItem>);
static_assert(std::is_base_of_v<pdbFatItem, pdbTemplate>);
static_assert(std::is_base_of_v<pdbFatItem, pdbNamespace>);
static_assert(std::is_base_of_v<pdbFatItem, pdbTemplateItem>);
static_assert(std::is_base_of_v<pdbTemplateItem, pdbClass>);
static_assert(std::is_base_of_v<pdbTemplateItem, pdbRoutine>);
// ...and the negative edges that keep the tree a tree.
static_assert(!std::is_base_of_v<pdbItem, pdbFile>);
static_assert(!std::is_base_of_v<pdbFatItem, pdbMacro>);
static_assert(!std::is_base_of_v<pdbTemplateItem, pdbNamespace>);

PDB compileToPdb(const std::string& name, const std::string& source,
                 std::string* diag_out = nullptr) {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource(name, source);
  if (diag_out != nullptr) {
    for (const auto& d : diags.all()) *diag_out += d.message + "\n";
  }
  return PDB::fromPdbFile(ilanalyzer::analyze(result, sm));
}

constexpr const char* kStackSource = R"(
template <class Object>
class Stack {
public:
    explicit Stack(int capacity = 10) : topOfStack(-1) {}
    bool isEmpty() const { return topOfStack == -1; }
    void push(const Object& x) { topOfStack = topOfStack + 1; }
    Object topAndPop() { Object r; pop(); return r; }
    void pop() { topOfStack = topOfStack - 1; }
private:
    int topOfStack;
};
int main() {
    Stack<int> s;
    s.push(3);
    while (!s.isEmpty())
        s.topAndPop();
    return 0;
}
)";

TEST(Ductape, VectorsArePopulated) {
  std::string diag;
  PDB pdb = compileToPdb("stack.cpp", kStackSource, &diag);
  EXPECT_TRUE(diag.empty()) << diag;
  EXPECT_EQ(pdb.getFileVec().size(), 1u);
  EXPECT_FALSE(pdb.getRoutineVec().empty());
  EXPECT_FALSE(pdb.getClassVec().empty());
  EXPECT_FALSE(pdb.getTypeVec().empty());
  EXPECT_FALSE(pdb.getTemplateVec().empty());
  EXPECT_EQ(pdb.getItemVec().size(),
            pdb.getFileVec().size() + pdb.getRoutineVec().size() +
                pdb.getClassVec().size() + pdb.getTypeVec().size() +
                pdb.getTemplateVec().size() + pdb.getNamespaceVec().size() +
                pdb.getMacroVec().size());
}

TEST(Ductape, NavigationThroughPointers) {
  PDB pdb = compileToPdb("stack.cpp", kStackSource);
  const pdbClass* stack = nullptr;
  for (const pdbClass* c : pdb.getClassVec()) {
    if (c->name() == "Stack<int>") stack = c;
  }
  ASSERT_NE(stack, nullptr);
  // Class -> template -> kind.
  ASSERT_NE(stack->isTemplate(), nullptr);
  EXPECT_EQ(stack->isTemplate()->name(), "Stack");
  EXPECT_EQ(stack->isTemplate()->kind(), pdbItem::TE_CLASS);
  // Class -> member functions -> parent class (cycle closes).
  ASSERT_FALSE(stack->funcMembers().empty());
  const pdbRoutine* push = nullptr;
  for (const pdbRoutine* r : stack->funcMembers()) {
    if (r->name() == "push") push = r;
  }
  ASSERT_NE(push, nullptr);
  EXPECT_EQ(push->parentClass(), stack);
  EXPECT_EQ(push->fullName(), "Stack<int>::push");
  EXPECT_EQ(push->access(), pdbItem::AC_PUB);
  // Routine -> signature type -> argument types.
  ASSERT_NE(push->signature(), nullptr);
  EXPECT_EQ(push->signature()->kind(), pdbType::TY_FUNC);
  ASSERT_EQ(push->signature()->arguments().size(), 1u);
  EXPECT_EQ(push->signature()->arguments()[0]->kind(), pdbType::TY_REF);
}

TEST(Ductape, CalleesAndCallers) {
  PDB pdb = compileToPdb("stack.cpp", kStackSource);
  const pdbRoutine* main_fn = nullptr;
  const pdbRoutine* push = nullptr;
  const pdbRoutine* pop = nullptr;
  const pdbRoutine* top_and_pop = nullptr;
  for (const pdbRoutine* r : pdb.getRoutineVec()) {
    if (r->name() == "main") main_fn = r;
    if (r->name() == "push") push = r;
    if (r->name() == "pop") pop = r;
    if (r->name() == "topAndPop") top_and_pop = r;
  }
  ASSERT_NE(main_fn, nullptr);
  ASSERT_NE(push, nullptr);
  ASSERT_NE(pop, nullptr);
  ASSERT_NE(top_and_pop, nullptr);

  bool main_calls_push = false;
  for (const pdbCall* call : main_fn->callees())
    main_calls_push |= call->call() == push;
  EXPECT_TRUE(main_calls_push);

  // Inverse edges: push's callers include main.
  bool push_called_by_main = false;
  for (const pdbCall* call : push->callers())
    push_called_by_main |= call->call() == main_fn;
  EXPECT_TRUE(push_called_by_main);

  // Transitive: topAndPop calls pop.
  bool tap_calls_pop = false;
  for (const pdbCall* call : top_and_pop->callees())
    tap_calls_pop |= call->call() == pop;
  EXPECT_TRUE(tap_calls_pop);
}

TEST(Ductape, CallTreeRoots) {
  PDB pdb = compileToPdb("stack.cpp", kStackSource);
  const auto roots = pdb.getCallTreeRoots();
  bool main_is_root = false;
  for (const pdbRoutine* r : roots) main_is_root |= r->name() == "main";
  EXPECT_TRUE(main_is_root);
  for (const pdbRoutine* r : roots) EXPECT_NE(r->name(), "push");
}

TEST(Ductape, ClassHierarchyRootsAndDerived) {
  PDB pdb = compileToPdb("shapes.cpp", R"(
class Shape { public: virtual double area() const { return 0.0; } };
class Circle : public Shape { public: double area() const { return 3.14; } };
class Square : public Shape {};
class RedSquare : public Square {};
)");
  const auto roots = pdb.getClassHierarchyRoots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0]->name(), "Shape");
  EXPECT_EQ(roots[0]->derivedClasses().size(), 2u);
  const pdbClass* square = nullptr;
  for (const pdbClass* c : pdb.getClassVec()) {
    if (c->name() == "Square") square = c;
  }
  ASSERT_NE(square, nullptr);
  ASSERT_EQ(square->derivedClasses().size(), 1u);
  EXPECT_EQ(square->derivedClasses()[0]->name(), "RedSquare");
  ASSERT_EQ(square->baseClasses().size(), 1u);
  EXPECT_EQ(square->baseClasses()[0].base()->name(), "Shape");
}

TEST(Ductape, IncludeTreeRoots) {
  SourceManager sm;
  DiagnosticEngine diags;
  sm.addVirtualFile("common.h", "int shared;\n");
  frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource("main.cpp", "#include \"common.h\"\nint m;\n");
  PDB pdb = PDB::fromPdbFile(ilanalyzer::analyze(result, sm));
  const auto roots = pdb.getIncludeTreeRoots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0]->name(), "main.cpp");
  ASSERT_EQ(roots[0]->includes().size(), 1u);
  EXPECT_EQ(roots[0]->includes()[0]->name(), "common.h");
}

TEST(Ductape, FlagsSupportCycleCuts) {
  PDB pdb = compileToPdb("stack.cpp", kStackSource);
  const pdbRoutine* r = pdb.getRoutineVec().front();
  EXPECT_EQ(r->flag(), INACTIVE);
  r->flag(ACTIVE);
  EXPECT_EQ(r->flag(), ACTIVE);
  r->flag(INACTIVE);
  EXPECT_EQ(r->flag(), INACTIVE);
}

TEST(Ductape, WriteReadRoundTrip) {
  PDB pdb = compileToPdb("stack.cpp", kStackSource);
  std::ostringstream ss;
  pdb.write(ss);
  EXPECT_NE(ss.str().find("<PDB 1.0>"), std::string::npos);
  EXPECT_NE(ss.str().find("Stack<int>"), std::string::npos);
}

TEST(Ductape, AliasTemplateKindIsExposed) {
  PDB pdb = compileToPdb("alias.cpp", R"(
template <class T> using Handle = T*;
Handle<int> h;
)");
  const pdbTemplate* alias = nullptr;
  for (const pdbTemplate* t : pdb.getTemplateVec()) {
    if (t->name() == "Handle") alias = t;
  }
  ASSERT_NE(alias, nullptr);
  EXPECT_EQ(alias->kind(), pdbItem::TE_ALIAS);
}

TEST(Ductape, ReadMissingFileReportsError) {
  PDB pdb = PDB::read("/nonexistent/never.pdb");
  EXPECT_FALSE(pdb.valid());
  EXPECT_FALSE(pdb.errorMessage().empty());
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

constexpr const char* kLibHeader = R"(
#ifndef BOX_H
#define BOX_H
template <class T>
class Box {
public:
    void put(const T& x) { value = x; }
    T value;
};
#endif
)";

TEST(Ductape, MergeEliminatesDuplicateInstantiations) {
  // Two translation units both instantiate Box<int>: after the merge
  // there must be exactly one Box<int> and one Box template (Table 2).
  SourceManager sm1;
  DiagnosticEngine diags1;
  sm1.addVirtualFile("box.h", kLibHeader);
  frontend::Frontend fe1(sm1, diags1);
  auto r1 = fe1.compileSource(
      "tu1.cpp", "#include \"box.h\"\nvoid f1() { Box<int> b; b.put(1); }\n");
  PDB pdb1 = PDB::fromPdbFile(ilanalyzer::analyze(r1, sm1));

  SourceManager sm2;
  DiagnosticEngine diags2;
  sm2.addVirtualFile("box.h", kLibHeader);
  frontend::Frontend fe2(sm2, diags2);
  auto r2 = fe2.compileSource(
      "tu2.cpp",
      "#include \"box.h\"\nvoid f2() { Box<int> b; Box<char> c; b.put(2); }\n");
  PDB pdb2 = PDB::fromPdbFile(ilanalyzer::analyze(r2, sm2));

  const auto count = [](const PDB& p, std::string_view name) {
    std::size_t n = 0;
    for (const pdbClass* c : p.getClassVec()) n += c->name() == name;
    return n;
  };
  ASSERT_EQ(count(pdb1, "Box<int>"), 1u);
  ASSERT_EQ(count(pdb2, "Box<int>"), 1u);

  pdb1.merge(pdb2);
  EXPECT_EQ(count(pdb1, "Box<int>"), 1u);   // duplicate eliminated
  EXPECT_EQ(count(pdb1, "Box<char>"), 1u);  // new instantiation kept

  std::size_t box_templates = 0;
  for (const pdbTemplate* t : pdb1.getTemplateVec())
    box_templates += t->name() == "Box" && t->kind() == pdbItem::TE_CLASS;
  EXPECT_EQ(box_templates, 1u);

  // Both drivers survive.
  bool has_f1 = false, has_f2 = false;
  for (const pdbRoutine* r : pdb1.getRoutineVec()) {
    has_f1 |= r->name() == "f1";
    has_f2 |= r->name() == "f2";
  }
  EXPECT_TRUE(has_f1);
  EXPECT_TRUE(has_f2);

  // Shared header deduplicated; two main files remain.
  std::size_t box_h = 0;
  for (const pdbFile* f : pdb1.getFileVec()) box_h += f->name() == "box.h";
  EXPECT_EQ(box_h, 1u);
  EXPECT_EQ(pdb1.getFileVec().size(), 3u);
}

TEST(Ductape, MergeRewiresCallsAcrossUnits) {
  SourceManager sm1;
  DiagnosticEngine diags1;
  sm1.addVirtualFile("box.h", kLibHeader);
  frontend::Frontend fe1(sm1, diags1);
  auto r1 = fe1.compileSource(
      "tu1.cpp", "#include \"box.h\"\nvoid f1() { Box<int> b; b.put(1); }\n");
  PDB merged = PDB::fromPdbFile(ilanalyzer::analyze(r1, sm1));

  SourceManager sm2;
  DiagnosticEngine diags2;
  sm2.addVirtualFile("box.h", kLibHeader);
  frontend::Frontend fe2(sm2, diags2);
  auto r2 = fe2.compileSource(
      "tu2.cpp", "#include \"box.h\"\nvoid f2() { Box<int> b; b.put(2); }\n");
  PDB other = PDB::fromPdbFile(ilanalyzer::analyze(r2, sm2));

  merged.merge(other);
  // f2's call to Box<int>::put must target the single merged routine.
  const pdbRoutine* f2 = nullptr;
  const pdbRoutine* put = nullptr;
  std::size_t put_count = 0;
  for (const pdbRoutine* r : merged.getRoutineVec()) {
    if (r->name() == "f2") f2 = r;
    if (r->name() == "put") {
      put = r;
      ++put_count;
    }
  }
  ASSERT_NE(f2, nullptr);
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put_count, 1u);  // duplicate member instantiation merged away
  bool f2_calls_put = false;
  for (const pdbCall* call : f2->callees()) f2_calls_put |= call->call() == put;
  EXPECT_TRUE(f2_calls_put);
}

TEST(Ductape, MergeIsIdempotent) {
  PDB a = compileToPdb("a.cpp", kStackSource);
  PDB b = compileToPdb("a.cpp", kStackSource);
  const std::size_t before = a.getItemVec().size();
  a.merge(b);
  EXPECT_EQ(a.getItemVec().size(), before);
}

TEST(Ductape, MergePreservesDisjointContent) {
  PDB a = compileToPdb("a.cpp", "int alpha() { return 1; }\n");
  PDB b = compileToPdb("b.cpp", "int beta() { return 2; }\n");
  a.merge(b);
  bool has_alpha = false, has_beta = false;
  for (const pdbRoutine* r : a.getRoutineVec()) {
    has_alpha |= r->name() == "alpha";
    has_beta |= r->name() == "beta";
  }
  EXPECT_TRUE(has_alpha);
  EXPECT_TRUE(has_beta);
  EXPECT_EQ(a.getFileVec().size(), 2u);
}

}  // namespace
}  // namespace pdt::ductape

namespace pdt::ductape {
namespace {

TEST(Ductape, EnumConstantsExposed) {
  PDB pdb = compileToPdb("e.cpp",
                         "enum Mode { OFF, SLOW = 5, FAST };\nMode m = SLOW;\n");
  const pdbType* mode = nullptr;
  for (const pdbType* t : pdb.getTypeVec()) {
    if (t->kind() == pdbType::TY_ENUM) mode = t;
  }
  ASSERT_NE(mode, nullptr);
  ASSERT_EQ(mode->enumConstants().size(), 3u);
  EXPECT_EQ(mode->enumConstants()[0].first, "OFF");
  EXPECT_EQ(mode->enumConstants()[0].second, 0);
  EXPECT_EQ(mode->enumConstants()[1].second, 5);
  EXPECT_EQ(mode->enumConstants()[2].second, 6);
}

TEST(Ductape, EnumConstantsSurviveAsciiRoundTrip) {
  PDB pdb = compileToPdb("e.cpp", "enum Tag { A = 2, B };\nTag t = A;\n");
  std::ostringstream os;
  pdb.write(os);
  EXPECT_NE(os.str().find("yenum A 2"), std::string::npos);
  EXPECT_NE(os.str().find("yenum B 3"), std::string::npos);
}

}  // namespace
}  // namespace pdt::ductape

namespace pdt::ductape {
namespace {

// Satellite of the pdbcheck work: the whole-program call graph a merged
// database exposes. A call into a routine that is only declared in the
// calling TU must, after merging with the defining TU, resolve to the
// defined routine with symmetric callees()/callers() edges, and repeated
// merges of the same inputs must serialize to identical bytes.
TEST(Ductape, CrossTuCallEdgesAreSymmetricAndStable) {
  const auto build = [] {
    PDB a = compileToPdb(
        "caller.cpp", "int work(int v);\nint driver() { return work(3); }\n");
    PDB b = compileToPdb("callee.cpp", "int work(int v) { return v + 1; }\n");
    a.merge(b);
    return a;
  };
  PDB merged = build();

  const pdbRoutine* driver = nullptr;
  const pdbRoutine* work = nullptr;
  for (const pdbRoutine* r : merged.getRoutineVec()) {
    if (r->name() == "driver") driver = r;
    if (r->name() == "work") work = r;
  }
  ASSERT_NE(driver, nullptr);
  ASSERT_NE(work, nullptr);
  // The declaration-only 'work' from caller.cpp and the definition from
  // callee.cpp merged into one defined routine.
  EXPECT_TRUE(work->isDefined());

  bool forward = false;
  for (const pdbCall* c : driver->callees()) forward |= c->call() == work;
  EXPECT_TRUE(forward) << "driver -> work edge lost by merge";
  bool backward = false;
  for (const pdbCall* c : work->callers()) backward |= c->call() == driver;
  EXPECT_TRUE(backward) << "work's callers do not record driver";

  // Every callee edge in the merged database has its inverse.
  for (const pdbRoutine* r : merged.getRoutineVec()) {
    for (const pdbCall* c : r->callees()) {
      bool has_inverse = false;
      for (const pdbCall* back : c->call()->callers())
        has_inverse |= back->call() == r;
      EXPECT_TRUE(has_inverse) << r->fullName() << " -> "
                               << c->call()->fullName();
    }
  }

  // Stability: rebuilding from the same inputs gives the same bytes.
  EXPECT_EQ(pdb::writeToString(merged.raw()), pdb::writeToString(build().raw()));
}

TEST(Ductape, MergeUnionsNamespaceMembers) {
  PDB a = compileToPdb("a.cpp", "namespace util { void from_a() {} }\n");
  PDB b = compileToPdb("b.cpp", "namespace util { void from_b() {} }\n");
  a.merge(b);
  ASSERT_EQ(a.getNamespaceVec().size(), 1u);
  const pdbNamespace* util = a.getNamespaceVec()[0];
  std::size_t members = 0;
  bool has_a = false, has_b = false;
  for (const pdbItem* m : util->members()) {
    ++members;
    has_a |= m->name() == "from_a";
    has_b |= m->name() == "from_b";
  }
  EXPECT_EQ(members, 2u);
  EXPECT_TRUE(has_a);
  EXPECT_TRUE(has_b);
}

}  // namespace
}  // namespace pdt::ductape
