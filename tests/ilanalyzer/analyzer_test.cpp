// IL Analyzer tests: IL -> PDB extraction, including the Figure-3
#include "pdb/reader.h"
// structure for the paper's Stack example (tests/integration has the
// full end-to-end check against the shipped input files).
#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/writer.h"

namespace pdt {
namespace {

struct Analyzed {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::CompileResult result;
  pdb::PdbFile pdb;

  explicit Analyzed(const std::string& source,
                    ilanalyzer::AnalyzerOptions options = {},
                    frontend::FrontendOptions fe_options = {}) {
    frontend::Frontend fe(sm, diags, std::move(fe_options));
    result = fe.compileSource("test.cpp", source);
    pdb = ilanalyzer::analyze(result, sm, options);
  }

  [[nodiscard]] std::string diagText() const {
    std::string out;
    for (const auto& d : diags.all())
      out += sm.describe(d.location) + ": " + d.message + "\n";
    return out;
  }

  [[nodiscard]] const pdb::RoutineItem* routine(std::string_view name) const {
    for (const auto& r : pdb.routines()) {
      if (r.name == name) return &r;
    }
    return nullptr;
  }
  [[nodiscard]] const pdb::ClassItem* cls(std::string_view name) const {
    for (const auto& c : pdb.classes()) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }
  [[nodiscard]] const pdb::TemplateItem* templ(std::string_view name) const {
    for (const auto& t : pdb.templates()) {
      if (t.name == name) return &t;
    }
    return nullptr;
  }
};

TEST(Analyzer, EmitsSourceFilesWithIncludes) {
  SourceManager sm;
  DiagnosticEngine diags;
  sm.addVirtualFile("inner.h", "int inner;\n");
  sm.addVirtualFile("outer.h", "#include \"inner.h\"\nint outer;\n");
  frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource("main.cpp", "#include \"outer.h\"\n");
  auto pdb = ilanalyzer::analyze(result, sm);
  ASSERT_EQ(pdb.sourceFiles().size(), 3u);
  EXPECT_EQ(pdb.sourceFiles()[0].name, "main.cpp");
  ASSERT_EQ(pdb.sourceFiles()[0].includes.size(), 1u);
  const auto* outer = pdb.findSourceFile(pdb.sourceFiles()[0].includes[0]);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->name, "outer.h");
  ASSERT_EQ(outer->includes.size(), 1u);
}

TEST(Analyzer, RoutineAttributes) {
  Analyzed a(R"(
class Widget {
public:
    virtual int poke(double x) const;
};
static void helper() {}
)");
  ASSERT_TRUE(a.result.success) << a.diagText();
  const auto* poke = a.routine("poke");
  ASSERT_NE(poke, nullptr);
  EXPECT_EQ(poke->access, "pub");
  EXPECT_EQ(poke->virtuality, "virt");
  EXPECT_EQ(poke->linkage, "C++");
  ASSERT_TRUE(poke->parent.has_value());
  EXPECT_EQ(poke->parent->kind, pdb::ItemKind::Class);
  const auto* sig = a.pdb.findType(poke->signature);
  ASSERT_NE(sig, nullptr);
  EXPECT_EQ(sig->kind, "func");
  EXPECT_EQ(sig->name, "int (double) const");

  const auto* helper = a.routine("helper");
  ASSERT_NE(helper, nullptr);
  EXPECT_EQ(helper->storage, "static");
  EXPECT_TRUE(helper->defined);
}

TEST(Analyzer, RoutineKinds) {
  Analyzed a(R"(
class Thing {
public:
    Thing();
    ~Thing();
    Thing& operator=(const Thing& o);
    operator int() const;
    void normal();
};
)");
  ASSERT_TRUE(a.result.success) << a.diagText();
  EXPECT_EQ(a.routine("Thing")->kind, "ctor");
  EXPECT_EQ(a.routine("~Thing")->kind, "dtor");
  EXPECT_EQ(a.routine("operator=")->kind, "op");
  EXPECT_EQ(a.routine("operator int")->kind, "conv");
  EXPECT_EQ(a.routine("normal")->kind, "routine");
}

TEST(Analyzer, CallsWithVirtualFlagAndLocation) {
  Analyzed a(R"(
class Base {
public:
    virtual void v() {}
    void d() {}
};
void driver(Base& b) {
    b.v();
    b.d();
}
)");
  ASSERT_TRUE(a.result.success) << a.diagText();
  const auto* driver = a.routine("driver");
  ASSERT_NE(driver, nullptr);
  ASSERT_EQ(driver->calls.size(), 2u);
  EXPECT_TRUE(driver->calls[0].is_virtual);
  EXPECT_EQ(driver->calls[0].position.line, 8u);
  EXPECT_FALSE(driver->calls[1].is_virtual);
  EXPECT_EQ(driver->calls[1].position.line, 9u);
}

TEST(Analyzer, LifetimeCtorDtorCalls) {
  // Paper §3.1: ctor/dtor calls come from object lifetimes, and the
  // destructor's calling location is where the lifetime ends.
  Analyzed a(R"(
class Guard {
public:
    Guard() {}
    ~Guard() {}
};
void scoped() {
    Guard g;
    int x = 0;
}
)");
  ASSERT_TRUE(a.result.success) << a.diagText();
  const auto* scoped = a.routine("scoped");
  ASSERT_NE(scoped, nullptr);
  ASSERT_EQ(scoped->calls.size(), 2u);
  const auto* ctor = a.routine("Guard");
  const auto* dtor = a.routine("~Guard");
  ASSERT_NE(ctor, nullptr);
  ASSERT_NE(dtor, nullptr);
  EXPECT_EQ(scoped->calls[0].routine, ctor->id);
  EXPECT_EQ(scoped->calls[0].position.line, 8u);   // declaration
  EXPECT_EQ(scoped->calls[1].routine, dtor->id);
  EXPECT_EQ(scoped->calls[1].position.line, 10u);  // scope end
}

TEST(Analyzer, CtorInitializerCalls) {
  Analyzed a(R"(
class Member { public: Member(int v) {} };
class Owner {
public:
    Owner() : m(5) {}
private:
    Member m;
};
void test() { Owner o; }
)");
  ASSERT_TRUE(a.result.success) << a.diagText();
  const auto* owner_ctor = a.routine("Owner");
  ASSERT_NE(owner_ctor, nullptr);
  ASSERT_GE(owner_ctor->calls.size(), 1u);
  const auto* member_ctor = a.routine("Member");
  ASSERT_NE(member_ctor, nullptr);
  EXPECT_EQ(owner_ctor->calls[0].routine, member_ctor->id);
}

TEST(Analyzer, ClassAttributes) {
  Analyzed a(R"(
class A { public: int x; };
class B {};
class C : public A, private virtual B {
public:
    void method();
    typedef int size_type;
private:
    double data;
};
)");
  ASSERT_TRUE(a.result.success) << a.diagText();
  const auto* c = a.cls("C");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, "class");
  ASSERT_EQ(c->bases.size(), 2u);
  EXPECT_EQ(c->bases[0].access, "pub");
  EXPECT_FALSE(c->bases[0].is_virtual);
  EXPECT_EQ(c->bases[1].access, "priv");
  EXPECT_TRUE(c->bases[1].is_virtual);
  ASSERT_EQ(c->funcs.size(), 1u);
  ASSERT_EQ(c->members.size(), 2u);
  EXPECT_EQ(c->members[0].name, "size_type");
  EXPECT_EQ(c->members[0].kind, "type");
  EXPECT_EQ(c->members[1].name, "data");
  EXPECT_EQ(c->members[1].kind, "var");
  EXPECT_EQ(c->members[1].access, "priv");
}

TEST(Analyzer, TemplateOriginByLocationScan) {
  // The paper's method: match instantiation locations against the
  // pre-built template list.
  Analyzed a(R"(
template <class T>
class Box {
public:
    void fill(const T& v) { value = v; }
    T value;
};
void test() {
    Box<int> b;
    b.fill(3);
}
)");
  ASSERT_TRUE(a.result.success) << a.diagText();
  const auto* box_int = a.cls("Box<int>");
  ASSERT_NE(box_int, nullptr);
  ASSERT_TRUE(box_int->template_id.has_value());
  const auto* te = a.pdb.findTemplate(*box_int->template_id);
  ASSERT_NE(te, nullptr);
  EXPECT_EQ(te->name, "Box");
  EXPECT_EQ(te->kind, "class");

  const auto* fill = a.routine("fill");
  ASSERT_NE(fill, nullptr);
  ASSERT_TRUE(fill->template_id.has_value());
  const auto* fill_te = a.pdb.findTemplate(*fill->template_id);
  ASSERT_NE(fill_te, nullptr);
  EXPECT_EQ(fill_te->kind, "memfunc");
}

TEST(Analyzer, SpecializationOriginReproducesPaperLimitation) {
  const char* source = R"(
template <class T> class Traits { public: int g; };
template <> class Traits<char> { public: int s; };
Traits<char> t;
Traits<int> u;
)";
  // Default (location scan): the specialization has no ctempl.
  Analyzed scan(source);
  ASSERT_TRUE(scan.result.success) << scan.diagText();
  const auto* spec = scan.cls("Traits<char>");
  ASSERT_NE(spec, nullptr);
  EXPECT_TRUE(spec->is_specialization);
  EXPECT_FALSE(spec->template_id.has_value());
  const auto* inst = scan.cls("Traits<int>");
  ASSERT_NE(inst, nullptr);
  EXPECT_TRUE(inst->template_id.has_value());

  // Paper's proposed fix: direct template IDs in the IL.
  ilanalyzer::AnalyzerOptions direct;
  direct.use_direct_template_links = true;
  frontend::FrontendOptions fe;
  fe.sema.record_specialization_origin = true;
  Analyzed fixed(source, direct, fe);
  const auto* fixed_spec = fixed.cls("Traits<char>");
  ASSERT_NE(fixed_spec, nullptr);
  EXPECT_TRUE(fixed_spec->template_id.has_value());
}

TEST(Analyzer, UninstantiatedTemplatesEmittedForSiloon) {
  // §4.2: "A useful extension to PDT would be to provide access to all
  // templates, whether instantiated or not."
  const char* source = "template <class T> class Unused { public: T v; };\n";
  Analyzed with(source);
  EXPECT_NE(with.templ("Unused"), nullptr);

  ilanalyzer::AnalyzerOptions skip;
  skip.emit_uninstantiated_templates = false;
  Analyzed without(source, skip);
  EXPECT_EQ(without.templ("Unused"), nullptr);
}

TEST(Analyzer, PatternEntitiesAreNotRoutinesOrClasses) {
  Analyzed a(R"(
template <class T>
class OnlyPattern { public: void f() {} };
)");
  ASSERT_TRUE(a.result.success) << a.diagText();
  // No instantiation: the pattern itself must not leak as cl/ro items.
  EXPECT_EQ(a.cls("OnlyPattern"), nullptr);
  EXPECT_EQ(a.routine("f"), nullptr);
  EXPECT_NE(a.templ("OnlyPattern"), nullptr);
}

TEST(Analyzer, MacrosRecorded) {
  Analyzed a("#define LIMIT 64\n#define SQR(x) ((x)*(x))\n#undef LIMIT\nint x;\n");
  ASSERT_TRUE(a.result.success) << a.diagText();
  ASSERT_EQ(a.pdb.macros().size(), 3u);
  EXPECT_EQ(a.pdb.macros()[0].name, "LIMIT");
  EXPECT_EQ(a.pdb.macros()[0].kind, "def");
  EXPECT_EQ(a.pdb.macros()[2].kind, "undef");
  EXPECT_NE(a.pdb.macros()[1].text.find("#define SQR"), std::string::npos);
}

TEST(Analyzer, NamespacesWithMembers) {
  Analyzed a(R"(
namespace math {
int abs(int x) { return x; }
class Matrix {};
namespace detail { int helper; }
}
)");
  ASSERT_TRUE(a.result.success) << a.diagText();
  const pdb::NamespaceItem* math = nullptr;
  for (const auto& n : a.pdb.namespaces()) {
    if (n.name == "math") math = &n;
  }
  ASSERT_NE(math, nullptr);
  EXPECT_GE(math->members.size(), 3u);
  const auto* abs_item = a.routine("abs");
  ASSERT_NE(abs_item, nullptr);
  ASSERT_TRUE(abs_item->parent.has_value());
  EXPECT_EQ(abs_item->parent->kind, pdb::ItemKind::Namespace);
}

TEST(Analyzer, TypeGraph) {
  Analyzed a("const int& f(char* p);\n");
  ASSERT_TRUE(a.result.success) << a.diagText();
  const auto* f = a.routine("f");
  ASSERT_NE(f, nullptr);
  const auto* sig = a.pdb.findType(f->signature);
  ASSERT_NE(sig, nullptr);
  ASSERT_TRUE(sig->return_type.has_value());
  // const int & -> ref -> tref(const) -> int
  const auto* ref = a.pdb.findType(sig->return_type->id);
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->kind, "ref");
  const auto* tref = a.pdb.findType(ref->ref->id);
  ASSERT_NE(tref, nullptr);
  EXPECT_EQ(tref->kind, "tref");
  ASSERT_EQ(tref->qualifiers.size(), 1u);
  EXPECT_EQ(tref->qualifiers[0], "const");
  const auto* base = a.pdb.findType(tref->ref->id);
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->kind, "int");
  // char* param -> ptr -> char
  ASSERT_EQ(sig->params.size(), 1u);
  const auto* ptr = a.pdb.findType(sig->params[0].id);
  ASSERT_NE(ptr, nullptr);
  EXPECT_EQ(ptr->kind, "ptr");
}

TEST(Analyzer, MemberTypeReferencesClassDirectly) {
  // Figure 3: "cmtype cl#63" — class members of class type reference the
  // cl item directly.
  Analyzed a(R"(
class Engine {};
class Car {
public:
    Engine engine;
};
)");
  ASSERT_TRUE(a.result.success) << a.diagText();
  const auto* car = a.cls("Car");
  ASSERT_NE(car, nullptr);
  ASSERT_EQ(car->members.size(), 1u);
  EXPECT_EQ(car->members[0].type.kind, pdb::ItemKind::Class);
  const auto* engine = a.pdb.findClass(car->members[0].type.id);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->name, "Engine");
}

TEST(Analyzer, AliasTemplateEmittedWithAliasKind) {
  Analyzed a(R"(
template <class T> using Ptr = T*;
Ptr<int> p;
)");
  ASSERT_TRUE(a.result.success) << a.diagText();
  const auto* te = a.templ("Ptr");
  ASSERT_NE(te, nullptr);
  EXPECT_EQ(te->kind, "alias");
  EXPECT_NE(te->text.find("using Ptr ="), std::string::npos);

  // The alias survives a write -> parse round trip with its kind intact.
  const std::string text = pdb::writeToString(a.pdb);
  pdb::ReadResult parsed = pdb::readFromString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  const pdb::TemplateItem* reread = nullptr;
  for (const auto& t : parsed.pdb.templates()) {
    if (t.name == "Ptr") reread = &t;
  }
  ASSERT_NE(reread, nullptr);
  EXPECT_EQ(reread->kind, "alias");
}

TEST(Analyzer, WriteParseAnalyzeRoundTrip) {
  Analyzed a(R"(
template <class T> class Box { public: T v; void set(const T& x) { v = x; } };
void test() { Box<int> b; b.set(1); }
)");
  ASSERT_TRUE(a.result.success) << a.diagText();
  const std::string text = pdb::writeToString(a.pdb);
  pdb::ReadResult parsed = pdb::readFromString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  EXPECT_EQ(parsed.pdb.itemCount(), a.pdb.itemCount());
}

}  // namespace
}  // namespace pdt
