// Direct unit tests for the IL: type canonicalization (pointer equality
// for structural equality), spellings, and the tree dumper.
#include <gtest/gtest.h>

#include <sstream>

#include "ast/context.h"
#include "ast/dump.h"
#include "frontend/frontend.h"

namespace pdt::ast {
namespace {

TEST(Types, BuiltinsAreInterned) {
  AstContext ctx;
  EXPECT_EQ(ctx.builtin(BuiltinKind::Int), ctx.builtin(BuiltinKind::Int));
  EXPECT_NE(ctx.builtin(BuiltinKind::Int), ctx.builtin(BuiltinKind::Long));
  EXPECT_EQ(ctx.intType(), ctx.builtin(BuiltinKind::Int));
}

TEST(Types, CompositesAreInterned) {
  AstContext ctx;
  const Type* a = ctx.pointerTo(ctx.intType());
  const Type* b = ctx.pointerTo(ctx.intType());
  EXPECT_EQ(a, b);
  EXPECT_EQ(ctx.referenceTo(a), ctx.referenceTo(b));
  EXPECT_NE(ctx.pointerTo(a), a);
  EXPECT_EQ(ctx.arrayOf(ctx.intType(), 4), ctx.arrayOf(ctx.intType(), 4));
  EXPECT_NE(ctx.arrayOf(ctx.intType(), 4), ctx.arrayOf(ctx.intType(), 5));
}

TEST(Types, QualifierMergingAndIdentity) {
  AstContext ctx;
  const Type* ci = ctx.qualified(ctx.intType(), true, false);
  EXPECT_EQ(ci, ctx.qualified(ctx.intType(), true, false));
  // Qualifying an already-qualified type merges flags.
  const Type* cvi = ctx.qualified(ci, false, true);
  const auto* q = cvi->as<QualifiedType>();
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->isConst());
  EXPECT_TRUE(q->isVolatile());
  EXPECT_EQ(q->base(), ctx.intType());
  // No-op qualification returns the type unchanged.
  EXPECT_EQ(ctx.qualified(ctx.intType(), false, false), ctx.intType());
}

TEST(Types, ReferenceCollapsing) {
  AstContext ctx;
  const Type* r = ctx.referenceTo(ctx.intType());
  EXPECT_EQ(ctx.referenceTo(r), r);
}

TEST(Types, FunctionTypeIdentity) {
  AstContext ctx;
  const Type* f1 = ctx.functionType(ctx.voidType(), {ctx.intType()}, false,
                                    false, {});
  const Type* f2 = ctx.functionType(ctx.voidType(), {ctx.intType()}, false,
                                    false, {});
  const Type* f3 = ctx.functionType(ctx.voidType(), {ctx.intType()}, true,
                                    false, {});
  EXPECT_EQ(f1, f2);
  EXPECT_NE(f1, f3);  // const member qualifier distinguishes
}

TEST(Types, Spellings) {
  AstContext ctx;
  EXPECT_EQ(ctx.intType()->spelling(), "int");
  EXPECT_EQ(ctx.pointerTo(ctx.builtin(BuiltinKind::Char))->spelling(), "char *");
  EXPECT_EQ(
      ctx.referenceTo(ctx.qualified(ctx.intType(), true, false))->spelling(),
      "const int &");
  EXPECT_EQ(ctx.arrayOf(ctx.builtin(BuiltinKind::Double), 16)->spelling(),
            "double [16]");
  EXPECT_EQ(ctx.functionType(ctx.boolType(), {}, true, false, {})->spelling(),
            "bool () const");
  EXPECT_EQ(ctx.functionType(ctx.voidType(),
                             {ctx.intType(), ctx.pointerTo(ctx.intType())},
                             false, true, {})
                ->spelling(),
            "void (int, int *, ...)");
}

TEST(Types, CanonicalStripsSugar) {
  AstContext ctx;
  auto* td = ctx.create<TypedefDecl>();
  td->setName("size_type");
  td->underlying = ctx.builtin(BuiltinKind::ULong);
  const Type* sugared =
      ctx.qualified(ctx.typedefType(td, td->underlying), true, false);
  EXPECT_EQ(canonical(sugared), ctx.builtin(BuiltinKind::ULong));
}

TEST(Types, StrippedForMemberAccess) {
  AstContext ctx;
  auto* cls = ctx.create<ClassDecl>();
  cls->setName("Widget");
  const Type* t = ctx.referenceTo(
      ctx.qualified(ctx.classType(cls), true, false));
  const Type* stripped = strippedForMemberAccess(t);
  ASSERT_NE(stripped->as<ClassType>(), nullptr);
  EXPECT_EQ(stripped->as<ClassType>()->decl(), cls);
}

TEST(Types, DependentFlagPropagates) {
  AstContext ctx;
  const Type* tp = ctx.templateParamType("T", 0, 0);
  EXPECT_TRUE(tp->isDependent());
  EXPECT_TRUE(ctx.pointerTo(tp)->isDependent());
  EXPECT_TRUE(ctx.referenceTo(ctx.qualified(tp, true, false))->isDependent());
  EXPECT_FALSE(ctx.pointerTo(ctx.intType())->isDependent());
}

TEST(Decls, QualifiedNames) {
  AstContext ctx;
  auto* ns = ctx.create<NamespaceDecl>();
  ns->setName("outer");
  ns->setParent(ctx.translationUnit());
  ctx.translationUnit()->addChild(ns);
  auto* cls = ctx.create<ClassDecl>();
  cls->setName("Thing");
  cls->setParent(ns);
  ns->addChild(cls);
  auto* fn = ctx.create<FunctionDecl>();
  fn->setName("act");
  fn->setParent(cls);
  cls->addChild(fn);
  EXPECT_EQ(fn->qualifiedName(), "outer::Thing::act");
  EXPECT_EQ(cls->qualifiedName(), "outer::Thing");
  EXPECT_EQ(ns->qualifiedName(), "outer");
}

TEST(Decls, LookupFindsOverloadSets) {
  AstContext ctx;
  auto* tu = ctx.translationUnit();
  for (int i = 0; i < 3; ++i) {
    auto* fn = ctx.create<FunctionDecl>();
    fn->setName("f");
    tu->addChild(fn);
  }
  EXPECT_EQ(tu->lookup("f").size(), 3u);
  EXPECT_TRUE(tu->lookup("g").empty());
}

TEST(Decls, IdsAreSequential) {
  AstContext ctx;
  auto* a = ctx.create<VarDecl>();
  auto* b = ctx.create<VarDecl>();
  EXPECT_LT(a->id(), b->id());
}

TEST(Dump, RendersTreeWithResolutions) {
  SourceManager sm;
  DiagnosticEngine diags;
  frontend::Frontend fe(sm, diags);
  auto result = fe.compileSource("d.cpp", R"(
template <class T>
class Box {
public:
    void fill(const T& v) { item = v; }
    T item;
};
int driver() {
    Box<double> b;
    b.fill(1.5);
    return 0;
}
)");
  ASSERT_TRUE(result.success);
  std::ostringstream os;
  dump(*result.ast, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("TranslationUnit"), std::string::npos);
  EXPECT_NE(text.find("Template Box [class] (1 instantiations"), std::string::npos);
  EXPECT_NE(text.find("Class Box<double> <- template Box"), std::string::npos);
  EXPECT_NE(text.find("Function fill : void (const double &)"), std::string::npos);
  // Call resolution visible in the dump.
  EXPECT_NE(text.find("Call -> Box<double>::fill"), std::string::npos);
  // Local variable with its type.
  EXPECT_NE(text.find("Var b : Box<double>"), std::string::npos);
}

}  // namespace
}  // namespace pdt::ast
