// Tests for the TAU profile parser, including a live round trip through
// the measurement runtime.
#include <gtest/gtest.h>

#include <sstream>

#include "TAU.h"
#include "tau/profile.h"

namespace pdt::tau {
namespace {

constexpr const char* kSample = R"(---------------------------------------------------------------------------------------
%Time    Exclusive    Inclusive       #Call      #Subrs  Inclusive Name
              msec         msec                           usec/call
---------------------------------------------------------------------------------------
 29.9         43.2         54.5         256      262400        213  axpy()
 16.7         24.1         24.1      558848           0          0  operator()() <Array<double>>
  0.2          0.4        144.3           1        1673     144254  solve() <CGSolver<double>>
---------------------------------------------------------------------------------------
)";

TEST(ProfileParser, ParsesEntries) {
  const auto profile = parseProfile(kSample);
  ASSERT_TRUE(profile.has_value());
  ASSERT_EQ(profile->entries.size(), 3u);
  const ProfileEntry& axpy = profile->entries[0];
  EXPECT_DOUBLE_EQ(axpy.percent_time, 29.9);
  EXPECT_DOUBLE_EQ(axpy.exclusive_ms, 43.2);
  EXPECT_DOUBLE_EQ(axpy.inclusive_ms, 54.5);
  EXPECT_EQ(axpy.calls, 256);
  EXPECT_EQ(axpy.child_calls, 262400);
  EXPECT_EQ(axpy.name, "axpy()");
}

TEST(ProfileParser, InstantiationTypes) {
  const auto profile = parseProfile(kSample);
  ASSERT_TRUE(profile.has_value());
  const ProfileEntry* op = profile->find("operator()()");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->baseName(), "operator()()");
  EXPECT_EQ(op->instantiationType(), "Array<double>");
  const ProfileEntry* axpy = profile->find("axpy");
  ASSERT_NE(axpy, nullptr);
  EXPECT_EQ(axpy->instantiationType(), "");
}

TEST(ProfileParser, FindAndTotals) {
  const auto profile = parseProfile(kSample);
  ASSERT_TRUE(profile.has_value());
  EXPECT_NE(profile->find("solve"), nullptr);
  EXPECT_EQ(profile->find("nonexistent"), nullptr);
  EXPECT_NEAR(profile->totalExclusiveMs(), 67.7, 0.01);
}

TEST(ProfileParser, RejectsNonProfiles) {
  EXPECT_FALSE(parseProfile("hello world").has_value());
  EXPECT_FALSE(parseProfile("").has_value());
}

TEST(ProfileParser, RoundTripsThroughRuntime) {
  ::tau::reset();
  {
    TAU_PROFILE("roundtrip_outer()", std::string(""), TAU_DEFAULT);
    for (int i = 0; i < 7; ++i) {
      TAU_PROFILE("roundtrip_inner()", std::string(""), TAU_DEFAULT);
    }
  }
  std::ostringstream os;
  ::tau::report(os);
  const auto profile = parseProfile(os.str());
  ASSERT_TRUE(profile.has_value());
  const ProfileEntry* inner = profile->find("roundtrip_inner()");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->calls, 7);
  const ProfileEntry* outer = profile->find("roundtrip_outer()");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 1);
  EXPECT_EQ(outer->child_calls, 7);
  EXPECT_GE(outer->inclusive_ms, inner->inclusive_ms);
}

}  // namespace
}  // namespace pdt::tau
