// Multi-threaded TAU runtime tests: lock-free per-thread profiling must
// produce exact call counts under contention, publish worker statistics
// at thread exit and on flushThread(), survive reset() between runs, and
// write one binary profile file per thread. Also covers the streaming
// trace (nothing dropped) against the in-memory ring (overwrite-oldest).
//
// Run under TSan via -DPDT_SANITIZE=thread to verify the publish/snapshot
// protocol is race-free.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "TAU.h"

namespace {

namespace fs = std::filesystem;

void burn(int iterations) {
  volatile int sink = 0;
  for (int i = 0; i < iterations * 100; ++i) sink = sink + i;
}

void mtLeaf() {
  TAU_PROFILE("mtLeaf()", std::string(""), TAU_DEFAULT);
  burn(1);
}

void mtCaller() {
  TAU_PROFILE("mtCaller()", std::string(""), TAU_DEFAULT);
  mtLeaf();
  mtLeaf();
  burn(1);
}

std::string reportText() {
  std::ostringstream os;
  tau::report(os);
  return os.str();
}

/// Parses the report row for `name`: pct, excl_ms, incl_ms, calls, subrs.
struct Row {
  double pct = 0.0, excl = 0.0, incl = 0.0;
  long long calls = 0, subrs = 0;
  bool found = false;
};

Row rowFor(const std::string& text, const std::string& name) {
  std::istringstream lines(text);
  std::string line;
  Row row;
  while (std::getline(lines, line)) {
    if (line.find(name) == std::string::npos) continue;
    std::istringstream fields(line);
    fields >> row.pct >> row.excl >> row.incl >> row.calls >> row.subrs;
    row.found = true;
    return row;
  }
  return row;
}

fs::path freshDir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("tau_mt_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(TauRuntimeMt, CallCountsSumExactlyAcrossThreads) {
  tau::reset();
  constexpr int kThreads = 8;
  constexpr int kCalls = 300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kCalls; ++i) mtCaller();
    });
  }
  for (auto& t : threads) t.join();

  const std::string text = reportText();
  const Row caller = rowFor(text, "mtCaller()");
  const Row leaf = rowFor(text, "mtLeaf()");
  ASSERT_TRUE(caller.found) << text;
  ASSERT_TRUE(leaf.found) << text;
  EXPECT_EQ(caller.calls, kThreads * kCalls);
  EXPECT_EQ(caller.subrs, 2LL * kThreads * kCalls);
  EXPECT_EQ(leaf.calls, 2LL * kThreads * kCalls);
  EXPECT_EQ(leaf.subrs, 0);
  // Child time was subtracted from the caller, never producing
  // inclusive < exclusive.
  EXPECT_GE(caller.incl, caller.excl);
  EXPECT_GE(leaf.incl, leaf.excl);
}

TEST(TauRuntimeMt, FlushThreadPublishesWorkerMidRun) {
  tau::reset();
  std::mutex m;
  std::condition_variable cv;
  bool flushed = false;
  bool done = false;

  std::thread worker([&] {
    for (int i = 0; i < 10; ++i) mtLeaf();
    tau::flushThread();
    {
      const std::lock_guard<std::mutex> lock(m);
      flushed = true;
    }
    cv.notify_one();
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return done; });
  });

  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return flushed; });
  }
  // The worker is still alive (no thread-exit publish yet); its flush
  // must already be visible.
  const Row leaf = rowFor(reportText(), "mtLeaf()");
  ASSERT_TRUE(leaf.found);
  EXPECT_EQ(leaf.calls, 10);
  {
    const std::lock_guard<std::mutex> lock(m);
    done = true;
  }
  cv.notify_one();
  worker.join();
}

TEST(TauRuntimeMt, ResetBetweenThreadedRunsDiscardsOldCounts) {
  tau::reset();
  std::thread first([] {
    for (int i = 0; i < 50; ++i) mtLeaf();
  });
  first.join();
  EXPECT_EQ(rowFor(reportText(), "mtLeaf()").calls, 50);

  tau::reset();
  std::thread second([] {
    for (int i = 0; i < 7; ++i) mtLeaf();
  });
  second.join();
  // Only the second batch counts — including the first worker's
  // thread-exit publish, which belongs to the dead epoch.
  EXPECT_EQ(rowFor(reportText(), "mtLeaf()").calls, 7);
}

TEST(TauRuntimeMt, WritesOneProfileFilePerThread) {
  tau::reset();
  const fs::path dir = freshDir("files");
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 5; ++i) mtCaller();
    });
  }
  for (auto& t : threads) t.join();
  mtLeaf();  // the main thread contributes a file of its own

  const std::size_t written = tau::writeProfileFiles(dir.string());
  EXPECT_EQ(written, kThreads + 1u);

  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir))
    names.push_back(entry.path().filename().string());
  EXPECT_EQ(names.size(), kThreads + 1u);
  const std::string prefix =
      "profile.0." + std::to_string(::getpid()) + ".";
  for (const std::string& name : names)
    EXPECT_EQ(name.rfind(prefix, 0), 0u) << name;
  fs::remove_all(dir);
}

TEST(TauRuntimeMt, StreamingTraceDropsNothing) {
  tau::reset();
  const fs::path file = freshDir("stream") / "trace.txt";
  ASSERT_TRUE(tau::streamTraceTo(file.string(), 8));
  for (int i = 0; i < 100; ++i) mtLeaf();
  tau::disableTracing();

  const tau::TraceStats stats = tau::traceStats();
  EXPECT_EQ(stats.recorded, 200u);
  EXPECT_EQ(stats.streamed, 200u);
  EXPECT_EQ(stats.wrapped, 0u);

  std::ifstream in(file);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0, enters = 0, exits = 0;
  while (std::getline(in, line)) {
    ++lines;
    if (line.find(" ENTER ") != std::string::npos) ++enters;
    if (line.find(" EXIT ") != std::string::npos) ++exits;
  }
  EXPECT_EQ(lines, 200u);
  EXPECT_EQ(enters, 100u);
  EXPECT_EQ(exits, 100u);
  fs::remove_all(file.parent_path());
}

TEST(TauRuntimeMt, RingAndStreamingModesAreIndependent) {
  tau::reset();
  // Ring mode wraps; switching to streaming resets the counters.
  tau::enableTracing(2);
  for (int i = 0; i < 10; ++i) mtLeaf();
  EXPECT_GT(tau::traceStats().wrapped, 0u);

  const fs::path file = freshDir("modes") / "trace.txt";
  ASSERT_TRUE(tau::streamTraceTo(file.string(), 4));
  mtLeaf();
  tau::disableTracing();
  const tau::TraceStats stats = tau::traceStats();
  EXPECT_EQ(stats.recorded, 2u);
  EXPECT_EQ(stats.wrapped, 0u);
  EXPECT_EQ(stats.streamed, 2u);
  fs::remove_all(file.parent_path());
}

}  // namespace
