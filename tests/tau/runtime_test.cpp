// TAU measurement runtime tests: statistics, nesting, RTTI naming
// (CT), report format, and tracing.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "TAU.h"

namespace {

void burn(int iterations) {
  volatile int sink = 0;
  for (int i = 0; i < iterations * 1000; ++i) sink = sink + i;
}

void leaf() {
  TAU_PROFILE("leaf()", std::string(""), TAU_DEFAULT);
  burn(1);
}

void caller() {
  TAU_PROFILE("caller()", std::string(""), TAU_DEFAULT);
  leaf();
  leaf();
  burn(1);
}

template <typename T>
struct Gadget {
  void spin() {
    TAU_PROFILE("Gadget::spin()", CT(*this), TAU_DEFAULT);
    burn(1);
  }
};

std::string reportText() {
  std::ostringstream os;
  tau::report(os);
  return os.str();
}

TEST(TauRuntime, CountsCalls) {
  tau::reset();
  for (int i = 0; i < 5; ++i) leaf();
  const std::string text = reportText();
  EXPECT_NE(text.find("leaf()"), std::string::npos);
  EXPECT_NE(text.find("          5"), std::string::npos);
}

TEST(TauRuntime, NestedExclusiveTime) {
  tau::reset();
  caller();
  tau::FunctionInfo* caller_fn =
      tau::getFunctionInfo("caller()", "", TAU_DEFAULT);
  tau::FunctionInfo* leaf_fn = tau::getFunctionInfo("leaf()", "", TAU_DEFAULT);
  ASSERT_NE(caller_fn, nullptr);
  ASSERT_NE(leaf_fn, nullptr);
  // Inspect through the report: caller's inclusive must exceed exclusive
  // (children were subtracted), and subroutine count is 2.
  const std::string text = reportText();
  EXPECT_NE(text.find("caller()"), std::string::npos);
  std::istringstream lines(text);
  std::string line;
  bool checked = false;
  while (std::getline(lines, line)) {
    if (line.find("caller()") == std::string::npos) continue;
    std::istringstream fields(line);
    double pct = 0.0, excl = 0.0, incl = 0.0;
    long calls = 0, subrs = 0;
    fields >> pct >> excl >> incl >> calls >> subrs;
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(subrs, 2);
    EXPECT_GE(incl, excl);
    checked = true;
  }
  EXPECT_TRUE(checked) << text;
}

TEST(TauRuntime, TemplateInstantiationsDistinguishedByRtti) {
  // The paper's CT(obj) mechanism: one instrumented body, distinct
  // profile entries per instantiation type.
  tau::reset();
  Gadget<int> gi;
  Gadget<double> gd;
  gi.spin();
  gi.spin();
  gd.spin();
  const std::string text = reportText();
  // The demangled names include the test's anonymous namespace; check
  // that the two instantiations produced two distinct entries.
  EXPECT_NE(text.find("Gadget<int>"), std::string::npos);
  EXPECT_NE(text.find("Gadget<double>"), std::string::npos);
}

TEST(TauRuntime, GetFunctionInfoInterns) {
  tau::reset();
  tau::FunctionInfo* a = tau::getFunctionInfo("x()", "T", 0);
  tau::FunctionInfo* b = tau::getFunctionInfo("x()", "T", 0);
  tau::FunctionInfo* c = tau::getFunctionInfo("x()", "U", 0);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TauRuntime, TypeNameDemangles) {
  const std::string name = tau::typeNameOf(std::vector<int>{});
  EXPECT_NE(name.find("vector"), std::string::npos);
  EXPECT_NE(name.find("int"), std::string::npos);
}

TEST(TauRuntime, ReportPercentagesSumToHundred) {
  tau::reset();
  caller();
  leaf();
  const std::string text = reportText();
  std::istringstream lines(text);
  std::string line;
  double sum = 0.0;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    double pct = 0.0;
    if (fields >> pct && line.find("()") != std::string::npos) sum += pct;
  }
  EXPECT_NEAR(sum, 100.0, 0.5);
}

TEST(TauRuntime, TracingRecordsEnterExitPairs) {
  tau::reset();
  tau::enableTracing(64);
  caller();
  tau::disableTracing();
  std::ostringstream os;
  tau::dumpTrace(os);
  const std::string trace = os.str();
  // caller ENTER, leaf ENTER/EXIT x2, caller EXIT.
  const auto count = [&](const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = trace.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count("ENTER caller()"), 1u);
  EXPECT_EQ(count("EXIT caller()"), 1u);
  EXPECT_EQ(count("ENTER leaf()"), 2u);
  EXPECT_EQ(count("EXIT leaf()"), 2u);
  // Events are time-ordered.
  std::istringstream lines(trace);
  std::string line;
  std::uint64_t prev = 0;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::uint64_t t = 0;
    fields >> t;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(TauRuntime, TraceBufferWrapsKeepingNewestEvents) {
  tau::reset();
  tau::enableTracing(4);
  for (int i = 0; i < 100; ++i) leaf();
  tau::disableTracing();
  std::ostringstream os;
  tau::dumpTrace(os);
  const std::string trace = os.str();
  // A true ring: the 4 newest events survive (chronological), the rest
  // were overwritten and the footer says how many.
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '\n'), 5);
  EXPECT_NE(trace.find("# wrapped 196"), std::string::npos) << trace;
  // 100 calls = 200 events; the last one recorded is leaf's final EXIT.
  const std::size_t footer = trace.find("# wrapped");
  const std::string events = trace.substr(0, footer);
  EXPECT_NE(events.rfind("EXIT leaf()"), std::string::npos);
  const tau::TraceStats stats = tau::traceStats();
  EXPECT_EQ(stats.recorded, 200u);
  EXPECT_EQ(stats.wrapped, 196u);
  EXPECT_EQ(stats.streamed, 0u);
}

TEST(TauRuntime, ThreadedCountsAreConsistent) {
  tau::reset();
  constexpr int kThreads = 4;
  constexpr int kCalls = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kCalls; ++i) leaf();
    });
  }
  for (auto& t : threads) t.join();
  const std::string text = reportText();
  EXPECT_NE(text.find("       1000"), std::string::npos) << text;
}

TEST(TauRuntime, ResetClearsStatistics) {
  tau::reset();
  leaf();
  tau::reset();
  const std::string text = reportText();
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("leaf()") != std::string::npos) {
      std::istringstream fields(line);
      double pct, excl, incl;
      long calls;
      fields >> pct >> excl >> incl >> calls;
      EXPECT_EQ(calls, 0);
    }
  }
}

}  // namespace
