// TAU instrumentor tests: the Figure-6 selection rules and the source
// rewriting, plus the full dynamic-analysis loop (instrument -> compile
// with the system compiler -> run -> check the profile).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdt/pdt_paths.h"
#include "tau/instrumentor.h"

namespace pdt::tau {
namespace {

using ductape::PDB;

struct Compiled {
  SourceManager sm;
  DiagnosticEngine diags;
  PDB pdb;
  std::string source;

  Compiled(const std::string& name, std::string src) : source(std::move(src)) {
    frontend::Frontend fe(sm, diags);
    auto result = fe.compileSource(name, source);
    pdb = PDB::fromPdbFile(ilanalyzer::analyze(result, sm));
  }
};

constexpr const char* kTemplates = R"(
template <class T>
class Holder {
public:
    void keep(const T& x) { item = x; }
    static int tag() { return 7; }
    T item;
};

template <class T>
T identity(T v) { return v; }

void plain() {}

class Widget {
public:
    void poke() {}
};

void driver() {
    Holder<int> h;
    h.keep(1);
    Holder<int>::tag();
    identity(4);
    plain();
    Widget w;
    w.poke();
}
)";

TEST(Instrumentor, Figure6SelectionRules) {
  Compiled c("templates.cpp", kTemplates);
  const auto plan = planInstrumentation(c.pdb, "templates.cpp");

  const ItemRef* keep = nullptr;
  const ItemRef* tag = nullptr;
  const ItemRef* identity = nullptr;
  for (const ItemRef& ref : plan) {
    if (ref.item->name() == "keep") keep = &ref;
    if (ref.item->name() == "tag") tag = &ref;
    if (ref.item->name() == "identity") identity = &ref;
  }
  // Member function template: CT(*this) required (no_this == false).
  ASSERT_NE(keep, nullptr);
  EXPECT_FALSE(keep->no_this);
  // Static member template: no parent object, no CT(*this).
  ASSERT_NE(tag, nullptr);
  EXPECT_TRUE(tag->no_this);
  // Free function template: no CT(*this).
  ASSERT_NE(identity, nullptr);
  EXPECT_TRUE(identity->no_this);
}

TEST(Instrumentor, NonTemplateRoutinesPlanned) {
  Compiled c("templates.cpp", kTemplates);
  const auto plan = planInstrumentation(c.pdb, "templates.cpp");
  bool has_plain = false, has_poke = false, has_driver = false;
  for (const ItemRef& ref : plan) {
    has_plain |= ref.item->name() == "plain";
    has_poke |= ref.item->name() == "poke";
    has_driver |= ref.item->name() == "driver";
  }
  EXPECT_TRUE(has_plain);
  EXPECT_TRUE(has_poke);
  EXPECT_TRUE(has_driver);
}

TEST(Instrumentor, InstantiatedRoutinesNotDoublePlanned) {
  Compiled c("templates.cpp", kTemplates);
  const auto plan = planInstrumentation(c.pdb, "templates.cpp");
  // 'keep' appears once (the template body), not once per instantiation.
  int keep_count = 0;
  for (const ItemRef& ref : plan) keep_count += ref.item->name() == "keep";
  EXPECT_EQ(keep_count, 1);
}

TEST(Instrumentor, PlanIsSortedBySourceLocation) {
  Compiled c("templates.cpp", kTemplates);
  const auto plan = planInstrumentation(c.pdb, "templates.cpp");
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan[i - 1].line, plan[i].line);
  }
}

TEST(Instrumentor, RewriteInsertsMacros) {
  Compiled c("templates.cpp", kTemplates);
  const std::string out = instrument(c.pdb, "templates.cpp", c.source);
  EXPECT_TRUE(out.starts_with("#include \"TAU.h\""));
  // Member function template gets CT(*this)...
  EXPECT_NE(out.find("TAU_PROFILE(\"keep()\", CT(*this), TAU_DEFAULT)"),
            std::string::npos);
  // ...function template and plain routines do not.
  EXPECT_NE(out.find("TAU_PROFILE(\"identity()\", std::string(\"\"),"),
            std::string::npos);
  EXPECT_NE(out.find("void plain()"), std::string::npos);
}

TEST(Instrumentor, RewritePreservesLineCount) {
  Compiled c("templates.cpp", kTemplates);
  const std::string out = instrument(c.pdb, "templates.cpp", c.source);
  const auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '\n');
  };
  // Two prepended #include lines; body insertions are within-line.
  EXPECT_EQ(count(out), count(c.source) + 2);
}

TEST(Instrumentor, OtherFilesUntouched) {
  Compiled c("templates.cpp", kTemplates);
  const auto plan = planInstrumentation(c.pdb, "other.cpp");
  EXPECT_TRUE(plan.empty());
}

TEST(Instrumentor, CustomGroupAndHeader) {
  Compiled c("templates.cpp", kTemplates);
  InstrumentOptions options;
  options.runtime_header = "my_tau.h";
  options.profile_group = "TAU_USER";
  const std::string out = instrument(c.pdb, "templates.cpp", c.source, options);
  EXPECT_TRUE(out.starts_with("#include \"my_tau.h\""));
  EXPECT_NE(out.find("TAU_USER)"), std::string::npos);
}

TEST(Instrumentor, SelectiveExclusion) {
  Compiled c("templates.cpp", kTemplates);
  InstrumentOptions options;
  options.exclude = {"keep", "poke"};
  const auto plan = planInstrumentation(c.pdb, "templates.cpp", options);
  for (const ItemRef& ref : plan) {
    EXPECT_EQ(ref.item->name().find("keep"), std::string::npos);
    EXPECT_EQ(ref.item->name().find("poke"), std::string::npos);
  }
  bool still_has_driver = false;
  for (const ItemRef& ref : plan) still_has_driver |= ref.item->name() == "driver";
  EXPECT_TRUE(still_has_driver);

  const std::string out = instrument(c.pdb, "templates.cpp", c.source, options);
  EXPECT_EQ(out.find("TAU_PROFILE(\"keep()\""), std::string::npos);
  EXPECT_NE(out.find("TAU_PROFILE"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Full dynamic-analysis loop: instrument the paper's Stack example,
// compile it with the system compiler, run it, inspect the profile.
// ---------------------------------------------------------------------------

TEST(Instrumentor, EndToEndStackProfile) {
  const std::string input_dir = std::string(paths::kInputDir) + "/stack";
  const std::string stl_dir = std::string(paths::kRuntimeDir) + "/pdt_stl";
  const std::string tau_dir = std::string(paths::kRuntimeDir) + "/tau";

  SourceManager sm;
  DiagnosticEngine diags;
  frontend::FrontendOptions options;
  options.include_dirs.push_back(stl_dir);
  frontend::Frontend fe(sm, diags, options);
  auto result = fe.compileFile(input_dir + "/TestStackAr.cpp");
  ASSERT_TRUE(result.success);
  PDB pdb = PDB::fromPdbFile(ilanalyzer::analyze(result, sm));

  const std::string work = ::testing::TempDir() + "/pdt_tau_e2e";
  std::system(("rm -rf '" + work + "' && mkdir -p '" + work + "'").c_str());

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const auto emit = [&](const std::string& name, const std::string& text) {
    std::ofstream out(work + "/" + name);
    out << text;
  };

  // Instrument the template bodies (StackAr.cpp) and the driver.
  emit("StackAr.cpp",
       instrument(pdb, "StackAr.cpp", slurp(input_dir + "/StackAr.cpp")));
  emit("TestStackAr.cpp",
       instrument(pdb, "TestStackAr.cpp", slurp(input_dir + "/TestStackAr.cpp")));
  emit("StackAr.h", slurp(input_dir + "/StackAr.h"));
  emit("dsexceptions.h", slurp(input_dir + "/dsexceptions.h"));

  const std::string profile = work + "/profile.txt";
  const std::string compile =
      "g++ -std=c++17 -O1 -I '" + work + "' -I '" + stl_dir + "' -I '" +
      tau_dir + "' '" + work + "/TestStackAr.cpp' '" + stl_dir +
      "/pdt_stl_impl.cpp' '" + tau_dir + "/tau_runtime.cpp' -o '" + work +
      "/stack_instr' 2> '" + work + "/compile.log'";
  ASSERT_EQ(std::system(compile.c_str()), 0) << slurp(work + "/compile.log");

  const std::string run = "cd '" + work + "' && TAU_PROFILE_FILE='" + profile +
                          "' ./stack_instr > run.log 2>&1";
  ASSERT_EQ(std::system(run.c_str()), 0) << slurp(work + "/run.log");

  // The uninstrumented program prints 9..0; output must be unchanged.
  EXPECT_NE(slurp(work + "/run.log").find("9\n8\n7"), std::string::npos);

  const std::string prof = slurp(profile);
  ASSERT_FALSE(prof.empty());
  // Template members profiled with their run-time type (CT(*this)):
  EXPECT_NE(prof.find("push()"), std::string::npos);
  EXPECT_NE(prof.find("Stack<int>"), std::string::npos);
  // main() profiled as a plain routine:
  EXPECT_NE(prof.find("main"), std::string::npos);
  // push was called 10 times.
  bool found_push_10 = false;
  std::istringstream lines(prof);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("push()") != std::string::npos &&
        line.find("        10 ") != std::string::npos) {
      found_push_10 = true;
    }
  }
  EXPECT_TRUE(found_push_10) << prof;
}

}  // namespace
}  // namespace pdt::tau
