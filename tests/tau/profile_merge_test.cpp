// tauprof merge library tests: binary thread-profile reading (including
// corruption rejection), deterministic aggregation across threads and
// contexts, render stability under input reordering, and dp-section
// attachment to a program database. The runtime-written files come from
// real in-process worker threads, so this also locks the writer and the
// reader to the shared format header.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "TAU.h"
#include "pdb/format.h"
#include "pdb/validate.h"
#include "tau/profile_merge.h"

namespace {

namespace fs = std::filesystem;
using pdt::tau::MergedProfile;
using pdt::tau::ThreadProfile;
using pdt::tau::ThreadProfileRecord;

void mergeLeaf() {
  TAU_PROFILE("mergeLeaf()", std::string(""), TAU_DEFAULT);
  volatile int sink = 0;
  for (int i = 0; i < 100; ++i) sink = sink + i;
}

fs::path freshDir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("tau_merge_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ThreadProfile makeProfile(std::uint32_t node, std::uint32_t context,
                          std::uint32_t thread,
                          std::vector<ThreadProfileRecord> records) {
  ThreadProfile tp;
  tp.node = node;
  tp.context = context;
  tp.thread = thread;
  tp.records = std::move(records);
  return tp;
}

TEST(ProfileMerge, SumsCountsAndTracksThreadsAndContexts) {
  const std::vector<ThreadProfile> inputs = {
      makeProfile(0, 100, 0, {{"push()", "Stack<int>", 1, 10, 2, 900, 400}}),
      makeProfile(0, 100, 1, {{"push()", "Stack<int>", 1, 5, 1, 600, 300}}),
      makeProfile(0, 200, 0,
                  {{"push()", "Stack<int>", 1, 1, 0, 100, 100},
                   {"main()", "", 0, 1, 3, 5000, 1000}}),
  };
  const MergedProfile merged = pdt::tau::mergeThreadProfiles(inputs);
  EXPECT_EQ(merged.thread_files, 3u);
  EXPECT_EQ(merged.context_count, 2u);
  ASSERT_EQ(merged.entries.size(), 2u);

  const pdt::tau::MergedEntry* push = merged.find("push()");
  ASSERT_NE(push, nullptr);
  EXPECT_EQ(push->calls, 16u);
  EXPECT_EQ(push->child_calls, 3u);
  EXPECT_EQ(push->inclusive_ns, 1600u);
  EXPECT_EQ(push->exclusive_ns, 800u);
  EXPECT_EQ(push->threads, 3u);
  EXPECT_EQ(push->contexts, 2u);
  EXPECT_EQ(push->displayName(), "push() <Stack<int>>");

  const pdt::tau::MergedEntry* main_fn = merged.find("main()");
  ASSERT_NE(main_fn, nullptr);
  EXPECT_EQ(main_fn->threads, 1u);
  EXPECT_EQ(main_fn->contexts, 1u);
  // Sorted by exclusive time: main() (1000ns) before push() (800ns).
  EXPECT_EQ(merged.entries[0].name, "main()");
}

TEST(ProfileMerge, RenderIsByteIdenticalUnderInputReordering) {
  std::vector<ThreadProfile> inputs = {
      makeProfile(0, 1, 0,
                  {{"a()", "", 0, 3, 0, 300, 300},
                   {"b()", "T", 0, 2, 0, 300, 300}}),
      makeProfile(0, 2, 0, {{"b()", "T", 0, 8, 1, 700, 700}}),
      makeProfile(1, 1, 0, {{"a()", "", 0, 1, 0, 50, 50}}),
      makeProfile(0, 1, 1, {{"c()", "", 0, 9, 0, 300, 300}}),
  };
  std::ostringstream text_a, csv_a;
  pdt::tau::renderMergedProfile(pdt::tau::mergeThreadProfiles(inputs), text_a);
  pdt::tau::renderMergedCsv(pdt::tau::mergeThreadProfiles(inputs), csv_a);

  std::reverse(inputs.begin(), inputs.end());
  std::ostringstream text_b, csv_b;
  pdt::tau::renderMergedProfile(pdt::tau::mergeThreadProfiles(inputs), text_b);
  pdt::tau::renderMergedCsv(pdt::tau::mergeThreadProfiles(inputs), csv_b);

  EXPECT_EQ(text_a.str(), text_b.str());
  EXPECT_EQ(csv_a.str(), csv_b.str());
  // Equal-exclusive entries tie-break on name: a() and c() both 350ns.
  const MergedProfile merged = pdt::tau::mergeThreadProfiles(inputs);
  ASSERT_EQ(merged.entries.size(), 3u);
  EXPECT_EQ(merged.entries[0].name, "b()");
  EXPECT_EQ(merged.entries[1].name, "a()");
  EXPECT_EQ(merged.entries[2].name, "c()");
}

TEST(ProfileMerge, ReadsRuntimeWrittenFilesBack) {
  tau::reset();
  const fs::path dir = freshDir("roundtrip");
  constexpr int kThreads = 2;
  constexpr int kCalls = 40;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kCalls; ++i) mergeLeaf();
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_GE(tau::writeProfileFiles(dir.string()), 2u);

  std::vector<ThreadProfile> profiles;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string error;
    auto profile =
        pdt::tau::readThreadProfile(entry.path().string(), &error);
    ASSERT_TRUE(profile.has_value()) << error;
    EXPECT_EQ(profile->node, 0u);
    EXPECT_EQ(profile->context, static_cast<std::uint32_t>(::getpid()));
    profiles.push_back(std::move(*profile));
  }
  const MergedProfile merged = pdt::tau::mergeThreadProfiles(profiles);
  const pdt::tau::MergedEntry* leaf = merged.find("mergeLeaf()");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->calls, static_cast<std::uint64_t>(kThreads) * kCalls);
  EXPECT_EQ(leaf->threads, 2u);
  EXPECT_EQ(leaf->contexts, 1u);
  EXPECT_GE(leaf->inclusive_ns, leaf->exclusive_ns);
  fs::remove_all(dir);
}

TEST(ProfileMerge, RejectsCorruptFiles) {
  tau::reset();
  const fs::path dir = freshDir("corrupt");
  mergeLeaf();
  ASSERT_GE(tau::writeProfileFiles(dir.string()), 1u);
  fs::path good;
  for (const auto& entry : fs::directory_iterator(dir)) good = entry.path();
  ASSERT_FALSE(good.empty());

  std::string data;
  {
    std::ifstream in(good, std::ios::binary);
    data.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  const auto writeVariant = [&](const std::string& bytes) {
    const fs::path p = dir / "variant";
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    std::string error;
    const auto result = pdt::tau::readThreadProfile(p.string(), &error);
    EXPECT_FALSE(result.has_value());
    return error;
  };

  // Flipped payload byte: checksum must catch it.
  std::string flipped = data;
  flipped[flipped.size() / 2] = static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
  EXPECT_NE(writeVariant(flipped).find("checksum"), std::string::npos);

  // Truncation: also a checksum/size failure, never a crash.
  EXPECT_FALSE(writeVariant(data.substr(0, data.size() - 9)).empty());
  EXPECT_NE(writeVariant(data.substr(0, 10)).find("truncated"),
            std::string::npos);

  // Wrong magic.
  std::string bad_magic = data;
  bad_magic[0] = 'X';
  EXPECT_NE(writeVariant(bad_magic).find("magic"), std::string::npos);

  std::string error;
  EXPECT_FALSE(
      pdt::tau::readThreadProfile((dir / "missing").string(), &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
  fs::remove_all(dir);
}

TEST(ProfileMerge, AttachesDpSectionLinkedToRoutines) {
  pdt::pdb::PdbFile pdb;
  pdt::pdb::RoutineItem push;
  push.name = "push";
  const std::uint32_t push_id = pdb.addRoutine(std::move(push));
  pdt::pdb::RoutineItem pop;
  pop.name = "pop";
  pdb.addRoutine(std::move(pop));

  const std::vector<ThreadProfile> inputs = {
      makeProfile(0, 1, 0,
                  {{"push()", "Stack<int>", 1, 10, 0, 900, 900},
                   {"void pop(T&)", "Stack<int>", 1, 4, 0, 400, 400},
                   {"frob()", "", 0, 2, 0, 100, 100}}),
  };
  const MergedProfile merged = pdt::tau::mergeThreadProfiles(inputs);
  const std::size_t linked = pdt::tau::attachDynProfSection(merged, pdb);
  EXPECT_EQ(linked, 2u);
  ASSERT_EQ(pdb.dynProfs().size(), 3u);

  const auto push_dp = std::find_if(
      pdb.dynProfs().begin(), pdb.dynProfs().end(),
      [](const auto& p) { return p.name == "push() <Stack<int>>"; });
  ASSERT_NE(push_dp, pdb.dynProfs().end());
  EXPECT_EQ(push_dp->routine, push_id);
  EXPECT_EQ(push_dp->calls, 10u);

  const auto frob_dp = std::find_if(
      pdb.dynProfs().begin(), pdb.dynProfs().end(),
      [](const auto& p) { return p.name == "frob()"; });
  ASSERT_NE(frob_dp, pdb.dynProfs().end());
  EXPECT_EQ(frob_dp->routine, 0u);

  EXPECT_TRUE(pdt::pdb::validate(pdb).empty());
  // The attached section survives an ascii -> binary -> ascii round trip.
  const std::string ascii =
      pdt::pdb::writeString(pdb, pdt::pdb::Format::Ascii);
  EXPECT_NE(ascii.find("dp#"), std::string::npos);
  const std::string binary =
      pdt::pdb::writeString(pdb, pdt::pdb::Format::Binary);
  auto reread = pdt::pdb::readBuffer(binary);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(pdt::pdb::writeString(reread.pdb, pdt::pdb::Format::Ascii), ascii);
}

}  // namespace
