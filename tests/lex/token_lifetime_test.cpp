// Token text is a std::string_view end-to-end; these tests pin down the
// two stability guarantees that make that safe (DESIGN.md "Token backing
// and ownership"):
//
//  * SourceManager file contents never move, even as loading #includes
//    grows the file table mid-TU (std::deque<File> storage).
//  * TokenArena chunks never move, even as synthesized spellings push the
//    arena through many chunk allocations mid-TU.
//
// Run under ASan (scripts/ci.sh frontend gate) these become genuine
// use-after-free probes, not just value checks.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lex/preprocessor.h"
#include "support/source_manager.h"
#include "support/token_arena.h"

namespace pdt::lex {
namespace {

TEST(TokenLifetime, ViewsSurviveSourceManagerGrowthMidTu) {
  // Headers are loaded from disk *during* preprocessing, so every
  // #include grows the file table while tokens viewing earlier files'
  // content are already buffered.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "pdt_token_lifetime_headers";
  fs::create_directories(dir);
  std::string main_src;
  for (int i = 0; i < 200; ++i) {
    const std::string name = "h" + std::to_string(i) + ".h";
    std::ofstream out(dir / name);
    out << "int header_symbol_" << i << ";\n";
    main_src += "#include <" + name + ">\n";
  }
  SourceManager sm;
  sm.addSearchDir(dir.string());
  DiagnosticEngine de;
  TokenArena arena;
  const FileId main = sm.addVirtualFile("main.cpp", main_src);
  Preprocessor pp(sm, de, &arena);
  pp.enterMainFile(main);
  std::vector<Token> toks;
  for (Token t = pp.next(); !t.isEnd(); t = pp.next()) toks.push_back(t);
  fs::remove_all(dir);
  ASSERT_FALSE(de.hasErrors());
  ASSERT_EQ(toks.size(), 600u);  // 200 x "int name ;"
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(toks[static_cast<std::size_t>(i) * 3 + 1].text,
              "header_symbol_" + std::to_string(i));
  }
}

TEST(TokenLifetime, ViewsSurviveArenaGrowthMidTu) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  // Token pasting synthesizes spellings into the arena. 3000 pastes of
  // ~20-byte names cross several 64 KiB chunk boundaries; the early
  // views must stay intact as chunks are added.
  std::string src = "#define GLUE(a, b) a##b\n";
  for (int i = 0; i < 3000; ++i) {
    src += "int GLUE(pasted_symbol_name_, " + std::to_string(i) + ");\n";
  }
  const FileId main = sm.addVirtualFile("main.cpp", src);
  Preprocessor pp(sm, de, &arena);
  pp.enterMainFile(main);
  std::vector<Token> toks;
  for (Token t = pp.next(); !t.isEnd(); t = pp.next()) toks.push_back(t);
  ASSERT_FALSE(de.hasErrors());
  EXPECT_GT(arena.chunkCount(), 1u);
  ASSERT_EQ(toks.size(), 9000u);  // 3000 x "int name ;"
  for (int i = 0; i < 3000; ++i) {
    EXPECT_EQ(toks[static_cast<std::size_t>(i) * 3 + 1].text,
              "pasted_symbol_name_" + std::to_string(i));
  }
}

TEST(TokenLifetime, InternedViewsStableAcrossManyChunks) {
  TokenArena arena;
  std::vector<std::string_view> views;
  std::vector<std::string> expected;
  // ~1 KiB strings: 64 KiB chunks roll over every 64 interns.
  for (int i = 0; i < 500; ++i) {
    std::string s(1000, static_cast<char>('a' + i % 26));
    s += std::to_string(i);
    views.push_back(arena.intern(s));
    expected.push_back(std::move(s));
  }
  EXPECT_GT(arena.chunkCount(), 5u);
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], expected[i]);
  }
}

TEST(TokenLifetime, ArenaMovePreservesViews) {
  TokenArena a;
  const std::string_view v = a.intern("spelling-made-before-the-move");
  TokenArena b(std::move(a));
  EXPECT_EQ(v, "spelling-made-before-the-move");
  EXPECT_EQ(b.bytesUsed(), v.size());
}

TEST(TokenLifetime, MacroSpellingsSurviveUndef) {
  // #undef erases the macro, but spellings its expansions synthesized
  // (and the Macro name key itself) view stable backing, not macro
  // storage.
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const FileId main = sm.addVirtualFile("main.cpp",
                                        "#define STR(x) #x\n"
                                        "const char* a = STR(kept alive);\n"
                                        "#undef STR\n"
                                        "int after;\n");
  Preprocessor pp(sm, de, &arena);
  pp.enterMainFile(main);
  std::vector<Token> toks;
  for (Token t = pp.next(); !t.isEnd(); t = pp.next()) toks.push_back(t);
  ASSERT_FALSE(de.hasErrors());
  bool saw = false;
  for (const Token& t : toks) {
    saw = saw || (t.kind == TokenKind::StringLiteral &&
                  t.text == "\"kept alive\"");
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace pdt::lex
