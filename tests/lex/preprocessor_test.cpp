#include "lex/preprocessor.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/source_manager.h"
#include "support/token_arena.h"

namespace pdt::lex {
namespace {

/// Preprocesses `main_src` with optional extra virtual files. The caller
/// owns the TokenArena so synthesized spellings outlive the Preprocessor.
std::vector<Token> pp(SourceManager& sm, DiagnosticEngine& de,
                      TokenArena& arena, const std::string& main_src) {
  const FileId main = sm.addVirtualFile("main.cpp", main_src);
  Preprocessor p(sm, de, &arena);
  p.enterMainFile(main);
  std::vector<Token> out;
  for (Token t = p.next(); !t.isEnd(); t = p.next()) out.push_back(t);
  return out;
}

std::string joined(const std::vector<Token>& toks) {
  std::string s;
  for (const auto& t : toks) {
    if (!s.empty()) s += ' ';
    s += t.text;
  }
  return s;
}

TEST(Preprocessor, ObjectMacro) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#define N 10\nint a[N];\n");
  EXPECT_EQ(joined(toks), "int a [ 10 ] ;");
  EXPECT_FALSE(de.hasErrors());
}

TEST(Preprocessor, FunctionMacro) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#define MAX(a,b) ((a)>(b)?(a):(b))\nint x = MAX(1, 2);\n");
  EXPECT_EQ(joined(toks), "int x = ( ( 1 ) > ( 2 ) ? ( 1 ) : ( 2 ) ) ;");
}

TEST(Preprocessor, FunctionMacroNameWithoutCallIsNotExpanded) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#define F(x) x\nint F;\n");
  EXPECT_EQ(joined(toks), "int F ;");
}

TEST(Preprocessor, NestedExpansion) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#define A B\n#define B C\nA x;\n");
  EXPECT_EQ(joined(toks), "C x ;");
}

TEST(Preprocessor, RecursiveMacroIsPaintedBlue) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#define X X y\nX;\n");
  EXPECT_EQ(joined(toks), "X y ;");
}

TEST(Preprocessor, MutuallyRecursiveMacros) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#define A B\n#define B A\nA;\n");
  EXPECT_EQ(joined(toks), "A ;");
}

TEST(Preprocessor, Stringize) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#define STR(x) #x\nconst char* s = STR(hello world);\n");
  ASSERT_GE(toks.size(), 6u);
  EXPECT_EQ(toks[5].kind, TokenKind::StringLiteral);
  EXPECT_EQ(toks[5].text, "\"hello world\"");
}

TEST(Preprocessor, TokenPaste) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#define GLUE(a,b) a##b\nint GLUE(var, 1);\n");
  EXPECT_EQ(joined(toks), "int var1 ;");
}

TEST(Preprocessor, MacroArgumentsExpandBeforeSubstitution) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#define ONE 1\n#define ID(x) x\nint a = ID(ONE);\n");
  EXPECT_EQ(joined(toks), "int a = 1 ;");
}

TEST(Preprocessor, Undef) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#define N 3\n#undef N\nint N;\n");
  EXPECT_EQ(joined(toks), "int N ;");
}

TEST(Preprocessor, IfdefTaken) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#define YES\n#ifdef YES\nint a;\n#endif\n");
  EXPECT_EQ(joined(toks), "int a ;");
}

TEST(Preprocessor, IfdefNotTaken) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#ifdef NO\nint a;\n#else\nint b;\n#endif\n");
  EXPECT_EQ(joined(toks), "int b ;");
}

TEST(Preprocessor, IfndefGuardPattern) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  sm.addVirtualFile("g.h",
                    "#ifndef G_H\n#define G_H\nint guarded;\n#endif\n");
  const auto toks =
      pp(sm, de, arena, "#include \"g.h\"\n#include \"g.h\"\nint after;\n");
  EXPECT_EQ(joined(toks), "int guarded ; int after ;");
  EXPECT_FALSE(de.hasErrors());
}

TEST(Preprocessor, PragmaOnce) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  sm.addVirtualFile("p.h", "#pragma once\nint once_only;\n");
  const auto toks = pp(sm, de, arena, "#include \"p.h\"\n#include \"p.h\"\n");
  EXPECT_EQ(joined(toks), "int once_only ;");
}

TEST(Preprocessor, IfExpressionArithmetic) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena,
                       "#define V 3\n"
                       "#if V * 2 == 6 && defined(V)\nint yes;\n#else\nint no;\n#endif\n");
  EXPECT_EQ(joined(toks), "int yes ;");
}

TEST(Preprocessor, ElifChain) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena,
                       "#define V 2\n"
                       "#if V == 1\nint one;\n"
                       "#elif V == 2\nint two;\n"
                       "#elif V == 3\nint three;\n"
                       "#else\nint other;\n#endif\n");
  EXPECT_EQ(joined(toks), "int two ;");
}

TEST(Preprocessor, NestedConditionals) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena,
                       "#if 1\n#if 0\nint dead;\n#endif\nint live;\n#endif\n"
                       "#if 0\n#if 1\nint dead2;\n#endif\n#endif\n");
  EXPECT_EQ(joined(toks), "int live ;");
  EXPECT_FALSE(de.hasErrors());
}

TEST(Preprocessor, UndefinedIdentifierInIfIsZero) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#if UNDEFINED_THING\nint a;\n#else\nint b;\n#endif\n");
  EXPECT_EQ(joined(toks), "int b ;");
}

TEST(Preprocessor, IncludeRecordsEdgesAndFiles) {
  SourceManager sm;
  DiagnosticEngine de;
  sm.addVirtualFile("inner.h", "int inner;\n");
  sm.addVirtualFile("outer.h", "#include \"inner.h\"\nint outer;\n");
  const FileId main = sm.addVirtualFile("main.cpp", "#include \"outer.h\"\nint m;\n");
  Preprocessor p(sm, de);
  p.enterMainFile(main);
  while (!p.next().isEnd()) {
  }
  ASSERT_EQ(p.includeEdges().size(), 2u);
  EXPECT_EQ(sm.name(p.includeEdges()[0].includer), "main.cpp");
  EXPECT_EQ(sm.name(p.includeEdges()[0].includee), "outer.h");
  EXPECT_EQ(sm.name(p.includeEdges()[1].includer), "outer.h");
  EXPECT_EQ(sm.name(p.includeEdges()[1].includee), "inner.h");
  ASSERT_EQ(p.filesSeen().size(), 3u);
  EXPECT_EQ(sm.name(p.filesSeen()[0]), "main.cpp");
}

TEST(Preprocessor, MissingIncludeIsError) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  pp(sm, de, arena, "#include \"missing.h\"\n");
  EXPECT_TRUE(de.hasErrors());
}

TEST(Preprocessor, CircularIncludeIsCutWithWarning) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  sm.addVirtualFile("a.h", "#include \"b.h\"\nint a;\n");
  sm.addVirtualFile("b.h", "#include \"a.h\"\nint b;\n");
  const auto toks = pp(sm, de, arena, "#include \"a.h\"\n");
  EXPECT_EQ(joined(toks), "int b ; int a ;");
  EXPECT_FALSE(de.hasErrors());
  EXPECT_GE(de.warningCount(), 1u);
}

TEST(Preprocessor, MacroRecordsKeepDefinitionText) {
  SourceManager sm;
  DiagnosticEngine de;
  const FileId main = sm.addVirtualFile(
      "main.cpp", "#define SQR(x) ((x)*(x))\n#undef SQR\n");
  Preprocessor p(sm, de);
  p.enterMainFile(main);
  while (!p.next().isEnd()) {
  }
  ASSERT_EQ(p.macroRecords().size(), 2u);
  EXPECT_EQ(p.macroRecords()[0].name, "SQR");
  EXPECT_EQ(p.macroRecords()[0].kind, MacroRecord::Kind::Define);
  EXPECT_TRUE(p.macroRecords()[0].function_like);
  EXPECT_NE(p.macroRecords()[0].text.find("#define SQR"), std::string::npos);
  EXPECT_EQ(p.macroRecords()[1].kind, MacroRecord::Kind::Undefine);
}

TEST(Preprocessor, PredefinedMacro) {
  SourceManager sm;
  DiagnosticEngine de;
  const FileId main = sm.addVirtualFile("main.cpp", "int v = WIDTH;\n");
  Preprocessor p(sm, de);
  p.predefineMacro("WIDTH", "128");
  p.enterMainFile(main);
  std::vector<Token> toks;
  for (Token t = p.next(); !t.isEnd(); t = p.next()) toks.push_back(t);
  EXPECT_EQ(joined(toks), "int v = 128 ;");
}

TEST(Preprocessor, ErrorDirective) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  pp(sm, de, arena, "#error something went wrong\n");
  ASSERT_TRUE(de.hasErrors());
  EXPECT_NE(de.all()[0].message.find("something went wrong"), std::string::npos);
}

TEST(Preprocessor, UnterminatedIfDiagnosed) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  pp(sm, de, arena, "#if 1\nint a;\n");
  EXPECT_TRUE(de.hasErrors());
}

TEST(Preprocessor, ExpandedTokensKeepUseLocation) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  const auto toks = pp(sm, de, arena, "#define N 5\n\nint a = N;\n");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[3].text, "5");
  EXPECT_EQ(toks[3].location.line, 3u);  // location of use, not definition
}

TEST(Preprocessor, MacroSpanningIncludeBoundaryArgs) {
  // Function-like macro use where arguments come from the same file after
  // an include finishes — exercises the file-stack pop during collection.
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  sm.addVirtualFile("def.h", "#define CALL(f) f()\n");
  const auto toks = pp(sm, de, arena, "#include \"def.h\"\nint x = CALL(get);\n");
  EXPECT_EQ(joined(toks), "int x = get ( ) ;");
}

TEST(Preprocessor, WrongArgCountDiagnosed) {
  SourceManager sm;
  DiagnosticEngine de;
  TokenArena arena;
  pp(sm, de, arena, "#define TWO(a,b) a b\nTWO(1)\n");
  EXPECT_TRUE(de.hasErrors());
}

}  // namespace
}  // namespace pdt::lex

namespace pdt::lex {
namespace {

TEST(Preprocessor, BuiltinLineAndFileMacros) {
  SourceManager sm;
  DiagnosticEngine de;
  const FileId main = sm.addVirtualFile("main.cpp", "int a = __LINE__;\n\nconst char* f = __FILE__;\n");
  Preprocessor p(sm, de);
  p.enterMainFile(main);
  std::vector<Token> toks;
  for (Token t = p.next(); !t.isEnd(); t = p.next()) toks.push_back(t);
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[3].kind, TokenKind::IntLiteral);
  EXPECT_EQ(toks[3].text, "1");
  bool has_file = false;
  for (const auto& t : toks) {
    has_file |= t.kind == TokenKind::StringLiteral && t.text == "\"main.cpp\"";
  }
  EXPECT_TRUE(has_file);
}

TEST(Preprocessor, BuiltinLineTracksIncludes) {
  SourceManager sm;
  DiagnosticEngine de;
  sm.addVirtualFile("h.h", "\n\nint in_header = __LINE__;\n");
  const FileId main = sm.addVirtualFile("main.cpp", "#include \"h.h\"\n");
  Preprocessor p(sm, de);
  p.enterMainFile(main);
  std::vector<Token> toks;
  for (Token t = p.next(); !t.isEnd(); t = p.next()) toks.push_back(t);
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[3].text, "3");  // line within h.h
}

}  // namespace
}  // namespace pdt::lex
