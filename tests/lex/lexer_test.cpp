#include "lex/lexer.h"

#include <gtest/gtest.h>

#include <vector>

namespace pdt::lex {
namespace {

std::vector<Token> lexAll(std::string_view src, DiagnosticEngine* diags = nullptr) {
  DiagnosticEngine local;
  DiagnosticEngine& de = diags ? *diags : local;
  RawLexer lx(FileId{1}, src, de);
  std::vector<Token> out;
  for (Token t = lx.next(); !t.isEnd(); t = lx.next()) out.push_back(t);
  return out;
}

TEST(Lexer, Identifiers) {
  const auto toks = lexAll("foo _bar baz9");
  ASSERT_EQ(toks.size(), 3u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokenKind::Identifier);
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[1].text, "_bar");
  EXPECT_EQ(toks[2].text, "baz9");
}

TEST(Lexer, Keywords) {
  const auto toks = lexAll("class template virtual notakeyword");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokenKind::Keyword);
  EXPECT_EQ(toks[1].kind, TokenKind::Keyword);
  EXPECT_EQ(toks[2].kind, TokenKind::Keyword);
  EXPECT_EQ(toks[3].kind, TokenKind::Identifier);
}

TEST(Lexer, IntegerLiterals) {
  const auto toks = lexAll("0 42 0x1F 10u 7L");
  ASSERT_EQ(toks.size(), 5u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokenKind::IntLiteral) << t.text;
  EXPECT_EQ(toks[2].text, "0x1F");
  EXPECT_EQ(toks[3].text, "10u");
}

TEST(Lexer, FloatLiterals) {
  const auto toks = lexAll("1.5 .25 2e10 3.14e-2 1.f");
  ASSERT_EQ(toks.size(), 5u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokenKind::FloatLiteral) << t.text;
}

TEST(Lexer, MemberAccessOnLiteralIsNotFloat) {
  // "s.topAndPop" style: '1.x' would be weird, but '...' must not merge.
  const auto toks = lexAll("f(1, 2); a...");
  bool saw_ellipsis = false;
  for (const auto& t : toks) saw_ellipsis |= t.isPunct("...");
  EXPECT_TRUE(saw_ellipsis);
}

TEST(Lexer, StringAndCharLiterals) {
  const auto toks = lexAll(R"("hello \"world\"" 'a' '\n')");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokenKind::StringLiteral);
  EXPECT_EQ(toks[0].text, R"("hello \"world\"")");
  EXPECT_EQ(toks[1].kind, TokenKind::CharLiteral);
  EXPECT_EQ(toks[2].kind, TokenKind::CharLiteral);
}

TEST(Lexer, UnterminatedStringDiagnosed) {
  DiagnosticEngine de;
  lexAll("\"oops\n", &de);
  EXPECT_TRUE(de.hasErrors());
}

TEST(Lexer, Punctuators) {
  const auto toks = lexAll(":: -> ->* . .* << >> <<= == != <= >= && || ++ -- ...");
  const char* expected[] = {"::", "->", "->*", ".", ".*", "<<", ">>", "<<=",
                            "==", "!=", "<=", ">=", "&&", "||", "++", "--", "..."};
  ASSERT_EQ(toks.size(), std::size(expected));
  for (std::size_t i = 0; i < toks.size(); ++i) {
    EXPECT_EQ(toks[i].kind, TokenKind::Punct);
    EXPECT_EQ(toks[i].text, expected[i]);
  }
}

TEST(Lexer, CommentsAreSkipped) {
  const auto toks = lexAll("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, UnterminatedBlockCommentDiagnosed) {
  DiagnosticEngine de;
  lexAll("a /* never ends", &de);
  EXPECT_TRUE(de.hasErrors());
}

TEST(Lexer, LocationsAreOneBased) {
  const auto toks = lexAll("ab cd\n  ef");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].location.line, 1u);
  EXPECT_EQ(toks[0].location.column, 1u);
  EXPECT_EQ(toks[1].location.line, 1u);
  EXPECT_EQ(toks[1].location.column, 4u);
  EXPECT_EQ(toks[2].location.line, 2u);
  EXPECT_EQ(toks[2].location.column, 3u);
}

TEST(Lexer, StartOfLineFlag) {
  const auto toks = lexAll("a b\nc");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_TRUE(toks[0].start_of_line);
  EXPECT_FALSE(toks[1].start_of_line);
  EXPECT_TRUE(toks[2].start_of_line);
}

TEST(Lexer, LineSpliceJoinsTokens) {
  const auto toks = lexAll("ab\\\ncd efg");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "abcd");
  EXPECT_EQ(toks[1].text, "efg");
  EXPECT_EQ(toks[1].location.line, 2u);
}

TEST(Lexer, HeaderNameMode) {
  DiagnosticEngine de;
  RawLexer lx(FileId{1}, "<vector> x", de);
  lx.setHeaderNameMode(true);
  const Token h = lx.next();
  EXPECT_EQ(h.kind, TokenKind::HeaderName);
  EXPECT_EQ(h.text, "<vector>");
  lx.setHeaderNameMode(false);
  EXPECT_EQ(lx.next().text, "x");
}

TEST(Lexer, TemplateAngleBracketsAreSeparate) {
  const auto toks = lexAll("Stack<int> s;");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[1].text, "<");
  EXPECT_EQ(toks[3].text, ">");
}

TEST(Lexer, NestedTemplateCloseLexesAsShift) {
  // '>>' lexes as one token; the parser is responsible for splitting it
  // in template argument lists (C++98 heritage the paper's code predates).
  const auto toks = lexAll("Stack<vector<int>> s;");
  bool saw_shift = false;
  for (const auto& t : toks) saw_shift |= t.isPunct(">>");
  EXPECT_TRUE(saw_shift);
}

// ---------------------------------------------------------------------------
// Batch-lex conformance: RawLexer::lexAll must produce the exact token
// stream of repeated next() calls — kind, text, flags, and location.
// ---------------------------------------------------------------------------

void expectSameStream(std::string_view src) {
  DiagnosticEngine de_inc, de_batch;
  RawLexer inc(FileId{1}, src, de_inc);
  std::vector<Token> incremental;
  for (Token t = inc.next(); !t.isEnd(); t = inc.next())
    incremental.push_back(t);

  RawLexer batch_lx(FileId{1}, src, de_batch);
  std::vector<Token> batch;
  batch_lx.lexAll(batch);

  ASSERT_EQ(batch.size(), incremental.size()) << src;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Token& a = batch[i];
    const Token& b = incremental[i];
    EXPECT_EQ(a.kind, b.kind) << "token " << i;
    EXPECT_EQ(a.text, b.text) << "token " << i;
    EXPECT_EQ(a.start_of_line, b.start_of_line) << "token " << i;
    EXPECT_EQ(a.leading_space, b.leading_space) << "token " << i;
    EXPECT_EQ(a.location.line, b.location.line) << "token " << i;
    EXPECT_EQ(a.location.column, b.location.column) << "token " << i;
  }
  EXPECT_EQ(de_batch.errorCount(), de_inc.errorCount());
}

TEST(LexerBatch, MatchesIncrementalOnPlainCode) {
  expectSameStream("class Stack {\npublic:\n  int pop();\n};\n");
}

TEST(LexerBatch, MatchesIncrementalOnDirectives) {
  // '#include <...>' must lex the angled header name identically without
  // the preprocessor toggling header-name mode.
  expectSameStream("#include <vector>\n#include \"stack.h\"\n"
                   "#define MAX(a,b) ((a)>(b)?(a):(b))\n"
                   "#if defined(X) && X > 2\nint a;\n#endif\n");
}

TEST(LexerBatch, MatchesIncrementalOnSplicesAndComments) {
  expectSameStream("ab\\\ncd efg // trailing\n/* block\ncomment */ int x;\n"
                   "const char* s = \"str with // no comment\";\n");
}

TEST(LexerBatch, AngleBracketOutsideIncludeIsPunct) {
  // 'a < b' must never lex '<' as a header name in batch mode.
  expectSameStream("bool lt = a < b;\ninclude <tricky>;\n"
                   "# include <real.h>\n");
}

TEST(LexerBatch, MatchesIncrementalOnLiterals) {
  expectSameStream("0x1F 10u 7L 1.5 .25 2e10 3.14e-2 'a' '\\n' \"s\\\"q\"\n");
}

}  // namespace
}  // namespace pdt::lex
