// Type representation of the PDT-C++ intermediate language.
//
// Types are immutable and canonicalized by the AstContext: structurally
// identical types share one node, so pointer equality is type equality.
// The kinds map 1:1 onto the PDB "ty" item kinds of paper Figure 3
// (ykind bool/int/ref/tref/func/...).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdt::ast {

class ClassDecl;
class EnumDecl;
class TypedefDecl;
class TemplateDecl;

enum class TypeKind : std::uint8_t {
  Builtin,
  Pointer,
  Reference,
  Qualified,   // const/volatile wrapper — PDB "tref"
  Array,
  Function,
  Class,       // class/struct/union type, names a ClassDecl
  Enum,
  Typedef,     // names a TypedefDecl; canonical type navigates through
  TemplateParam,
  TemplateSpecialization,  // dependent Stack<Object> inside a template body
};

enum class BuiltinKind : std::uint8_t {
  Void, Bool, Char, SChar, UChar, WChar, Short, UShort, Int, UInt,
  Long, ULong, LongLong, ULongLong, Float, Double, LongDouble,
};

[[nodiscard]] std::string_view toString(BuiltinKind kind);

class Type {
 public:
  explicit Type(TypeKind kind) : kind_(kind) {}
  virtual ~Type() = default;

  Type(const Type&) = delete;
  Type& operator=(const Type&) = delete;

  [[nodiscard]] TypeKind kind() const { return kind_; }

  template <typename T>
  [[nodiscard]] const T* as() const {
    return dynamic_cast<const T*>(this);
  }

  /// C++ rendering of the type, e.g. "const int &", "bool () const".
  [[nodiscard]] std::string spelling() const;

  /// True when the type mentions a template parameter anywhere.
  [[nodiscard]] bool isDependent() const { return dependent_; }

 protected:
  void setDependent(bool d) { dependent_ = d; }

 private:
  TypeKind kind_;
  bool dependent_ = false;
};

class BuiltinType final : public Type {
 public:
  explicit BuiltinType(BuiltinKind builtin)
      : Type(TypeKind::Builtin), builtin_(builtin) {}
  [[nodiscard]] BuiltinKind builtin() const { return builtin_; }

 private:
  BuiltinKind builtin_;
};

class PointerType final : public Type {
 public:
  explicit PointerType(const Type* pointee)
      : Type(TypeKind::Pointer), pointee_(pointee) {
    setDependent(pointee->isDependent());
  }
  [[nodiscard]] const Type* pointee() const { return pointee_; }

 private:
  const Type* pointee_;
};

class ReferenceType final : public Type {
 public:
  explicit ReferenceType(const Type* referee)
      : Type(TypeKind::Reference), referee_(referee) {
    setDependent(referee->isDependent());
  }
  [[nodiscard]] const Type* referee() const { return referee_; }

 private:
  const Type* referee_;
};

/// const/volatile-qualified view of an underlying type (PDB ykind "tref").
class QualifiedType final : public Type {
 public:
  QualifiedType(const Type* base, bool is_const, bool is_volatile)
      : Type(TypeKind::Qualified), base_(base), const_(is_const),
        volatile_(is_volatile) {
    setDependent(base->isDependent());
  }
  [[nodiscard]] const Type* base() const { return base_; }
  [[nodiscard]] bool isConst() const { return const_; }
  [[nodiscard]] bool isVolatile() const { return volatile_; }

 private:
  const Type* base_;
  bool const_;
  bool volatile_;
};

class ArrayType final : public Type {
 public:
  ArrayType(const Type* element, std::int64_t size /* -1 = unsized */)
      : Type(TypeKind::Array), element_(element), size_(size) {
    setDependent(element->isDependent());
  }
  [[nodiscard]] const Type* element() const { return element_; }
  [[nodiscard]] std::int64_t size() const { return size_; }

 private:
  const Type* element_;
  std::int64_t size_;
};

class FunctionType final : public Type {
 public:
  FunctionType(const Type* result, std::vector<const Type*> params,
               bool is_const_member, bool has_ellipsis,
               std::vector<const Type*> exception_specs)
      : Type(TypeKind::Function), result_(result), params_(std::move(params)),
        const_member_(is_const_member), ellipsis_(has_ellipsis),
        exception_specs_(std::move(exception_specs)) {
    bool dep = result->isDependent();
    for (const Type* p : params_) dep = dep || p->isDependent();
    setDependent(dep);
  }
  [[nodiscard]] const Type* result() const { return result_; }
  [[nodiscard]] const std::vector<const Type*>& params() const { return params_; }
  [[nodiscard]] bool isConstMember() const { return const_member_; }
  [[nodiscard]] bool hasEllipsis() const { return ellipsis_; }
  [[nodiscard]] const std::vector<const Type*>& exceptionSpecs() const {
    return exception_specs_;
  }

 private:
  const Type* result_;
  std::vector<const Type*> params_;
  bool const_member_;
  bool ellipsis_;
  std::vector<const Type*> exception_specs_;
};

class ClassType final : public Type {
 public:
  explicit ClassType(const ClassDecl* decl) : Type(TypeKind::Class), decl_(decl) {}
  [[nodiscard]] const ClassDecl* decl() const { return decl_; }

 private:
  const ClassDecl* decl_;
};

class EnumType final : public Type {
 public:
  explicit EnumType(const EnumDecl* decl) : Type(TypeKind::Enum), decl_(decl) {}
  [[nodiscard]] const EnumDecl* decl() const { return decl_; }

 private:
  const EnumDecl* decl_;
};

class TypedefType final : public Type {
 public:
  TypedefType(const TypedefDecl* decl, const Type* underlying)
      : Type(TypeKind::Typedef), decl_(decl), underlying_(underlying) {
    setDependent(underlying->isDependent());
  }
  [[nodiscard]] const TypedefDecl* decl() const { return decl_; }
  [[nodiscard]] const Type* underlying() const { return underlying_; }

 private:
  const TypedefDecl* decl_;
  const Type* underlying_;
};

/// A template type parameter in a template pattern ("Object" in Figure 1).
/// Identified by (depth, index) so substitution is positional.
class TemplateParamType final : public Type {
 public:
  TemplateParamType(std::string name, unsigned depth, unsigned index)
      : Type(TypeKind::TemplateParam), name_(std::move(name)), depth_(depth),
        index_(index) {
    setDependent(true);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] unsigned depth() const { return depth_; }
  [[nodiscard]] unsigned index() const { return index_; }

 private:
  std::string name_;
  unsigned depth_;
  unsigned index_;
};

/// "Stack<Object>" inside a template body: a template name applied to
/// (possibly dependent) arguments. Sema resolves non-dependent uses to a
/// concrete ClassType via instantiation.
class TemplateSpecializationType final : public Type {
 public:
  TemplateSpecializationType(const TemplateDecl* primary,
                             std::vector<const Type*> args)
      : Type(TypeKind::TemplateSpecialization), primary_(primary),
        args_(std::move(args)) {
    setDependent(true);
  }
  [[nodiscard]] const TemplateDecl* primary() const { return primary_; }
  [[nodiscard]] const std::vector<const Type*>& args() const { return args_; }

 private:
  const TemplateDecl* primary_;
  std::vector<const Type*> args_;
};

/// Strips typedefs and qualifiers down to the structural type.
[[nodiscard]] const Type* canonical(const Type* type);

/// Strips references, typedefs, and qualifiers — the "named class" view
/// used when resolving member calls (`s.push(...)`).
[[nodiscard]] const Type* strippedForMemberAccess(const Type* type);

}  // namespace pdt::ast
