// Declaration nodes of the PDT-C++ intermediate language.
//
// The shapes follow what the IL Analyzer must report per paper Table 1:
// routines carry signatures, parents, access, storage/linkage/virtuality
// and the template they were instantiated from; classes carry bases,
// friends, members; templates carry their kind and text.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/type.h"
#include "support/source_location.h"

namespace pdt::ast {

class Stmt;
class Expr;
class DeclContext;
class TemplateDecl;

enum class DeclKind : std::uint8_t {
  TranslationUnit,
  Namespace,
  NamespaceAlias,
  UsingDirective,
  Class,
  Function,
  Param,
  Var,
  Enum,
  Enumerator,
  Typedef,
  TemplateParam,
  Template,
  Friend,
};

enum class AccessKind : std::uint8_t { None, Public, Protected, Private };
enum class TagKind : std::uint8_t { Class, Struct, Union };
enum class StorageClass : std::uint8_t { None, Static, Extern, Mutable, Register };
enum class Linkage : std::uint8_t { Cxx, C };

[[nodiscard]] std::string_view toString(AccessKind a);
[[nodiscard]] std::string_view toString(TagKind t);

class Decl {
 public:
  virtual ~Decl() = default;
  Decl(const Decl&) = delete;
  Decl& operator=(const Decl&) = delete;

  [[nodiscard]] DeclKind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] SourceLocation location() const { return location_; }
  [[nodiscard]] SourceExtent headerExtent() const { return header_extent_; }
  [[nodiscard]] SourceExtent bodyExtent() const { return body_extent_; }
  [[nodiscard]] AccessKind access() const { return access_; }
  [[nodiscard]] DeclContext* parent() const { return parent_; }
  /// Sequential id assigned by the AstContext; stable traversal order.
  [[nodiscard]] std::uint32_t id() const { return id_; }

  void setName(std::string n) { name_ = std::move(n); }
  void setLocation(SourceLocation loc) { location_ = loc; }
  void setHeaderExtent(SourceExtent e) { header_extent_ = e; }
  void setBodyExtent(SourceExtent e) { body_extent_ = e; }
  void setAccess(AccessKind a) { access_ = a; }
  void setParent(DeclContext* p) { parent_ = p; }
  void setId(std::uint32_t id) { id_ = id; }

  template <typename T>
  [[nodiscard]] T* as() {
    return dynamic_cast<T*>(this);
  }
  template <typename T>
  [[nodiscard]] const T* as() const {
    return dynamic_cast<const T*>(this);
  }

  /// Qualified name, e.g. "Stack<int>::push" or "std::sort".
  [[nodiscard]] std::string qualifiedName() const;

 protected:
  explicit Decl(DeclKind kind) : kind_(kind) {}

 private:
  DeclKind kind_;
  std::string name_;
  SourceLocation location_;
  SourceExtent header_extent_;
  SourceExtent body_extent_;
  AccessKind access_ = AccessKind::None;
  DeclContext* parent_ = nullptr;
  std::uint32_t id_ = 0;
};

/// A declaration that owns child declarations (translation unit,
/// namespace, class). Children are stored in source order.
class DeclContext {
 public:
  virtual ~DeclContext() = default;

  void addChild(Decl* d) { children_.push_back(d); }
  [[nodiscard]] const std::vector<Decl*>& children() const { return children_; }

  /// All children whose name is `name` (C++ allows overload sets).
  [[nodiscard]] std::vector<Decl*> lookup(std::string_view name) const;

  /// The Decl this context is (every DeclContext is also a Decl).
  [[nodiscard]] virtual Decl* asDecl() = 0;
  [[nodiscard]] virtual const Decl* asDecl() const = 0;

 private:
  std::vector<Decl*> children_;
};

class TranslationUnitDecl final : public Decl, public DeclContext {
 public:
  TranslationUnitDecl() : Decl(DeclKind::TranslationUnit) {}
  Decl* asDecl() override { return this; }
  const Decl* asDecl() const override { return this; }
};

class NamespaceDecl final : public Decl, public DeclContext {
 public:
  NamespaceDecl() : Decl(DeclKind::Namespace) {}
  Decl* asDecl() override { return this; }
  const Decl* asDecl() const override { return this; }
};

class NamespaceAliasDecl final : public Decl {
 public:
  NamespaceAliasDecl() : Decl(DeclKind::NamespaceAlias) {}
  NamespaceDecl* target = nullptr;
};

class UsingDirectiveDecl final : public Decl {
 public:
  UsingDirectiveDecl() : Decl(DeclKind::UsingDirective) {}
  NamespaceDecl* target = nullptr;
};

struct BaseSpecifier {
  const ClassDecl* base = nullptr;
  /// For bases of template patterns that mention template parameters:
  /// the dependent type, resolved to `base` at instantiation time.
  const Type* dependent_type = nullptr;
  AccessKind access = AccessKind::Public;
  bool is_virtual = false;
};

struct FriendEntry {
  bool is_class = false;
  std::string name;          // as written
  const Decl* resolved = nullptr;  // may stay null (forward friend)
};

class ClassDecl final : public Decl, public DeclContext {
 public:
  ClassDecl() : Decl(DeclKind::Class) {}
  Decl* asDecl() override { return this; }
  const Decl* asDecl() const override { return this; }

  TagKind tag = TagKind::Class;
  bool is_complete = false;  // definition seen (vs forward declaration)
  std::vector<BaseSpecifier> bases;
  std::vector<FriendEntry> friends;

  /// Template provenance: non-null when this class is an instantiation.
  const TemplateDecl* instantiated_from = nullptr;
  std::vector<const Type*> template_args;
  bool is_specialization = false;
  /// When this class IS a template pattern: the template describing it.
  const TemplateDecl* describing_template = nullptr;
};

class ParamDecl final : public Decl {
 public:
  ParamDecl() : Decl(DeclKind::Param) {}
  const Type* type = nullptr;
  Expr* default_arg = nullptr;
};

enum class FunctionKind : std::uint8_t {
  Normal,
  Constructor,
  Destructor,
  Operator,
  Conversion,
};

class FunctionDecl final : public Decl {
 public:
  FunctionDecl() : Decl(DeclKind::Function) {}

  FunctionKind fkind = FunctionKind::Normal;
  const Type* return_type = nullptr;
  std::vector<ParamDecl*> params;
  const FunctionType* signature = nullptr;  // canonical function type

  bool is_virtual = false;
  bool is_pure_virtual = false;
  bool is_static = false;
  bool is_const = false;
  bool is_inline = false;
  bool is_explicit = false;
  bool has_ellipsis = false;
  StorageClass storage = StorageClass::None;
  Linkage linkage = Linkage::Cxx;
  std::vector<const Type*> exception_specs;
  bool has_exception_spec = false;

  Stmt* body = nullptr;          // null until (unless) defined
  bool is_defined = false;

  /// Constructor member/base initializers (": theArray(cap), Base(x)").
  /// These are constructor calls the IL Analyzer must report (§3.1).
  struct CtorInit {
    std::string name;           // member or base name as written
    std::vector<Expr*> args;
    SourceLocation location;
    const FunctionDecl* resolved_ctor = nullptr;
  };
  std::vector<CtorInit> ctor_inits;

  /// Template provenance: non-null when instantiated from a template.
  const TemplateDecl* instantiated_from = nullptr;
  std::vector<const Type*> template_args;
  bool is_specialization = false;
  /// When this function IS a template pattern (or a member of a class
  /// template pattern): the template entity describing it.
  const TemplateDecl* describing_template = nullptr;

  /// The class this is a member of, or null for free functions.
  [[nodiscard]] const ClassDecl* memberOf() const;
  [[nodiscard]] bool isMember() const { return memberOf() != nullptr; }
};

class VarDecl final : public Decl {
 public:
  VarDecl() : Decl(DeclKind::Var) {}
  const Type* type = nullptr;
  Expr* init = nullptr;
  std::vector<Expr*> ctor_args;  // direct-init arguments: T v(a, b);
  StorageClass storage = StorageClass::None;
  /// For class-type locals: the lifetime-implied constructor/destructor
  /// calls (paper §3.1 — these are not ordinary call expressions).
  const FunctionDecl* resolved_ctor = nullptr;
  const FunctionDecl* resolved_dtor = nullptr;
  const TemplateDecl* instantiated_from = nullptr;  // static member templates
  std::vector<const Type*> template_args;
  const TemplateDecl* describing_template = nullptr;
};

class EnumeratorDecl final : public Decl {
 public:
  EnumeratorDecl() : Decl(DeclKind::Enumerator) {}
  long long value = 0;
};

class EnumDecl final : public Decl {
 public:
  EnumDecl() : Decl(DeclKind::Enum) {}
  std::vector<EnumeratorDecl*> enumerators;
};

class TypedefDecl final : public Decl {
 public:
  TypedefDecl() : Decl(DeclKind::Typedef) {}
  const Type* underlying = nullptr;
  /// When this typedef IS an alias-template pattern: the describing entity.
  const TemplateDecl* describing_template = nullptr;
};

class TemplateParamDecl final : public Decl {
 public:
  TemplateParamDecl() : Decl(DeclKind::TemplateParam) {}
  enum class Kind : std::uint8_t { Type, NonType } param_kind = Kind::Type;
  unsigned index = 0;
  const Type* type = nullptr;          // for non-type params: the value type
  const Type* default_type = nullptr;  // for type params with defaults
  Expr* default_value = nullptr;       // for non-type params with defaults
};

/// Template kinds as reported in the PDB (paper Figure 3 "tkind" and the
/// TAU instrumentor's pdbItem::TE_* constants in Figure 6).
enum class TemplateKind : std::uint8_t {
  Class,       // tkind class
  Function,    // tkind func       (TE_FUNC)
  MemberFunc,  // tkind memfunc    (TE_MEMFUNC)
  StaticMem,   // tkind statmem    (TE_STATMEM)
  Alias,       // tkind alias      (template <...> using X = T)
};

[[nodiscard]] std::string_view toString(TemplateKind k);

class TemplateDecl final : public Decl {
 public:
  TemplateDecl() : Decl(DeclKind::Template) {}

  TemplateKind tkind = TemplateKind::Class;
  std::vector<TemplateParamDecl*> params;
  /// The pattern: a ClassDecl, FunctionDecl, or VarDecl left uninstantiated.
  Decl* pattern = nullptr;
  /// Source text of the template declaration ("ttext" in the PDB).
  std::string text;

  struct Instantiation {
    std::vector<const Type*> args;
    Decl* decl = nullptr;
  };
  std::vector<Instantiation> instantiations;

  struct Specialization {
    std::vector<const Type*> args;
    Decl* decl = nullptr;
  };
  std::vector<Specialization> specializations;

  /// Finds an existing instantiation with exactly these arguments.
  [[nodiscard]] Decl* findInstantiation(const std::vector<const Type*>& args) const;
  [[nodiscard]] Decl* findSpecialization(const std::vector<const Type*>& args) const;
};

}  // namespace pdt::ast
