// Generic traversal over statement/expression trees and declarations.
// Used by the instantiation engine (to find template uses in bodies) and
// by the IL Analyzer (to extract call sites and object lifetimes).
#pragma once

#include <functional>

#include "ast/decl.h"
#include "ast/stmt.h"

namespace pdt::ast {

/// Invokes `fn` on every direct child statement/expression of `s`.
void forEachChild(const Stmt* s, const std::function<void(const Stmt*)>& fn);

/// Pre-order walk of the whole tree rooted at `s` (including `s`).
void walk(const Stmt* s, const std::function<void(const Stmt*)>& fn);

/// Pre-order walk of a declaration subtree: visits `d` and, for contexts,
/// every nested declaration.
void walkDecls(const Decl* d, const std::function<void(const Decl*)>& fn);

}  // namespace pdt::ast
