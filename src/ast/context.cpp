#include "ast/context.h"

namespace pdt::ast {

AstContext::AstContext() { tu_ = create<TranslationUnitDecl>(); }

AstContext::~AstContext() = default;

std::string typeKey(const Type* type) {
  switch (type->kind()) {
    case TypeKind::Builtin:
      return "b:" + std::string(toString(type->as<BuiltinType>()->builtin()));
    case TypeKind::Pointer:
      return "p(" + typeKey(type->as<PointerType>()->pointee()) + ")";
    case TypeKind::Reference:
      return "r(" + typeKey(type->as<ReferenceType>()->referee()) + ")";
    case TypeKind::Qualified: {
      const auto* q = type->as<QualifiedType>();
      return std::string("q") + (q->isConst() ? "c" : "") +
             (q->isVolatile() ? "v" : "") + "(" + typeKey(q->base()) + ")";
    }
    case TypeKind::Array: {
      const auto* a = type->as<ArrayType>();
      return "a" + std::to_string(a->size()) + "(" + typeKey(a->element()) + ")";
    }
    case TypeKind::Function: {
      const auto* f = type->as<FunctionType>();
      std::string key = "f(" + typeKey(f->result());
      for (const Type* p : f->params()) key += "," + typeKey(p);
      if (f->hasEllipsis()) key += ",...";
      key += ")";
      if (f->isConstMember()) key += "c";
      for (const Type* e : f->exceptionSpecs()) key += "t" + typeKey(e);
      return key;
    }
    case TypeKind::Class:
      return "c:" + std::to_string(type->as<ClassType>()->decl()->id());
    case TypeKind::Enum:
      return "e:" + std::to_string(type->as<EnumType>()->decl()->id());
    case TypeKind::Typedef:
      return "td:" + std::to_string(type->as<TypedefType>()->decl()->id());
    case TypeKind::TemplateParam: {
      const auto* tp = type->as<TemplateParamType>();
      return "tp:" + std::to_string(tp->depth()) + ":" +
             std::to_string(tp->index());
    }
    case TypeKind::TemplateSpecialization: {
      const auto* ts = type->as<TemplateSpecializationType>();
      std::string key = "ts:" + std::to_string(ts->primary()->id()) + "(";
      for (const Type* a : ts->args()) key += typeKey(a) + ",";
      return key + ")";
    }
  }
  return "?";
}

template <typename T>
const T* AstContext::intern(std::unique_ptr<T> t, const std::string& key) {
  if (const auto it = type_table_.find(key); it != type_table_.end()) {
    return static_cast<const T*>(it->second);
  }
  const T* raw = t.get();
  types_.push_back(std::move(t));
  type_table_.emplace(key, raw);
  return raw;
}

const BuiltinType* AstContext::builtin(BuiltinKind kind) {
  auto t = std::make_unique<BuiltinType>(kind);
  const std::string key = typeKey(t.get());
  return intern(std::move(t), key);
}

const PointerType* AstContext::pointerTo(const Type* pointee) {
  auto t = std::make_unique<PointerType>(pointee);
  const std::string key = typeKey(t.get());
  return intern(std::move(t), key);
}

const ReferenceType* AstContext::referenceTo(const Type* referee) {
  // Reference collapsing: T& & -> T&.
  if (const auto* r = referee->as<ReferenceType>()) return r;
  auto t = std::make_unique<ReferenceType>(referee);
  const std::string key = typeKey(t.get());
  return intern(std::move(t), key);
}

const Type* AstContext::qualified(const Type* base, bool is_const,
                                  bool is_volatile) {
  if (!is_const && !is_volatile) return base;
  if (const auto* q = base->as<QualifiedType>()) {
    // Merge nested qualifiers.
    is_const = is_const || q->isConst();
    is_volatile = is_volatile || q->isVolatile();
    base = q->base();
  }
  auto t = std::make_unique<QualifiedType>(base, is_const, is_volatile);
  const std::string key = typeKey(t.get());
  return intern(std::move(t), key);
}

const ArrayType* AstContext::arrayOf(const Type* element, std::int64_t size) {
  auto t = std::make_unique<ArrayType>(element, size);
  const std::string key = typeKey(t.get());
  return intern(std::move(t), key);
}

const FunctionType* AstContext::functionType(
    const Type* result, std::vector<const Type*> params, bool is_const_member,
    bool has_ellipsis, std::vector<const Type*> exception_specs) {
  auto t = std::make_unique<FunctionType>(result, std::move(params),
                                          is_const_member, has_ellipsis,
                                          std::move(exception_specs));
  const std::string key = typeKey(t.get());
  return intern(std::move(t), key);
}

const ClassType* AstContext::classType(const ClassDecl* decl) {
  auto t = std::make_unique<ClassType>(decl);
  const std::string key = typeKey(t.get());
  return intern(std::move(t), key);
}

const EnumType* AstContext::enumType(const EnumDecl* decl) {
  auto t = std::make_unique<EnumType>(decl);
  const std::string key = typeKey(t.get());
  return intern(std::move(t), key);
}

const TypedefType* AstContext::typedefType(const TypedefDecl* decl,
                                           const Type* underlying) {
  auto t = std::make_unique<TypedefType>(decl, underlying);
  const std::string key = typeKey(t.get());
  return intern(std::move(t), key);
}

const TemplateParamType* AstContext::templateParamType(const std::string& name,
                                                       unsigned depth,
                                                       unsigned index) {
  auto t = std::make_unique<TemplateParamType>(name, depth, index);
  const std::string key = typeKey(t.get());
  return intern(std::move(t), key);
}

const TemplateSpecializationType* AstContext::templateSpecType(
    const TemplateDecl* primary, std::vector<const Type*> args) {
  auto t = std::make_unique<TemplateSpecializationType>(primary, std::move(args));
  const std::string key = typeKey(t.get());
  return intern(std::move(t), key);
}

}  // namespace pdt::ast
