// AstContext: owns every IL node (arena allocation) and canonicalizes
// types so that structural equality is pointer equality.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "ast/decl.h"
#include "ast/stmt.h"
#include "ast/type.h"

namespace pdt::ast {

class AstContext {
 public:
  AstContext();
  ~AstContext();

  AstContext(const AstContext&) = delete;
  AstContext& operator=(const AstContext&) = delete;

  /// Creates a declaration node owned by this context.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = node.get();
    if constexpr (std::is_base_of_v<Decl, T>) {
      raw->setId(next_decl_id_++);
      decls_.push_back(std::move(node));
    } else {
      static_assert(std::is_base_of_v<Stmt, T>);
      stmts_.push_back(std::move(node));
    }
    return raw;
  }

  [[nodiscard]] TranslationUnitDecl* translationUnit() { return tu_; }
  [[nodiscard]] const TranslationUnitDecl* translationUnit() const { return tu_; }

  // -- canonical type factory ------------------------------------------
  [[nodiscard]] const BuiltinType* builtin(BuiltinKind kind);
  [[nodiscard]] const Type* voidType() { return builtin(BuiltinKind::Void); }
  [[nodiscard]] const Type* boolType() { return builtin(BuiltinKind::Bool); }
  [[nodiscard]] const Type* intType() { return builtin(BuiltinKind::Int); }
  [[nodiscard]] const PointerType* pointerTo(const Type* pointee);
  [[nodiscard]] const ReferenceType* referenceTo(const Type* referee);
  [[nodiscard]] const Type* qualified(const Type* base, bool is_const,
                                      bool is_volatile);
  [[nodiscard]] const ArrayType* arrayOf(const Type* element, std::int64_t size);
  [[nodiscard]] const FunctionType* functionType(
      const Type* result, std::vector<const Type*> params, bool is_const_member,
      bool has_ellipsis, std::vector<const Type*> exception_specs);
  [[nodiscard]] const ClassType* classType(const ClassDecl* decl);
  [[nodiscard]] const EnumType* enumType(const EnumDecl* decl);
  [[nodiscard]] const TypedefType* typedefType(const TypedefDecl* decl,
                                               const Type* underlying);
  [[nodiscard]] const TemplateParamType* templateParamType(const std::string& name,
                                                           unsigned depth,
                                                           unsigned index);
  [[nodiscard]] const TemplateSpecializationType* templateSpecType(
      const TemplateDecl* primary, std::vector<const Type*> args);

  /// All declarations in creation order (stable ids).
  [[nodiscard]] const std::vector<std::unique_ptr<Decl>>& allDecls() const {
    return decls_;
  }

 private:
  template <typename T>
  const T* intern(std::unique_ptr<T> t, const std::string& key);

  std::vector<std::unique_ptr<Decl>> decls_;
  std::vector<std::unique_ptr<Stmt>> stmts_;
  std::vector<std::unique_ptr<Type>> types_;
  std::map<std::string, const Type*> type_table_;  // structural key -> node
  TranslationUnitDecl* tu_ = nullptr;
  std::uint32_t next_decl_id_ = 1;
};

/// Structural key used to canonicalize types; also a debugging aid.
[[nodiscard]] std::string typeKey(const Type* type);

}  // namespace pdt::ast
