#include "ast/dump.h"

#include "ast/walk.h"

#include <ostream>
#include <string>

namespace pdt::ast {
namespace {

std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent) * 2, ' '); }

std::string_view stmtKindName(StmtKind k) {
  switch (k) {
    case StmtKind::Compound: return "CompoundStmt";
    case StmtKind::If: return "IfStmt";
    case StmtKind::While: return "WhileStmt";
    case StmtKind::DoWhile: return "DoWhileStmt";
    case StmtKind::For: return "ForStmt";
    case StmtKind::Switch: return "SwitchStmt";
    case StmtKind::Case: return "CaseStmt";
    case StmtKind::Default: return "DefaultStmt";
    case StmtKind::Return: return "ReturnStmt";
    case StmtKind::ExprStatement: return "ExprStmt";
    case StmtKind::DeclStatement: return "DeclStmt";
    case StmtKind::Break: return "BreakStmt";
    case StmtKind::Continue: return "ContinueStmt";
    case StmtKind::Null: return "NullStmt";
    case StmtKind::Try: return "TryStmt";
    case StmtKind::Goto: return "GotoStmt";
    case StmtKind::Label: return "LabelStmt";
    case StmtKind::IntLit: return "IntLit";
    case StmtKind::FloatLit: return "FloatLit";
    case StmtKind::CharLit: return "CharLit";
    case StmtKind::StringLit: return "StringLit";
    case StmtKind::BoolLit: return "BoolLit";
    case StmtKind::This: return "This";
    case StmtKind::DeclRef: return "DeclRef";
    case StmtKind::Member: return "Member";
    case StmtKind::Call: return "Call";
    case StmtKind::Unary: return "Unary";
    case StmtKind::Binary: return "Binary";
    case StmtKind::Conditional: return "Conditional";
    case StmtKind::Cast: return "Cast";
    case StmtKind::New: return "New";
    case StmtKind::Delete: return "Delete";
    case StmtKind::Index: return "Index";
    case StmtKind::Construct: return "Construct";
    case StmtKind::Throw: return "Throw";
    case StmtKind::SizeOf: return "SizeOf";
    case StmtKind::Comma: return "Comma";
  }
  return "Stmt";
}

}  // namespace

void dump(const Stmt* stmt, std::ostream& os, int indent) {
  if (stmt == nullptr) return;
  os << pad(indent) << stmtKindName(stmt->kind());
  switch (stmt->kind()) {
    case StmtKind::IntLit:
      os << " " << stmt->as<IntLitExpr>()->value;
      break;
    case StmtKind::FloatLit:
      os << " " << stmt->as<FloatLitExpr>()->value;
      break;
    case StmtKind::StringLit:
      os << " " << stmt->as<StringLitExpr>()->spelling;
      break;
    case StmtKind::BoolLit:
      os << (stmt->as<BoolLitExpr>()->value ? " true" : " false");
      break;
    case StmtKind::DeclRef: {
      const auto* ref = stmt->as<DeclRefExpr>();
      os << " '" << ref->name << "'";
      if (ref->decl != nullptr) os << " -> " << ref->decl->qualifiedName();
      break;
    }
    case StmtKind::Member: {
      const auto* m = stmt->as<MemberExpr>();
      os << (m->is_arrow ? " ->" : " .") << m->member;
      break;
    }
    case StmtKind::Call: {
      const auto* call = stmt->as<CallExpr>();
      if (call->resolved != nullptr) {
        os << " -> " << call->resolved->qualifiedName();
        if (call->is_virtual_call) os << " (virtual)";
      }
      break;
    }
    case StmtKind::Unary:
      os << " '" << stmt->as<UnaryExpr>()->op << "'";
      break;
    case StmtKind::Binary: {
      const auto* bin = stmt->as<BinaryExpr>();
      os << " '" << bin->op << "'";
      if (bin->resolved_operator != nullptr)
        os << " -> " << bin->resolved_operator->qualifiedName();
      break;
    }
    case StmtKind::Construct: {
      const auto* c = stmt->as<ConstructExpr>();
      if (c->constructed != nullptr) os << " " << c->constructed->spelling();
      break;
    }
    case StmtKind::Cast:
      os << " (" << stmt->as<CastExpr>()->cast_kind << ")";
      break;
    case StmtKind::DeclStatement:
      break;
    default:
      break;
  }
  if (const auto* e = dynamic_cast<const Expr*>(stmt);
      e != nullptr && e->type != nullptr) {
    os << " : " << e->type->spelling();
  }
  os << '\n';
  if (const auto* ds = stmt->as<DeclStmt>()) {
    for (const VarDecl* v : ds->vars) dump(v, os, indent + 1);
    return;
  }
  forEachChild(stmt, [&](const Stmt* child) { dump(child, os, indent + 1); });
}

void dump(const Decl* decl, std::ostream& os, int indent) {
  if (decl == nullptr) return;
  os << pad(indent);
  switch (decl->kind()) {
    case DeclKind::TranslationUnit:
      os << "TranslationUnit\n";
      break;
    case DeclKind::Namespace:
      os << "Namespace " << decl->name() << '\n';
      break;
    case DeclKind::NamespaceAlias: {
      const auto* a = decl->as<NamespaceAliasDecl>();
      os << "NamespaceAlias " << decl->name() << " = "
         << (a->target != nullptr ? a->target->name() : "?") << '\n';
      break;
    }
    case DeclKind::UsingDirective: {
      const auto* u = decl->as<UsingDirectiveDecl>();
      os << "UsingDirective "
         << (u->target != nullptr ? u->target->name() : "?") << '\n';
      break;
    }
    case DeclKind::Class: {
      const auto* cls = decl->as<ClassDecl>();
      os << "Class " << decl->name();
      if (!cls->is_complete) os << " (incomplete)";
      if (cls->instantiated_from != nullptr)
        os << " <- template " << cls->instantiated_from->name();
      if (cls->is_specialization) os << " (specialization)";
      for (const BaseSpecifier& b : cls->bases) {
        os << " : " << toString(b.access) << ' '
           << (b.base != nullptr ? b.base->name()
                                 : (b.dependent_type != nullptr
                                        ? b.dependent_type->spelling()
                                        : std::string("?")));
      }
      os << '\n';
      break;
    }
    case DeclKind::Function: {
      const auto* fn = decl->as<FunctionDecl>();
      os << "Function " << decl->name();
      if (fn->signature != nullptr) os << " : " << fn->signature->spelling();
      if (fn->is_virtual) os << " virtual";
      if (fn->is_static) os << " static";
      if (fn->instantiated_from != nullptr)
        os << " <- template " << fn->instantiated_from->name();
      os << '\n';
      for (const ParamDecl* p : fn->params) dump(p, os, indent + 1);
      if (fn->body != nullptr) dump(fn->body, os, indent + 1);
      return;
    }
    case DeclKind::Param: {
      const auto* p = decl->as<ParamDecl>();
      os << "Param " << decl->name();
      if (p->type != nullptr) os << " : " << p->type->spelling();
      if (p->default_arg != nullptr) os << " (has default)";
      os << '\n';
      break;
    }
    case DeclKind::Var: {
      const auto* v = decl->as<VarDecl>();
      os << "Var " << decl->name();
      if (v->type != nullptr) os << " : " << v->type->spelling();
      os << '\n';
      break;
    }
    case DeclKind::Enum: {
      const auto* e = decl->as<EnumDecl>();
      os << "Enum " << decl->name() << " {";
      for (std::size_t i = 0; i < e->enumerators.size(); ++i) {
        if (i > 0) os << ",";
        os << ' ' << e->enumerators[i]->name() << '=' << e->enumerators[i]->value;
      }
      os << " }\n";
      break;
    }
    case DeclKind::Enumerator:
      os << "Enumerator " << decl->name() << '\n';
      break;
    case DeclKind::Typedef: {
      const auto* t = decl->as<TypedefDecl>();
      os << "Typedef " << decl->name() << " = "
         << (t->underlying != nullptr ? t->underlying->spelling() : "?") << '\n';
      break;
    }
    case DeclKind::TemplateParam:
      os << "TemplateParam " << decl->name() << '\n';
      break;
    case DeclKind::Template: {
      const auto* td = decl->as<TemplateDecl>();
      os << "Template " << decl->name() << " [" << toString(td->tkind) << "] ("
         << td->instantiations.size() << " instantiations, "
         << td->specializations.size() << " specializations)\n";
      if (td->pattern != nullptr) dump(td->pattern, os, indent + 1);
      return;
    }
    case DeclKind::Friend:
      os << "Friend " << decl->name() << '\n';
      break;
  }
  const DeclContext* ctx = nullptr;
  if (const auto* tu = decl->as<TranslationUnitDecl>()) ctx = tu;
  else if (const auto* ns = decl->as<NamespaceDecl>()) ctx = ns;
  else if (const auto* cls = decl->as<ClassDecl>()) ctx = cls;
  if (ctx != nullptr) {
    for (const Decl* child : ctx->children()) dump(child, os, indent + 1);
  }
}

void dump(const AstContext& ctx, std::ostream& os) {
  dump(ctx.translationUnit(), os, 0);
}

}  // namespace pdt::ast
