// Statement and expression nodes.
//
// Bodies are parsed fully so the IL Analyzer can extract the static call
// graph — including constructor/destructor calls derived from object
// lifetimes, which the paper notes require special handling (§3.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ast/type.h"
#include "support/source_location.h"

namespace pdt::ast {

class Decl;
class FunctionDecl;
class VarDecl;
class ClassDecl;

enum class StmtKind : std::uint8_t {
  // statements
  Compound, If, While, DoWhile, For, Switch, Case, Default, Return,
  ExprStatement, DeclStatement, Break, Continue, Null, Try, Goto, Label,
  // expressions
  IntLit, FloatLit, CharLit, StringLit, BoolLit, This,
  DeclRef, Member, Call, Unary, Binary, Conditional, Cast, New, Delete,
  Index, Construct, Throw, SizeOf, Comma,
};

class Stmt {
 public:
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  [[nodiscard]] StmtKind kind() const { return kind_; }
  [[nodiscard]] SourceExtent extent() const { return extent_; }
  void setExtent(SourceExtent e) { extent_ = e; }

  template <typename T>
  [[nodiscard]] T* as() {
    return dynamic_cast<T*>(this);
  }
  template <typename T>
  [[nodiscard]] const T* as() const {
    return dynamic_cast<const T*>(this);
  }

 protected:
  explicit Stmt(StmtKind kind) : kind_(kind) {}

 private:
  StmtKind kind_;
  SourceExtent extent_;
};

class Expr : public Stmt {
 public:
  /// Static type of the expression; null when not computable in the subset.
  const Type* type = nullptr;

 protected:
  explicit Expr(StmtKind kind) : Stmt(kind) {}
};

// --------------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------------

class CompoundStmt final : public Stmt {
 public:
  CompoundStmt() : Stmt(StmtKind::Compound) {}
  std::vector<Stmt*> body;
};

class IfStmt final : public Stmt {
 public:
  IfStmt() : Stmt(StmtKind::If) {}
  Expr* condition = nullptr;
  Stmt* then_branch = nullptr;
  Stmt* else_branch = nullptr;
};

class WhileStmt final : public Stmt {
 public:
  WhileStmt() : Stmt(StmtKind::While) {}
  Expr* condition = nullptr;
  Stmt* body = nullptr;
};

class DoWhileStmt final : public Stmt {
 public:
  DoWhileStmt() : Stmt(StmtKind::DoWhile) {}
  Stmt* body = nullptr;
  Expr* condition = nullptr;
};

class ForStmt final : public Stmt {
 public:
  ForStmt() : Stmt(StmtKind::For) {}
  Stmt* init = nullptr;
  Expr* condition = nullptr;
  Expr* increment = nullptr;
  Stmt* body = nullptr;
};

class SwitchStmt final : public Stmt {
 public:
  SwitchStmt() : Stmt(StmtKind::Switch) {}
  Expr* condition = nullptr;
  Stmt* body = nullptr;
};

class CaseStmt final : public Stmt {
 public:
  CaseStmt() : Stmt(StmtKind::Case) {}
  Expr* value = nullptr;
  Stmt* body = nullptr;  // statement following the label
};

class DefaultStmt final : public Stmt {
 public:
  DefaultStmt() : Stmt(StmtKind::Default) {}
  Stmt* body = nullptr;
};

class ReturnStmt final : public Stmt {
 public:
  ReturnStmt() : Stmt(StmtKind::Return) {}
  Expr* value = nullptr;
};

class ExprStmt final : public Stmt {
 public:
  ExprStmt() : Stmt(StmtKind::ExprStatement) {}
  Expr* expr = nullptr;
};

class DeclStmt final : public Stmt {
 public:
  DeclStmt() : Stmt(StmtKind::DeclStatement) {}
  std::vector<VarDecl*> vars;
};

class BreakStmt final : public Stmt {
 public:
  BreakStmt() : Stmt(StmtKind::Break) {}
};

class ContinueStmt final : public Stmt {
 public:
  ContinueStmt() : Stmt(StmtKind::Continue) {}
};

class NullStmt final : public Stmt {
 public:
  NullStmt() : Stmt(StmtKind::Null) {}
};

class GotoStmt final : public Stmt {
 public:
  GotoStmt() : Stmt(StmtKind::Goto) {}
  std::string label;
};

class LabelStmt final : public Stmt {
 public:
  LabelStmt() : Stmt(StmtKind::Label) {}
  std::string label;
  Stmt* body = nullptr;
};

class TryStmt final : public Stmt {
 public:
  TryStmt() : Stmt(StmtKind::Try) {}
  struct Handler {
    const Type* exception_type = nullptr;  // null = catch(...)
    VarDecl* var = nullptr;
    Stmt* body = nullptr;
  };
  Stmt* body = nullptr;
  std::vector<Handler> handlers;
};

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

class IntLitExpr final : public Expr {
 public:
  IntLitExpr() : Expr(StmtKind::IntLit) {}
  long long value = 0;
  std::string spelling;
};

class FloatLitExpr final : public Expr {
 public:
  FloatLitExpr() : Expr(StmtKind::FloatLit) {}
  double value = 0.0;
  std::string spelling;
};

class CharLitExpr final : public Expr {
 public:
  CharLitExpr() : Expr(StmtKind::CharLit) {}
  std::string spelling;
};

class StringLitExpr final : public Expr {
 public:
  StringLitExpr() : Expr(StmtKind::StringLit) {}
  std::string spelling;  // with quotes
};

class BoolLitExpr final : public Expr {
 public:
  BoolLitExpr() : Expr(StmtKind::BoolLit) {}
  bool value = false;
};

class ThisExpr final : public Expr {
 public:
  ThisExpr() : Expr(StmtKind::This) {}
};

/// A (possibly qualified) name. Sema resolves `decl` where it can; for
/// overload sets resolution happens at the call site.
class DeclRefExpr final : public Expr {
 public:
  DeclRefExpr() : Expr(StmtKind::DeclRef) {}
  std::string name;            // unqualified name as written
  const Decl* decl = nullptr;  // resolved target (var/function/enumerator)
  std::vector<const Decl*> candidates;  // overload set when ambiguous
  /// Qualifier, when written qualified: a type ("Stack<int>::pop") or a
  /// namespace ("std::cout"). At most one is set.
  const Type* qualifier_type = nullptr;
  const Decl* qualifier_ns = nullptr;
  /// Explicit template arguments: "max<int>(a, b)".
  std::vector<const Type*> explicit_targs;
};

class MemberExpr final : public Expr {
 public:
  MemberExpr() : Expr(StmtKind::Member) {}
  Expr* base = nullptr;
  std::string member;
  bool is_arrow = false;
  const Decl* decl = nullptr;  // resolved member
  std::vector<const Decl*> candidates;
};

class CallExpr final : public Expr {
 public:
  CallExpr() : Expr(StmtKind::Call) {}
  Expr* callee = nullptr;
  std::vector<Expr*> args;
  /// Resolved target; null when the subset cannot resolve the callee.
  const FunctionDecl* resolved = nullptr;
  /// True for calls dispatched through a virtual member function.
  bool is_virtual_call = false;
  SourceLocation call_location;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr() : Expr(StmtKind::Unary) {}
  std::string op;
  bool is_postfix = false;
  Expr* operand = nullptr;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr() : Expr(StmtKind::Binary) {}
  std::string op;
  Expr* lhs = nullptr;
  Expr* rhs = nullptr;
  /// Overloaded operator target when lhs has class type (e.g. operator<<).
  const FunctionDecl* resolved_operator = nullptr;
};

class ConditionalExpr final : public Expr {
 public:
  ConditionalExpr() : Expr(StmtKind::Conditional) {}
  Expr* condition = nullptr;
  Expr* true_value = nullptr;
  Expr* false_value = nullptr;
};

class CastExpr final : public Expr {
 public:
  CastExpr() : Expr(StmtKind::Cast) {}
  std::string cast_kind;  // "c-style", "static_cast", ...
  const Type* target = nullptr;
  Expr* operand = nullptr;
};

class NewExpr final : public Expr {
 public:
  NewExpr() : Expr(StmtKind::New) {}
  const Type* allocated = nullptr;
  std::vector<Expr*> args;
  bool is_array = false;
  const FunctionDecl* ctor = nullptr;  // resolved constructor
};

class DeleteExpr final : public Expr {
 public:
  DeleteExpr() : Expr(StmtKind::Delete) {}
  Expr* operand = nullptr;
  bool is_array = false;
  const FunctionDecl* dtor = nullptr;  // resolved destructor
};

class IndexExpr final : public Expr {
 public:
  IndexExpr() : Expr(StmtKind::Index) {}
  Expr* base = nullptr;
  Expr* index = nullptr;
  const FunctionDecl* resolved_operator = nullptr;  // operator[] on classes
};

/// Construction of a class-type object: `Stack<int>()` or the implicit
/// construction in `Stack<int> s;`.
class ConstructExpr final : public Expr {
 public:
  ConstructExpr() : Expr(StmtKind::Construct) {}
  const Type* constructed = nullptr;
  std::vector<Expr*> args;
  const FunctionDecl* ctor = nullptr;
};

class ThrowExpr final : public Expr {
 public:
  ThrowExpr() : Expr(StmtKind::Throw) {}
  Expr* operand = nullptr;  // null for rethrow
};

class SizeOfExpr final : public Expr {
 public:
  SizeOfExpr() : Expr(StmtKind::SizeOf) {}
  const Type* type_operand = nullptr;
  Expr* expr_operand = nullptr;
};

class CommaExpr final : public Expr {
 public:
  CommaExpr() : Expr(StmtKind::Comma) {}
  Expr* lhs = nullptr;
  Expr* rhs = nullptr;
};

}  // namespace pdt::ast
