#include "ast/type.h"

#include "ast/decl.h"

namespace pdt::ast {

std::string_view toString(BuiltinKind kind) {
  switch (kind) {
    case BuiltinKind::Void: return "void";
    case BuiltinKind::Bool: return "bool";
    case BuiltinKind::Char: return "char";
    case BuiltinKind::SChar: return "signed char";
    case BuiltinKind::UChar: return "unsigned char";
    case BuiltinKind::WChar: return "wchar_t";
    case BuiltinKind::Short: return "short";
    case BuiltinKind::UShort: return "unsigned short";
    case BuiltinKind::Int: return "int";
    case BuiltinKind::UInt: return "unsigned int";
    case BuiltinKind::Long: return "long";
    case BuiltinKind::ULong: return "unsigned long";
    case BuiltinKind::LongLong: return "long long";
    case BuiltinKind::ULongLong: return "unsigned long long";
    case BuiltinKind::Float: return "float";
    case BuiltinKind::Double: return "double";
    case BuiltinKind::LongDouble: return "long double";
  }
  return "?";
}

std::string Type::spelling() const {
  switch (kind()) {
    case TypeKind::Builtin:
      return std::string(toString(as<BuiltinType>()->builtin()));
    case TypeKind::Pointer:
      return as<PointerType>()->pointee()->spelling() + " *";
    case TypeKind::Reference:
      return as<ReferenceType>()->referee()->spelling() + " &";
    case TypeKind::Qualified: {
      const auto* q = as<QualifiedType>();
      std::string s;
      if (q->isConst()) s += "const ";
      if (q->isVolatile()) s += "volatile ";
      return s + q->base()->spelling();
    }
    case TypeKind::Array: {
      const auto* a = as<ArrayType>();
      std::string s = a->element()->spelling() + " [";
      if (a->size() >= 0) s += std::to_string(a->size());
      return s + "]";
    }
    case TypeKind::Function: {
      const auto* f = as<FunctionType>();
      std::string s = f->result()->spelling() + " (";
      for (std::size_t i = 0; i < f->params().size(); ++i) {
        if (i > 0) s += ", ";
        s += f->params()[i]->spelling();
      }
      if (f->hasEllipsis()) s += f->params().empty() ? "..." : ", ...";
      s += ")";
      if (f->isConstMember()) s += " const";
      return s;
    }
    case TypeKind::Class:
      return as<ClassType>()->decl()->name();
    case TypeKind::Enum:
      return as<EnumType>()->decl()->name();
    case TypeKind::Typedef:
      return as<TypedefType>()->decl()->name();
    case TypeKind::TemplateParam:
      return as<TemplateParamType>()->name();
    case TypeKind::TemplateSpecialization: {
      const auto* ts = as<TemplateSpecializationType>();
      std::string s = ts->primary()->name() + "<";
      for (std::size_t i = 0; i < ts->args().size(); ++i) {
        if (i > 0) s += ", ";
        s += ts->args()[i]->spelling();
      }
      if (s.ends_with('>')) s += ' ';
      return s + ">";
    }
  }
  return "?";
}

const Type* canonical(const Type* type) {
  while (type != nullptr) {
    if (const auto* td = type->as<TypedefType>()) {
      type = td->underlying();
    } else if (const auto* q = type->as<QualifiedType>()) {
      type = q->base();
    } else {
      break;
    }
  }
  return type;
}

const Type* strippedForMemberAccess(const Type* type) {
  while (type != nullptr) {
    if (const auto* td = type->as<TypedefType>()) {
      type = td->underlying();
    } else if (const auto* q = type->as<QualifiedType>()) {
      type = q->base();
    } else if (const auto* r = type->as<ReferenceType>()) {
      type = r->referee();
    } else {
      break;
    }
  }
  return type;
}

}  // namespace pdt::ast
