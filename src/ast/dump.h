// Human-readable IL tree dump, for debugging the frontend and for
// tools that want to inspect the IL below the PDB level
// (cxxparse --dump-ast).
#pragma once

#include <iosfwd>

#include "ast/context.h"

namespace pdt::ast {

/// Prints the declaration tree (with member/statement structure) rooted
/// at `decl`. Indentation is two spaces per level.
void dump(const Decl* decl, std::ostream& os, int indent = 0);

/// Prints a statement/expression subtree.
void dump(const Stmt* stmt, std::ostream& os, int indent = 0);

/// Dumps the whole translation unit.
void dump(const AstContext& ctx, std::ostream& os);

}  // namespace pdt::ast
