#include "ast/walk.h"

namespace pdt::ast {

void forEachChild(const Stmt* s, const std::function<void(const Stmt*)>& fn) {
  if (s == nullptr) return;
  const auto visit = [&fn](const Stmt* child) {
    if (child != nullptr) fn(child);
  };
  switch (s->kind()) {
    case StmtKind::Compound:
      for (const Stmt* c : s->as<CompoundStmt>()->body) visit(c);
      break;
    case StmtKind::If: {
      const auto* n = s->as<IfStmt>();
      visit(n->condition);
      visit(n->then_branch);
      visit(n->else_branch);
      break;
    }
    case StmtKind::While: {
      const auto* n = s->as<WhileStmt>();
      visit(n->condition);
      visit(n->body);
      break;
    }
    case StmtKind::DoWhile: {
      const auto* n = s->as<DoWhileStmt>();
      visit(n->body);
      visit(n->condition);
      break;
    }
    case StmtKind::For: {
      const auto* n = s->as<ForStmt>();
      visit(n->init);
      visit(n->condition);
      visit(n->increment);
      visit(n->body);
      break;
    }
    case StmtKind::Switch: {
      const auto* n = s->as<SwitchStmt>();
      visit(n->condition);
      visit(n->body);
      break;
    }
    case StmtKind::Case: {
      const auto* n = s->as<CaseStmt>();
      visit(n->value);
      visit(n->body);
      break;
    }
    case StmtKind::Default:
      visit(s->as<DefaultStmt>()->body);
      break;
    case StmtKind::Return:
      visit(s->as<ReturnStmt>()->value);
      break;
    case StmtKind::ExprStatement:
      visit(s->as<ExprStmt>()->expr);
      break;
    case StmtKind::DeclStatement:
      for (const VarDecl* v : s->as<DeclStmt>()->vars) {
        if (v->init != nullptr) visit(v->init);
        for (const Expr* a : v->ctor_args) visit(a);
      }
      break;
    case StmtKind::Label:
      visit(s->as<LabelStmt>()->body);
      break;
    case StmtKind::Try: {
      const auto* n = s->as<TryStmt>();
      visit(n->body);
      for (const auto& h : n->handlers) visit(h.body);
      break;
    }
    case StmtKind::Member:
      visit(s->as<MemberExpr>()->base);
      break;
    case StmtKind::Call: {
      const auto* n = s->as<CallExpr>();
      visit(n->callee);
      for (const Expr* a : n->args) visit(a);
      break;
    }
    case StmtKind::Unary:
      visit(s->as<UnaryExpr>()->operand);
      break;
    case StmtKind::Binary: {
      const auto* n = s->as<BinaryExpr>();
      visit(n->lhs);
      visit(n->rhs);
      break;
    }
    case StmtKind::Conditional: {
      const auto* n = s->as<ConditionalExpr>();
      visit(n->condition);
      visit(n->true_value);
      visit(n->false_value);
      break;
    }
    case StmtKind::Cast:
      visit(s->as<CastExpr>()->operand);
      break;
    case StmtKind::New:
      for (const Expr* a : s->as<NewExpr>()->args) visit(a);
      break;
    case StmtKind::Delete:
      visit(s->as<DeleteExpr>()->operand);
      break;
    case StmtKind::Index: {
      const auto* n = s->as<IndexExpr>();
      visit(n->base);
      visit(n->index);
      break;
    }
    case StmtKind::Construct:
      for (const Expr* a : s->as<ConstructExpr>()->args) visit(a);
      break;
    case StmtKind::Throw:
      visit(s->as<ThrowExpr>()->operand);
      break;
    case StmtKind::SizeOf:
      visit(s->as<SizeOfExpr>()->expr_operand);
      break;
    case StmtKind::Comma: {
      const auto* n = s->as<CommaExpr>();
      visit(n->lhs);
      visit(n->rhs);
      break;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Null:
    case StmtKind::Goto:
    case StmtKind::IntLit:
    case StmtKind::FloatLit:
    case StmtKind::CharLit:
    case StmtKind::StringLit:
    case StmtKind::BoolLit:
    case StmtKind::This:
    case StmtKind::DeclRef:
      break;  // leaves
  }
}

void walk(const Stmt* s, const std::function<void(const Stmt*)>& fn) {
  if (s == nullptr) return;
  fn(s);
  forEachChild(s, [&fn](const Stmt* child) { walk(child, fn); });
}

void walkDecls(const Decl* d, const std::function<void(const Decl*)>& fn) {
  if (d == nullptr) return;
  fn(d);
  const DeclContext* ctx = nullptr;
  switch (d->kind()) {
    case DeclKind::TranslationUnit:
      ctx = d->as<TranslationUnitDecl>();
      break;
    case DeclKind::Namespace:
      ctx = d->as<NamespaceDecl>();
      break;
    case DeclKind::Class:
      ctx = d->as<ClassDecl>();
      break;
    default:
      break;
  }
  if (ctx != nullptr) {
    for (const Decl* child : ctx->children()) walkDecls(child, fn);
  }
  if (const auto* td = d->as<TemplateDecl>(); td != nullptr && td->pattern != nullptr) {
    walkDecls(td->pattern, fn);
  }
}

}  // namespace pdt::ast
