#include "ast/decl.h"

#include <algorithm>

namespace pdt::ast {

std::string_view toString(AccessKind a) {
  switch (a) {
    case AccessKind::None: return "NA";
    case AccessKind::Public: return "pub";
    case AccessKind::Protected: return "prot";
    case AccessKind::Private: return "priv";
  }
  return "NA";
}

std::string_view toString(TagKind t) {
  switch (t) {
    case TagKind::Class: return "class";
    case TagKind::Struct: return "struct";
    case TagKind::Union: return "union";
  }
  return "class";
}

std::string_view toString(TemplateKind k) {
  switch (k) {
    case TemplateKind::Class: return "class";
    case TemplateKind::Function: return "func";
    case TemplateKind::MemberFunc: return "memfunc";
    case TemplateKind::StaticMem: return "statmem";
    case TemplateKind::Alias: return "alias";
  }
  return "class";
}

std::vector<Decl*> DeclContext::lookup(std::string_view name) const {
  std::vector<Decl*> out;
  for (Decl* d : children()) {
    if (d->name() == name) out.push_back(d);
  }
  return out;
}

std::string Decl::qualifiedName() const {
  std::string qual;
  for (const DeclContext* ctx = parent(); ctx != nullptr;) {
    const Decl* d = ctx->asDecl();
    if (d->kind() == DeclKind::TranslationUnit) break;
    qual = d->name() + "::" + qual;
    ctx = d->parent();
  }
  return qual + name();
}

const ClassDecl* FunctionDecl::memberOf() const {
  if (parent() == nullptr) return nullptr;
  return parent()->asDecl()->as<ClassDecl>();
}

namespace {

bool sameArgs(const std::vector<const Type*>& a, const std::vector<const Type*>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace

Decl* TemplateDecl::findInstantiation(const std::vector<const Type*>& args) const {
  for (const Instantiation& inst : instantiations) {
    if (sameArgs(inst.args, args)) return inst.decl;
  }
  return nullptr;
}

Decl* TemplateDecl::findSpecialization(const std::vector<const Type*>& args) const {
  for (const Specialization& spec : specializations) {
    if (sameArgs(spec.args, args)) return spec.decl;
  }
  return nullptr;
}

}  // namespace pdt::ast
