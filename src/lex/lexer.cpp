#include "lex/lexer.h"

#include <array>
#include <cstdint>
#include <string>

#include "support/interner.h"

namespace pdt::lex {
namespace {

// ---------------------------------------------------------------------------
// Character classification (one 256-byte table, no locale, no calls)
// ---------------------------------------------------------------------------

constexpr std::uint8_t kWs = 1;          // whitespace (not newline)
constexpr std::uint8_t kIdentStart = 2;  // [A-Za-z_]
constexpr std::uint8_t kIdentCont = 4;   // [A-Za-z0-9_]
constexpr std::uint8_t kDigit = 8;       // [0-9]

constexpr std::array<std::uint8_t, 256> kCharClass = [] {
  std::array<std::uint8_t, 256> t{};
  t[' '] = t['\t'] = t['\r'] = t['\v'] = t['\f'] = kWs;
  for (int c = 'a'; c <= 'z'; ++c) t[c] = kIdentStart | kIdentCont;
  for (int c = 'A'; c <= 'Z'; ++c) t[c] = kIdentStart | kIdentCont;
  t['_'] = kIdentStart | kIdentCont;
  for (int c = '0'; c <= '9'; ++c) t[c] = kDigit | kIdentCont;
  return t;
}();

constexpr std::uint8_t classOf(char c) {
  return kCharClass[static_cast<unsigned char>(c)];
}

constexpr bool isDigitChar(char c) { return (classOf(c) & kDigit) != 0; }
constexpr bool isIdentStartChar(char c) {
  return (classOf(c) & kIdentStart) != 0;
}
constexpr bool isHexDigitChar(char c) {
  return isDigitChar(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}
constexpr bool isAlphaChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

// ---------------------------------------------------------------------------
// Keyword table: sorted spellings bucketed by first letter. Lookup is a
// table index plus a handful of length-gated string_view compares — no
// hashing, no node chasing (replaces the old unordered_set).
// ---------------------------------------------------------------------------

constexpr std::array<std::string_view, 56> kKeywords = {
    "bool",      "break",    "case",     "catch",    "char",     "class",
    "const",     "continue", "default",  "delete",   "do",       "double",
    "else",      "enum",     "explicit", "extern",   "false",    "float",
    "for",       "friend",   "goto",     "if",       "inline",   "int",
    "long",      "mutable",  "namespace", "new",     "operator", "private",
    "protected", "public",   "register", "return",   "short",    "signed",
    "sizeof",    "static",   "struct",   "switch",   "template", "this",
    "throw",     "true",     "try",      "typedef",  "typeid",   "typename",
    "union",     "unsigned", "using",    "virtual",  "void",     "volatile",
    "wchar_t",   "while"};

struct KwRange {
  std::uint8_t begin = 0;
  std::uint8_t end = 0;  // exclusive
};

constexpr std::array<KwRange, 26> kKwIndex = [] {
  std::array<KwRange, 26> idx{};
  for (std::size_t i = 0; i < kKeywords.size(); ++i) {
    const std::size_t letter = static_cast<std::size_t>(kKeywords[i][0] - 'a');
    if (idx[letter].end == 0) idx[letter].begin = static_cast<std::uint8_t>(i);
    idx[letter].end = static_cast<std::uint8_t>(i + 1);
  }
  return idx;
}();

}  // namespace

std::string_view toString(TokenKind kind) {
  switch (kind) {
    case TokenKind::End: return "end-of-file";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Keyword: return "keyword";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::FloatLiteral: return "float literal";
    case TokenKind::CharLiteral: return "character literal";
    case TokenKind::StringLiteral: return "string literal";
    case TokenKind::Punct: return "punctuation";
    case TokenKind::HeaderName: return "header name";
  }
  return "unknown";
}

bool isKeywordSpelling(std::string_view spelling) {
  if (spelling.empty()) return false;
  const char c = spelling.front();
  if (c < 'a' || c > 'z') return false;
  const KwRange r = kKwIndex[static_cast<std::size_t>(c - 'a')];
  for (std::uint8_t i = r.begin; i < r.end; ++i) {
    if (kKeywords[i] == spelling) return true;
  }
  return false;
}

RawLexer::RawLexer(FileId file, std::string_view content, DiagnosticEngine& diags,
                   TokenArena* arena)
    : file_(file), content_(content), diags_(diags), arena_(arena) {}

std::string_view RawLexer::synthesize(std::string_view text) {
  return arena_ != nullptr ? arena_->intern(text) : internString(text);
}

char RawLexer::peek(std::size_t ahead) const {
  if (ahead == 0 && pos_ < content_.size()) {
    const char c = content_[pos_];
    if (c != '\\') return c;  // fast path: no splice possible here
  }
  // Line splices (backslash-newline) are invisible to lookahead: do a
  // cheap local skip.
  std::size_t p = pos_;
  for (std::size_t n = 0;; ++n) {
    while (p + 1 < content_.size() && content_[p] == '\\' &&
           (content_[p + 1] == '\n' ||
            (content_[p + 1] == '\r' && p + 2 < content_.size() &&
             content_[p + 2] == '\n'))) {
      p += content_[p + 1] == '\r' ? 3 : 2;
    }
    if (n == ahead) break;
    if (p >= content_.size()) return '\0';
    ++p;
  }
  return p < content_.size() ? content_[p] : '\0';
}

void RawLexer::advance() {
  if (pos_ >= content_.size()) return;
  const char c = content_[pos_];
  if (c != '\\' && c != '\n') {  // fast path: plain character
    ++column_;
    ++pos_;
    return;
  }
  // Consume splices so that logical characters flow continuously.
  while (pos_ + 1 < content_.size() && content_[pos_] == '\\' &&
         (content_[pos_ + 1] == '\n' ||
          (content_[pos_ + 1] == '\r' && pos_ + 2 < content_.size() &&
           content_[pos_ + 2] == '\n'))) {
    pos_ += content_[pos_ + 1] == '\r' ? 3 : 2;
    ++line_;
    column_ = 1;
  }
  if (pos_ >= content_.size()) return;
  if (content_[pos_] == '\n') {
    ++line_;
    column_ = 1;
    at_line_start_ = true;
  } else {
    ++column_;
  }
  ++pos_;
}

SourceLocation RawLexer::currentLocation() const { return {file_, line_, column_}; }

bool RawLexer::skipWhitespaceAndComments() {
  bool skipped = false;
  const std::size_t n = content_.size();
  while (pos_ < n) {
    const char c = content_[pos_];
    if (classOf(c) & kWs) {  // run of plain whitespace, no bookkeeping
      ++column_;
      ++pos_;
      skipped = true;
      continue;
    }
    if (c == '\n') {
      ++line_;
      column_ = 1;
      at_line_start_ = true;
      ++pos_;
      skipped = true;
      continue;
    }
    if (c == '/' || c == '\\') {  // comment or splice: splice-aware path
      const char p0 = peek();
      if (p0 != '/' && c == '\\') {
        // A splice followed by whitespace is whitespace; anything else
        // starts a token at the backslash.
        if ((classOf(p0) & kWs) || p0 == '\n') {
          advance();
          skipped = true;
          continue;
        }
        break;
      }
      if (p0 == '/' && peek(1) == '/') {
        while (pos_ < n && peek() != '\n') advance();
        skipped = true;
        continue;
      }
      if (p0 == '/' && peek(1) == '*') {
        const SourceLocation begin = currentLocation();
        advance();
        advance();
        while (pos_ < n && !(peek() == '*' && peek(1) == '/')) advance();
        if (pos_ >= n) {
          diags_.error(begin, "unterminated /* comment");
        } else {
          advance();
          advance();
        }
        skipped = true;
        continue;
      }
      break;
    }
    break;
  }
  return skipped;
}

void RawLexer::skipToEndOfLine() {
  // Respects splices: a directive continued with '\' spans lines.
  while (pos_ < content_.size() && content_[pos_] != '\n') {
    if (content_[pos_] == '\\' && pos_ + 1 < content_.size() &&
        (content_[pos_ + 1] == '\n' || content_[pos_ + 1] == '\r')) {
      advance();  // consumes the splice
      continue;
    }
    advance();
  }
}

Token RawLexer::makeToken(TokenKind kind, std::size_t begin_pos,
                          SourceLocation begin_loc) {
  Token t;
  t.kind = kind;
  const std::string_view raw = content_.substr(begin_pos, pos_ - begin_pos);
  t.text = raw;
  // Remove any splices embedded in the raw spelling (rare); the cleaned
  // text needs stable backing of its own.
  if (raw.find('\\') != std::string_view::npos) {
    bool has_splice = false;
    for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
      if (raw[i] == '\\' && (raw[i + 1] == '\n' || raw[i + 1] == '\r')) {
        has_splice = true;
        break;
      }
    }
    if (has_splice) {
      std::string clean;
      clean.reserve(raw.size());
      for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] == '\\' && i + 1 < raw.size() &&
            (raw[i + 1] == '\n' || raw[i + 1] == '\r')) {
          while (i + 1 < raw.size() && raw[i + 1] != '\n') ++i;
          ++i;
          continue;
        }
        clean.push_back(raw[i]);
      }
      t.text = synthesize(clean);
    }
  }
  t.location = begin_loc;
  return t;
}

Token RawLexer::next() {
  const bool had_space = skipWhitespaceAndComments();
  const bool starts_line = at_line_start_;
  at_line_start_ = false;

  if (pos_ >= content_.size()) {
    Token t;
    t.kind = TokenKind::End;
    t.location = currentLocation();
    t.start_of_line = starts_line;
    return t;
  }

  const SourceLocation begin = currentLocation();
  const std::size_t begin_pos = pos_;
  const char c = peek();

  Token t;
  if ((header_name_mode_ || include_state_ == 2) && c == '<') {
    advance();
    while (pos_ < content_.size() && peek() != '>' && peek() != '\n') advance();
    if (peek() == '>') advance();
    t = makeToken(TokenKind::HeaderName, begin_pos, begin);
  } else if (isDigitChar(c) || (c == '.' && isDigitChar(peek(1)))) {
    t = lexNumber(begin);
  } else if (isIdentStartChar(c)) {
    t = lexIdentifier(begin);
  } else if (c == '"' || c == '\'') {
    t = lexCharOrString(c, begin);
  } else {
    t = lexPunct(begin);
  }
  t.start_of_line = starts_line;
  t.leading_space = had_space;

  // Track "line-start # include" so the *next* token lexes as a
  // HeaderName when it starts with '<'. This keeps raw token streams
  // self-contained: batch and incremental lexing agree on #include lines
  // without the preprocessor toggling modes.
  if (t.kind == TokenKind::Punct && t.start_of_line && t.text == "#") {
    include_state_ = 1;
  } else if (include_state_ == 1 && t.kind == TokenKind::Identifier &&
             t.text == "include") {
    include_state_ = 2;
  } else {
    include_state_ = 0;
  }
  return t;
}

void RawLexer::lexAll(std::vector<Token>& out) {
  // Pre-reserve from the content size: PDT-C++ averages ~5-6 characters
  // per token, so one reservation covers virtually every file.
  out.reserve(out.size() + content_.size() / 5 + 8);
  for (Token t = next(); !t.isEnd(); t = next()) out.push_back(t);
}

Token RawLexer::lexNumber(SourceLocation begin) {
  const std::size_t begin_pos = pos_;
  bool is_float = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (isHexDigitChar(peek())) advance();
  } else {
    while (isDigitChar(peek())) advance();
    if (peek() == '.' && peek(1) != '.') {  // not the '...' punctuator
      is_float = true;
      advance();
      while (isDigitChar(peek())) advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      if (isDigitChar(peek(1)) ||
          ((peek(1) == '+' || peek(1) == '-') && isDigitChar(peek(2)))) {
        is_float = true;
        advance();
        if (peek() == '+' || peek() == '-') advance();
        while (isDigitChar(peek())) advance();
      }
    }
  }
  while (isAlphaChar(peek())) advance();  // suffixes
  return makeToken(is_float ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
                   begin_pos, begin);
}

Token RawLexer::lexIdentifier(SourceLocation begin) {
  const std::size_t begin_pos = pos_;
  const std::size_t n = content_.size();
  while (true) {
    // Scan the run of plain identifier characters directly; splices (the
    // only way a non-identifier byte continues an identifier) drop to the
    // splice-aware path below.
    std::size_t p = pos_;
    while (p < n && (classOf(content_[p]) & kIdentCont)) ++p;
    column_ += static_cast<std::uint32_t>(p - pos_);
    pos_ = p;
    if (p < n && content_[p] == '\\' && (classOf(peek()) & kIdentCont)) {
      advance();  // consumes the splice plus one identifier character
      continue;
    }
    break;
  }
  Token t = makeToken(TokenKind::Identifier, begin_pos, begin);
  if (isKeywordSpelling(t.text)) t.kind = TokenKind::Keyword;
  return t;
}

Token RawLexer::lexCharOrString(char quote, SourceLocation begin) {
  const std::size_t begin_pos = pos_;
  advance();  // opening quote
  while (pos_ < content_.size() && peek() != quote && peek() != '\n') {
    if (peek() == '\\' && peek(1) != '\0') advance();  // escape
    advance();
  }
  if (peek() == quote) {
    advance();
  } else {
    diags_.error(begin, quote == '"' ? "unterminated string literal"
                                     : "unterminated character literal");
  }
  return makeToken(quote == '"' ? TokenKind::StringLiteral : TokenKind::CharLiteral,
                   begin_pos, begin);
}

Token RawLexer::lexPunct(SourceLocation begin) {
  const std::size_t begin_pos = pos_;
  // Maximal munch via one switch on the first character (replaces the
  // old linear scans over punctuator tables). peek() is splice-aware, so
  // multi-character punctuators split by '\'-newline still join.
  const char c = peek();
  const char c1 = peek(1);
  int len = 1;
  switch (c) {
    case '<':
      len = c1 == '<' ? (peek(2) == '=' ? 3 : 2) : (c1 == '=' ? 2 : 1);
      break;
    case '>':
      len = c1 == '>' ? (peek(2) == '=' ? 3 : 2) : (c1 == '=' ? 2 : 1);
      break;
    case '-':
      len = c1 == '>' ? (peek(2) == '*' ? 3 : 2)
                      : ((c1 == '-' || c1 == '=') ? 2 : 1);
      break;
    case '.':
      len = (c1 == '.' && peek(2) == '.') ? 3 : (c1 == '*' ? 2 : 1);
      break;
    case ':': len = c1 == ':' ? 2 : 1; break;
    case '#': len = c1 == '#' ? 2 : 1; break;
    case '+': len = (c1 == '+' || c1 == '=') ? 2 : 1; break;
    case '&': len = (c1 == '&' || c1 == '=') ? 2 : 1; break;
    case '|': len = (c1 == '|' || c1 == '=') ? 2 : 1; break;
    case '=':
    case '!':
    case '*':
    case '/':
    case '%':
    case '^':
      len = c1 == '=' ? 2 : 1;
      break;
    default: break;
  }
  for (int i = 0; i < len; ++i) advance();
  return makeToken(TokenKind::Punct, begin_pos, begin);
}

}  // namespace pdt::lex
