#include "lex/lexer.h"

#include <array>
#include <cctype>
#include <unordered_set>

namespace pdt::lex {
namespace {

const std::unordered_set<std::string_view>& keywordTable() {
  static const std::unordered_set<std::string_view> table = {
      "bool", "break", "case", "catch", "char", "class", "const",
      "continue", "default", "delete", "do", "double", "else", "enum",
      "explicit", "extern", "false", "float", "for", "friend", "goto",
      "if", "inline", "int", "long", "mutable", "namespace", "new",
      "operator", "private", "protected", "public", "register", "return",
      "short", "signed", "sizeof", "static", "struct", "switch",
      "template", "this", "throw", "true", "try", "typedef", "typeid",
      "typename", "union", "unsigned", "using", "virtual", "void",
      "volatile", "wchar_t", "while"};
  return table;
}

// Multi-character punctuators, longest first so maximal munch works.
constexpr std::array<std::string_view, 21> kLongPuncts = {
    "<<=", ">>=", "->*", "...", "::", "->", ".*", "##", "++", "--",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*="};
constexpr std::array<std::string_view, 4> kLongPuncts2 = {"/=", "%=", "^=",
                                                          "&="};
constexpr std::array<std::string_view, 1> kLongPuncts3 = {"|="};

}  // namespace

std::string_view toString(TokenKind kind) {
  switch (kind) {
    case TokenKind::End: return "end-of-file";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Keyword: return "keyword";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::FloatLiteral: return "float literal";
    case TokenKind::CharLiteral: return "character literal";
    case TokenKind::StringLiteral: return "string literal";
    case TokenKind::Punct: return "punctuation";
    case TokenKind::HeaderName: return "header name";
  }
  return "unknown";
}

bool isKeywordSpelling(std::string_view spelling) {
  return keywordTable().contains(spelling);
}

RawLexer::RawLexer(FileId file, std::string_view content, DiagnosticEngine& diags)
    : file_(file), content_(content), diags_(diags) {}

char RawLexer::peek(std::size_t ahead) const {
  // Line splices (backslash-newline) are invisible to peek(0)/peek(1) only
  // through advance(); for lookahead we do a cheap local skip.
  std::size_t p = pos_;
  for (std::size_t n = 0;; ++n) {
    while (p + 1 < content_.size() && content_[p] == '\\' &&
           (content_[p + 1] == '\n' ||
            (content_[p + 1] == '\r' && p + 2 < content_.size() &&
             content_[p + 2] == '\n'))) {
      p += content_[p + 1] == '\r' ? 3 : 2;
    }
    if (n == ahead) break;
    if (p >= content_.size()) return '\0';
    ++p;
  }
  return p < content_.size() ? content_[p] : '\0';
}

void RawLexer::advance() {
  // Consume splices so that logical characters flow continuously.
  while (pos_ + 1 < content_.size() && content_[pos_] == '\\' &&
         (content_[pos_ + 1] == '\n' ||
          (content_[pos_ + 1] == '\r' && pos_ + 2 < content_.size() &&
           content_[pos_ + 2] == '\n'))) {
    pos_ += content_[pos_ + 1] == '\r' ? 3 : 2;
    ++line_;
    column_ = 1;
  }
  if (pos_ >= content_.size()) return;
  if (content_[pos_] == '\n') {
    ++line_;
    column_ = 1;
    at_line_start_ = true;
  } else {
    ++column_;
  }
  ++pos_;
}

SourceLocation RawLexer::currentLocation() const { return {file_, line_, column_}; }

bool RawLexer::skipWhitespaceAndComments() {
  bool skipped = false;
  while (pos_ < content_.size()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f') {
      advance();
      skipped = true;
    } else if (c == '/' && peek(1) == '/') {
      while (pos_ < content_.size() && peek() != '\n') advance();
      skipped = true;
    } else if (c == '/' && peek(1) == '*') {
      const SourceLocation begin = currentLocation();
      advance();
      advance();
      while (pos_ < content_.size() && !(peek() == '*' && peek(1) == '/')) advance();
      if (pos_ >= content_.size()) {
        diags_.error(begin, "unterminated /* comment");
      } else {
        advance();
        advance();
      }
      skipped = true;
    } else {
      break;
    }
  }
  return skipped;
}

void RawLexer::skipToEndOfLine() {
  // Respects splices: a directive continued with '\' spans lines.
  while (pos_ < content_.size() && content_[pos_] != '\n') {
    if (content_[pos_] == '\\' && pos_ + 1 < content_.size() &&
        (content_[pos_ + 1] == '\n' || content_[pos_ + 1] == '\r')) {
      advance();  // consumes the splice
      continue;
    }
    advance();
  }
}

Token RawLexer::makeToken(TokenKind kind, std::size_t begin_pos,
                          SourceLocation begin_loc) {
  Token t;
  t.kind = kind;
  t.text.assign(content_.substr(begin_pos, pos_ - begin_pos));
  // Remove any splices embedded in the raw spelling.
  if (t.text.find('\\') != std::string::npos) {
    std::string clean;
    clean.reserve(t.text.size());
    for (std::size_t i = 0; i < t.text.size(); ++i) {
      if (t.text[i] == '\\' && i + 1 < t.text.size() &&
          (t.text[i + 1] == '\n' || t.text[i + 1] == '\r')) {
        while (i + 1 < t.text.size() && t.text[i + 1] != '\n') ++i;
        ++i;
        continue;
      }
      clean.push_back(t.text[i]);
    }
    t.text = std::move(clean);
  }
  t.location = begin_loc;
  return t;
}

Token RawLexer::next() {
  const bool had_space = skipWhitespaceAndComments();
  const bool starts_line = at_line_start_;
  at_line_start_ = false;

  if (pos_ >= content_.size()) {
    Token t;
    t.kind = TokenKind::End;
    t.location = currentLocation();
    t.start_of_line = starts_line;
    return t;
  }

  const SourceLocation begin = currentLocation();
  const std::size_t begin_pos = pos_;
  const char c = peek();

  Token t;
  if (header_name_mode_ && c == '<') {
    advance();
    while (pos_ < content_.size() && peek() != '>' && peek() != '\n') advance();
    if (peek() == '>') advance();
    t = makeToken(TokenKind::HeaderName, begin_pos, begin);
  } else if (std::isdigit(static_cast<unsigned char>(c)) ||
             (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
    t = lexNumber(begin);
  } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    t = lexIdentifier(begin);
  } else if (c == '"' || c == '\'') {
    t = lexCharOrString(c, begin);
  } else {
    t = lexPunct(begin);
  }
  t.start_of_line = starts_line;
  t.leading_space = had_space;
  return t;
}

Token RawLexer::lexNumber(SourceLocation begin) {
  const std::size_t begin_pos = pos_;
  bool is_float = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek()))) advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    if (peek() == '.' && peek(1) != '.') {  // not the '...' punctuator
      is_float = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      if (std::isdigit(static_cast<unsigned char>(peek(1))) ||
          ((peek(1) == '+' || peek(1) == '-') &&
           std::isdigit(static_cast<unsigned char>(peek(2))))) {
        is_float = true;
        advance();
        if (peek() == '+' || peek() == '-') advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      }
    }
  }
  while (std::isalpha(static_cast<unsigned char>(peek()))) advance();  // suffixes
  return makeToken(is_float ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
                   begin_pos, begin);
}

Token RawLexer::lexIdentifier(SourceLocation begin) {
  const std::size_t begin_pos = pos_;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') advance();
  Token t = makeToken(TokenKind::Identifier, begin_pos, begin);
  if (isKeywordSpelling(t.text)) t.kind = TokenKind::Keyword;
  return t;
}

Token RawLexer::lexCharOrString(char quote, SourceLocation begin) {
  const std::size_t begin_pos = pos_;
  advance();  // opening quote
  while (pos_ < content_.size() && peek() != quote && peek() != '\n') {
    if (peek() == '\\' && peek(1) != '\0') advance();  // escape
    advance();
  }
  if (peek() == quote) {
    advance();
  } else {
    diags_.error(begin, quote == '"' ? "unterminated string literal"
                                     : "unterminated character literal");
  }
  return makeToken(quote == '"' ? TokenKind::StringLiteral : TokenKind::CharLiteral,
                   begin_pos, begin);
}

Token RawLexer::lexPunct(SourceLocation begin) {
  const std::size_t begin_pos = pos_;
  const auto tryMatch = [&](std::string_view p) {
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (peek(i) != p[i]) return false;
    }
    for (std::size_t i = 0; i < p.size(); ++i) advance();
    return true;
  };
  bool matched = false;
  for (const auto p : kLongPuncts) {
    if ((matched = tryMatch(p))) break;
  }
  if (!matched) {
    for (const auto p : kLongPuncts2) {
      if ((matched = tryMatch(p))) break;
    }
  }
  if (!matched) {
    for (const auto p : kLongPuncts3) {
      if ((matched = tryMatch(p))) break;
    }
  }
  if (!matched) advance();  // single character
  return makeToken(TokenKind::Punct, begin_pos, begin);
}

}  // namespace pdt::lex
