// Preprocessor for PDT-C++.
//
// Sits between the RawLexer and the parser: executes #include/#define/
// conditional directives, expands macros, and — because PDT reports
// preprocessor-level entities in the program database — records every
// macro definition (PDB "ma" items) and every include edge (the "sinc"
// attribute and the include tree of paper Figure 2 / pdbtree).
//
// Each file is batch-lexed into a token buffer on entry (RawLexer::lexAll);
// the preprocessor then walks indices instead of pulling tokens one at a
// time. Token text is string_view (lex/token.h): spellings the
// preprocessor synthesizes — pasted/stringized text, __LINE__/__FILE__,
// predefines — are backed by the TokenArena, which must outlive every
// token this preprocessor hands out (it does, for the owning-arena case,
// as long as the Preprocessor itself is alive).
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lex/lexer.h"
#include "lex/token.h"
#include "support/diagnostics.h"
#include "support/small_vector.h"
#include "support/source_manager.h"
#include "support/token_arena.h"

namespace pdt::lex {

/// A recorded #define/#undef, kept for the PDB MACROS section. Owns its
/// strings: records outlive the token streams they were built from.
struct MacroRecord {
  enum class Kind { Define, Undefine };
  Kind kind = Kind::Define;
  std::string name;
  std::string text;  // full definition text, e.g. "#define MAX(a,b) ..."
  SourceLocation location;
  bool function_like = false;
};

/// One #include edge, includer -> includee.
struct IncludeEdge {
  FileId includer;
  FileId includee;
  SourceLocation location;
};

class Preprocessor {
 public:
  /// When `arena` is null the preprocessor owns its own TokenArena (the
  /// normal per-TU setup). Passing an external arena lets callers keep
  /// synthesized spellings alive beyond the preprocessor (tests, tools).
  Preprocessor(SourceManager& sm, DiagnosticEngine& diags,
               TokenArena* arena = nullptr);
  ~Preprocessor();

  Preprocessor(const Preprocessor&) = delete;
  Preprocessor& operator=(const Preprocessor&) = delete;

  /// Begins preprocessing `main_file`; must be called exactly once.
  void enterMainFile(FileId main_file);

  /// Defines an object-like macro before processing starts (-D option).
  void predefineMacro(const std::string& name, const std::string& value);

  /// Next fully preprocessed token (macro-expanded, directives executed).
  Token next();

  [[nodiscard]] const std::vector<MacroRecord>& macroRecords() const {
    return macro_records_;
  }
  [[nodiscard]] const std::vector<IncludeEdge>& includeEdges() const {
    return include_edges_;
  }
  /// Files in the order they were first entered (main file first).
  [[nodiscard]] const std::vector<FileId>& filesSeen() const { return files_seen_; }

  /// Arena backing synthesized spellings (for the lex.arena_bytes counter).
  [[nodiscard]] const TokenArena& arena() const { return *arena_; }

 private:
  /// Identifiers suppressed from expansion (the "blue paint" set during
  /// rescans). Keys view Macro::name, which is stably backed by file
  /// content or the arena — stable even if the macro is #undef'd
  /// mid-expansion, since arena/file bytes are never freed within the TU.
  using ActiveSet = std::unordered_set<std::string_view>;

  /// One directive line; inline storage covers nearly all real lines.
  using TokenLine = SmallVector<Token, 16>;

  struct Macro {
    std::string_view name;  // stably backed (file content or arena)
    bool function_like = false;
    std::vector<std::string_view> params;
    std::vector<Token> body;
    SourceLocation location;
  };

  struct FileState {
    FileId file;
    std::vector<Token> tokens;  // whole file, batch-lexed on entry
    std::size_t idx = 0;
    SourceLocation end_loc;     // location at EOF, for diagnostics
    int cond_depth_at_entry = 0;
  };

  // -- raw token plumbing ----------------------------------------------
  void pushFile(FileId file);  // batch-lex `file` and enter it
  Token rawNext();             // next raw token from the file stack
  void popFile();

  // -- directives -------------------------------------------------------
  void handleDirective(const Token& hash);
  TokenLine readDirectiveLine();  // tokens to end of logical line
  void handleInclude(const TokenLine& line, SourceLocation loc);
  void handleDefine(const TokenLine& line, SourceLocation loc);
  void handleUndef(const TokenLine& line, SourceLocation loc);
  void handleConditional(std::string_view kind, const TokenLine& line,
                         SourceLocation loc);
  void skipToElseOrEndif(bool allow_else);
  [[nodiscard]] bool evaluateCondition(const TokenLine& line,
                                       SourceLocation loc);

  // -- macro expansion ---------------------------------------------------
  /// True if `tok` names a macro eligible for expansion given the active set.
  bool shouldExpand(const Token& tok, const ActiveSet& active) const;
  /// Expands one macro use (args empty for object-like macros). Returns
  /// the fully expanded tokens.
  std::vector<Token> expandMacroUse(const Macro& macro, const Token& name_tok,
                                    const std::vector<std::vector<Token>>& args,
                                    const ActiveSet& active);
  std::vector<Token> expandTokenList(const Token* tokens, std::size_t count,
                                     const ActiveSet& active);
  /// Collects ( arg, arg, ... ) for a function-like macro from the raw
  /// stream; returns nullopt if no '(' follows (name is then not a use).
  std::optional<std::vector<std::vector<Token>>> collectArgsFromStream();
  static std::optional<std::vector<std::vector<Token>>> collectArgsFromList(
      const Token* tokens, std::size_t count, std::size_t& index);

  SourceManager& sm_;
  DiagnosticEngine& diags_;
  TokenArena owned_arena_;
  TokenArena* arena_;  // == &owned_arena_ unless an external one was given

  std::vector<FileState> file_stack_;
  std::deque<Token> pending_;  // expansion output awaiting delivery

  std::unordered_map<std::string_view, Macro> macros_;
  std::vector<MacroRecord> macro_records_;
  std::vector<IncludeEdge> include_edges_;
  std::vector<FileId> files_seen_;
  std::unordered_set<FileId> pragma_once_files_;
  std::unordered_set<FileId> entered_files_;  // cycle guard

  // Conditional-inclusion state: one entry per active #if nesting level.
  struct CondState {
    bool taken;          // some branch of this #if chain was taken
    bool active;         // current branch is being processed
    bool seen_else;
  };
  std::vector<CondState> cond_stack_;
};

}  // namespace pdt::lex
