// Preprocessor for PDT-C++.
//
// Sits between the RawLexer and the parser: executes #include/#define/
// conditional directives, expands macros, and — because PDT reports
// preprocessor-level entities in the program database — records every
// macro definition (PDB "ma" items) and every include edge (the "sinc"
// attribute and the include tree of paper Figure 2 / pdbtree).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lex/lexer.h"
#include "lex/token.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace pdt::lex {

/// A recorded #define/#undef, kept for the PDB MACROS section.
struct MacroRecord {
  enum class Kind { Define, Undefine };
  Kind kind = Kind::Define;
  std::string name;
  std::string text;  // full definition text, e.g. "#define MAX(a,b) ..."
  SourceLocation location;
  bool function_like = false;
};

/// One #include edge, includer -> includee.
struct IncludeEdge {
  FileId includer;
  FileId includee;
  SourceLocation location;
};

class Preprocessor {
 public:
  Preprocessor(SourceManager& sm, DiagnosticEngine& diags);
  ~Preprocessor();

  Preprocessor(const Preprocessor&) = delete;
  Preprocessor& operator=(const Preprocessor&) = delete;

  /// Begins preprocessing `main_file`; must be called exactly once.
  void enterMainFile(FileId main_file);

  /// Defines an object-like macro before processing starts (-D option).
  void predefineMacro(const std::string& name, const std::string& value);

  /// Next fully preprocessed token (macro-expanded, directives executed).
  Token next();

  [[nodiscard]] const std::vector<MacroRecord>& macroRecords() const {
    return macro_records_;
  }
  [[nodiscard]] const std::vector<IncludeEdge>& includeEdges() const {
    return include_edges_;
  }
  /// Files in the order they were first entered (main file first).
  [[nodiscard]] const std::vector<FileId>& filesSeen() const { return files_seen_; }

 private:
  struct Macro {
    std::string name;
    bool function_like = false;
    std::vector<std::string> params;
    std::vector<Token> body;
    SourceLocation location;
  };

  struct FileState {
    std::unique_ptr<RawLexer> lexer;
    FileId file;
    std::optional<Token> lookahead;
    int cond_depth_at_entry = 0;
  };

  // -- raw token plumbing ----------------------------------------------
  Token rawNext();             // next raw token from the file stack
  Token rawPeek();             // one-token lookahead within current file
  void popFile();

  // -- directives -------------------------------------------------------
  void handleDirective(const Token& hash);
  std::vector<Token> readDirectiveLine();  // tokens to end of logical line
  void handleInclude(std::vector<Token> line, SourceLocation loc);
  void handleDefine(std::vector<Token> line, SourceLocation loc);
  void handleUndef(std::vector<Token> line, SourceLocation loc);
  void handleConditional(const std::string& kind, std::vector<Token> line,
                         SourceLocation loc);
  void skipToElseOrEndif(bool allow_else);
  [[nodiscard]] bool evaluateCondition(std::vector<Token> line,
                                       SourceLocation loc);

  // -- macro expansion ---------------------------------------------------
  /// True if `tok` names a macro eligible for expansion given the active set.
  bool shouldExpand(const Token& tok,
                    const std::unordered_set<std::string>& active) const;
  /// Expands one macro use; for function-like macros, `readArgToken` yields
  /// the tokens following the name. Returns the fully expanded tokens.
  std::vector<Token> expandMacroUse(const Macro& macro, const Token& name_tok,
                                    std::vector<std::vector<Token>> args,
                                    std::unordered_set<std::string> active);
  std::vector<Token> expandTokenList(const std::vector<Token>& tokens,
                                     const std::unordered_set<std::string>& active);
  /// Collects ( arg, arg, ... ) for a function-like macro from the raw
  /// stream; returns nullopt if no '(' follows (name is then not a use).
  std::optional<std::vector<std::vector<Token>>> collectArgsFromStream();
  static std::optional<std::vector<std::vector<Token>>> collectArgsFromList(
      const std::vector<Token>& tokens, std::size_t& index);

  SourceManager& sm_;
  DiagnosticEngine& diags_;

  std::vector<FileState> file_stack_;
  std::deque<Token> pending_;  // expansion output awaiting delivery

  std::unordered_map<std::string, Macro> macros_;
  std::vector<MacroRecord> macro_records_;
  std::vector<IncludeEdge> include_edges_;
  std::vector<FileId> files_seen_;
  std::unordered_set<FileId> pragma_once_files_;
  std::unordered_set<FileId> entered_files_;  // cycle guard

  // Conditional-inclusion state: one entry per active #if nesting level.
  struct CondState {
    bool taken;          // some branch of this #if chain was taken
    bool active;         // current branch is being processed
    bool seen_else;
  };
  std::vector<CondState> cond_stack_;
};

}  // namespace pdt::lex
