#include "lex/preprocessor.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <utility>

#include "support/text.h"
#include "support/trace.h"

namespace pdt::lex {
namespace {

/// Reconstructs readable text from tokens ("#define MAX(a, b) ..." style).
/// Works over any indexable token sequence (vector or SmallVector).
template <typename Seq>
std::string joinTokens(const Seq& tokens) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0 && tokens[i].leading_space) out.push_back(' ');
    out += tokens[i].text;
  }
  return out;
}

Token makeEndToken() {
  Token t;
  t.kind = TokenKind::End;
  return t;
}

}  // namespace

Preprocessor::Preprocessor(SourceManager& sm, DiagnosticEngine& diags,
                           TokenArena* arena)
    : sm_(sm), diags_(diags), arena_(arena != nullptr ? arena : &owned_arena_) {}

Preprocessor::~Preprocessor() = default;

void Preprocessor::pushFile(FileId file) {
  FileState fs;
  fs.file = file;
  fs.cond_depth_at_entry = static_cast<int>(cond_stack_.size());
  // Batch-lex the whole file up front: one tight loop over the content,
  // one pre-reserved buffer, then the preprocessor just walks indices.
  RawLexer lexer(file, sm_.content(file), diags_, arena_);
  lexer.lexAll(fs.tokens);
  fs.end_loc = lexer.currentLocation();
  file_stack_.push_back(std::move(fs));
  entered_files_.insert(file);
}

void Preprocessor::enterMainFile(FileId main_file) {
  assert(file_stack_.empty());
  pushFile(main_file);
  files_seen_.push_back(main_file);
}

void Preprocessor::predefineMacro(const std::string& name, const std::string& value) {
  Macro m;
  // The caller's strings are temporaries; give the spellings arena backing.
  m.name = arena_->intern(name);
  const std::string_view stored = arena_->intern(value);
  RawLexer lx(FileId{}, stored, diags_, arena_);
  for (Token t = lx.next(); !t.isEnd(); t = lx.next()) m.body.push_back(t);
  const std::string_view key = m.name;
  macros_[key] = std::move(m);
}

// ---------------------------------------------------------------------------
// Raw token plumbing
// ---------------------------------------------------------------------------

Token Preprocessor::rawNext() {
  while (!file_stack_.empty()) {
    FileState& fs = file_stack_.back();
    if (fs.idx < fs.tokens.size()) return fs.tokens[fs.idx++];
    popFile();
  }
  return makeEndToken();
}

void Preprocessor::popFile() {
  assert(!file_stack_.empty());
  const FileState& fs = file_stack_.back();
  if (static_cast<int>(cond_stack_.size()) != fs.cond_depth_at_entry) {
    diags_.error({fs.file, 1, 1},
                 concat({"unterminated #if in '", sm_.name(fs.file), "'"}));
    cond_stack_.resize(static_cast<std::size_t>(fs.cond_depth_at_entry));
  }
  entered_files_.erase(fs.file);
  file_stack_.pop_back();
}

Preprocessor::TokenLine Preprocessor::readDirectiveLine() {
  TokenLine line;
  if (file_stack_.empty()) return line;
  FileState& fs = file_stack_.back();
  while (fs.idx < fs.tokens.size() && !fs.tokens[fs.idx].start_of_line)
    line.push_back(fs.tokens[fs.idx++]);
  return line;
}

// ---------------------------------------------------------------------------
// Directives
// ---------------------------------------------------------------------------

void Preprocessor::handleDirective(const Token& hash) {
  {
    // Read the directive name (must be on the same line as '#').
    FileState& fs = file_stack_.back();
    if (fs.idx >= fs.tokens.size()) return;          // '#' at end of file
    if (fs.tokens[fs.idx].start_of_line) return;     // null directive: bare '#'
  }
  // Copy the name token out: handleInclude may push onto file_stack_,
  // which can reallocate and would invalidate references into it.
  const Token name = [&] {
    FileState& fs = file_stack_.back();
    return fs.tokens[fs.idx++];
  }();
  const std::string_view directive = name.text;

  if (directive == "include") {
    // The lexer auto-detects '# include <...>' and lexes the header name
    // as one token, so no mode toggling is needed here.
    handleInclude(readDirectiveLine(), hash.location);
  } else if (directive == "define") {
    handleDefine(readDirectiveLine(), hash.location);
  } else if (directive == "undef") {
    handleUndef(readDirectiveLine(), hash.location);
  } else if (directive == "if" || directive == "ifdef" || directive == "ifndef") {
    handleConditional(directive, readDirectiveLine(), hash.location);
  } else if (directive == "elif" || directive == "else") {
    // We were processing the taken branch of this chain; everything until
    // the matching #endif is now dead.
    readDirectiveLine();
    if (cond_stack_.empty()) {
      diags_.error(hash.location, concat({"#", directive, " without matching #if"}));
      return;
    }
    skipToElseOrEndif(/*allow_else=*/false);
  } else if (directive == "endif") {
    readDirectiveLine();
    if (cond_stack_.empty()) {
      diags_.error(hash.location, "#endif without matching #if");
      return;
    }
    cond_stack_.pop_back();
  } else if (directive == "pragma") {
    const TokenLine line = readDirectiveLine();
    if (!line.empty() && line[0].isIdentifier("once"))
      pragma_once_files_.insert(file_stack_.back().file);
  } else if (directive == "error") {
    diags_.error(hash.location, concat({"#error ", joinTokens(readDirectiveLine())}));
  } else if (directive == "warning") {
    diags_.warning(hash.location,
                   concat({"#warning ", joinTokens(readDirectiveLine())}));
  } else if (directive == "line") {
    readDirectiveLine();  // accepted and ignored; PDB keeps physical lines
  } else {
    diags_.warning(hash.location,
                   concat({"unknown directive #", directive, " ignored"}));
    readDirectiveLine();
  }
}

void Preprocessor::handleInclude(const TokenLine& line, SourceLocation loc) {
  if (line.empty()) {
    diags_.error(loc, "#include expects a file name");
    return;
  }
  std::string_view spelling;
  bool angled = false;
  if (line[0].is(TokenKind::HeaderName)) {
    angled = true;
    spelling = line[0].text.substr(1, line[0].text.size() - 2);
  } else if (line[0].is(TokenKind::StringLiteral)) {
    spelling = line[0].text.substr(1, line[0].text.size() - 2);
  } else {
    diags_.error(loc, "#include expects \"file\" or <file>");
    return;
  }

  const FileId includer = file_stack_.back().file;
  const auto target = sm_.resolveInclude(spelling, angled, includer);
  if (!target) {
    diags_.error(loc, concat({"cannot open include file '", spelling, "'"}));
    return;
  }
  include_edges_.push_back({includer, *target, loc});
  trace::count(trace::Counter::PpIncludes);
  if (std::find(files_seen_.begin(), files_seen_.end(), *target) ==
      files_seen_.end()) {
    files_seen_.push_back(*target);
  }
  if (pragma_once_files_.contains(*target)) return;
  if (entered_files_.contains(*target)) {
    diags_.warning(loc, concat({"circular #include of '", spelling, "' skipped"}));
    return;
  }
  pushFile(*target);
}

void Preprocessor::handleDefine(const TokenLine& line, SourceLocation loc) {
  if (line.empty() || !(line[0].is(TokenKind::Identifier) ||
                        line[0].is(TokenKind::Keyword))) {
    diags_.error(loc, "#define expects a macro name");
    return;
  }
  Macro m;
  m.name = line[0].text;  // views file content: stable for the whole TU
  m.location = line[0].location;
  std::size_t i = 1;
  if (i < line.size() && line[i].isPunct("(") && !line[i].leading_space) {
    m.function_like = true;
    ++i;
    bool expect_name = true;
    while (i < line.size() && !line[i].isPunct(")")) {
      if (expect_name && line[i].is(TokenKind::Identifier)) {
        m.params.push_back(line[i].text);
        expect_name = false;
      } else if (!expect_name && line[i].isPunct(",")) {
        expect_name = true;
      } else {
        diags_.error(line[i].location, "malformed macro parameter list");
        return;
      }
      ++i;
    }
    if (i >= line.size()) {
      diags_.error(loc, "missing ')' in macro parameter list");
      return;
    }
    ++i;  // consume ')'
  }
  m.body.assign(line.begin() + static_cast<std::ptrdiff_t>(i), line.end());
  if (!m.body.empty()) m.body.front().leading_space = false;

  MacroRecord rec;
  rec.kind = MacroRecord::Kind::Define;
  rec.name = m.name;
  rec.location = m.location;
  rec.function_like = m.function_like;
  rec.text = "#define " + joinTokens(line);
  macro_records_.push_back(std::move(rec));

  const std::string_view key = m.name;
  macros_[key] = std::move(m);
}

void Preprocessor::handleUndef(const TokenLine& line, SourceLocation loc) {
  if (line.empty()) {
    diags_.error(loc, "#undef expects a macro name");
    return;
  }
  MacroRecord rec;
  rec.kind = MacroRecord::Kind::Undefine;
  rec.name = line[0].text;
  rec.location = line[0].location;
  rec.text = concat({"#undef ", line[0].text});
  macro_records_.push_back(std::move(rec));
  macros_.erase(line[0].text);
}

void Preprocessor::handleConditional(std::string_view kind,
                                     const TokenLine& line, SourceLocation loc) {
  bool value = false;
  if (kind == "ifdef" || kind == "ifndef") {
    if (line.empty()) {
      diags_.error(loc, concat({"#", kind, " expects a macro name"}));
    } else {
      value = macros_.contains(line[0].text);
    }
    if (kind == "ifndef") value = !value;
  } else {
    value = evaluateCondition(line, loc);
  }
  cond_stack_.push_back({value, value, false});
  if (!value) skipToElseOrEndif(/*allow_else=*/true);
}

void Preprocessor::skipToElseOrEndif(bool allow_else) {
  // Walk raw tokens of the dead region, honoring nesting. Runs within the
  // current file only: conditionals may not straddle file boundaries.
  FileState& fs = file_stack_.back();
  int depth = 0;
  while (true) {
    if (fs.idx >= fs.tokens.size()) {
      diags_.error(fs.end_loc, "unterminated conditional block");
      cond_stack_.pop_back();
      return;
    }
    const Token t = fs.tokens[fs.idx++];
    if (!(t.isPunct("#") && t.start_of_line)) continue;

    if (fs.idx >= fs.tokens.size()) continue;  // EOF error on next round
    if (fs.tokens[fs.idx].start_of_line) continue;  // bare '#'
    const Token name = fs.tokens[fs.idx++];
    const TokenLine line = readDirectiveLine();

    if (name.text == "if" || name.text == "ifdef" || name.text == "ifndef") {
      ++depth;
    } else if (name.text == "endif") {
      if (depth == 0) {
        cond_stack_.pop_back();
        return;
      }
      --depth;
    } else if (depth == 0 && allow_else && !cond_stack_.back().seen_else) {
      if (name.text == "elif") {
        if (!cond_stack_.back().taken && evaluateCondition(line, name.location)) {
          cond_stack_.back().taken = true;
          cond_stack_.back().active = true;
          return;  // resume normal processing in this branch
        }
      } else if (name.text == "else") {
        cond_stack_.back().seen_else = true;
        if (!cond_stack_.back().taken) {
          cond_stack_.back().taken = true;
          cond_stack_.back().active = true;
          return;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// #if expression evaluation
// ---------------------------------------------------------------------------

namespace {

/// Minimal recursive-descent evaluator over preprocessed integer tokens.
class CondParser {
 public:
  CondParser(const Token* toks, std::size_t count, DiagnosticEngine& diags,
             SourceLocation loc)
      : toks_(toks), count_(count), diags_(diags), loc_(loc) {}

  long long parse() { return parseTernary(); }
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  const Token* peek() const { return i_ < count_ ? &toks_[i_] : nullptr; }
  bool eatPunct(std::string_view p) {
    if (peek() && peek()->isPunct(p)) {
      ++i_;
      return true;
    }
    return false;
  }
  void fail(const std::string& why) {
    if (!failed_) diags_.error(loc_, concat({"in #if expression: ", why}));
    failed_ = true;
  }

  long long parsePrimary() {
    const Token* t = peek();
    if (!t) {
      fail("unexpected end of expression");
      return 0;
    }
    if (t->is(TokenKind::IntLiteral)) {
      ++i_;
      std::string digits(t->text);
      while (!digits.empty() &&
             (digits.back() == 'l' || digits.back() == 'L' ||
              digits.back() == 'u' || digits.back() == 'U'))
        digits.pop_back();
      return std::stoll(digits, nullptr, 0);
    }
    if (t->is(TokenKind::CharLiteral)) {
      ++i_;
      return t->text.size() >= 3 ? static_cast<long long>(t->text[1]) : 0;
    }
    if (t->isKeyword("true")) {
      ++i_;
      return 1;
    }
    if (t->isKeyword("false")) {
      ++i_;
      return 0;
    }
    if (t->is(TokenKind::Identifier) || t->is(TokenKind::Keyword)) {
      ++i_;  // undefined identifiers evaluate to 0 (C++ rule)
      return 0;
    }
    if (eatPunct("(")) {
      const long long v = parseTernary();
      if (!eatPunct(")")) fail("expected ')'");
      return v;
    }
    if (eatPunct("!")) return parsePrimary() == 0 ? 1 : 0;
    if (eatPunct("~")) return ~parsePrimary();
    if (eatPunct("-")) return -parsePrimary();
    if (eatPunct("+")) return parsePrimary();
    fail(concat({"unexpected token '", t->text, "'"}));
    ++i_;
    return 0;
  }

  long long parseBinary(int min_prec) {
    long long lhs = parsePrimary();
    while (const Token* t = peek()) {
      if (!t->is(TokenKind::Punct)) break;
      const int prec = precedence(t->text);
      if (prec < min_prec) break;
      const std::string_view op = t->text;  // views stable backing
      ++i_;
      const long long rhs = parseBinary(prec + 1);
      lhs = apply(op, lhs, rhs);
    }
    return lhs;
  }

  long long parseTernary() {
    const long long cond = parseBinary(1);
    if (eatPunct("?")) {
      const long long a = parseTernary();
      if (!eatPunct(":")) fail("expected ':'");
      const long long b = parseTernary();
      return cond ? a : b;
    }
    return cond;
  }

  static int precedence(std::string_view op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|") return 3;
    if (op == "^") return 4;
    if (op == "&") return 5;
    if (op == "==" || op == "!=") return 6;
    if (op == "<" || op == ">" || op == "<=" || op == ">=") return 7;
    if (op == "<<" || op == ">>") return 8;
    if (op == "+" || op == "-") return 9;
    if (op == "*" || op == "/" || op == "%") return 10;
    return 0;
  }

  long long apply(std::string_view op, long long a, long long b) {
    if (op == "||") return (a != 0 || b != 0) ? 1 : 0;
    if (op == "&&") return (a != 0 && b != 0) ? 1 : 0;
    if (op == "|") return a | b;
    if (op == "^") return a ^ b;
    if (op == "&") return a & b;
    if (op == "==") return a == b ? 1 : 0;
    if (op == "!=") return a != b ? 1 : 0;
    if (op == "<") return a < b ? 1 : 0;
    if (op == ">") return a > b ? 1 : 0;
    if (op == "<=") return a <= b ? 1 : 0;
    if (op == ">=") return a >= b ? 1 : 0;
    if (op == "<<") return a << (b & 63);
    if (op == ">>") return a >> (b & 63);
    if (op == "+") return a + b;
    if (op == "-") return a - b;
    if (op == "*") return a * b;
    if (op == "/") {
      if (b == 0) {
        fail("division by zero");
        return 0;
      }
      return a / b;
    }
    if (op == "%") {
      if (b == 0) {
        fail("modulo by zero");
        return 0;
      }
      return a % b;
    }
    fail(concat({"unsupported operator '", op, "'"}));
    return 0;
  }

  const Token* toks_;
  std::size_t count_;
  DiagnosticEngine& diags_;
  SourceLocation loc_;
  std::size_t i_ = 0;
  bool failed_ = false;
};

}  // namespace

bool Preprocessor::evaluateCondition(const TokenLine& line, SourceLocation loc) {
  // Resolve `defined X` / `defined(X)` before macro expansion.
  std::vector<Token> resolved;
  resolved.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i].isIdentifier("defined")) {
      std::string_view name;
      if (i + 1 < line.size() && line[i + 1].isPunct("(")) {
        if (i + 3 < line.size() && line[i + 3].isPunct(")")) {
          name = line[i + 2].text;
          i += 3;
        } else {
          diags_.error(loc, "malformed defined()");
        }
      } else if (i + 1 < line.size()) {
        name = line[i + 1].text;
        ++i;
      }
      Token t;
      t.kind = TokenKind::IntLiteral;
      t.text = macros_.contains(name) ? "1" : "0";  // static backing
      t.location = line[i].location;
      resolved.push_back(t);
    } else {
      resolved.push_back(line[i]);
    }
  }
  const std::vector<Token> expanded =
      expandTokenList(resolved.data(), resolved.size(), {});
  CondParser parser(expanded.data(), expanded.size(), diags_, loc);
  const long long value = parser.parse();
  return !parser.failed() && value != 0;
}

// ---------------------------------------------------------------------------
// Macro expansion
// ---------------------------------------------------------------------------

bool Preprocessor::shouldExpand(const Token& tok, const ActiveSet& active) const {
  return (tok.is(TokenKind::Identifier)) && !tok.no_expand &&
         macros_.contains(tok.text) && !active.contains(tok.text);
}

std::optional<std::vector<std::vector<Token>>> Preprocessor::collectArgsFromList(
    const Token* tokens, std::size_t count, std::size_t& index) {
  // tokens[index] must be '('. Returns the comma-separated args, leaving
  // index one past the closing ')'. nullopt on imbalance.
  assert(index < count && tokens[index].isPunct("("));
  std::vector<std::vector<Token>> args(1);
  int depth = 1;
  std::size_t i = index + 1;
  for (; i < count; ++i) {
    const Token& t = tokens[i];
    if (t.isPunct("(")) {
      ++depth;
    } else if (t.isPunct(")")) {
      if (--depth == 0) {
        index = i + 1;
        if (args.size() == 1 && args[0].empty()) args.clear();  // zero args
        return args;
      }
    } else if (t.isPunct(",") && depth == 1) {
      args.emplace_back();
      continue;
    }
    args.back().push_back(t);
  }
  return std::nullopt;
}

std::optional<std::vector<std::vector<Token>>>
Preprocessor::collectArgsFromStream() {
  // The caller consumed the macro name; the '(' (if any) is next.
  Token open = [&] {
    if (!pending_.empty()) {
      Token t = pending_.front();
      pending_.pop_front();
      return t;
    }
    return rawNext();
  }();
  if (!open.isPunct("(")) {
    pending_.push_front(open);
    return std::nullopt;
  }
  std::vector<std::vector<Token>> args(1);
  int depth = 1;
  while (true) {
    Token t;
    if (!pending_.empty()) {
      t = pending_.front();
      pending_.pop_front();
    } else {
      t = rawNext();
      if (t.isPunct("#") && t.start_of_line) {
        handleDirective(t);
        continue;
      }
    }
    if (t.isEnd()) return std::nullopt;
    if (t.isPunct("(")) {
      ++depth;
    } else if (t.isPunct(")")) {
      if (--depth == 0) {
        if (args.size() == 1 && args[0].empty()) args.clear();
        return args;
      }
    } else if (t.isPunct(",") && depth == 1) {
      args.emplace_back();
      continue;
    }
    args.back().push_back(t);
  }
}

std::vector<Token> Preprocessor::expandMacroUse(
    const Macro& macro, const Token& name_tok,
    const std::vector<std::vector<Token>>& args, const ActiveSet& active) {
  trace::count(trace::Counter::PpMacroExpansions);
  const auto paramIndex = [&](const Token& t) -> int {
    if (!t.is(TokenKind::Identifier)) return -1;
    for (std::size_t p = 0; p < macro.params.size(); ++p) {
      if (macro.params[p] == t.text) return static_cast<int>(p);
    }
    return -1;
  };

  // Pre-expand arguments once (used for plain substitution sites).
  std::vector<std::vector<Token>> expanded_args;
  expanded_args.reserve(args.size());
  for (const auto& a : args)
    expanded_args.push_back(expandTokenList(a.data(), a.size(), active));

  // Phase 1: parameter substitution with # and ## handling.
  std::vector<Token> subst;
  const std::vector<Token>& body = macro.body;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const Token& t = body[i];
    if (t.isPunct("#") && macro.function_like && i + 1 < body.size() &&
        paramIndex(body[i + 1]) >= 0) {
      // Stringize: raw (unexpanded) argument spelling, arena-backed.
      const int p = paramIndex(body[i + 1]);
      Token s;
      s.kind = TokenKind::StringLiteral;
      s.text = arena_->intern(
          concat({"\"", joinTokens(args[static_cast<std::size_t>(p)]), "\""}));
      s.location = name_tok.location;
      s.leading_space = t.leading_space;
      subst.push_back(s);
      ++i;
      continue;
    }
    const bool next_is_paste = i + 1 < body.size() && body[i + 1].isPunct("##");
    const bool prev_was_paste = !subst.empty() && subst.back().isPunct("##");
    const int p = paramIndex(t);
    if (p >= 0) {
      // Parameter adjacent to ## substitutes unexpanded; otherwise expanded.
      const auto& replacement =
          (next_is_paste || prev_was_paste) ? args[static_cast<std::size_t>(p)]
                                            : expanded_args[static_cast<std::size_t>(p)];
      for (Token r : replacement) {
        r.location = name_tok.location;
        subst.push_back(r);
      }
      if (replacement.empty() && (next_is_paste || prev_was_paste)) {
        Token placemarker;  // empty arg next to ##: vanishes after pasting
        placemarker.kind = TokenKind::Punct;
        placemarker.text = {};
        placemarker.location = name_tok.location;
        subst.push_back(placemarker);
      }
      continue;
    }
    Token copy = t;
    copy.location = name_tok.location;
    subst.push_back(copy);
  }

  // Phase 2: token pasting.
  std::vector<Token> pasted;
  for (std::size_t i = 0; i < subst.size(); ++i) {
    if (subst[i].isPunct("##")) {
      if (pasted.empty() || i + 1 >= subst.size()) {
        diags_.error(name_tok.location, "'##' at edge of macro expansion");
        continue;
      }
      const Token& rhs = subst[++i];
      Token& lhs = pasted.back();
      lhs.text = arena_->concat(lhs.text, rhs.text);
      if (lhs.text.empty()) {
        pasted.pop_back();
        continue;
      }
      // Re-classify the pasted spelling.
      if (std::isalpha(static_cast<unsigned char>(lhs.text[0])) || lhs.text[0] == '_') {
        lhs.kind = isKeywordSpelling(lhs.text) ? TokenKind::Keyword
                                               : TokenKind::Identifier;
      } else if (std::isdigit(static_cast<unsigned char>(lhs.text[0]))) {
        lhs.kind = TokenKind::IntLiteral;
      }
      continue;
    }
    if (subst[i].text.empty()) continue;  // drop placemarkers
    pasted.push_back(subst[i]);
  }

  // Phase 3: rescan for further expansion, with this macro painted blue.
  ActiveSet rescan_active = active;
  rescan_active.insert(macro.name);
  return expandTokenList(pasted.data(), pasted.size(), rescan_active);
}

std::vector<Token> Preprocessor::expandTokenList(const Token* tokens,
                                                 std::size_t count,
                                                 const ActiveSet& active) {
  std::vector<Token> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Token& t = tokens[i];
    if (!shouldExpand(t, active)) {
      out.push_back(t);
      // Paint identifiers that name active macros so they are never
      // reconsidered once they leave this expansion context.
      if (t.is(TokenKind::Identifier) && active.contains(t.text))
        out.back().no_expand = true;
      continue;
    }
    const Macro& macro = macros_.at(t.text);
    if (!macro.function_like) {
      const std::vector<Token> exp = expandMacroUse(macro, t, {}, active);
      out.insert(out.end(), exp.begin(), exp.end());
      continue;
    }
    // Function-like: expand only if '(' follows within this list.
    std::size_t j = i + 1;
    if (j < count && tokens[j].isPunct("(")) {
      auto args = collectArgsFromList(tokens, count, j);
      if (args) {
        if (args->size() != macro.params.size() &&
            !(args->empty() && macro.params.empty())) {
          diags_.error(t.location,
                       concat({"macro '", macro.name, "' expects ",
                               std::to_string(macro.params.size()),
                               " arguments, got ", std::to_string(args->size())}));
          out.push_back(t);
          continue;
        }
        const std::vector<Token> exp = expandMacroUse(macro, t, *args, active);
        out.insert(out.end(), exp.begin(), exp.end());
        i = j - 1;
        continue;
      }
    }
    out.push_back(t);  // name without call: not a macro use
  }
  return out;
}

// ---------------------------------------------------------------------------
// Main token pump
// ---------------------------------------------------------------------------

Token Preprocessor::next() {
  while (true) {
    Token t;
    if (!pending_.empty()) {
      t = pending_.front();
      pending_.pop_front();
    } else {
      t = rawNext();
      if (t.isEnd()) return t;
      if (t.isPunct("#") && t.start_of_line) {
        handleDirective(t);
        continue;
      }
    }
    if (t.isEnd()) return t;

    // Dynamic builtin macros reflect the current expansion site.
    if (t.is(TokenKind::Identifier) && !t.no_expand) {
      if (t.text == "__LINE__") {
        t.kind = TokenKind::IntLiteral;
        t.text = arena_->intern(std::to_string(t.location.line));
        return t;
      }
      if (t.text == "__FILE__") {
        t.kind = TokenKind::StringLiteral;
        t.text = sm_.known(t.location.file)
                     ? arena_->intern(
                           concat({"\"", sm_.name(t.location.file), "\""}))
                     : std::string_view{"\"<unknown>\""};
        return t;
      }
    }

    if (shouldExpand(t, {})) {
      const Macro& macro = macros_.at(t.text);
      if (macro.function_like) {
        auto args = collectArgsFromStream();
        if (!args) return t;  // no '(' → plain identifier
        if (args->size() != macro.params.size() &&
            !(args->empty() && macro.params.empty())) {
          diags_.error(t.location,
                       concat({"macro '", macro.name, "' expects ",
                               std::to_string(macro.params.size()),
                               " arguments, got ", std::to_string(args->size())}));
          return t;
        }
        std::vector<Token> exp = expandMacroUse(macro, t, *args, {});
        for (auto it = exp.rbegin(); it != exp.rend(); ++it)
          pending_.push_front(*it);
        continue;
      }
      std::vector<Token> exp = expandMacroUse(macro, t, {}, {});
      for (auto it = exp.rbegin(); it != exp.rend(); ++it)
        pending_.push_front(*it);
      continue;
    }
    return t;
  }
}

}  // namespace pdt::lex
