// RawLexer: turns one file's character stream into tokens, including the
// '#' that begins preprocessor directives. Comments and line splices are
// handled here; directives and macros are the Preprocessor's job.
#pragma once

#include <string_view>

#include "lex/token.h"
#include "support/diagnostics.h"
#include "support/source_location.h"

namespace pdt::lex {

class RawLexer {
 public:
  RawLexer(FileId file, std::string_view content, DiagnosticEngine& diags);

  /// Lexes the next token; returns kind End at end of file.
  Token next();

  /// When true, '<...>' after #include is lexed as a single HeaderName.
  void setHeaderNameMode(bool on) { header_name_mode_ = on; }

  /// Skips to the first character of the next line (used to discard the
  /// rest of a malformed directive).
  void skipToEndOfLine();

  [[nodiscard]] bool atEnd() const { return pos_ >= content_.size(); }
  [[nodiscard]] SourceLocation currentLocation() const;
  [[nodiscard]] FileId file() const { return file_; }

 private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  void advance();
  bool skipWhitespaceAndComments();  // returns true if whitespace was skipped

  Token makeToken(TokenKind kind, std::size_t begin_pos, SourceLocation begin_loc);
  Token lexNumber(SourceLocation begin);
  Token lexIdentifier(SourceLocation begin);
  Token lexCharOrString(char quote, SourceLocation begin);
  Token lexPunct(SourceLocation begin);

  FileId file_;
  std::string_view content_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
  bool at_line_start_ = true;
  bool pending_space_ = false;
  bool header_name_mode_ = false;
};

}  // namespace pdt::lex
