// RawLexer: turns one file's character stream into tokens, including the
// '#' that begins preprocessor directives. Comments and line splices are
// handled here; directives and macros are the Preprocessor's job.
//
// Tokens carry string_view spellings into `content` (which the caller
// must keep alive — for compiles that is the SourceManager's file table).
// Spellings that cross a line splice are cleaned into `arena` when one is
// supplied, or the process-wide intern table otherwise, so they are
// always stably backed.
#pragma once

#include <string_view>
#include <vector>

#include "lex/token.h"
#include "support/diagnostics.h"
#include "support/source_location.h"
#include "support/token_arena.h"

namespace pdt::lex {

class RawLexer {
 public:
  RawLexer(FileId file, std::string_view content, DiagnosticEngine& diags,
           TokenArena* arena = nullptr);

  /// Lexes the next token; returns kind End at end of file.
  Token next();

  /// Batch fast path: lexes the whole remaining stream into `out`
  /// (pre-reserved from the content size). The token sequence is exactly
  /// what repeated next() calls would produce.
  void lexAll(std::vector<Token>& out);

  /// When true, '<...>' is lexed as a single HeaderName token. The lexer
  /// also enables this automatically for the token following a
  /// line-start '#' 'include', so batch and incremental lexing agree on
  /// directive lines without preprocessor help.
  void setHeaderNameMode(bool on) { header_name_mode_ = on; }

  /// Skips to the first character of the next line (used to discard the
  /// rest of a malformed directive).
  void skipToEndOfLine();

  [[nodiscard]] bool atEnd() const { return pos_ >= content_.size(); }
  [[nodiscard]] SourceLocation currentLocation() const;
  [[nodiscard]] FileId file() const { return file_; }

 private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  void advance();
  bool skipWhitespaceAndComments();  // returns true if whitespace was skipped

  Token makeToken(TokenKind kind, std::size_t begin_pos, SourceLocation begin_loc);
  Token lexNumber(SourceLocation begin);
  Token lexIdentifier(SourceLocation begin);
  Token lexCharOrString(char quote, SourceLocation begin);
  Token lexPunct(SourceLocation begin);

  /// Stable backing for a spelling that exists in no file.
  std::string_view synthesize(std::string_view text);

  FileId file_;
  std::string_view content_;
  DiagnosticEngine& diags_;
  TokenArena* arena_ = nullptr;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
  bool at_line_start_ = true;
  bool header_name_mode_ = false;
  // '#' 'include' auto-detection: 0 = none, 1 = saw line-start '#',
  // 2 = saw '#' 'include' (next '<' starts a header name).
  std::uint8_t include_state_ = 0;
};

}  // namespace pdt::lex
