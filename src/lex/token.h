// Token definitions for the PDT-C++ frontend.
//
// Tokens own their spelling (macro expansion synthesizes text that exists
// in no file) and carry the location of the characters they were lexed
// from — for expanded tokens, the location of the macro use, so that PDB
// positions always refer to what the programmer wrote (paper §3.1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_location.h"

namespace pdt::lex {

enum class TokenKind : std::uint8_t {
  End,          // end of token stream
  Identifier,
  Keyword,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,
  Punct,        // operators and punctuation, identified by spelling
  HeaderName,   // <...> include spelling; only inside #include
};

[[nodiscard]] std::string_view toString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;          // exact spelling
  SourceLocation location;
  bool start_of_line = false;   // first token on its line (pre-expansion)
  bool leading_space = false;   // preceded by whitespace
  bool no_expand = false;       // "blue paint": never macro-expand again

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  [[nodiscard]] bool isIdentifier(std::string_view s) const {
    return kind == TokenKind::Identifier && text == s;
  }
  [[nodiscard]] bool isKeyword(std::string_view s) const {
    return kind == TokenKind::Keyword && text == s;
  }
  [[nodiscard]] bool isPunct(std::string_view s) const {
    return kind == TokenKind::Punct && text == s;
  }
  [[nodiscard]] bool isEnd() const { return kind == TokenKind::End; }

  /// Location of the character one past the token (same line).
  [[nodiscard]] SourceLocation endLocation() const {
    SourceLocation end = location;
    end.column += static_cast<std::uint32_t>(text.size());
    return end;
  }
};

/// True for spellings that are PDT-C++ keywords.
[[nodiscard]] bool isKeywordSpelling(std::string_view spelling);

}  // namespace pdt::lex
