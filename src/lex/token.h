// Token definitions for the PDT-C++ frontend.
//
// Token text is a std::string_view over stable backing storage, so tokens
// are plain 40-byte values that copy without allocating:
//
//  * Directly lexed tokens view the SourceManager's file content, which is
//    never moved or freed while the translation unit is alive (the file
//    table is a deque of immutable entries).
//  * Spellings synthesized by the preprocessor — pasted/stringized text,
//    __LINE__/__FILE__, -D predefines, splice-cleaned identifiers — are
//    copied into the per-TU TokenArena (support/token_arena.h), whose
//    chunks never move either.
//
// Lifetime rule for consumers: a token (and any string_view taken from
// token text) is valid while the SourceManager and the originating
// TokenArena are alive — for the frontend, the whole compile of the TU.
// Anything that outlives the TU (AST decl names, PDB items, diagnostics)
// copies into owned storage at the boundary.
//
// Tokens carry the location of the characters they were lexed from — for
// expanded tokens, the location of the macro use, so that PDB positions
// always refer to what the programmer wrote (paper §3.1).
#pragma once

#include <cstdint>
#include <string_view>

#include "support/source_location.h"

namespace pdt::lex {

enum class TokenKind : std::uint8_t {
  End,          // end of token stream
  Identifier,
  Keyword,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,
  Punct,        // operators and punctuation, identified by spelling
  HeaderName,   // <...> include spelling; only inside #include
};

[[nodiscard]] std::string_view toString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::End;
  bool start_of_line = false;   // first token on its line (pre-expansion)
  bool leading_space = false;   // preceded by whitespace
  bool no_expand = false;       // "blue paint": never macro-expand again
  std::string_view text;        // exact spelling (see backing rules above)
  SourceLocation location;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  [[nodiscard]] bool isIdentifier(std::string_view s) const {
    return kind == TokenKind::Identifier && text == s;
  }
  [[nodiscard]] bool isKeyword(std::string_view s) const {
    return kind == TokenKind::Keyword && text == s;
  }
  [[nodiscard]] bool isPunct(std::string_view s) const {
    return kind == TokenKind::Punct && text == s;
  }
  [[nodiscard]] bool isEnd() const { return kind == TokenKind::End; }

  /// Location of the character one past the token (same line).
  [[nodiscard]] SourceLocation endLocation() const {
    SourceLocation end = location;
    end.column += static_cast<std::uint32_t>(text.size());
    return end;
  }
};

/// True for spellings that are PDT-C++ keywords (sorted-table lookup
/// indexed by first letter; no hashing, no allocation).
[[nodiscard]] bool isKeywordSpelling(std::string_view spelling);

}  // namespace pdt::lex
