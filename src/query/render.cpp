#include "query/render.h"

#include <iomanip>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/dataflow.h"

namespace pdt::query {
namespace {

using ductape::pdbCall;
using ductape::pdbClass;
using ductape::pdbFile;
using ductape::pdbLoc;
using ductape::pdbRoutine;
using pdb::DefUseItem;
using pdb::DuOp;

namespace dataflow = analysis::dataflow;

std::string locText(const pdbLoc& loc) {
  if (!loc.valid()) return "<generated>";
  return loc.file()->name() + ":" + std::to_string(loc.line()) + ":" +
         std::to_string(loc.col());
}

/// Writes `width` spaces from a caller-owned, reusable pad buffer (the
/// deep-tree walks emit O(depth) padding per line; see tools.cpp).
void writePad(std::ostream& os, std::string& pad, int width) {
  if (width <= 0) return;
  const auto w = static_cast<std::size_t>(width);
  if (pad.size() < w) pad.resize(w, ' ');
  os.write(pad.data(), static_cast<std::streamsize>(w));
}

// The call-graph display routine of paper Figure 5, byte-identical to
// tools::printFuncTree but with the on-path marks in a local set instead
// of the graph's mutable traversal flags — concurrent renders share
// nothing.
void funcTree(const pdbRoutine* r, int level, std::ostream& os,
              std::string& pad) {
  struct Frame {
    const pdbRoutine* routine;
    std::size_t next = 0;  // index of the next callee to visit
  };
  std::vector<Frame> stack;
  std::unordered_set<const pdbRoutine*> on_path{r};
  stack.push_back({r});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const pdbRoutine::callvec& callees = frame.routine->callees();
    if (frame.next >= callees.size()) {
      on_path.erase(frame.routine);
      stack.pop_back();
      continue;
    }
    const pdbCall* call = callees[frame.next++];
    const pdbRoutine* rr = call->call();
    const int cur = level + static_cast<int>(stack.size()) - 1;
    if (cur != 0 || !rr->callees().empty()) {
      writePad(os, pad, (cur - 1) * 5);
      if (cur) os << "`--> ";
      os << rr->fullName();
      if (call->isVirtual()) os << " (VIRTUAL)";
      if (on_path.contains(rr)) {
        os << " ... " << '\n';
      } else {
        os << '\n';
        on_path.insert(rr);
        stack.push_back({rr});  // invalidates `frame`; loop re-derives it
      }
    }
  }
}

void includeTree(const pdbFile* f, int level, std::ostream& os,
                 std::string& pad,
                 std::unordered_set<const pdbFile*>& on_path) {
  on_path.insert(f);
  writePad(os, pad, level * 4);
  os << f->name() << '\n';
  for (const pdbFile* inc : f->includes()) {
    if (on_path.contains(inc)) {
      writePad(os, pad, (level + 1) * 4);
      os << inc->name() << " ...\n";
    } else {
      includeTree(inc, level + 1, os, pad, on_path);
    }
  }
  on_path.erase(f);
}

void classTree(const pdbClass* c, int level, std::ostream& os,
               std::string& pad,
               std::unordered_set<const pdbClass*>& on_path) {
  on_path.insert(c);
  writePad(os, pad, level * 4);
  os << c->fullName() << "  [" << locText(c->location()) << "]\n";
  for (const pdbClass* d : c->derivedClasses()) {
    if (on_path.contains(d)) {
      writePad(os, pad, (level + 1) * 4);
      os << d->fullName() << " ...\n";
    } else {
      classTree(d, level + 1, os, pad, on_path);
    }
  }
  on_path.erase(c);
}

void renderProfile(const Index& index, std::ostream& os) {
  const auto& dps = index.pdb().raw().dynProfs();
  if (dps.empty()) {
    os << "(no dp section; attach one with tauprof --db-out)\n";
    return;
  }
  std::unordered_map<int, const pdbRoutine*> by_id;
  for (const pdbRoutine* r : index.pdb().getRoutineVec())
    by_id.emplace(r->id(), r);
  os << "       #Call     Excl-ms     Incl-ms  Thr  Name  "
        "[routine @ location]\n";
  const auto flags = os.flags();
  const auto precision = os.precision();
  for (const pdb::DynProfItem& p : dps) {
    os << std::setw(12) << p.calls << ' ' << std::fixed
       << std::setprecision(3) << std::setw(11)
       << static_cast<double>(p.exclusive_ns) / 1e6 << ' ' << std::setw(11)
       << static_cast<double>(p.inclusive_ns) / 1e6 << ' ' << std::setw(4)
       << p.threads << "  " << p.name;
    const auto it = by_id.find(static_cast<int>(p.routine));
    if (it != by_id.end()) {
      os << "  [ro#" << p.routine << ' ' << it->second->fullName() << " @ "
         << locText(it->second->location()) << ']';
    } else if (p.routine != 0) {
      os << "  [ro#" << p.routine << ']';
    }
    os << '\n';
    os.flags(flags);
    os.precision(precision);
  }
}

bool eventSelected(const DefUseItem::Event& e, const DefUseQuery& q) {
  if (e.op == DuOp::Marker) return false;
  if (!q.var.empty() && e.name != q.var) return false;
  if (q.line >= 0 && static_cast<int>(e.pos.line) != q.line) return false;
  if (q.col >= 0 && static_cast<int>(e.pos.column) != q.col) return false;
  return true;
}

std::string eventText(const analysis::DefUseIndex& world,
                      const DefUseItem::Event& e) {
  std::string out = e.op == DuOp::Def ? "def of '" : "use of '";
  out += std::string(e.name) + "' at " + world.posText(e.pos);
  out += " [" + pdb::du::flagsText(e.flags) + "]";
  return out;
}

}  // namespace

void renderTree(const Index& index, Tree kind, std::ostream& os) {
  std::string pad;
  switch (kind) {
    case Tree::Includes: {
      os << "Source file inclusion tree\n--------------------------\n";
      std::unordered_set<const pdbFile*> on_path;
      for (const pdbFile* root : index.roots().includes) {
        includeTree(root, 0, os, pad, on_path);
      }
      break;
    }
    case Tree::ClassHierarchy: {
      os << "Class hierarchy\n---------------\n";
      std::unordered_set<const pdbClass*> on_path;
      for (const pdbClass* root : index.roots().classes) {
        classTree(root, 0, os, pad, on_path);
      }
      break;
    }
    case Tree::CallGraph: {
      os << "Static call tree\n----------------\n";
      for (const pdbRoutine* root : index.roots().calls) {
        os << root->fullName() << '\n';
        funcTree(root, 1, os, pad);
      }
      break;
    }
    case Tree::Profile: {
      os << "Dynamic profile joined with static routines\n"
            "-------------------------------------------\n";
      renderProfile(index, os);
      break;
    }
  }
}

void renderDefUse(const Index& index, const DefUseQuery& query,
                  std::ostream& os) {
  const analysis::DefUseIndex& world = index.defUse();
  for (const analysis::DefUseIndex::Stream& stream : world.streams()) {
    const DefUseItem& item = *stream.item;
    if (!query.routine.empty() &&
        !world.routineMatches(item.routine, query.routine))
      continue;

    if (!query.defs && !query.uses) {
      int defs = 0, uses = 0, markers = 0;
      for (const auto& e : item.events) {
        if (e.op == DuOp::Def) ++defs;
        else if (e.op == DuOp::Use) ++uses;
        else ++markers;
      }
      os << "du#" << item.id << " routine '"
         << world.routineName(item.routine) << "': " << defs << " def(s), "
         << uses << " use(s), " << markers << " marker(s)\n";
      continue;
    }

    if (stream.rd == nullptr) {
      os << "routine '" << world.routineName(item.routine)
         << "': irregular control flow (goto/label/try); no "
            "flow-sensitive answer\n";
      continue;
    }
    const dataflow::ReachingDefs& rd = *stream.rd;
    bool header_printed = false;
    const auto header = [&] {
      if (header_printed) return;
      header_printed = true;
      os << "routine '" << world.routineName(item.routine) << "' (du#"
         << item.id << "):\n";
    };
    for (std::size_t e = 0; e < item.events.size(); ++e) {
      const auto& ev = item.events[e];
      if (!eventSelected(ev, query)) continue;
      const auto idx = static_cast<dataflow::EventIndex>(e);
      if (query.defs && ev.op == DuOp::Use) {
        header();
        os << "  " << eventText(world, ev) << '\n';
        const auto& defs = rd.defsReaching(idx);
        if (defs.empty()) os << "    reached by no definition\n";
        for (const auto d : defs)
          os << "    reached by " << eventText(world, item.events[d]) << '\n';
      }
      if (query.uses && ev.op == DuOp::Def) {
        header();
        os << "  " << eventText(world, ev) << '\n';
        const auto& uses = rd.usesReached(idx);
        if (uses.empty()) os << "    reaches no use\n";
        for (const auto u : uses)
          os << "    reaches " << eventText(world, item.events[u]) << '\n';
      }
    }
  }
}

void renderLookup(const Index& index, const std::string& name,
                  std::ostream& os) {
  const std::vector<std::string> lines = index.lookup(name);
  if (lines.empty()) {
    os << "no match for '" << name << "'\n";
    return;
  }
  for (const std::string& line : lines) os << line << '\n';
}

}  // namespace pdt::query
