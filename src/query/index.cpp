#include "query/index.h"

#include <utility>

namespace pdt::query {
namespace {

std::string locSuffix(const ductape::pdbLoc& loc) {
  if (!loc.valid()) return {};
  return " @ " + loc.file()->name() + ":" + std::to_string(loc.line()) + ":" +
         std::to_string(loc.col());
}

}  // namespace

Index::Index(pdb::SnapshotPtr snapshot) : snapshot_(std::move(snapshot)) {
  owned_.emplace(ductape::PDB::fromSnapshot(snapshot_));
  pdb_ = &*owned_;
}

Index::Index(pdb::PdbFile pdb) {
  owned_.emplace(ductape::PDB::fromPdbFile(pdb));
  pdb_ = &*owned_;
}

Index::Index(const ductape::PDB& pdb) : pdb_(&pdb) {}

void Index::graphOnce() const {
  // Every memoized builder funnels through here first: the DUCTAPE graph
  // build is logically-const lazy (triggered by the first accessor), so
  // force it under its own once_flag to give concurrent first readers a
  // single synchronized construction.
  std::call_once(graph_once_, [this] { (void)pdb_->getFileVec(); });
}

const Index::Roots& Index::roots() const {
  std::call_once(roots_once_, [this] {
    graphOnce();
    roots_.includes = pdb_->getIncludeTreeRoots();
    roots_.classes = pdb_->getClassHierarchyRoots();
    roots_.calls = pdb_->getCallTreeRoots();
  });
  return roots_;
}

const analysis::DefUseIndex& Index::defUse() const { return *defUsePtr(); }

std::shared_ptr<const analysis::DefUseIndex> Index::defUsePtr() const {
  std::call_once(du_once_, [this] {
    graphOnce();
    du_ = analysis::DefUseIndex::build(*pdb_);
  });
  return du_;
}

const analysis::AnalysisContext& Index::analysis() const {
  std::call_once(ctx_once_, [this] {
    graphOnce();
    ctx_.emplace(analysis::AnalysisContext::build(*pdb_, defUsePtr()));
  });
  return *ctx_;
}

const std::unordered_map<std::string, std::vector<std::string>>&
Index::names() const {
  std::call_once(names_once_, [this] {
    graphOnce();
    const auto add = [this](const std::string& key, std::string line) {
      if (key.empty()) return;
      names_[key].push_back(std::move(line));
    };
    // Building the lines calls fullName() on every item, which doubles as
    // the prewarm of the graph's per-item qualified-name caches.
    const auto addItem = [&](std::string_view prefix,
                             const ductape::pdbItem* item) {
      const std::string full = item->fullName();
      std::string line = std::string(prefix) + "#" +
                         std::to_string(item->id()) + " " + full +
                         locSuffix(item->location());
      if (full != item->name()) add(item->name(), line);
      add(full, std::move(line));
    };
    for (const auto* f : pdb_->getFileVec())
      add(f->name(), "so#" + std::to_string(f->id()) + " " + f->name());
    for (const auto* r : pdb_->getRoutineVec()) addItem("ro", r);
    for (const auto* c : pdb_->getClassVec()) addItem("cl", c);
    for (const auto* t : pdb_->getTypeVec()) addItem("ty", t);
    for (const auto* t : pdb_->getTemplateVec()) addItem("te", t);
    for (const auto* n : pdb_->getNamespaceVec()) addItem("na", n);
    for (const auto* m : pdb_->getMacroVec()) addItem("ma", m);
  });
  return names_;
}

std::vector<std::string> Index::lookup(const std::string& name) const {
  const auto& map = names();
  const auto it = map.find(name);
  return it == map.end() ? std::vector<std::string>{} : it->second;
}

void Index::prewarm() const {
  (void)roots();
  (void)names();
  (void)defUse();
  (void)analysis();
}

}  // namespace pdt::query
