// Query renderers: the display routines of pdbtree (paper Figure 5) and
// pdbduct, lifted out of the tools so pdbd can serve the same bytes.
//
// Output is byte-identical to the historical tool output — the one-shot
// tools delegate here, and scripts/ci.sh cmp's daemon responses against
// them. Unlike the original walkers these take no locks and mutate no
// shared state: cycle detection uses per-call visited sets instead of
// the object graph's traversal flags, so any number of threads can
// render from one prewarmed Index concurrently.
#pragma once

#include <ostream>
#include <string>

#include "query/index.h"

namespace pdt::query {

enum class Tree : std::uint8_t {
  Includes,        // source file inclusion tree
  ClassHierarchy,  // class hierarchy with locations
  CallGraph,       // static call tree (Figure 5)
  Profile,         // dp section joined with static routines
};

/// Renders one tree view over the index's memoized roots.
void renderTree(const Index& index, Tree kind, std::ostream& os);

/// A def-use query (pdbduct's command line, pdbd's defuse verb).
struct DefUseQuery {
  std::string routine;  // empty: all
  std::string var;      // empty: all
  int line = -1;        // -1: any line
  int col = -1;         // -1: any column on the line
  bool defs = false;    // print definitions reaching each selected use
  bool uses = false;    // print uses observing each selected definition
};

/// Renders def-use answers over the index's prebuilt streams. Without
/// defs/uses requested, prints one summary line per stream.
void renderDefUse(const Index& index, const DefUseQuery& query,
                  std::ostream& os);

/// Renders the lookup lines for a plain or qualified name, one per
/// match; "no match for '<name>'" when nothing matches.
void renderLookup(const Index& index, const std::string& name,
                  std::ostream& os);

}  // namespace pdt::query
