// query::Index — the shared, memoized query surface over one database.
//
// Before this layer, every consumer rebuilt its own indexes: pdbtree
// recomputed tree roots per invocation, pdbduct built a private
// id-resolution World, the pdbcheck dataflow rules each re-solved
// reaching definitions per stream, and AnalysisContext derived its call
// graph with no way to share any of it. An Index owns (or borrows) one
// DUCTAPE object graph and memoizes every derived structure behind it:
//
//   roots()     include-tree / class-hierarchy / call-tree roots
//   names()     name -> entity lookup lines (plain and qualified names)
//   defUse()    per-stream CFG + reaching-defs (analysis::DefUseIndex)
//   analysis()  the full AnalysisContext pdbcheck rules run over
//
// Each sub-index is built lazily on first use, at most once
// (std::call_once), and is immutable afterwards — thread-safe once
// published. For concurrent readers (pdbd), call prewarm() once before
// sharing: it forces every sub-index AND the object graph's internal
// lazy state (deferred graph build, cached qualified names), after
// which the whole structure is read-only and lock-free to query.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/context.h"
#include "analysis/du_index.h"
#include "ductape/ductape.h"
#include "pdb/snapshot.h"

namespace pdt::query {

class Index {
 public:
  /// Over an immutable snapshot (pdbd's path). The snapshot is retained;
  /// the object graph is a flat copy sharing its string backings.
  explicit Index(pdb::SnapshotPtr snapshot);

  /// Over an in-memory database (pipelines that built or merged one).
  explicit Index(pdb::PdbFile pdb);

  /// Over a caller-owned object graph (one-shot tools). Borrows `pdb`;
  /// the caller keeps it alive and thread-confined.
  explicit Index(const ductape::PDB& pdb);

  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  /// Null unless constructed from a snapshot.
  [[nodiscard]] const pdb::SnapshotPtr& snapshot() const { return snapshot_; }

  [[nodiscard]] const ductape::PDB& pdb() const { return *pdb_; }

  struct Roots {
    ductape::PDB::filevec includes;
    ductape::PDB::classvec classes;
    ductape::PDB::routinevec calls;
  };
  [[nodiscard]] const Roots& roots() const;

  [[nodiscard]] const analysis::DefUseIndex& defUse() const;
  [[nodiscard]] std::shared_ptr<const analysis::DefUseIndex> defUsePtr() const;

  [[nodiscard]] const analysis::AnalysisContext& analysis() const;

  /// Entities matching a plain or qualified name: one line per match,
  /// "<prefix>#<id> <qualified name>[ @ <location>]", in section order.
  /// Empty when nothing matches.
  [[nodiscard]] std::vector<std::string> lookup(const std::string& name) const;

  /// Forces every sub-index and all lazy state inside the object graph.
  /// Call once (single-threaded) before sharing the Index across
  /// concurrent readers; afterwards every query path is a pure read.
  void prewarm() const;

 private:
  void graphOnce() const;  // forces the DUCTAPE lazy graph build, once
  const std::unordered_map<std::string, std::vector<std::string>>& names()
      const;

  pdb::SnapshotPtr snapshot_;
  std::optional<ductape::PDB> owned_;
  const ductape::PDB* pdb_ = nullptr;

  mutable std::once_flag graph_once_, roots_once_, names_once_, du_once_,
      ctx_once_;
  mutable Roots roots_;
  mutable std::unordered_map<std::string, std::vector<std::string>> names_;
  mutable std::shared_ptr<const analysis::DefUseIndex> du_;
  mutable std::optional<analysis::AnalysisContext> ctx_;
};

}  // namespace pdt::query
