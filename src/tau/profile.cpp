#include "tau/profile.h"

#include <sstream>

#include "support/text.h"

namespace pdt::tau {

std::string ProfileEntry::baseName() const {
  const auto pos = name.rfind(" <");
  return pos == std::string::npos ? name : name.substr(0, pos);
}

std::string ProfileEntry::instantiationType() const {
  const auto pos = name.rfind(" <");
  if (pos == std::string::npos || !name.ends_with('>')) return {};
  return name.substr(pos + 2, name.size() - pos - 3);
}

const ProfileEntry* Profile::find(const std::string& name_substring) const {
  for (const ProfileEntry& e : entries) {
    if (e.name.find(name_substring) != std::string::npos) return &e;
  }
  return nullptr;
}

double Profile::totalExclusiveMs() const {
  double total = 0.0;
  for (const ProfileEntry& e : entries) total += e.exclusive_ms;
  return total;
}

std::optional<Profile> parseProfile(const std::string& text) {
  if (text.find("%Time") == std::string::npos) return std::nullopt;
  Profile profile;
  std::istringstream lines(text);
  std::string line;
  bool in_body = false;
  while (std::getline(lines, line)) {
    if (line.rfind("----", 0) == 0) {
      // The second rule starts the body; the last one ends it.
      in_body = !in_body && profile.entries.empty() ? true : in_body;
      continue;
    }
    if (!in_body) continue;
    if (line.find("%Time") != std::string::npos ||
        line.find("msec") != std::string::npos)
      continue;
    std::istringstream fields(line);
    ProfileEntry entry;
    if (!(fields >> entry.percent_time >> entry.exclusive_ms >>
          entry.inclusive_ms >> entry.calls >> entry.child_calls >>
          entry.usec_per_call)) {
      continue;
    }
    std::string rest;
    std::getline(fields, rest);
    entry.name = std::string(trim(rest));
    if (entry.name.empty()) continue;
    profile.entries.push_back(std::move(entry));
  }
  if (profile.entries.empty()) return std::nullopt;
  return profile;
}

}  // namespace pdt::tau
