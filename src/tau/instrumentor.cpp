#include "tau/instrumentor.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace pdt::tau {

using namespace ductape;

namespace {

bool sameFile(const pdbFile* file, const std::string& name) {
  if (file == nullptr) return false;
  return file->name() == name || file->name().ends_with("/" + name) ||
         name.ends_with("/" + file->name());
}

/// "void (const int &)" + "Stack<int>::push" -> "void Stack<int>::push(const int &)"
std::string profileName(const std::string& full_name, const pdbType* signature) {
  if (signature == nullptr) return full_name + "()";
  const std::string& sig = signature->name();
  const auto paren = sig.find('(');
  if (paren == std::string::npos) return full_name + "()";
  return sig.substr(0, paren) + full_name + sig.substr(paren);
}

}  // namespace

std::vector<ItemRef> planInstrumentation(const PDB& pdb,
                                         const std::string& file_name,
                                         const InstrumentOptions& options) {
  std::vector<ItemRef> itemvec;
  std::set<std::pair<int, int>> seen;  // body positions already planned

  const auto excluded = [&](const std::string& name) {
    for (const std::string& pattern : options.exclude) {
      if (name.find(pattern) != std::string::npos) return true;
    }
    return false;
  };

  const auto plan = [&](const pdbItem* item, bool no_this, const pdbLoc& body,
                        std::string name, std::string signature) {
    if (!body.valid() || !sameFile(body.file(), file_name)) return;
    if (excluded(item->name())) return;
    if (!seen.insert({body.line(), body.col()}).second) return;
    ItemRef ref;
    ref.item = item;
    ref.no_this = no_this;
    ref.line = body.line();
    ref.col = body.col();
    ref.name = std::move(name);
    ref.signature = std::move(signature);
    itemvec.push_back(std::move(ref));
  };

  // Get the list of templates (paper Figure 6).
  PDB::templatevec u = pdb.getTemplateVec();
  for (PDB::templatevec::const_iterator te = u.begin(); te != u.end(); ++te) {
    if (!sameFile((*te)->location().file(), file_name)) continue;
    const pdbItem::templ_t tekind = (*te)->kind();
    if ((tekind == pdbItem::TE_MEMFUNC) || (tekind == pdbItem::TE_STATMEM) ||
        (tekind == pdbItem::TE_FUNC)) {
      // The target helps identify if we need to put a CT(*this) in the type.
      if ((tekind == pdbItem::TE_FUNC) || (tekind == pdbItem::TE_STATMEM)) {
        // There's no parent class. No need to add CT(*this).
        plan(*te, true, (*te)->bodyBegin(), (*te)->fullName() + "()", {});
      } else {
        // It is a member function, so add CT(*this).
        plan(*te, false, (*te)->bodyBegin(), (*te)->fullName() + "()", {});
      }
    }
  }

  // Non-template routines with bodies in this file. Routines instantiated
  // from templates share the template's body and are covered above.
  for (const pdbRoutine* ro : pdb.getRoutineVec()) {
    if (!ro->isDefined() || ro->isTemplate() != nullptr) continue;
    const bool no_this = ro->parentClass() == nullptr || ro->isStatic();
    plan(ro, no_this, ro->bodyBegin(), profileName(ro->fullName(), ro->signature()),
         ro->signature() != nullptr ? ro->signature()->name() : std::string{});
  }

  std::sort(itemvec.begin(), itemvec.end(), [](const ItemRef& a, const ItemRef& b) {
    return a.line != b.line ? a.line < b.line : a.col < b.col;
  });
  return itemvec;
}

std::string instrument(const PDB& pdb, const std::string& file_name,
                       const std::string& source_text,
                       const InstrumentOptions& options) {
  std::vector<ItemRef> plan = planInstrumentation(pdb, file_name, options);

  // Split into lines, preserving content exactly.
  std::vector<std::string> lines;
  {
    std::string current;
    for (const char c : source_text) {
      if (c == '\n') {
        lines.push_back(std::move(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    lines.push_back(std::move(current));
  }

  // Apply insertions bottom-up so earlier positions stay valid.
  for (auto it = plan.rbegin(); it != plan.rend(); ++it) {
    const ItemRef& ref = *it;
    if (ref.line < 1 || static_cast<std::size_t>(ref.line) > lines.size())
      continue;
    std::string& line = lines[static_cast<std::size_t>(ref.line) - 1];
    // ref.col is the 1-based column of the body's '{'.
    std::size_t insert_at = static_cast<std::size_t>(ref.col);
    if (insert_at > line.size()) insert_at = line.size();
    std::ostringstream macro;
    macro << " TAU_PROFILE(\"" << ref.name << "\", "
          << (ref.no_this ? "std::string(\"\")" : "CT(*this)") << ", "
          << options.profile_group << ");";
    line.insert(insert_at, macro.str());
  }

  std::ostringstream out;
  out << "#include \"" << options.runtime_header << "\"\n";
  out << "#include <string>\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out << lines[i];
    if (i + 1 < lines.size()) out << '\n';
  }
  return out.str();
}

}  // namespace pdt::tau
