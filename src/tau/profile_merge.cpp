#include "tau/profile_merge.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>
#include <unordered_map>
#include <utility>

#include "tau_profile_format.h"

namespace pdt::tau {

namespace {

/// Bounds-checked little-endian cursor over a slurped profile file.
class Cursor {
 public:
  Cursor(const std::string& data, std::size_t limit) : data_(data), limit_(limit) {}

  bool u32(std::uint32_t& out) {
    if (pos_ + 4 > limit_) return false;
    out = 0;
    for (int i = 3; i >= 0; --i)
      out = (out << 8) | static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]);
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& out) {
    if (pos_ + 8 > limit_) return false;
    out = 0;
    for (int i = 7; i >= 0; --i)
      out = (out << 8) | static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]);
    pos_ += 8;
    return true;
  }

  bool str(std::string& out) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (pos_ + len > limit_) return false;
    out.assign(data_, pos_, len);
    pos_ += len;
    return true;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  const std::string& data_;
  std::size_t limit_;
  std::size_t pos_ = 0;
};

std::optional<ThreadProfile> fail(std::string* error, const std::string& path,
                                  const std::string& what) {
  if (error != nullptr) *error = path + ": " + what;
  return std::nullopt;
}

/// The routine-name key used to match a TAU display name against PDB ro
/// items: text before the parameter list, last whitespace-separated token
/// (the instrumentor may splice a full signature, "void push(T)").
std::string routineKey(const std::string& name) {
  std::string base = name.substr(0, name.find('('));
  while (!base.empty() && base.back() == ' ') base.pop_back();
  const auto space = base.rfind(' ');
  if (space != std::string::npos) base.erase(0, space + 1);
  return base;
}

void csvField(std::ostream& os, const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) {
    os << text;
    return;
  }
  os << '"';
  for (const char c : text) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

std::optional<ThreadProfile> readThreadProfile(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(error, path, "cannot open");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (data.size() < ::tau::profilefmt::kHeaderSize + 8)
    return fail(error, path, "truncated (not a TAU profile file)");
  for (std::size_t i = 0; i < 8; ++i) {
    if (static_cast<unsigned char>(data[i]) != ::tau::profilefmt::kMagic[i])
      return fail(error, path, "bad magic (not a TAU profile file)");
  }

  const std::size_t body = data.size() - 8;
  std::uint64_t stored = 0;
  for (int i = 7; i >= 0; --i)
    stored = (stored << 8) |
             static_cast<unsigned char>(data[body + static_cast<std::size_t>(i)]);
  if (::tau::profilefmt::checksum(data.data(), body) != stored)
    return fail(error, path, "checksum mismatch (file corrupt or truncated)");

  Cursor cur(data, body);
  ThreadProfile profile;
  std::uint32_t version = 0;
  std::uint64_t records = 0;
  // Skip the magic, then the fixed header fields.
  std::uint32_t magic_lo = 0, magic_hi = 0;
  if (!cur.u32(magic_lo) || !cur.u32(magic_hi)) return fail(error, path, "truncated header");
  if (!cur.u32(version) || !cur.u32(profile.node) || !cur.u32(profile.context) ||
      !cur.u32(profile.thread) || !cur.u64(records))
    return fail(error, path, "truncated header");
  if (version != ::tau::profilefmt::kVersion)
    return fail(error, path,
                "unsupported version " + std::to_string(version) + " (expected " +
                    std::to_string(::tau::profilefmt::kVersion) + ")");

  profile.records.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(records, data.size() / ::tau::profilefmt::kRecordFixedSize)));
  for (std::uint64_t r = 0; r < records; ++r) {
    ThreadProfileRecord rec;
    if (!cur.str(rec.name) || !cur.str(rec.type) || !cur.u32(rec.group) ||
        !cur.u64(rec.calls) || !cur.u64(rec.child_calls) ||
        !cur.u64(rec.inclusive_ns) || !cur.u64(rec.exclusive_ns))
      return fail(error, path,
                  "truncated record " + std::to_string(r + 1) + " of " +
                      std::to_string(records));
    profile.records.push_back(std::move(rec));
  }
  if (cur.pos() != body)
    return fail(error, path, "trailing bytes after last record");
  return profile;
}

std::string MergedEntry::displayName() const {
  if (type.empty()) return name;
  return name + " <" + type + ">";
}

const MergedEntry* MergedProfile::find(const std::string& name_substring) const {
  for (const MergedEntry& e : entries) {
    if (e.displayName().find(name_substring) != std::string::npos) return &e;
  }
  return nullptr;
}

std::uint64_t MergedProfile::totalExclusiveNs() const {
  std::uint64_t total = 0;
  for (const MergedEntry& e : entries) total += e.exclusive_ns;
  return total;
}

MergedProfile mergeThreadProfiles(const std::vector<ThreadProfile>& inputs) {
  struct Accum {
    MergedEntry entry;
    std::set<std::uint64_t> contexts;  // (node << 32 | context) pairs
  };
  // Keyed by name + '\x1f' + type; the final sort makes iteration order
  // irrelevant, and every accumulation is a commutative sum, so input
  // order cannot leak into the result.
  std::unordered_map<std::string, Accum> by_key;
  std::set<std::uint64_t> all_contexts;

  for (const ThreadProfile& tp : inputs) {
    const std::uint64_t ctx_key =
        (static_cast<std::uint64_t>(tp.node) << 32) | tp.context;
    all_contexts.insert(ctx_key);
    for (const ThreadProfileRecord& rec : tp.records) {
      Accum& acc = by_key[rec.name + '\x1f' + rec.type];
      MergedEntry& e = acc.entry;
      if (e.threads == 0) {
        e.name = rec.name;
        e.type = rec.type;
        e.group = rec.group;
      }
      e.calls += rec.calls;
      e.child_calls += rec.child_calls;
      e.inclusive_ns += rec.inclusive_ns;
      e.exclusive_ns += rec.exclusive_ns;
      e.threads += 1;
      acc.contexts.insert(ctx_key);
    }
  }

  MergedProfile merged;
  merged.thread_files = static_cast<std::uint32_t>(inputs.size());
  merged.context_count = static_cast<std::uint32_t>(all_contexts.size());
  merged.entries.reserve(by_key.size());
  for (auto& [key, acc] : by_key) {
    acc.entry.contexts = static_cast<std::uint32_t>(acc.contexts.size());
    merged.entries.push_back(std::move(acc.entry));
  }
  std::sort(merged.entries.begin(), merged.entries.end(),
            [](const MergedEntry& a, const MergedEntry& b) {
              if (a.exclusive_ns != b.exclusive_ns)
                return a.exclusive_ns > b.exclusive_ns;
              if (a.name != b.name) return a.name < b.name;
              return a.type < b.type;
            });
  return merged;
}

void renderMergedProfile(const MergedProfile& merged, std::ostream& os) {
  os << "# tauprof: " << merged.thread_files << " thread profile"
     << (merged.thread_files == 1 ? "" : "s") << ", " << merged.context_count
     << " context" << (merged.context_count == 1 ? "" : "s") << '\n';
  os << "------------------------------------------------------------------------------------------------\n";
  os << "%Time    Exclusive    Inclusive       #Call      #Subrs  Thr  Ctx  Inclusive Name\n";
  os << "              msec         msec                                    usec/call\n";
  os << "------------------------------------------------------------------------------------------------\n";
  const std::uint64_t total_excl = merged.totalExclusiveNs();
  for (const MergedEntry& e : merged.entries) {
    const double pct =
        total_excl == 0 ? 0.0
                        : 100.0 * static_cast<double>(e.exclusive_ns) /
                              static_cast<double>(total_excl);
    const double excl_ms = static_cast<double>(e.exclusive_ns) / 1e6;
    const double incl_ms = static_cast<double>(e.inclusive_ns) / 1e6;
    const double usec_per_call =
        e.calls == 0 ? 0.0
                     : static_cast<double>(e.inclusive_ns) / 1e3 /
                           static_cast<double>(e.calls);
    os << std::fixed << std::setprecision(1) << std::setw(5) << pct << ' '
       << std::setw(12) << excl_ms << ' ' << std::setw(12) << incl_ms << ' '
       << std::setw(11) << e.calls << ' ' << std::setw(11) << e.child_calls
       << ' ' << std::setw(4) << e.threads << ' ' << std::setw(4) << e.contexts
       << ' ' << std::setw(10) << std::setprecision(0) << usec_per_call << "  "
       << e.displayName() << '\n';
  }
  os << "------------------------------------------------------------------------------------------------\n";
}

void renderMergedCsv(const MergedProfile& merged, std::ostream& os) {
  os << "name,type,group,calls,child_calls,inclusive_ns,exclusive_ns,threads,contexts\n";
  for (const MergedEntry& e : merged.entries) {
    csvField(os, e.name);
    os << ',';
    csvField(os, e.type);
    os << ',' << e.group << ',' << e.calls << ',' << e.child_calls << ','
       << e.inclusive_ns << ',' << e.exclusive_ns << ',' << e.threads << ','
       << e.contexts << '\n';
  }
}

std::size_t attachDynProfSection(const MergedProfile& merged,
                                 pdb::PdbFile& pdb) {
  // Routine name -> lowest ro id, so name collisions resolve the same way
  // on every run.
  std::unordered_map<std::string_view, std::uint32_t> by_name;
  for (const pdb::RoutineItem& r : pdb.routines()) {
    const auto [it, inserted] = by_name.emplace(r.name, r.id);
    if (!inserted && r.id < it->second) it->second = r.id;
  }

  std::size_t linked = 0;
  for (const MergedEntry& e : merged.entries) {
    pdb::DynProfItem item;
    item.name = pdb.own(e.displayName());
    item.calls = e.calls;
    item.child_calls = e.child_calls;
    item.inclusive_ns = e.inclusive_ns;
    item.exclusive_ns = e.exclusive_ns;
    item.threads = e.threads;
    item.contexts = e.contexts;
    const std::string key = routineKey(e.name);
    auto it = by_name.find(std::string_view(key));
    if (it == by_name.end()) {
      // Qualified entry ("Stack::push") against an unqualified ro name.
      const auto sep = key.rfind("::");
      if (sep != std::string::npos)
        it = by_name.find(std::string_view(key).substr(sep + 2));
    }
    if (it != by_name.end()) {
      item.routine = it->second;
      ++linked;
    }
    pdb.addDynProf(std::move(item));
  }
  return linked;
}

}  // namespace pdt::tau
