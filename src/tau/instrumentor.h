// TAU source instrumentor (paper §4.1, Figure 6).
//
// Iterates through the PDB descriptions of functions and templates and
// rewrites the original source, annotating routine bodies with TAU
// measurement macros. Template handling follows Figure 6 exactly:
// member function templates get CT(*this) so the run-time type of the
// object names the instantiation uniquely; function and static member
// templates (no parent object) do not.
#pragma once

#include <string>
#include <vector>

#include "ductape/ductape.h"

namespace pdt::tau {

struct InstrumentOptions {
  /// Header inserted at the top of the rewritten file.
  std::string runtime_header = "TAU.h";
  /// Profile group argument passed to TAU_PROFILE.
  std::string profile_group = "TAU_DEFAULT";
  /// Routines whose name contains any of these substrings are not
  /// instrumented — selective instrumentation, the standard mitigation
  /// for the per-call overhead on tiny routines (see EXPERIMENTS.md F7).
  std::vector<std::string> exclude;
};

/// One planned instrumentation site (exposed for tests; mirrors the
/// itemRef vector built in paper Figure 6).
struct ItemRef {
  const ductape::pdbItem* item = nullptr;
  /// True when no CT(*this) is needed (TE_FUNC / TE_STATMEM / free
  /// routines); false for member functions (Figure 6's boolean).
  bool no_this = true;
  int line = 0;  // 1-based position of the body's opening '{'
  int col = 0;
  std::string name;       // profile name, e.g. "Stack::push()"
  std::string signature;  // rendered signature for the profile name
};

/// Collects the instrumentation plan for `file_name` from the PDB:
/// function/member/static-member templates (Figure 6) plus defined
/// non-template routines. Sorted by source location.
[[nodiscard]] std::vector<ItemRef> planInstrumentation(
    const ductape::PDB& pdb, const std::string& file_name,
    const InstrumentOptions& options = {});

/// Rewrites `source_text` (contents of `file_name`), inserting a
/// TAU_PROFILE macro at the start of every planned body, plus the
/// runtime #include at the top. The original line structure is
/// preserved (insertions are within-line) so diagnostics still map.
[[nodiscard]] std::string instrument(const ductape::PDB& pdb,
                                     const std::string& file_name,
                                     const std::string& source_text,
                                     const InstrumentOptions& options = {});

}  // namespace pdt::tau
