// tau_instr: the TAU instrumentor driver. Reads a PDB and a source file,
// writes the instrumented source (paper §4.1).
//
//   tau_instr <file.pdb> <source> [-o out] [--group NAME]
//             [--exclude SUBSTRING]...   (selective instrumentation)
#include <fstream>
#include <iostream>
#include <sstream>

#include "tau/instrumentor.h"

int main(int argc, char** argv) {
  std::string pdb_path;
  std::string source_path;
  std::string out_path;
  pdt::tau::InstrumentOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--group" && i + 1 < argc) {
      options.profile_group = argv[++i];
    } else if (arg == "--exclude" && i + 1 < argc) {
      options.exclude.emplace_back(argv[++i]);
    } else if (pdb_path.empty()) {
      pdb_path = arg;
    } else if (source_path.empty()) {
      source_path = arg;
    } else {
      std::cerr << "tau_instr: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (pdb_path.empty() || source_path.empty()) {
    std::cerr << "usage: tau_instr <file.pdb> <source> [-o out] [--group NAME] "
                 "[--exclude SUBSTRING]...\n";
    return 2;
  }

  const pdt::ductape::PDB pdb = pdt::ductape::PDB::read(pdb_path);
  if (!pdb.valid()) {
    std::cerr << "tau_instr: " << pdb.errorMessage() << '\n';
    return 1;
  }
  std::ifstream in(source_path);
  if (!in) {
    std::cerr << "tau_instr: cannot open '" << source_path << "'\n";
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  const std::string rewritten =
      pdt::tau::instrument(pdb, source_path, ss.str(), options);
  if (out_path.empty()) {
    std::cout << rewritten;
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "tau_instr: cannot write '" << out_path << "'\n";
      return 1;
    }
    out << rewritten;
  }
  return 0;
}
