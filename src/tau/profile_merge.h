// Cross-process profile merge: reads the TAU runtime's binary per-thread
// profile files (profile.<node>.<context>.<thread>, format in
// runtime/tau/tau_profile_format.h), aggregates them into one profile, and
// can attach the result to a program database as a dp section so that
// static structure and measured cost join up (tauprof, pdbtree --profile).
//
// Merging is deterministic: counts are summed (commutative) and entries
// are sorted by exclusive time with name tie-breaks, so the output is
// byte-identical regardless of input file order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "pdb/pdb.h"

namespace pdt::tau {

/// One routine's totals inside a single thread's profile file.
struct ThreadProfileRecord {
  std::string name;  // routine name, e.g. "push()"
  std::string type;  // template instantiation, e.g. "Stack<int>" ("" = none)
  std::uint32_t group = 0;
  std::uint64_t calls = 0;
  std::uint64_t child_calls = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t exclusive_ns = 0;
};

/// The decoded contents of one profile.<node>.<context>.<thread> file.
struct ThreadProfile {
  std::uint32_t node = 0;
  std::uint32_t context = 0;
  std::uint32_t thread = 0;
  std::vector<ThreadProfileRecord> records;
};

/// Reads and checksums one binary thread-profile file. On failure returns
/// nullopt and, when `error` is non-null, stores a one-line diagnostic.
[[nodiscard]] std::optional<ThreadProfile> readThreadProfile(
    const std::string& path, std::string* error = nullptr);

/// One routine aggregated across every input thread profile.
struct MergedEntry {
  std::string name;
  std::string type;
  std::uint32_t group = 0;
  std::uint64_t calls = 0;
  std::uint64_t child_calls = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t exclusive_ns = 0;
  std::uint32_t threads = 0;   ///< thread profiles containing this routine
  std::uint32_t contexts = 0;  ///< distinct (node, context) pairs among them

  /// The TAU display name: "push() <Stack<int>>", or just the name.
  [[nodiscard]] std::string displayName() const;
};

struct MergedProfile {
  /// Sorted: exclusive time desc, then display name, so rendering the
  /// same inputs in any order produces identical bytes.
  std::vector<MergedEntry> entries;
  std::uint32_t thread_files = 0;   ///< input files merged
  std::uint32_t context_count = 0;  ///< distinct (node, context) pairs seen

  [[nodiscard]] const MergedEntry* find(const std::string& name_substring) const;
  [[nodiscard]] std::uint64_t totalExclusiveNs() const;
};

/// Aggregates thread profiles; input order does not affect the result.
[[nodiscard]] MergedProfile mergeThreadProfiles(
    const std::vector<ThreadProfile>& inputs);

/// Renders the aggregate report: the runtime's Figure-7 layout plus #Thr
/// and #Ctx columns showing how many thread profiles / processes
/// contributed to each row.
void renderMergedProfile(const MergedProfile& merged, std::ostream& os);

/// Machine-readable form, one "name,type,group,calls,child_calls,
/// inclusive_ns,exclusive_ns,threads,contexts" row per entry (header
/// first; name/type quoted when they contain commas or quotes).
void renderMergedCsv(const MergedProfile& merged, std::ostream& os);

/// Appends one dp item per merged entry to `pdb`, linking each to a ro
/// item when a routine with a matching name exists (lowest id wins when
/// names collide). Returns how many entries were linked.
std::size_t attachDynProfSection(const MergedProfile& merged,
                                 pdb::PdbFile& pdb);

}  // namespace pdt::tau
