// Parser for the TAU runtime's profile reports (the textual form of
// paper Figure 7). Lets tools and tests consume measured profiles
// programmatically — the role TAU's pprof plays in the paper's workflow.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace pdt::tau {

struct ProfileEntry {
  double percent_time = 0.0;
  double exclusive_ms = 0.0;
  double inclusive_ms = 0.0;
  long long calls = 0;
  long long child_calls = 0;
  double usec_per_call = 0.0;
  std::string name;  // display name, possibly with "<Type>" suffix

  /// The routine name without the instantiation type suffix.
  [[nodiscard]] std::string baseName() const;
  /// The "<Type>" instantiation suffix, or "" when not a template entry.
  [[nodiscard]] std::string instantiationType() const;
};

struct Profile {
  std::vector<ProfileEntry> entries;  // report order: exclusive-time desc

  [[nodiscard]] const ProfileEntry* find(const std::string& name_substring) const;
  [[nodiscard]] double totalExclusiveMs() const;
};

/// Parses a report produced by tau::report / writeProfileFile.
/// Returns nullopt when the text is not a TAU profile.
[[nodiscard]] std::optional<Profile> parseProfile(const std::string& text);

}  // namespace pdt::tau
