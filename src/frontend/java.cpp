#include "frontend/java.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <vector>

#include "support/text.h"

namespace pdt::frontend {
namespace {

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

/// Splits a declaration head into whitespace words, dropping an inline
/// "// comment" tail.
std::vector<std::string> words(std::string_view line) {
  if (const auto slash = line.find("//"); slash != std::string_view::npos)
    line = line.substr(0, slash);
  std::vector<std::string> out;
  for (const auto w : splitWhitespace(line)) out.emplace_back(w);
  return out;
}

bool isModifier(const std::string& w) {
  return w == "public" || w == "private" || w == "protected" || w == "static" ||
         w == "final" || w == "abstract" || w == "synchronized" ||
         w == "native" || w == "transient" || w == "volatile";
}

}  // namespace

pdb::PdbFile analyzeJava(const std::string& file_name,
                         const std::string& source) {
  pdb::PdbFile out;
  pdb::SourceFileItem file;
  file.name = out.own(file_name);
  const std::uint32_t file_id = out.addSourceFile(std::move(file));

  std::uint32_t package_id = 0;  // na item for the package, if any
  std::unordered_map<std::string, std::uint32_t> class_by_name;

  struct OpenClass {
    std::uint32_t id = 0;
    int depth = 0;  // brace depth at which the class body opened
    std::vector<std::pair<std::string, pdb::Pos>> pending_bases;
  };
  std::vector<OpenClass> class_stack;

  struct OpenMethod {
    std::uint32_t id = 0;
    int depth = 0;
  };
  std::vector<OpenMethod> method_stack;
  // (class name, base name) edges resolved after the scan.
  std::vector<std::pair<std::uint32_t, std::string>> base_edges;

  int depth = 0;
  const auto lines = split(source, '\n');
  for (std::uint32_t line_no = 1; line_no <= lines.size(); ++line_no) {
    std::string_view raw = lines[line_no - 1];
    const std::string_view trimmed = trim(raw);
    const std::uint32_t col =
        trimmed.empty()
            ? 1
            : static_cast<std::uint32_t>(raw.find_first_not_of(" \t")) + 1;
    const pdb::Pos here{file_id, line_no, col};
    const auto ws = words(trimmed);

    // Package declaration -> namespace.
    if (!ws.empty() && ws[0] == "package" && ws.size() >= 2) {
      pdb::NamespaceItem ns;
      std::string pkg = ws[1];
      if (!pkg.empty() && pkg.back() == ';') pkg.pop_back();
      ns.name = out.own(std::move(pkg));
      ns.location = here;
      package_id = out.addNamespace(std::move(ns));
    }

    // Class / interface declaration.
    std::size_t kw = 0;
    while (kw < ws.size() && isModifier(ws[kw])) ++kw;
    if (kw < ws.size() && (ws[kw] == "class" || ws[kw] == "interface") &&
        kw + 1 < ws.size()) {
      pdb::ClassItem cls;
      std::string cls_name = ws[kw + 1];
      while (!cls_name.empty() && !isIdentChar(cls_name.back()))
        cls_name.pop_back();
      cls.name = out.own(cls_name);
      cls.kind = ws[kw] == "interface" ? "interface" : "class";
      cls.location = here;
      cls.extent.body_begin = here;
      if (package_id != 0)
        cls.parent = pdb::ItemRef{pdb::ItemKind::Namespace, package_id};
      const std::uint32_t id = out.addClass(std::move(cls));
      class_by_name[std::move(cls_name)] = id;
      if (package_id != 0) {
        for (auto& ns : out.namespaces()) {
          if (ns.id == package_id)
            ns.members.push_back({pdb::ItemKind::Class, id});
        }
      }
      // extends / implements clauses on the same line.
      for (std::size_t i = kw + 2; i + 1 < ws.size() + 1 && i < ws.size(); ++i) {
        if (ws[i] == "extends" || ws[i] == "implements") {
          for (std::size_t j = i + 1; j < ws.size(); ++j) {
            if (ws[j] == "implements" || ws[j] == "{") break;
            std::string base = ws[j];
            std::erase(base, ',');
            std::erase(base, '{');
            if (!base.empty() && base != "extends") base_edges.emplace_back(id, base);
          }
        }
      }
      class_stack.push_back({id, depth + 1, {}});
    } else if (!class_stack.empty() && method_stack.empty() &&
               depth == class_stack.back().depth && ws.size() >= 2 &&
               trimmed.find('(') != std::string_view::npos &&
               trimmed.find('=') == std::string_view::npos) {
      // Method: "[modifiers] ReturnType name(args) {" — or, ending in
      // ';', an abstract/interface method declaration.
      std::size_t m = 0;
      std::string_view access = "NA";
      bool is_static = false;
      bool is_abstract = false;
      while (m < ws.size() && isModifier(ws[m])) {
        if (ws[m] == "public") access = "pub";
        if (ws[m] == "private") access = "priv";
        if (ws[m] == "protected") access = "prot";
        if (ws[m] == "static") is_static = true;
        if (ws[m] == "abstract") is_abstract = true;
        ++m;
      }
      // The method name is the word containing '('.
      std::string name;
      for (std::size_t i = m; i < ws.size(); ++i) {
        if (const auto paren = ws[i].find('('); paren != std::string::npos) {
          name = ws[i].substr(0, paren);
          break;
        }
      }
      if (!name.empty() &&
          std::isalpha(static_cast<unsigned char>(name[0]))) {
        pdb::RoutineItem r;
        r.name = out.own(name);
        r.location = here;
        r.access = access;
        r.is_static = is_static;
        r.linkage = "Java";
        // Constructors share the class name.
        if (!class_stack.empty()) {
          const auto* cls = out.findClass(class_stack.back().id);
          if (cls != nullptr && cls->name == name) r.kind = "ctor";
          r.parent = pdb::ItemRef{pdb::ItemKind::Class, class_stack.back().id};
        }
        r.virtuality = is_abstract ? "pure" : "no";
        r.defined = trimmed.find('{') != std::string_view::npos;
        r.extent.header_begin = here;
        r.extent.body_begin = here;
        const std::uint32_t id = out.addRoutine(std::move(r));
        for (auto& cls : out.classes()) {
          if (cls.id == class_stack.back().id)
            cls.funcs.push_back({id, here});
        }
        if (out.routines().back().defined)
          method_stack.push_back({id, depth + 1});
      }
    } else if (!class_stack.empty() && method_stack.empty() &&
               depth == class_stack.back().depth && ws.size() >= 2 &&
               trimmed.ends_with(";") &&
               trimmed.find('(') == std::string_view::npos) {
      // Field declaration: "[modifiers] Type name [= init];".
      std::size_t m = 0;
      std::string_view access = "NA";
      while (m < ws.size() && isModifier(ws[m])) {
        if (ws[m] == "public") access = "pub";
        if (ws[m] == "private") access = "priv";
        if (ws[m] == "protected") access = "prot";
        ++m;
      }
      if (m + 1 < ws.size()) {
        pdb::ClassItem::Member member;
        std::string member_name = ws[m + 1];
        while (!member_name.empty() && !isIdentChar(member_name.back()))
          member_name.pop_back();
        member.name = out.own(std::move(member_name));
        member.location = here;
        member.access = access;
        member.kind = "var";
        for (auto& cls : out.classes()) {
          if (cls.id == class_stack.back().id && !member.name.empty())
            cls.members.push_back(member);
        }
      }
    }

    // Track brace depth; close methods and classes as their braces close.
    for (const char c : trimmed) {
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        if (!method_stack.empty() && depth < method_stack.back().depth) {
          for (auto& r : out.routines()) {
            if (r.id == method_stack.back().id) r.extent.body_end = here;
          }
          method_stack.pop_back();
        }
        if (!class_stack.empty() && depth < class_stack.back().depth) {
          for (auto& cls : out.classes()) {
            if (cls.id == class_stack.back().id) cls.extent.body_end = here;
          }
          class_stack.pop_back();
        }
      }
    }
  }

  // Resolve extends/implements edges by name.
  for (const auto& [cls_id, base_name] : base_edges) {
    const auto it = class_by_name.find(base_name);
    if (it == class_by_name.end()) continue;
    for (auto& cls : out.classes()) {
      if (cls.id != cls_id) continue;
      pdb::ClassItem::Base base;
      base.cls = it->second;
      base.access = "pub";
      cls.bases.push_back(base);
    }
  }
  out.reindex();
  return out;
}

}  // namespace pdt::frontend
