#include "frontend/f90.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <vector>

#include "support/text.h"

namespace pdt::frontend {
namespace {

std::string lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

/// First identifier in `text` ([a-z_][a-z0-9_]*), or "".
std::string firstIdent(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  const std::size_t start = i;
  while (i < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '_'))
    ++i;
  return std::string(text.substr(start, i - start));
}

}  // namespace

pdb::PdbFile analyzeFortran(const std::string& file_name,
                            const std::string& source) {
  pdb::PdbFile out;
  pdb::SourceFileItem file;
  file.name = out.own(file_name);
  const std::uint32_t file_id = out.addSourceFile(std::move(file));

  struct OpenRoutine {
    std::uint32_t id = 0;
    std::vector<std::pair<std::string, pdb::Pos>> calls;  // resolved later
  };
  std::vector<OpenRoutine> routine_stack;
  std::vector<std::uint32_t> module_stack;  // na ids
  std::uint32_t open_type = 0;              // cl id of the open derived type

  std::unordered_map<std::string, std::uint32_t> routine_by_name;
  std::vector<std::pair<std::uint32_t, std::vector<std::pair<std::string, pdb::Pos>>>>
      pending_calls;

  const auto lines = split(source, '\n');
  for (std::uint32_t line_no = 1; line_no <= lines.size(); ++line_no) {
    std::string_view raw = lines[line_no - 1];
    // Strip comments ('!' to end of line) and leading blanks.
    if (const auto bang = raw.find('!'); bang != std::string_view::npos)
      raw = raw.substr(0, bang);
    const std::string_view trimmed = trim(raw);
    if (trimmed.empty()) continue;
    const std::string text = lower(trimmed);
    const std::uint32_t col =
        static_cast<std::uint32_t>(raw.find_first_not_of(" \t")) + 1;
    const pdb::Pos here{file_id, line_no, col};

    const auto startRoutine = [&](std::string_view keyword, bool is_function) {
      std::string name = firstIdent(text.substr(keyword.size()));
      if (name.empty()) return;
      pdb::RoutineItem r;
      r.name = out.own(name);
      r.location = here;
      r.kind = "routine";
      r.linkage = is_function ? "F90-function" : "F90-subroutine";
      r.defined = true;
      r.extent.header_begin = here;
      r.extent.body_begin = here;
      if (!module_stack.empty())
        r.parent = pdb::ItemRef{pdb::ItemKind::Namespace, module_stack.back()};
      const std::uint32_t id = out.addRoutine(std::move(r));
      routine_by_name[name] = id;
      routine_stack.push_back({id, {}});
      if (!module_stack.empty()) {
        for (auto& ns : out.namespaces()) {
          if (ns.id == module_stack.back())
            ns.members.push_back({pdb::ItemKind::Routine, id});
        }
      }
    };

    if (startsWith(text, "module ") && !startsWith(text, "module procedure")) {
      pdb::NamespaceItem ns;
      ns.name = out.own(firstIdent(text.substr(7)));
      ns.location = here;
      module_stack.push_back(out.addNamespace(std::move(ns)));
    } else if (startsWith(text, "end module")) {
      if (!module_stack.empty()) module_stack.pop_back();
    } else if (startsWith(text, "type ") || startsWith(text, "type::") ||
               startsWith(text, "type ::")) {
      // Derived type -> class (paper §6 mapping). "type(" is a variable
      // declaration, not a definition.
      std::string_view rest = text;
      rest.remove_prefix(4);
      while (!rest.empty() && (rest.front() == ' ' || rest.front() == ':'))
        rest.remove_prefix(1);
      const std::string name = firstIdent(rest);
      if (!name.empty() && text.find("type(") != 0) {
        pdb::ClassItem cls;
        cls.name = out.own(name);
        cls.kind = "struct";
        cls.location = here;
        if (!module_stack.empty())
          cls.parent = pdb::ItemRef{pdb::ItemKind::Namespace, module_stack.back()};
        open_type = out.addClass(std::move(cls));
      }
    } else if (startsWith(text, "end type")) {
      if (open_type != 0) {
        for (auto& cls : out.classes()) {
          if (cls.id == open_type) cls.extent.body_end = here;
        }
        open_type = 0;
      }
    } else if (open_type != 0 && text.find("::") != std::string::npos) {
      // Component declaration inside a derived type: "real :: x".
      const auto sep = trimmed.find("::");
      pdb::ClassItem::Member m;
      m.name = out.own(firstIdent(std::string_view(trimmed).substr(sep + 2)));
      m.location = here;
      m.kind = "var";
      for (auto& cls : out.classes()) {
        if (cls.id == open_type && !m.name.empty()) cls.members.push_back(m);
      }
    } else if (startsWith(text, "subroutine ")) {
      startRoutine("subroutine ", false);
    } else if (text.find("function ") != std::string::npos &&
               !startsWith(text, "end")) {
      // "integer function foo(...)" or "function foo(...)".
      const auto pos = text.find("function ");
      std::string name = firstIdent(text.substr(pos + 9));
      if (!name.empty()) {
        const std::string_view keyword = "function ";
        (void)keyword;
        pdb::RoutineItem r;
        r.name = out.own(name);
        r.location = here;
        r.kind = "routine";
        r.linkage = "F90-function";
        r.defined = true;
        r.extent.header_begin = here;
        if (!module_stack.empty())
          r.parent = pdb::ItemRef{pdb::ItemKind::Namespace, module_stack.back()};
        const std::uint32_t id = out.addRoutine(std::move(r));
        routine_by_name[name] = id;
        routine_stack.push_back({id, {}});
        if (!module_stack.empty()) {
          for (auto& ns : out.namespaces()) {
            if (ns.id == module_stack.back())
              ns.members.push_back({pdb::ItemKind::Routine, id});
          }
        }
      }
    } else if (startsWith(text, "end subroutine") ||
               startsWith(text, "end function")) {
      // TAU needs exit locations (paper §6): record the body end.
      if (!routine_stack.empty()) {
        for (auto& r : out.routines()) {
          if (r.id == routine_stack.back().id) r.extent.body_end = here;
        }
        pending_calls.emplace_back(routine_stack.back().id,
                                   std::move(routine_stack.back().calls));
        routine_stack.pop_back();
      }
    } else if (startsWith(text, "call ")) {
      if (!routine_stack.empty()) {
        const std::string callee = firstIdent(text.substr(5));
        if (!callee.empty())
          routine_stack.back().calls.emplace_back(callee, here);
      }
    }
  }

  // Resolve call edges by name (one pass: callees may be defined later).
  for (auto& [caller_id, calls] : pending_calls) {
    for (auto& routine : out.routines()) {
      if (routine.id != caller_id) continue;
      for (const auto& [callee, pos] : calls) {
        const auto it = routine_by_name.find(callee);
        if (it == routine_by_name.end()) continue;
        routine.calls.push_back({it->second, false, pos});
      }
    }
  }
  out.reindex();
  return out;
}

}  // namespace pdt::frontend
