// Frontend driver: preprocess + parse + semantic analysis in one call —
// the reproduction's stand-in for the EDG C++ Front End (DESIGN.md §2).
// Produces the IL tree (AstContext) that the IL Analyzer consumes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ast/context.h"
#include "lex/preprocessor.h"
#include "sema/sema.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace pdt::frontend {

struct FrontendOptions {
  std::vector<std::string> include_dirs;
  std::vector<std::pair<std::string, std::string>> defines;  // -Dname=value
  sema::SemaOptions sema;
};

/// The result of compiling one translation unit: the IL plus the
/// preprocessor-level records the IL Analyzer needs.
class CompileResult {
 public:
  CompileResult();
  ~CompileResult();
  CompileResult(CompileResult&&) noexcept;
  CompileResult& operator=(CompileResult&&) noexcept;

  std::unique_ptr<ast::AstContext> ast;
  std::unique_ptr<sema::Sema> sema;
  std::vector<lex::MacroRecord> macros;
  std::vector<lex::IncludeEdge> includes;
  std::vector<FileId> files;  // in first-seen order, main file first
  FileId main_file;
  bool success = false;
};

class Frontend {
 public:
  Frontend(SourceManager& sm, DiagnosticEngine& diags, FrontendOptions options = {});

  /// Compiles the file at `path` (disk or previously registered virtual
  /// file). Diagnostics accumulate in the engine; `success` is false when
  /// errors occurred.
  CompileResult compileFile(const std::string& path);

  /// Convenience for tests: registers `source` as a virtual file named
  /// `name` and compiles it.
  CompileResult compileSource(const std::string& name, const std::string& source);

 private:
  CompileResult compile(FileId main_file);

  SourceManager& sm_;
  DiagnosticEngine& diags_;
  FrontendOptions options_;
};

}  // namespace pdt::frontend
