// Fortran 90 IL Analyzer stub (paper §6 future work).
//
// The paper plans multi-language support: "Fortran derived types and
// modules will correspond to C++ classes/structs/unions, while Fortran
// interfaces will correspond to routines"; TAU needs routine entry/exit
// locations. This line-oriented scanner demonstrates the claim: it emits
// the same PDB format from Fortran 90 sources — modules as namespaces,
// derived types as classes, subroutines/functions as routines with
// positions and static call edges — so every DUCTAPE tool works on
// Fortran programs unchanged.
#pragma once

#include <string>

#include "pdb/pdb.h"

namespace pdt::frontend {

/// Scans Fortran 90 source text and produces a program database.
/// Recognized constructs: module/end module, contains, subroutine/
/// function (+end), type :: name / end type, call statements, use.
[[nodiscard]] pdb::PdbFile analyzeFortran(const std::string& file_name,
                                          const std::string& source);

}  // namespace pdt::frontend
