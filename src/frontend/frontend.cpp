#include "frontend/frontend.h"

#include "parse/parser.h"
#include "support/trace.h"

namespace pdt::frontend {

CompileResult::CompileResult() = default;
CompileResult::~CompileResult() = default;
CompileResult::CompileResult(CompileResult&&) noexcept = default;
CompileResult& CompileResult::operator=(CompileResult&&) noexcept = default;

Frontend::Frontend(SourceManager& sm, DiagnosticEngine& diags,
                   FrontendOptions options)
    : sm_(sm), diags_(diags), options_(std::move(options)) {
  for (const std::string& dir : options_.include_dirs) sm_.addSearchDir(dir);
}

CompileResult Frontend::compileFile(const std::string& path) {
  const auto file = sm_.loadFile(path);
  if (!file) {
    diags_.error({}, "cannot open input file '" + path + "'");
    CompileResult result;
    result.success = false;
    return result;
  }
  return compile(*file);
}

CompileResult Frontend::compileSource(const std::string& name,
                                      const std::string& source) {
  return compile(sm_.addVirtualFile(name, source));
}

CompileResult Frontend::compile(FileId main_file) {
  const std::size_t errors_before = diags_.errorCount();
  // Phase spans carry the TU path as their detail, which is what groups
  // them into --stats per-TU rows (trace::StatsReport). Copied, not a
  // reference: loading included files can reallocate the SourceManager's
  // file table out from under it.
  const std::string tu = sm_.name(main_file);

  lex::Preprocessor pp(sm_, diags_);
  std::vector<lex::Token> tokens;
  {
    PDT_TRACE_SCOPE("frontend.lex", tu);
    for (const auto& [name, value] : options_.defines)
      pp.predefineMacro(name, value);
    pp.enterMainFile(main_file);
    for (lex::Token t = pp.next(); !t.isEnd(); t = pp.next())
      tokens.push_back(t);
    trace::count(trace::Counter::LexTokens, tokens.size());
    trace::count(trace::Counter::LexArenaBytes, pp.arena().bytesUsed());
  }

  CompileResult result;
  result.ast = std::make_unique<ast::AstContext>();
  result.sema = std::make_unique<sema::Sema>(*result.ast, sm_, diags_,
                                             options_.sema);
  {
    PDT_TRACE_SCOPE("frontend.parse", tu);
    parse::Parser parser(*result.sema, sm_, diags_, std::move(tokens));
    parser.parseTranslationUnit();
  }
  {
    PDT_TRACE_SCOPE("sema.finalize", tu);
    result.sema->finalize();
  }

  result.macros = pp.macroRecords();
  result.includes = pp.includeEdges();
  result.files = pp.filesSeen();
  result.main_file = main_file;
  result.success = diags_.errorCount() == errors_before;
  return result;
}

}  // namespace pdt::frontend
