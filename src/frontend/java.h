// Java IL Analyzer stub (paper §6 future work).
//
// The paper plans a Java IL Analyzer "based on EDG's Java Front End, with
// the PDB and DUCTAPE enhanced to accommodate Java's constructs". This
// line-oriented scanner demonstrates the uniform-database claim for the
// third language: packages become namespaces, classes and interfaces
// become cl items (with extends/implements as base-class edges), methods
// become routines with entry/exit positions and modifiers, fields become
// class members — all through the unchanged PDB/DUCTAPE stack.
#pragma once

#include <string>

#include "pdb/pdb.h"

namespace pdt::frontend {

/// Scans Java source text and produces a program database. Recognized:
/// package, class/interface (+extends/implements), methods with
/// modifiers (public/private/protected/static/abstract/final), fields.
[[nodiscard]] pdb::PdbFile analyzeJava(const std::string& file_name,
                                       const std::string& source);

}  // namespace pdt::frontend
