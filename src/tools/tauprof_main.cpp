// tauprof: merges TAU per-thread binary profile files (written by the
// measurement runtime as profile.<node>.<context>.<thread>) into one
// aggregate report — the cross-process role pprof plays in the paper's
// workflow — and can attach the merged dynamic profile to a program
// database as a dp section so pdbtree/pdbduct join static structure with
// measured cost.
//
// The merge is deterministic: the same input files produce byte-identical
// output regardless of argument order.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "pdb/snapshot.h"
#include "pdb/validate.h"
#include "tau/profile_merge.h"

namespace {

constexpr const char* kUsage =
    "usage: tauprof <profile.N.C.T>... [options]\n"
    "  -o FILE          write the merged report to FILE (default: stdout)\n"
    "  --format=FMT     report format: text (default) | csv\n"
    "  --pdb IN.pdb     link merged entries against IN.pdb's routines\n"
    "  --db-out FILE    write the database (IN.pdb when --pdb is given,\n"
    "                   else a fresh one) with the merged profile attached\n"
    "                   as a dp section\n"
    "  --db-format=FMT  database format for --db-out: ascii (default) | bin\n"
    "  --mmap=MODE      --pdb input mapping: auto (default), on, off\n"
    "exit codes: 0 ok, 2 usage error, 3 invalid input\n";

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string report_out;
  std::string report_format = "text";
  std::string pdb_in;
  std::string db_out;
  pdt::pdb::Format db_format = pdt::pdb::Format::Ascii;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      report_out = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      report_format = arg.substr(9);
      if (report_format != "text" && report_format != "csv") {
        std::cerr << "tauprof: unknown format '" << report_format << "'\n"
                  << kUsage;
        return 2;
      }
    } else if (arg == "--pdb" && i + 1 < argc) {
      pdb_in = argv[++i];
    } else if (arg == "--db-out" && i + 1 < argc) {
      db_out = argv[++i];
    } else if (arg.rfind("--db-format=", 0) == 0) {
      const auto fmt = pdt::pdb::formatFromName(arg.substr(12));
      if (!fmt) {
        std::cerr << "tauprof: unknown database format '" << arg.substr(12)
                  << "' (expected ascii or bin)\n";
        return 2;
      }
      db_format = *fmt;
    } else if (std::string mmap_err; pdt::pdb::parseMmapFlag(arg, mmap_err)) {
      if (!mmap_err.empty()) {
        std::cerr << "tauprof: " << mmap_err << '\n';
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.starts_with("-")) {
      inputs.push_back(arg);
    } else {
      std::cerr << "tauprof: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
  }
  if (inputs.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  if (!pdb_in.empty() && db_out.empty()) {
    std::cerr << "tauprof: --pdb without --db-out has no effect; pass "
                 "--db-out FILE\n";
    return 2;
  }

  std::vector<pdt::tau::ThreadProfile> profiles;
  profiles.reserve(inputs.size());
  for (const std::string& path : inputs) {
    std::string error;
    auto profile = pdt::tau::readThreadProfile(path, &error);
    if (!profile) {
      std::cerr << "tauprof: " << error << '\n';
      return 3;
    }
    profiles.push_back(std::move(*profile));
  }
  const pdt::tau::MergedProfile merged =
      pdt::tau::mergeThreadProfiles(profiles);

  const auto render = [&](std::ostream& os) {
    if (report_format == "csv")
      pdt::tau::renderMergedCsv(merged, os);
    else
      pdt::tau::renderMergedProfile(merged, os);
  };
  if (report_out.empty()) {
    render(std::cout);
  } else {
    std::ofstream out(report_out);
    if (!out) {
      std::cerr << "tauprof: cannot write '" << report_out << "'\n";
      return 3;
    }
    render(out);
  }

  if (!db_out.empty()) {
    pdt::pdb::PdbFile pdb;
    if (!pdb_in.empty()) {
      auto read = pdt::pdb::open(pdb_in);
      if (!read.opened) {
        std::cerr << "tauprof: cannot open '" << pdb_in << "'\n";
        return 3;
      }
      if (!read.ok()) {
        std::cerr << "tauprof: " << pdb_in << ": " << read.errors.front()
                  << '\n';
        return 3;
      }
      pdb = read.snapshot->clonePdb();
    }
    const std::size_t linked = pdt::tau::attachDynProfSection(merged, pdb);
    if (!pdt::pdb::writeFile(pdb, db_out, db_format)) {
      std::cerr << "tauprof: cannot write '" << db_out << "'\n";
      return 3;
    }
    std::cerr << "tauprof: attached " << merged.entries.size()
              << " dp entries (" << linked << " linked to routines) to "
              << db_out << '\n';
  }
  return 0;
}
