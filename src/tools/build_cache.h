// On-disk, content-addressed build cache for per-TU compilation results.
//
// The paper's pipeline (Figure 2) recomputes front end + IL analysis for
// every translation unit on every invocation. PDB files are durable,
// portable artifacts, so an unchanged TU's database can be republished
// from disk instead: the driver consults this cache before compiling.
//
// Key derivation (docs/CACHING.md): a 128-bit FNV-1a over
//   - a cache-format version tag,
//   - the canonical serialization of FrontendOptions + AnalyzerOptions,
//   - the TU's full preprocessed input: the name and content of the main
//     file and of every file its #include closure pulls in, in first-seen
//     order (discovered by a preprocessor-only scan, so a header edit —
//     or a -D that flips a conditional include — changes the key).
//
// Entry layout: <dir>/<key>.pdb (the serialized per-TU database),
// <dir>/<key>.stats (the TU's trace::CounterBlock, replayed on hit so
// --stats is identical across warm and cold runs), and
// <dir>/<key>.manifest (one "key|stamp|size|source|dep;dep;..." line).
// All are published atomically (write temp + rename), so concurrent
// writers at any -j are safe: both produce identical bytes and either
// rename wins. Fetches revalidate with pdb::validate; truncated, corrupt,
// or referentially broken entries are silently evicted and recompiled —
// a cache entry is never trusted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/pdb.h"
#include "support/source_manager.h"
#include "support/trace.h"

namespace pdt::tools {

/// Bumped whenever the PDB serialization or the key derivation changes;
/// entries written by other versions simply never match.
inline constexpr std::string_view kCacheFormatVersion = "pdt-cache-5";

struct CacheOptions {
  std::string dir;            // empty = caching disabled
  std::size_t limit_mb = 0;   // sweep() target; 0 = unlimited
};

/// Counters for --cache-stats; aggregated across TUs by the driver.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t stores = 0;
  std::size_t evictions = 0;       // corrupt/stale entries dropped on fetch
  std::size_t unkeyed = 0;         // TUs whose dependency scan failed
  std::size_t revalidations = 0;   // entries re-parsed + validated on fetch

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    stores += o.stores;
    evictions += o.evictions;
    unkeyed += o.unkeyed;
    revalidations += o.revalidations;
    return *this;
  }
};

/// The historical one-line --cache-stats text: "cache: N hits, N misses,
/// N stored, N evicted, N unkeyed". Kept byte-stable for scripts.
[[nodiscard]] std::string cacheStatsText(const CacheStats& stats);

/// The same counters as a named section for trace::StatsReport (--stats /
/// --cache-stats=json).
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
cacheStatsSection(const CacheStats& stats);

/// A computed cache key plus the dependency list that went into it (kept
/// for the manifest, so `--cache-dir` contents are inspectable).
struct CacheKey {
  std::string hex;                 // 32-char content address
  std::string source;              // main file path as given
  std::vector<std::string> deps;   // include closure, first-seen order
};

/// Derives the cache key for `input` by running a preprocessor-only scan
/// over it (macros expanded, conditionals executed, includes entered) and
/// hashing every file the TU touches. Uses `sm` for file loading so a
/// following real compile reuses the already-loaded contents. Returns
/// nullopt when the scan fails (unreadable input, unterminated
/// conditional, missing include): such TUs compile uncached.
[[nodiscard]] std::optional<CacheKey> computeCacheKey(
    SourceManager& sm, const std::string& input,
    const frontend::FrontendOptions& frontend_options,
    const ilanalyzer::AnalyzerOptions& analyzer_options);

/// Canonical, unambiguous text form of every option that can change the
/// produced database; hashed into the key (exposed for tests).
[[nodiscard]] std::string canonicalOptionsText(
    const frontend::FrontendOptions& frontend_options,
    const ilanalyzer::AnalyzerOptions& analyzer_options);

class BuildCache {
 public:
  explicit BuildCache(CacheOptions options);

  [[nodiscard]] bool enabled() const { return !options_.dir.empty(); }

  /// Returns the cached database for `key` if present and sound. A entry
  /// that fails to parse or fails pdb::validate is deleted (counted in
  /// `stats.evictions`) and nullopt returned. `stats` is the caller's
  /// per-TU counter block (the driver keeps one per task and sums them).
  ///
  /// When `replay` is non-null, the entry's counter sidecar (the
  /// trace::CounterBlock recorded when the TU was compiled and stored) is
  /// deserialized into it; an entry with a missing or corrupt sidecar is
  /// evicted, so a hit always replays the original compile's counters —
  /// that is what keeps --stats byte-identical across warm and cold runs.
  /// All I/O done here is counted under a suppressing CounterScope so
  /// cache plumbing never leaks into compile counters.
  [[nodiscard]] std::optional<pdb::PdbFile> fetch(
      const CacheKey& key, CacheStats& stats,
      trace::CounterBlock* replay = nullptr) const;

  /// Publishes `pdb` under `key` (atomic: temp file + rename), together
  /// with the TU's counter sidecar `counters` (written before the
  /// manifest, which still publishes last). Failures are silent — the
  /// cache is an optimization, never a correctness dependency.
  void store(const CacheKey& key, const pdb::PdbFile& pdb,
             const trace::CounterBlock& counters, CacheStats& stats) const;

  /// Size-capped LRU sweep: while the entries' total size exceeds
  /// `limit_mb`, evict oldest-stamp-first (manifest stamps are bumped on
  /// hit, so the order is least-recently-used). Returns entries removed.
  /// No-op when limit_mb is 0.
  std::size_t sweep() const;

  /// Total size in bytes of all cache entries (pdb + manifest files).
  [[nodiscard]] std::uint64_t totalSizeBytes() const;

 private:
  [[nodiscard]] std::string pdbPath(const CacheKey& key) const;
  [[nodiscard]] std::string manifestPath(const CacheKey& key) const;
  [[nodiscard]] std::string statsPath(const CacheKey& key) const;

  CacheOptions options_;
};

}  // namespace pdt::tools
