// lexdump: dumps the raw token stream of a source file, one token per
// line. The --mode flag selects the lexing strategy:
//
//   --mode=incremental   RawLexer::next() in a loop (the reference path)
//   --mode=batch         RawLexer::lexAll() (the zero-allocation fast path)
//
// The two modes must produce byte-identical dumps for any input; the CI
// frontend gate (scripts/ci.sh) diffs them over the full corpus under
// ASan+UBSan. Output format: kind<TAB>line:col<TAB>flags<TAB>text.
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lex/lexer.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"
#include "support/token_arena.h"

namespace {

constexpr const char* kUsage =
    "usage: lexdump <file> [--mode=batch|incremental]\n"
    "  dumps the raw token stream, one token per line; both modes must\n"
    "  produce identical output (checked by scripts/ci.sh)\n";

const char* kindName(pdt::lex::TokenKind k) {
  using pdt::lex::TokenKind;
  switch (k) {
    case TokenKind::Identifier: return "ident";
    case TokenKind::Keyword: return "kw";
    case TokenKind::IntLiteral: return "int";
    case TokenKind::FloatLiteral: return "float";
    case TokenKind::CharLiteral: return "char";
    case TokenKind::StringLiteral: return "str";
    case TokenKind::Punct: return "punct";
    case TokenKind::HeaderName: return "header";
    case TokenKind::End: return "eof";
  }
}

void dump(std::ostream& os, const pdt::lex::Token& t) {
  os << kindName(t.kind) << '\t' << t.location.line << ':'
     << t.location.column << '\t' << (t.start_of_line ? 'L' : '-')
     << (t.leading_space ? 'S' : '-') << '\t' << t.text << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string mode = "incremental";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mode=", 0) == 0) {
      mode = arg.substr(7);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "lexdump: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    } else if (input.empty()) {
      input = arg;
    } else {
      std::cerr << kUsage;
      return 2;
    }
  }
  if (input.empty() || (mode != "batch" && mode != "incremental")) {
    std::cerr << kUsage;
    return 2;
  }

  pdt::SourceManager sm;
  const auto file = sm.loadFile(input);
  if (!file) {
    std::cerr << "lexdump: cannot open '" << input << "'\n";
    return 1;
  }

  pdt::DiagnosticEngine diags;
  pdt::TokenArena arena;
  pdt::lex::RawLexer lexer(*file, sm.content(*file), diags, &arena);

  std::ostringstream out;
  std::uint64_t count = 0;
  if (mode == "batch") {
    std::vector<pdt::lex::Token> tokens;
    lexer.lexAll(tokens);
    for (const auto& t : tokens) {
      if (t.isEnd()) break;
      dump(out, t);
      ++count;
    }
  } else {
    for (auto t = lexer.next(); !t.isEnd(); t = lexer.next()) {
      dump(out, t);
      ++count;
    }
  }
  std::cout << out.str();
  std::cerr << "lexdump: " << count << " tokens (" << mode << ")\n";
  return 0;
}
