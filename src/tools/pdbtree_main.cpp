// pdbtree: displays file inclusion, class hierarchy, and call graph
// trees (paper Table 2 and Figure 5).
//
// Each tree needs only a slice of the database, so pdbtree asks the
// reader for exactly the sections its mode touches (--calls never loads
// the type section, the largest part of real databases); the output is
// byte-identical to a full load because the DUCTAPE graph guards every
// cross-section reference.
#include <iostream>
#include <string>

#include "support/trace.h"
#include "tools/tools.h"

namespace {

constexpr const char* kUsage =
    "usage: pdbtree <file.pdb> [--includes|--classes|--calls|--profile]\n"
    "               [--stats[=json]] [--stats-out FILE] [--trace-out FILE]\n"
    "  --includes        source file inclusion tree only\n"
    "  --classes         class hierarchy only\n"
    "  --calls           static call tree only (paper Figure 5)\n"
    "  --profile         dp section (tauprof merge) joined with routines\n"
    "  --stats[=json]    counter + phase timing report on stderr\n"
    "  --stats-out FILE  write the stats report to FILE\n"
    "  --trace-out FILE  write a Chrome trace_event JSON timeline to FILE\n"
    "  --mmap=MODE       input mapping: auto (default), on, off\n";

using pdt::pdb::Sections;

/// The sections one tree actually renders: names come from the items
/// themselves, fullName() from parent classes/namespaces, and locations
/// from source files. Types, templates, and macros are never shown.
Sections sectionsForMode(const std::string& mode) {
  if (mode == "--includes") return Sections::SourceFiles;
  if (mode == "--classes")
    return Sections::Classes | Sections::SourceFiles | Sections::Namespaces;
  if (mode == "--calls")
    return Sections::Routines | Sections::Classes | Sections::Namespaces;
  if (mode == "--profile")
    return Sections::DynProfs | Sections::Routines | Sections::Classes |
           Sections::Namespaces | Sections::SourceFiles;
  // All three trees.
  return Sections::SourceFiles | Sections::Routines | Sections::Classes |
         Sections::Namespaces;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string mode;
  pdt::trace::ToolObservability obs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--includes" || arg == "--classes" || arg == "--calls" ||
        arg == "--profile") {
      if (!mode.empty()) {
        std::cerr << kUsage;
        return 2;
      }
      mode = arg;
    } else if (std::string mmap_err; pdt::pdb::parseMmapFlag(arg, mmap_err)) {
      if (!mmap_err.empty()) {
        std::cerr << "pdbtree: " << mmap_err << '\n';
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.starts_with("-") && input.empty()) {
      input = arg;
    } else {
      bool used_next = false;
      std::string error;
      if (obs.parseFlag(arg, i + 1 < argc ? argv[i + 1] : nullptr, used_next,
                        error)) {
        if (!error.empty()) {
          std::cerr << "pdbtree: " << error << '\n';
          return 2;
        }
        if (used_next) ++i;
        continue;
      }
      std::cerr << "pdbtree: unknown mode '" << arg << "'\n";
      return 2;
    }
  }
  if (input.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  obs.begin();

  const pdt::ductape::PDB pdb =
      pdt::ductape::PDB::read(input, sectionsForMode(mode));
  if (!pdb.valid()) {
    std::cerr << "pdbtree: " << pdb.errorMessage() << '\n';
    return 1;
  }
  using pdt::tools::TreeKind;
  if (mode.empty()) {
    pdt::tools::pdbtree(pdb, TreeKind::Includes, std::cout);
    std::cout << '\n';
    pdt::tools::pdbtree(pdb, TreeKind::ClassHierarchy, std::cout);
    std::cout << '\n';
    pdt::tools::pdbtree(pdb, TreeKind::CallGraph, std::cout);
  } else if (mode == "--includes") {
    pdt::tools::pdbtree(pdb, TreeKind::Includes, std::cout);
  } else if (mode == "--classes") {
    pdt::tools::pdbtree(pdb, TreeKind::ClassHierarchy, std::cout);
  } else if (mode == "--profile") {
    pdt::tools::pdbtree(pdb, TreeKind::Profile, std::cout);
  } else {
    pdt::tools::pdbtree(pdb, TreeKind::CallGraph, std::cout);
  }
  if (obs.wanted()) {
    pdt::trace::StatsReport report("pdbtree");
    report.setCounters(pdt::trace::globalCounters());
    if (!obs.finish(report)) return 1;
  }
  return 0;
}
