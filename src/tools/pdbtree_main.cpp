// pdbtree: displays file inclusion, class hierarchy, and call graph
// trees (paper Table 2 and Figure 5).
#include <iostream>
#include <string>

#include "tools/tools.h"

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::cerr << "usage: pdbtree <file.pdb> [--includes|--classes|--calls]\n";
    return 2;
  }
  const pdt::ductape::PDB pdb = pdt::ductape::PDB::read(argv[1]);
  if (!pdb.valid()) {
    std::cerr << "pdbtree: " << pdb.errorMessage() << '\n';
    return 1;
  }
  const std::string mode = argc == 3 ? argv[2] : "";
  using pdt::tools::TreeKind;
  if (mode.empty()) {
    pdt::tools::pdbtree(pdb, TreeKind::Includes, std::cout);
    std::cout << '\n';
    pdt::tools::pdbtree(pdb, TreeKind::ClassHierarchy, std::cout);
    std::cout << '\n';
    pdt::tools::pdbtree(pdb, TreeKind::CallGraph, std::cout);
  } else if (mode == "--includes") {
    pdt::tools::pdbtree(pdb, TreeKind::Includes, std::cout);
  } else if (mode == "--classes") {
    pdt::tools::pdbtree(pdb, TreeKind::ClassHierarchy, std::cout);
  } else if (mode == "--calls") {
    pdt::tools::pdbtree(pdb, TreeKind::CallGraph, std::cout);
  } else {
    std::cerr << "pdbtree: unknown mode '" << mode << "'\n";
    return 2;
  }
  return 0;
}
