// pdbcheck: rule-driven whole-program static analyzer over PDB databases.
//
// Loads one or more PDB files through DUCTAPE (merging them first, so the
// checks see the whole program the way pdbmerge's cross-TU databases
// describe it), validates referential integrity, and runs the registered
// rules over a shared AnalysisContext.
//
// Exit codes: 0 clean, 1 findings (warnings or errors), 2 usage error,
// 3 invalid input (unreadable file or dangling item references).
#include <charconv>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "analysis/rules.h"
#include "pdb/validate.h"
#include "support/trace.h"
#include "tools/tools.h"

namespace {

constexpr const char* kUsage =
    "usage: pdbcheck <in.pdb>... [options]\n"
    "  --checks=LIST    comma-separated rule selection: names, 'all', and\n"
    "                   '-name' exclusions (default: all)\n"
    "  --format=FMT     text | json (SARIF-shaped; see docs/PDBCHECK.md)\n"
    "  -j N, --jobs N   run independent rules on N worker threads; output\n"
    "                   is byte-identical to -j 1\n"
    "  --list-checks    print the rule catalog and exit\n"
    "  --list-rules     print each rule's name, default severity, and the\n"
    "                   PDB sections it reads, then exit\n"
    "  --stats[=json]   finding counters + per-rule timing on stderr\n"
    "  --stats-out FILE write the stats report to FILE\n"
    "  --trace-out FILE write a Chrome trace_event JSON timeline to FILE\n"
    "  --mmap=MODE      input mapping: auto (default), on, off\n"
    "exit codes: 0 clean, 1 findings, 2 usage error, 3 invalid input\n";

/// Renders a section mask as the section prefixes it selects ("so ro du").
std::string sectionsText(pdt::pdb::Sections sections) {
  std::string out;
  for (int k = 0; k <= static_cast<int>(pdt::pdb::ItemKind::DynProf); ++k) {
    const auto kind = static_cast<pdt::pdb::ItemKind>(k);
    if ((sections & pdt::pdb::sectionOf(kind)) == pdt::pdb::Sections{})
      continue;
    if (!out.empty()) out += ' ';
    out += pdt::pdb::prefixOf(kind);
  }
  return out;
}

std::size_t parseJobs(const std::string& value) {
  std::size_t jobs = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), jobs);
  if (ec != std::errc{} || ptr != value.data() + value.size() || jobs == 0) {
    std::cerr << "pdbcheck: invalid jobs value '" << value
              << "' (expected a positive integer)\n";
    std::exit(2);
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  pdt::analysis::CheckOptions options;
  pdt::trace::ToolObservability obs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--checks=", 0) == 0) {
      options.checks = arg.substr(9);
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string fmt = arg.substr(9);
      if (fmt == "text") {
        options.format = pdt::analysis::CheckOptions::Format::Text;
      } else if (fmt == "json") {
        options.format = pdt::analysis::CheckOptions::Format::Json;
      } else {
        std::cerr << "pdbcheck: unknown format '" << fmt << "'\n" << kUsage;
        return 2;
      }
    } else if ((arg == "-j" || arg == "--jobs") && i + 1 < argc) {
      options.jobs = parseJobs(argv[++i]);
    } else if (arg.rfind("-j", 0) == 0 && arg != "-j") {
      options.jobs = parseJobs(arg.substr(2));
    } else if (arg == "--list-checks") {
      for (const pdt::analysis::Rule* rule : pdt::analysis::allRules()) {
        std::cout << rule->name() << "\n    " << rule->description() << '\n';
      }
      return 0;
    } else if (arg == "--list-rules") {
      for (const pdt::analysis::Rule* rule : pdt::analysis::allRules()) {
        std::cout << rule->name() << "  ["
                  << pdt::analysis::severityName(rule->defaultSeverity())
                  << "]  sections: " << sectionsText(rule->sections())
                  << "\n    " << rule->description() << '\n';
      }
      return 0;
    } else if (std::string mmap_err; pdt::pdb::parseMmapFlag(arg, mmap_err)) {
      if (!mmap_err.empty()) {
        std::cerr << "pdbcheck: " << mmap_err << '\n';
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.starts_with("-")) {
      paths.push_back(arg);
    } else {
      bool used_next = false;
      std::string error;
      if (obs.parseFlag(arg, i + 1 < argc ? argv[i + 1] : nullptr, used_next,
                        error)) {
        if (!error.empty()) {
          std::cerr << "pdbcheck: " << error << '\n';
          return 2;
        }
        if (used_next) ++i;
        continue;
      }
      std::cerr << "pdbcheck: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  obs.begin();

  // The selected rules declare which database sections they need; the
  // inputs are read with exactly that mask (today: everything but macros)
  // and validation is told what was deliberately left out. An invalid
  // --checks spec falls back to a full read — runChecks reports it.
  std::string select_error;
  const std::vector<const pdt::analysis::Rule*> selected =
      pdt::analysis::selectRules(options.checks, &select_error);
  const pdt::pdb::Sections sections =
      select_error.empty() ? pdt::analysis::requiredSections(selected)
                           : pdt::pdb::Sections::All;

  std::vector<pdt::ductape::PDB> inputs;
  inputs.reserve(paths.size());
  for (const std::string& path : paths) {
    pdt::ductape::PDB pdb = pdt::ductape::PDB::read(path, sections);
    if (!pdb.valid()) {
      std::cerr << "pdbcheck: " << pdb.errorMessage() << '\n';
      return 3;
    }
    const std::vector<std::string> errors =
        pdt::pdb::validate(pdb.raw(), sections);
    if (!errors.empty()) {
      for (const std::string& e : errors)
        std::cerr << "pdbcheck: " << path << ": " << e << '\n';
      std::cerr << "pdbcheck: '" << path
                << "' references undefined items; refusing to analyze\n";
      return 3;
    }
    inputs.push_back(std::move(pdb));
  }

  const pdt::ductape::PDB merged =
      pdt::tools::pdbmerge(std::move(inputs), options.jobs);
  const pdt::analysis::CheckResult result =
      pdt::analysis::runChecks(merged, options);
  if (!result.ok()) {
    std::cerr << "pdbcheck: " << result.error << '\n';
    return 2;
  }
  pdt::analysis::render(result, options, std::cout);
  if (obs.wanted()) {
    pdt::trace::StatsReport report("pdbcheck");
    report.setCounters(pdt::trace::globalCounters());
    if (!obs.finish(report)) return 2;
  }
  return result.hasFindings() ? 1 : 0;
}
