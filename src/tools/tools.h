// The static-analysis utilities shipped with PDT (paper Table 2):
//   pdbconv  — converts the compact PDB format into a readable format
//   pdbhtml  — web-based documentation with HTML navigation links
//   pdbmerge — merges PDBs, eliminating duplicate template instantiations
//   pdbtree  — file inclusion, class hierarchy, and call graph trees
//
// Each utility is a library function (testable) plus a thin main()
// wrapper. They are also the reference examples of programming against
// the DUCTAPE API (paper §3.3).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ductape/ductape.h"

namespace pdt::tools {

/// pdbconv: renders `pdb` in a human-readable multi-line format.
void pdbconv(const ductape::PDB& pdb, std::ostream& os);

/// pdbhtml: emits a self-contained HTML page with anchors for every item
/// and hyperlinks for every cross-reference.
void pdbhtml(const ductape::PDB& pdb, std::ostream& os,
             const std::string& title = "Program Database");

/// pdbmerge: merges `inputs[1..]` into `inputs[0]` and returns the result.
/// With jobs > 1, adjacent pairs are merged concurrently on a thread pool
/// in a log-depth tree reduction instead of the linear left fold; the
/// reduction preserves input order, so the result is byte-identical to the
/// serial merge (verified by the determinism tests).
[[nodiscard]] ductape::PDB pdbmerge(std::vector<ductape::PDB> inputs,
                                    std::size_t jobs = 1);

/// pdbtree: which tree to display. Profile joins the database's dp
/// section (merged dynamic profile attached by tauprof) with its static
/// routines.
enum class TreeKind { Includes, ClassHierarchy, CallGraph, Profile };

void pdbtree(const ductape::PDB& pdb, TreeKind kind, std::ostream& os);

/// The call-graph printer of paper Figure 5 (exposed for tests).
void printFuncTree(const ductape::pdbRoutine* r, int level, std::ostream& os);

/// Shared location renderer: "path:line:col", or "<generated>" for items
/// with no source location (compiler-generated ctors/dtors, builtins) —
/// never an empty or garbage file:line.
[[nodiscard]] std::string locText(const ductape::pdbLoc& loc);

}  // namespace pdt::tools
