// pdbduct: interactive def-use queries over PDB du streams.
//
// Answers "which definitions reach this use?" and "which uses observe
// this definition?" with the same reaching-definitions engine the
// pdbcheck dataflow rules run on (src/analysis/dataflow.h), so a
// diagnostic from pdbcheck can be replayed and explored here.
//
// The queries touch only routine identities, source positions, and the
// du streams, so inputs are read with a lazy section mask that leaves
// types, templates, and macros on disk (visible as pdb.sections_skipped
// in --stats); the storage format (ASCII or binary v2) is auto-detected
// per input.
#include <charconv>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/dataflow.h"
#include "pdb/pdb.h"
#include "support/trace.h"
#include "tools/tools.h"

namespace {

namespace dataflow = pdt::analysis::dataflow;
using pdt::pdb::DefUseItem;
using pdt::pdb::DuOp;

constexpr const char* kUsage =
    "usage: pdbduct <in.pdb>... [options]\n"
    "  --routine NAME    restrict to routines named NAME (plain or\n"
    "                    fully qualified); default: all routines\n"
    "  --var NAME        restrict to events of this variable path\n"
    "                    ('x', 'this.top')\n"
    "  --at LINE[:COL]   restrict to events at this source position\n"
    "  --defs            for each selected use, print the definitions\n"
    "                    that reach it\n"
    "  --uses            for each selected definition, print the uses\n"
    "                    that observe it\n"
    "  (without --defs/--uses: one summary line per du stream)\n"
    "  --stats[=json]    counter + phase timing report on stderr\n"
    "  --stats-out FILE  write the stats report to FILE\n"
    "  --trace-out FILE  write a Chrome trace_event JSON timeline to FILE\n"
    "exit codes: 0 ok, 2 usage error, 3 invalid input\n";

/// Everything pdbduct renders: positions and routine names resolved from
/// the merged database.
struct World {
  std::unordered_map<std::uint32_t, std::string_view> files;
  std::unordered_map<std::uint32_t, const pdt::ductape::pdbRoutine*> routines;

  explicit World(const pdt::ductape::PDB& pdb) {
    for (const auto& f : pdb.raw().sourceFiles()) files.emplace(f.id, f.name);
    for (const pdt::ductape::pdbRoutine* r : pdb.getRoutineVec())
      routines.emplace(static_cast<std::uint32_t>(r->id()), r);
  }
  [[nodiscard]] std::string pos(const pdt::pdb::Pos& p) const {
    if (!p.valid()) return "<generated>";
    const auto it = files.find(p.file);
    std::string out = it == files.end() ? std::string("<unknown file>")
                                        : std::string(it->second);
    out += ':' + std::to_string(p.line) + ':' + std::to_string(p.column);
    return out;
  }
  [[nodiscard]] std::string routineName(std::uint32_t id) const {
    const auto it = routines.find(id);
    return it == routines.end() ? std::string("<unknown routine>")
                                : it->second->fullName();
  }
  [[nodiscard]] bool routineMatches(std::uint32_t id,
                                    const std::string& name) const {
    const auto it = routines.find(id);
    if (it == routines.end()) return false;
    return it->second->name() == name || it->second->fullName() == name;
  }
};

struct Query {
  std::string routine;  // empty: all
  std::string var;      // empty: all
  int line = -1;
  int col = -1;  // -1: any column on the line
  bool defs = false;
  bool uses = false;
};

bool eventSelected(const DefUseItem::Event& e, const Query& q) {
  if (e.op == DuOp::Marker) return false;
  if (!q.var.empty() && e.name != q.var) return false;
  if (q.line >= 0 && static_cast<int>(e.pos.line) != q.line) return false;
  if (q.col >= 0 && static_cast<int>(e.pos.column) != q.col) return false;
  return true;
}

std::string eventText(const World& world, const DefUseItem::Event& e) {
  std::string out = e.op == DuOp::Def ? "def of '" : "use of '";
  out += std::string(e.name) + "' at " + world.pos(e.pos);
  out += " [" + pdt::pdb::du::flagsText(e.flags) + "]";
  return out;
}

void runQuery(const pdt::ductape::PDB& merged, const Query& query) {
  const World world(merged);
  for (const DefUseItem& item : merged.raw().defUses()) {
    if (!query.routine.empty() &&
        !world.routineMatches(item.routine, query.routine))
      continue;

    if (!query.defs && !query.uses) {
      int defs = 0, uses = 0, markers = 0;
      for (const auto& e : item.events) {
        if (e.op == DuOp::Def) ++defs;
        else if (e.op == DuOp::Use) ++uses;
        else ++markers;
      }
      std::cout << "du#" << item.id << " routine '"
                << world.routineName(item.routine) << "': " << defs
                << " def(s), " << uses << " use(s), " << markers
                << " marker(s)\n";
      continue;
    }

    const dataflow::Cfg cfg = dataflow::Cfg::build(item);
    if (cfg.irregular()) {
      std::cout << "routine '" << world.routineName(item.routine)
                << "': irregular control flow (goto/label/try); no "
                   "flow-sensitive answer\n";
      continue;
    }
    const dataflow::ReachingDefs rd(cfg);
    bool header_printed = false;
    const auto header = [&] {
      if (header_printed) return;
      header_printed = true;
      std::cout << "routine '" << world.routineName(item.routine) << "' (du#"
                << item.id << "):\n";
    };
    for (std::size_t e = 0; e < item.events.size(); ++e) {
      const auto& ev = item.events[e];
      if (!eventSelected(ev, query)) continue;
      const auto idx = static_cast<dataflow::EventIndex>(e);
      if (query.defs && ev.op == DuOp::Use) {
        header();
        std::cout << "  " << eventText(world, ev) << '\n';
        const auto& defs = rd.defsReaching(idx);
        if (defs.empty()) std::cout << "    reached by no definition\n";
        for (const auto d : defs)
          std::cout << "    reached by " << eventText(world, item.events[d])
                    << '\n';
      }
      if (query.uses && ev.op == DuOp::Def) {
        header();
        std::cout << "  " << eventText(world, ev) << '\n';
        const auto& uses = rd.usesReached(idx);
        if (uses.empty()) std::cout << "    reaches no use\n";
        for (const auto u : uses)
          std::cout << "    reaches " << eventText(world, item.events[u])
                    << '\n';
      }
    }
  }
}

bool parseAt(const std::string& value, Query& query) {
  const std::size_t colon = value.find(':');
  const std::string line = value.substr(0, colon);
  int parsed = 0;
  auto [ptr, ec] =
      std::from_chars(line.data(), line.data() + line.size(), parsed);
  if (ec != std::errc{} || ptr != line.data() + line.size() || parsed <= 0)
    return false;
  query.line = parsed;
  if (colon == std::string::npos) return true;
  const std::string col = value.substr(colon + 1);
  auto [cptr, cec] = std::from_chars(col.data(), col.data() + col.size(),
                                     parsed);
  if (cec != std::errc{} || cptr != col.data() + col.size() || parsed <= 0)
    return false;
  query.col = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  Query query;
  pdt::trace::ToolObservability obs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--routine" && i + 1 < argc) {
      query.routine = argv[++i];
    } else if (arg == "--var" && i + 1 < argc) {
      query.var = argv[++i];
    } else if (arg == "--at" && i + 1 < argc) {
      if (!parseAt(argv[++i], query)) {
        std::cerr << "pdbduct: invalid --at position '" << argv[i]
                  << "' (expected LINE[:COL])\n";
        return 2;
      }
    } else if (arg == "--defs") {
      query.defs = true;
    } else if (arg == "--uses") {
      query.uses = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.starts_with("-")) {
      paths.push_back(arg);
    } else {
      bool used_next = false;
      std::string error;
      if (obs.parseFlag(arg, i + 1 < argc ? argv[i + 1] : nullptr, used_next,
                        error)) {
        if (!error.empty()) {
          std::cerr << "pdbduct: " << error << '\n';
          return 2;
        }
        if (used_next) ++i;
        continue;
      }
      std::cerr << "pdbduct: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  obs.begin();

  // The queries only render routine identities (routine/class/namespace
  // names), positions (source files), and the streams themselves; the
  // type, template, and macro sections stay on disk.
  constexpr pdt::pdb::Sections kMask =
      pdt::pdb::Sections::SourceFiles | pdt::pdb::Sections::Routines |
      pdt::pdb::Sections::Classes | pdt::pdb::Sections::Namespaces |
      pdt::pdb::Sections::DefUses;

  std::vector<pdt::ductape::PDB> inputs;
  inputs.reserve(paths.size());
  for (const std::string& path : paths) {
    pdt::ductape::PDB pdb = pdt::ductape::PDB::read(path, kMask);
    if (!pdb.valid()) {
      std::cerr << "pdbduct: " << pdb.errorMessage() << '\n';
      return 3;
    }
    inputs.push_back(std::move(pdb));
  }
  const pdt::ductape::PDB merged = pdt::tools::pdbmerge(std::move(inputs), 1);

  runQuery(merged, query);

  if (obs.wanted()) {
    pdt::trace::StatsReport report("pdbduct");
    report.setCounters(pdt::trace::globalCounters());
    if (!obs.finish(report)) return 2;
  }
  return 0;
}
