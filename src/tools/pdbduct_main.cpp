// pdbduct: interactive def-use queries over PDB du streams.
//
// Answers "which definitions reach this use?" and "which uses observe
// this definition?" with the same reaching-definitions engine the
// pdbcheck dataflow rules run on (src/analysis/dataflow.h), so a
// diagnostic from pdbcheck can be replayed and explored here.
//
// The queries touch only routine identities, source positions, and the
// du streams, so inputs are read with a lazy section mask that leaves
// types, templates, and macros on disk (visible as pdb.sections_skipped
// in --stats); the storage format (ASCII or binary v2) is auto-detected
// per input.
#include <charconv>
#include <iostream>
#include <string>
#include <vector>

#include "pdb/pdb.h"
#include "query/render.h"
#include "support/trace.h"
#include "tools/tools.h"

namespace {

using pdt::query::DefUseQuery;

constexpr const char* kUsage =
    "usage: pdbduct <in.pdb>... [options]\n"
    "  --routine NAME    restrict to routines named NAME (plain or\n"
    "                    fully qualified); default: all routines\n"
    "  --var NAME        restrict to events of this variable path\n"
    "                    ('x', 'this.top')\n"
    "  --at LINE[:COL]   restrict to events at this source position\n"
    "  --defs            for each selected use, print the definitions\n"
    "                    that reach it\n"
    "  --uses            for each selected definition, print the uses\n"
    "                    that observe it\n"
    "  (without --defs/--uses: one summary line per du stream)\n"
    "  --stats[=json]    counter + phase timing report on stderr\n"
    "  --stats-out FILE  write the stats report to FILE\n"
    "  --trace-out FILE  write a Chrome trace_event JSON timeline to FILE\n"
    "  --mmap=MODE       input mapping: auto (default), on, off\n"
    "exit codes: 0 ok, 2 usage error, 3 invalid input\n";

bool parseAt(const std::string& value, DefUseQuery& query) {
  const std::size_t colon = value.find(':');
  const std::string line = value.substr(0, colon);
  int parsed = 0;
  auto [ptr, ec] =
      std::from_chars(line.data(), line.data() + line.size(), parsed);
  if (ec != std::errc{} || ptr != line.data() + line.size() || parsed <= 0)
    return false;
  query.line = parsed;
  if (colon == std::string::npos) return true;
  const std::string col = value.substr(colon + 1);
  auto [cptr, cec] = std::from_chars(col.data(), col.data() + col.size(),
                                     parsed);
  if (cec != std::errc{} || cptr != col.data() + col.size() || parsed <= 0)
    return false;
  query.col = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  DefUseQuery query;
  pdt::trace::ToolObservability obs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--routine" && i + 1 < argc) {
      query.routine = argv[++i];
    } else if (arg == "--var" && i + 1 < argc) {
      query.var = argv[++i];
    } else if (arg == "--at" && i + 1 < argc) {
      if (!parseAt(argv[++i], query)) {
        std::cerr << "pdbduct: invalid --at position '" << argv[i]
                  << "' (expected LINE[:COL])\n";
        return 2;
      }
    } else if (arg == "--defs") {
      query.defs = true;
    } else if (arg == "--uses") {
      query.uses = true;
    } else if (std::string mmap_err; pdt::pdb::parseMmapFlag(arg, mmap_err)) {
      if (!mmap_err.empty()) {
        std::cerr << "pdbduct: " << mmap_err << '\n';
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.starts_with("-")) {
      paths.push_back(arg);
    } else {
      bool used_next = false;
      std::string error;
      if (obs.parseFlag(arg, i + 1 < argc ? argv[i + 1] : nullptr, used_next,
                        error)) {
        if (!error.empty()) {
          std::cerr << "pdbduct: " << error << '\n';
          return 2;
        }
        if (used_next) ++i;
        continue;
      }
      std::cerr << "pdbduct: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  obs.begin();

  // The queries only render routine identities (routine/class/namespace
  // names), positions (source files), and the streams themselves; the
  // type, template, and macro sections stay on disk.
  constexpr pdt::pdb::Sections kMask =
      pdt::pdb::Sections::SourceFiles | pdt::pdb::Sections::Routines |
      pdt::pdb::Sections::Classes | pdt::pdb::Sections::Namespaces |
      pdt::pdb::Sections::DefUses;

  std::vector<pdt::ductape::PDB> inputs;
  inputs.reserve(paths.size());
  for (const std::string& path : paths) {
    pdt::ductape::PDB pdb = pdt::ductape::PDB::read(path, kMask);
    if (!pdb.valid()) {
      std::cerr << "pdbduct: " << pdb.errorMessage() << '\n';
      return 3;
    }
    inputs.push_back(std::move(pdb));
  }
  const pdt::ductape::PDB merged = pdt::tools::pdbmerge(std::move(inputs), 1);

  const pdt::query::Index index(merged);
  pdt::query::renderDefUse(index, query, std::cout);

  if (obs.wanted()) {
    pdt::trace::StatsReport report("pdbduct");
    report.setCounters(pdt::trace::globalCounters());
    if (!obs.finish(report)) return 2;
  }
  return 0;
}
