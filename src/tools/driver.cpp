#include "tools/driver.h"

#include <future>
#include <sstream>

#include "pdb/pdb.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace pdt::tools {

namespace {

/// Everything one TU compilation produces: the typed database plus the
/// diagnostics text, captured so the caller can emit it in input order.
struct UnitResult {
  pdb::PdbFile pdb;
  std::string diagnostics;
  CacheStats cache_stats;
  trace::CounterBlock counters;
  bool success = false;
};

UnitResult compileUnit(const std::string& input, const DriverOptions& options,
                       const BuildCache* cache) {
  // Per-TU state only — SourceManager, DiagnosticEngine, and Frontend are
  // not shared across tasks, which keeps the parallel path race-free. The
  // BuildCache is shared but stateless beyond its atomic-rename filesystem
  // protocol, so concurrent workers may fetch/store freely.
  UnitResult unit;
  // Everything this TU counts lands in its own block; the caller sums the
  // blocks in input order, which is what makes --stats totals independent
  // of -j and of which worker ran which TU.
  const trace::CounterScope counter_scope(&unit.counters);
  PDT_TRACE_SCOPE("tu.compile", input);
  SourceManager sm;

  std::optional<CacheKey> key;
  if (cache != nullptr && cache->enabled()) {
    // The scan loads the TU's include closure into `sm`, so a cache miss
    // compiles over already-loaded contents instead of re-reading disk.
    {
      PDT_TRACE_SCOPE("cache.scan", input);
      key = computeCacheKey(sm, input, options.frontend, options.analyzer);
    }
    if (!key) ++unit.cache_stats.unkeyed;
    if (key) {
      std::optional<pdb::PdbFile> cached;
      {
        PDT_TRACE_SCOPE("cache.fetch", input);
        cached = cache->fetch(*key, unit.cache_stats, &unit.counters);
      }
      if (cached) {
        unit.pdb = std::move(*cached);
        unit.success = true;
        trace::count(trace::Counter::DriverTus);
        return unit;
      }
    }
  }

  DiagnosticEngine diags;
  frontend::Frontend frontend(sm, diags, options.frontend);
  auto result = frontend.compileFile(input);
  std::ostringstream diag_text;
  diags.print(diag_text, sm);
  unit.diagnostics = std::move(diag_text).str();
  unit.success = result.success;
  if (unit.success) unit.pdb = ilanalyzer::analyze(result, sm, options.analyzer);
  // Only silent successes are cached: a hit skips the compile, so any
  // diagnostics a cached TU produced would vanish from warm runs.
  if (key && unit.success && unit.diagnostics.empty()) {
    PDT_TRACE_SCOPE("cache.store", input);
    cache->store(*key, unit.pdb, unit.counters, unit.cache_stats);
  }
  // Diagnostic totals are counted after the store on purpose: only silent
  // TUs are cached, so the sidecar never carries (and a warm run never
  // replays) nonzero diag counters — identical either way.
  trace::count(trace::Counter::DiagErrors, diags.errorCount());
  trace::count(trace::Counter::DiagWarnings, diags.warningCount());
  trace::countKey("diag.errors.by_tu", input, diags.errorCount());
  trace::countKey("diag.warnings.by_tu", input, diags.warningCount());
  trace::count(trace::Counter::DriverTus);
  return unit;
}

}  // namespace

DriverResult compileAndMerge(const std::vector<std::string>& inputs,
                             const DriverOptions& options) {
  DriverResult out;
  std::vector<UnitResult> units(inputs.size());
  const BuildCache cache(options.cache);
  const BuildCache* cache_ptr = cache.enabled() ? &cache : nullptr;

  if (options.jobs <= 1 || inputs.size() <= 1) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      units[i] = compileUnit(inputs[i], options, cache_ptr);
      if (!units[i].success) {
        // Serial behaviour: stop at the first failing TU.
        units.resize(i + 1);
        break;
      }
    }
  } else {
    ThreadPool pool(options.jobs);
    std::vector<std::future<UnitResult>> futures;
    futures.reserve(inputs.size());
    for (const std::string& input : inputs) {
      futures.push_back(pool.submit([&input, &options, cache_ptr] {
        return compileUnit(input, options, cache_ptr);
      }));
    }
    // Collect in input order regardless of completion order.
    for (std::size_t i = 0; i < futures.size(); ++i) units[i] = futures[i].get();
  }

  // Emit diagnostics and merge in input order; both match the serial run
  // byte for byte (the merge is order-dependent, the compiles are not).
  std::optional<ductape::PDB> merged;
  for (const UnitResult& unit : units) {
    out.diagnostics += unit.diagnostics;
    out.cache_stats += unit.cache_stats;
    out.counters += unit.counters;
    if (!unit.success) return out;
    if (!merged) {
      merged = ductape::PDB::fromPdbFile(unit.pdb);
    } else {
      merged->merge(ductape::PDB::fromPdbFile(unit.pdb));
    }
  }
  out.pdb = std::move(merged);
  out.success = out.pdb.has_value();
  return out;
}

}  // namespace pdt::tools
