// Deterministic synthetic program databases for scale testing.
//
// The krylov example (examples/) exercises correctness; benchmarking the
// 100k-TU regime needs databases 100-1000x that size without shipping a
// giant corpus. synthUnit() fabricates the database one translation unit
// of a synthetic template-heavy codebase would produce: a shared header
// worth of template instantiations that repeat across every TU (so merge
// has duplicates to eliminate, like Stack<int> in the paper) plus per-TU
// unique classes and routines with call edges (so the merged database
// still grows). All names are generated from the unit index alone —
// the same index always yields byte-identical databases, which keeps
// benches and the sharded-merge CI gate reproducible.
//
// Template spellings are padded toward `name_bytes` to mimic real
// instantiation names (std::map<std::basic_string<...>, ...> easily runs
// to hundreds of bytes); string-heavy payloads are exactly what the
// zero-copy read path is optimized for, so the benches lean on it.
#pragma once

#include <string>

#include "pdb/pdb.h"

namespace pdt::tools {

struct SynthOptions {
  int shared_classes = 32;  // instantiations repeated in every TU (dedup fodder)
  int unique_classes = 4;   // classes only this TU defines
  int routines = 16;        // per-TU free routines (with call edges)
  int name_bytes = 120;     // approximate length of synthetic type spellings
};

/// The program database of TU `index` of the synthetic codebase.
[[nodiscard]] pdb::PdbFile synthUnit(int index, const SynthOptions& opts = {});

}  // namespace pdt::tools
