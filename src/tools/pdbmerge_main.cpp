// pdbmerge: merges PDB files from separate compilations into one PDB
// file, eliminating duplicate template instantiations in the process
// (paper Table 2).
//
// -j N reads the input files and runs the pairwise merge reduction on N
// worker threads; the result is byte-identical to the serial merge.
#include <charconv>
#include <cstdint>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "pdb/format.h"
#include "pdb/validate.h"
#include "support/thread_pool.h"
#include "support/trace.h"
#include "tools/shard_merge.h"
#include "tools/tools.h"

namespace {

constexpr const char* kUsage =
    "usage: pdbmerge <in1.pdb> <in2.pdb>... -o <out.pdb> [-j N]\n"
    "                [--format=ascii|bin] [--merge-mem-mb=N] [--mmap=MODE]\n"
    "                [--stats[=json]] [--stats-out FILE] [--trace-out FILE]\n"
    "  -j N, --jobs N    read and merge on N worker threads (N >= 1)\n"
    "  --format=FORMAT   storage format of the output (default ascii);\n"
    "                    input formats are auto-detected\n"
    "  --merge-mem-mb=N  soft memory budget: merge in external shards,\n"
    "                    spilling partial merges to temp files when a\n"
    "                    worker's partial exceeds its slice of N MiB\n"
    "                    (0 or absent = classic in-memory merge; the\n"
    "                    output bytes are identical either way)\n"
    "  --mmap=MODE       binary input mapping: auto (default), on, off\n"
    "  --stats[=json]    merge counter + phase timing report on stderr\n"
    "  --stats-out FILE  write the stats report to FILE\n"
    "  --trace-out FILE  write a Chrome trace_event JSON timeline to FILE\n";

std::size_t parseJobs(const std::string& value) {
  std::size_t jobs = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), jobs);
  if (ec != std::errc{} || ptr != value.data() + value.size() || jobs == 0) {
    std::cerr << "pdbmerge: invalid jobs value '" << value
              << "' (expected a positive integer)\n";
    std::exit(2);
  }
  return jobs;
}

std::uint64_t parseMemMb(const std::string& value) {
  std::uint64_t mb = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), mb);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    std::cerr << "pdbmerge: invalid --merge-mem-mb value '" << value
              << "' (expected a non-negative integer)\n";
    std::exit(2);
  }
  return mb;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string output;
  std::size_t jobs = 1;
  std::uint64_t merge_mem_mb = 0;
  pdt::pdb::Format format = pdt::pdb::Format::Ascii;
  pdt::trace::ToolObservability obs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg.starts_with("--format=")) {
      const auto parsed = pdt::pdb::formatFromName(arg.substr(9));
      if (!parsed) {
        std::cerr << "pdbmerge: unknown format '" << arg.substr(9)
                  << "' (expected ascii or bin)\n";
        return 2;
      }
      format = *parsed;
    } else if ((arg == "-j" || arg == "--jobs") && i + 1 < argc) {
      jobs = parseJobs(argv[++i]);
    } else if (arg.starts_with("-j") && arg != "-j") {
      jobs = parseJobs(arg.substr(2));
    } else if (arg.starts_with("--merge-mem-mb=")) {
      merge_mem_mb = parseMemMb(arg.substr(15));
    } else if (std::string mmap_err; pdt::pdb::parseMmapFlag(arg, mmap_err)) {
      if (!mmap_err.empty()) {
        std::cerr << "pdbmerge: " << mmap_err << '\n';
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.starts_with("-")) {
      paths.push_back(arg);
    } else {
      bool used_next = false;
      std::string error;
      if (obs.parseFlag(arg, i + 1 < argc ? argv[i + 1] : nullptr, used_next,
                        error)) {
        if (!error.empty()) {
          std::cerr << "pdbmerge: " << error << '\n';
          return 2;
        }
        if (used_next) ++i;
        continue;
      }
      std::cerr << kUsage;
      return 2;
    }
  }
  if (paths.empty() || output.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  obs.begin();

  // External sharded merge: never holds every input at once, spills
  // partials past the budget, and produces the same bytes as the
  // in-memory path below.
  if (merge_mem_mb > 0) {
    pdt::tools::ShardedMergeOptions sopts;
    sopts.jobs = jobs;
    sopts.mem_budget_bytes = merge_mem_mb * 1024ull * 1024ull;
    sopts.temp_dir = output + ".merge-tmp";
    pdt::tools::ShardedMergeResult sharded =
        pdt::tools::shardedMergeFiles(paths, sopts);
    if (!sharded.ok()) {
      for (const std::string& e : sharded.errors)
        std::cerr << "pdbmerge: " << e << '\n';
      return 1;
    }
    if (!sharded.merged->write(output, format)) {
      std::cerr << "pdbmerge: cannot write '" << output << "'\n";
      return 1;
    }
    std::cout << "wrote " << output << '\n';
    if (obs.wanted()) {
      pdt::trace::StatsReport report("pdbmerge");
      report.setCounters(pdt::trace::globalCounters());
      report.addSection("sharded merge",
                        {{"shards", sharded.stats.shards},
                         {"spills", sharded.stats.spills}});
      if (!obs.finish(report)) return 1;
    }
    return 0;
  }

  // Read every input (in parallel with -j); report errors in input order.
  std::vector<pdt::ductape::PDB> inputs;
  if (jobs > 1 && paths.size() > 1) {
    pdt::ThreadPool pool(jobs);
    std::vector<std::future<pdt::ductape::PDB>> reads;
    reads.reserve(paths.size());
    for (const std::string& path : paths) {
      reads.push_back(
          pool.submit([&path] { return pdt::ductape::PDB::read(path); }));
    }
    inputs.reserve(paths.size());
    for (auto& r : reads) inputs.push_back(r.get());
  } else {
    inputs.reserve(paths.size());
    for (const std::string& path : paths)
      inputs.push_back(pdt::ductape::PDB::read(path));
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!inputs[i].valid()) {
      std::cerr << "pdbmerge: " << inputs[i].errorMessage() << '\n';
      return 1;
    }
    // Refuse inputs with dangling item references: merging would silently
    // drop the broken edges and corrupt the combined database.
    const std::vector<std::string> errors = pdt::pdb::validate(inputs[i].raw());
    if (!errors.empty()) {
      for (const std::string& e : errors)
        std::cerr << "pdbmerge: " << paths[i] << ": " << e << '\n';
      std::cerr << "pdbmerge: '" << paths[i]
                << "' references undefined items; refusing to merge\n";
      return 1;
    }
  }

  const pdt::ductape::PDB merged = pdt::tools::pdbmerge(std::move(inputs), jobs);
  if (!merged.write(output, format)) {
    std::cerr << "pdbmerge: cannot write '" << output << "'\n";
    return 1;
  }
  std::cout << "wrote " << output << '\n';
  if (obs.wanted()) {
    pdt::trace::StatsReport report("pdbmerge");
    report.setCounters(pdt::trace::globalCounters());
    if (!obs.finish(report)) return 1;
  }
  return 0;
}
