// pdbmerge: merges PDB files from separate compilations into one PDB
// file, eliminating duplicate template instantiations in the process
// (paper Table 2).
#include <iostream>
#include <vector>

#include "tools/tools.h"

int main(int argc, char** argv) {
  if (argc < 4 || std::string(argv[argc - 2]) != "-o") {
    std::cerr << "usage: pdbmerge <in1.pdb> <in2.pdb>... -o <out.pdb>\n";
    return 2;
  }
  std::vector<pdt::ductape::PDB> inputs;
  for (int i = 1; i < argc - 2; ++i) {
    pdt::ductape::PDB pdb = pdt::ductape::PDB::read(argv[i]);
    if (!pdb.valid()) {
      std::cerr << "pdbmerge: " << pdb.errorMessage() << '\n';
      return 1;
    }
    inputs.push_back(std::move(pdb));
  }
  const pdt::ductape::PDB merged = pdt::tools::pdbmerge(std::move(inputs));
  if (!merged.write(argv[argc - 1])) {
    std::cerr << "pdbmerge: cannot write '" << argv[argc - 1] << "'\n";
    return 1;
  }
  std::cout << "wrote " << argv[argc - 1] << '\n';
  return 0;
}
