#include "tools/tools.h"

#include <future>
#include <iomanip>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "query/render.h"
#include "support/text.h"
#include "support/thread_pool.h"

namespace pdt::tools {

using namespace ductape;

namespace {

std::string_view accessName(pdbItem::access_t a) {
  switch (a) {
    case pdbItem::AC_PUB: return "public";
    case pdbItem::AC_PROT: return "protected";
    case pdbItem::AC_PRIV: return "private";
    case pdbItem::AC_NA: return "NA";
  }
  return "NA";
}

std::string_view templateKindName(pdbItem::templ_t k) {
  switch (k) {
    case pdbItem::TE_CLASS: return "class template";
    case pdbItem::TE_FUNC: return "function template";
    case pdbItem::TE_MEMFUNC: return "member function template";
    case pdbItem::TE_STATMEM: return "static member template";
  }
  return "?";
}

}  // namespace

std::string locText(const pdbLoc& loc) {
  if (!loc.valid()) return "<generated>";
  return loc.file()->name() + ":" + std::to_string(loc.line()) + ":" +
         std::to_string(loc.col());
}

// ---------------------------------------------------------------------------
// pdbconv
// ---------------------------------------------------------------------------

void pdbconv(const PDB& pdb, std::ostream& os) {
  os << "Program database (PDB 1.0)\n";
  os << "==========================\n\n";

  os << "Source files (" << pdb.getFileVec().size() << "):\n";
  for (const pdbFile* f : pdb.getFileVec()) {
    os << "  so#" << f->id() << "  " << f->name() << '\n';
    for (const pdbFile* inc : f->includes()) {
      os << "      includes " << inc->name() << '\n';
    }
  }
  os << '\n';

  os << "Templates (" << pdb.getTemplateVec().size() << "):\n";
  for (const pdbTemplate* t : pdb.getTemplateVec()) {
    os << "  te#" << t->id() << "  " << t->fullName() << " ["
       << templateKindName(t->kind()) << "] at " << locText(t->location())
       << '\n';
  }
  os << '\n';

  os << "Classes (" << pdb.getClassVec().size() << "):\n";
  for (const pdbClass* c : pdb.getClassVec()) {
    os << "  cl#" << c->id() << "  " << c->fullName();
    if (c->isTemplate() != nullptr)
      os << " (instantiated from template " << c->isTemplate()->name() << ")";
    if (c->isSpecialized()) os << " (specialization)";
    os << " at " << locText(c->location()) << '\n';
    for (const pdbBase& b : c->baseClasses()) {
      os << "      base: " << accessName(b.access())
         << (b.isVirtual() ? " virtual " : " ") << b.base()->fullName() << '\n';
    }
    for (const pdbRoutine* r : c->funcMembers()) {
      os << "      member function: " << r->name() << '\n';
    }
    for (const pdbMember& m : c->dataMembers()) {
      os << "      member " << m.kind() << ": " << m.name() << " ["
         << accessName(m.access()) << "]";
      if (m.type() != nullptr) os << " : " << m.type()->name();
      if (m.classType() != nullptr) os << " : " << m.classType()->name();
      os << '\n';
    }
    for (const pdbFriend& f : c->friends()) {
      os << "      friend " << (f.isClass() ? "class " : "function ")
         << f.name() << '\n';
    }
  }
  os << '\n';

  os << "Routines (" << pdb.getRoutineVec().size() << "):\n";
  for (const pdbRoutine* r : pdb.getRoutineVec()) {
    os << "  ro#" << r->id() << "  " << r->fullName();
    if (r->signature() != nullptr) os << " : " << r->signature()->name();
    os << " at " << locText(r->location()) << '\n';
    os << "      access: " << accessName(r->access())
       << "  virtual: "
       << (r->virtuality() == pdbItem::VI_PURE
               ? "pure"
               : (r->virtuality() == pdbItem::VI_VIRT ? "yes" : "no"))
       << "  defined: " << (r->isDefined() ? "yes" : "no") << '\n';
    if (r->isTemplate() != nullptr) {
      os << "      instantiated from template " << r->isTemplate()->name()
         << " (" << templateKindName(r->isTemplate()->kind()) << ")\n";
    }
    for (const pdbCall* call : r->callees()) {
      os << "      calls " << call->call()->fullName()
         << (call->isVirtual() ? " [virtual]" : "") << " at "
         << locText(call->location()) << '\n';
    }
  }
  os << '\n';

  os << "Types (" << pdb.getTypeVec().size() << "):\n";
  for (const pdbType* t : pdb.getTypeVec()) {
    os << "  ty#" << t->id() << "  " << t->name() << '\n';
  }
  os << '\n';

  if (!pdb.getNamespaceVec().empty()) {
    os << "Namespaces (" << pdb.getNamespaceVec().size() << "):\n";
    for (const pdbNamespace* n : pdb.getNamespaceVec()) {
      os << "  na#" << n->id() << "  " << n->fullName();
      if (!n->alias().empty()) os << " (alias for " << n->alias() << ")";
      os << "  [" << n->members().size() << " members]\n";
    }
    os << '\n';
  }

  if (!pdb.getMacroVec().empty()) {
    os << "Macros (" << pdb.getMacroVec().size() << "):\n";
    for (const pdbMacro* m : pdb.getMacroVec()) {
      os << "  ma#" << m->id() << "  " << m->name()
         << (m->kind() == pdbMacro::MA_UNDEF ? " [undef]" : "") << '\n';
    }
    os << '\n';
  }

  if (!pdb.raw().dynProfs().empty()) {
    os << "Dynamic profiles (" << pdb.raw().dynProfs().size() << "):\n";
    for (const auto& p : pdb.raw().dynProfs()) {
      os << "  dp#" << p.id << "  " << p.name << "  calls=" << p.calls
         << " incl_ns=" << p.inclusive_ns << " excl_ns=" << p.exclusive_ns
         << " thr=" << p.threads << " ctx=" << p.contexts;
      if (p.routine != 0) os << "  -> ro#" << p.routine;
      os << '\n';
    }
    os << '\n';
  }
}

// ---------------------------------------------------------------------------
// pdbhtml
// ---------------------------------------------------------------------------

namespace {

std::string anchor(std::string_view prefix, int id) {
  return std::string(prefix) + std::to_string(id);
}

std::string link(std::string_view prefix, int id, const std::string& text) {
  return "<a href=\"#" + anchor(prefix, id) + "\">" + escapeHtml(text) + "</a>";
}

}  // namespace

void pdbhtml(const PDB& pdb, std::ostream& os, const std::string& title) {
  os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>"
     << escapeHtml(title) << "</title>\n"
     << "<style>body{font-family:monospace} h2{border-bottom:1px solid #888}"
        " .item{margin:0.6em 0} .attr{margin-left:2em;color:#444}"
        " .toc li{margin:0.2em 0}</style>\n"
     << "</head>\n<body>\n<h1>" << escapeHtml(title) << "</h1>\n";

  // Summary + table of contents.
  os << "<ul class=\"toc\">\n";
  os << "<li><a href=\"#files\">Source Files</a> ("
     << pdb.getFileVec().size() << ")</li>\n";
  os << "<li><a href=\"#templates\">Templates</a> ("
     << pdb.getTemplateVec().size() << ")</li>\n";
  os << "<li><a href=\"#classes\">Classes</a> (" << pdb.getClassVec().size()
     << ")</li>\n";
  os << "<li><a href=\"#routines\">Routines</a> ("
     << pdb.getRoutineVec().size() << ")</li>\n";
  os << "<li><a href=\"#namespaces\">Namespaces</a> ("
     << pdb.getNamespaceVec().size() << ")</li>\n";
  os << "<li><a href=\"#macros\">Macros</a> (" << pdb.getMacroVec().size()
     << ")</li>\n";
  os << "</ul>\n";

  os << "<h2 id=\"files\">Source Files</h2>\n";
  for (const pdbFile* f : pdb.getFileVec()) {
    os << "<div class=\"item\" id=\"" << anchor("so", f->id()) << "\"><b>"
       << escapeHtml(f->name()) << "</b>";
    for (const pdbFile* inc : f->includes()) {
      os << "<div class=\"attr\">includes " << link("so", inc->id(), inc->name())
         << "</div>";
    }
    os << "</div>\n";
  }

  os << "<h2 id=\"templates\">Templates</h2>\n";
  for (const pdbTemplate* t : pdb.getTemplateVec()) {
    os << "<div class=\"item\" id=\"" << anchor("te", t->id()) << "\"><b>"
       << escapeHtml(t->fullName()) << "</b> ("
       << escapeHtml(std::string(templateKindName(t->kind()))) << ")";
    if (!t->text().empty())
      os << "<div class=\"attr\"><pre>" << escapeHtml(t->text()) << "</pre></div>";
    os << "</div>\n";
  }

  os << "<h2 id=\"classes\">Classes</h2>\n";
  for (const pdbClass* c : pdb.getClassVec()) {
    os << "<div class=\"item\" id=\"" << anchor("cl", c->id()) << "\"><b>"
       << escapeHtml(c->fullName()) << "</b>";
    os << "<div class=\"attr\">at " << escapeHtml(locText(c->location()))
       << "</div>";
    if (c->isTemplate() != nullptr) {
      os << "<div class=\"attr\">instantiated from "
         << link("te", c->isTemplate()->id(), c->isTemplate()->name()) << "</div>";
    }
    for (const pdbBase& b : c->baseClasses()) {
      os << "<div class=\"attr\">base "
         << link("cl", b.base()->id(), b.base()->fullName()) << "</div>";
    }
    for (const pdbRoutine* r : c->funcMembers()) {
      os << "<div class=\"attr\">member " << link("ro", r->id(), r->name())
         << "</div>";
    }
    for (const pdbMember& m : c->dataMembers()) {
      os << "<div class=\"attr\">member " << escapeHtml(m.name());
      if (m.classType() != nullptr) {
        os << " : "
           << link("cl", m.classType()->id(), m.classType()->name());
      } else if (m.type() != nullptr) {
        os << " : " << escapeHtml(m.type()->name());
      }
      os << "</div>";
    }
    os << "</div>\n";
  }

  os << "<h2 id=\"routines\">Routines</h2>\n";
  for (const pdbRoutine* r : pdb.getRoutineVec()) {
    os << "<div class=\"item\" id=\"" << anchor("ro", r->id()) << "\"><b>"
       << escapeHtml(r->fullName()) << "</b>";
    os << "<div class=\"attr\">at " << escapeHtml(locText(r->location()))
       << "</div>";
    if (r->signature() != nullptr)
      os << " <span class=\"attr\">" << escapeHtml(r->signature()->name())
         << "</span>";
    if (r->parentClass() != nullptr) {
      os << "<div class=\"attr\">member of "
         << link("cl", r->parentClass()->id(), r->parentClass()->fullName())
         << "</div>";
    }
    for (const pdbCall* call : r->callees()) {
      os << "<div class=\"attr\">calls "
         << link("ro", call->call()->id(), call->call()->fullName())
         << (call->isVirtual() ? " (virtual)" : "") << "</div>";
    }
    os << "</div>\n";
  }

  os << "<h2 id=\"namespaces\">Namespaces</h2>\n";
  for (const pdbNamespace* n : pdb.getNamespaceVec()) {
    os << "<div class=\"item\" id=\"" << anchor("na", n->id()) << "\"><b>"
       << escapeHtml(n->fullName()) << "</b>";
    if (!n->alias().empty())
      os << " (alias for " << escapeHtml(n->alias()) << ")";
    for (const pdbItem* m : n->members()) {
      os << "<div class=\"attr\">member " << escapeHtml(m->name()) << "</div>";
    }
    os << "</div>\n";
  }

  os << "<h2 id=\"macros\">Macros</h2>\n";
  for (const pdbMacro* m : pdb.getMacroVec()) {
    os << "<div class=\"item\" id=\"" << anchor("ma", m->id()) << "\"><b>"
       << escapeHtml(m->name()) << "</b>"
       << (m->kind() == pdbMacro::MA_UNDEF ? " (undef)" : "");
    if (!m->text().empty())
      os << "<div class=\"attr\"><pre>" << escapeHtml(m->text()) << "</pre></div>";
    os << "</div>\n";
  }

  os << "</body>\n</html>\n";
}

// ---------------------------------------------------------------------------
// pdbmerge
// ---------------------------------------------------------------------------

PDB pdbmerge(std::vector<PDB> inputs, std::size_t jobs) {
  if (inputs.empty()) return PDB{};
  if (jobs <= 1 || inputs.size() < 3) {
    PDB merged = std::move(inputs.front());
    for (std::size_t i = 1; i < inputs.size(); ++i) merged.merge(inputs[i]);
    return merged;
  }

  // Parallel tree reduction: each round merges adjacent pairs in input
  // order (log-depth instead of a linear fold). Pair (i, i+1) always merges
  // i+1 into i, and an odd tail is carried to the next round, so the
  // sequence of appends — and therefore every assigned id — is identical
  // to the serial fold.
  ThreadPool pool(jobs);
  std::vector<PDB> round = std::move(inputs);
  while (round.size() > 1) {
    std::vector<std::future<PDB>> merges;
    merges.reserve(round.size() / 2);
    for (std::size_t i = 0; i + 1 < round.size(); i += 2) {
      merges.push_back(pool.submit(
          [left = std::move(round[i]), right = std::move(round[i + 1])]() mutable {
            left.merge(right);
            return std::move(left);
          }));
    }
    std::vector<PDB> next;
    next.reserve(merges.size() + 1);
    for (auto& m : merges) next.push_back(m.get());
    if (round.size() % 2 != 0) next.push_back(std::move(round.back()));
    round = std::move(next);
  }
  return std::move(round.front());
}

// ---------------------------------------------------------------------------
// pdbtree
// ---------------------------------------------------------------------------

namespace {

/// Writes `width` spaces from a caller-owned, reusable pad buffer. The
/// deep-tree walks emit O(depth) padding per line — going through the
/// ostream's setw/fill machinery for each line dominated BM_CallTreeWalk
/// (the /500 chain spends most of its bytes on indentation).
void writePad(std::ostream& os, std::string& pad, int width) {
  if (width <= 0) return;
  const auto w = static_cast<std::size_t>(width);
  if (pad.size() < w) pad.resize(w, ' ');
  os.write(pad.data(), static_cast<std::streamsize>(w));
}

}  // namespace

// The call-graph display routine of paper Figure 5, with the same output
// byte for byte. The paper's version recurses per callee and re-copies
// each callvec; on deep call chains (BM_CallTreeWalk/500) that walk is
// hot, so this implementation drives an explicit worklist instead:
// no per-node vector copies, no recursion depth limit, and indentation
// comes from a single reusable pad buffer.
void printFuncTree(const pdbRoutine* r, int level, std::ostream& os) {
  struct Frame {
    const pdbRoutine* routine;
    std::size_t next = 0;  // index of the next callee to visit
  };
  std::string pad;
  std::vector<Frame> stack;
  r->flag(ACTIVE);
  stack.push_back({r});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const pdbRoutine::callvec& callees = frame.routine->callees();
    if (frame.next >= callees.size()) {
      frame.routine->flag(INACTIVE);
      stack.pop_back();
      continue;
    }
    const pdbCall* call = callees[frame.next++];
    const pdbRoutine* rr = call->call();
    // The routine on top of the stack prints its callees at `level` plus
    // its depth below the root — exactly the paper's level parameter.
    const int cur = level + static_cast<int>(stack.size()) - 1;
    if (cur != 0 || !rr->callees().empty()) {
      writePad(os, pad, (cur - 1) * 5);
      if (cur) os << "`--> ";
      os << rr->fullName();
      if (call->isVirtual()) os << " (VIRTUAL)";
      if (rr->flag() == ACTIVE) {
        os << " ... " << '\n';
      } else {
        os << '\n';
        rr->flag(ACTIVE);
        stack.push_back({rr});  // invalidates `frame`; loop re-derives it
      }
    }
  }
}

void pdbtree(const PDB& pdb, TreeKind kind, std::ostream& os) {
  // The tree walkers live in the shared query layer now (so pdbd serves
  // the same bytes); a borrowed Index memoizes the roots for this call.
  const query::Index index(pdb);
  switch (kind) {
    case TreeKind::Includes:
      query::renderTree(index, query::Tree::Includes, os);
      break;
    case TreeKind::ClassHierarchy:
      query::renderTree(index, query::Tree::ClassHierarchy, os);
      break;
    case TreeKind::CallGraph:
      query::renderTree(index, query::Tree::CallGraph, os);
      break;
    case TreeKind::Profile:
      query::renderTree(index, query::Tree::Profile, os);
      break;
  }
}

}  // namespace pdt::tools
