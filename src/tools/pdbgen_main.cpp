// pdbgen: generates a deterministic synthetic PDB corpus for scale
// benchmarks and the sharded-merge CI gate. One output file per synthetic
// translation unit; the same flags always produce byte-identical files.
#include <charconv>
#include <cstdio>
#include <iostream>
#include <string>

#include "pdb/format.h"
#include "tools/synth.h"

namespace {

constexpr const char* kUsage =
    "usage: pdbgen -o <dir> -n <units> [--format=ascii|bin]\n"
    "              [--shared N] [--unique N] [--routines N] [--name-bytes N]\n"
    "  -o DIR            output directory (must exist); files are\n"
    "                    DIR/tu_<index>.pdb\n"
    "  -n UNITS          number of synthetic translation units\n"
    "  --format=FORMAT   storage format of the units (default bin)\n"
    "  --shared N        shared template instantiations per TU (default 32)\n"
    "  --unique N        unique classes per TU (default 4)\n"
    "  --routines N      routines per TU (default 16)\n"
    "  --name-bytes N    approximate type-spelling length (default 120)\n";

bool parseInt(const std::string& value, int& out) {
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  return ec == std::errc{} && ptr == value.data() + value.size() && out >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  int units = -1;
  pdt::pdb::Format format = pdt::pdb::Format::Binary;
  pdt::tools::SynthOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto intFlag = [&](const char* name, int& out) {
      if (arg != name || i + 1 >= argc) return false;
      if (!parseInt(argv[++i], out)) {
        std::cerr << "pdbgen: invalid value for " << name << '\n';
        std::exit(2);
      }
      return true;
    };
    if (arg == "-o" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "-n" && i + 1 < argc) {
      if (!parseInt(argv[++i], units)) {
        std::cerr << "pdbgen: invalid value for -n\n";
        return 2;
      }
    } else if (arg.starts_with("--format=")) {
      const auto parsed = pdt::pdb::formatFromName(arg.substr(9));
      if (!parsed) {
        std::cerr << "pdbgen: unknown format '" << arg.substr(9) << "'\n";
        return 2;
      }
      format = *parsed;
    } else if (intFlag("--shared", opts.shared_classes) ||
               intFlag("--unique", opts.unique_classes) ||
               intFlag("--routines", opts.routines) ||
               intFlag("--name-bytes", opts.name_bytes)) {
      // parsed by intFlag
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << kUsage;
      return 2;
    }
  }
  if (dir.empty() || units < 0) {
    std::cerr << kUsage;
    return 2;
  }

  for (int i = 0; i < units; ++i) {
    const pdt::pdb::PdbFile pdb = pdt::tools::synthUnit(i, opts);
    const std::string path = dir + "/tu_" + std::to_string(i) + ".pdb";
    if (!pdt::pdb::writeFile(pdb, path, format)) {
      std::cerr << "pdbgen: cannot write '" << path << "'\n";
      return 1;
    }
  }
  std::cout << "wrote " << units << " units to " << dir << '\n';
  return 0;
}
