#include "tools/build_cache.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>
#include <utility>

#include "lex/preprocessor.h"
#include "pdb/binary_writer.h"
#include "pdb/format.h"
#include "pdb/snapshot.h"
#include "pdb/validate.h"
#include "support/hash.h"
#include "support/text.h"

namespace pdt::tools {

namespace fs = std::filesystem;

namespace {

/// Seconds since the epoch; the manifest stamp. Wall-clock is fine here:
/// stamps order evictions, they never influence compiler output.
std::uint64_t nowStamp() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Writes `text` to `path` atomically: temp file in the same directory,
/// then rename (POSIX rename within a directory is atomic, so concurrent
/// writers — the -j N workers, or two cxxparse processes — can never
/// expose a partial entry). Returns false on any I/O failure.
bool atomicWrite(const fs::path& path, const std::string& text) {
  static std::atomic<std::uint64_t> counter{0};
  fs::path tmp = path;
  tmp += ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(text.data(), static_cast<std::streamsize>(text.size()));
    if (!os.good()) {
      os.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

/// One parsed manifest: "key|stamp|size|source|dep;dep;..." (paths that
/// contain '|' or ';' are not supported by the cache and scan unkeyed).
struct Manifest {
  std::string key;
  std::uint64_t stamp = 0;
  std::uint64_t size = 0;
  std::string source;
  std::vector<std::string> deps;
};

std::string renderManifest(const CacheKey& key, std::uint64_t stamp,
                           std::uint64_t size) {
  std::string line;
  std::size_t dep_bytes = 0;
  for (const std::string& d : key.deps) dep_bytes += d.size() + 1;
  line.reserve(key.hex.size() + key.source.size() + dep_bytes + 48);
  line += key.hex;
  line += '|';
  line += std::to_string(stamp);
  line += '|';
  line += std::to_string(size);
  line += '|';
  line += key.source;
  line += '|';
  for (std::size_t i = 0; i < key.deps.size(); ++i) {
    if (i > 0) line += ';';
    line += key.deps[i];
  }
  line += '\n';
  return line;
}

std::optional<Manifest> parseManifest(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  const auto fields = split(line, '|');
  if (fields.size() != 5) return std::nullopt;
  Manifest m;
  m.key = std::string(fields[0]);
  m.source = std::string(fields[3]);
  // Stamps exceed 32 bits, so text.h's parseUint is too narrow here.
  const auto parse_u64 = [](std::string_view text, std::uint64_t& out) {
    if (text.empty()) return false;
    out = 0;
    for (const char c : text) {
      if (c < '0' || c > '9') return false;
      out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
  };
  if (!parse_u64(fields[1], m.stamp) || !parse_u64(fields[2], m.size))
    return std::nullopt;
  for (const auto dep : split(fields[4], ';'))
    if (!dep.empty()) m.deps.emplace_back(dep);
  return m;
}

void removeEntryFiles(const fs::path& pdb_path, const fs::path& manifest_path,
                      const fs::path& stats_path) {
  std::error_code ec;
  fs::remove(pdb_path, ec);
  fs::remove(manifest_path, ec);
  fs::remove(stats_path, ec);
}

std::optional<std::string> slurpFile(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream ss;
  ss << is.rdbuf();
  return std::move(ss).str();
}

}  // namespace

std::string cacheStatsText(const CacheStats& stats) {
  std::string line = "cache: ";
  line += std::to_string(stats.hits);
  line += stats.hits == 1 ? " hit, " : " hits, ";
  line += std::to_string(stats.misses);
  line += stats.misses == 1 ? " miss, " : " misses, ";
  line += std::to_string(stats.stores);
  line += " stored, ";
  line += std::to_string(stats.evictions);
  line += " evicted, ";
  line += std::to_string(stats.unkeyed);
  line += " unkeyed";
  return line;
}

std::vector<std::pair<std::string, std::uint64_t>> cacheStatsSection(
    const CacheStats& stats) {
  return {{"hits", stats.hits},
          {"misses", stats.misses},
          {"stores", stats.stores},
          {"evictions", stats.evictions},
          {"unkeyed", stats.unkeyed},
          {"revalidations", stats.revalidations}};
}

std::string canonicalOptionsText(
    const frontend::FrontendOptions& frontend_options,
    const ilanalyzer::AnalyzerOptions& analyzer_options) {
  std::string text;
  text.reserve(256);
  text += "include_dirs=";
  for (const std::string& dir : frontend_options.include_dirs) {
    text += dir;
    text += ';';
  }
  text += "\ndefines=";
  for (const auto& [name, value] : frontend_options.defines) {
    text += name;
    text += '=';
    text += value;
    text += ';';
  }
  text += "\nsema.used_mode=";
  text += frontend_options.sema.used_mode ? '1' : '0';
  text += "\nsema.record_specialization_origin=";
  text += frontend_options.sema.record_specialization_origin ? '1' : '0';
  text += "\nanalyzer.use_direct_template_links=";
  text += analyzer_options.use_direct_template_links ? '1' : '0';
  text += "\nanalyzer.emit_uninstantiated_templates=";
  text += analyzer_options.emit_uninstantiated_templates ? '1' : '0';
  text += '\n';
  return text;
}

std::optional<CacheKey> computeCacheKey(
    SourceManager& sm, const std::string& input,
    const frontend::FrontendOptions& frontend_options,
    const ilanalyzer::AnalyzerOptions& analyzer_options) {
  // The scan is cache plumbing, not compilation: its preprocessor counts
  // (includes, macro expansions) must not pollute the TU's counters, or
  // warm and cold runs would disagree.
  const trace::CounterScope suppress(nullptr);
  for (const std::string& dir : frontend_options.include_dirs)
    sm.addSearchDir(dir);
  const auto main_file = sm.loadFile(input);
  if (!main_file) return std::nullopt;

  // Preprocessor-only scan: executes directives and expands macros (so a
  // -D that flips a conditional #include is followed correctly) but never
  // parses. Diagnostics go to a throwaway engine; any diagnostic — even a
  // warning — makes the TU uncacheable, because a cache hit skips the
  // compile that would re-emit it.
  DiagnosticEngine scan_diags;
  lex::Preprocessor pp(sm, scan_diags);
  for (const auto& [name, value] : frontend_options.defines)
    pp.predefineMacro(name, value);
  pp.enterMainFile(*main_file);
  for (lex::Token t = pp.next(); !t.isEnd(); t = pp.next()) {
  }
  if (!scan_diags.all().empty()) return std::nullopt;

  CacheKey key;
  key.source = input;
  Fnv128 hasher;
  hasher.update(kCacheFormatVersion);
  const std::string options_text =
      canonicalOptionsText(frontend_options, analyzer_options);
  hasher.updateU64(options_text.size());
  hasher.update(options_text);

  const std::vector<FileId>& files = pp.filesSeen();
  hasher.updateU64(files.size());
  key.deps.reserve(files.size());
  for (const FileId file : files) {
    const std::string& name = sm.name(file);
    const std::string_view content = sm.content(file);
    // Paths containing the manifest separators would corrupt the manifest.
    if (name.find('|') != std::string::npos ||
        name.find(';') != std::string::npos)
      return std::nullopt;
    hasher.updateU64(name.size());
    hasher.update(name);
    hasher.updateU64(content.size());
    hasher.update(content);
    key.deps.push_back(name);
  }
  key.hex = hasher.digest().hex();
  return key;
}

BuildCache::BuildCache(CacheOptions options) : options_(std::move(options)) {
  if (!options_.dir.empty()) {
    std::error_code ec;
    fs::create_directories(options_.dir, ec);
  }
}

std::string BuildCache::pdbPath(const CacheKey& key) const {
  return (fs::path(options_.dir) / (key.hex + ".pdb")).string();
}

std::string BuildCache::manifestPath(const CacheKey& key) const {
  return (fs::path(options_.dir) / (key.hex + ".manifest")).string();
}

std::string BuildCache::statsPath(const CacheKey& key) const {
  return (fs::path(options_.dir) / (key.hex + ".stats")).string();
}

std::optional<pdb::PdbFile> BuildCache::fetch(const CacheKey& key,
                                              CacheStats& stats,
                                              trace::CounterBlock* replay) const {
  if (!enabled()) return std::nullopt;
  // Cache I/O (the entry's pdb parse in particular) must not count as
  // compilation work; the entry's own sidecar carries the real counters.
  const trace::CounterScope suppress(nullptr);
  const fs::path pdb_path = pdbPath(key);
  const fs::path manifest_path = manifestPath(key);
  const fs::path stats_path = statsPath(key);

  // The manifest is published last, so its presence marks a complete
  // entry; no manifest (or an unparsable one) means miss.
  const auto manifest = parseManifest(manifest_path);
  std::error_code ec;
  if (!manifest || manifest->key != key.hex) {
    if (manifest || fs::exists(pdb_path, ec)) {
      removeEntryFiles(pdb_path, manifest_path, stats_path);
      ++stats.evictions;
    }
    ++stats.misses;
    return std::nullopt;
  }

  // Entries are stored in the binary format, but reads auto-detect so a
  // cache directory can mix entries (e.g. hand-seeded ASCII ones).
  auto read = pdb::open(pdb_path.string());
  const bool parses = read.ok();
  // Never trust a cache entry: a truncated, hand-edited, or stale-format
  // value must fall back to a recompile, not flow into the merge. The
  // counter sidecar is part of the entry: without it a hit could not
  // replay the compile's counters, so it too is revalidated here.
  const auto sidecar_text = slurpFile(stats_path);
  const auto sidecar =
      sidecar_text ? trace::CounterBlock::deserialize(*sidecar_text)
                   : std::nullopt;
  if (!parses || !sidecar ||
      !pdb::validate(read.snapshot->pdb()).empty()) {
    removeEntryFiles(pdb_path, manifest_path, stats_path);
    ++stats.evictions;
    ++stats.misses;
    return std::nullopt;
  }
  ++stats.revalidations;

  // Bump the manifest stamp so the LRU sweep sees this entry as fresh.
  (void)atomicWrite(manifest_path, renderManifest(key, nowStamp(), manifest->size));
  ++stats.hits;
  if (replay != nullptr) *replay = *sidecar;
  return read.snapshot->clonePdb();
}

void BuildCache::store(const CacheKey& key, const pdb::PdbFile& pdb,
                       const trace::CounterBlock& counters,
                       CacheStats& stats) const {
  if (!enabled()) return;
  // Serializing the pdb here is cache plumbing; see fetch(). Entries are
  // binary v2: smaller on disk and ~2x faster to revalidate + reload on a
  // warm hit than the ASCII form, with the checksum catching truncation.
  const trace::CounterScope suppress(nullptr);
  const std::string bytes = pdb::writeBinaryToString(pdb);
  if (!atomicWrite(pdbPath(key), bytes)) return;
  if (!atomicWrite(statsPath(key), counters.serialize())) return;
  if (!atomicWrite(manifestPath(key), renderManifest(key, nowStamp(), bytes.size())))
    return;
  ++stats.stores;
}

std::uint64_t BuildCache::totalSizeBytes() const {
  if (!enabled()) return 0;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    total += static_cast<std::uint64_t>(entry.file_size(ec));
  }
  return total;
}

std::size_t BuildCache::sweep() const {
  if (!enabled() || options_.limit_mb == 0) return 0;
  const std::uint64_t cap = static_cast<std::uint64_t>(options_.limit_mb) << 20;

  struct Entry {
    std::uint64_t stamp = 0;
    std::uint64_t bytes = 0;  // pdb + manifest, as found on disk
    fs::path pdb_path;
    fs::path manifest_path;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(options_.dir, ec)) {
    if (!dirent.is_regular_file(ec)) continue;
    const fs::path path = dirent.path();
    if (path.extension() != ".manifest") continue;
    const auto manifest = parseManifest(path);
    Entry e;
    e.manifest_path = path;
    e.pdb_path = fs::path(path).replace_extension(".pdb");
    e.bytes = static_cast<std::uint64_t>(dirent.file_size(ec));
    std::error_code size_ec;
    const auto pdb_size = fs::file_size(e.pdb_path, size_ec);
    if (!size_ec) e.bytes += static_cast<std::uint64_t>(pdb_size);
    const auto stats_size =
        fs::file_size(fs::path(path).replace_extension(".stats"), size_ec);
    if (!size_ec) e.bytes += static_cast<std::uint64_t>(stats_size);
    // An unparsable manifest sorts oldest (stamp 0): evicted first.
    if (manifest) e.stamp = manifest->stamp;
    total += e.bytes;
    entries.push_back(std::move(e));
  }
  if (total <= cap) return 0;

  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.stamp != b.stamp) return a.stamp < b.stamp;
    return a.manifest_path < b.manifest_path;  // deterministic tie-break
  });
  std::size_t removed = 0;
  for (const Entry& e : entries) {
    if (total <= cap) break;
    removeEntryFiles(e.pdb_path, e.manifest_path,
                     fs::path(e.manifest_path).replace_extension(".stats"));
    total -= std::min(total, e.bytes);
    ++removed;
  }
  return removed;
}

}  // namespace pdt::tools
