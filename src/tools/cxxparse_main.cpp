// cxxparse: the frontend driver — parses a PDT-C++ translation unit and
// writes its program database, i.e. "C++ Front End + IL Analyzer" of the
// paper's Figure 2 pipeline in one command.
//
//   cxxparse <source.cpp>... [-I dir]... [-D name[=value]]... [-o out.pdb]
//            [--dump-ast] [--instantiate-all] [--direct-template-links]
//
// With several sources, each is compiled separately and the databases
// are merged (duplicate template instantiations eliminated), matching
// the compile-then-pdbmerge workflow of the paper.
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "ast/dump.h"
#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "pdb/writer.h"

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string output;
  bool dump_ast = false;
  pdt::frontend::FrontendOptions fe_options;
  pdt::ilanalyzer::AnalyzerOptions an_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-I" && i + 1 < argc) {
      fe_options.include_dirs.emplace_back(argv[++i]);
    } else if (arg.starts_with("-I")) {
      fe_options.include_dirs.emplace_back(arg.substr(2));
    } else if (arg == "-D" && i + 1 < argc) {
      const std::string def = argv[++i];
      const auto eq = def.find('=');
      fe_options.defines.emplace_back(def.substr(0, eq),
                                      eq == std::string::npos
                                          ? "1"
                                          : def.substr(eq + 1));
    } else if (arg.starts_with("-D")) {
      const std::string def = arg.substr(2);
      const auto eq = def.find('=');
      fe_options.defines.emplace_back(def.substr(0, eq),
                                      eq == std::string::npos
                                          ? "1"
                                          : def.substr(eq + 1));
    } else if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--dump-ast") {
      dump_ast = true;
    } else if (arg == "--instantiate-all") {
      fe_options.sema.used_mode = false;
    } else if (arg == "--direct-template-links") {
      fe_options.sema.record_specialization_origin = true;
      an_options.use_direct_template_links = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: cxxparse <source.cpp> [-I dir] [-D name[=value]] "
                   "[-o out.pdb] [--dump-ast] [--instantiate-all] "
                   "[--direct-template-links]\n";
      return 0;
    } else if (!arg.starts_with("-")) {
      inputs.push_back(arg);
    } else {
      std::cerr << "cxxparse: unknown option '" << arg << "'\n";
      return 2;
    }
  }
  if (inputs.empty()) {
    std::cerr << "cxxparse: no input file\n";
    return 2;
  }
  if (output.empty()) {
    output = inputs.front();
    if (const auto dot = output.find_last_of('.'); dot != std::string::npos)
      output.resize(dot);
    output += ".pdb";
  }

  // Compile each translation unit; merge when there are several.
  std::optional<pdt::ductape::PDB> merged;
  for (const std::string& input : inputs) {
    pdt::SourceManager sm;
    pdt::DiagnosticEngine diags;
    pdt::frontend::Frontend frontend(sm, diags, fe_options);
    auto result = frontend.compileFile(input);
    diags.print(std::cerr, sm);
    if (!result.success) return 1;
    if (dump_ast) {
      pdt::ast::dump(*result.ast, std::cout);
      continue;
    }
    auto pdb = pdt::ilanalyzer::analyze(result, sm, an_options);
    if (!merged) {
      merged = pdt::ductape::PDB::fromPdbFile(pdb);
    } else {
      merged->merge(pdt::ductape::PDB::fromPdbFile(pdb));
    }
  }
  if (dump_ast) return 0;

  if (!pdt::pdb::writeToFile(merged->raw(), output)) {
    std::cerr << "cxxparse: cannot write '" << output << "'\n";
    return 1;
  }
  std::cout << "wrote " << output << " (" << merged->raw().itemCount()
            << " items from " << inputs.size() << " translation unit"
            << (inputs.size() == 1 ? "" : "s") << ")\n";
  return 0;
}
