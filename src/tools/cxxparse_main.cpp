// cxxparse: the frontend driver — parses a PDT-C++ translation unit and
// writes its program database, i.e. "C++ Front End + IL Analyzer" of the
// paper's Figure 2 pipeline in one command.
//
//   cxxparse <source.cpp>... [-I dir]... [-D name[=value]]... [-o out.pdb]
//            [-j N] [--cache-dir dir] [--cache-limit-mb N] [--cache-stats]
//            [--no-cache] [--dump-ast] [--instantiate-all]
//            [--direct-template-links]
//
// With several sources, each is compiled separately and the databases
// are merged (duplicate template instantiations eliminated), matching
// the compile-then-pdbmerge workflow of the paper. -j N compiles the
// translation units on N worker threads; the merge is always performed
// in input order, so the output is byte-identical to a serial run.
//
// --cache-dir enables the content-addressed per-TU build cache
// (docs/CACHING.md): unchanged TUs are republished from disk instead of
// recompiled, and cached/uncached/mixed runs stay byte-identical.
#include <charconv>
#include <iostream>
#include <string>
#include <vector>

#include "ast/dump.h"
#include "frontend/frontend.h"
#include "pdb/format.h"
#include "pdb/writer.h"
#include "support/trace.h"
#include "tools/driver.h"

namespace {

constexpr const char* kUsage =
    "usage: cxxparse <source.cpp>... [-I dir] [-D name[=value]] "
    "[-o out.pdb] [-j N] [--cache-dir dir] [--cache-limit-mb N] "
    "[--cache-stats[=json]] [--no-cache] [--stats[=json]] [--stats-out FILE] "
    "[--trace-out FILE] [--format=ascii|bin] [--mmap=MODE] [--dump-ast] "
    "[--instantiate-all] [--direct-template-links]\n"
    "  -j N, --jobs N      compile translation units on N worker threads\n"
    "                      (N >= 1; output is identical to a serial run)\n"
    "  --cache-dir dir     reuse per-TU results from the content-addressed\n"
    "                      build cache in dir (created if missing); output\n"
    "                      is identical to an uncached run\n"
    "  --cache-limit-mb N  after the run, evict least-recently-used cache\n"
    "                      entries until the cache is at most N MiB\n"
    "  --cache-stats       print hit/miss/store counters to stderr\n"
    "                      (--cache-stats=json for a machine-readable form)\n"
    "  --no-cache          ignore --cache-dir (compile everything)\n"
    "  --stats[=json]      per-phase timing + counter report on stderr;\n"
    "                      counters are identical at any -j and across\n"
    "                      warm/cold cache runs (docs/OBSERVABILITY.md)\n"
    "  --stats-out FILE    write the stats report to FILE\n"
    "  --trace-out FILE    write a Chrome trace_event JSON timeline to FILE\n"
    "                      (load in chrome://tracing or ui.perfetto.dev)\n"
    "  --format=FMT        output database format: ascii (default) or bin\n"
    "                      (binary PDB v2; see docs/PDB_FORMAT.md)\n"
    "  --mmap=MODE         how binary databases (e.g. cache entries) are\n"
    "                      read: auto (default), on, off\n";

/// Parses a -j/--jobs value: a positive decimal integer. Exits with a
/// diagnostic on 0 or non-numeric input instead of quietly misbehaving.
std::size_t parseJobs(const std::string& value) {
  std::size_t jobs = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), jobs);
  if (ec != std::errc{} || ptr != value.data() + value.size() || jobs == 0) {
    std::cerr << "cxxparse: invalid jobs value '" << value
              << "' (expected a positive integer)\n";
    std::exit(2);
  }
  return jobs;
}

/// Parses a --cache-limit-mb value: a non-negative decimal integer
/// (0 = unlimited, the default).
std::size_t parseCacheLimit(const std::string& value) {
  std::size_t mb = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), mb);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    std::cerr << "cxxparse: invalid cache limit '" << value
              << "' (expected a size in MiB)\n";
    std::exit(2);
  }
  return mb;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string output;
  pdt::pdb::Format format = pdt::pdb::Format::Ascii;
  bool dump_ast = false;
  bool no_cache = false;
  bool cache_stats = false;
  bool cache_stats_json = false;
  pdt::trace::ToolObservability obs;
  pdt::tools::DriverOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-I" && i + 1 < argc) {
      options.frontend.include_dirs.emplace_back(argv[++i]);
    } else if (arg.starts_with("-I")) {
      options.frontend.include_dirs.emplace_back(arg.substr(2));
    } else if (arg == "-D" && i + 1 < argc) {
      const std::string def = argv[++i];
      const auto eq = def.find('=');
      options.frontend.defines.emplace_back(def.substr(0, eq),
                                            eq == std::string::npos
                                                ? "1"
                                                : def.substr(eq + 1));
    } else if (arg.starts_with("-D")) {
      const std::string def = arg.substr(2);
      const auto eq = def.find('=');
      options.frontend.defines.emplace_back(def.substr(0, eq),
                                            eq == std::string::npos
                                                ? "1"
                                                : def.substr(eq + 1));
    } else if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if ((arg == "-j" || arg == "--jobs") && i + 1 < argc) {
      options.jobs = parseJobs(argv[++i]);
    } else if (arg.starts_with("-j") && arg != "-j") {
      options.jobs = parseJobs(arg.substr(2));
    } else if (arg.starts_with("--jobs=")) {
      options.jobs = parseJobs(arg.substr(7));
    } else if (arg == "-j" || arg == "--jobs") {
      std::cerr << "cxxparse: " << arg << " requires a value\n";
      return 2;
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      options.cache.dir = argv[++i];
    } else if (arg.starts_with("--cache-dir=")) {
      options.cache.dir = arg.substr(12);
    } else if (arg == "--cache-limit-mb" && i + 1 < argc) {
      options.cache.limit_mb = parseCacheLimit(argv[++i]);
    } else if (arg.starts_with("--cache-limit-mb=")) {
      options.cache.limit_mb = parseCacheLimit(arg.substr(17));
    } else if (arg == "--cache-stats" || arg == "--cache-stats=text") {
      cache_stats = true;
      cache_stats_json = false;
    } else if (arg == "--cache-stats=json") {
      cache_stats = true;
      cache_stats_json = true;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--cache-dir" || arg == "--cache-limit-mb") {
      std::cerr << "cxxparse: " << arg << " requires a value\n";
      return 2;
    } else if (arg.starts_with("--format=")) {
      const auto parsed = pdt::pdb::formatFromName(arg.substr(9));
      if (!parsed) {
        std::cerr << "cxxparse: unknown format '" << arg.substr(9)
                  << "' (expected ascii or bin)\n";
        return 2;
      }
      format = *parsed;
    } else if (std::string mmap_err; pdt::pdb::parseMmapFlag(arg, mmap_err)) {
      if (!mmap_err.empty()) {
        std::cerr << "cxxparse: " << mmap_err << '\n';
        return 2;
      }
    } else if (arg == "--dump-ast") {
      dump_ast = true;
    } else if (arg == "--instantiate-all") {
      options.frontend.sema.used_mode = false;
    } else if (arg == "--direct-template-links") {
      options.frontend.sema.record_specialization_origin = true;
      options.analyzer.use_direct_template_links = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.starts_with("-")) {
      inputs.push_back(arg);
    } else {
      bool used_next = false;
      std::string error;
      if (obs.parseFlag(arg, i + 1 < argc ? argv[i + 1] : nullptr, used_next,
                        error)) {
        if (!error.empty()) {
          std::cerr << "cxxparse: " << error << '\n';
          return 2;
        }
        if (used_next) ++i;
        continue;
      }
      std::cerr << "cxxparse: unknown option '" << arg << "'\n";
      return 2;
    }
  }
  if (inputs.empty()) {
    std::cerr << "cxxparse: no input file\n";
    return 2;
  }
  if (output.empty()) {
    output = inputs.front();
    if (const auto dot = output.find_last_of('.'); dot != std::string::npos)
      output.resize(dot);
    output += ".pdb";
  }

  if (dump_ast) {
    // AST dumping stays serial: it is a debugging aid and writes straight
    // to stdout per TU.
    for (const std::string& input : inputs) {
      pdt::SourceManager sm;
      pdt::DiagnosticEngine diags;
      pdt::frontend::Frontend frontend(sm, diags, options.frontend);
      auto result = frontend.compileFile(input);
      diags.print(std::cerr, sm);
      if (!result.success) return 1;
      pdt::ast::dump(*result.ast, std::cout);
    }
    return 0;
  }

  if (no_cache) options.cache = {};
  obs.begin();
  const pdt::tools::DriverResult result =
      pdt::tools::compileAndMerge(inputs, options);
  std::cerr << result.diagnostics;
  if (cache_stats) {
    if (cache_stats_json) {
      // The JSON form goes through the shared stats layer; the text form
      // below stays byte-for-byte what scripts have always parsed.
      pdt::trace::StatsReport report("cxxparse");
      report.addSection("cache",
                        pdt::tools::cacheStatsSection(result.cache_stats));
      report.renderJson(std::cerr);
    } else {
      std::cerr << pdt::tools::cacheStatsText(result.cache_stats) << '\n';
    }
  }
  const auto emit_observability = [&] {
    if (!obs.wanted()) return true;
    pdt::trace::StatsReport report("cxxparse");
    // Driver counters (per-TU blocks summed in input order) plus whatever
    // was counted outside a TU scope: the input-order merge and the final
    // database write.
    pdt::trace::CounterBlock totals = result.counters;
    totals += pdt::trace::globalCounters();
    report.setCounters(std::move(totals));
    if (!options.cache.dir.empty())
      report.addSection("cache",
                        pdt::tools::cacheStatsSection(result.cache_stats));
    return obs.finish(report);
  };
  if (!result.success) {
    emit_observability();
    return 1;
  }

  if (!options.cache.dir.empty() && options.cache.limit_mb > 0) {
    // Post-run LRU sweep: trims the cache back under the cap after the
    // fresh entries from this run have been published.
    const pdt::tools::BuildCache cache(options.cache);
    cache.sweep();
  }

  if (!pdt::pdb::writeFile(result.pdb->raw(), output, format)) {
    std::cerr << "cxxparse: cannot write '" << output << "'\n";
    return 1;
  }
  std::cout << "wrote " << output << " (" << result.pdb->raw().itemCount()
            << " items from " << inputs.size() << " translation unit"
            << (inputs.size() == 1 ? "" : "s") << ")\n";
  return emit_observability() ? 0 : 1;
}
