#include "tools/synth.h"

#include <utility>

namespace pdt::tools {
namespace {

/// A template spelling padded toward `target` bytes. Same inputs, same
/// spelling — the padding is a deterministic nested-template chain, so
/// the shared instantiations dedup across TUs byte-for-byte.
std::string spelling(const std::string& stem, int j, int target) {
  std::string name = stem + "<std::map<std::basic_string<char>, Payload" +
                     std::to_string(j) + ">";
  while (static_cast<int>(name.size()) + 16 < target)
    name += ", std::allocator<std::pair<const Key, Value> >";
  name += " >";
  return name;
}

}  // namespace

pdb::PdbFile synthUnit(int index, const SynthOptions& opts) {
  pdb::PdbFile pdb;
  const auto own = [&pdb](std::string s) { return pdb.own(std::move(s)); };

  // Shared header + this TU's source file.
  pdb::SourceFileItem header;
  header.name = "include/synth.h";
  const std::uint32_t header_id = pdb.addSourceFile(std::move(header));
  pdb::SourceFileItem tu;
  tu.name = own("src/tu_" + std::to_string(index) + ".cc");
  tu.includes.push_back(header_id);
  const std::uint32_t tu_id = pdb.addSourceFile(std::move(tu));

  // One shared signature type.
  pdb::TypeItem sig;
  sig.name = "void ()";
  sig.kind = "func";
  const std::uint32_t sig_id = pdb.addType(std::move(sig));

  // Shared template instantiations: identical in every TU, so pdbmerge
  // collapses them (the paper's duplicate-instantiation elimination).
  std::vector<std::uint32_t> shared_routines;
  for (int j = 0; j < opts.shared_classes; ++j) {
    pdb::TemplateItem te;
    te.name = own("Container" + std::to_string(j));
    te.kind = "class";
    te.location = {header_id, static_cast<std::uint32_t>(10 + j), 1};
    te.text = own("template <typename K, typename V> class Container" +
                  std::to_string(j) + " { K key; V value; };");
    const std::uint32_t te_id = pdb.addTemplate(std::move(te));

    pdb::ClassItem cl;
    cl.name = own(spelling("Container" + std::to_string(j), j, opts.name_bytes));
    cl.kind = "class";
    cl.location = {header_id, static_cast<std::uint32_t>(10 + j), 1};
    cl.template_id = te_id;
    cl.is_specialization = false;
    pdb::ClassItem::Member m;
    m.name = own("storage_" + std::to_string(j));
    m.access = "priv";
    m.kind = "var";
    m.type = {pdb::ItemKind::Type, sig_id};
    cl.members.push_back(m);
    const std::uint32_t cl_id = pdb.addClass(std::move(cl));

    pdb::RoutineItem ro;
    ro.name = own("Container" + std::to_string(j) + "::insert");
    ro.parent = pdb::ItemRef{pdb::ItemKind::Class, cl_id};
    ro.access = "pub";
    ro.signature = sig_id;
    ro.kind = "routine";
    ro.defined = true;
    ro.location = {header_id, static_cast<std::uint32_t>(10 + j), 3};
    shared_routines.push_back(pdb.addRoutine(std::move(ro)));
  }

  // Per-TU unique classes.
  for (int j = 0; j < opts.unique_classes; ++j) {
    pdb::ClassItem cl;
    cl.name = own(spelling(
        "Local" + std::to_string(index) + "_" + std::to_string(j), j,
        opts.name_bytes));
    cl.kind = "struct";
    cl.location = {tu_id, static_cast<std::uint32_t>(5 + j), 1};
    pdb.addClass(std::move(cl));
  }

  // Per-TU routines with call edges into the shared methods (exercises
  // cross-database id remapping during merge).
  std::uint32_t prev = 0;
  for (int j = 0; j < opts.routines; ++j) {
    pdb::RoutineItem ro;
    ro.name = own("tu" + std::to_string(index) + "_fn" + std::to_string(j));
    ro.signature = sig_id;
    ro.kind = "routine";
    ro.defined = true;
    ro.location = {tu_id, static_cast<std::uint32_t>(100 + j), 1};
    if (!shared_routines.empty()) {
      pdb::RoutineItem::Call call;
      call.routine = shared_routines[static_cast<std::size_t>(j) %
                                     shared_routines.size()];
      call.position = {tu_id, static_cast<std::uint32_t>(100 + j), 5};
      ro.calls.push_back(call);
    }
    if (prev != 0) {
      pdb::RoutineItem::Call call;
      call.routine = prev;
      call.position = {tu_id, static_cast<std::uint32_t>(100 + j), 9};
      ro.calls.push_back(call);
    }
    prev = pdb.addRoutine(std::move(ro));
  }

  pdb.reindex();
  return pdb;
}

}  // namespace pdt::tools
