// The multi-TU compile driver behind cxxparse: compile each translation
// unit (paper Figure 2: C++ Front End + IL Analyzer), then merge the
// per-TU databases in input order, eliminating duplicate template
// instantiations (Table 2).
//
// With jobs > 1 the TUs are compiled concurrently on a fixed-size thread
// pool; results are collected and merged strictly in input order, so the
// merged database — and the serialized PDB — is byte-identical to the
// serial (jobs == 1) run. Exposed as a library function so the
// determinism guarantee is testable without spawning processes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ductape/ductape.h"
#include "frontend/frontend.h"
#include "ilanalyzer/analyzer.h"
#include "tools/build_cache.h"

namespace pdt::tools {

struct DriverOptions {
  frontend::FrontendOptions frontend;
  ilanalyzer::AnalyzerOptions analyzer;
  std::size_t jobs = 1;  // worker threads for per-TU compilation
  /// Per-TU build cache (cache.dir empty = disabled). A hit republishes
  /// the cached database instead of compiling; hits, misses, and mixed
  /// runs all produce byte-identical merged output (enforced by
  /// tests/integration/cache_determinism_test).
  CacheOptions cache;
};

struct DriverResult {
  /// Merged database; engaged only when every TU compiled successfully.
  std::optional<ductape::PDB> pdb;
  /// Per-TU diagnostics concatenated in input order. On failure, TUs after
  /// the first failing one are omitted, matching the serial driver which
  /// stops at the first failure.
  std::string diagnostics;
  /// Aggregated cache counters (all zero when the cache is disabled).
  CacheStats cache_stats;
  /// Per-TU trace counters summed in input order (so --stats totals are
  /// identical at any -j). On a cache hit the TU's counters are replayed
  /// from the entry's sidecar, keeping warm and cold runs identical too.
  trace::CounterBlock counters;
  bool success = false;
};

/// Compiles `inputs` (each its own TU) and merges the databases in input
/// order. `jobs` only changes wall-clock time, never the result.
[[nodiscard]] DriverResult compileAndMerge(const std::vector<std::string>& inputs,
                                           const DriverOptions& options);

}  // namespace pdt::tools
