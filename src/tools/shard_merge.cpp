#include "tools/shard_merge.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <filesystem>
#include <future>
#include <system_error>
#include <utility>

#include "pdb/format.h"
#include "pdb/validate.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace pdt::tools {
namespace {

namespace fs = std::filesystem;

/// One partial merge: either resident (pdb engaged) or spilled to disk.
/// `estimate` is the sum of the constituent inputs' on-disk bytes — with
/// the zero-copy reader a resident partial pins the read buffers of every
/// input folded into it, so on-disk bytes are an honest footprint proxy.
struct Partial {
  std::optional<ductape::PDB> pdb;
  std::string spill_path;
  std::uint64_t estimate = 0;
};

/// Run-scoped spill directory, recursively removed on destruction — a
/// failed or interrupted merge cleans up exactly like a successful one.
class TempDir {
 public:
  explicit TempDir(std::string path) : path_(std::move(path)) {}
  ~TempDir() {
    if (!created_) return;
    std::error_code ec;
    fs::remove_all(path_, ec);  // best-effort: never throw from a dtor
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] bool create() {
    std::error_code ec;
    fs::create_directories(path_, ec);
    created_ = !ec;
    return created_;
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  bool created_ = false;
};

std::uint64_t fileSize(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

/// Mirrors pdbmerge's input checks: readable, and no dangling item
/// references (merging those would silently corrupt the combined
/// database). Failure messages append to `lines`.
bool checkInput(const ductape::PDB& pdb, const std::string& path,
                std::vector<std::string>& lines) {
  if (!pdb.valid()) {
    lines.push_back(pdb.errorMessage());
    return false;
  }
  const std::vector<std::string> errors = pdb::validate(pdb.raw());
  if (!errors.empty()) {
    for (const std::string& e : errors) lines.push_back(path + ": " + e);
    lines.push_back("'" + path +
                    "' references undefined items; refusing to merge");
    return false;
  }
  return true;
}

/// Shared spill machinery for the fold and reduce phases.
struct SpillSink {
  TempDir& dir;
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> spills{0};

  explicit SpillSink(TempDir& d) : dir(d) {}

  /// Writes `pdb` to a fresh spill file; empty string on write failure.
  /// Spill I/O is bookkeeping: counted via merge.spills, not pdb.files_*.
  std::string spill(const ductape::PDB& pdb) {
    const std::string path =
        dir.path() + "/part_" + std::to_string(seq.fetch_add(1)) + ".pdb";
    PDT_TRACE_SCOPE("merge.spill", path);
    const trace::CounterScope mute(nullptr);
    if (!pdb.write(path, pdb::Format::Binary)) return {};
    return path;
  }

  void countSpill() {
    spills.fetch_add(1);
    trace::count(trace::Counter::MergeSpills);
  }
};

/// Materializes a partial; reloads spilled ones (reload is bookkeeping
/// I/O, suppressed from the deterministic counters like the build cache's
/// fetches). Sets `error` and returns an empty PDB on reload failure.
ductape::PDB loadPartial(Partial&& p, std::string& error) {
  if (p.pdb) return std::move(*p.pdb);
  const trace::CounterScope mute(nullptr);
  ductape::PDB pdb = ductape::PDB::read(p.spill_path);
  if (!pdb.valid())
    error = "cannot reload spill file '" + p.spill_path +
            "': " + pdb.errorMessage();
  return pdb;
}

struct ShardOutput {
  std::vector<Partial> partials;                 // in fold order
  // (input index, messages) — index restores global input order later.
  std::vector<std::pair<std::size_t, std::vector<std::string>>> errors;
};

/// Folds inputs [begin, end) left to right, reading one input at a time
/// and spilling the accumulator whenever its estimate exceeds
/// `threshold` (0 = never). The ordered fold keeps the shard's combined
/// result identical to the serial merge of the same slice.
ShardOutput mergeShard(const std::vector<std::string>& inputs,
                       std::size_t begin, std::size_t end,
                       std::uint64_t threshold, SpillSink& sink) {
  PDT_TRACE_SCOPE("merge.shard", inputs[begin]);
  ShardOutput out;
  std::optional<ductape::PDB> acc;
  std::uint64_t acc_estimate = 0;
  std::size_t acc_inputs = 0;

  for (std::size_t i = begin; i < end; ++i) {
    ductape::PDB input = ductape::PDB::read(inputs[i]);
    std::vector<std::string> lines;
    if (!checkInput(input, inputs[i], lines)) {
      // Keep scanning so the caller can report every bad input at once.
      out.errors.emplace_back(i, std::move(lines));
      continue;
    }
    if (!acc) {
      acc = std::move(input);
    } else {
      acc->merge(input);
    }
    acc_estimate += fileSize(inputs[i]);
    ++acc_inputs;
    // Spill only after at least two inputs: re-serializing a single input
    // would be a pure round-trip, and forward progress stays guaranteed
    // under arbitrarily small budgets.
    if (threshold != 0 && acc_estimate > threshold && acc_inputs >= 2 &&
        i + 1 < end) {
      std::string path = sink.spill(*acc);
      if (path.empty()) {
        out.errors.emplace_back(
            i, std::vector<std::string>{"cannot write spill file in '" +
                                        sink.dir.path() + "'"});
        return out;
      }
      sink.countSpill();
      out.partials.push_back({std::nullopt, std::move(path), acc_estimate});
      acc.reset();
      acc_estimate = 0;
      acc_inputs = 0;
    }
  }
  if (acc) out.partials.push_back({std::move(acc), {}, acc_estimate});
  return out;
}

/// Merges two adjacent partials (left absorbs right). When more
/// reduction rounds remain and the result exceeds the budget slice, it
/// is spilled again so the resident set stays bounded by the pairs in
/// flight, not by the whole tree.
Partial reducePair(Partial&& a, Partial&& b, std::uint64_t threshold,
                   bool final_round, SpillSink& sink, std::string& error) {
  PDT_TRACE_SCOPE("merge.reduce");
  const std::uint64_t estimate = a.estimate + b.estimate;
  ductape::PDB left = loadPartial(std::move(a), error);
  if (!error.empty()) return {};
  const ductape::PDB right = loadPartial(std::move(b), error);
  if (!error.empty()) return {};
  left.merge(right);
  if (threshold != 0 && estimate > threshold && !final_round) {
    std::string path = sink.spill(left);
    if (path.empty()) {
      error = "cannot write spill file in '" + sink.dir.path() + "'";
      return {};
    }
    sink.countSpill();
    return {std::nullopt, std::move(path), estimate};
  }
  return {std::move(left), {}, estimate};
}

}  // namespace

ShardedMergeResult shardedMergeFiles(const std::vector<std::string>& inputs,
                                     const ShardedMergeOptions& opts) {
  ShardedMergeResult result;
  if (inputs.empty()) {
    result.errors.emplace_back("no input files");
    return result;
  }
  const std::size_t jobs = std::max<std::size_t>(opts.jobs, 1);
  // Each worker folds within its slice of the budget; 0 = unlimited.
  const std::uint64_t threshold =
      opts.mem_budget_bytes == 0
          ? 0
          : std::max<std::uint64_t>(opts.mem_budget_bytes / jobs, 1);

  TempDir spill_dir(opts.temp_dir);
  if (threshold != 0 && !spill_dir.create()) {
    result.errors.emplace_back("cannot create spill directory '" +
                               opts.temp_dir + "'");
    return result;
  }
  SpillSink sink(spill_dir);

  // Phase 1: contiguous shards, folded concurrently. Contiguity +
  // in-order folds mean concatenating the shard outputs in shard order
  // reproduces the input order of the serial merge.
  const std::size_t shard_count = std::min(inputs.size(), jobs);
  trace::count(trace::Counter::MergeShards, shard_count);
  result.stats.shards = shard_count;

  ThreadPool pool(jobs);
  std::vector<std::future<ShardOutput>> shard_futures;
  shard_futures.reserve(shard_count);
  const std::size_t base = inputs.size() / shard_count;
  const std::size_t extra = inputs.size() % shard_count;
  std::size_t next = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t begin = next;
    const std::size_t end = begin + base + (s < extra ? 1 : 0);
    next = end;
    shard_futures.push_back(pool.submit([&inputs, begin, end, threshold,
                                         &sink] {
      return mergeShard(inputs, begin, end, threshold, sink);
    }));
  }

  std::vector<Partial> partials;
  std::vector<std::pair<std::size_t, std::vector<std::string>>> input_errors;
  for (auto& f : shard_futures) {
    ShardOutput out = f.get();
    for (Partial& p : out.partials) partials.push_back(std::move(p));
    for (auto& e : out.errors) input_errors.push_back(std::move(e));
  }
  if (!input_errors.empty()) {
    std::sort(input_errors.begin(), input_errors.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [index, lines] : input_errors)
      for (std::string& line : lines) result.errors.push_back(std::move(line));
    result.stats.spills = sink.spills.load();
    return result;  // spill_dir cleans up on this path too
  }

  // Phase 2: pairwise adjacent reduction of the ordered partials — the
  // same reduction shape as tools::pdbmerge, so the bracketing change
  // does not change the bytes.
  while (partials.size() > 1) {
    const bool final_round = partials.size() == 2;
    std::vector<std::future<Partial>> round;
    std::vector<std::string> errors(partials.size() / 2);
    round.reserve(partials.size() / 2);
    for (std::size_t i = 0; i + 1 < partials.size(); i += 2) {
      Partial a = std::move(partials[i]);
      Partial b = std::move(partials[i + 1]);
      std::string* error = &errors[i / 2];
      round.push_back(pool.submit(
          [a = std::move(a), b = std::move(b), threshold, final_round, &sink,
           error]() mutable {
            return reducePair(std::move(a), std::move(b), threshold,
                              final_round, sink, *error);
          }));
    }
    std::vector<Partial> reduced;
    reduced.reserve(round.size() + 1);
    for (auto& f : round) reduced.push_back(f.get());
    for (const std::string& e : errors)
      if (!e.empty()) result.errors.push_back(e);
    if (!result.errors.empty()) {
      result.stats.spills = sink.spills.load();
      return result;
    }
    if (partials.size() % 2 != 0)
      reduced.push_back(std::move(partials.back()));
    partials = std::move(reduced);
  }

  std::string error;
  ductape::PDB merged = loadPartial(std::move(partials.front()), error);
  result.stats.spills = sink.spills.load();
  if (!error.empty()) {
    result.errors.push_back(std::move(error));
    return result;
  }
  result.merged.emplace(std::move(merged));
  return result;
  // ~TempDir removes the spill files; the merged database stays valid
  // because spilled buffers it still references are held alive by the
  // adopted mmap/heap backings (POSIX keeps unlinked mappings readable).
}

}  // namespace pdt::tools
