// pdbhtml: creates web-based documentation that enables navigation of
// code via HTML links (paper Table 2).
#include <fstream>
#include <iostream>

#include "tools/tools.h"

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::cerr << "usage: pdbhtml <file.pdb> [out.html]\n";
    return 2;
  }
  const pdt::ductape::PDB pdb = pdt::ductape::PDB::read(argv[1]);
  if (!pdb.valid()) {
    std::cerr << "pdbhtml: " << pdb.errorMessage() << '\n';
    return 1;
  }
  if (argc == 3) {
    std::ofstream out(argv[2]);
    if (!out) {
      std::cerr << "pdbhtml: cannot write '" << argv[2] << "'\n";
      return 1;
    }
    pdt::tools::pdbhtml(pdb, out, argv[1]);
  } else {
    pdt::tools::pdbhtml(pdb, std::cout, argv[1]);
  }
  return 0;
}
