// pdbhtml: creates web-based documentation that enables navigation of
// code via HTML links (paper Table 2).
#include <fstream>
#include <iostream>
#include <string>

#include "support/trace.h"
#include "tools/tools.h"

namespace {

constexpr const char* kUsage =
    "usage: pdbhtml <file.pdb> [out.html]\n"
    "               [--stats[=json]] [--stats-out FILE] [--trace-out FILE]\n"
    "  --stats[=json]    counter + phase timing report on stderr\n"
    "  --stats-out FILE  write the stats report to FILE\n"
    "  --trace-out FILE  write a Chrome trace_event JSON timeline to FILE\n"
    "  --mmap=MODE       input mapping: auto (default), on, off\n";

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  pdt::trace::ToolObservability obs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (std::string mmap_err; pdt::pdb::parseMmapFlag(arg, mmap_err)) {
      if (!mmap_err.empty()) {
        std::cerr << "pdbhtml: " << mmap_err << '\n';
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.starts_with("-")) {
      if (input.empty()) {
        input = arg;
      } else if (output.empty()) {
        output = arg;
      } else {
        std::cerr << kUsage;
        return 2;
      }
    } else {
      bool used_next = false;
      std::string error;
      if (obs.parseFlag(arg, i + 1 < argc ? argv[i + 1] : nullptr, used_next,
                        error)) {
        if (!error.empty()) {
          std::cerr << "pdbhtml: " << error << '\n';
          return 2;
        }
        if (used_next) ++i;
        continue;
      }
      std::cerr << kUsage;
      return 2;
    }
  }
  if (input.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  obs.begin();

  const pdt::ductape::PDB pdb = pdt::ductape::PDB::read(input);
  if (!pdb.valid()) {
    std::cerr << "pdbhtml: " << pdb.errorMessage() << '\n';
    return 1;
  }
  if (!output.empty()) {
    std::ofstream out(output);
    if (!out) {
      std::cerr << "pdbhtml: cannot write '" << output << "'\n";
      return 1;
    }
    pdt::tools::pdbhtml(pdb, out, input);
  } else {
    pdt::tools::pdbhtml(pdb, std::cout, input);
  }
  if (obs.wanted()) {
    pdt::trace::StatsReport report("pdbhtml");
    report.setCounters(pdt::trace::globalCounters());
    if (!obs.finish(report)) return 1;
  }
  return 0;
}
