// External sharded pdbmerge for corpora that do not fit in memory.
//
// The in-memory pdbmerge (tools.h) reads every input up front; at the
// 100k-TU scale the inputs alone exceed RAM. shardedMergeFiles() instead
// partitions the input list into contiguous shards, folds each shard in a
// worker that reads one input at a time (the zero-copy reader keeps the
// working set at "accumulator + current input"), spills a partial merge
// to a temp binary-v2 file whenever its estimated footprint exceeds the
// worker's slice of --merge-mem-mb, and finally tree-reduces the ordered
// partials pairwise. Every fold and reduction preserves input order, so
// the output is byte-identical to the in-memory merge at any job count
// and any budget (asserted by tests/integration/sharded_merge_test and
// the scripts/ci.sh gate).
//
// Spill files live in a run-scoped temp directory that is removed on
// success *and* failure — an interrupted merge leaves no orphaned *.tmp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ductape/ductape.h"

namespace pdt::tools {

struct ShardedMergeOptions {
  std::size_t jobs = 1;
  /// Soft memory budget for partial merges, in bytes; 0 = unlimited
  /// (never spill). Each worker gets budget/jobs; a partial whose
  /// estimated footprint (sum of its constituent inputs' on-disk bytes)
  /// exceeds that slice is spilled.
  std::uint64_t mem_budget_bytes = 0;
  /// Run-scoped directory for spill files. Created on demand, removed
  /// (recursively) when the merge finishes, successfully or not.
  std::string temp_dir = "pdbmerge.tmp";
};

struct ShardedMergeStats {
  std::uint64_t shards = 0;
  std::uint64_t spills = 0;
};

struct ShardedMergeResult {
  /// Engaged on success.
  std::optional<ductape::PDB> merged;
  /// Read/validation failures, in input order ("path: message").
  std::vector<std::string> errors;
  ShardedMergeStats stats;
  [[nodiscard]] bool ok() const { return merged.has_value(); }
};

[[nodiscard]] ShardedMergeResult shardedMergeFiles(
    const std::vector<std::string>& inputs, const ShardedMergeOptions& opts);

}  // namespace pdt::tools
