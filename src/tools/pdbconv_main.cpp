// pdbconv: converts files in the compact PDB format into a more readable
// format (paper Table 2).
#include <iostream>

#include "tools/tools.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: pdbconv <file.pdb>\n";
    return 2;
  }
  const pdt::ductape::PDB pdb = pdt::ductape::PDB::read(argv[1]);
  if (!pdb.valid()) {
    std::cerr << "pdbconv: " << pdb.errorMessage() << '\n';
    return 1;
  }
  pdt::tools::pdbconv(pdb, std::cout);
  return 0;
}
