// pdbconv: converts program databases between storage formats and to a
// more readable dump (paper Table 2: "converts .pdb files to a
// standardized form"). Without --to, prints the human-readable dump;
// with --to=ascii|bin, rewrites the database in that storage format.
// Input format is auto-detected, so ascii->bin->ascii round trips are
// byte-identical.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "pdb/snapshot.h"
#include "tools/tools.h"

namespace {

constexpr const char* kUsage =
    "usage: pdbconv <file.pdb> [--to=ascii|bin] [-o <out.pdb>] [--mmap=MODE]\n"
    "  (no --to)      print the readable dump to stdout / -o file\n"
    "  --to=FORMAT    rewrite the database in FORMAT (ascii or bin);\n"
    "                 the input's own format is auto-detected\n"
    "  -o FILE        write the result to FILE instead of stdout\n"
    "  --mmap=MODE    input mapping: auto (default), on, off\n";

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  std::optional<pdt::pdb::Format> to;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg.starts_with("--to=")) {
      to = pdt::pdb::formatFromName(arg.substr(5));
      if (!to) {
        std::cerr << "pdbconv: unknown format '" << arg.substr(5)
                  << "' (expected ascii or bin)\n";
        return 2;
      }
    } else if (std::string mmap_err; pdt::pdb::parseMmapFlag(arg, mmap_err)) {
      if (!mmap_err.empty()) {
        std::cerr << "pdbconv: " << mmap_err << '\n';
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.starts_with("-") && input.empty()) {
      input = arg;
    } else {
      std::cerr << kUsage;
      return 2;
    }
  }
  if (input.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  if (to) {
    // Format conversion streams through the zero-copy reader: the typed
    // model aliases the (usually mmap'd) input buffer and the DUCTAPE
    // object graph is never built, so peak memory is roughly the input
    // size instead of input + graph (bench/bench_mmap tracks this).
    const pdt::pdb::OpenResult read = pdt::pdb::open(input);
    if (!read.opened) {
      std::cerr << "pdbconv: cannot open '" << input << "'\n";
      return 1;
    }
    if (!read.ok()) {
      std::cerr << "pdbconv: " << input << ": " << read.errors.front() << '\n';
      return 1;
    }
    const pdt::pdb::PdbFile& pdb = read.snapshot->pdb();
    if (output.empty()) {
      // A binary database on a terminal helps nobody; require -o there.
      if (*to == pdt::pdb::Format::Binary) {
        std::cerr << "pdbconv: --to=bin requires -o FILE\n";
        return 2;
      }
      std::cout << pdt::pdb::writeString(pdb, *to);
      return 0;
    }
    if (!pdt::pdb::writeFile(pdb, output, *to)) {
      std::cerr << "pdbconv: cannot write '" << output << "'\n";
      return 1;
    }
    return 0;
  }

  const pdt::ductape::PDB pdb = pdt::ductape::PDB::read(input);
  if (!pdb.valid()) {
    std::cerr << "pdbconv: " << pdb.errorMessage() << '\n';
    return 1;
  }

  if (!output.empty()) {
    std::ofstream out(output);
    if (!out) {
      std::cerr << "pdbconv: cannot write '" << output << "'\n";
      return 1;
    }
    pdt::tools::pdbconv(pdb, out);
    return out ? 0 : 1;
  }
  pdt::tools::pdbconv(pdb, std::cout);
  return 0;
}
