// SILOON: Scripting Interface Languages for Object-Oriented Numerics
// (paper §4.2, Figure 8).
//
// Uses the program database to generate the bridging code that links
// scripting languages with C++ libraries:
//   * language-independent C++ bridge functions with C linkage, which
//     wrap constructors, destructors, member functions (incl. virtual,
//     static, operators, overloads) and free functions, and register
//     them in SILOON's routine-management structures;
//   * language-specific wrapper classes (Python here) that call the
//     bridge functions and present a natural interface.
//
// As the paper describes, template entities are handled like any other —
// except that non-alphanumeric characters in their names are mangled so
// scripting languages can address them; only *instantiated* templates
// (present in the PDB) are exported.
#pragma once

#include <string>
#include <vector>

#include "ductape/ductape.h"

namespace pdt::siloon {

struct GeneratorOptions {
  /// Prefix for generated symbols and file-level artifacts.
  std::string module_name = "siloon";
  /// Restrict generation to these classes (fully qualified names).
  /// Empty = every complete class in the PDB.
  std::vector<std::string> classes;
  /// Headers the bridge must #include (the user library's interface).
  std::vector<std::string> library_headers;
};

/// One routine registered with SILOON's routine-management structures.
struct RegisteredRoutine {
  std::string script_name;  // mangled, scripting-language-safe
  std::string cxx_name;     // original fully qualified name
  std::string signature;    // C++ signature text
  std::string bridge_symbol;
};

struct Bindings {
  std::string bridge_header;  // declarations of the C bridge functions
  std::string bridge_code;    // definitions + registration table
  std::string python_code;    // scripting-language wrapper classes
  std::vector<RegisteredRoutine> registered;
  std::vector<std::string> skipped;  // entities we could not bridge (+why)
};

/// Transforms a C++ name into a scripting-language-safe identifier:
/// "Stack<int>::operator[]" -> "Stack_lt_int_gt__cn_op_index".
[[nodiscard]] std::string mangle(const std::string& name);

/// Generates all bridging artifacts for the program database.
[[nodiscard]] Bindings generate(const ductape::PDB& pdb,
                                const GeneratorOptions& options = {});

// -- the extension the paper proposes in §4.2 --------------------------------
// "A useful extension to PDT would be to provide access to all templates,
//  whether instantiated or not. SILOON could then present a template list
//  to the user, and automatically generate instantiations of selected
//  templates."

/// One presentable template from the PDB, with its instantiation status.
struct TemplateListing {
  std::string name;
  std::string kind;  // class/func/memfunc/statmem
  std::vector<std::string> instantiations;  // existing concrete names
  bool instantiated = false;
};

/// The template list SILOON presents to the user: every class/function
/// template in the database, instantiated or not.
[[nodiscard]] std::vector<TemplateListing> listTemplates(const ductape::PDB& pdb);

/// Generates the explicit-instantiation directives ("template class
/// Stack<int>;") a user selects from the list; compiling them into the
/// library makes the instantiations available to a later SILOON run.
[[nodiscard]] std::string generateInstantiations(
    const std::vector<std::pair<std::string, std::string>>& selections);

}  // namespace pdt::siloon
