#include "siloon/siloon.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace pdt::siloon {

using namespace ductape;

namespace {

const std::unordered_map<std::string, std::string>& operatorNames() {
  static const std::unordered_map<std::string, std::string> table = {
      {"operator[]", "op_index"},   {"operator()", "op_call"},
      {"operator+", "op_add"},      {"operator-", "op_sub"},
      {"operator*", "op_mul"},      {"operator/", "op_div"},
      {"operator%", "op_mod"},      {"operator=", "op_assign"},
      {"operator==", "op_eq"},      {"operator!=", "op_ne"},
      {"operator<", "op_lt"},       {"operator>", "op_gt"},
      {"operator<=", "op_le"},      {"operator>=", "op_ge"},
      {"operator<<", "op_lshift"},  {"operator>>", "op_rshift"},
      {"operator+=", "op_addeq"},   {"operator-=", "op_subeq"},
      {"operator*=", "op_muleq"},   {"operator/=", "op_diveq"},
      {"operator++", "op_incr"},    {"operator--", "op_decr"},
      {"operator!", "op_not"},      {"operator&", "op_and"},
      {"operator|", "op_or"},       {"operator^", "op_xor"},
  };
  return table;
}

}  // namespace

std::string mangle(const std::string& name) {
  // Operator names first (longest match), then character-wise mangling.
  std::string work = name;
  for (const auto& [op, repl] : operatorNames()) {
    std::size_t pos;
    while ((pos = work.find(op)) != std::string::npos) {
      work = work.substr(0, pos) + repl + work.substr(pos + op.size());
    }
  }
  std::string out;
  out.reserve(work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    const char c = work[i];
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_') {
      out.push_back(c);
    } else if (c == ':' && i + 1 < work.size() && work[i + 1] == ':') {
      out += "_cn_";
      ++i;
    } else {
      switch (c) {
        case '<': out += "_lt_"; break;
        case '>': out += "_gt_"; break;
        case ',': out += "_cm_"; break;
        case ' ': break;  // dropped
        case '&': out += "_am_"; break;
        case '*': out += "_ptr_"; break;
        case '~': out += "_dtor_"; break;
        case '[': out += "_lb_"; break;
        case ']': out += "_rb_"; break;
        case '(': out += "_lp_"; break;
        case ')': out += "_rp_"; break;
        default: out += "_x_"; break;
      }
    }
  }
  return out;
}

namespace {

/// Renders the C++ parameter list and call arguments for a bridge
/// function. Returns false when a parameter type cannot be bridged.
struct ParamRender {
  std::string params;      // "int a0, const double & a1"
  std::string args;        // "a0, a1"
  std::string sig;         // for the registry
  bool ok = true;
};

std::string typeSpelling(const pdbType* t) {
  return t != nullptr ? t->name() : std::string("int");
}

ParamRender renderParams(const pdbType* signature, bool skip_first_none = false) {
  ParamRender out;
  (void)skip_first_none;
  if (signature == nullptr) {
    out.ok = false;
    return out;
  }
  const auto& args = signature->arguments();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string spelling = typeSpelling(args[i]);
    if (spelling.find("dependent") != std::string::npos) {
      out.ok = false;
      return out;
    }
    if (i > 0) {
      out.params += ", ";
      out.args += ", ";
    }
    out.params += spelling + " a" + std::to_string(i);
    out.args += "a" + std::to_string(i);
  }
  out.sig = signature->name();
  return out;
}

/// How a bridge function returns the routine's result.
struct ReturnRender {
  std::string c_type;   // the extern "C" return type
  std::string prologue; // text before the call ("return ", "auto& r = ")
  std::string epilogue; // text after the call
  bool ok = true;
};

ReturnRender renderReturn(const pdbType* ret) {
  ReturnRender out;
  if (ret == nullptr || ret->kind() == pdbType::TY_VOID) {
    out.c_type = "void";
    out.prologue = "";
    return out;
  }
  switch (ret->kind()) {
    case pdbType::TY_BOOL:
    case pdbType::TY_CHAR:
    case pdbType::TY_INT:
    case pdbType::TY_FLOAT:
    case pdbType::TY_WCHAR:
    case pdbType::TY_ENUM:
    case pdbType::TY_PTR:
      out.c_type = ret->name();
      out.prologue = "return ";
      return out;
    case pdbType::TY_REF:
      // References cross the C boundary as pointers.
      out.c_type = typeSpelling(ret->referencedType()) + " *";
      if (ret->referencedClass() != nullptr)
        out.c_type = ret->referencedClass()->fullName() + " *";
      out.prologue = "return &(";
      out.epilogue = ")";
      return out;
    case pdbType::TY_TREF:
      out.c_type = ret->name();
      out.prologue = "return ";
      return out;
    default:
      out.ok = false;
      return out;
  }
}

bool isBridgeableClass(const pdbClass* cls) {
  if (cls == nullptr) return false;
  // Abstract classes cannot be constructed; still bridge their methods.
  return true;
}

}  // namespace

Bindings generate(const PDB& pdb, const GeneratorOptions& options) {
  Bindings out;
  std::ostringstream hdr;
  std::ostringstream src;
  std::ostringstream py;
  const std::string& mod = options.module_name;

  const auto wanted = [&](const pdbClass* cls) {
    if (!isBridgeableClass(cls)) return false;
    if (options.classes.empty()) return true;
    return std::find(options.classes.begin(), options.classes.end(),
                     cls->fullName()) != options.classes.end();
  };

  hdr << "// Generated by SILOON from the program database. Do not edit.\n";
  hdr << "#pragma once\n\n";
  for (const std::string& header : options.library_headers) {
    hdr << "#include \"" << header << "\"\n";
  }
  hdr << "\nextern \"C\" {\n\n";
  hdr << "/// SILOON routine-management entry (paper Figure 8).\n";
  hdr << "struct " << mod << "_entry {\n"
      << "    const char* script_name;\n"
      << "    const char* cxx_name;\n"
      << "    const char* signature;\n"
      << "    void* fnptr;\n"
      << "};\n\n";
  hdr << "/// Returns the routine registration table; *count receives its size.\n";
  hdr << "const " << mod << "_entry* " << mod << "_registry(int* count);\n\n";

  src << "// Generated by SILOON from the program database. Do not edit.\n";
  src << "#include \"" << mod << "_bridge.h\"\n\n";

  py << "# Generated by SILOON from the program database. Do not edit.\n";
  py << "# Python wrappers calling the C bridge in lib" << mod << ".\n";
  py << "import ctypes\n\n";
  py << "_lib = ctypes.CDLL(\"lib" << mod << ".so\")\n\n";

  std::vector<RegisteredRoutine> registry;
  std::unordered_set<std::string> used_symbols;

  const auto uniqueSymbol = [&](std::string base) {
    std::string symbol = base;
    int n = 1;
    while (!used_symbols.insert(symbol).second) {
      symbol = base + "_" + std::to_string(++n);
    }
    return symbol;
  };

  const auto emitFree = [&](const pdbRoutine* fn) {
    const ParamRender params = renderParams(fn->signature());
    const ReturnRender ret = renderReturn(
        fn->signature() != nullptr ? fn->signature()->returnType() : nullptr);
    if (!params.ok || !ret.ok) {
      out.skipped.push_back(fn->fullName() + " (unbridgeable signature)");
      return;
    }
    const std::string symbol =
        uniqueSymbol(mod + "_" + mangle(fn->fullName()));
    hdr << ret.c_type << ' ' << symbol << '(' << params.params << ");\n";
    src << "extern \"C\" " << ret.c_type << ' ' << symbol << '('
        << params.params << ") {\n    " << ret.prologue << fn->fullName() << '('
        << params.args << ')' << ret.epilogue << ";\n}\n\n";
    registry.push_back({mangle(fn->fullName()), fn->fullName(), params.sig,
                        symbol});
    py << "def " << mangle(fn->name()) << "(*args):\n"
       << "    return _lib." << symbol << "(*args)\n\n";
  };

  const auto emitClass = [&](const pdbClass* cls) {
    const std::string cname = cls->fullName();
    const std::string mangled = mangle(cname);
    py << "class " << mangled << ":\n";
    py << "    \"\"\"Wrapper for C++ class " << cname << "\"\"\"\n";
    bool py_has_member = false;

    bool has_ctor = false;
    for (const pdbRoutine* fn : cls->funcMembers()) {
      // SILOON exports the class's external interface only.
      if (fn->access() != pdbItem::AC_PUB) continue;
      if (fn->kind() == pdbItem::RO_CTOR) {
        const ParamRender params = renderParams(fn->signature());
        if (!params.ok) {
          out.skipped.push_back(cname + " constructor (unbridgeable)");
          continue;
        }
        const std::string symbol = uniqueSymbol(mod + "_new_" + mangled);
        hdr << "void* " << symbol << '(' << params.params << ");\n";
        src << "extern \"C\" void* " << symbol << '(' << params.params
            << ") {\n    return new " << cname << '(' << params.args
            << ");\n}\n\n";
        registry.push_back({mangle(cname + "::" + cname), cname + "::" + cname,
                            params.sig, symbol});
        if (!has_ctor) {
          py << "    def __init__(self, *args):\n"
             << "        self._self = _lib." << symbol << "(*args)\n";
          py_has_member = true;
        }
        has_ctor = true;
        continue;
      }
      if (fn->kind() == pdbItem::RO_DTOR) {
        const std::string symbol = uniqueSymbol(mod + "_delete_" + mangled);
        hdr << "void " << symbol << "(void* self);\n";
        src << "extern \"C\" void " << symbol << "(void* self) {\n"
            << "    delete static_cast<" << cname << "*>(self);\n}\n\n";
        registry.push_back({mangle(cname) + "_delete", cname + "::" + fn->name(),
                            "void (void*)", symbol});
        py << "    def __del__(self):\n"
           << "        _lib." << symbol << "(self._self)\n";
        py_has_member = true;
        continue;
      }
      // Ordinary / virtual / static member functions and operators.
      const ParamRender params = renderParams(fn->signature());
      const ReturnRender ret = renderReturn(
          fn->signature() != nullptr ? fn->signature()->returnType() : nullptr);
      if (!params.ok || !ret.ok) {
        out.skipped.push_back(fn->fullName() + " (unbridgeable signature)");
        continue;
      }
      const std::string method = mangle(fn->name());
      const std::string symbol = uniqueSymbol(mod + "_" + mangled + "_" + method);
      if (fn->isStatic()) {
        hdr << ret.c_type << ' ' << symbol << '(' << params.params << ");\n";
        src << "extern \"C\" " << ret.c_type << ' ' << symbol << '('
            << params.params << ") {\n    " << ret.prologue << cname
            << "::" << fn->name() << '(' << params.args << ')' << ret.epilogue
            << ";\n}\n\n";
      } else {
        std::string full_params = "void* self";
        if (!params.params.empty()) full_params += ", " + params.params;
        hdr << ret.c_type << ' ' << symbol << '(' << full_params << ");\n";
        src << "extern \"C\" " << ret.c_type << ' ' << symbol << '('
            << full_params << ") {\n    " << ret.prologue << "static_cast<"
            << cname << "*>(self)->" << fn->name() << '(' << params.args << ')'
            << ret.epilogue << ";\n}\n\n";
      }
      registry.push_back({mangle(cname) + "_" + method, fn->fullName(),
                          params.sig, symbol});
      py << "    def " << method << "(self, *args):\n"
         << "        return _lib." << symbol << "(self._self, *args)\n";
      py_has_member = true;
    }
    if (!py_has_member) py << "    pass\n";
    py << "\n";
  };

  for (const pdbClass* cls : pdb.getClassVec()) {
    if (wanted(cls)) emitClass(cls);
  }
  for (const pdbRoutine* fn : pdb.getRoutineVec()) {
    // Free functions only: members are bridged with their class.
    if (fn->parentClass() != nullptr) continue;
    if (fn->kind() != pdbItem::RO_NORMAL) continue;
    if (fn->name() == "main") continue;
    if (!options.classes.empty()) continue;  // class-restricted generation
    emitFree(fn);
  }

  // Routine-management structures: the registration table.
  src << "static const " << mod << "_entry " << mod << "_entries[] = {\n";
  for (const RegisteredRoutine& r : registry) {
    src << "    {\"" << r.script_name << "\", \"" << r.cxx_name << "\", \""
        << r.signature << "\", reinterpret_cast<void*>(&" << r.bridge_symbol
        << ")},\n";
  }
  src << "};\n\n";
  src << "extern \"C\" const " << mod << "_entry* " << mod
      << "_registry(int* count) {\n"
      << "    *count = " << registry.size() << ";\n"
      << "    return " << mod << "_entries;\n}\n";

  hdr << "\n}  // extern \"C\"\n";

  out.bridge_header = hdr.str();
  out.bridge_code = src.str();
  out.python_code = py.str();
  out.registered = std::move(registry);
  return out;
}

}  // namespace pdt::siloon

namespace pdt::siloon {

std::vector<TemplateListing> listTemplates(const ductape::PDB& pdb) {
  using namespace ductape;
  std::vector<TemplateListing> out;
  for (const pdbTemplate* te : pdb.getTemplateVec()) {
    // The user-facing list covers class and free function templates;
    // member entities follow their class.
    if (te->kind() != pdbItem::TE_CLASS && te->kind() != pdbItem::TE_FUNC)
      continue;
    TemplateListing listing;
    listing.name = te->fullName();
    listing.kind = te->kind() == pdbItem::TE_CLASS ? "class" : "func";
    if (te->kind() == pdbItem::TE_CLASS) {
      for (const pdbClass* cls : pdb.getClassVec()) {
        if (cls->isTemplate() == te)
          listing.instantiations.push_back(cls->fullName());
      }
    } else {
      for (const pdbRoutine* r : pdb.getRoutineVec()) {
        if (r->isTemplate() == te)
          listing.instantiations.push_back(r->fullName());
      }
    }
    listing.instantiated = !listing.instantiations.empty();
    out.push_back(std::move(listing));
  }
  return out;
}

std::string generateInstantiations(
    const std::vector<std::pair<std::string, std::string>>& selections) {
  std::string out =
      "// Generated by SILOON: explicit instantiations selected from the\n"
      "// template list (paper §4.2). Compile this into the library, then\n"
      "// re-run PDT + SILOON to export the instantiations.\n";
  for (const auto& [template_name, args] : selections) {
    out += "template class " + template_name + "<" + args + ">;\n";
  }
  return out;
}

}  // namespace pdt::siloon
