// siloon_gen: generates SILOON bridging code from a program database
// (paper Figure 8).
//
//   siloon_gen <file.pdb> -o <outdir> [--module NAME] [--header H]...
#include <fstream>
#include <iostream>

#include "siloon/siloon.h"

int main(int argc, char** argv) {
  std::string pdb_path;
  std::string out_dir = ".";
  pdt::siloon::GeneratorOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--module" && i + 1 < argc) {
      options.module_name = argv[++i];
    } else if (arg == "--header" && i + 1 < argc) {
      options.library_headers.emplace_back(argv[++i]);
    } else if (arg == "--class" && i + 1 < argc) {
      options.classes.emplace_back(argv[++i]);
    } else if (pdb_path.empty()) {
      pdb_path = arg;
    } else {
      std::cerr << "siloon_gen: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (pdb_path.empty()) {
    std::cerr << "usage: siloon_gen <file.pdb> -o <outdir> [--module NAME] "
                 "[--header H]... [--class C]...\n";
    return 2;
  }
  const pdt::ductape::PDB pdb = pdt::ductape::PDB::read(pdb_path);
  if (!pdb.valid()) {
    std::cerr << "siloon_gen: " << pdb.errorMessage() << '\n';
    return 1;
  }
  const pdt::siloon::Bindings bindings = pdt::siloon::generate(pdb, options);
  const std::string base = out_dir + "/" + options.module_name;
  std::ofstream(base + "_bridge.h") << bindings.bridge_header;
  std::ofstream(base + "_bridge.cpp") << bindings.bridge_code;
  std::ofstream(base + ".py") << bindings.python_code;
  std::cout << "generated " << bindings.registered.size() << " bridge routines, "
            << bindings.skipped.size() << " skipped\n";
  return 0;
}
