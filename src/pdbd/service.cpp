#include "pdbd/service.h"

#include <sstream>
#include <thread>
#include <utility>

#include "analysis/checker.h"
#include "query/render.h"
#include "support/trace.h"

namespace pdt::pdbd {

namespace {

/// Tree verbs share one shape: render the tree, return it as `text`.
const std::pair<std::string_view, query::Tree> kTreeVerbs[] = {
    {"includes", query::Tree::Includes},
    {"hierarchy", query::Tree::ClassHierarchy},
    {"calltree", query::Tree::CallGraph},
    {"profile", query::Tree::Profile},
};

std::string okText(std::uint64_t generation, std::string_view text) {
  return MessageWriter{}
      .field("ok", true)
      .field("generation", generation)
      .field("text", text)
      .finish();
}

}  // namespace

Service::~Service() {
  delete gen_.load(std::memory_order_acquire);
}

std::shared_ptr<const Generation> Service::current() const {
  for (;;) {
    const std::uint64_t epoch = epoch_.load(std::memory_order_seq_cst);
    std::atomic<std::uint64_t>& slot = readers_[epoch & 1];
    slot.fetch_add(1, std::memory_order_seq_cst);
    // A publish may have slipped between the epoch load and the
    // registration; re-check and re-register under the new epoch so the
    // writer's drain loop is watching the slot we are counted in.
    if (epoch_.load(std::memory_order_seq_cst) != epoch) {
      slot.fetch_sub(1, std::memory_order_seq_cst);
      continue;
    }
    const Holder* holder = gen_.load(std::memory_order_seq_cst);
    Holder out = holder ? *holder : Holder{};
    // The release edge the writer's drain loop acquires: our copy of
    // *holder happens-before the holder's deletion.
    slot.fetch_sub(1, std::memory_order_release);
    return out;
  }
}

void Service::publish(Holder gen) {
  auto* fresh = new Holder(std::move(gen));
  std::lock_guard<std::mutex> lock(publish_mu_);
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  const Holder* old = gen_.exchange(fresh, std::memory_order_seq_cst);
  epoch_.store(epoch + 1, std::memory_order_seq_cst);
  // Grace period: readers registered under the old parity are the only
  // ones that can still be copying from `old` (new readers re-check the
  // epoch after registering). Wait them out, then reclaim.
  while (readers_[epoch & 1].load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();
  delete old;
}

bool Service::load(const std::string& db_path, std::string& error) {
  PDT_TRACE_SCOPE("pdbd.load", db_path);
  pdb::OpenResult read = pdb::open(db_path);
  if (!read.opened) {
    error = "cannot open '" + db_path + "'";
    return false;
  }
  if (!read.ok()) {
    error = db_path + ": " + read.errors.front();
    return false;
  }
  auto gen = std::make_shared<Generation>();
  gen->snapshot = read.snapshot;
  gen->index = std::make_unique<query::Index>(read.snapshot);
  gen->id = read.snapshot->generation();
  gen->db_path = db_path;
  // Force every lazy structure now, single-threaded; after publication
  // the Generation is shared by concurrent readers and must be a pure
  // read.
  gen->index->prewarm();
  publish(std::move(gen));
  return true;
}

std::string Service::handle(const Message& request) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::string verb = request.str("q");
  if (verb.empty())
    return errorLine("bad-request", "missing verb field 'q'");

  if (verb == "shutdown") {
    shutdown_.store(true, std::memory_order_release);
    const auto gen = current();
    return MessageWriter{}
        .field("ok", true)
        .field("generation", gen ? gen->id : std::uint64_t{0})
        .field("draining", true)
        .finish();
  }

  if (verb == "swap") {
    const std::string db = request.str("db");
    if (db.empty())
      return errorLine("bad-request", "swap needs a 'db' field");
    std::string error;
    if (!load(db, error)) return errorLine("open-failed", error);
    const auto gen = current();
    return MessageWriter{}
        .field("ok", true)
        .field("generation", gen->id)
        .field("db", gen->db_path)
        .finish();
  }

  // Every remaining verb answers from one consistent generation: the
  // pointer is loaded once and used throughout, so a concurrent swap
  // cannot mix two databases inside one response.
  const std::shared_ptr<const Generation> gen = current();
  if (gen == nullptr)
    return errorLine("no-database", "no database loaded");

  if (verb == "status") {
    return MessageWriter{}
        .field("ok", true)
        .field("generation", gen->id)
        .field("db", gen->db_path)
        .field("bytes", std::uint64_t{gen->snapshot->byteSize()})
        .field("queries", queriesServed())
        .finish();
  }

  if (verb == "lookup") {
    const std::string name = request.str("name");
    if (name.empty())
      return errorLine("bad-request", "lookup needs a 'name' field");
    std::ostringstream os;
    query::renderLookup(*gen->index, name, os);
    return okText(gen->id, os.str());
  }

  for (const auto& [tree_verb, tree] : kTreeVerbs) {
    if (verb != tree_verb) continue;
    std::ostringstream os;
    query::renderTree(*gen->index, tree, os);
    return okText(gen->id, os.str());
  }

  if (verb == "defuse") {
    query::DefUseQuery du;
    du.routine = request.str("routine");
    du.var = request.str("var");
    du.line = static_cast<int>(request.num("line", -1));
    du.col = static_cast<int>(request.num("col", -1));
    du.defs = request.flag("defs");
    du.uses = request.flag("uses");
    std::ostringstream os;
    query::renderDefUse(*gen->index, du, os);
    return okText(gen->id, os.str());
  }

  if (verb == "check") {
    analysis::CheckOptions options;
    options.checks = request.str("checks", "all");
    const std::string format = request.str("format", "text");
    if (format == "json") {
      options.format = analysis::CheckOptions::Format::Json;
    } else if (format != "text") {
      return errorLine("bad-request", "unknown format '" + format + "'");
    }
    const analysis::CheckResult result =
        analysis::runChecks(gen->index->analysis(), options);
    if (!result.ok()) return errorLine("check-failed", result.error);
    std::ostringstream os;
    analysis::render(result, options, os);
    return MessageWriter{}
        .field("ok", true)
        .field("generation", gen->id)
        .field("findings", result.hasFindings())
        .field("text", os.str())
        .finish();
  }

  return errorLine("bad-verb", "unknown verb '" + verb + "'");
}

}  // namespace pdt::pdbd
