#include "pdbd/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace pdt::pdbd {

namespace {

/// Writes all of `text`; MSG_NOSIGNAL turns a vanished client into an
/// EPIPE error instead of killing the daemon with SIGPIPE.
bool writeAll(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n =
        ::send(fd, text.data() + off, text.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::size_t serveConnection(int fd, Service& service) {
  std::size_t served = 0;
  std::string pending;  // bytes read but not yet terminated by '\n'
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return served;
    }
    if (n == 0) return served;  // client closed
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = pending.find('\n', start); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      std::string_view line(pending.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = nl + 1;

      std::string response;
      Message request;
      std::string parse_error;
      if (line.empty()) {
        continue;  // blank keep-alive line
      } else if (!parseMessage(line, request, parse_error)) {
        response = errorLine("parse-error", parse_error);
      } else {
        response = service.handle(request);
      }
      ++served;
      response += '\n';
      if (!writeAll(fd, response)) return served;
    }
    pending.erase(0, start);
  }
}

int runServer(Service& service, const std::string& socket_path,
              std::ostream& log) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    log << "pdbd: socket: " << std::strerror(errno) << '\n';
    return 1;
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    log << "pdbd: socket path too long: '" << socket_path << "'\n";
    ::close(listener);
    return 1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  ::unlink(socket_path.c_str());  // a stale socket from a prior run
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 64) != 0) {
    log << "pdbd: cannot listen on '" << socket_path
        << "': " << std::strerror(errno) << '\n';
    ::close(listener);
    return 1;
  }
  log << "pdbd: listening on '" << socket_path << "'\n";

  std::vector<std::thread> clients;
  while (!service.shutdownRequested()) {
    // Poll with a timeout so the shutdown flag (set inside a client
    // thread by the "shutdown" verb) is noticed without a final connect.
    pollfd pfd{listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) continue;
    clients.emplace_back([client, &service] {
      serveConnection(client, service);
      ::close(client);
    });
  }

  // Drain: every accepted client gets its responses before we exit.
  for (std::thread& t : clients) t.join();
  ::close(listener);
  ::unlink(socket_path.c_str());
  return 0;
}

}  // namespace pdt::pdbd
