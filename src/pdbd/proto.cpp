#include "pdbd/proto.h"

#include <cctype>

#include "support/text.h"

namespace pdt::pdbd {

namespace {

/// Cursor over one message line. Parsing is recursive-descent over the
/// tiny flat grammar; every failure records a message and positions are
/// byte offsets so errors point at the offending character.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return done() ? '\0' : text[pos]; }

  void skipSpace() {
    while (!done() && std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }

  bool fail(const std::string& message) {
    if (error.empty())
      error = message + " at byte " + std::to_string(pos);
    return false;
  }

  bool expect(char c) {
    skipSpace();
    if (peek() != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word)
      return fail("invalid literal");
    pos += word.size();
    return true;
  }

  bool parseString(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (!done() && text[pos] != '"') {
      char c = text[pos++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (done()) return fail("unterminated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              value |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("invalid \\u escape");
          }
          // The protocol is ASCII + UTF-8 pass-through; escapes above
          // 0x7f encode as UTF-8.
          if (value < 0x80) {
            out += static_cast<char>(value);
          } else if (value < 0x800) {
            out += static_cast<char>(0xc0 | (value >> 6));
            out += static_cast<char>(0x80 | (value & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (value >> 12));
            out += static_cast<char>(0x80 | ((value >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (value & 0x3f));
          }
          break;
        }
        default:
          return fail("invalid escape");
      }
    }
    if (done()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }

  bool parseNumber(std::int64_t& out) {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (!done() && std::isdigit(static_cast<unsigned char>(text[pos])))
      ++pos;
    if (pos == start || (text[start] == '-' && pos == start + 1))
      return fail("invalid number");
    if (!done() && (text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E'))
      return fail("fractional numbers are not part of the protocol");
    out = 0;
    const bool negative = text[start] == '-';
    for (std::size_t i = start + (negative ? 1 : 0); i < pos; ++i)
      out = out * 10 + (text[i] - '0');
    if (negative) out = -out;
    return true;
  }
};

}  // namespace

std::string Message::str(const std::string& key, std::string fallback) const {
  const auto it = strings.find(key);
  return it == strings.end() ? std::move(fallback) : it->second;
}

std::int64_t Message::num(const std::string& key, std::int64_t fallback) const {
  const auto it = ints.find(key);
  return it == ints.end() ? fallback : it->second;
}

bool Message::flag(const std::string& key, bool fallback) const {
  const auto it = bools.find(key);
  return it == bools.end() ? fallback : it->second;
}

bool Message::has(const std::string& key) const {
  return strings.count(key) != 0 || ints.count(key) != 0 ||
         bools.count(key) != 0;
}

bool parseMessage(std::string_view line, Message& out, std::string& error) {
  out = Message{};
  Cursor cur{line, 0, {}};
  const auto fail = [&] {
    error = cur.error.empty() ? "malformed message" : cur.error;
    return false;
  };

  if (!cur.expect('{')) return fail();
  cur.skipSpace();
  if (cur.peek() != '}') {
    for (;;) {
      std::string key;
      if (!cur.parseString(key)) return fail();
      if (!cur.expect(':')) return fail();
      cur.skipSpace();
      const char c = cur.peek();
      if (c == '"') {
        std::string value;
        if (!cur.parseString(value)) return fail();
        out.strings[key] = std::move(value);
      } else if (c == 't') {
        if (!cur.literal("true")) return fail();
        out.bools[key] = true;
      } else if (c == 'f') {
        if (!cur.literal("false")) return fail();
        out.bools[key] = false;
      } else if (c == 'n') {
        if (!cur.literal("null")) return fail();
      } else if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
        std::int64_t value = 0;
        if (!cur.parseNumber(value)) return fail();
        out.ints[key] = value;
      } else if (c == '{' || c == '[') {
        cur.fail("nested values are not part of the protocol");
        return fail();
      } else {
        cur.fail("expected a value");
        return fail();
      }
      cur.skipSpace();
      if (cur.peek() == ',') {
        ++cur.pos;
        continue;
      }
      break;
    }
  }
  if (!cur.expect('}')) return fail();
  cur.skipSpace();
  if (!cur.done()) {
    cur.fail("trailing bytes after message");
    return fail();
  }
  return true;
}

void MessageWriter::key(std::string_view key) {
  if (!first_) out_ += ", ";
  first_ = false;
  out_ += '"';
  out_ += escapeJson(key);
  out_ += "\": ";
}

MessageWriter& MessageWriter::field(std::string_view k,
                                    std::string_view value) {
  key(k);
  out_ += '"';
  out_ += escapeJson(value);
  out_ += '"';
  return *this;
}

MessageWriter& MessageWriter::field(std::string_view k, std::int64_t value) {
  key(k);
  out_ += std::to_string(value);
  return *this;
}

MessageWriter& MessageWriter::field(std::string_view k, std::uint64_t value) {
  key(k);
  out_ += std::to_string(value);
  return *this;
}

MessageWriter& MessageWriter::field(std::string_view k, bool value) {
  key(k);
  out_ += value ? "true" : "false";
  return *this;
}

std::string MessageWriter::finish() {
  out_ += '}';
  return std::move(out_);
}

std::string errorLine(std::string_view code, std::string_view message) {
  return MessageWriter{}
      .field("ok", false)
      .field("code", code)
      .field("error", message)
      .finish();
}

}  // namespace pdt::pdbd
