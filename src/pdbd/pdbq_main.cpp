// pdbq: command-line client for the pdbd query daemon.
//
// Builds one protocol request from its arguments, sends it over the
// daemon's Unix socket, and prints the response's text payload to
// stdout — byte-identical to the matching one-shot tool, so existing
// scripts can point at a daemon by swapping the command. --json prints
// the raw response line instead (generation number included), which is
// how scripts observe hot-swaps.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <iostream>
#include <string>

#include "pdbd/proto.h"

namespace {

constexpr const char* kUsage =
    "usage: pdbq --socket PATH [--json] <verb> [args]\n"
    "verbs:\n"
    "  status                     daemon + generation info (implies --json)\n"
    "  lookup NAME                entities matching a plain/qualified name\n"
    "  includes                   source file inclusion tree\n"
    "  hierarchy                  class hierarchy\n"
    "  calltree                   static call tree\n"
    "  profile                    dp section joined with static routines\n"
    "  defuse [--routine NAME] [--var NAME] [--at LINE[:COL]]\n"
    "         [--defs] [--uses]   def-use queries (pdbduct's surface)\n"
    "  check [--checks=LIST] [--format=FMT]\n"
    "                             run pdbcheck rules on the daemon's DB\n"
    "  swap DB.PDB                hot-swap the daemon to a new database\n"
    "  shutdown                   drain in-flight clients and exit\n"
    "  --json                     print the raw response line instead of\n"
    "                             the text payload\n"
    "exit codes: 0 ok, 1 daemon error or findings, 2 usage, 3 no daemon\n";

bool parseAt(const std::string& value, pdt::pdbd::MessageWriter& req) {
  const std::size_t colon = value.find(':');
  const std::string line = value.substr(0, colon);
  int parsed = 0;
  auto [ptr, ec] =
      std::from_chars(line.data(), line.data() + line.size(), parsed);
  if (ec != std::errc{} || ptr != line.data() + line.size() || parsed <= 0)
    return false;
  req.field("line", std::int64_t{parsed});
  if (colon == std::string::npos) return true;
  const std::string col = value.substr(colon + 1);
  auto [cptr, cec] =
      std::from_chars(col.data(), col.data() + col.size(), parsed);
  if (cec != std::errc{} || cptr != col.data() + col.size() || parsed <= 0)
    return false;
  req.field("col", std::int64_t{parsed});
  return true;
}

int usageError(const std::string& message) {
  std::cerr << "pdbq: " << message << '\n' << kUsage;
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string verb;
  bool raw_json = false;
  pdt::pdbd::MessageWriter request;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--json") {
      raw_json = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (verb.empty()) {
      if (arg.starts_with("-")) return usageError("unknown option '" + arg + "'");
      verb = arg;
      request.field("q", verb);
    } else if (verb == "lookup" && !arg.starts_with("-")) {
      request.field("name", arg);
    } else if (verb == "swap" && !arg.starts_with("-")) {
      request.field("db", arg);
    } else if (verb == "defuse" && arg == "--routine" && i + 1 < argc) {
      request.field("routine", std::string(argv[++i]));
    } else if (verb == "defuse" && arg == "--var" && i + 1 < argc) {
      request.field("var", std::string(argv[++i]));
    } else if (verb == "defuse" && arg == "--at" && i + 1 < argc) {
      if (!parseAt(argv[++i], request))
        return usageError(std::string("invalid --at position '") + argv[i] +
                          "' (expected LINE[:COL])");
    } else if (verb == "defuse" && arg == "--defs") {
      request.field("defs", true);
    } else if (verb == "defuse" && arg == "--uses") {
      request.field("uses", true);
    } else if (verb == "check" && arg.rfind("--checks=", 0) == 0) {
      request.field("checks", arg.substr(9));
    } else if (verb == "check" && arg.rfind("--format=", 0) == 0) {
      request.field("format", arg.substr(9));
    } else {
      return usageError("unexpected argument '" + arg + "' for verb '" +
                        verb + "'");
    }
  }
  if (socket_path.empty()) return usageError("--socket is required");
  if (verb.empty()) return usageError("missing verb");
  if (verb == "status") raw_json = true;

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "pdbq: socket: " << std::strerror(errno) << '\n';
    return 3;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    std::cerr << "pdbq: socket path too long: '" << socket_path << "'\n";
    ::close(fd);
    return 3;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    std::cerr << "pdbq: cannot connect to '" << socket_path
              << "': " << std::strerror(errno) << '\n';
    ::close(fd);
    return 3;
  }

  std::string wire = request.finish();
  wire += '\n';
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::cerr << "pdbq: send: " << std::strerror(errno) << '\n';
      ::close(fd);
      return 3;
    }
    off += static_cast<std::size_t>(n);
  }

  std::string response;
  char buf[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      std::cerr << "pdbq: connection closed before a response arrived\n";
      ::close(fd);
      return 3;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  response.resize(response.find('\n'));

  if (raw_json) {
    std::cout << response << '\n';
  }
  pdt::pdbd::Message parsed;
  std::string parse_error;
  if (!pdt::pdbd::parseMessage(response, parsed, parse_error)) {
    std::cerr << "pdbq: malformed response: " << parse_error << '\n';
    return 3;
  }
  if (!parsed.flag("ok")) {
    std::cerr << "pdbq: " << parsed.str("error", "request failed") << " ["
              << parsed.str("code", "error") << "]\n";
    return 1;
  }
  if (!raw_json) std::cout << parsed.str("text");
  // `check` mirrors pdbcheck's exit semantics so scripts can compare.
  if (verb == "check" && parsed.flag("findings")) return 1;
  return 0;
}
