// The pdbd transport: a Unix-domain stream socket speaking the
// line-delimited protocol from proto.h.
//
// serveConnection() is the whole per-client loop and takes a plain file
// descriptor, so tests drive it over a socketpair without a listener.
// runServer() owns the listening socket: it accepts until the service's
// shutdown flag is raised, hands each client to its own thread, and
// joins them all before returning (drain semantics — every accepted
// request gets its response before the process exits).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "pdbd/service.h"

namespace pdt::pdbd {

/// Serves one client on `fd` until EOF or a read/write error. Returns
/// the number of requests answered. Does not close `fd`.
std::size_t serveConnection(int fd, Service& service);

/// Binds `socket_path`, announces readiness on `log`, and serves until
/// the service's shutdown flag is raised. Returns 0 on a clean drain,
/// 1 if the socket could not be set up (with the reason on `log`).
int runServer(Service& service, const std::string& socket_path,
              std::ostream& log);

}  // namespace pdt::pdbd
