// The pdbd query service: an atomically published database generation
// plus the verb dispatcher that answers protocol requests against it.
//
// One Generation bundles an immutable pdb::Snapshot, the query::Index
// built over it (prewarmed, so every query path is a pure read), and the
// snapshot's process-unique generation number.
//
//   * readers acquire the current Generation once per request and answer
//     entirely from it — wait-free, and every response names exactly the
//     generation it was computed from;
//   * a swap opens + prewarms the replacement off to the side, then
//     publishes it with one atomic pointer exchange. In-flight requests
//     keep the old Generation alive through their shared_ptr until they
//     finish.
//
// The publication is hand-rolled rather than
// std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic reads its
// pointer under an internal spinlock that it releases with a relaxed
// RMW — formally a data race (ThreadSanitizer reports it), and a
// spinlock on the hot read path besides. Here readers touch two atomic
// counters and two atomic loads (no waiting ever); the writer swaps an
// atomic pointer to an immutable heap-allocated shared_ptr holder,
// bumps an epoch, and frees the old holder only after the readers that
// could have seen it drain (an RCU-style grace period).
//
// The protocol and failure codes are documented in docs/PDBD.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "pdb/snapshot.h"
#include "pdbd/proto.h"
#include "query/index.h"

namespace pdt::pdbd {

/// One immutable, fully prewarmed database generation.
struct Generation {
  pdb::SnapshotPtr snapshot;
  std::unique_ptr<const query::Index> index;
  std::uint64_t id = 0;  // == snapshot->generation()
  std::string db_path;
};

class Service {
 public:
  Service() = default;
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Opens `db_path`, builds and prewarms its index, and publishes it as
  /// the current generation. On failure returns false with `error` set
  /// and keeps the previous generation (if any) serving.
  bool load(const std::string& db_path, std::string& error);

  /// The generation requests are currently answered from (null before
  /// the first successful load). Wait-free.
  [[nodiscard]] std::shared_ptr<const Generation> current() const;

  /// Answers one parsed request; returns the response line (without the
  /// trailing newline). Thread-safe: concurrent calls share the
  /// published Generation read-only.
  [[nodiscard]] std::string handle(const Message& request);

  /// Set by the "shutdown" verb; the accept loop polls it.
  [[nodiscard]] bool shutdownRequested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Requests handled so far (all verbs, including failures).
  [[nodiscard]] std::uint64_t queriesServed() const {
    return queries_.load(std::memory_order_relaxed);
  }

 private:
  using Holder = std::shared_ptr<const Generation>;

  /// Swaps in `gen` (heap holder) and reclaims the previous holder
  /// after its readers drain. Serializes with other writers only.
  void publish(Holder gen);

  std::atomic<const Holder*> gen_{nullptr};
  /// Bumped on every publish; its parity indexes readers_, so the
  /// writer can wait out exactly the readers registered against the
  /// epoch that could still observe the retiring holder.
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<std::uint64_t> readers_[2]{};
  std::mutex publish_mu_;  // writers only; never touched by queries

  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> queries_{0};
};

}  // namespace pdt::pdbd
